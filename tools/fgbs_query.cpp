//===- tools/fgbs_query.cpp - Online system-selection query CLI -----------===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
// The online half of the service: load an fgbs.model.v1 snapshot and
// answer line-delimited JSON requests (see service/Protocol.h for the
// schema) — one response line per request line, errors as structured
// responses, never a crash.
//
//   fgbs_query MODEL [--script IN] [--out OUT] [--threads N]
//   fgbs_query --model fgbs://HOST:PORT/NAME[@TAG|@sha256:HEX] [...]
//   fgbs_query --compare GOLDEN ACTUAL [--tolerance T]
//
// The --model form pulls the snapshot from a model registry (a
// namespace-aware fgbs_cached), verifies it against its content hash,
// and memoizes it in a local cache directory so the next pull on this
// host transfers no payload; a dead registry degrades to that local
// copy.  The --compare mode diffs two response streams with a numeric
// tolerance, so CI golden tests survive benign last-ulp drift between
// compilers while still catching real behaviour changes.
//
// Honours FGBS_TELEMETRY / FGBS_RUN_JSON / FGBS_TRACE_JSON, plus
// FGBS_MODEL_CACHE (default local model-snapshot cache directory).
//
//===----------------------------------------------------------------------===//

#include "fgbs/core/ModelRegistry.h"
#include "fgbs/core/RemoteCacheBackend.h"
#include "fgbs/obs/RunReport.h"
#include "fgbs/obs/Trace.h"
#include "fgbs/service/Protocol.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

using namespace fgbs;

namespace {

constexpr const char *kVersion = "fgbs_query (fgbs.model.v1 reader) 1.0";

int usage(std::ostream &OS, int Exit) {
  OS << "usage: fgbs_query MODEL [--script IN] [--out OUT] [--threads N]\n"
        "       fgbs_query --model fgbs://HOST:PORT/NAME[@TAG|@sha256:HEX]\n"
        "                  [--model-cache DIR] [--script IN] [--out OUT]\n"
        "       fgbs_query --compare GOLDEN ACTUAL [--tolerance T]\n"
        "\n"
        "Serves line-delimited JSON requests against a trained\n"
        "fgbs.model.v1 snapshot (see fgbs_train).  Requests are read\n"
        "from stdin (or --script FILE), one JSON object per line;\n"
        "responses go to stdout (or --out FILE), one per line.\n"
        "\n"
        "  ops: {\"op\":\"info\"}\n"
        "       {\"op\":\"classify\",\"features\":[76 numbers]}\n"
        "       {\"op\":\"predict\",\"features\":[...],\"ref_seconds\":S}\n"
        "       {\"op\":\"rank\",\"queries\":[{...},...]}\n"
        "\n"
        "  --model URI     pull the snapshot from a model registry by tag\n"
        "                  (default 'latest') or explicit sha256 hash,\n"
        "                  verify it, and serve it.  Pulled bytes are\n"
        "                  memoized in the local model cache, so a warm\n"
        "                  pull is a ref check with no payload transfer\n"
        "                  and a dead registry degrades to the local copy\n"
        "  --model-cache DIR\n"
        "                  local model-snapshot cache directory (default:\n"
        "                  the FGBS_MODEL_CACHE environment variable)\n"
        "  --script IN     read requests from IN instead of stdin\n"
        "  --out OUT       write responses to OUT instead of stdout\n"
        "  --threads N     thread-pool size for batched ops (default 1)\n"
        "  --compare G A   tolerance-diff two response streams\n"
        "  --tolerance T   relative tolerance for --compare (default 1e-9)\n"
        "  --help          print this help and exit\n"
        "  --version       print the tool version and exit\n";
  return Exit;
}

/// Structural JSON equality with relative tolerance on numbers.
bool jsonClose(const obs::JsonValue &A, const obs::JsonValue &B,
               double Tolerance, std::string &Where) {
  if (A.kind() != B.kind()) {
    Where = "value kinds differ";
    return false;
  }
  switch (A.kind()) {
  case obs::JsonValue::Kind::Null:
    return true;
  case obs::JsonValue::Kind::Bool:
    if (A.boolean() != B.boolean()) {
      Where = "booleans differ";
      return false;
    }
    return true;
  case obs::JsonValue::Kind::Number: {
    double X = A.number();
    double Y = B.number();
    double Scale = std::max({1.0, std::fabs(X), std::fabs(Y)});
    if (std::fabs(X - Y) > Tolerance * Scale) {
      Where = "numbers differ: " + std::to_string(X) + " vs " +
              std::to_string(Y);
      return false;
    }
    return true;
  }
  case obs::JsonValue::Kind::String:
    if (A.string() != B.string()) {
      Where = "strings differ: \"" + A.string() + "\" vs \"" + B.string() +
              "\"";
      return false;
    }
    return true;
  case obs::JsonValue::Kind::Array: {
    if (A.elements().size() != B.elements().size()) {
      Where = "array lengths differ";
      return false;
    }
    for (std::size_t I = 0; I < A.elements().size(); ++I)
      if (!jsonClose(A.elements()[I], B.elements()[I], Tolerance, Where)) {
        Where = "[" + std::to_string(I) + "] " + Where;
        return false;
      }
    return true;
  }
  case obs::JsonValue::Kind::Object: {
    if (A.members().size() != B.members().size()) {
      Where = "object sizes differ";
      return false;
    }
    auto ItA = A.members().begin();
    auto ItB = B.members().begin();
    for (; ItA != A.members().end(); ++ItA, ++ItB) {
      if (ItA->first != ItB->first) {
        Where = "keys differ: \"" + ItA->first + "\" vs \"" + ItB->first +
                "\"";
        return false;
      }
      if (!jsonClose(ItA->second, ItB->second, Tolerance, Where)) {
        Where = "." + ItA->first + " " + Where;
        return false;
      }
    }
    return true;
  }
  }
  Where = "unknown kind";
  return false;
}

int compareStreams(const std::string &GoldenPath, const std::string &ActualPath,
                   double Tolerance) {
  std::ifstream Golden(GoldenPath);
  if (!Golden) {
    std::cerr << "fgbs_query: cannot read '" << GoldenPath << "'\n";
    return 2;
  }
  std::ifstream Actual(ActualPath);
  if (!Actual) {
    std::cerr << "fgbs_query: cannot read '" << ActualPath << "'\n";
    return 2;
  }

  std::string GoldenLine;
  std::string ActualLine;
  std::size_t LineNo = 0;
  while (true) {
    bool HaveGolden = static_cast<bool>(std::getline(Golden, GoldenLine));
    bool HaveActual = static_cast<bool>(std::getline(Actual, ActualLine));
    ++LineNo;
    if (!HaveGolden && !HaveActual)
      break;
    if (HaveGolden != HaveActual) {
      std::cerr << "fgbs_query: line " << LineNo << ": '"
                << (HaveGolden ? ActualPath : GoldenPath)
                << "' ends early\n";
      return 1;
    }
    std::optional<obs::JsonValue> G = obs::parseJson(GoldenLine);
    std::optional<obs::JsonValue> A = obs::parseJson(ActualLine);
    if (!G || !A) {
      std::cerr << "fgbs_query: line " << LineNo << ": invalid JSON in '"
                << (!G ? GoldenPath : ActualPath) << "'\n";
      return 1;
    }
    std::string Where;
    if (!jsonClose(*G, *A, Tolerance, Where)) {
      std::cerr << "fgbs_query: line " << LineNo << ": " << Where << "\n"
                << "  golden: " << GoldenLine << "\n"
                << "  actual: " << ActualLine << "\n";
      return 1;
    }
  }
  std::cout << "fgbs_query: " << (LineNo - 1)
            << " response lines match within tolerance " << Tolerance << "\n";
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  std::string ModelPath;
  std::string ModelUriArg;
  std::string ModelCacheDir;
  std::string ScriptPath;
  std::string OutPath;
  std::string ComparePathA;
  std::string ComparePathB;
  bool CompareMode = false;
  double Tolerance = 1e-9;
  unsigned Threads = 1;
  if (const char *Dir = std::getenv("FGBS_MODEL_CACHE"))
    ModelCacheDir = Dir;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--help" || Arg == "-h")
      return usage(std::cout, 0);
    if (Arg == "--version") {
      std::cout << kVersion << "\n";
      return 0;
    }
    if (Arg == "--compare" && I + 2 < argc) {
      CompareMode = true;
      ComparePathA = argv[++I];
      ComparePathB = argv[++I];
    } else if (Arg == "--tolerance" && I + 1 < argc) {
      char *End = nullptr;
      Tolerance = std::strtod(argv[++I], &End);
      if (End == argv[I] || *End != '\0' || Tolerance < 0.0) {
        std::cerr << "fgbs_query: --tolerance needs a non-negative number\n";
        return usage(std::cerr, 2);
      }
    } else if (Arg == "--model" && I + 1 < argc) {
      ModelUriArg = argv[++I];
    } else if (Arg == "--model-cache" && I + 1 < argc) {
      ModelCacheDir = argv[++I];
    } else if (Arg == "--script" && I + 1 < argc) {
      ScriptPath = argv[++I];
    } else if (Arg == "--out" && I + 1 < argc) {
      OutPath = argv[++I];
    } else if (Arg == "--threads" && I + 1 < argc) {
      char *End = nullptr;
      long V = std::strtol(argv[++I], &End, 10);
      if (End == argv[I] || *End != '\0' || V <= 0) {
        std::cerr << "fgbs_query: --threads needs a positive integer\n";
        return usage(std::cerr, 2);
      }
      Threads = static_cast<unsigned>(V);
    } else if (ModelPath.empty() && !Arg.empty() && Arg[0] != '-') {
      ModelPath = Arg;
    } else {
      std::cerr << "fgbs_query: unknown argument '" << Arg << "'\n";
      return usage(std::cerr, 2);
    }
  }

  if (CompareMode)
    return compareStreams(ComparePathA, ComparePathB, Tolerance);
  if (ModelPath.empty() == ModelUriArg.empty()) {
    std::cerr << "fgbs_query: exactly one of a MODEL path or --model URI "
                 "is required\n";
    return usage(std::cerr, 2);
  }

  obs::Session Run("fgbs_query");

  std::uint64_t LoadStart = obs::nowNs();
  service::SnapshotLoadResult Loaded;
  if (!ModelUriArg.empty()) {
    ModelUri Uri;
    std::string UriError;
    if (!parseModelUri(ModelUriArg, Uri, &UriError)) {
      std::cerr << "fgbs_query: --model: " << UriError << "\n";
      return usage(std::cerr, 2);
    }
    RemoteCacheConfig Remote;
    Remote.Host = Uri.Host;
    Remote.Port = Uri.Port;
    ModelRegistry Registry(std::make_unique<RemoteCacheBackend>(Remote),
                           ModelCacheDir);
    PullResult Pulled = Uri.Sha256Hex.empty()
                            ? Registry.pull(Uri.Name, Uri.Tag)
                            : Registry.pullByHash(Uri.Name, Uri.Sha256Hex);
    if (!Pulled) {
      std::cerr << "fgbs_query: cannot pull '" << ModelUriArg << "' ("
                << registryErrorName(Pulled.Error) << "): " << Pulled.Message
                << "\n";
      return 1;
    }
    if (Pulled.Degraded)
      std::cerr << "fgbs_query: warning: registry unreachable; serving the "
                   "locally cached copy of sha256:"
                << Pulled.Sha256Hex << "\n";
    Loaded = service::parseSnapshot(Pulled.Bytes);
    if (!Loaded) {
      std::cerr << "fgbs_query: pulled snapshot sha256:" << Pulled.Sha256Hex
                << " does not parse: "
                << service::snapshotErrorName(Loaded.Error) << " ("
                << Loaded.Message << ")\n";
      return 1;
    }
  } else {
    Loaded = service::loadSnapshotFile(ModelPath);
    if (!Loaded) {
      std::cerr << "fgbs_query: cannot load '" << ModelPath << "': "
                << service::snapshotErrorName(Loaded.Error) << " ("
                << Loaded.Message << ")\n";
      return 1;
    }
  }
  std::uint64_t LoadNs = obs::nowNs() - LoadStart;
  FGBS_HISTOGRAM_RECORD_NS("service.snapshot.load", LoadNs);
  Run.recordValue("snapshot_load_ms", static_cast<double>(LoadNs) / 1e6);

  service::SelectionService Svc(std::move(*Loaded.Snapshot));
  ThreadPool Pool(Threads);
  service::QueryEngine Engine(Svc, &Pool);

  std::ifstream ScriptFile;
  if (!ScriptPath.empty()) {
    ScriptFile.open(ScriptPath);
    if (!ScriptFile) {
      std::cerr << "fgbs_query: cannot read '" << ScriptPath << "'\n";
      return 2;
    }
  }
  std::istream &In = ScriptPath.empty() ? std::cin : ScriptFile;

  std::ofstream OutFile;
  if (!OutPath.empty()) {
    OutFile.open(OutPath, std::ios::trunc);
    if (!OutFile) {
      std::cerr << "fgbs_query: cannot write '" << OutPath << "'\n";
      return 2;
    }
  }
  std::ostream &Out = OutPath.empty() ? std::cout : OutFile;

  std::size_t Requests = 0;
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    Out << Engine.handleLine(Line) << "\n";
    Out.flush(); // One response per request line, even through pipes.
    ++Requests;
  }
  Run.recordValue("requests", static_cast<double>(Requests));
  return 0;
}
