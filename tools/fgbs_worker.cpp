//===- tools/fgbs_worker.cpp - Simulation-farm worker ---------------------===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
// The compute half of the distributed simulation farm: claim work items
// from an fgbs_cached coordinator, simulate them, publish the results as
// part blobs, and mark them complete.  Crash-safe by construction — a
// killed worker's claims lapse server-side and requeue.
//
//   fgbs_worker --server HOST:PORT [--lease-ttl MS] [--claim-batch N]
//               [--poll MS] [--idle-exit MS] [--max-items N]
//
// Honours FGBS_TELEMETRY / FGBS_RUN_JSON / FGBS_TRACE_JSON like every
// other FGBS surface.
//
//===----------------------------------------------------------------------===//

#include "fgbs/core/FarmWorker.h"
#include "fgbs/obs/RunReport.h"

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

using namespace fgbs;

namespace {

constexpr const char *kVersion = "fgbs_worker (fgbs.cachewire.v1 worker) 1.0";

std::atomic<bool> ShutdownRequested{false};

void onSignal(int) { ShutdownRequested.store(true); }

int usage(std::ostream &OS, int Exit) {
  OS << "usage: fgbs_worker --server HOST:PORT [--lease-ttl MS]\n"
        "                   [--claim-batch N] [--poll MS] [--idle-exit MS]\n"
        "                   [--max-items N]\n"
        "\n"
        "Claims simulation work items from an fgbs_cached coordinator,\n"
        "executes them, and publishes the results, until stopped\n"
        "(SIGINT/SIGTERM), idle-expired, or the item budget runs out.\n"
        "\n"
        "  --server HOST:PORT\n"
        "                 the fgbs_cached coordinator (required; default:\n"
        "                 the FGBS_MEAS_CACHE_REMOTE environment variable)\n"
        "  --lease-ttl MS how long a claim survives without a heartbeat\n"
        "                 before the coordinator requeues it (default\n"
        "                 30000)\n"
        "  --claim-batch N\n"
        "                 items per ClaimWork round trip (default 4)\n"
        "  --poll MS      idle poll base interval, jittered and backed\n"
        "                 off while the queue stays empty (default 200)\n"
        "  --idle-exit MS exit once the queue has been empty this long\n"
        "                 (default 0: run until signalled)\n"
        "  --max-items N  exit after executing N items (default 0:\n"
        "                 unlimited)\n"
        "  --help         print this help and exit\n"
        "  --version      print the tool version and exit\n";
  return Exit;
}

bool parseU64(const char *Text, std::uint64_t &Out) {
  char *End = nullptr;
  unsigned long long V = std::strtoull(Text, &End, 10);
  if (End == Text || *End != '\0')
    return false;
  Out = V;
  return true;
}

} // namespace

int main(int argc, char **argv) {
  WorkerConfig Config;
  Config.Stop = &ShutdownRequested;
  std::string ServerSpec;
  if (const char *Env = std::getenv("FGBS_MEAS_CACHE_REMOTE"))
    ServerSpec = Env;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--help" || Arg == "-h")
      return usage(std::cout, 0);
    if (Arg == "--version") {
      std::cout << kVersion << "\n";
      return 0;
    }
    std::uint64_t U = 0;
    if (Arg == "--server" && I + 1 < argc) {
      ServerSpec = argv[++I];
    } else if (Arg == "--lease-ttl" && I + 1 < argc) {
      if (!parseU64(argv[++I], Config.LeaseTtlMs) || Config.LeaseTtlMs == 0) {
        std::cerr << "fgbs_worker: --lease-ttl needs a millisecond count\n";
        return usage(std::cerr, 2);
      }
    } else if (Arg == "--claim-batch" && I + 1 < argc) {
      if (!parseU64(argv[++I], U) || U == 0 || U > 256) {
        std::cerr << "fgbs_worker: --claim-batch needs 1..256\n";
        return usage(std::cerr, 2);
      }
      Config.ClaimBatch = static_cast<std::uint32_t>(U);
    } else if (Arg == "--poll" && I + 1 < argc) {
      if (!parseU64(argv[++I], Config.PollMs) || Config.PollMs == 0) {
        std::cerr << "fgbs_worker: --poll needs a millisecond count\n";
        return usage(std::cerr, 2);
      }
    } else if (Arg == "--idle-exit" && I + 1 < argc) {
      if (!parseU64(argv[++I], Config.IdleExitMs)) {
        std::cerr << "fgbs_worker: --idle-exit needs a millisecond count\n";
        return usage(std::cerr, 2);
      }
    } else if (Arg == "--max-items" && I + 1 < argc) {
      if (!parseU64(argv[++I], Config.MaxItems)) {
        std::cerr << "fgbs_worker: --max-items needs an item count\n";
        return usage(std::cerr, 2);
      }
    } else {
      std::cerr << "fgbs_worker: unknown argument '" << Arg << "'\n";
      return usage(std::cerr, 2);
    }
  }

  if (ServerSpec.empty()) {
    std::cerr << "fgbs_worker: --server is required (or set "
                 "FGBS_MEAS_CACHE_REMOTE)\n";
    return usage(std::cerr, 2);
  }
  if (!parseRemoteCacheAddress(ServerSpec, Config.Remote)) {
    std::cerr << "fgbs_worker: --server needs HOST:PORT\n";
    return usage(std::cerr, 2);
  }

  obs::Session Run("fgbs_worker");
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  WorkerStats Stats = runWorkerLoop(Config);

  Run.recordValue("claimed", static_cast<double>(Stats.Claimed));
  Run.recordValue("executed", static_cast<double>(Stats.Executed));
  Run.recordValue("completed", static_cast<double>(Stats.Completed));
  Run.recordValue("already_present",
                  static_cast<double>(Stats.AlreadyPresent));
  Run.recordValue("abandoned", static_cast<double>(Stats.Abandoned));
  Run.recordValue("bad_specs", static_cast<double>(Stats.BadSpecs));

  std::cout << "fgbs_worker: " << Stats.Executed << " executed, "
            << Stats.AlreadyPresent << " already present, " << Stats.Abandoned
            << " abandoned, " << Stats.BadSpecs << " bad specs ("
            << Stats.Claimed << " claimed from " << ServerSpec << ")\n";
  return 0;
}
