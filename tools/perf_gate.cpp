//===- tools/perf_gate.cpp - CI perf regression gate CLI ------------------===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
// Compares a fresh benchmark run (any JSON with a "benchmarks" member:
// an fgbs.run.v1 report from perf_library or the perf-smoke ctest)
// against the checked-in baseline, and exits non-zero when anything
// regressed past the fail threshold.  Thresholds default to the CI
// policy — warn at 1.5x, fail at 3x — generous enough that noisy shared
// runners warn instead of flapping.
//
//   perf_gate <baseline.json> <results.json> [--warn-at R] [--fail-at R]
//
//===----------------------------------------------------------------------===//

#include "fgbs/obs/Gate.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace fgbs;

namespace {

constexpr const char *kVersion = "perf_gate (fgbs.run.v1 gate) 1.0";

int usage(std::ostream &OS, int Exit) {
  OS << "usage: perf_gate <baseline.json> <results.json>"
        " [--warn-at RATIO] [--fail-at RATIO]\n"
        "\n"
        "Compares a fresh benchmark run against the checked-in baseline\n"
        "and exits non-zero when any benchmark regressed past the fail\n"
        "threshold.  Both files are JSON with a \"benchmarks\" member\n"
        "(fgbs.run.v1 reports qualify).\n"
        "\n"
        "  --warn-at RATIO   report (but pass) above this ratio (default 1.5)\n"
        "  --fail-at RATIO   fail above this ratio (default 3.0)\n"
        "  --help            print this help and exit\n"
        "  --version         print the tool version and exit\n";
  return Exit;
}

std::optional<obs::JsonValue> readJsonFile(const std::string &Path) {
  std::ifstream IS(Path);
  if (!IS) {
    std::cerr << "perf_gate: cannot read '" << Path
              << "': " << std::strerror(errno) << "\n";
    return std::nullopt;
  }
  std::ostringstream Buffer;
  Buffer << IS.rdbuf();
  std::optional<obs::JsonValue> Parsed = obs::parseJson(Buffer.str());
  if (!Parsed)
    std::cerr << "perf_gate: '" << Path << "' is not valid JSON\n";
  return Parsed;
}

} // namespace

int main(int argc, char **argv) {
  std::string BaselinePath;
  std::string ResultsPath;
  double WarnAt = 1.5;
  double FailAt = 3.0;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--help" || Arg == "-h")
      return usage(std::cout, 0);
    if (Arg == "--version") {
      std::cout << kVersion << "\n";
      return 0;
    }
    if ((Arg == "--warn-at" || Arg == "--fail-at") && I + 1 < argc) {
      char *End = nullptr;
      double Ratio = std::strtod(argv[++I], &End);
      if (End == argv[I] || *End != '\0' || Ratio <= 0.0) {
        std::cerr << "perf_gate: " << Arg << " needs a positive ratio\n";
        return usage(std::cerr, 2);
      }
      (Arg == "--warn-at" ? WarnAt : FailAt) = Ratio;
    } else if (BaselinePath.empty()) {
      BaselinePath = Arg;
    } else if (ResultsPath.empty()) {
      ResultsPath = Arg;
    } else {
      std::cerr << "perf_gate: unexpected argument '" << Arg << "'\n";
      return usage(std::cerr, 2);
    }
  }
  if (BaselinePath.empty() || ResultsPath.empty()) {
    std::cerr << "perf_gate: a baseline and a results path are required\n";
    return usage(std::cerr, 2);
  }
  if (FailAt < WarnAt) {
    std::cerr << "perf_gate: --fail-at must be >= --warn-at\n";
    return usage(std::cerr, 2);
  }

  std::optional<obs::JsonValue> Baseline = readJsonFile(BaselinePath);
  std::optional<obs::JsonValue> Results = readJsonFile(ResultsPath);
  if (!Baseline || !Results)
    return 2;

  obs::GateReport Report =
      obs::compareBenchmarks(*Baseline, *Results, WarnAt, FailAt);
  if (Report.Compared == 0)
    std::cerr << "perf_gate: no benchmark overlaps the baseline — "
                 "treating an empty comparison as failure\n";
  obs::printGateReport(std::cout, Report);
  return Report.passed() ? 0 : 1;
}
