//===- tools/perf_gate.cpp - CI perf regression gate CLI ------------------===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
// Compares a fresh benchmark run (any JSON with a "benchmarks" member:
// an fgbs.run.v1 report from perf_library or the perf-smoke ctest)
// against the checked-in baseline, and exits non-zero when anything
// regressed past the fail threshold.  Thresholds default to the CI
// policy — warn at 1.5x, fail at 3x — generous enough that noisy shared
// runners warn instead of flapping.
//
//   perf_gate <baseline.json> <results.json> [--warn-at R] [--fail-at R]
//
//===----------------------------------------------------------------------===//

#include "fgbs/obs/Gate.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace fgbs;

namespace {

int usage(const char *Argv0) {
  std::cerr << "usage: " << Argv0
            << " <baseline.json> <results.json> [--warn-at RATIO]"
               " [--fail-at RATIO]\n";
  return 2;
}

std::optional<obs::JsonValue> readJsonFile(const std::string &Path) {
  std::ifstream IS(Path);
  if (!IS) {
    std::cerr << "perf_gate: cannot read '" << Path << "'\n";
    return std::nullopt;
  }
  std::ostringstream Buffer;
  Buffer << IS.rdbuf();
  std::optional<obs::JsonValue> Parsed = obs::parseJson(Buffer.str());
  if (!Parsed)
    std::cerr << "perf_gate: '" << Path << "' is not valid JSON\n";
  return Parsed;
}

} // namespace

int main(int argc, char **argv) {
  std::string BaselinePath;
  std::string ResultsPath;
  double WarnAt = 1.5;
  double FailAt = 3.0;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if ((Arg == "--warn-at" || Arg == "--fail-at") && I + 1 < argc) {
      char *End = nullptr;
      double Ratio = std::strtod(argv[++I], &End);
      if (End == argv[I] || *End != '\0' || Ratio <= 0.0)
        return usage(argv[0]);
      (Arg == "--warn-at" ? WarnAt : FailAt) = Ratio;
    } else if (BaselinePath.empty()) {
      BaselinePath = Arg;
    } else if (ResultsPath.empty()) {
      ResultsPath = Arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (BaselinePath.empty() || ResultsPath.empty() || FailAt < WarnAt)
    return usage(argv[0]);

  std::optional<obs::JsonValue> Baseline = readJsonFile(BaselinePath);
  std::optional<obs::JsonValue> Results = readJsonFile(ResultsPath);
  if (!Baseline || !Results)
    return 2;

  obs::GateReport Report =
      obs::compareBenchmarks(*Baseline, *Results, WarnAt, FailAt);
  if (Report.Compared == 0)
    std::cerr << "perf_gate: no benchmark overlaps the baseline — "
                 "treating an empty comparison as failure\n";
  obs::printGateReport(std::cout, Report);
  return Report.passed() ? 0 : 1;
}
