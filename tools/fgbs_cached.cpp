//===- tools/fgbs_cached.cpp - Shared measurement-cache daemon ------------===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
// The fleet-facing half of the measurement cache: serve a sharded
// directory of fgbs.meas.v1 entries over the fgbs.cachewire.v1 protocol
// so many fgbs_train runs — across processes and across hosts — pay the
// paper's simulation cost exactly once.
//
//   fgbs_cached --root DIR [--port N] [--shards N] [--threads N]
//               [--bind ADDR] [--max-bytes N] [--max-age SECONDS]
//               [--model-max-bytes N] [--model-max-age SECONDS]
//               [--port-file PATH] [--workers N] [--prune-interval SEC]
//   fgbs_cached --ping HOST:PORT
//   fgbs_cached --stats HOST:PORT [--json]
//
// Runs until SIGINT/SIGTERM, then drains connections and exits cleanly
// (so the fgbs.run.v1 report is written).  Honours FGBS_TELEMETRY /
// FGBS_RUN_JSON / FGBS_TRACE_JSON like every other FGBS surface.
//
//===----------------------------------------------------------------------===//

#include "fgbs/core/FarmWorker.h"
#include "fgbs/core/RemoteCacheBackend.h"
#include "fgbs/net/CacheServer.h"
#include "fgbs/obs/RunReport.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

using namespace fgbs;

namespace {

constexpr const char *kVersion = "fgbs_cached (fgbs.cachewire.v1 server) 1.0";

std::atomic<bool> ShutdownRequested{false};

void onSignal(int) { ShutdownRequested.store(true); }

int usage(std::ostream &OS, int Exit) {
  OS << "usage: fgbs_cached --root DIR [--port N] [--shards N]\n"
        "                   [--threads N] [--bind ADDR] [--max-bytes N]\n"
        "                   [--max-age SEC] [--model-max-bytes N]\n"
        "                   [--model-max-age SEC] [--port-file PATH]\n"
        "                   [--workers N] [--prune-interval SEC]\n"
        "       fgbs_cached --ping HOST:PORT\n"
        "       fgbs_cached --stats HOST:PORT [--json]\n"
        "\n"
        "Serves a sharded measurement-cache directory to a fleet of\n"
        "fgbs_train runs over the fgbs.cachewire.v1 protocol, so the\n"
        "simulation cost of a suite/machine configuration is paid once\n"
        "fleet-wide.  Runs until SIGINT/SIGTERM.\n"
        "\n"
        "  --root DIR     directory holding the shard subdirectories\n"
        "                 (shard-00, shard-01, ...; created on start)\n"
        "  --port N       TCP port (default 0: kernel-chosen, printed on\n"
        "                 stdout and written to --port-file)\n"
        "  --shards N     shard directory count (default 4); entries\n"
        "                 route by content-hash prefix\n"
        "  --threads N    worker threads serving connections (default 4)\n"
        "  --bind ADDR    IPv4 bind address (default: all interfaces)\n"
        "  --max-bytes N  whole-server entry-byte budget, split evenly\n"
        "                 across shards and LRU-pruned after each store\n"
        "                 (default: unbounded)\n"
        "  --max-age SEC  evict entries unused for more than SEC seconds\n"
        "                 (default: unbounded)\n"
        "  --model-max-bytes N\n"
        "                 separate byte budget for the model/ namespace's\n"
        "                 snapshot blobs (refs are never budget-pruned;\n"
        "                 default: unbounded)\n"
        "  --model-max-age SEC\n"
        "                 evict model snapshot blobs unused for more than\n"
        "                 SEC seconds (default: unbounded)\n"
        "  --port-file PATH\n"
        "                 write the bound port as a line of text (for\n"
        "                 scripts using --port 0)\n"
        "  --workers N    also run N embedded simulation-farm worker\n"
        "                 threads against this server (a one-process farm\n"
        "                 for small fleets and tests; default 0)\n"
        "  --prune-interval SEC\n"
        "                 self-prune every shard to the --max-bytes/\n"
        "                 --max-age budgets every SEC seconds, in addition\n"
        "                 to the after-store pruning (default 0: off)\n"
        "  --ping HOST:PORT\n"
        "                 check a running daemon and exit (0 = healthy)\n"
        "  --stats HOST:PORT\n"
        "                 print a running daemon's shard footprints and\n"
        "                 request/queue counters and exit\n"
        "  --json         with --stats: emit one fgbs.cachestats.v1 JSON\n"
        "                 document instead of the human-readable text\n"
        "  --help         print this help and exit\n"
        "  --version      print the tool version and exit\n";
  return Exit;
}

bool parseU64(const char *Text, std::uint64_t &Out) {
  char *End = nullptr;
  unsigned long long V = std::strtoull(Text, &End, 10);
  if (End == Text || *End != '\0')
    return false;
  Out = V;
  return true;
}

} // namespace

int main(int argc, char **argv) {
  net::CacheServerConfig Config;
  std::string PortFile;
  std::string PingSpec;
  std::string StatsSpec;
  bool StatsJson = false;
  unsigned Workers = 0;
  std::uint64_t PruneIntervalSeconds = 0;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--help" || Arg == "-h")
      return usage(std::cout, 0);
    if (Arg == "--version") {
      std::cout << kVersion << "\n";
      return 0;
    }
    std::uint64_t U = 0;
    if (Arg == "--root" && I + 1 < argc) {
      Config.Root = argv[++I];
    } else if (Arg == "--port" && I + 1 < argc) {
      if (!parseU64(argv[++I], U) || U > 65535) {
        std::cerr << "fgbs_cached: --port needs 0..65535\n";
        return usage(std::cerr, 2);
      }
      Config.Port = static_cast<std::uint16_t>(U);
    } else if (Arg == "--shards" && I + 1 < argc) {
      if (!parseU64(argv[++I], U) || U == 0 || U > 256) {
        std::cerr << "fgbs_cached: --shards needs 1..256\n";
        return usage(std::cerr, 2);
      }
      Config.Shards = static_cast<unsigned>(U);
    } else if (Arg == "--threads" && I + 1 < argc) {
      if (!parseU64(argv[++I], U) || U == 0 || U > 256) {
        std::cerr << "fgbs_cached: --threads needs 1..256\n";
        return usage(std::cerr, 2);
      }
      Config.Threads = static_cast<unsigned>(U);
    } else if (Arg == "--bind" && I + 1 < argc) {
      Config.BindAddr = argv[++I];
    } else if (Arg == "--max-bytes" && I + 1 < argc) {
      if (!parseU64(argv[++I], Config.MaxBytes)) {
        std::cerr << "fgbs_cached: --max-bytes needs a byte count\n";
        return usage(std::cerr, 2);
      }
    } else if (Arg == "--max-age" && I + 1 < argc) {
      if (!parseU64(argv[++I], Config.MaxAgeSeconds)) {
        std::cerr << "fgbs_cached: --max-age needs a second count\n";
        return usage(std::cerr, 2);
      }
    } else if (Arg == "--model-max-bytes" && I + 1 < argc) {
      if (!parseU64(argv[++I], Config.ModelMaxBytes)) {
        std::cerr << "fgbs_cached: --model-max-bytes needs a byte count\n";
        return usage(std::cerr, 2);
      }
    } else if (Arg == "--model-max-age" && I + 1 < argc) {
      if (!parseU64(argv[++I], Config.ModelMaxAgeSeconds)) {
        std::cerr << "fgbs_cached: --model-max-age needs a second count\n";
        return usage(std::cerr, 2);
      }
    } else if (Arg == "--port-file" && I + 1 < argc) {
      PortFile = argv[++I];
    } else if (Arg == "--workers" && I + 1 < argc) {
      if (!parseU64(argv[++I], U) || U > 256) {
        std::cerr << "fgbs_cached: --workers needs 0..256\n";
        return usage(std::cerr, 2);
      }
      Workers = static_cast<unsigned>(U);
    } else if (Arg == "--prune-interval" && I + 1 < argc) {
      if (!parseU64(argv[++I], PruneIntervalSeconds)) {
        std::cerr << "fgbs_cached: --prune-interval needs a second count\n";
        return usage(std::cerr, 2);
      }
    } else if (Arg == "--ping" && I + 1 < argc) {
      PingSpec = argv[++I];
    } else if (Arg == "--stats" && I + 1 < argc) {
      StatsSpec = argv[++I];
    } else if (Arg == "--json") {
      StatsJson = true;
    } else {
      std::cerr << "fgbs_cached: unknown argument '" << Arg << "'\n";
      return usage(std::cerr, 2);
    }
  }

  if (!PingSpec.empty()) {
    RemoteCacheConfig Remote;
    if (!parseRemoteCacheAddress(PingSpec, Remote)) {
      std::cerr << "fgbs_cached: --ping needs HOST:PORT\n";
      return usage(std::cerr, 2);
    }
    Remote.MaxAttempts = 1;
    RemoteCacheBackend Backend(std::move(Remote));
    if (!Backend.ping()) {
      std::cerr << "fgbs_cached: no server at " << PingSpec << "\n";
      return 1;
    }
    std::cout << "ok: fgbs.cachewire.v1 server at " << PingSpec << "\n";
    return 0;
  }

  if (!StatsSpec.empty()) {
    RemoteCacheConfig Remote;
    if (!parseRemoteCacheAddress(StatsSpec, Remote)) {
      std::cerr << "fgbs_cached: --stats needs HOST:PORT\n";
      return usage(std::cerr, 2);
    }
    Remote.MaxAttempts = 1;
    RemoteCacheBackend Backend(std::move(Remote));
    RemoteCacheStats Stats;
    if (!Backend.statsRemote(Stats)) {
      std::cerr << "fgbs_cached: no server at " << StatsSpec << "\n";
      return 1;
    }
    if (StatsJson) {
      std::cout << renderStatsJson(Stats);
      return 0;
    }
    std::uint64_t Entries = 0, Bytes = 0;
    for (std::size_t I = 0; I < Stats.Shards.size(); ++I) {
      Entries += Stats.Shards[I].Entries;
      Bytes += Stats.Shards[I].Bytes;
      std::cout << "shard " << I << ": " << Stats.Shards[I].Entries
                << " entries, " << Stats.Shards[I].Bytes << " bytes\n";
    }
    std::cout << "total: " << Entries << " entries, " << Bytes << " bytes\n"
              << "requests: " << Stats.Hits << " hits, " << Stats.Misses
              << " misses\n"
              << "leases: " << Stats.LeasesGranted << " granted, "
              << Stats.LeasesDenied << " denied\n"
              << "queue: " << Stats.QueuePending << " pending, "
              << Stats.QueueClaimed << " claimed\n"
              << "farm: " << Stats.FarmEnqueued << " enqueued, "
              << Stats.FarmClaimed << " claimed, " << Stats.FarmCompleted
              << " completed, " << Stats.FarmRequeued << " requeued, "
              << Stats.FarmHeartbeats << " heartbeats, " << Stats.FarmDropped
              << " dropped\n";
    if (Stats.HasModelStats) {
      std::uint64_t ModelEntries = 0, ModelBytes = 0;
      for (const RemoteShardStats &S : Stats.ModelShards) {
        ModelEntries += S.Entries;
        ModelBytes += S.Bytes;
      }
      std::cout << "model: " << ModelEntries << " entries, " << ModelBytes
                << " bytes across " << Stats.ModelShards.size()
                << " shards; " << Stats.ModelGets << " gets, "
                << Stats.ModelPuts << " puts, " << Stats.ModelRefPuts
                << " ref puts, " << Stats.ScanPrefixes << " scans\n";
    }
    return 0;
  }

  if (Config.Root.empty()) {
    std::cerr << "fgbs_cached: --root is required\n";
    return usage(std::cerr, 2);
  }

  obs::Session Run("fgbs_cached");

  net::CacheServer Server(std::move(Config));
  std::string Error;
  if (!Server.start(&Error)) {
    std::cerr << "fgbs_cached: cannot start: " << Error << "\n";
    return 1;
  }

  if (!PortFile.empty()) {
    std::ofstream OS(PortFile, std::ios::trunc);
    OS << Server.port() << "\n";
    if (!OS) {
      std::cerr << "fgbs_cached: cannot write port file '" << PortFile
                << "'\n";
      return 1;
    }
  }

  // stdout is the script-facing contract: the port line appears once
  // the server is accepting, so wrappers can wait for it.
  std::cout << "fgbs_cached: listening on port " << Server.port() << " ("
            << Server.shards() << " shards under '" << Server.root() << "')"
            << std::endl;

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  // Embedded farm workers: a one-process farm.  Each thread is the
  // same loop fgbs_worker runs, pointed over loopback at this server.
  std::vector<std::thread> WorkerThreads;
  for (unsigned I = 0; I < Workers; ++I)
    WorkerThreads.emplace_back([&Server] {
      WorkerConfig Worker;
      Worker.Remote.Host = "127.0.0.1";
      Worker.Remote.Port = Server.port();
      Worker.Stop = &ShutdownRequested;
      runWorkerLoop(Worker);
    });

  const auto PruneEvery = std::chrono::seconds(PruneIntervalSeconds);
  auto NextPrune = std::chrono::steady_clock::now() + PruneEvery;
  while (!ShutdownRequested.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (PruneIntervalSeconds && std::chrono::steady_clock::now() >= NextPrune) {
      Server.pruneAllShards();
      NextPrune = std::chrono::steady_clock::now() + PruneEvery;
    }
  }

  std::cout << "fgbs_cached: shutting down" << std::endl;
  for (std::thread &T : WorkerThreads)
    T.join();
  Server.stop();
  return 0;
}
