//===- tools/fgbs_train.cpp - Train and persist a model snapshot ----------===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
// The offline half of the service: run the full subsetting pipeline
// (profile, cluster, select representatives, measure them on every
// target) over a suite and persist the result as an fgbs.model.v1
// snapshot that tools/fgbs_query serves online.
//
//   fgbs_train --suite nr|nas|synthetic --out model.fgbs [--k N]
//              [--threads N] [--cache DIR | --no-cache]
//              [--cache-remote HOST:PORT]
//              [--cache-max-bytes N] [--cache-max-age SECONDS]
//              [--publish fgbs://HOST:PORT/NAME[@TAG]]
//   fgbs_train --cache DIR --cache-prune [--cache-max-bytes N]
//              [--cache-max-age SECONDS]
//
// Honours FGBS_TELEMETRY / FGBS_RUN_JSON / FGBS_TRACE_JSON like every
// other FGBS surface, plus FGBS_THREADS (default measurement fan-out),
// FGBS_MEAS_CACHE (default measurement-cache directory),
// FGBS_MEAS_CACHE_REMOTE (default fgbs_cached address),
// FGBS_MEAS_CACHE_MAX_BYTES (default cache byte budget), and
// FGBS_MODEL_CACHE (default local model-snapshot cache directory).
//
//===----------------------------------------------------------------------===//

#include "fgbs/core/MeasurementCache.h"
#include "fgbs/core/ModelRegistry.h"
#include "fgbs/core/RemoteCacheBackend.h"
#include "fgbs/obs/RunReport.h"
#include "fgbs/obs/Trace.h"
#include "fgbs/service/Snapshot.h"
#include "fgbs/suites/Suites.h"
#include "fgbs/suites/Synthetic.h"

#include <cstdlib>
#include <iostream>
#include <string>

using namespace fgbs;

namespace {

constexpr const char *kVersion = "fgbs_train (fgbs.model.v1 writer) 1.0";

int usage(std::ostream &OS, int Exit) {
  OS << "usage: fgbs_train --suite nr|nas|synthetic --out PATH [--k N]\n"
        "                  [--threads N] [--cache DIR | --no-cache]\n"
        "                  [--cache-remote HOST:PORT]\n"
        "                  [--distribute] [--distribute-wait MS]\n"
        "                  [--cache-max-bytes N] [--cache-max-age SEC]\n"
        "                  [--publish fgbs://HOST:PORT/NAME[@TAG]]\n"
        "                  [--model-cache DIR]\n"
        "       fgbs_train --cache DIR --cache-prune\n"
        "                  [--cache-max-bytes N] [--cache-max-age SEC]\n"
        "\n"
        "Runs the benchmark-subsetting pipeline over the chosen suite on\n"
        "the reference machine and writes an fgbs.model.v1 snapshot that\n"
        "fgbs_query can serve without re-running the pipeline.\n"
        "\n"
        "  --suite NAME   nr (Numerical Recipes), nas (NAS SER), or\n"
        "                 synthetic (the deterministic synthetic corpus)\n"
        "  --out PATH     snapshot file to write (required unless\n"
        "                 --publish is given)\n"
        "  --publish URI  publish the snapshot to a model registry\n"
        "                 (a namespace-aware fgbs_cached) and point the\n"
        "                 URI's tag (default 'latest') at it; snapshot\n"
        "                 blob first, then the ref, so a crash never\n"
        "                 leaves a dangling tag\n"
        "  --model-cache DIR\n"
        "                 local model-snapshot cache memoizing what this\n"
        "                 host published/pulled (default: the\n"
        "                 FGBS_MODEL_CACHE environment variable)\n"
        "  --k N          force N clusters (default: Elbow-selected)\n"
        "  --threads N    measurement threads (default: the FGBS_THREADS\n"
        "                 environment variable, else all hardware threads;\n"
        "                 any count produces bit-identical measurements)\n"
        "  --cache DIR    measurement-cache directory: a warm run loads\n"
        "                 the finished fgbs.meas.v1 database from DIR and\n"
        "                 skips simulation entirely (default: the\n"
        "                 FGBS_MEAS_CACHE environment variable).  Safe\n"
        "                 under concurrent cold runs: one simulates and\n"
        "                 publishes, the rest wait and load\n"
        "  --no-cache     never read or write the measurement cache, even\n"
        "                 when FGBS_MEAS_CACHE is set\n"
        "  --cache-remote HOST:PORT\n"
        "                 fgbs_cached server sharing measurements across\n"
        "                 a fleet (default: FGBS_MEAS_CACHE_REMOTE).  With\n"
        "                 --cache DIR the cache is tiered: local reads\n"
        "                 first, remote hits fill the local tier, stores\n"
        "                 replicate asynchronously.  An unreachable server\n"
        "                 degrades to the local tier with a warning; it\n"
        "                 never fails the run\n"
        "  --distribute   on a cache miss, farm the simulation out to\n"
        "                 fgbs_worker processes through the --cache-remote\n"
        "                 coordinator instead of simulating locally; items\n"
        "                 no worker delivers by the deadline are simulated\n"
        "                 here, so the run always completes\n"
        "  --distribute-wait MS\n"
        "                 farm assembly deadline in milliseconds (default:\n"
        "                 FGBS_FARM_WAIT_MS, else 600000)\n"
        "  --cache-max-bytes N\n"
        "                 cache entry-byte budget, LRU-pruned after each\n"
        "                 store (default: FGBS_MEAS_CACHE_MAX_BYTES, else\n"
        "                 unbounded)\n"
        "  --cache-max-age SEC\n"
        "                 evict entries unused for more than SEC seconds\n"
        "                 (default: unbounded)\n"
        "  --cache-prune  prune the cache directory to the configured\n"
        "                 budgets and exit without training\n"
        "  --help         print this help and exit\n"
        "  --version      print the tool version and exit\n";
  return Exit;
}

bool parseU64(const char *Text, std::uint64_t &Out) {
  char *End = nullptr;
  unsigned long long V = std::strtoull(Text, &End, 10);
  if (End == Text || *End != '\0')
    return false;
  Out = V;
  return true;
}

} // namespace

int main(int argc, char **argv) {
  std::string SuiteName = "nr";
  std::string OutPath;
  std::string PublishUri;
  std::string ModelCacheDir;
  unsigned K = 0;
  bool PruneOnly = false;
  DatabaseBuildOptions Build;
  if (const char *Dir = std::getenv("FGBS_MEAS_CACHE"))
    Build.CacheDir = Dir;
  if (const char *Dir = std::getenv("FGBS_MODEL_CACHE"))
    ModelCacheDir = Dir;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--help" || Arg == "-h")
      return usage(std::cout, 0);
    if (Arg == "--version") {
      std::cout << kVersion << "\n";
      return 0;
    }
    if (Arg == "--suite" && I + 1 < argc) {
      SuiteName = argv[++I];
    } else if (Arg == "--out" && I + 1 < argc) {
      OutPath = argv[++I];
    } else if (Arg == "--publish" && I + 1 < argc) {
      PublishUri = argv[++I];
    } else if (Arg == "--model-cache" && I + 1 < argc) {
      ModelCacheDir = argv[++I];
    } else if (Arg == "--k" && I + 1 < argc) {
      char *End = nullptr;
      long V = std::strtol(argv[++I], &End, 10);
      if (End == argv[I] || *End != '\0' || V <= 0) {
        std::cerr << "fgbs_train: --k needs a positive integer\n";
        return usage(std::cerr, 2);
      }
      K = static_cast<unsigned>(V);
    } else if (Arg == "--threads" && I + 1 < argc) {
      char *End = nullptr;
      long V = std::strtol(argv[++I], &End, 10);
      if (End == argv[I] || *End != '\0' || V <= 0) {
        std::cerr << "fgbs_train: --threads needs a positive integer\n";
        return usage(std::cerr, 2);
      }
      Build.Threads = static_cast<unsigned>(V);
    } else if (Arg == "--cache" && I + 1 < argc) {
      Build.CacheDir = argv[++I];
    } else if (Arg == "--cache-remote" && I + 1 < argc) {
      Build.CacheRemote = argv[++I];
      RemoteCacheConfig Probe;
      if (!parseRemoteCacheAddress(Build.CacheRemote, Probe)) {
        std::cerr << "fgbs_train: --cache-remote needs HOST:PORT\n";
        return usage(std::cerr, 2);
      }
    } else if (Arg == "--no-cache") {
      Build.UseCache = false;
    } else if (Arg == "--distribute") {
      Build.Distribute = true;
    } else if (Arg == "--distribute-wait" && I + 1 < argc) {
      if (!parseU64(argv[++I], Build.DistributeWaitMs) ||
          Build.DistributeWaitMs == 0) {
        std::cerr << "fgbs_train: --distribute-wait needs a millisecond "
                     "count\n";
        return usage(std::cerr, 2);
      }
    } else if (Arg == "--cache-max-bytes" && I + 1 < argc) {
      if (!parseU64(argv[++I], Build.CacheMaxBytes)) {
        std::cerr << "fgbs_train: --cache-max-bytes needs a byte count\n";
        return usage(std::cerr, 2);
      }
    } else if (Arg == "--cache-max-age" && I + 1 < argc) {
      if (!parseU64(argv[++I], Build.CacheMaxAgeSeconds)) {
        std::cerr << "fgbs_train: --cache-max-age needs a second count\n";
        return usage(std::cerr, 2);
      }
    } else if (Arg == "--cache-prune") {
      PruneOnly = true;
    } else {
      std::cerr << "fgbs_train: unknown argument '" << Arg << "'\n";
      return usage(std::cerr, 2);
    }
  }

  if (PruneOnly) {
    if (Build.CacheDir.empty()) {
      std::cerr << "fgbs_train: --cache-prune needs a cache directory "
                   "(--cache DIR or FGBS_MEAS_CACHE)\n";
      return usage(std::cerr, 2);
    }
    MeasurementCache Cache(Build.CacheDir);
    std::uint64_t MaxBytes = Build.CacheMaxBytes
                                 ? Build.CacheMaxBytes
                                 : measurementCacheEnvMaxBytes();
    CachePruneStats Stats = Cache.prune(MaxBytes, Build.CacheMaxAgeSeconds);
    if (Stats.LockTimedOut) {
      std::cerr << "fgbs_train: cache '" << Build.CacheDir
                << "' is busy (manifest lock timeout); nothing pruned\n";
      return 1;
    }
    std::cout << "pruned '" << Build.CacheDir << "': " << Stats.Removed
              << " of " << Stats.Entries << " entries evicted, "
              << Stats.BytesBefore << " -> " << Stats.BytesAfter << " bytes"
              << (Stats.RebuiltFromScan ? " (manifest rebuilt from scan)"
                                        : "")
              << "\n";
    return 0;
  }

  ModelUri Publish;
  if (!PublishUri.empty()) {
    std::string UriError;
    if (!parseModelUri(PublishUri, Publish, &UriError)) {
      std::cerr << "fgbs_train: --publish: " << UriError << "\n";
      return usage(std::cerr, 2);
    }
    if (!Publish.Sha256Hex.empty()) {
      std::cerr << "fgbs_train: --publish takes a tag, not an explicit "
                   "hash (the hash is computed from the bytes)\n";
      return usage(std::cerr, 2);
    }
  }
  if (OutPath.empty() && PublishUri.empty()) {
    std::cerr << "fgbs_train: --out or --publish is required\n";
    return usage(std::cerr, 2);
  }
  if (Build.Distribute && Build.CacheRemote.empty() &&
      !std::getenv("FGBS_MEAS_CACHE_REMOTE"))
    std::cerr << "fgbs_train: warning: --distribute without --cache-remote "
                 "(or FGBS_MEAS_CACHE_REMOTE); simulating locally\n";

  Suite S;
  if (SuiteName == "nr") {
    S = makeNumericalRecipes();
  } else if (SuiteName == "nas") {
    S = makeNasSer();
  } else if (SuiteName == "synthetic") {
    S = makeSyntheticSuite({});
  } else {
    std::cerr << "fgbs_train: unknown suite '" << SuiteName << "'\n";
    return usage(std::cerr, 2);
  }

  obs::Session Run("fgbs_train");

  std::uint64_t ProfileStart = obs::nowNs();
  std::unique_ptr<MeasurementDatabase> DbPtr =
      buildMeasurementDatabase(S, makeNehalem(), paperTargets(), Build);
  MeasurementDatabase &Db = *DbPtr;
  Run.recordValue("profile_ms",
                  static_cast<double>(obs::nowNs() - ProfileStart) / 1e6);

  PipelineConfig Config;
  Config.K = K;
  std::uint64_t PipelineStart = obs::nowNs();
  PipelineResult R = Pipeline(Db, Config).run();
  Run.recordValue("pipeline_ms",
                  static_cast<double>(obs::nowNs() - PipelineStart) / 1e6);

  if (R.Selection.FinalK == 0) {
    std::cerr << "fgbs_train: suite '" << SuiteName
              << "' yields no representatives (every codelet is "
                 "ill-behaved); nothing to serve\n";
    return 1;
  }

  service::ModelSnapshot Snapshot = service::buildSnapshot(Db, R);
  if (!OutPath.empty() && !service::saveSnapshotFile(OutPath, Snapshot)) {
    std::cerr << "fgbs_train: cannot write '" << OutPath << "'\n";
    return 1;
  }
  std::string Bytes = service::serializeSnapshot(Snapshot);

  if (!PublishUri.empty()) {
    RemoteCacheConfig Remote;
    Remote.Host = Publish.Host;
    Remote.Port = Publish.Port;
    ModelRegistry Registry(std::make_unique<RemoteCacheBackend>(Remote),
                           ModelCacheDir);
    PublishResult Published =
        Registry.publish(Publish.Name, Publish.Tag, Bytes);
    if (!Published) {
      std::cerr << "fgbs_train: publish failed ("
                << registryErrorName(Published.Error)
                << "): " << Published.Message << "\n";
      return 1;
    }
    Run.recordValue("publish_bytes", static_cast<double>(Bytes.size()));
    std::cout << "published " << Publish.Name << "@" << Publish.Tag
              << " -> sha256:" << Published.Sha256Hex
              << (Published.SnapshotAlreadyPresent ? " (blob already present)"
                                                   : "")
              << "\n";
  }

  Run.recordValue("snapshot_bytes", static_cast<double>(Bytes.size()));
  Run.recordValue("clusters", static_cast<double>(Snapshot.numClusters()));
  Run.recordValue("codelets", static_cast<double>(Snapshot.numCodelets()));
  Run.recordValue("targets", static_cast<double>(Snapshot.numTargets()));
  Run.recordValue("elbow_k", static_cast<double>(R.ElbowK));

  std::cout << "trained '" << Snapshot.SuiteName << "' on "
            << Snapshot.ReferenceName << ": " << Snapshot.numClusters()
            << " clusters over " << Snapshot.numCodelets() << " codelets, "
            << Snapshot.numTargets() << " targets, " << Bytes.size()
            << " bytes -> "
            << (OutPath.empty() ? std::string("(registry only)") : OutPath)
            << "\n";
  return 0;
}
