//===- bench/fig2_cluster_prediction.cpp - Paper Figure 2 -----------------===//
//
// Regenerates Figure 2: predicted and real per-invocation execution times
// on Atom for the clusters containing toeplz_1 and realft_4 (the paper's
// clusters 1 and 2 at K = 14).  Representatives have 0% error because
// they are measured directly; siblings inherit the representative's
// speedup.
//
//===----------------------------------------------------------------------===//

#include "bench/common.h"

using namespace fgbs;

int main() {
  obs::Session Telemetry("fig2_cluster_prediction");
  bench::banner("Figure 2",
                "Predicted vs real execution times on Atom, NR clusters of "
                "toeplz_1 and realft_4");

  std::unique_ptr<bench::Study> Study = bench::makeNrStudy();
  const MeasurementDatabase &Db = *Study->Db;

  PipelineConfig Cfg;
  Cfg.K = 14;
  PipelineResult R = Pipeline(Db, Cfg).run();

  std::size_t AtomIdx = 0;
  for (std::size_t T = 0; T < R.Targets.size(); ++T)
    if (R.Targets[T].MachineName == "Atom")
      AtomIdx = T;
  const TargetEvaluation &Atom = R.Targets[AtomIdx];

  std::vector<bool> IsRep(R.Kept.size(), false);
  for (std::size_t Rep : R.Selection.Representatives)
    IsRep[Rep] = true;

  // The two anchor codelets of the paper's figure.
  for (const std::string &Anchor : {std::string("toeplz_1"),
                                    std::string("realft_4")}) {
    int Cluster = -1;
    for (std::size_t I = 0; I < R.Kept.size(); ++I)
      if (Db.codelet(R.Kept[I]).Name == Anchor)
        Cluster = R.Selection.Assignment[I];
    if (Cluster < 0)
      continue;

    // Cluster speedup from its representative.
    std::size_t Rep = R.Selection.Representatives[Cluster];
    double RepSpeedup = Db.profile(R.Kept[Rep]).InApp.MeasuredSeconds /
                        Db.standaloneTarget(R.Kept[Rep], AtomIdx)
                            .MedianSeconds;

    std::cout << "Cluster of " << Anchor << "  (s = "
              << formatDouble(RepSpeedup, 2) << ")\n";
    TextTable T;
    T.setHeader({"codelet", "ref ms/inv", "Atom real ms", "Atom predicted ms",
                 "error"});
    for (std::size_t I = 0; I < R.Kept.size(); ++I) {
      if (R.Selection.Assignment[I] != Cluster)
        continue;
      std::string Name = Db.codelet(R.Kept[I]).Name;
      if (IsRep[I])
        Name = "<" + Name + ">";
      T.addRow({Name,
                formatDouble(
                    Db.profile(R.Kept[I]).InApp.MeasuredSeconds * 1e3, 2),
                formatDouble(Atom.Real[I] * 1e3, 2),
                formatDouble(Atom.Predicted[I] * 1e3, 2),
                formatPercent(Atom.ErrorsPercent[I], 2)});
    }
    T.print(std::cout);
    std::cout << "\n";
  }

  bench::paperNote(
      "Paper Figure 2: cluster 1 = {<toeplz_1>, rstrct_29, mprove_8, "
      "toeplz_4} with errors 0%, 3.69%, 36%, 4.52%; cluster 2 anchored by "
      "<realft_4> with 0%.  Shape: representatives exact, most siblings "
      "within a few percent, an occasional boundary codelet mispredicted.");
  return 0;
}
