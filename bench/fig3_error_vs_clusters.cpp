//===- bench/fig3_error_vs_clusters.cpp - Paper Figure 3 ------------------===//
//
// Regenerates Figure 3: the trade-off between the median prediction error
// and the benchmarking reduction factor on the NAS codelets as the number
// of clusters grows from 2 to 24, on all three targets.  The elbow-chosen
// K is marked with an asterisk.
//
//===----------------------------------------------------------------------===//

#include "bench/common.h"

#include <cctype>

using namespace fgbs;

int main() {
  obs::Session Telemetry("fig3_error_vs_clusters");
  bench::banner("Figure 3",
                "Median error and reduction factor vs number of clusters "
                "(NAS)");

  std::unique_ptr<bench::Study> Study = bench::makeNasStudy();
  const MeasurementDatabase &Db = *Study->Db;

  // The elbow choice (for the dotted line of the figure).
  PipelineResult Auto = Pipeline(Db, PipelineConfig()).run();
  unsigned Elbow = Auto.ElbowK;
  std::cout << "Elbow-selected K = " << Elbow << " (paper: 18)\n\n";
  Telemetry.recordValue("elbow_k", Elbow);
  for (const TargetEvaluation &E : Auto.Targets) {
    std::string Key = E.MachineName;
    for (char &C : Key)
      C = C == ' ' ? '_' : static_cast<char>(std::tolower(
                               static_cast<unsigned char>(C)));
    Telemetry.recordValue("elbow_median_err_pct." + Key,
                          E.MedianErrorPercent);
    Telemetry.recordValue("elbow_reduction_factor." + Key,
                          E.Reduction.totalFactor());
  }

  TextTable T;
  std::vector<std::string> Header = {"K"};
  for (const TargetEvaluation &E : Auto.Targets) {
    Header.push_back(E.MachineName + " med.err");
    Header.push_back(E.MachineName + " reduction");
  }
  T.setHeader(Header);

  for (unsigned K = 2; K <= 24; ++K) {
    PipelineConfig Cfg;
    Cfg.K = K;
    PipelineResult R = Pipeline(Db, Cfg).run();
    std::vector<std::string> Row = {std::to_string(K) +
                                    (K == Elbow ? " *" : "")};
    for (const TargetEvaluation &E : R.Targets) {
      Row.push_back(formatPercent(E.MedianErrorPercent));
      Row.push_back(formatFactor(E.Reduction.totalFactor()));
    }
    T.addRow(Row);
  }
  T.print(std::cout);
  std::cout << "\n(* = elbow choice)\n";

  bench::paperNote(
      "Paper Figure 3: error falls and the reduction factor falls as K "
      "grows; at the elbow (18) the paper reports Atom 8% / x44, Core 2 "
      "3.9% / x25, Sandy Bridge 5.8% / x23.  Shape: monotone error "
      "decrease, reduction factors in the tens at the elbow, Atom hardest "
      "to predict and most reduced.");
  return 0;
}
