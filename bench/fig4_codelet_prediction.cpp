//===- bench/fig4_codelet_prediction.cpp - Paper Figure 4 -----------------===//
//
// Regenerates Figure 4: per-codelet predicted and real execution times on
// Sandy Bridge, grouped by NAS application, against the Nehalem reference
// times.
//
//===----------------------------------------------------------------------===//

#include "bench/common.h"

using namespace fgbs;

int main() {
  obs::Session Telemetry("fig4_codelet_prediction");
  bench::banner("Figure 4",
                "Predicted vs real codelet times on Sandy Bridge, by NAS "
                "application");

  std::unique_ptr<bench::Study> Study = bench::makeNasStudy();
  const MeasurementDatabase &Db = *Study->Db;
  PipelineResult R = Pipeline(Db, PipelineConfig()).run();

  std::size_t SbIdx = 0;
  for (std::size_t T = 0; T < R.Targets.size(); ++T)
    if (R.Targets[T].MachineName == "Sandy Bridge")
      SbIdx = T;
  const TargetEvaluation &SB = R.Targets[SbIdx];

  unsigned Mispredicted = 0;
  for (const std::string &App : SB.AppNames) {
    std::cout << "--- " << App << " ---\n";
    TextTable T;
    T.setHeader({"codelet", "ref ms/inv", "SB real ms", "SB predicted ms",
                 "error"});
    for (std::size_t I = 0; I < R.Kept.size(); ++I) {
      if (Db.codelet(R.Kept[I]).App != App)
        continue;
      double Err = SB.ErrorsPercent[I];
      Mispredicted += Err > 20.0;
      T.addRow({Db.codelet(R.Kept[I]).Name,
                formatDouble(
                    Db.profile(R.Kept[I]).InApp.MeasuredSeconds * 1e3, 2),
                formatDouble(SB.Real[I] * 1e3, 2),
                formatDouble(SB.Predicted[I] * 1e3, 2),
                formatPercent(Err) + (Err > 20.0 ? "  <-- mispredicted" : "")});
    }
    T.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Median error: " << formatPercent(SB.MedianErrorPercent)
            << "; codelets with error > 20%: " << Mispredicted << " of "
            << R.Kept.size() << "\n";

  bench::paperNote(
      "Paper Figure 4: Sandy Bridge predicted with a 5.8% median error; "
      "only three codelets (in BT, LU and SP) are visibly mispredicted, "
      "and every codelet is faster on Sandy Bridge than on the reference. "
      "Shape: low median, isolated outliers, uniform speedups.");
  return 0;
}
