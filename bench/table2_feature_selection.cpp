//===- bench/table2_feature_selection.cpp - Paper Table 2 -----------------===//
//
// Regenerates Table 2: genetic-algorithm feature selection on the
// Numerical Recipes training set (section 4.2).
//
// Individuals are 76-bit masks over the feature catalog.  Fitness (to
// minimize) is max(avg_err_Atom, avg_err_SandyBridge) x K, where K is the
// number of representatives the elbow-cut clustering produces under that
// feature set.  Core 2 and the NAS benchmarks stay out of training, as in
// the paper.  GA parameters follow the paper: population 1000, 100
// generations, mutation probability 0.01.
//
//===----------------------------------------------------------------------===//

#include "bench/common.h"

#include "fgbs/ga/GeneticAlgorithm.h"

using namespace fgbs;

int main() {
  obs::Session Telemetry("table2_feature_selection");
  bench::banner("Table 2", "GA feature selection on Numerical Recipes");

  std::unique_ptr<bench::Study> Study = bench::makeNrStudy();
  const MeasurementDatabase &Db = *Study->Db;

  auto EvaluateMask = [&Db](const FeatureMask &Mask) {
    PipelineConfig Cfg;
    Cfg.Features = Mask;
    PipelineResult R = Pipeline(Db, Cfg).run();
    double ErrAtom = 0.0;
    double ErrSb = 0.0;
    for (const TargetEvaluation &E : R.Targets) {
      if (E.MachineName == "Atom")
        ErrAtom = E.AverageErrorPercent;
      if (E.MachineName == "Sandy Bridge")
        ErrSb = E.AverageErrorPercent;
    }
    return std::make_tuple(std::max(ErrAtom, ErrSb), R.Selection.FinalK,
                           ErrAtom, ErrSb);
  };

  GaConfig Cfg;
  Cfg.ChromosomeLength = NumFeatures;
  Cfg.PopulationSize = 1000;
  Cfg.Generations = 100;
  Cfg.MutationProbability = 0.01;
  Cfg.Seed = 0xC602014; // Deterministic study seed (CGO 2014).

  GaResult R = runGa(Cfg, [&](const Chromosome &C) {
    FeatureMask Mask(C.begin(), C.end());
    if (maskCount(Mask) == 0)
      return 1e12; // Infeasible: no features selected.
    auto [Err, K, A, S] = EvaluateMask(Mask);
    (void)A;
    (void)S;
    return Err * static_cast<double>(K);
  });

  FeatureMask Best(R.Best.begin(), R.Best.end());
  auto [BestErr, BestK, BestAtom, BestSb] = EvaluateMask(Best);
  Telemetry.recordValue("converged_at_generation", R.ConvergedAtGeneration);
  Telemetry.recordValue("fitness_evaluations",
                        static_cast<double>(R.Evaluations));
  Telemetry.recordValue("best_fitness", R.BestFitness);
  Telemetry.recordValue("best_k", BestK);

  std::cout << "GA converged at generation " << R.ConvergedAtGeneration
            << " (paper: 47) after " << R.Evaluations
            << " distinct fitness evaluations\n"
            << "Best fitness " << formatDouble(R.BestFitness, 2) << " = max("
            << formatPercent(BestAtom) << ", " << formatPercent(BestSb)
            << ") x K=" << BestK << "\n\n";

  const FeatureCatalog &Cat = FeatureCatalog::get();
  std::cout << "Selected dynamic (Likwid-like) features:\n";
  for (std::size_t I = 0; I < NumFeatures; ++I)
    if (Best[I] && Cat.info(I).Kind == FeatureKind::Dynamic)
      std::cout << "  - " << Cat.info(I).Name << "\n";
  std::cout << "Selected static (MAQAO-like) features:\n";
  for (std::size_t I = 0; I < NumFeatures; ++I)
    if (Best[I] && Cat.info(I).Kind == FeatureKind::Static)
      std::cout << "  - " << Cat.info(I).Name << "\n";

  // Overlap with the paper's published feature set.
  FeatureMask PaperMask = maskForNames(kTable2FeatureNames);
  unsigned Overlap = 0;
  for (std::size_t I = 0; I < NumFeatures; ++I)
    Overlap += Best[I] && PaperMask[I];
  auto [PaperErr, PaperK, PaperAtom, PaperSb] = EvaluateMask(PaperMask);
  std::cout << "\nSelected " << maskCount(Best) << " features; " << Overlap
            << " overlap with the paper's 14-feature set.\n"
            << "Paper's Table 2 set on this testbed: fitness "
            << formatDouble(PaperErr * PaperK, 2) << " = max("
            << formatPercent(PaperAtom) << ", " << formatPercent(PaperSb)
            << ") x K=" << PaperK << "\n";

  bench::paperNote(
      "Paper Table 2: the GA converges by generation 47 to 14 features "
      "(4 Likwid: MFLOPS, L2 bandwidth, L3 miss rate, memory bandwidth; "
      "10 MAQAO: bytes stored/cycle, dependency stalls, est. IPC, #DIV, "
      "#SD, port-P1 pressure, ADD+SUB/MUL, and three vectorization "
      "ratios).  Shape: a small mixed static+dynamic set wins; bandwidth/"
      "miss-rate dynamics plus vectorization/divider statics recur.");
  return 0;
}
