//===- bench/remote_cache_throughput.cpp - Networked-cache benchmarks -----===//
//
// Google-benchmark microbenchmarks of the remote measurement-cache
// tier: put/get round trips against an in-process loopback fgbs_cached
// server at 1-8 client threads, the writer-lease cycle every cold store
// pays, and the tiered backend's warm local hit (the steady state of a
// fleet run — it must stay a filesystem read, never a network round
// trip).  Numbers are checked into BENCH_remote_cache.json for the CI
// perf gate.
//
//===----------------------------------------------------------------------===//

#include "fgbs/core/RemoteCacheBackend.h"
#include "fgbs/core/TieredCacheBackend.h"
#include "fgbs/net/CacheServer.h"
#include "fgbs/obs/RunReport.h"
#include "fgbs/support/Crc32.h"

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include <unistd.h>

using namespace fgbs;
namespace fs = std::filesystem;

namespace {

/// A representative entry size: the synthetic-suite fgbs.meas.v1
/// payload is a few hundred KB; 256 KiB keeps the wire cost honest
/// without dominating CI time.
constexpr std::size_t kBlobBytes = 256u << 10;

std::string benchBlob() {
  std::string Out;
  Out.reserve(kBlobBytes);
  for (std::size_t I = 0; I < kBlobBytes; ++I)
    Out.push_back(static_cast<char>(I * 131 % 256));
  return Out;
}

/// One loopback server for the whole binary, over a scratch directory.
class BenchServer {
public:
  BenchServer() {
    Root = fs::temp_directory_path() /
           ("fgbs_bench_remote_cache_" +
            std::to_string(static_cast<long>(::getpid())));
    fs::remove_all(Root);
    net::CacheServerConfig Config;
    Config.Root = (Root / "server").string();
    Config.Shards = 4;
    // Connections are long-lived and worker-bound, so the pool must
    // cover the widest client fan-out below (8 bench threads) or the
    // excess clients would measure queueing, not the wire.
    Config.Threads = 16;
    Config.BindAddr = "127.0.0.1";
    Server = std::make_unique<net::CacheServer>(std::move(Config));
    std::string Error;
    if (!Server->start(&Error)) {
      std::fprintf(stderr, "cannot start bench server: %s\n", Error.c_str());
      std::abort();
    }
  }
  ~BenchServer() {
    Server->stop();
    fs::remove_all(Root);
  }

  std::uint16_t port() const { return Server->port(); }
  const fs::path &root() const { return Root; }

private:
  fs::path Root;
  std::unique_ptr<net::CacheServer> Server;
};

BenchServer &server() {
  static BenchServer S;
  return S;
}

RemoteCacheConfig clientConfig() {
  RemoteCacheConfig Config;
  Config.Host = "127.0.0.1";
  Config.Port = server().port();
  return Config;
}

std::string uniqueName(const char *Tag, std::uint64_t N) {
  char Name[64];
  std::snprintf(Name, sizeof(Name), "fgbs-meas-%08x%08x.v1",
                static_cast<unsigned>(N & 0xffffffffu),
                static_cast<unsigned>(crc32(Tag)));
  return Name;
}

/// Cold stores: every iteration publishes a fresh 256 KiB entry.  The
/// per-op cost is one frame each way plus the server's atomic publish.
void BM_RemoteColdPut(benchmark::State &State) {
  static const std::string Blob = benchBlob();
  // Per-thread client: the backend serializes its pooled connection, so
  // sharing one across threads would measure the mutex, not the wire.
  RemoteCacheBackend Client(clientConfig());
  static std::atomic<std::uint64_t> Serial{0};
  for (auto _ : State) {
    if (!Client.put(uniqueName("coldput", Serial.fetch_add(1)), Blob))
      State.SkipWithError("put failed");
  }
  State.SetBytesProcessed(static_cast<std::int64_t>(State.iterations()) *
                          static_cast<std::int64_t>(Blob.size()));
}
BENCHMARK(BM_RemoteColdPut)->ThreadRange(1, 8)->Unit(benchmark::kMicrosecond);

/// Warm gets of one shared entry — the fleet's "host B loads what host
/// A simulated" path.
void BM_RemoteWarmGet(benchmark::State &State) {
  static const std::string Blob = benchBlob();
  static const std::string Name = [&] {
    RemoteCacheBackend Seeder(clientConfig());
    std::string N = uniqueName("warmget", 0);
    Seeder.put(N, Blob);
    return N;
  }();
  RemoteCacheBackend Client(clientConfig());
  std::string Bytes;
  for (auto _ : State) {
    if (!Client.get(Name, Bytes))
      State.SkipWithError("get failed");
    benchmark::DoNotOptimize(Bytes);
  }
  State.SetBytesProcessed(static_cast<std::int64_t>(State.iterations()) *
                          static_cast<std::int64_t>(Blob.size()));
}
BENCHMARK(BM_RemoteWarmGet)->ThreadRange(1, 8)->Unit(benchmark::kMicrosecond);

/// The writer-lease acquire/release round trips a cold store pays on
/// top of its put — the wire twin of BM_FileLockCycle.
void BM_RemoteLeaseCycle(benchmark::State &State) {
  RemoteCacheBackend Client(clientConfig());
  const std::string Name = uniqueName("lease", 1);
  FileLock::Options O;
  O.TimeoutMs = 10000;
  for (auto _ : State) {
    std::unique_ptr<WriterLock> Lock = Client.writerLock(Name);
    WriterLock::Result R = Lock->acquire(O);
    if (!R)
      State.SkipWithError("lease denied");
    Lock->release();
  }
  State.SetItemsProcessed(static_cast<std::int64_t>(State.iterations()));
}
BENCHMARK(BM_RemoteLeaseCycle)->Unit(benchmark::kMicrosecond);

/// The tiered steady state: the entry is already in the local tier, so
/// a get must cost a local file read and touch the network not at all.
/// This is the number the perf gate pins — a regression here means the
/// remote tier started taxing every warm run.
void BM_TieredWarmLocalHit(benchmark::State &State) {
  static const std::string Blob = benchBlob();
  static const std::string Name = uniqueName("tiered", 2);
  thread_local std::unique_ptr<TieredCacheBackend> Tiered;
  if (!Tiered) {
    const std::string LocalDir =
        (server().root() /
         ("local-" + std::to_string(State.thread_index())))
            .string();
    Tiered = std::make_unique<TieredCacheBackend>(
        std::make_unique<LocalDirBackend>(LocalDir),
        std::make_unique<RemoteCacheBackend>(clientConfig()));
    Tiered->put(Name, Blob);
    Tiered->flushWriteBacks();
  }
  std::string Bytes;
  for (auto _ : State) {
    if (!Tiered->get(Name, Bytes))
      State.SkipWithError("tiered get failed");
    benchmark::DoNotOptimize(Bytes);
  }
  State.SetBytesProcessed(static_cast<std::int64_t>(State.iterations()) *
                          static_cast<std::int64_t>(Blob.size()));
}
BENCHMARK(BM_TieredWarmLocalHit)->ThreadRange(1, 8)
    ->Unit(benchmark::kMicrosecond);

/// Console output as usual, plus every per-iteration result recorded
/// into the telemetry session so the run exports as fgbs.run.v1 (the
/// schema bench/BENCH_remote_cache.json and the CI perf gate consume).
class SessionReporter : public benchmark::ConsoleReporter {
public:
  explicit SessionReporter(obs::Session &Out) : Out(Out) {}

  void ReportRuns(const std::vector<Run> &Reports) override {
    for (const Run &R : Reports)
      if (R.run_type == Run::RT_Iteration && !R.error_occurred)
        Out.recordBenchmark(R.benchmark_name(), R.GetAdjustedRealTime());
    ConsoleReporter::ReportRuns(Reports);
  }

private:
  obs::Session &Out;
};

} // namespace

int main(int argc, char **argv) {
  // Honours FGBS_RUN_JSON / FGBS_TRACE_JSON / FGBS_TELEMETRY; with none
  // of them set this is exactly BENCHMARK_MAIN().
  obs::Session Run("remote_cache_throughput");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  SessionReporter Reporter(Run);
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  benchmark::Shutdown();
  return 0;
}
