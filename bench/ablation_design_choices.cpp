//===- bench/ablation_design_choices.cpp - Design-choice ablations --------===//
//
// Ablates the method's design choices on the NAS suite (DESIGN.md
// section 5): Ward linkage vs the alternatives, feature normalization,
// medoid representatives, ill-behaved re-selection, the Table 2 feature
// subset vs other masks, and the reduced-invocation timing policy.
// Reported per configuration: final K, per-target median error, and the
// Atom benchmarking-reduction factor.
//
//===----------------------------------------------------------------------===//

#include "bench/common.h"

#include "fgbs/cluster/Quality.h"
#include "fgbs/core/Validation.h"

using namespace fgbs;

namespace {

void report(TextTable &T, const std::string &Label,
            const MeasurementDatabase &Db, const PipelineConfig &Cfg) {
  PipelineResult R = Pipeline(Db, Cfg).run();
  std::vector<std::string> Row = {Label,
                                  std::to_string(R.Selection.FinalK)};
  double AtomReduction = 0.0;
  for (const TargetEvaluation &E : R.Targets) {
    Row.push_back(formatPercent(E.MedianErrorPercent));
    if (E.MachineName == "Atom")
      AtomReduction = E.Reduction.totalFactor();
  }
  Row.push_back(formatFactor(AtomReduction));
  T.addRow(Row);
}

} // namespace

int main() {
  obs::Session Telemetry("ablation_design_choices");
  bench::banner("Ablation", "Design-choice ablations on the NAS suite");

  std::unique_ptr<bench::Study> Study = bench::makeNasStudy();
  const MeasurementDatabase &Db = *Study->Db;

  TextTable T;
  T.setHeader({"configuration", "K", "Atom err", "Core 2 err", "SB err",
               "Atom reduction"});

  PipelineConfig Base;
  report(T, "paper defaults (Ward, Table2, medoid, reselect)", Db, Base);
  T.addSeparator();

  for (auto [Label, L] :
       {std::pair<const char *, Linkage>{"single linkage", Linkage::Single},
        {"complete linkage", Linkage::Complete},
        {"average linkage", Linkage::Average}}) {
    PipelineConfig Cfg;
    Cfg.LinkageMethod = L;
    report(T, Label, Db, Cfg);
  }
  T.addSeparator();

  {
    PipelineConfig Cfg;
    Cfg.Normalize = false;
    report(T, "no feature normalization", Db, Cfg);
  }
  {
    PipelineConfig Cfg;
    Cfg.MedoidRepresentative = false;
    report(T, "first-member representative (no medoid)", Db, Cfg);
  }
  {
    PipelineConfig Cfg;
    Cfg.ReSelectIllBehaved = false;
    report(T, "no ill-behaved re-selection", Db, Cfg);
  }
  T.addSeparator();

  {
    PipelineConfig Cfg;
    Cfg.Features = allFeaturesMask();
    report(T, "all 76 features", Db, Cfg);
  }
  {
    PipelineConfig Cfg;
    Cfg.Features = FeatureMask(NumFeatures, false);
    for (std::size_t I : FeatureCatalog::get().dynamicIndices())
      Cfg.Features[I] = true;
    report(T, "dynamic features only", Db, Cfg);
  }
  {
    PipelineConfig Cfg;
    Cfg.Features = FeatureMask(NumFeatures, false);
    for (std::size_t I : FeatureCatalog::get().staticIndices())
      Cfg.Features[I] = true;
    report(T, "static features only", Db, Cfg);
  }
  {
    // K-selection ablation: silhouette-optimal K instead of the elbow.
    FeatureTable Points = Pipeline(Db, Base).buildPoints();
    Dendrogram Tree = hierarchicalCluster(Points);
    PipelineConfig Cfg;
    Cfg.K = silhouetteK(Points, Tree, Base.MaxK);
    report(T, "silhouette-selected K (vs elbow)", Db, Cfg);
  }
  T.print(std::cout);

  // Representative-advantage check: leave-one-out errors remove the
  // "representatives are predicted exactly" freebie.
  {
    PipelineResult R = Pipeline(Db, Base).run();
    std::cout << "\nLeave-one-out validation (representative advantage "
                 "removed):\n";
    TextTable Loo;
    Loo.setHeader({"target", "in-model median err", "LOO median err",
                   "unvalidated (singletons)"});
    for (std::size_t TI = 0; TI < R.Targets.size(); ++TI) {
      LooResult L = leaveOneOutErrors(Db, R, TI);
      Loo.addRow({R.Targets[TI].MachineName,
                  formatPercent(R.Targets[TI].MedianErrorPercent),
                  formatPercent(L.MedianErrorPercent),
                  std::to_string(L.Skipped)});
    }
    Loo.print(std::cout);
  }

  // Timing-policy ablation needs a re-measured database: single
  // invocation, no 1 ms floor (what naive microbenchmarking would do).
  std::cout << "\nTiming-policy ablation (rebuilds the database):\n";
  TimingPolicy Naive;
  Naive.MinInvocations = 1;
  Naive.MinRunSeconds = 0.0;
  Suite Nas = makeNasSer();
  MeasurementDatabase NaiveDb(Nas, makeNehalem(), paperTargets(), Naive);
  TextTable T2;
  T2.setHeader({"configuration", "K", "Atom err", "Core 2 err", "SB err",
                "Atom reduction"});
  report(T2, "paper policy (>=1ms, >=10 invocations, median)", Db, Base);
  report(T2, "single-invocation timing", NaiveDb, Base);
  T2.print(std::cout);

  bench::paperNote(
      "Expected shape: Ward with normalized Table 2 features and medoid "
      "representatives is on the accuracy frontier; dropping "
      "normalization or using single linkage degrades clustering; "
      "single-invocation timing raises error (noisier representative "
      "measurements) while buying a larger reduction factor.");
  return 0;
}
