//===- bench/table5_reduction_breakdown.cpp - Paper Table 5 ---------------===//
//
// Regenerates Table 5: the benchmarking-reduction factor breakdown on the
// NAS suite with the elbow-selected representative count — the total
// factor split into the invocation-reduction factor (microbenchmarks run
// few invocations) and the clustering factor (only representatives run).
//
//===----------------------------------------------------------------------===//

#include "bench/common.h"

#include "fgbs/extract/Extraction.h"

using namespace fgbs;

int main() {
  obs::Session Telemetry("table5_reduction_breakdown");
  bench::banner("Table 5", "Benchmarking reduction factor breakdown (NAS)");

  std::unique_ptr<bench::Study> Study = bench::makeNasStudy();
  PipelineResult R = Pipeline(*Study->Db, PipelineConfig()).run();

  std::cout << "Representatives: " << R.Selection.Representatives.size()
            << " (elbow K = " << R.ElbowK << "; paper: 18)\n\n";

  TextTable T;
  T.setHeader({"Reduction", "Total", "Reduced invocations", "Clustering"});
  for (const TargetEvaluation &E : R.Targets)
    T.addRow({E.MachineName, formatFactor(E.Reduction.totalFactor()),
              formatFactor(E.Reduction.invocationFactor()),
              formatFactor(E.Reduction.clusteringFactor())});
  T.print(std::cout);

  std::cout << "\nOne-time overhead model (section 5): extracting "
            << R.Selection.Representatives.size()
            << " representatives costs ~"
            << formatDouble(ExtractionMinutesPerCodelet *
                                static_cast<double>(
                                    R.Selection.Representatives.size()),
                            0)
            << " minutes (paper: 380 minutes for 18), amortized across "
               "target machines.\n";

  bench::paperNote(
      "Paper Table 5 (18 representatives): Atom x44.3 total = x12 "
      "invocations x 3.7 clustering; Core 2 x24.7 = x8.7 x 2.8; Sandy "
      "Bridge x22.5 = x6.3 x 3.6.  Shape: both factors contribute "
      "multiplicatively, clustering factor near (codelets / "
      "representatives), Atom benefits most.");
  return 0;
}
