//===- bench/common.h - Shared glue for the paper-reproduction benches ----===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
// Each bench binary regenerates one table or figure of the paper's
// evaluation section.  They share the database construction and a few
// printing helpers, collected here.  This header is bench-only glue, not
// part of the library API.
//
//===----------------------------------------------------------------------===//

#ifndef FGBS_BENCH_COMMON_H
#define FGBS_BENCH_COMMON_H

#include "fgbs/core/MeasurementCache.h"
#include "fgbs/core/Pipeline.h"
#include "fgbs/obs/RunReport.h"
#include "fgbs/suites/Suites.h"
#include "fgbs/support/Statistics.h"
#include "fgbs/support/TextTable.h"

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

namespace fgbs {
namespace bench {

/// A suite together with its measurement database (the suite must outlive
/// the database, hence the bundle).
///
/// The database build honors the shared environment knobs: FGBS_THREADS
/// picks the measurement fan-out (0/unset = auto) and FGBS_MEAS_CACHE
/// names a directory of fgbs.meas.v1 files — when set, a warm run loads
/// the finished database instead of re-simulating (see
/// core/MeasurementCache.h).  The cache is safe to share across
/// concurrently launched benches: cold runs coordinate through a
/// per-entry file lock (FGBS_MEAS_CACHE_LOCK_MS caps the wait) so only
/// one simulates, and FGBS_MEAS_CACHE_MAX_BYTES LRU-bounds the
/// directory.  Either way the numbers are bit-identical to a serial,
/// uncached build.
struct Study {
  Suite TheSuite;
  std::unique_ptr<MeasurementDatabase> Db;

  explicit Study(Suite S) : TheSuite(std::move(S)) {
    DatabaseBuildOptions Options;
    if (const char *Dir = std::getenv("FGBS_MEAS_CACHE"))
      Options.CacheDir = Dir;
    Db = buildMeasurementDatabase(TheSuite, makeNehalem(), paperTargets(),
                                  Options);
  }
};

inline std::unique_ptr<Study> makeNrStudy() {
  return std::make_unique<Study>(makeNumericalRecipes());
}

inline std::unique_ptr<Study> makeNasStudy() {
  return std::make_unique<Study>(makeNasSer());
}

/// Every bench main() opens an obs::Session named after its binary as
/// its first statement, then records headline results into it with
/// recordValue(); FGBS_RUN_JSON / FGBS_TRACE_JSON / FGBS_TELEMETRY
/// export the run in the common fgbs.run.v1 schema (see obs/RunReport.h).

/// Prints the standard banner for one experiment.
inline void banner(const std::string &Id, const std::string &Title) {
  std::cout << "==============================================================="
               "=\n"
            << Id << " -- " << Title << "\n"
            << "Reproduction of de Oliveira Castro et al., CGO 2014.\n"
            << "==============================================================="
               "=\n\n";
}

/// Prints a short paper-vs-measured note.
inline void paperNote(const std::string &Note) {
  std::cout << "\n[paper] " << Note << "\n";
}

} // namespace bench
} // namespace fgbs

#endif // FGBS_BENCH_COMMON_H
