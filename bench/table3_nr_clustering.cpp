//===- bench/table3_nr_clustering.cpp - Paper Table 3 ---------------------===//
//
// Regenerates Table 3: the Numerical Recipes clustering with K = 14 and
// per-codelet Atom speedups.  For each codelet: its cluster, computation
// pattern, stride summary, vectorization tag and ratio (MAQAO-style), and
// the measured speedup on Atom; representatives are marked with angle
// brackets, as in the paper.
//
//===----------------------------------------------------------------------===//

#include "bench/common.h"

#include "fgbs/cluster/Render.h"
#include "fgbs/compiler/Compiler.h"

#include <algorithm>

using namespace fgbs;

int main() {
  obs::Session Telemetry("table3_nr_clustering");
  bench::banner("Table 3", "NR clustering with 14 clusters and Atom speedups");

  std::unique_ptr<bench::Study> Study = bench::makeNrStudy();
  const MeasurementDatabase &Db = *Study->Db;

  PipelineConfig Cfg;
  Cfg.K = 14; // The paper's manual cut for Table 3.
  PipelineResult R = Pipeline(Db, Cfg).run();

  // Locate the Atom target.
  std::size_t AtomIdx = 0;
  for (std::size_t T = 0; T < R.Targets.size(); ++T)
    if (R.Targets[T].MachineName == "Atom")
      AtomIdx = T;
  const TargetEvaluation &Atom = R.Targets[AtomIdx];

  std::vector<bool> IsRep(R.Kept.size(), false);
  for (std::size_t Rep : R.Selection.Representatives)
    IsRep[Rep] = true;

  // Order rows by cluster, then by name, like the dendrogram grouping.
  std::vector<std::size_t> Order(R.Kept.size());
  for (std::size_t I = 0; I < Order.size(); ++I)
    Order[I] = I;
  std::stable_sort(Order.begin(), Order.end(),
                   [&R](std::size_t A, std::size_t B) {
                     return R.Selection.Assignment[A] <
                            R.Selection.Assignment[B];
                   });

  TextTable T;
  T.setHeader({"C", "Codelet", "Computation Pattern", "Stride", "Vec.",
               "Vec. %", "s(Atom)"});
  int LastCluster = -1;
  Machine Ref = makeNehalem();
  for (std::size_t I : Order) {
    const Codelet &C = Db.codelet(R.Kept[I]);
    int Cluster = R.Selection.Assignment[I];
    if (Cluster != LastCluster && LastCluster >= 0)
      T.addSeparator();
    LastCluster = Cluster;

    BinaryLoop Loop = compile(C, Ref, CompilationContext::InApplication);
    double Speedup =
        Db.profile(R.Kept[I]).InApp.MeasuredSeconds / Atom.Real[I];
    std::string SpeedupCell = formatDouble(Speedup, 2);
    if (IsRep[I])
      SpeedupCell = "<" + SpeedupCell + ">";
    T.addRow({std::to_string(Cluster + 1), C.Name, C.Pattern,
              C.strideSummary(), vectorizationTag(Loop),
              formatDouble(Loop.vectorizedPercent(), 0), SpeedupCell});
  }
  T.print(std::cout);

  // The dendrogram of the paper's Table 3 left panel, with the K=14 cut
  // marked.
  std::cout << "\nWard dendrogram (cut producing 14 clusters marked):\n";
  Dendrogram Tree = hierarchicalCluster(R.Points, Linkage::Ward);
  std::vector<std::string> Labels;
  for (std::size_t Index : R.Kept)
    Labels.push_back(Db.codelet(Index).Name);
  std::cout << renderDendrogram(Tree, Labels, /*CutK=*/14);

  bench::paperNote(
      "Paper Table 3 groups the 28 NR codelets into 14 clusters with Atom "
      "speedups between 0.12 and 0.53; representatives in angle brackets. "
      "Expect the same shape: homogeneous vectorization inside clusters, "
      "divide kernels isolated, LDA walks clustered apart from streaming "
      "kernels.");
  return 0;
}
