//===- bench/perf_library.cpp - Library performance microbenchmarks -------===//
//
// Google-benchmark microbenchmarks of the library's hot paths: the
// trace-driven cache hierarchy, the executor, Ward clustering, the elbow
// search, representative selection, the prediction model, feature
// computation, and GA generations.  These guard the costs that make the
// cluster-count sweeps (Figure 3/7) and the GA (Table 2) tractable.
//
//===----------------------------------------------------------------------===//

#include "fgbs/cluster/Hierarchical.h"
#include "fgbs/core/Pipeline.h"
#include "fgbs/dsl/Builder.h"
#include "fgbs/dsl/Text.h"
#include "fgbs/ga/GeneticAlgorithm.h"
#include "fgbs/obs/RunReport.h"
#include "fgbs/suites/Suites.h"
#include "fgbs/suites/Synthetic.h"
#include "fgbs/support/Rng.h"

#include <benchmark/benchmark.h>

using namespace fgbs;

namespace {

FeatureTable syntheticPoints(std::size_t N, std::size_t Dim) {
  Rng R(99);
  FeatureTable Points(N, std::vector<double>(Dim));
  for (auto &P : Points)
    for (double &V : P)
      V = R.normal();
  return Points;
}

Codelet benchCodelet(std::uint64_t Elems) {
  CodeletBuilder B("perf_triad", "perf");
  unsigned A = B.array("a", Precision::DP, Elems);
  unsigned X = B.array("x", Precision::DP, Elems);
  B.loops(Elems);
  B.stmt(storeTo(B.at(A, StrideClass::Unit),
                 add(B.ld(X, StrideClass::Unit),
                     mul(constant(Precision::DP),
                         B.ld(A, StrideClass::Unit)))));
  return B.take();
}

void BM_CacheHierarchyAccess(benchmark::State &State) {
  Machine M = makeNehalem();
  CacheHierarchy H(M);
  std::uint64_t Addr = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(H.access(Addr));
    Addr += 64;
    Addr &= (64 << 20) - 1;
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_CacheHierarchyAccess);

void BM_SampleMemoryBehavior(benchmark::State &State) {
  Machine M = makeNehalem();
  std::vector<MemoryStreamDesc> Streams = {
      {8, 8ull << 20, 1, false, 8}, {8, 8ull << 20, 1, true, 8}};
  for (auto _ : State)
    benchmark::DoNotOptimize(sampleMemoryBehavior(Streams, M, 1 << 20));
}
BENCHMARK(BM_SampleMemoryBehavior);

void BM_ExecutorRun(benchmark::State &State) {
  Codelet C = benchCodelet(1 << 20);
  Machine M = makeNehalem();
  for (auto _ : State)
    benchmark::DoNotOptimize(execute(C, M, ExecutionRequest()));
}
BENCHMARK(BM_ExecutorRun);

void BM_CompileCodelet(benchmark::State &State) {
  Codelet C = benchCodelet(1 << 20);
  Machine M = makeNehalem();
  for (auto _ : State)
    benchmark::DoNotOptimize(
        compile(C, M, CompilationContext::InApplication));
}
BENCHMARK(BM_CompileCodelet);

// N-scaling sweep shared by the clustering benchmarks: 67 is the paper's
// NAS codelet count, the powers of two track the production-scale
// trajectory (BENCH_clustering.json records the checked-in baseline).
void clusteringArgs(benchmark::internal::Benchmark *B) {
  B->Arg(64)->Arg(67)->Arg(256)->Arg(1024)->Arg(4096)->Complexity();
}

void BM_WardCluster(benchmark::State &State) {
  FeatureTable Points = syntheticPoints(State.range(0), 14);
  for (auto _ : State)
    benchmark::DoNotOptimize(hierarchicalCluster(Points, Linkage::Ward));
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_WardCluster)->Apply(clusteringArgs);

// The retained O(N^3) closest-pair reference; its recorded times in
// BENCH_clustering.json are the baseline the NN-chain speedup is judged
// against (no 4096 point: the cubic cost makes it minutes per run).
void BM_WardClusterNaive(benchmark::State &State) {
  FeatureTable Points = syntheticPoints(State.range(0), 14);
  for (auto _ : State)
    benchmark::DoNotOptimize(hierarchicalClusterNaive(Points, Linkage::Ward));
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_WardClusterNaive)->Arg(64)->Arg(67)->Arg(256)->Arg(1024)
    ->Complexity();

void BM_ElbowSearch(benchmark::State &State) {
  FeatureTable Points = syntheticPoints(State.range(0), 14);
  Dendrogram Tree = hierarchicalCluster(Points);
  for (auto _ : State)
    benchmark::DoNotOptimize(elbowK(Points, Tree, 24));
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_ElbowSearch)->Apply(clusteringArgs);

void BM_RepresentativeSelection(benchmark::State &State) {
  FeatureTable Points = syntheticPoints(67, 14);
  Dendrogram Tree = hierarchicalCluster(Points);
  Clustering C = Tree.cut(18);
  for (auto _ : State)
    benchmark::DoNotOptimize(selectRepresentatives(
        Points, C, [](std::size_t) { return true; }));
}
BENCHMARK(BM_RepresentativeSelection);

void BM_PredictionModel(benchmark::State &State) {
  Rng R(7);
  std::vector<double> RefTimes(67);
  std::vector<int> Assignment(67);
  for (std::size_t I = 0; I < 67; ++I) {
    RefTimes[I] = 0.001 + R.uniform();
    Assignment[I] = static_cast<int>(I % 18);
  }
  std::vector<std::size_t> Reps;
  for (std::size_t K = 0; K < 18; ++K)
    Reps.push_back(K); // Codelet K is in cluster K.
  std::vector<double> RepTimes(18, 0.5);
  for (auto _ : State) {
    PredictionModel M = PredictionModel::build(RefTimes, Assignment, Reps);
    benchmark::DoNotOptimize(M.predict(RepTimes));
  }
}
BENCHMARK(BM_PredictionModel);

void BM_FeatureComputation(benchmark::State &State) {
  Codelet C = benchCodelet(1 << 20);
  Machine Ref = makeNehalem();
  Measurement M = measureInApp(C, Ref);
  for (auto _ : State)
    benchmark::DoNotOptimize(computeFeatures(C, Ref, M));
}
BENCHMARK(BM_FeatureComputation);

double countZeros(const Chromosome &C) {
  double Zeros = 0.0;
  for (bool Bit : C)
    Zeros += !Bit;
  return Zeros;
}

// Population-size scaling of the GA's generation loop, evaluated with
// the auto thread count (FGBS_THREADS / hardware_concurrency).
void BM_GaGeneration(benchmark::State &State) {
  for (auto _ : State) {
    GaConfig Cfg;
    Cfg.ChromosomeLength = 76;
    Cfg.PopulationSize = static_cast<std::size_t>(State.range(0));
    Cfg.Generations = 5;
    benchmark::DoNotOptimize(runGa(Cfg, countZeros));
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_GaGeneration)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)
    ->Complexity();

// Single-threaded reference for the same sweep: the parallel fan-out
// must never lose to this by more than scheduling noise.
void BM_GaGenerationSerial(benchmark::State &State) {
  for (auto _ : State) {
    GaConfig Cfg;
    Cfg.ChromosomeLength = 76;
    Cfg.PopulationSize = static_cast<std::size_t>(State.range(0));
    Cfg.Generations = 5;
    Cfg.Threads = 1;
    benchmark::DoNotOptimize(runGa(Cfg, countZeros));
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_GaGenerationSerial)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)
    ->Complexity();

void BM_PipelineRerun(benchmark::State &State) {
  // Steps C-E over a prebuilt database: the cost of one point in the
  // Figure 3 K-sweep or one Figure 7 random-clustering evaluation.
  static Suite S = makeSyntheticSuite({});
  static MeasurementDatabase Db(S, makeNehalem(), {makeSandyBridge()});
  Pipeline P(Db, PipelineConfig());
  for (auto _ : State)
    benchmark::DoNotOptimize(P.run());
}
BENCHMARK(BM_PipelineRerun);

void BM_SuiteTextRoundTrip(benchmark::State &State) {
  Suite S = makeSyntheticSuite({});
  for (auto _ : State) {
    std::string Printed = printSuite(S);
    benchmark::DoNotOptimize(parseSuite(Printed));
  }
}
BENCHMARK(BM_SuiteTextRoundTrip);

void BM_SyntheticGeneration(benchmark::State &State) {
  SyntheticConfig Config;
  Config.NumApplications = 8;
  Config.CodeletsPerApp = 16;
  std::uint64_t Seed = 0;
  for (auto _ : State) {
    Config.Seed = ++Seed;
    benchmark::DoNotOptimize(makeSyntheticSuite(Config));
  }
}
BENCHMARK(BM_SyntheticGeneration);

void BM_RandomClustering(benchmark::State &State) {
  std::uint64_t Seed = 0;
  for (auto _ : State)
    benchmark::DoNotOptimize(randomClustering(67, 18, ++Seed));
}
BENCHMARK(BM_RandomClustering);

/// Console output as usual, plus every per-iteration result recorded
/// into the telemetry session so the run exports as fgbs.run.v1 (the
/// schema bench/BENCH_clustering.json and the CI perf gate consume).
class SessionReporter : public benchmark::ConsoleReporter {
public:
  explicit SessionReporter(obs::Session &Out) : Out(Out) {}

  void ReportRuns(const std::vector<Run> &Reports) override {
    for (const Run &R : Reports)
      if (R.run_type == Run::RT_Iteration && !R.error_occurred)
        Out.recordBenchmark(R.benchmark_name(), R.GetAdjustedRealTime());
    ConsoleReporter::ReportRuns(Reports);
  }

private:
  obs::Session &Out;
};

} // namespace

int main(int argc, char **argv) {
  // Honours FGBS_RUN_JSON / FGBS_TRACE_JSON / FGBS_TELEMETRY; with none
  // of them set this is exactly BENCHMARK_MAIN().
  obs::Session Run("perf_library");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  SessionReporter Reporter(Run);
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  benchmark::Shutdown();
  return 0;
}
