//===- bench/service_throughput.cpp - Query service microbenchmarks -------===//
//
// Google-benchmark microbenchmarks of the online service path: snapshot
// serialize/parse, single classify/predict queries, and batched
// prediction at 1-8 pool threads (single vs batched is the headline
// comparison — batching must not cost latency at one thread and must
// scale with more).  Numbers are checked into BENCH_service.json for the
// CI perf gate.
//
//===----------------------------------------------------------------------===//

#include "fgbs/obs/RunReport.h"
#include "fgbs/service/SelectionService.h"
#include "fgbs/service/Snapshot.h"
#include "fgbs/suites/Suites.h"
#include "fgbs/suites/Synthetic.h"
#include "fgbs/support/Rng.h"

#include <benchmark/benchmark.h>

using namespace fgbs;
using namespace fgbs::service;

namespace {

/// One trained synthetic model, built on first use and shared by every
/// benchmark (training cost must not pollute the timed regions).
const ModelSnapshot &sharedModel() {
  static const ModelSnapshot Model = [] {
    static Suite S = makeSyntheticSuite({});
    static MeasurementDatabase Db(S, makeNehalem(), paperTargets());
    PipelineResult R = Pipeline(Db, PipelineConfig()).run();
    return buildSnapshot(Db, R);
  }();
  return Model;
}

const SelectionService &sharedService() {
  static const SelectionService Svc{ModelSnapshot(sharedModel())};
  return Svc;
}

/// Deterministic query load: plausible feature vectors spread across the
/// feature space, with positive reference times.
std::vector<QueryRequest> makeQueries(std::size_t N) {
  Rng R(4242);
  std::vector<QueryRequest> Queries(N);
  for (QueryRequest &Q : Queries) {
    Q.Features.resize(sharedModel().numFeatures());
    for (double &V : Q.Features)
      V = 8.0 * R.normal();
    Q.ReferenceSeconds = 1e-4 + 1e-3 * R.uniform();
  }
  return Queries;
}

void BM_SnapshotSerialize(benchmark::State &State) {
  const ModelSnapshot &S = sharedModel();
  for (auto _ : State)
    benchmark::DoNotOptimize(serializeSnapshot(S));
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_SnapshotSerialize);

void BM_SnapshotParse(benchmark::State &State) {
  std::string Bytes = serializeSnapshot(sharedModel());
  for (auto _ : State) {
    SnapshotLoadResult R = parseSnapshot(Bytes);
    benchmark::DoNotOptimize(R);
  }
  State.SetBytesProcessed(static_cast<std::int64_t>(State.iterations()) *
                          static_cast<std::int64_t>(Bytes.size()));
}
BENCHMARK(BM_SnapshotParse);

void BM_ServiceClassify(benchmark::State &State) {
  const SelectionService &Svc = sharedService();
  std::vector<QueryRequest> Queries = makeQueries(64);
  std::size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Svc.classify(Queries[I].Features));
    I = (I + 1) % Queries.size();
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ServiceClassify);

void BM_ServicePredict(benchmark::State &State) {
  const SelectionService &Svc = sharedService();
  std::vector<QueryRequest> Queries = makeQueries(64);
  std::size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Svc.predictTimes(Queries[I]));
    I = (I + 1) % Queries.size();
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ServicePredict);

/// Batched prediction, Arg = pool threads (0 = the serial loop without a
/// pool, the single-query baseline the batched path competes with).
void BM_ServicePredictBatch(benchmark::State &State) {
  const SelectionService &Svc = sharedService();
  std::vector<QueryRequest> Queries = makeQueries(512);
  unsigned Threads = static_cast<unsigned>(State.range(0));
  std::unique_ptr<ThreadPool> Pool;
  if (Threads > 0)
    Pool = std::make_unique<ThreadPool>(Threads);
  for (auto _ : State)
    benchmark::DoNotOptimize(Svc.predictBatch(Queries, Pool.get()));
  State.SetItemsProcessed(static_cast<std::int64_t>(State.iterations()) *
                          static_cast<std::int64_t>(Queries.size()));
}
BENCHMARK(BM_ServicePredictBatch)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Console output as usual, plus every per-iteration result recorded
/// into the telemetry session so the run exports as fgbs.run.v1 (the
/// schema bench/BENCH_service.json and the CI perf gate consume).
class SessionReporter : public benchmark::ConsoleReporter {
public:
  explicit SessionReporter(obs::Session &Out) : Out(Out) {}

  void ReportRuns(const std::vector<Run> &Reports) override {
    for (const Run &R : Reports)
      if (R.run_type == Run::RT_Iteration && !R.error_occurred)
        Out.recordBenchmark(R.benchmark_name(), R.GetAdjustedRealTime());
    ConsoleReporter::ReportRuns(Reports);
  }

private:
  obs::Session &Out;
};

} // namespace

int main(int argc, char **argv) {
  // Honours FGBS_RUN_JSON / FGBS_TRACE_JSON / FGBS_TELEMETRY; with none
  // of them set this is exactly BENCHMARK_MAIN().
  obs::Session Run("service_throughput");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  SessionReporter Reporter(Run);
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  benchmark::Shutdown();
  return 0;
}
