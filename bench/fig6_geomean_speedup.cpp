//===- bench/fig6_geomean_speedup.cpp - Paper Figure 6 --------------------===//
//
// Regenerates Figure 6: the geometric-mean application speedup per
// architecture, real next to predicted — the single number a system
// selector compares across machines.
//
//===----------------------------------------------------------------------===//

#include "bench/common.h"

using namespace fgbs;

int main() {
  obs::Session Telemetry("fig6_geomean_speedup");
  bench::banner("Figure 6", "Geometric-mean speedup per architecture (NAS)");

  std::unique_ptr<bench::Study> Study = bench::makeNasStudy();
  PipelineResult R = Pipeline(*Study->Db, PipelineConfig()).run();

  TextTable T;
  T.setHeader({"architecture", "real speedup", "predicted speedup",
               "prediction gap"});
  for (const TargetEvaluation &E : R.Targets)
    T.addRow({E.MachineName, formatDouble(E.RealGeomeanSpeedup, 2),
              formatDouble(E.PredictedGeomeanSpeedup, 2),
              formatPercent(percentError(E.PredictedGeomeanSpeedup,
                                         E.RealGeomeanSpeedup))});
  T.print(std::cout);

  bench::paperNote(
      "Paper Figure 6: Atom 0.15 real / 0.19 predicted, Core 2 0.97 / "
      "1.00, Sandy Bridge 1.98 / 1.89.  Shape: Atom far below 1, Core 2 "
      "within a few percent of 1 (a genuinely close call against the "
      "reference), Sandy Bridge well above 1; predictions track the real "
      "ranking.");
  return 0;
}
