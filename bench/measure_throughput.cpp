//===- bench/measure_throughput.cpp - Measurement fan-out benchmarks ------===//
//
// Google-benchmark microbenchmarks of the measurement layer: full
// MeasurementDatabase construction at 1-8 threads (the parallel fan-out
// headline — on an 8-core host the 8-thread build is expected >= 3x the
// serial build; this container's baseline was captured on 1 CPU, where
// the interesting number is that threading costs nothing), plus
// fgbs.meas.v1 serialize/parse and the whole warm-cache load path that a
// cached run pays instead of simulation.  Numbers are checked into
// BENCH_measure.json for the CI perf gate.
//
//===----------------------------------------------------------------------===//

#include "fgbs/core/MeasurementCache.h"
#include "fgbs/obs/RunReport.h"
#include "fgbs/suites/Suites.h"
#include "fgbs/suites/Synthetic.h"

#include <benchmark/benchmark.h>

#include <filesystem>

using namespace fgbs;

namespace {

/// The benchmark corpus: a mid-size synthetic suite, big enough that the
/// fan-out has real work per thread, cheap enough for CI.
const Suite &benchSuite() {
  static const Suite S = [] {
    SyntheticConfig Cfg;
    Cfg.NumApplications = 2;
    Cfg.CodeletsPerApp = 6;
    Cfg.MinFootprintBytes = 64 << 10;
    Cfg.MaxFootprintBytes = 4 << 20;
    return makeSyntheticSuite(Cfg);
  }();
  return S;
}

/// One finished database over the bench suite, for serialize/parse.
const MeasurementDatabase &benchDatabase() {
  static const MeasurementDatabase Db(benchSuite(), makeNehalem(),
                                      paperTargets());
  return Db;
}

std::uint64_t benchKey() {
  return measurementKey(benchSuite(), makeNehalem(), paperTargets());
}

/// Full database construction, Arg = measurement threads.  The process
/// memory-behaviour memo (sampleMemoryBehaviorCached) is warmed by a
/// discarded first build so every thread count times the same work —
/// otherwise whichever arg runs first absorbs the one-time cold
/// sampling cost and the comparison is an ordering artifact.
void BM_BuildDatabase(benchmark::State &State) {
  const Suite &S = benchSuite();
  benchDatabase(); // Warm the process-wide memo.
  DatabaseOptions Options;
  Options.Threads = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    MeasurementDatabase Db(S, makeNehalem(), paperTargets(), {}, Options);
    benchmark::DoNotOptimize(Db);
  }
  State.SetItemsProcessed(static_cast<std::int64_t>(State.iterations()) *
                          static_cast<std::int64_t>(S.numCodelets()));
}
BENCHMARK(BM_BuildDatabase)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Same sweep over the Numerical Recipes suite: the shape the fig/table
/// benches and fgbs_train actually build.
void BM_BuildDatabaseNR(benchmark::State &State) {
  static const Suite NR = makeNumericalRecipes();
  static const MeasurementDatabase MemoWarmer(NR, makeNehalem(),
                                              paperTargets());
  DatabaseOptions Options;
  Options.Threads = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    MeasurementDatabase Db(NR, makeNehalem(), paperTargets(), {}, Options);
    benchmark::DoNotOptimize(Db);
  }
  State.SetItemsProcessed(static_cast<std::int64_t>(State.iterations()) *
                          static_cast<std::int64_t>(NR.numCodelets()));
}
BENCHMARK(BM_BuildDatabaseNR)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_SerializeMeasurements(benchmark::State &State) {
  const MeasurementDatabase &Db = benchDatabase();
  const std::uint64_t Key = benchKey();
  for (auto _ : State)
    benchmark::DoNotOptimize(serializeMeasurements(Db, Key));
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_SerializeMeasurements);

void BM_ParseMeasurements(benchmark::State &State) {
  std::string Bytes = serializeMeasurements(benchDatabase(), benchKey());
  for (auto _ : State) {
    MeasurementLoadResult R = parseMeasurements(
        Bytes, benchSuite(), makeNehalem(), paperTargets(), benchKey());
    benchmark::DoNotOptimize(R);
  }
  State.SetBytesProcessed(static_cast<std::int64_t>(State.iterations()) *
                          static_cast<std::int64_t>(Bytes.size()));
}
BENCHMARK(BM_ParseMeasurements);

/// The complete warm-run path: key derivation, file read, CRC, parse,
/// database reassembly.  This is what replaces simulation on a cache
/// hit, so its gap to BM_BuildDatabase IS the cache's payoff.
void BM_WarmCacheLoad(benchmark::State &State) {
  std::filesystem::path Dir =
      std::filesystem::temp_directory_path() / "fgbs_bench_meas_cache";
  std::filesystem::create_directories(Dir);
  DatabaseBuildOptions Options;
  Options.CacheDir = Dir.string();
  // Populate once; every timed iteration hits.
  buildMeasurementDatabase(benchSuite(), makeNehalem(), paperTargets(),
                           Options);
  for (auto _ : State) {
    auto Db = buildMeasurementDatabase(benchSuite(), makeNehalem(),
                                       paperTargets(), Options);
    benchmark::DoNotOptimize(Db);
  }
  State.SetItemsProcessed(static_cast<std::int64_t>(State.iterations()) *
                          static_cast<std::int64_t>(
                              benchSuite().numCodelets()));
  std::filesystem::remove_all(Dir);
}
BENCHMARK(BM_WarmCacheLoad);

/// One uncontended acquire/release of the cross-process writer lock —
/// the fixed overhead a cold store pays on top of simulation, and the
/// per-update cost of the manifest lock.  Dominated by the open/flock
/// syscall pair.
void BM_FileLockCycle(benchmark::State &State) {
  std::filesystem::path Dir =
      std::filesystem::temp_directory_path() / "fgbs_bench_file_lock";
  std::filesystem::create_directories(Dir);
  const std::string Path = (Dir / "bench.lock").string();
  for (auto _ : State) {
    FileLock Lock(Path);
    benchmark::DoNotOptimize(Lock.acquire());
    Lock.release();
  }
  State.SetItemsProcessed(static_cast<std::int64_t>(State.iterations()));
  std::filesystem::remove_all(Dir);
}
BENCHMARK(BM_FileLockCycle);

/// Console output as usual, plus every per-iteration result recorded
/// into the telemetry session so the run exports as fgbs.run.v1 (the
/// schema bench/BENCH_measure.json and the CI perf gate consume).
class SessionReporter : public benchmark::ConsoleReporter {
public:
  explicit SessionReporter(obs::Session &Out) : Out(Out) {}

  void ReportRuns(const std::vector<Run> &Reports) override {
    for (const Run &R : Reports)
      if (R.run_type == Run::RT_Iteration && !R.error_occurred)
        Out.recordBenchmark(R.benchmark_name(), R.GetAdjustedRealTime());
    ConsoleReporter::ReportRuns(Reports);
  }

private:
  obs::Session &Out;
};

} // namespace

int main(int argc, char **argv) {
  // Honours FGBS_RUN_JSON / FGBS_TRACE_JSON / FGBS_TELEMETRY; with none
  // of them set this is exactly BENCHMARK_MAIN().
  obs::Session Run("measure_throughput");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  SessionReporter Reporter(Run);
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  benchmark::Shutdown();
  return 0;
}
