//===- bench/fig7_random_clustering.cpp - Paper Figure 7 ------------------===//
//
// Regenerates Figure 7: how the GA-feature-guided Ward clustering
// compares against random clusterings.  For every K from 2 to 24, 1000
// uniformly random partitions of the NAS codelets into K non-empty
// clusters are pushed through steps D and E; the per-target median
// prediction error of the worst, median and best random partition is
// reported next to the feature-guided clustering.
//
//===----------------------------------------------------------------------===//

#include "bench/common.h"

using namespace fgbs;

int main() {
  obs::Session Telemetry("fig7_random_clustering");
  bench::banner("Figure 7",
                "Feature-guided clustering vs 1000 random clusterings (NAS)");

  std::unique_ptr<bench::Study> Study = bench::makeNasStudy();
  const MeasurementDatabase &Db = *Study->Db;
  Pipeline P(Db, PipelineConfig());
  std::size_t NumKept = Db.keptCodelets().size();

  constexpr unsigned Draws = 1000;
  std::vector<std::string> Targets;
  {
    PipelineResult Probe = P.run();
    for (const TargetEvaluation &E : Probe.Targets)
      Targets.push_back(E.MachineName);
  }

  for (std::size_t TIdx = 0; TIdx < Targets.size(); ++TIdx) {
    std::cout << "--- " << Targets[TIdx] << " ---\n";
    TextTable T;
    T.setHeader({"K", "worst random", "median random", "best random",
                 "GA features"});
    for (unsigned K = 2; K <= 24; ++K) {
      std::vector<double> RandomErrors;
      RandomErrors.reserve(Draws);
      for (unsigned Draw = 0; Draw < Draws; ++Draw) {
        Clustering C = randomClustering(NumKept, K,
                                        /*Seed=*/K * 100003ull + Draw);
        PipelineResult R = P.runWithClustering(C);
        RandomErrors.push_back(R.Targets[TIdx].MedianErrorPercent);
      }
      PipelineConfig Cfg;
      Cfg.K = K;
      PipelineResult Guided = Pipeline(Db, Cfg).run();
      T.addRow({std::to_string(K),
                formatPercent(percentile(RandomErrors, 100)),
                formatPercent(median(RandomErrors)),
                formatPercent(percentile(RandomErrors, 0)),
                formatPercent(Guided.Targets[TIdx].MedianErrorPercent)});
    }
    T.print(std::cout);
    std::cout << "\n";
  }

  bench::paperNote(
      "Paper Figure 7: for each K from 2 to 24 the GA-feature clustering "
      "is consistently close to or better than the best of 1000 random "
      "clusterings on all three targets.  Shape: the GA column tracks or "
      "beats the 'best random' column and stays far below the median "
      "random error.");
  return 0;
}
