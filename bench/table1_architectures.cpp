//===- bench/table1_architectures.cpp - Paper Table 1 ---------------------===//
//
// Regenerates Table 1: the test architectures.  The machine models are
// the substrate standing in for the paper's physical testbed; this bench
// prints their parameters so every other experiment's context is
// reproducible from the repository alone.
//
//===----------------------------------------------------------------------===//

#include "bench/common.h"

#include <functional>

using namespace fgbs;

static std::string cacheString(const Machine &M, std::size_t Level) {
  if (Level >= M.CacheLevels.size())
    return "-";
  const CacheLevelConfig &C = M.CacheLevels[Level];
  if (C.SizeBytes >= (1 << 20))
    return formatDouble(static_cast<double>(C.SizeBytes) / (1 << 20), 0) +
           " MB";
  return formatDouble(static_cast<double>(C.SizeBytes) / 1024, 0) + " KB";
}

int main() {
  obs::Session Telemetry("table1_architectures");
  bench::banner("Table 1", "Test architectures");

  std::vector<Machine> Machines = paperMachines();
  TextTable T;
  T.setHeader({"", "Nehalem", "Atom", "Core 2", "Sandy Bridge"});

  auto Row = [&](const std::string &Name,
                 const std::function<std::string(const Machine &)> &Cell) {
    std::vector<std::string> Cells = {Name};
    for (const Machine &M : Machines)
      Cells.push_back(Cell(M));
    T.addRow(Cells);
  };

  Row("CPU", [](const Machine &M) { return M.Cpu; });
  Row("Frequency (GHz)",
      [](const Machine &M) { return formatDouble(M.FrequencyGHz, 2); });
  Row("Cores", [](const Machine &M) { return std::to_string(M.Cores); });
  Row("L1 cache (data)",
      [](const Machine &M) { return cacheString(M, 0); });
  Row("L2 cache", [](const Machine &M) { return cacheString(M, 1); });
  Row("L3 cache", [](const Machine &M) { return cacheString(M, 2); });
  Row("Ram (GB)", [](const Machine &M) { return std::to_string(M.RamGB); });
  T.addSeparator();
  Row("Issue", [](const Machine &M) {
    return M.OutOfOrder ? "out-of-order" : "in-order";
  });
  Row("Issue width",
      [](const Machine &M) { return std::to_string(M.IssueWidth); });
  Row("SIMD width (bits)",
      [](const Machine &M) { return std::to_string(M.VectorBits); });
  Row("DP divide (cycles)", [](const Machine &M) {
    return formatDouble(M.Timings.FpDivLatencyDP, 0);
  });
  Row("DRAM bandwidth (GB/s)", [](const Machine &M) {
    return formatDouble(M.MemBandwidthGBs, 1);
  });
  Row("DRAM latency (cycles)", [](const Machine &M) {
    return formatDouble(M.MemLatencyCycles, 0);
  });

  T.print(std::cout);
  bench::paperNote("Rows above the separator mirror paper Table 1; rows "
                   "below document the execution-model parameters this "
                   "reproduction adds (the paper's machines are physical).");
  return 0;
}
