//===- bench/fig8_cross_app_subsetting.cpp - Paper Figure 8 ---------------===//
//
// Regenerates Figure 8: subsetting ACROSS applications (one shared pool
// of representatives, exploiting inter-application redundancy) against
// PER-APPLICATION subsetting (like SimPoint, which cannot share phases
// between programs: representatives are distributed evenly over the
// applications and each application is predicted only from its own).
//
// MG cannot be predicted by per-application subsetting at all — all of
// its codelets are ill-behaved under extraction, so its clusters
// dissolve — and is excluded from the error computation, as in the paper.
//
//===----------------------------------------------------------------------===//

#include "bench/common.h"

#include <map>

using namespace fgbs;

namespace {

/// Median prediction error over non-MG codelets for one target.
double medianErrorExcludingMg(const MeasurementDatabase &Db,
                              const std::vector<std::size_t> &Kept,
                              const std::vector<double> &Errors) {
  std::vector<double> Filtered;
  for (std::size_t I = 0; I < Kept.size(); ++I)
    if (Db.codelet(Kept[I]).App != "mg")
      Filtered.push_back(Errors[I]);
  return median(Filtered);
}

} // namespace

int main() {
  obs::Session Telemetry("fig8_cross_app_subsetting");
  bench::banner("Figure 8",
                "Across-application vs per-application subsetting (NAS)");

  std::unique_ptr<bench::Study> Study = bench::makeNasStudy();
  const MeasurementDatabase &Db = *Study->Db;
  Pipeline P(Db, PipelineConfig());

  std::vector<std::size_t> Kept = Db.keptCodelets();
  FeatureTable Points = P.buildPoints();

  // Group kept codelets by application.
  std::map<std::string, std::vector<std::size_t>> ByApp; // local indices.
  for (std::size_t I = 0; I < Kept.size(); ++I)
    ByApp[Db.codelet(Kept[I]).App].push_back(I);

  std::vector<std::string> TargetNames;
  for (const Machine &M : Db.targets())
    TargetNames.push_back(M.Name);

  for (std::size_t TIdx = 0; TIdx < TargetNames.size(); ++TIdx) {
    std::cout << "--- " << TargetNames[TIdx] << " ---\n";
    TextTable T;
    T.setHeader({"reps/app", "total reps", "across-apps med.err",
                 "per-app med.err", "per-app unpredictable"});

    for (unsigned PerApp = 1; PerApp <= 3; ++PerApp) {
      // --- Per-application subsetting --------------------------------
      // Each application clusters its own codelets into PerApp clusters
      // and predicts only from its own representatives.
      std::vector<double> Errors(Kept.size(), 0.0);
      std::vector<std::string> Unpredictable;
      unsigned TotalReps = 0;
      for (const auto &[App, Members] : ByApp) {
        FeatureTable AppPoints;
        for (std::size_t Local : Members)
          AppPoints.push_back(Points[Local]);
        Dendrogram Tree = hierarchicalCluster(AppPoints);
        unsigned K = std::min<unsigned>(
            PerApp, static_cast<unsigned>(Members.size()));
        Clustering C = Tree.cut(K);
        SelectionResult Sel = selectRepresentatives(
            AppPoints, C, [&](std::size_t AppLocal) {
              return Db.isWellBehavedOnRef(Kept[Members[AppLocal]]);
            });
        if (Sel.FinalK == 0) {
          // The paper's MG case: nothing extractable.
          Unpredictable.push_back(App);
          continue;
        }
        TotalReps += Sel.FinalK;
        std::vector<double> RefTimes;
        for (std::size_t Local : Members)
          RefTimes.push_back(Db.profile(Kept[Local]).InApp.MeasuredSeconds);
        PredictionModel Model = PredictionModel::build(
            RefTimes, Sel.Assignment, Sel.Representatives);
        std::vector<double> RepTimes;
        for (std::size_t Rep : Sel.Representatives)
          RepTimes.push_back(
              Db.standaloneTarget(Kept[Members[Rep]], TIdx).MedianSeconds);
        std::vector<double> Pred = Model.predict(RepTimes);
        for (std::size_t I = 0; I < Members.size(); ++I)
          Errors[Members[I]] = percentError(
              Pred[I], Db.realTargetSeconds(Kept[Members[I]], TIdx));
      }
      double PerAppErr = medianErrorExcludingMg(Db, Kept, Errors);

      // --- Across-application subsetting at the same budget -----------
      PipelineConfig Cfg;
      Cfg.K = std::max(2u, TotalReps);
      PipelineResult R = Pipeline(Db, Cfg).run();
      double AcrossErr = medianErrorExcludingMg(
          Db, Kept, R.Targets[TIdx].ErrorsPercent);

      std::string Excluded;
      for (const std::string &App : Unpredictable)
        Excluded += (Excluded.empty() ? "" : ", ") + App;
      T.addRow({std::to_string(PerApp), std::to_string(TotalReps),
                formatPercent(AcrossErr), formatPercent(PerAppErr),
                Excluded.empty() ? "-" : Excluded});
    }
    T.print(std::cout);
    std::cout << "\n";
  }

  bench::paperNote(
      "Paper Figure 8: shared representatives reach low errors with fewer "
      "representatives because they exploit inter-application redundancy; "
      "MG is unpredictable per-application (ill-behaved codelets) and is "
      "excluded from the error computation.  Shape: across-apps error <= "
      "per-app error at equal budget, and MG appears in the "
      "'unpredictable' column for per-app subsetting.");
  return 0;
}
