//===- bench/model_registry_throughput.cpp - Model registry benchmarks ----===//
//
// Google-benchmark microbenchmarks of the model-distribution path: the
// SHA-256 verify every pull pays, publish (hash + blob put + ref lease
// cycle) against an in-process loopback fgbs_cached, cold pulls that
// move the payload over the wire, warm pulls that must stay a local
// verified read (by hash: zero network; by tag: one ref round trip),
// and scan-by-prefix enumeration across published models.  Numbers are
// checked into BENCH_model_registry.json for the CI perf gate; the
// load-bearing ratio is warm-pull vs cold-pull — if the warm path
// stops being several times cheaper, read-through memoization has
// stopped paying for itself.
//
//===----------------------------------------------------------------------===//

#include "fgbs/core/ModelRegistry.h"
#include "fgbs/core/RemoteCacheBackend.h"
#include "fgbs/net/CacheServer.h"
#include "fgbs/obs/RunReport.h"
#include "fgbs/support/Sha256.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include <unistd.h>

using namespace fgbs;
namespace fs = std::filesystem;

namespace {

/// A representative snapshot size: the synthetic-suite fgbs.model.v1
/// image is a few hundred KB; 256 KiB keeps wire and hash costs honest
/// without dominating CI time.
constexpr std::size_t kSnapshotBytes = 256u << 10;

std::string benchSnapshot(unsigned Seed) {
  std::string Out;
  Out.reserve(kSnapshotBytes);
  for (std::size_t I = 0; I < kSnapshotBytes; ++I)
    Out.push_back(static_cast<char>((I * 131 + Seed * 977) % 256));
  return Out;
}

/// One loopback server for the whole binary, over a scratch directory.
class BenchServer {
public:
  BenchServer() {
    Root = fs::temp_directory_path() /
           ("fgbs_bench_model_registry_" +
            std::to_string(static_cast<long>(::getpid())));
    fs::remove_all(Root);
    net::CacheServerConfig Config;
    Config.Root = (Root / "server").string();
    Config.Shards = 4;
    Config.Threads = 8;
    Config.BindAddr = "127.0.0.1";
    Server = std::make_unique<net::CacheServer>(std::move(Config));
    std::string Error;
    if (!Server->start(&Error)) {
      std::fprintf(stderr, "cannot start bench server: %s\n", Error.c_str());
      std::abort();
    }
  }
  ~BenchServer() {
    Server->stop();
    fs::remove_all(Root);
  }

  std::uint16_t port() const { return Server->port(); }
  const fs::path &root() const { return Root; }

private:
  fs::path Root;
  std::unique_ptr<net::CacheServer> Server;
};

BenchServer &server() {
  static BenchServer S;
  return S;
}

std::unique_ptr<ModelRegistry> makeRegistry(const std::string &CacheTag) {
  RemoteCacheConfig Config;
  Config.Host = "127.0.0.1";
  Config.Port = server().port();
  const std::string Dir =
      CacheTag.empty() ? std::string()
                       : (server().root() / ("local-" + CacheTag)).string();
  return std::make_unique<ModelRegistry>(
      std::make_unique<RemoteCacheBackend>(std::move(Config)), Dir);
}

/// The integrity tax on every pull: one SHA-256 pass over the image.
void BM_Sha256Snapshot(benchmark::State &State) {
  const std::string Snapshot = benchSnapshot(1);
  for (auto _ : State) {
    std::string Hex = sha256Hex(Snapshot);
    benchmark::DoNotOptimize(Hex);
  }
  State.SetBytesProcessed(static_cast<std::int64_t>(State.iterations()) *
                          static_cast<std::int64_t>(Snapshot.size()));
}
BENCHMARK(BM_Sha256Snapshot)->Unit(benchmark::kMicrosecond);

/// Publish of fresh bytes: hash + snapshot put + ref lease cycle + ref
/// put.  Every iteration is a new content address (distinct bytes), so
/// the idempotent already-present fast path never triggers.
void BM_RegistryPublish(benchmark::State &State) {
  auto Registry = makeRegistry("publish");
  unsigned Seed = 0;
  for (auto _ : State) {
    PublishResult P =
        Registry->publish("bench-publish", "latest", benchSnapshot(++Seed));
    if (!P)
      State.SkipWithError(P.Message.c_str());
  }
  State.SetBytesProcessed(static_cast<std::int64_t>(State.iterations()) *
                          static_cast<std::int64_t>(kSnapshotBytes));
}
BENCHMARK(BM_RegistryPublish)->Unit(benchmark::kMicrosecond);

/// Cold pull by tag: ref round trip + payload over the wire + verify.
/// Local caching is disabled so every iteration pays the full cost.
void BM_RegistryColdPull(benchmark::State &State) {
  {
    auto Seeder = makeRegistry("");
    PublishResult P =
        Seeder->publish("bench-cold", "latest", benchSnapshot(2));
    if (!P) {
      State.SkipWithError(P.Message.c_str());
      return;
    }
  }
  auto Registry = makeRegistry("");
  for (auto _ : State) {
    PullResult R = Registry->pull("bench-cold", "latest");
    if (!R)
      State.SkipWithError(R.Message.c_str());
    benchmark::DoNotOptimize(R.Bytes);
  }
  State.SetBytesProcessed(static_cast<std::int64_t>(State.iterations()) *
                          static_cast<std::int64_t>(kSnapshotBytes));
}
BENCHMARK(BM_RegistryColdPull)->Unit(benchmark::kMicrosecond);

/// Warm pull by tag: one ref round trip, payload from the verified
/// local copy — the steady state of a query fleet.
void BM_RegistryWarmPullByTag(benchmark::State &State) {
  auto Registry = makeRegistry("warmtag");
  PublishResult P =
      Registry->publish("bench-warm", "latest", benchSnapshot(3));
  if (!P) {
    State.SkipWithError(P.Message.c_str());
    return;
  }
  for (auto _ : State) {
    PullResult R = Registry->pull("bench-warm", "latest");
    if (!R || R.FetchedFromRemote)
      State.SkipWithError("warm pull went to the network");
    benchmark::DoNotOptimize(R.Bytes);
  }
  State.SetBytesProcessed(static_cast<std::int64_t>(State.iterations()) *
                          static_cast<std::int64_t>(kSnapshotBytes));
}
BENCHMARK(BM_RegistryWarmPullByTag)->Unit(benchmark::kMicrosecond);

/// Warm pull by explicit hash: no ref resolution, zero network — a
/// verified local file read.  This is the floor the warm-by-tag path
/// sits one ref round trip above.
void BM_RegistryWarmPullByHash(benchmark::State &State) {
  auto Registry = makeRegistry("warmhash");
  PublishResult P =
      Registry->publish("bench-warm-hash", "latest", benchSnapshot(4));
  if (!P) {
    State.SkipWithError(P.Message.c_str());
    return;
  }
  for (auto _ : State) {
    PullResult R = Registry->pullByHash("bench-warm-hash", P.Sha256Hex);
    if (!R || R.FetchedFromRemote)
      State.SkipWithError("warm pull went to the network");
    benchmark::DoNotOptimize(R.Bytes);
  }
  State.SetBytesProcessed(static_cast<std::int64_t>(State.iterations()) *
                          static_cast<std::int64_t>(kSnapshotBytes));
}
BENCHMARK(BM_RegistryWarmPullByHash)->Unit(benchmark::kMicrosecond);

/// Enumeration cost: one scan-by-prefix over 32 published models (64
/// entries: a sha blob + a ref each), names and sizes only.
void BM_RegistryScanPrefix(benchmark::State &State) {
  static const bool Seeded = [] {
    auto Seeder = makeRegistry("");
    for (unsigned I = 0; I < 32; ++I) {
      std::string Tiny = "tiny snapshot " + std::to_string(I);
      PublishResult P =
          Seeder->publish("bench-scan-" + std::to_string(I), "latest", Tiny);
      if (!P)
        return false;
    }
    return true;
  }();
  if (!Seeded) {
    State.SkipWithError("seeding failed");
    return;
  }
  auto Registry = makeRegistry("");
  for (auto _ : State) {
    ScanPrefixResult R = Registry->list("");
    if (!R)
      State.SkipWithError(R.Message.c_str());
    benchmark::DoNotOptimize(R.Entries);
  }
}
BENCHMARK(BM_RegistryScanPrefix)->Unit(benchmark::kMicrosecond);

/// Mirrors each benchmark's steady-state time into the fgbs.run.v1
/// session report, where the CI perf gate reads it.
class SessionReporter : public benchmark::ConsoleReporter {
public:
  explicit SessionReporter(obs::Session &Out) : Out(Out) {}

  void ReportRuns(const std::vector<Run> &Reports) override {
    for (const Run &R : Reports)
      if (R.run_type == Run::RT_Iteration && !R.error_occurred)
        Out.recordBenchmark(R.benchmark_name(), R.GetAdjustedRealTime());
    ConsoleReporter::ReportRuns(Reports);
  }

private:
  obs::Session &Out;
};

} // namespace

int main(int argc, char **argv) {
  // Honours FGBS_RUN_JSON / FGBS_TRACE_JSON / FGBS_TELEMETRY; with none
  // of them set this is exactly BENCHMARK_MAIN().
  obs::Session Run("model_registry_throughput");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  SessionReporter Reporter(Run);
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  benchmark::Shutdown();
  return 0;
}
