//===- bench/table4_nr_prediction.cpp - Paper Table 4 ---------------------===//
//
// Regenerates Table 4: prediction errors on Numerical Recipes with 14
// clusters and with the Elbow-selected cluster count, on Atom and Sandy
// Bridge (the two architectures later used to train feature selection).
//
//===----------------------------------------------------------------------===//

#include "bench/common.h"

using namespace fgbs;

int main() {
  obs::Session Telemetry("table4_nr_prediction");
  bench::banner("Table 4", "Prediction errors on Numerical Recipes");

  std::unique_ptr<bench::Study> Study = bench::makeNrStudy();
  const MeasurementDatabase &Db = *Study->Db;

  // The paper contrasts the manual K=14 cut with the elbow cut (24 in the
  // paper's run).
  PipelineConfig Manual;
  Manual.K = 14;
  PipelineResult R14 = Pipeline(Db, Manual).run();
  PipelineConfig Auto;
  PipelineResult RElbow = Pipeline(Db, Auto).run();

  std::cout << "Elbow method selected K = " << RElbow.ElbowK << " (paper: 24)"
            << "\n\n";
  Telemetry.recordValue("elbow_k", RElbow.ElbowK);

  TextTable T;
  T.setHeader({"error", "K=14 median", "K=14 average",
               "elbow K=" + std::to_string(RElbow.ElbowK) + " median",
               "elbow average"});
  for (const std::string &Target : {std::string("Atom"),
                                    std::string("Sandy Bridge")}) {
    const TargetEvaluation *E14 = nullptr;
    const TargetEvaluation *EEl = nullptr;
    for (const TargetEvaluation &E : R14.Targets)
      if (E.MachineName == Target)
        E14 = &E;
    for (const TargetEvaluation &E : RElbow.Targets)
      if (E.MachineName == Target)
        EEl = &E;
    T.addRow({Target, formatPercent(E14->MedianErrorPercent),
              formatPercent(E14->AverageErrorPercent),
              formatPercent(EEl->MedianErrorPercent),
              formatPercent(EEl->AverageErrorPercent)});
    std::string Key = Target == "Atom" ? "atom" : "sandy_bridge";
    Telemetry.recordValue("k14_median_err_pct." + Key,
                          E14->MedianErrorPercent);
    Telemetry.recordValue("elbow_median_err_pct." + Key,
                          EEl->MedianErrorPercent);
  }
  T.print(std::cout);

  bench::paperNote(
      "Paper Table 4: K=14 -> Atom 1.8% median / 12% average, Sandy Bridge "
      "3.2% / 9.3%; K=24 (elbow) -> 0% medians, 1.7% / 0.97% averages. "
      "The shape to reproduce: higher K shrinks both medians and averages, "
      "and Atom is at least as hard as Sandy Bridge at the coarse cut.");
  return 0;
}
