//===- bench/fig5_app_prediction.cpp - Paper Figure 5 ---------------------===//
//
// Regenerates Figure 5: whole-application predicted and real execution
// times on the three targets, next to the reference times.  Codelets
// cover 92% of each application; the uncovered remainder is assumed to
// share the covered part's speedup (section 4.4).
//
// The CG-on-Atom misprediction is the paper's one notable failure: CG is
// dominated by a single cache-state-sensitive codelet whose extracted
// microbenchmark runs unrealistically fast on Atom.
//
//===----------------------------------------------------------------------===//

#include "bench/common.h"

using namespace fgbs;

int main() {
  obs::Session Telemetry("fig5_app_prediction");
  bench::banner("Figure 5",
                "Application-level predicted vs real times on each target");

  std::unique_ptr<bench::Study> Study = bench::makeNasStudy();
  PipelineResult R = Pipeline(*Study->Db, PipelineConfig()).run();

  for (const TargetEvaluation &E : R.Targets) {
    std::cout << "--- " << E.MachineName << " ---\n";
    TextTable T;
    T.setHeader({"app", "reference s", "real s", "predicted s", "error"});
    for (std::size_t A = 0; A < E.AppNames.size(); ++A) {
      double Err = percentError(E.AppPredicted[A], E.AppReal[A]);
      T.addRow({E.AppNames[A], formatDouble(E.AppReference[A], 1),
                formatDouble(E.AppReal[A], 1),
                formatDouble(E.AppPredicted[A], 1),
                formatPercent(Err) +
                    (Err > 15.0 ? "  <-- mispredicted" : "")});
    }
    T.print(std::cout);
    std::cout << "\n";
  }

  bench::paperNote(
      "Paper Figure 5: every benchmark slows down on Atom (CG badly "
      "underpredicted there: its dominant codelet's microbenchmark "
      "preserves too warm a cache); everything speeds up on Sandy Bridge; "
      "Core 2 splits per application (BT/FT faster, LU slower), which is "
      "exactly the system-selection scenario.  Shape: same winners and "
      "losers, CG/Atom the only large application error.");
  return 0;
}
