//===- fgbs/analysis/Report.cpp - Per-codelet analysis report -------------===//

#include "fgbs/analysis/Report.h"

#include "fgbs/compiler/Compiler.h"
#include "fgbs/sim/Pipeline.h"
#include "fgbs/support/TextTable.h"

#include <map>
#include <ostream>

using namespace fgbs;

void fgbs::printCodeletReport(std::ostream &OS, const Codelet &C,
                              const Machine &M) {
  OS << "=== " << C.Name << " (" << C.App << ") on " << M.Name << " ===\n";
  if (!C.Pattern.empty())
    OS << "pattern:    " << C.Pattern << "\n";
  OS << "loop nest:  " << C.Nest.InnerTripCount << " inner x "
     << C.Nest.OuterIterations << " outer iterations per invocation\n"
     << "invocations: " << C.totalInvocations() << " (captured dataset scale "
     << formatDouble(C.capturedDatasetScale(), 3) << ", average "
     << formatDouble(C.averageDatasetScale(), 3) << ")\n"
     << "footprint:  "
     << formatDouble(static_cast<double>(C.footprintBytes()) / (1 << 20), 2)
     << " MB, strides " << C.strideSummary() << "\n\n";

  // --- Static loop analysis (MAQAO-like) --------------------------------
  BinaryLoop Loop = compile(C, M, CompilationContext::InApplication);
  ComputeBreakdown B = computeBound(Loop, M);

  OS << "compiled loop (" << vectorizationTag(Loop) << ", "
     << formatDouble(Loop.vectorizedPercent(), 0) << "% vectorized, unroll x"
     << Loop.UnrollFactor << ", " << Loop.ElementsPerIter
     << " elements/iteration, " << Loop.Body.size() << " instructions, "
     << Loop.CodeBytes << " bytes, " << Loop.NumRegisters << " registers)\n";

  std::map<std::string, unsigned> Mix;
  for (const Inst &I : Loop.Body) {
    std::string Key = std::string(opKindName(I.Kind)) + "." +
                      precisionName(I.Prec) + (I.isVector() ? " (v)" : "");
    ++Mix[Key];
  }
  TextTable MixTable;
  MixTable.setHeader({"instruction", "count/iteration"});
  for (const auto &[Key, Count] : Mix)
    MixTable.addRow({Key, std::to_string(Count)});
  MixTable.print(OS);

  OS << "\npipeline bounds (cycles per body iteration, L1-resident):\n";
  TextTable Bounds;
  Bounds.setHeader({"bound", "cycles"});
  Bounds.addRow({"max port pressure", formatDouble(B.MaxPortCycles, 2)});
  Bounds.addRow({"issue", formatDouble(B.IssueCycles, 2)});
  Bounds.addRow({"dependency chains", formatDouble(B.DepCycles, 2)});
  Bounds.addRow({"divider/transcendental", formatDouble(B.DividerCycles, 2)});
  Bounds.addRow({"combined compute bound", formatDouble(B.ComputeCycles, 2)});
  Bounds.print(OS);
  OS << "estimated IPC assuming L1 hits: "
     << formatDouble(B.ipc(static_cast<double>(Loop.Body.size())), 2) << "\n";

  // --- Memory streams ----------------------------------------------------
  std::vector<MemoryStreamDesc> Streams = collectStreams(C);
  std::vector<StreamBehavior> Behavior =
      sampleMemoryBehaviorCached(Streams, M, C.Nest.totalIterations());
  OS << "\nmemory streams (steady state):\n";
  TextTable Mem;
  std::vector<std::string> Header = {"stride B", "footprint MB", "kind"};
  for (const CacheLevelConfig &L : M.CacheLevels)
    Header.push_back(L.Name + " %");
  Header.push_back("DRAM %");
  Header.push_back("prefetch");
  Mem.setHeader(Header);
  for (std::size_t S = 0; S < Streams.size(); ++S) {
    std::vector<std::string> Row = {
        std::to_string(Streams[S].StrideBytes),
        formatDouble(static_cast<double>(Streams[S].FootprintBytes) /
                         (1 << 20),
                     2),
        Streams[S].IsStore ? "store" : "load"};
    for (double Fraction : Behavior[S].ServedFraction)
      Row.push_back(formatDouble(100.0 * Fraction, 1));
    Row.push_back(Behavior[S].Prefetchable ? "yes" : "no");
    Mem.addRow(Row);
  }
  Mem.print(OS);

  // --- Dynamic profile (Likwid-like) ------------------------------------
  Measurement Meas = measureInApp(C, M);
  const PerfCounters &Ctr = Meas.Counters;
  double T = Ctr.Seconds;
  OS << "\ndynamic profile (per invocation):\n";
  TextTable Dyn;
  Dyn.setHeader({"metric", "value"});
  Dyn.addRow({"time", formatDouble(T * 1e3, 3) + " ms"});
  Dyn.addRow({"cycles", formatDouble(Ctr.Cycles / 1e6, 2) + " M"});
  Dyn.addRow({"MFLOPS", formatDouble(Ctr.totalFlops() / T / 1e6, 0)});
  Dyn.addRow({"IPC", formatDouble(Ctr.Uops / Ctr.Cycles, 2)});
  Dyn.addRow({"L2 bandwidth",
              formatDouble(Ctr.L2LinesIn * 64 / T / 1e6, 0) + " MB/s"});
  Dyn.addRow({"memory bandwidth",
              formatDouble(Ctr.MemLinesIn * 64 / T / 1e6, 0) + " MB/s"});
  Dyn.addRow({"memory-bound share",
              formatPercent(100.0 * Meas.MemCyclesPerIter /
                            (Meas.MemCyclesPerIter +
                             B.ComputeCycles /
                                 static_cast<double>(Loop.ElementsPerIter)))});
  Dyn.print(OS);
  OS << "\n";
}
