//===- fgbs/analysis/Features.cpp - The 76-feature catalog ----------------===//

#include "fgbs/analysis/Features.h"

#include "fgbs/compiler/Compiler.h"
#include "fgbs/sim/Pipeline.h"

#include <cassert>
#include <cmath>

using namespace fgbs;

static double safeDiv(double Num, double Den, double Default = 0.0) {
  return Den != 0.0 ? Num / Den : Default;
}

const FeatureCatalog &FeatureCatalog::get() {
  static FeatureCatalog Catalog;
  return Catalog;
}

FeatureCatalog::FeatureCatalog() {
  auto S = [this](const char *Name) {
    Infos.push_back({Name, FeatureKind::Static});
  };
  auto D = [this](const char *Name) {
    Infos.push_back({Name, FeatureKind::Dynamic});
  };

  // --- MAQAO-like static features (40) --------------------------------
  S("static.loop_instructions");
  S("static.loop_code_bytes");
  S("static.registers_used");
  S("static.unroll_factor");
  S("static.elements_per_iteration");
  S("static.cycles_per_iteration_l1");
  S("static.estimated_ipc_l1");        // Table 2.
  S("static.bytes_loaded_per_cycle_l1");
  S("static.bytes_stored_per_cycle_l1"); // Table 2.
  S("static.data_dependency_stalls");  // Table 2.
  S("static.divider_pressure");
  S("static.pressure_port_p0");
  S("static.pressure_port_p1");        // Table 2.
  S("static.pressure_port_p2");
  S("static.pressure_port_p3");
  S("static.pressure_port_p4");
  S("static.pressure_port_p5");
  S("static.issue_pressure");
  S("static.num_fp_div");              // Table 2.
  S("static.num_fp_sqrt");
  S("static.num_fp_exp");
  S("static.num_sd_instructions");     // Table 2.
  S("static.num_ss_instructions");
  S("static.num_loads");
  S("static.num_stores");
  S("static.num_fp_add_sub");
  S("static.num_fp_mul");
  S("static.num_int_ops");
  S("static.ratio_add_sub_over_mul");  // Table 2.
  S("static.ratio_load_over_store");
  S("static.vec_ratio_overall");
  S("static.vec_ratio_fp_add");
  S("static.vec_ratio_fp_mul");        // Table 2.
  S("static.vec_ratio_loads");
  S("static.vec_ratio_stores");
  S("static.vec_ratio_other_fp_int");  // Table 2.
  S("static.vec_ratio_other_int");     // Table 2.
  S("static.fp_fraction");
  S("static.chain_parallelism");
  S("static.critical_chain_ops");

  // --- Likwid-like dynamic features (36) -------------------------------
  D("dynamic.mflops");                 // Table 2.
  D("dynamic.mflops_sp");
  D("dynamic.mflops_dp");
  D("dynamic.cpi");
  D("dynamic.ipc");
  D("dynamic.l1_bandwidth_mbs");
  D("dynamic.l2_bandwidth_mbs");       // Table 2.
  D("dynamic.l3_bandwidth_mbs");
  D("dynamic.memory_bandwidth_mbs");   // Table 2.
  D("dynamic.l1_miss_rate");
  D("dynamic.l2_miss_rate");
  D("dynamic.l3_miss_rate");           // Table 2.
  D("dynamic.l2_lines_per_kuop");
  D("dynamic.l3_lines_per_kuop");
  D("dynamic.mem_lines_per_kuop");
  D("dynamic.load_store_byte_ratio");
  D("dynamic.store_bandwidth_mbs");
  D("dynamic.flops_per_mem_byte");
  D("dynamic.flops_per_l1_access");
  D("dynamic.time_per_invocation_ms");
  D("dynamic.cycles_per_invocation");
  D("dynamic.uops_per_invocation");
  D("dynamic.fp_uop_fraction");
  D("dynamic.sp_fraction_of_flops");
  D("dynamic.l1_hit_fraction");
  D("dynamic.l2_service_fraction");
  D("dynamic.l3_service_fraction");
  D("dynamic.mem_service_fraction");
  D("dynamic.bytes_per_uop");
  D("dynamic.dram_bw_fraction_of_peak");
  D("dynamic.average_service_depth");
  D("dynamic.flops_per_cycle");
  D("dynamic.l1_accesses_per_cycle");
  D("dynamic.stores_per_uop");
  D("dynamic.uops_per_second");
  D("dynamic.flops_per_l2_byte");

  assert(Infos.size() == NumFeatures && "catalog must hold 76 features");
}

int FeatureCatalog::indexOf(const std::string &Name) const {
  for (std::size_t I = 0; I < Infos.size(); ++I)
    if (Infos[I].Name == Name)
      return static_cast<int>(I);
  return -1;
}

std::vector<std::size_t> FeatureCatalog::staticIndices() const {
  std::vector<std::size_t> Out;
  for (std::size_t I = 0; I < Infos.size(); ++I)
    if (Infos[I].Kind == FeatureKind::Static)
      Out.push_back(I);
  return Out;
}

std::vector<std::size_t> FeatureCatalog::dynamicIndices() const {
  std::vector<std::size_t> Out;
  for (std::size_t I = 0; I < Infos.size(); ++I)
    if (Infos[I].Kind == FeatureKind::Dynamic)
      Out.push_back(I);
  return Out;
}

const std::vector<std::string> fgbs::kTable2FeatureNames = {
    // Likwid dynamic features of Table 2.
    "dynamic.mflops",
    "dynamic.l2_bandwidth_mbs",
    "dynamic.l3_miss_rate",
    "dynamic.memory_bandwidth_mbs",
    // MAQAO static features of Table 2.
    "static.bytes_stored_per_cycle_l1",
    "static.data_dependency_stalls",
    "static.estimated_ipc_l1",
    "static.num_fp_div",
    "static.num_sd_instructions",
    "static.pressure_port_p1",
    "static.ratio_add_sub_over_mul",
    "static.vec_ratio_fp_mul",
    "static.vec_ratio_other_fp_int",
    "static.vec_ratio_other_int",
};

std::vector<double> fgbs::computeFeatures(const Codelet &C, const Machine &Ref,
                                          const Measurement &M,
                                          CompileCache *Compile) {
  std::vector<double> F;
  F.reserve(NumFeatures);

  BinaryLoop Fresh;
  if (!Compile)
    Fresh = compile(C, Ref, CompilationContext::InApplication);
  const BinaryLoop &Loop =
      Compile ? Compile->get(C, Ref, CompilationContext::InApplication,
                             CompilerOptions())
              : Fresh;
  ComputeBreakdown B = computeBound(Loop, Ref);

  // Counts over the loop body.
  double Loads = Loop.countKind(OpKind::Load);
  double Stores = Loop.countKind(OpKind::Store);
  double FpAddSub = Loop.countKind(OpKind::FpAdd);
  double FpMul = Loop.countKind(OpKind::FpMul);
  double FpDivs = Loop.countKind(OpKind::FpDiv);
  double FpSqrt = Loop.countKind(OpKind::FpSqrt);
  double FpExpC = Loop.countKind(OpKind::FpExp);
  double IntOps =
      Loop.countKind(OpKind::IntAdd) + Loop.countKind(OpKind::IntMul);
  double NumSD = 0.0;
  double NumSS = 0.0;
  double FpInsts = 0.0;
  double LoadBytesPerBody = 0.0;
  double StoreBytesPerBody = 0.0;
  for (const Inst &I : Loop.Body) {
    if (I.isScalarDouble())
      ++NumSD;
    if (I.Prec == Precision::SP && I.VecElems == 1 && isFpArith(I.Kind))
      ++NumSS;
    if (isFpArith(I.Kind))
      ++FpInsts;
    if (I.Kind == OpKind::Load)
      LoadBytesPerBody += I.VecElems * bytesPerElement(I.Prec);
    if (I.Kind == OpKind::Store)
      StoreBytesPerBody += I.VecElems * bytesPerElement(I.Prec);
  }

  double BodySize = static_cast<double>(Loop.Body.size());
  double CyclesL1 = B.ComputeCycles;

  // --- Static features, in catalog order -------------------------------
  F.push_back(BodySize);
  F.push_back(Loop.CodeBytes);
  F.push_back(Loop.NumRegisters);
  F.push_back(Loop.UnrollFactor);
  F.push_back(Loop.ElementsPerIter);
  F.push_back(CyclesL1);
  F.push_back(safeDiv(BodySize, CyclesL1));
  F.push_back(safeDiv(LoadBytesPerBody, CyclesL1));
  F.push_back(safeDiv(StoreBytesPerBody, CyclesL1));
  F.push_back(B.DepCycles);
  F.push_back(B.DividerCycles);
  for (unsigned P = 0; P < NumPorts; ++P)
    F.push_back(B.PortCycles[P]);
  F.push_back(B.IssueCycles);
  F.push_back(FpDivs);
  F.push_back(FpSqrt);
  F.push_back(FpExpC);
  F.push_back(NumSD);
  F.push_back(NumSS);
  F.push_back(Loads);
  F.push_back(Stores);
  F.push_back(FpAddSub);
  F.push_back(FpMul);
  F.push_back(IntOps);
  F.push_back(safeDiv(FpAddSub, FpMul, /*Default=*/FpAddSub));
  F.push_back(safeDiv(Loads, Stores, /*Default=*/Loads));
  F.push_back(Loop.vectorizedPercent());
  F.push_back(Loop.statsFor(OpClass::FpAddSub).ratioPercent());
  F.push_back(Loop.statsFor(OpClass::FpMulClass).ratioPercent());
  F.push_back(Loop.statsFor(OpClass::LoadClass).ratioPercent());
  F.push_back(Loop.statsFor(OpClass::StoreClass).ratioPercent());
  {
    const OpClassStats &OtherFp = Loop.statsFor(OpClass::OtherFp);
    const OpClassStats &IntCls = Loop.statsFor(OpClass::IntClass);
    unsigned Vec = OtherFp.VectorOps + IntCls.VectorOps;
    unsigned Tot = OtherFp.total() + IntCls.total();
    F.push_back(Tot ? 100.0 * Vec / Tot : 0.0);
    F.push_back(IntCls.ratioPercent());
  }
  F.push_back(safeDiv(FpInsts, BodySize));
  F.push_back(Loop.ChainParallelism);
  F.push_back(static_cast<double>(Loop.CritChainOps.size()));

  // --- Dynamic features, in catalog order ------------------------------
  const PerfCounters &Ctr = M.Counters;
  double T = Ctr.Seconds;
  double Line = Ref.CacheLevels.front().LineBytes;
  double L1Bytes = Ctr.LoadBytes + Ctr.StoreBytes;
  double L2Bytes = Ctr.L2LinesIn * Line;
  double L3Bytes = Ctr.L3LinesIn * Line;
  double MemBytes = Ctr.MemLinesIn * Line;
  double Flops = Ctr.totalFlops();

  F.push_back(safeDiv(Flops, T) / 1e6);
  F.push_back(safeDiv(Ctr.FpOpsSP, T) / 1e6);
  F.push_back(safeDiv(Ctr.FpOpsDP, T) / 1e6);
  F.push_back(safeDiv(Ctr.Cycles, Ctr.Uops));
  F.push_back(safeDiv(Ctr.Uops, Ctr.Cycles));
  F.push_back(safeDiv(L1Bytes, T) / 1e6);
  F.push_back(safeDiv(L2Bytes, T) / 1e6);
  F.push_back(safeDiv(L3Bytes, T) / 1e6);
  F.push_back(safeDiv(MemBytes, T) / 1e6);
  F.push_back(safeDiv(Ctr.L2LinesIn, Ctr.L1Accesses));
  F.push_back(safeDiv(Ctr.L3LinesIn, Ctr.L2LinesIn));
  // L3 miss rate: fraction of requests reaching past the last on-chip
  // level (on machines without L3, Likwid reports L2 misses here).
  F.push_back(safeDiv(Ctr.MemLinesIn,
                      Ctr.L3LinesIn > 0.0 ? Ctr.L3LinesIn : Ctr.L2LinesIn));
  F.push_back(safeDiv(Ctr.L2LinesIn * 1000.0, Ctr.Uops));
  F.push_back(safeDiv(Ctr.L3LinesIn * 1000.0, Ctr.Uops));
  F.push_back(safeDiv(Ctr.MemLinesIn * 1000.0, Ctr.Uops));
  F.push_back(safeDiv(Ctr.LoadBytes, Ctr.StoreBytes, Ctr.LoadBytes));
  F.push_back(safeDiv(Ctr.StoreBytes, T) / 1e6);
  F.push_back(safeDiv(Flops, MemBytes, Flops));
  F.push_back(safeDiv(Flops, Ctr.L1Accesses));
  F.push_back(T * 1e3);
  F.push_back(Ctr.Cycles);
  F.push_back(Ctr.Uops);
  F.push_back(safeDiv(Flops, Ctr.Uops));
  F.push_back(safeDiv(Ctr.FpOpsSP, Flops));
  F.push_back(1.0 - safeDiv(Ctr.L2LinesIn, Ctr.L1Accesses));
  F.push_back(safeDiv(Ctr.L2LinesIn - Ctr.L3LinesIn, Ctr.L1Accesses));
  F.push_back(safeDiv(Ctr.L3LinesIn - Ctr.MemLinesIn, Ctr.L1Accesses));
  F.push_back(safeDiv(Ctr.MemLinesIn, Ctr.L1Accesses));
  F.push_back(safeDiv(L1Bytes, Ctr.Uops));
  F.push_back(safeDiv(MemBytes / (T > 0.0 ? T : 1.0),
                      Ref.MemBandwidthGBs * 1e9));
  {
    // Weighted average depth of the level servicing each access
    // (0 = L1, 1 = L2, 2 = L3, 3 = DRAM).
    double Depth = safeDiv(Ctr.L2LinesIn + Ctr.L3LinesIn + Ctr.MemLinesIn,
                           Ctr.L1Accesses);
    F.push_back(Depth);
  }
  F.push_back(safeDiv(Flops, Ctr.Cycles));
  F.push_back(safeDiv(Ctr.L1Accesses, Ctr.Cycles));
  F.push_back(safeDiv(Ctr.StoreBytes / 8.0, Ctr.Uops));
  F.push_back(safeDiv(Ctr.Uops, T));
  F.push_back(safeDiv(Flops, L2Bytes, Flops));

  assert(F.size() == NumFeatures && "feature vector must have 76 entries");
  return F;
}

FeatureMask fgbs::allFeaturesMask() {
  return FeatureMask(NumFeatures, true);
}

FeatureMask fgbs::maskForNames(const std::vector<std::string> &Names) {
  FeatureMask Mask(NumFeatures, false);
  const FeatureCatalog &Catalog = FeatureCatalog::get();
  for (const std::string &Name : Names) {
    int Index = Catalog.indexOf(Name);
    assert(Index >= 0 && "unknown feature name");
    Mask[static_cast<std::size_t>(Index)] = true;
  }
  return Mask;
}

std::vector<double> fgbs::applyMask(const std::vector<double> &Full,
                                    const FeatureMask &Mask) {
  assert(Full.size() == Mask.size() && "mask width mismatch");
  std::vector<double> Out;
  for (std::size_t I = 0; I < Full.size(); ++I)
    if (Mask[I])
      Out.push_back(Full[I]);
  return Out;
}

std::size_t fgbs::maskCount(const FeatureMask &Mask) {
  std::size_t Count = 0;
  for (bool Bit : Mask)
    Count += Bit;
  return Count;
}
