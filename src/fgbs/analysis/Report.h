//===- fgbs/analysis/Report.h - Per-codelet analysis report ----*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A human-readable per-codelet analysis report in the spirit of
/// MAQAO's loop reports and Likwid's counter summaries: the compiled
/// loop's instruction mix and vectorization, the pipeline bounds, the
/// memory streams and where the hierarchy serves them, and the derived
/// dynamic metrics.  Used by examples/analyze_codelet and handy when
/// authoring new suites.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_ANALYSIS_REPORT_H
#define FGBS_ANALYSIS_REPORT_H

#include "fgbs/analysis/Profiler.h"

#include <iosfwd>

namespace fgbs {

/// Prints a full analysis of \p C on \p M: static loop analysis,
/// execution bounds, memory-stream classification, dynamic counters.
void printCodeletReport(std::ostream &OS, const Codelet &C, const Machine &M);

} // namespace fgbs

#endif // FGBS_ANALYSIS_REPORT_H
