//===- fgbs/analysis/Profiler.cpp - Step B: reference profiling -----------===//

#include "fgbs/analysis/Profiler.h"

#include <cassert>

using namespace fgbs;

Measurement fgbs::measureInApp(const Codelet &C, const Machine &M,
                               CompileCache *Compile) {
  assert(!C.Invocations.empty() && "codelet without invocations");
  Measurement Avg;
  double TotalWeight = 0.0;
  bool First = true;
  for (const InvocationGroup &G : C.Invocations) {
    ExecutionRequest R;
    R.DatasetScale = G.DatasetScale;
    R.Context = CompilationContext::InApplication;
    R.WarmCacheReplay = false;
    R.Compile = Compile;
    Measurement One = execute(C, M, R);
    double W = static_cast<double>(G.Count);
    TotalWeight += W;

    Avg.TrueSeconds += W * One.TrueSeconds;
    Avg.MeasuredSeconds += W * One.MeasuredSeconds;
    Avg.MemCyclesPerIter += W * One.MemCyclesPerIter;
    Avg.Counters.Cycles += W * One.Counters.Cycles;
    Avg.Counters.Uops += W * One.Counters.Uops;
    Avg.Counters.FpOpsSP += W * One.Counters.FpOpsSP;
    Avg.Counters.FpOpsDP += W * One.Counters.FpOpsDP;
    Avg.Counters.L1Accesses += W * One.Counters.L1Accesses;
    Avg.Counters.L2LinesIn += W * One.Counters.L2LinesIn;
    Avg.Counters.L3LinesIn += W * One.Counters.L3LinesIn;
    Avg.Counters.MemLinesIn += W * One.Counters.MemLinesIn;
    Avg.Counters.LoadBytes += W * One.Counters.LoadBytes;
    Avg.Counters.StoreBytes += W * One.Counters.StoreBytes;
    Avg.Counters.Seconds += W * One.Counters.Seconds;
    if (First) {
      Avg.Compute = One.Compute;
      First = false;
    }
  }
  assert(TotalWeight > 0.0 && "zero invocations");
  double Inv = 1.0 / TotalWeight;
  Avg.TrueSeconds *= Inv;
  Avg.MeasuredSeconds *= Inv;
  Avg.MemCyclesPerIter *= Inv;
  Avg.Counters.Cycles *= Inv;
  Avg.Counters.Uops *= Inv;
  Avg.Counters.FpOpsSP *= Inv;
  Avg.Counters.FpOpsDP *= Inv;
  Avg.Counters.L1Accesses *= Inv;
  Avg.Counters.L2LinesIn *= Inv;
  Avg.Counters.L3LinesIn *= Inv;
  Avg.Counters.MemLinesIn *= Inv;
  Avg.Counters.LoadBytes *= Inv;
  Avg.Counters.StoreBytes *= Inv;
  Avg.Counters.Seconds *= Inv;
  return Avg;
}

CodeletProfile fgbs::profileCodelet(const Codelet &C, const Machine &Ref,
                                    CompileCache *Compile) {
  CodeletProfile P;
  P.C = &C;
  P.InApp = measureInApp(C, Ref, Compile);
  P.Features = computeFeatures(C, Ref, P.InApp, Compile);
  // "We discard codelets with execution time under one million cycles
  // because they are too short to be accurately measured."
  P.Discarded = P.InApp.Counters.Cycles < 1e6;
  return P;
}

std::vector<CodeletProfile> fgbs::profileSuite(const Suite &S,
                                               const Machine &Ref) {
  std::vector<CodeletProfile> Profiles;
  for (const Codelet *C : S.allCodelets())
    Profiles.push_back(profileCodelet(*C, Ref));
  return Profiles;
}
