//===- fgbs/analysis/Features.h - The 76-feature catalog --------*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The performance-feature catalog: 40 MAQAO-like static metrics computed
/// from the compiled binary loop, and 36 Likwid-like dynamic metrics
/// derived from hardware counters on the reference architecture — 76
/// features total, matching the paper ("MAQAO and Likwid gather 76
/// different features", section 3.2).
///
/// Feature subsets are represented as bit masks over this catalog; the
/// genetic algorithm of section 4.2 searches that space.  The named
/// features of paper Table 2 are all present (see kTable2FeatureNames).
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_ANALYSIS_FEATURES_H
#define FGBS_ANALYSIS_FEATURES_H

#include "fgbs/arch/Machine.h"
#include "fgbs/dsl/Codelet.h"
#include "fgbs/sim/Executor.h"

#include <string>
#include <vector>

namespace fgbs {

/// Whether a feature comes from static binary analysis or from hardware
/// counters.
enum class FeatureKind { Static, Dynamic };

/// Catalog entry.
struct FeatureInfo {
  std::string Name;
  FeatureKind Kind;
};

/// The global feature catalog (fixed order, 76 entries).
class FeatureCatalog {
public:
  /// The singleton catalog.
  static const FeatureCatalog &get();

  std::size_t size() const { return Infos.size(); }
  const FeatureInfo &info(std::size_t Index) const { return Infos[Index]; }

  /// Index of the feature named \p Name, or -1 if absent.
  int indexOf(const std::string &Name) const;

  /// Indices of all static / all dynamic features.
  std::vector<std::size_t> staticIndices() const;
  std::vector<std::size_t> dynamicIndices() const;

private:
  FeatureCatalog();
  std::vector<FeatureInfo> Infos;
};

/// Total number of features.
inline constexpr std::size_t NumFeatures = 76;

/// The feature names the paper's GA selected (Table 2), expressed in this
/// catalog's naming.  Used by tests and by bench/table2.
extern const std::vector<std::string> kTable2FeatureNames;

/// Computes the full 76-entry feature vector for codelet \p C profiled on
/// the reference machine \p Ref with in-application measurement \p M.
/// The static features re-analyze the compiled loop; \p Compile, when
/// given, reuses the memoized lowering (results are unchanged).
std::vector<double> computeFeatures(const Codelet &C, const Machine &Ref,
                                    const Measurement &M,
                                    CompileCache *Compile = nullptr);

/// A selection of features, as a bitmask over the catalog.
using FeatureMask = std::vector<bool>;

/// Mask with every feature selected.
FeatureMask allFeaturesMask();

/// Mask selecting exactly the named features (names must exist).
FeatureMask maskForNames(const std::vector<std::string> &Names);

/// Projects \p Full (size 76) onto the selected coordinates of \p Mask.
std::vector<double> applyMask(const std::vector<double> &Full,
                              const FeatureMask &Mask);

/// Number of selected features in \p Mask.
std::size_t maskCount(const FeatureMask &Mask);

} // namespace fgbs

#endif // FGBS_ANALYSIS_FEATURES_H
