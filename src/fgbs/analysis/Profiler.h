//===- fgbs/analysis/Profiler.h - Step B: reference profiling --*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Step B of the method: profile every codelet on the reference
/// architecture, in application context, and tag it with its 76-entry
/// feature vector.  Codelets running under one million cycles are flagged
/// as too short to measure accurately and discarded from clustering
/// (paper section 3.2).
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_ANALYSIS_PROFILER_H
#define FGBS_ANALYSIS_PROFILER_H

#include "fgbs/analysis/Features.h"

namespace fgbs {

/// Profile of one codelet on the reference architecture.
struct CodeletProfile {
  const Codelet *C = nullptr;
  /// In-application measurement averaged over all invocation groups.
  Measurement InApp;
  /// The full 76-entry feature vector.
  std::vector<double> Features;
  /// True when the codelet's invocation runs under one million cycles
  /// and is excluded from the study.
  bool Discarded = false;
};

/// Measures \p C on \p M inside its application: per-invocation times
/// and counters are averaged over the invocation groups, weighted by
/// invocation count (this is what Likwid probes around the in-app
/// hotspot observe).  \p Compile, when given, memoizes the lowering
/// shared by every invocation group (results are unchanged either way).
Measurement measureInApp(const Codelet &C, const Machine &M,
                         CompileCache *Compile = nullptr);

/// Profiles one codelet on the reference machine \p Ref (step B for a
/// single codelet; the parallel database fan-out calls this per work
/// item).
CodeletProfile profileCodelet(const Codelet &C, const Machine &Ref,
                              CompileCache *Compile = nullptr);

/// Profiles every codelet of \p S on the reference machine \p Ref.
std::vector<CodeletProfile> profileSuite(const Suite &S, const Machine &Ref);

} // namespace fgbs

#endif // FGBS_ANALYSIS_PROFILER_H
