//===- fgbs/cluster/Cluster.h - Clusterings and normalization --*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Flat clusterings over feature vectors, feature normalization, and the
/// centroid/medoid/variance helpers the method needs: features are
/// normalized to zero mean and unit variance (section 3.3), clusters are
/// summarized by centroids, and each cluster's representative is the
/// codelet closest to its centroid (section 3.4).
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_CLUSTER_CLUSTER_H
#define FGBS_CLUSTER_CLUSTER_H

#include <cstddef>
#include <vector>

namespace fgbs {

/// A dataset: one feature vector per point (equal lengths).
using FeatureTable = std::vector<std::vector<double>>;

/// Per-column normalization statistics.
struct NormalizationStats {
  std::vector<double> Mean;
  std::vector<double> Std;
};

/// Computes per-column mean and standard deviation of \p Points.
NormalizationStats computeNormalization(const FeatureTable &Points);

/// Z-score normalizes \p Points: each column is centered on zero and
/// scaled to unit variance.  Zero-variance columns become all-zero (they
/// carry no clustering information).
FeatureTable normalizeFeatures(const FeatureTable &Points);

/// A flat clustering: assignment of each point to a cluster id in
/// [0, K).
struct Clustering {
  std::vector<int> Assignment;
  unsigned K = 0;

  /// Member point indices per cluster.
  std::vector<std::vector<std::size_t>> members() const;

  /// Number of points.
  std::size_t size() const { return Assignment.size(); }
};

/// Centroid (mean vector) of the given member points.
std::vector<double> centroidOf(const FeatureTable &Points,
                               const std::vector<std::size_t> &Members);

/// Index (into \p Members) of the member closest to the cluster centroid:
/// the paper's representative choice.  Ties break to the lowest index.
std::size_t medoidOf(const FeatureTable &Points,
                     const std::vector<std::size_t> &Members);

/// Total within-cluster sum of squared distances to centroids.
double withinClusterVariance(const FeatureTable &Points,
                             const Clustering &C);

/// Total sum of squares around the global centroid (the K=1 variance).
double totalVariance(const FeatureTable &Points);

} // namespace fgbs

#endif // FGBS_CLUSTER_CLUSTER_H
