//===- fgbs/cluster/Quality.h - Clustering quality metrics -----*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Clustering-quality metrics beyond the paper's within-cluster variance:
/// silhouette scores (Rousseeuw) and a silhouette-based alternative to
/// the Elbow K selection, plus the Calinski-Harabasz index.  Used by the
/// design-choice ablation to check how sensitive the method is to the
/// K-selection rule the paper picked.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_CLUSTER_QUALITY_H
#define FGBS_CLUSTER_QUALITY_H

#include "fgbs/cluster/Hierarchical.h"

namespace fgbs {

/// Per-point silhouette values in [-1, 1]: (b - a) / max(a, b), where a
/// is the mean distance to the point's own cluster and b the mean
/// distance to the nearest other cluster.  Points in singleton clusters
/// score 0 by convention.
std::vector<double> silhouetteValues(const FeatureTable &Points,
                                     const Clustering &C);

/// Mean silhouette over all points.  Requires K >= 2.
double silhouetteScore(const FeatureTable &Points, const Clustering &C);

/// Calinski-Harabasz index: (between-cluster variance / (K-1)) /
/// (within-cluster variance / (N-K)).  Higher is better; requires
/// 2 <= K < N and positive within-cluster variance.
double calinskiHarabasz(const FeatureTable &Points, const Clustering &C);

/// Selects K in [2, MaxK] maximizing the mean silhouette over the
/// dendrogram cuts — an alternative to elbowK().
unsigned silhouetteK(const FeatureTable &Points, const Dendrogram &Tree,
                     unsigned MaxK);

} // namespace fgbs

#endif // FGBS_CLUSTER_QUALITY_H
