//===- fgbs/cluster/Render.h - ASCII dendrogram rendering ------*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text rendering of a dendrogram, mirroring the tree the paper prints
/// alongside Table 3.  Leaves carry caller-provided labels; internal
/// nodes show the merge height, so the cut producing any K is visible at
/// a glance.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_CLUSTER_RENDER_H
#define FGBS_CLUSTER_RENDER_H

#include "fgbs/cluster/Hierarchical.h"

#include <string>
#include <vector>

namespace fgbs {

/// Renders \p Tree with one line per node.  \p Labels must have one
/// entry per leaf.  If \p CutK > 1, the line of every merge undone by a
/// cut at \p CutK is marked with "<-- cut", visualizing the dashed line
/// of the paper's Table 3 dendrogram.
std::string renderDendrogram(const Dendrogram &Tree,
                             const std::vector<std::string> &Labels,
                             unsigned CutK = 0);

} // namespace fgbs

#endif // FGBS_CLUSTER_RENDER_H
