//===- fgbs/cluster/Quality.cpp - Clustering quality metrics --------------===//

#include "fgbs/cluster/Quality.h"

#include "fgbs/support/Matrix.h"
#include "fgbs/support/Statistics.h"

#include <cassert>
#include <limits>

using namespace fgbs;

std::vector<double> fgbs::silhouetteValues(const FeatureTable &Points,
                                           const Clustering &C) {
  assert(Points.size() == C.Assignment.size() && "size mismatch");
  std::size_t N = Points.size();
  std::vector<std::vector<std::size_t>> Members = C.members();
  std::vector<double> Out(N, 0.0);

  for (std::size_t I = 0; I < N; ++I) {
    auto Own = static_cast<std::size_t>(C.Assignment[I]);
    if (Members[Own].size() < 2)
      continue; // Singleton: silhouette 0 by convention.

    // Mean intra-cluster distance (excluding the point itself).
    double A = 0.0;
    for (std::size_t J : Members[Own])
      if (J != I)
        A += euclideanDistance(Points[I], Points[J]);
    A /= static_cast<double>(Members[Own].size() - 1);

    // Smallest mean distance to any other cluster.
    double B = std::numeric_limits<double>::infinity();
    for (std::size_t K = 0; K < Members.size(); ++K) {
      if (K == Own || Members[K].empty())
        continue;
      double Mean = 0.0;
      for (std::size_t J : Members[K])
        Mean += euclideanDistance(Points[I], Points[J]);
      Mean /= static_cast<double>(Members[K].size());
      B = std::min(B, Mean);
    }

    double Denom = std::max(A, B);
    Out[I] = Denom > 0.0 ? (B - A) / Denom : 0.0;
  }
  return Out;
}

double fgbs::silhouetteScore(const FeatureTable &Points,
                             const Clustering &C) {
  assert(C.K >= 2 && "silhouette needs at least two clusters");
  return mean(silhouetteValues(Points, C));
}

double fgbs::calinskiHarabasz(const FeatureTable &Points,
                              const Clustering &C) {
  std::size_t N = Points.size();
  assert(C.K >= 2 && C.K < N && "CH index needs 2 <= K < N");

  std::vector<std::vector<std::size_t>> Members = C.members();
  std::vector<double> Global = centroidOf(Points, [&] {
    std::vector<std::size_t> All(N);
    for (std::size_t I = 0; I < N; ++I)
      All[I] = I;
    return All;
  }());

  double Between = 0.0;
  for (const std::vector<std::size_t> &M : Members) {
    if (M.empty())
      continue;
    std::vector<double> Centroid = centroidOf(Points, M);
    Between += static_cast<double>(M.size()) *
               squaredDistance(Centroid, Global);
  }
  double Within = withinClusterVariance(Points, C);
  assert(Within > 0.0 && "CH index undefined for zero within variance");
  return (Between / static_cast<double>(C.K - 1)) /
         (Within / static_cast<double>(N - C.K));
}

unsigned fgbs::silhouetteK(const FeatureTable &Points, const Dendrogram &Tree,
                           unsigned MaxK) {
  std::size_t N = Points.size();
  MaxK = std::min<unsigned>(MaxK, static_cast<unsigned>(N));
  if (MaxK < 2)
    return 1;
  unsigned Best = 2;
  double BestScore = -2.0;
  for (unsigned K = 2; K <= MaxK; ++K) {
    double Score = silhouetteScore(Points, Tree.cut(K));
    if (Score > BestScore) {
      BestScore = Score;
      Best = K;
    }
  }
  return Best;
}
