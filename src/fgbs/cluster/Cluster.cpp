//===- fgbs/cluster/Cluster.cpp - Clusterings and normalization -----------===//

#include "fgbs/cluster/Cluster.h"

#include "fgbs/support/Matrix.h"

#include <cassert>
#include <cmath>

using namespace fgbs;

NormalizationStats fgbs::computeNormalization(const FeatureTable &Points) {
  assert(!Points.empty() && "cannot normalize an empty table");
  std::size_t Dim = Points.front().size();
  NormalizationStats Stats;
  Stats.Mean.assign(Dim, 0.0);
  Stats.Std.assign(Dim, 0.0);

  double N = static_cast<double>(Points.size());
  for (const std::vector<double> &P : Points) {
    assert(P.size() == Dim && "ragged feature table");
    for (std::size_t D = 0; D < Dim; ++D)
      Stats.Mean[D] += P[D];
  }
  for (std::size_t D = 0; D < Dim; ++D)
    Stats.Mean[D] /= N;

  for (const std::vector<double> &P : Points)
    for (std::size_t D = 0; D < Dim; ++D) {
      double Diff = P[D] - Stats.Mean[D];
      Stats.Std[D] += Diff * Diff;
    }
  for (std::size_t D = 0; D < Dim; ++D)
    Stats.Std[D] = std::sqrt(Stats.Std[D] / N);
  return Stats;
}

FeatureTable fgbs::normalizeFeatures(const FeatureTable &Points) {
  NormalizationStats Stats = computeNormalization(Points);
  FeatureTable Out = Points;
  for (std::vector<double> &P : Out)
    for (std::size_t D = 0; D < P.size(); ++D)
      P[D] = Stats.Std[D] > 0.0 ? (P[D] - Stats.Mean[D]) / Stats.Std[D] : 0.0;
  return Out;
}

std::vector<std::vector<std::size_t>> Clustering::members() const {
  std::vector<std::vector<std::size_t>> Out(K);
  for (std::size_t I = 0; I < Assignment.size(); ++I) {
    assert(Assignment[I] >= 0 && static_cast<unsigned>(Assignment[I]) < K &&
           "assignment out of range");
    Out[static_cast<std::size_t>(Assignment[I])].push_back(I);
  }
  return Out;
}

std::vector<double> fgbs::centroidOf(const FeatureTable &Points,
                                     const std::vector<std::size_t> &Members) {
  assert(!Members.empty() && "centroid of an empty cluster");
  std::size_t Dim = Points.front().size();
  std::vector<double> Centroid(Dim, 0.0);
  for (std::size_t Index : Members) {
    assert(Index < Points.size() && "member index out of range");
    for (std::size_t D = 0; D < Dim; ++D)
      Centroid[D] += Points[Index][D];
  }
  for (double &V : Centroid)
    V /= static_cast<double>(Members.size());
  return Centroid;
}

std::size_t fgbs::medoidOf(const FeatureTable &Points,
                           const std::vector<std::size_t> &Members) {
  std::vector<double> Centroid = centroidOf(Points, Members);
  std::size_t Best = 0;
  double BestDist = squaredDistance(Points[Members[0]], Centroid);
  for (std::size_t I = 1; I < Members.size(); ++I) {
    double Dist = squaredDistance(Points[Members[I]], Centroid);
    if (Dist < BestDist) {
      BestDist = Dist;
      Best = I;
    }
  }
  return Best;
}

double fgbs::withinClusterVariance(const FeatureTable &Points,
                                   const Clustering &C) {
  assert(Points.size() == C.Assignment.size() && "size mismatch");
  double Total = 0.0;
  for (const std::vector<std::size_t> &Members : C.members()) {
    if (Members.empty())
      continue;
    std::vector<double> Centroid = centroidOf(Points, Members);
    for (std::size_t Index : Members)
      Total += squaredDistance(Points[Index], Centroid);
  }
  return Total;
}

double fgbs::totalVariance(const FeatureTable &Points) {
  Clustering Single;
  Single.K = 1;
  Single.Assignment.assign(Points.size(), 0);
  return withinClusterVariance(Points, Single);
}
