//===- fgbs/cluster/Hierarchical.cpp - Agglomerative clustering -----------===//

#include "fgbs/cluster/Hierarchical.h"

#include "fgbs/obs/Trace.h"
#include "fgbs/support/Matrix.h"
#include "fgbs/support/Rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

using namespace fgbs;

bool Dendrogram::isValidShape(std::size_t NumLeaves,
                              const std::vector<MergeStep> &Merges) {
  if (NumLeaves == 0)
    return Merges.empty();
  return Merges.size() == NumLeaves - 1;
}

Dendrogram::Dendrogram(std::size_t NumLeaves, std::vector<MergeStep> Steps)
    : Leaves(NumLeaves), Merges(std::move(Steps)) {
  assert(isValidShape(Leaves, Merges) && "a dendrogram has N-1 merges");
}

Clustering Dendrogram::cut(unsigned K) const {
  Clustering Result;
  std::size_t N = Leaves;
  assert(N > 0 && "cut of an empty dendrogram");
  K = std::max(1u, std::min<unsigned>(K, static_cast<unsigned>(N)));
  Result.K = K;

  // Union-find over node ids (leaves then internal nodes).
  std::vector<int> Parent(N + Merges.size());
  std::iota(Parent.begin(), Parent.end(), 0);
  auto Find = [&Parent](int X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  };

  std::size_t Applied = N - K;
  for (std::size_t I = 0; I < Applied; ++I) {
    int Node = static_cast<int>(N + I);
    Parent[Find(Merges[I].Left)] = Node;
    Parent[Find(Merges[I].Right)] = Node;
  }

  // Relabel roots to [0, K) in leaf order.
  Result.Assignment.assign(N, -1);
  std::vector<int> RootLabel(Parent.size(), -1);
  int NextLabel = 0;
  for (std::size_t Leaf = 0; Leaf < N; ++Leaf) {
    int Root = Find(static_cast<int>(Leaf));
    if (RootLabel[Root] < 0)
      RootLabel[Root] = NextLabel++;
    Result.Assignment[Leaf] = RootLabel[Root];
  }
  assert(NextLabel == static_cast<int>(K) && "cut produced wrong K");
  return Result;
}

namespace {

/// Index of the (I, J) entry (I != J) in a condensed upper-triangular
/// distance matrix over N points.
inline std::size_t condensedIndex(std::size_t N, std::size_t I,
                                  std::size_t J) {
  if (I > J)
    std::swap(I, J);
  return I * (2 * N - I - 1) / 2 + (J - I - 1);
}

/// Lance-Williams dissimilarity between the merger of clusters I and J
/// (sizes NI, NJ, mutual dissimilarity DIJ) and cluster K (size NK).
inline double lanceWilliams(Linkage Method, double DIK, double DJK,
                            double DIJ, double NI, double NJ, double NK) {
  switch (Method) {
  case Linkage::Ward:
    return ((NI + NK) * DIK + (NJ + NK) * DJK - NK * DIJ) / (NI + NJ + NK);
  case Linkage::Single:
    return std::min(DIK, DJK);
  case Linkage::Complete:
    return std::max(DIK, DJK);
  case Linkage::Average:
    return (NI * DIK + NJ * DJK) / (NI + NJ);
  }
  return 0.0; // Unreachable; silences -Wreturn-type.
}

/// A raw NN-chain merge: the two cluster slots joined (a slot is the
/// smallest leaf index in its cluster) at dissimilarity Dist.
struct RawMerge {
  std::size_t A;
  std::size_t B;
  double Dist;
};

/// Rewrites chain-order merges into the canonical dendrogram: merges
/// sorted by height (stable, so equal heights keep the chain's
/// topologically valid order), children ordered so the cluster holding
/// the smallest leaf comes first — exactly the order the naive
/// closest-pair scan emits when all dissimilarities are distinct.
std::vector<MergeStep> canonicalize(std::size_t N, std::vector<RawMerge> Raw,
                                    bool Squared) {
  std::vector<std::size_t> Order(Raw.size());
  std::iota(Order.begin(), Order.end(), 0);
  std::stable_sort(Order.begin(), Order.end(),
                   [&Raw](std::size_t X, std::size_t Y) {
                     return Raw[X].Dist < Raw[Y].Dist;
                   });

  // Union-find over leaves; each root tracks its current dendrogram node
  // id and smallest contained leaf.
  std::vector<std::size_t> Parent(N);
  std::iota(Parent.begin(), Parent.end(), 0);
  auto Find = [&Parent](std::size_t X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  };
  std::vector<int> Node(N);
  std::iota(Node.begin(), Node.end(), 0);
  std::vector<unsigned> Size(N, 1);

  std::vector<MergeStep> Merges;
  Merges.reserve(Raw.size());
  for (std::size_t Index : Order) {
    std::size_t RootA = Find(Raw[Index].A);
    std::size_t RootB = Find(Raw[Index].B);
    assert(RootA != RootB && "merge joins a cluster with itself");
    // Roots are each cluster's smallest leaf, so they order the children.
    std::size_t Lo = std::min(RootA, RootB);
    std::size_t Hi = std::max(RootA, RootB);
    double Height =
        Squared ? std::sqrt(std::max(0.0, Raw[Index].Dist)) : Raw[Index].Dist;
    Merges.push_back({Node[Lo], Node[Hi], Height, Size[Lo] + Size[Hi]});
    Parent[Hi] = Lo;
    Node[Lo] = static_cast<int>(N + Merges.size() - 1);
    Size[Lo] += Size[Hi];
  }
  return Merges;
}

/// Pairwise dissimilarities in condensed form: squared Euclidean for Ward
/// (the Lance-Williams recurrence is exact on squared distances),
/// Euclidean otherwise.
std::vector<double> condensedDistances(const FeatureTable &Points,
                                       bool Squared) {
  std::size_t N = Points.size();
  std::vector<double> Dist(N * (N - 1) / 2);
  std::size_t Next = 0;
  for (std::size_t I = 0; I < N; ++I)
    for (std::size_t J = I + 1; J < N; ++J) {
      double D2 = squaredDistance(Points[I], Points[J]);
      Dist[Next++] = Squared ? D2 : std::sqrt(D2);
    }
  return Dist;
}

} // namespace

Dendrogram fgbs::hierarchicalCluster(const FeatureTable &Points,
                                     Linkage Method) {
  std::size_t N = Points.size();
  assert(N > 0 && "clustering an empty table");
  if (N == 1)
    return Dendrogram(1, {});

  FGBS_TRACE_SPAN("cluster.nn_chain");
  bool Squared = Method == Linkage::Ward;
  std::vector<double> Dist = condensedDistances(Points, Squared);

  std::vector<bool> Active(N, true);
  std::vector<double> Size(N, 1.0);

  // Telemetry tallies, maintained per outer iteration so the scan and
  // Lance-Williams inner loops stay untouched.  ActiveCount tracks the
  // live clusters; each chain step scans ActiveCount - 1 distances,
  // each merge rewrites ActiveCount - 2 of them.
  std::size_t ActiveCount = N;
  std::size_t ChainSteps = 0;
  std::size_t DistanceEvals = 0;

  // Nearest-neighbor chain (Murtagh 1983).  Grow a chain of successive
  // nearest neighbors until it ends in a reciprocal pair, merge that
  // pair, and resume from the truncated chain.  All four linkages are
  // reducible, so merges never invalidate the remaining chain and every
  // reciprocal pair is a merge of the true dendrogram.  Each of the N-1
  // merges does O(N) work: O(N^2) total.
  std::vector<std::size_t> Chain;
  Chain.reserve(N);
  std::vector<RawMerge> Raw;
  Raw.reserve(N - 1);
  std::size_t Seed = 0; // Rolling start: first active slot.

  while (Raw.size() + 1 < N) {
    if (Chain.empty()) {
      while (!Active[Seed])
        ++Seed;
      Chain.push_back(Seed);
    }
    std::size_t Top = Chain.back();
    ++ChainSteps;
    DistanceEvals += ActiveCount - 1;

    // Nearest active neighbor of Top; prefer the chain predecessor on
    // ties (guarantees termination), then the lowest slot.
    std::size_t Nearest = SIZE_MAX;
    double Best = std::numeric_limits<double>::infinity();
    if (Chain.size() >= 2) {
      Nearest = Chain[Chain.size() - 2];
      Best = Dist[condensedIndex(N, Top, Nearest)];
    }
    for (std::size_t K = 0; K < N; ++K) {
      if (!Active[K] || K == Top)
        continue;
      double D = Dist[condensedIndex(N, Top, K)];
      if (D < Best) {
        Best = D;
        Nearest = K;
      }
    }

    if (Chain.size() >= 2 && Nearest == Chain[Chain.size() - 2]) {
      // Reciprocal pair: merge Top with its predecessor.
      Chain.pop_back();
      Chain.pop_back();
      std::size_t Lo = std::min(Top, Nearest);
      std::size_t Hi = std::max(Top, Nearest);
      double NI = Size[Lo];
      double NJ = Size[Hi];
      for (std::size_t K = 0; K < N; ++K) {
        if (!Active[K] || K == Lo || K == Hi)
          continue;
        Dist[condensedIndex(N, Lo, K)] =
            lanceWilliams(Method, Dist[condensedIndex(N, Lo, K)],
                          Dist[condensedIndex(N, Hi, K)], Best, NI, NJ,
                          Size[K]);
      }
      Raw.push_back({Lo, Hi, Best});
      Size[Lo] += Size[Hi];
      Active[Hi] = false;
      DistanceEvals += ActiveCount - 2;
      --ActiveCount;
    } else {
      Chain.push_back(Nearest);
    }
  }
  FGBS_COUNTER_ADD("cluster.merges", N - 1);
  FGBS_COUNTER_ADD("cluster.chain_steps", ChainSteps);
  FGBS_COUNTER_ADD("cluster.distance_evals", DistanceEvals);
  return Dendrogram(N, canonicalize(N, std::move(Raw), Squared));
}

Dendrogram fgbs::hierarchicalClusterNaive(const FeatureTable &Points,
                                          Linkage Method) {
  std::size_t N = Points.size();
  assert(N > 0 && "clustering an empty table");
  if (N == 1)
    return Dendrogram(1, {});

  bool Squared = Method == Linkage::Ward;
  std::vector<std::vector<double>> Dist(N, std::vector<double>(N, 0.0));
  for (std::size_t I = 0; I < N; ++I)
    for (std::size_t J = I + 1; J < N; ++J) {
      double D2 = squaredDistance(Points[I], Points[J]);
      Dist[I][J] = Dist[J][I] = Squared ? D2 : std::sqrt(D2);
    }

  std::vector<bool> Active(N, true);
  std::vector<unsigned> Size(N, 1);
  std::vector<int> NodeId(N);
  std::iota(NodeId.begin(), NodeId.end(), 0);

  std::vector<MergeStep> Merges;
  Merges.reserve(N - 1);

  for (std::size_t Step = 0; Step + 1 < N; ++Step) {
    // Find the closest active pair (ties break deterministically to the
    // lexicographically smallest pair).
    std::size_t BestI = 0;
    std::size_t BestJ = 0;
    double Best = std::numeric_limits<double>::infinity();
    for (std::size_t I = 0; I < N; ++I) {
      if (!Active[I])
        continue;
      for (std::size_t J = I + 1; J < N; ++J) {
        if (!Active[J])
          continue;
        if (Dist[I][J] < Best) {
          Best = Dist[I][J];
          BestI = I;
          BestJ = J;
        }
      }
    }

    double NI = Size[BestI];
    double NJ = Size[BestJ];

    // Lance-Williams update of the distances from the merged cluster
    // (stored in slot BestI) to every other active cluster.
    for (std::size_t K = 0; K < N; ++K) {
      if (!Active[K] || K == BestI || K == BestJ)
        continue;
      Dist[BestI][K] = Dist[K][BestI] =
          lanceWilliams(Method, Dist[BestI][K], Dist[BestJ][K],
                        Dist[BestI][BestJ], NI, NJ, Size[K]);
    }

    double Height = Squared ? std::sqrt(std::max(0.0, Best)) : Best;
    Merges.push_back({NodeId[BestI], NodeId[BestJ], Height,
                      static_cast<unsigned>(NI + NJ)});
    NodeId[BestI] = static_cast<int>(N + Step);
    Size[BestI] = static_cast<unsigned>(NI + NJ);
    Active[BestJ] = false;
  }
  return Dendrogram(N, std::move(Merges));
}

unsigned fgbs::elbowK(const FeatureTable &Points, const Dendrogram &Tree,
                      unsigned MaxK, double Threshold) {
  FGBS_TRACE_SPAN("cluster.elbow");
  assert(Threshold > 0.0 && "elbow threshold must be positive");
  std::size_t N = Points.size();
  assert(Tree.numLeaves() == N && "dendrogram does not match the points");
  MaxK = std::min<unsigned>(MaxK, static_cast<unsigned>(N));
  if (MaxK <= 1)
    return 1;

  double Tss = totalVariance(Points);
  if (Tss <= 0.0)
    return 1;

  // Within-cluster variance of every cut in one pass: start from K=N
  // (every point its own cluster, WSS 0) and replay the merges.  Merging
  // clusters A and B moves the WSS up by the Huygens centroid-merge
  // delta |A||B|/(|A|+|B|) * ||centroid(A) - centroid(B)||^2, so the
  // whole K sweep costs O(N * Dim) instead of O(N^2 * Dim * MaxK).
  const std::vector<MergeStep> &Merges = Tree.merges();
  std::size_t Dim = Points.front().size();
  std::vector<std::vector<double>> SumOf(N + Merges.size());
  std::vector<double> CountOf(N + Merges.size(), 0.0);
  for (std::size_t I = 0; I < N; ++I) {
    SumOf[I] = Points[I];
    CountOf[I] = 1.0;
  }

  // WssAt[K] = within-cluster variance of cut(K), filled for K <= MaxK.
  std::vector<double> WssAt(MaxK + 1, 0.0);
  double Wss = 0.0;
  for (std::size_t Step = 0; Step < Merges.size(); ++Step) {
    const MergeStep &M = Merges[Step];
    std::vector<double> &Left = SumOf[static_cast<std::size_t>(M.Left)];
    std::vector<double> &Right = SumOf[static_cast<std::size_t>(M.Right)];
    double NL = CountOf[static_cast<std::size_t>(M.Left)];
    double NR = CountOf[static_cast<std::size_t>(M.Right)];
    double Gap = 0.0;
    for (std::size_t D = 0; D < Dim; ++D) {
      double Diff = Left[D] / NL - Right[D] / NR;
      Gap += Diff * Diff;
    }
    Wss += NL * NR / (NL + NR) * Gap;

    std::size_t Node = N + Step;
    SumOf[Node] = std::move(Left);
    for (std::size_t D = 0; D < Dim; ++D)
      SumOf[Node][D] += Right[D];
    Right.clear();
    Right.shrink_to_fit();
    CountOf[Node] = NL + NR;

    std::size_t K = N - Step - 1; // Clusters remaining after this merge.
    if (K <= MaxK)
      WssAt[K] = Wss;
  }

  // Same scan as the original per-K recomputation: cut where the
  // marginal improvement drops below Threshold x total variance.
  double Previous = Tss;
  for (unsigned K = 2; K <= MaxK; ++K) {
    double Gain = Previous - WssAt[K];
    if (Gain < Threshold * Tss)
      return K - 1;
    Previous = WssAt[K];
  }
  return MaxK;
}

Clustering fgbs::randomClustering(std::size_t NumPoints, unsigned K,
                                  std::uint64_t Seed) {
  assert(K >= 1 && K <= NumPoints && "infeasible random clustering");
  Rng Generator(Seed);
  Clustering Result;
  Result.K = K;
  Result.Assignment.assign(NumPoints, 0);

  // Guarantee non-empty clusters: K distinct points seed the clusters,
  // the rest draw uniformly.
  std::vector<std::size_t> Seeds =
      Generator.sampleWithoutReplacement(NumPoints, K);
  std::vector<bool> IsSeed(NumPoints, false);
  for (unsigned Label = 0; Label < K; ++Label) {
    Result.Assignment[Seeds[Label]] = static_cast<int>(Label);
    IsSeed[Seeds[Label]] = true;
  }
  for (std::size_t I = 0; I < NumPoints; ++I)
    if (!IsSeed[I])
      Result.Assignment[I] = static_cast<int>(Generator.below(K));
  return Result;
}
