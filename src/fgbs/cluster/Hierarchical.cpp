//===- fgbs/cluster/Hierarchical.cpp - Agglomerative clustering -----------===//

#include "fgbs/cluster/Hierarchical.h"

#include "fgbs/support/Matrix.h"
#include "fgbs/support/Rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

using namespace fgbs;

Dendrogram::Dendrogram(std::size_t NumLeaves, std::vector<MergeStep> Steps)
    : Leaves(NumLeaves), Merges(std::move(Steps)) {
  assert((Leaves == 0 && Merges.empty()) ||
         Merges.size() == Leaves - 1 && "a dendrogram has N-1 merges");
}

Clustering Dendrogram::cut(unsigned K) const {
  Clustering Result;
  std::size_t N = Leaves;
  assert(N > 0 && "cut of an empty dendrogram");
  K = std::max(1u, std::min<unsigned>(K, static_cast<unsigned>(N)));
  Result.K = K;

  // Union-find over node ids (leaves then internal nodes).
  std::vector<int> Parent(N + Merges.size());
  std::iota(Parent.begin(), Parent.end(), 0);
  auto Find = [&Parent](int X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  };

  std::size_t Applied = N - K;
  for (std::size_t I = 0; I < Applied; ++I) {
    int Node = static_cast<int>(N + I);
    Parent[Find(Merges[I].Left)] = Node;
    Parent[Find(Merges[I].Right)] = Node;
  }

  // Relabel roots to [0, K) in leaf order.
  Result.Assignment.assign(N, -1);
  std::vector<int> RootLabel(Parent.size(), -1);
  int NextLabel = 0;
  for (std::size_t Leaf = 0; Leaf < N; ++Leaf) {
    int Root = Find(static_cast<int>(Leaf));
    if (RootLabel[Root] < 0)
      RootLabel[Root] = NextLabel++;
    Result.Assignment[Leaf] = RootLabel[Root];
  }
  assert(NextLabel == static_cast<int>(K) && "cut produced wrong K");
  return Result;
}

Dendrogram fgbs::hierarchicalCluster(const FeatureTable &Points,
                                     Linkage Method) {
  std::size_t N = Points.size();
  assert(N > 0 && "clustering an empty table");
  if (N == 1)
    return Dendrogram(1, {});

  // Pairwise distances: squared Euclidean for Ward (the Lance-Williams
  // recurrence below is exact on squared distances), Euclidean otherwise.
  bool Squared = Method == Linkage::Ward;
  std::vector<std::vector<double>> Dist(N, std::vector<double>(N, 0.0));
  for (std::size_t I = 0; I < N; ++I)
    for (std::size_t J = I + 1; J < N; ++J) {
      double D2 = squaredDistance(Points[I], Points[J]);
      Dist[I][J] = Dist[J][I] = Squared ? D2 : std::sqrt(D2);
    }

  std::vector<bool> Active(N, true);
  std::vector<unsigned> Size(N, 1);
  std::vector<int> NodeId(N);
  std::iota(NodeId.begin(), NodeId.end(), 0);

  std::vector<MergeStep> Merges;
  Merges.reserve(N - 1);

  for (std::size_t Step = 0; Step + 1 < N; ++Step) {
    // Find the closest active pair (ties break deterministically to the
    // lexicographically smallest pair).
    std::size_t BestI = 0;
    std::size_t BestJ = 0;
    double Best = std::numeric_limits<double>::infinity();
    for (std::size_t I = 0; I < N; ++I) {
      if (!Active[I])
        continue;
      for (std::size_t J = I + 1; J < N; ++J) {
        if (!Active[J])
          continue;
        if (Dist[I][J] < Best) {
          Best = Dist[I][J];
          BestI = I;
          BestJ = J;
        }
      }
    }

    double NI = Size[BestI];
    double NJ = Size[BestJ];

    // Lance-Williams update of the distances from the merged cluster
    // (stored in slot BestI) to every other active cluster.
    for (std::size_t K = 0; K < N; ++K) {
      if (!Active[K] || K == BestI || K == BestJ)
        continue;
      double NK = Size[K];
      double DIK = Dist[BestI][K];
      double DJK = Dist[BestJ][K];
      double DIJ = Dist[BestI][BestJ];
      double Updated = 0.0;
      switch (Method) {
      case Linkage::Ward:
        Updated = ((NI + NK) * DIK + (NJ + NK) * DJK - NK * DIJ) /
                  (NI + NJ + NK);
        break;
      case Linkage::Single:
        Updated = std::min(DIK, DJK);
        break;
      case Linkage::Complete:
        Updated = std::max(DIK, DJK);
        break;
      case Linkage::Average:
        Updated = (NI * DIK + NJ * DJK) / (NI + NJ);
        break;
      }
      Dist[BestI][K] = Dist[K][BestI] = Updated;
    }

    double Height = Squared ? std::sqrt(std::max(0.0, Best)) : Best;
    Merges.push_back({NodeId[BestI], NodeId[BestJ], Height,
                      static_cast<unsigned>(NI + NJ)});
    NodeId[BestI] = static_cast<int>(N + Step);
    Size[BestI] = static_cast<unsigned>(NI + NJ);
    Active[BestJ] = false;
  }
  return Dendrogram(N, std::move(Merges));
}

unsigned fgbs::elbowK(const FeatureTable &Points, const Dendrogram &Tree,
                      unsigned MaxK, double Threshold) {
  assert(Threshold > 0.0 && "elbow threshold must be positive");
  std::size_t N = Points.size();
  MaxK = std::min<unsigned>(MaxK, static_cast<unsigned>(N));
  if (MaxK <= 1)
    return 1;

  double Tss = totalVariance(Points);
  if (Tss <= 0.0)
    return 1;

  double Previous = Tss;
  for (unsigned K = 2; K <= MaxK; ++K) {
    double Wss = withinClusterVariance(Points, Tree.cut(K));
    double Gain = Previous - Wss;
    // Cut where the within-cluster variance stops improving
    // significantly.
    if (Gain < Threshold * Tss)
      return K - 1;
    Previous = Wss;
  }
  return MaxK;
}

Clustering fgbs::randomClustering(std::size_t NumPoints, unsigned K,
                                  std::uint64_t Seed) {
  assert(K >= 1 && K <= NumPoints && "infeasible random clustering");
  Rng Generator(Seed);
  Clustering Result;
  Result.K = K;
  Result.Assignment.assign(NumPoints, 0);

  // Guarantee non-empty clusters: K distinct points seed the clusters,
  // the rest draw uniformly.
  std::vector<std::size_t> Seeds =
      Generator.sampleWithoutReplacement(NumPoints, K);
  std::vector<bool> IsSeed(NumPoints, false);
  for (unsigned Label = 0; Label < K; ++Label) {
    Result.Assignment[Seeds[Label]] = static_cast<int>(Label);
    IsSeed[Seeds[Label]] = true;
  }
  for (std::size_t I = 0; I < NumPoints; ++I)
    if (!IsSeed[I])
      Result.Assignment[I] = static_cast<int>(Generator.below(K));
  return Result;
}
