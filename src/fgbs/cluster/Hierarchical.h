//===- fgbs/cluster/Hierarchical.h - Agglomerative clustering --*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Agglomerative hierarchical clustering with Ward's criterion (the
/// paper's choice, section 3.3), plus single/complete/average linkage for
/// the ablation benches.  The merge history is recorded as a dendrogram
/// that can be cut at any K; the Elbow method (Thorndike 1953) selects K
/// automatically by cutting when the within-cluster variance stops
/// improving significantly.
///
/// The production clusterer uses the nearest-neighbor-chain algorithm
/// (Murtagh 1983) over a flat condensed distance matrix: O(N^2) time and
/// N(N-1)/2 doubles of memory.  All four linkage criteria are reducible,
/// so the chain algorithm produces the same dendrogram as the classical
/// O(N^3) closest-pair scan; merges are canonicalized (sorted by height,
/// children ordered by smallest contained leaf) so the output is
/// deterministic and matches the retained naive reference merge for
/// merge.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_CLUSTER_HIERARCHICAL_H
#define FGBS_CLUSTER_HIERARCHICAL_H

#include "fgbs/cluster/Cluster.h"

#include <cstdint>

namespace fgbs {

/// Linkage criteria.  Ward is the paper's; the others exist for the
/// ablation study.
enum class Linkage { Ward, Single, Complete, Average };

/// One agglomerative merge.  Node ids: 0..N-1 are leaves; merge i creates
/// node N+i.
struct MergeStep {
  int Left;
  int Right;
  double Height; ///< Linkage distance at which the merge happened.
  unsigned Size; ///< Leaves under the merged node.
};

/// The recorded merge history of a hierarchical clustering.
class Dendrogram {
public:
  Dendrogram(std::size_t NumLeaves, std::vector<MergeStep> Merges);

  std::size_t numLeaves() const { return Leaves; }
  const std::vector<MergeStep> &merges() const { return Merges; }

  /// Whether \p Merges is a well-formed merge history for \p NumLeaves
  /// leaves: a nonempty dendrogram has exactly NumLeaves - 1 merges and
  /// an empty one has none.
  static bool isValidShape(std::size_t NumLeaves,
                           const std::vector<MergeStep> &Merges);

  /// Cuts the tree into \p K clusters by undoing the last K-1 merges.
  /// Cluster ids are assigned in leaf order (cluster 0 contains leaf 0).
  /// \p K is clamped to [1, numLeaves()].
  Clustering cut(unsigned K) const;

private:
  std::size_t Leaves;
  std::vector<MergeStep> Merges;
};

/// Builds the dendrogram of \p Points under \p Method, using Euclidean
/// distances (Lance-Williams updates).  Requires at least one point.
/// Runs the O(N^2) nearest-neighbor-chain algorithm; the merge order is
/// canonicalized to match hierarchicalClusterNaive() (up to floating-
/// point rounding of the heights).
Dendrogram hierarchicalCluster(const FeatureTable &Points,
                               Linkage Method = Linkage::Ward);

/// The classical O(N^3) closest-pair clusterer, retained as the reference
/// implementation for the NN-chain equivalence tests and as the
/// benchmark baseline (BM_WardClusterNaive).  Identical semantics to
/// hierarchicalCluster().
Dendrogram hierarchicalClusterNaive(const FeatureTable &Points,
                                    Linkage Method = Linkage::Ward);

/// The Elbow method: the smallest K whose marginal within-cluster
/// variance improvement falls below \p Threshold x total variance,
/// searching K in [1, MaxK].  Computes the within-cluster variance of
/// every cut in a single O(N * Dim) pass over the merge history
/// (centroid-merge deltas) instead of re-clustering per K.
unsigned elbowK(const FeatureTable &Points, const Dendrogram &Tree,
                unsigned MaxK, double Threshold = 0.005);

/// Generates a uniformly random partition of \p NumPoints points into
/// exactly \p K non-empty clusters (for the Figure 7 baseline).
Clustering randomClustering(std::size_t NumPoints, unsigned K,
                            std::uint64_t Seed);

} // namespace fgbs

#endif // FGBS_CLUSTER_HIERARCHICAL_H
