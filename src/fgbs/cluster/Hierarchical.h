//===- fgbs/cluster/Hierarchical.h - Agglomerative clustering --*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Agglomerative hierarchical clustering with Ward's criterion (the
/// paper's choice, section 3.3), plus single/complete/average linkage for
/// the ablation benches.  The merge history is recorded as a dendrogram
/// that can be cut at any K; the Elbow method (Thorndike 1953) selects K
/// automatically by cutting when the within-cluster variance stops
/// improving significantly.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_CLUSTER_HIERARCHICAL_H
#define FGBS_CLUSTER_HIERARCHICAL_H

#include "fgbs/cluster/Cluster.h"

#include <cstdint>

namespace fgbs {

/// Linkage criteria.  Ward is the paper's; the others exist for the
/// ablation study.
enum class Linkage { Ward, Single, Complete, Average };

/// One agglomerative merge.  Node ids: 0..N-1 are leaves; merge i creates
/// node N+i.
struct MergeStep {
  int Left;
  int Right;
  double Height; ///< Linkage distance at which the merge happened.
  unsigned Size; ///< Leaves under the merged node.
};

/// The recorded merge history of a hierarchical clustering.
class Dendrogram {
public:
  Dendrogram(std::size_t NumLeaves, std::vector<MergeStep> Merges);

  std::size_t numLeaves() const { return Leaves; }
  const std::vector<MergeStep> &merges() const { return Merges; }

  /// Cuts the tree into \p K clusters by undoing the last K-1 merges.
  /// Cluster ids are assigned in leaf order (cluster 0 contains leaf 0).
  /// \p K is clamped to [1, numLeaves()].
  Clustering cut(unsigned K) const;

private:
  std::size_t Leaves;
  std::vector<MergeStep> Merges;
};

/// Builds the dendrogram of \p Points under \p Method, using Euclidean
/// distances (Lance-Williams updates).  Requires at least one point.
Dendrogram hierarchicalCluster(const FeatureTable &Points,
                               Linkage Method = Linkage::Ward);

/// The Elbow method: the smallest K whose marginal within-cluster
/// variance improvement falls below \p Threshold x total variance,
/// searching K in [1, MaxK].
unsigned elbowK(const FeatureTable &Points, const Dendrogram &Tree,
                unsigned MaxK, double Threshold = 0.005);

/// Generates a uniformly random partition of \p NumPoints points into
/// exactly \p K non-empty clusters (for the Figure 7 baseline).
Clustering randomClustering(std::size_t NumPoints, unsigned K,
                            std::uint64_t Seed);

} // namespace fgbs

#endif // FGBS_CLUSTER_HIERARCHICAL_H
