//===- fgbs/cluster/Render.cpp - ASCII dendrogram rendering ---------------===//

#include "fgbs/cluster/Render.h"

#include "fgbs/support/TextTable.h"

#include <cassert>

using namespace fgbs;

namespace {

/// Recursive renderer over the merge tree.
class Renderer {
public:
  Renderer(const Dendrogram &Tree, const std::vector<std::string> &Labels,
           unsigned CutK)
      : Tree(Tree), Labels(Labels) {
    std::size_t N = Tree.numLeaves();
    // A cut at K undoes the last K-1 merges; those merge nodes are the
    // ones the dashed line crosses.
    FirstUndone = CutK > 1 ? Tree.merges().size() - (CutK - 1)
                           : Tree.merges().size();
    (void)N;
  }

  std::string render() {
    if (Tree.numLeaves() == 0)
      return "";
    int Root = Tree.merges().empty()
                   ? 0
                   : static_cast<int>(Tree.numLeaves() +
                                      Tree.merges().size() - 1);
    renderNode(Root, "", "");
    return std::move(Out);
  }

private:
  void renderNode(int Node, const std::string &Prefix,
                  const std::string &ChildPrefix) {
    auto N = static_cast<int>(Tree.numLeaves());
    if (Node < N) {
      assert(static_cast<std::size_t>(Node) < Labels.size() &&
             "missing leaf label");
      Out += Prefix + Labels[static_cast<std::size_t>(Node)] + "\n";
      return;
    }
    std::size_t MergeIdx = static_cast<std::size_t>(Node - N);
    const MergeStep &Step = Tree.merges()[MergeIdx];
    Out += Prefix + "+ h=" + formatDouble(Step.Height, 2);
    if (MergeIdx >= FirstUndone)
      Out += "   <-- cut";
    Out += "\n";
    renderNode(Step.Left, ChildPrefix + "|-- ", ChildPrefix + "|   ");
    renderNode(Step.Right, ChildPrefix + "`-- ", ChildPrefix + "    ");
  }

  const Dendrogram &Tree;
  const std::vector<std::string> &Labels;
  std::size_t FirstUndone;
  std::string Out;
};

} // namespace

std::string fgbs::renderDendrogram(const Dendrogram &Tree,
                                   const std::vector<std::string> &Labels,
                                   unsigned CutK) {
  assert(Labels.size() == Tree.numLeaves() && "one label per leaf");
  return Renderer(Tree, Labels, CutK).render();
}
