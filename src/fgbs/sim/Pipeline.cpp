//===- fgbs/sim/Pipeline.cpp - Analytic core-pipeline model ---------------===//

#include "fgbs/sim/Pipeline.h"

#include <algorithm>
#include <cassert>

using namespace fgbs;

double fgbs::latencyOf(const Inst &I, const Machine &M) {
  const CoreTimings &T = M.Timings;
  switch (I.Kind) {
  case OpKind::FpAdd:
    return T.FpAddLatency;
  case OpKind::FpMul:
    return T.FpMulLatency;
  case OpKind::FpDiv:
    return I.Prec == Precision::SP ? T.FpDivLatencySP : T.FpDivLatencyDP;
  case OpKind::FpSqrt:
    return T.FpSqrtLatency;
  case OpKind::FpExp:
    return T.FpExpCost;
  case OpKind::FpAbs:
    return 1.0;
  case OpKind::IntAdd:
    return T.IntAddLatency;
  case OpKind::IntMul:
    return T.IntMulLatency;
  case OpKind::Load:
    return M.CacheLevels.front().LatencyCycles;
  case OpKind::Store:
  case OpKind::Compare:
  case OpKind::Branch:
  case OpKind::MoveReg:
    return 1.0;
  }
  assert(false && "unknown op kind");
  return 1.0;
}

double fgbs::uopCost(const Inst &I, const Machine &M) {
  if (!I.isVector())
    return 1.0;
  // Vector memory ops and shuffles are single uops on all modeled cores;
  // vector FP arithmetic cracks on Atom-class machines.
  if (!isFpArith(I.Kind))
    return 1.0;
  return I.Prec == Precision::DP ? M.Timings.VectorDpThroughputFactor
                                 : M.Timings.VectorFpThroughputFactor;
}

/// Occupancy of the (unpipelined) divider / libm unit for \p I; zero for
/// instructions that do not use it.
static double dividerOccupancy(const Inst &I, const Machine &M) {
  const CoreTimings &T = M.Timings;
  double Lanes = I.isVector() ? static_cast<double>(I.VecElems) : 1.0;
  // Packed divides retire lanes back-to-back through the divider, with a
  // small overlap between lanes (the 0.7 factor matches the measured
  // divpd-vs-divsd throughput ratio on P6-class cores).
  double LaneFactor = I.isVector() ? Lanes * 0.7 : 1.0;
  switch (I.Kind) {
  case OpKind::FpDiv:
    return LaneFactor *
           (I.Prec == Precision::SP ? T.FpDivLatencySP : T.FpDivLatencyDP);
  case OpKind::FpSqrt:
    return LaneFactor * T.FpSqrtLatency;
  case OpKind::FpExp:
    // Libm blocks are software sequences: vector variants process lanes
    // with better amortization.
    return T.FpExpCost * (I.isVector() ? Lanes * 0.6 : 1.0);
  default:
    return 0.0;
  }
}

ComputeBreakdown fgbs::computeBound(const BinaryLoop &Loop, const Machine &M) {
  ComputeBreakdown B;

  double LoadExposure = 0.0;
  for (const Inst &I : Loop.Body) {
    double Uops = uopCost(I, M);
    B.Uops += Uops;

    // Greedy least-loaded port assignment among the allowed ports.
    PortSet Ports = portsFor(I.Kind);
    assert(Ports.Mask != 0 && "instruction with no dispatch port");
    unsigned Best = NumPorts;
    for (unsigned P = 0; P < NumPorts; ++P) {
      if (!Ports.contains(static_cast<PortId>(P)))
        continue;
      if (Best == NumPorts || B.PortCycles[P] < B.PortCycles[Best])
        Best = P;
    }
    B.PortCycles[Best] += Uops;

    B.DividerCycles += dividerOccupancy(I, M);
    if (I.Kind == OpKind::Load)
      LoadExposure += 1.0;
  }

  B.MaxPortCycles = *std::max_element(B.PortCycles.begin(), B.PortCycles.end());
  B.IssueCycles = B.Uops / static_cast<double>(M.IssueWidth);

  double ChainLatency = 0.0;
  for (const Inst &I : Loop.CritChainOps)
    ChainLatency += latencyOf(I, M);
  assert(Loop.ChainParallelism >= 1 && "invalid chain parallelism");
  B.DepCycles = ChainLatency / static_cast<double>(Loop.ChainParallelism);

  double Throughput = std::max(B.MaxPortCycles, B.IssueCycles);
  if (M.OutOfOrder) {
    // Out-of-order cores overlap everything; the loop runs at the
    // tightest bound.
    B.ComputeCycles =
        std::max({Throughput, B.DepCycles, B.DividerCycles});
  } else {
    // In-order cores cannot hide dependency stalls or divider occupancy
    // behind other work, and expose part of every load-to-use latency.
    double L1Latency = M.CacheLevels.front().LatencyCycles;
    B.ComputeCycles = Throughput + 0.8 * B.DepCycles + B.DividerCycles +
                      0.35 * LoadExposure * (L1Latency - 1.0);
  }
  return B;
}
