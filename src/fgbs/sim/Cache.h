//===- fgbs/sim/Cache.h - Trace-driven cache hierarchy ---------*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A trace-driven, set-associative, LRU, inclusive multi-level data-cache
/// simulator.  The executor (fgbs/sim/Executor.h) drives it with sampled
/// address streams derived from codelet access patterns to classify each
/// stream's steady-state residence level and line traffic; those feed both
/// the memory-time model and the Likwid-like cache counters.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_SIM_CACHE_H
#define FGBS_SIM_CACHE_H

#include "fgbs/arch/Machine.h"

#include <cstdint>
#include <vector>

namespace fgbs {

/// One set-associative LRU cache level.
class CacheLevel {
public:
  explicit CacheLevel(const CacheLevelConfig &Config);

  /// Looks up the line containing \p Addr; inserts it on miss.
  /// \returns true on hit.
  bool access(std::uint64_t Addr);

  /// Drops all cached lines.
  void flush();

  /// Pre-loads the line containing \p Addr without counting a reference
  /// (used to model a warmed cache state).
  void touch(std::uint64_t Addr);

  std::uint64_t hits() const { return Hits; }
  std::uint64_t misses() const { return Misses; }
  void resetCounters() { Hits = Misses = 0; }

  const CacheLevelConfig &config() const { return Config; }

private:
  /// \returns true if the tag was present; updates LRU order and inserts
  /// on miss.  \p CountReference controls statistics updates.
  bool lookupAndFill(std::uint64_t Addr, bool CountReference);

  CacheLevelConfig Config;
  unsigned NumSets;
  unsigned LineShift;
  /// Per-set tag vectors ordered most-recently-used first.
  std::vector<std::vector<std::uint64_t>> Sets;
  std::uint64_t Hits = 0;
  std::uint64_t Misses = 0;
};

/// Which level served an access (L1 = 0, ..., Memory = number of levels).
using ServiceLevel = unsigned;

/// An inclusive multi-level hierarchy.
class CacheHierarchy {
public:
  explicit CacheHierarchy(const Machine &M);

  /// Performs one access; \returns the index of the level that served it
  /// (numLevels() for DRAM).  Stores allocate like loads (write-allocate,
  /// write-back approximation).
  ServiceLevel access(std::uint64_t Addr);

  /// Number of cache levels.
  unsigned numLevels() const { return static_cast<unsigned>(Levels.size()); }

  /// Access to level statistics.
  const CacheLevel &level(unsigned Index) const { return Levels[Index]; }

  /// Resets hit/miss counters on all levels.
  void resetCounters();

  /// Drops all cached state.
  void flush();

private:
  std::vector<CacheLevel> Levels;
};

} // namespace fgbs

#endif // FGBS_SIM_CACHE_H
