//===- fgbs/sim/Pipeline.h - Analytic core-pipeline model ------*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analytic execution-core model: given a compiled BinaryLoop and a
/// Machine, bound the cycles one loop-body execution needs, assuming all
/// memory accesses hit L1 (memory effects are layered on by the
/// Executor).  This is also the engine behind the MAQAO-like "estimated
/// IPC assuming L1 hits" static features.
///
/// Modeled bounds, combined per the core's issue discipline:
///  - dispatch-port pressure (greedy least-loaded assignment),
///  - issue width,
///  - loop-carried dependency chains (latency / chain parallelism),
///  - divider occupancy (div/sqrt unpipelined; libm blocks),
///  - in-order issue exposure (latency not hidden by OoO scheduling).
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_SIM_PIPELINE_H
#define FGBS_SIM_PIPELINE_H

#include "fgbs/arch/Machine.h"
#include "fgbs/compiler/BinaryLoop.h"

#include <array>

namespace fgbs {

/// Per-bound cycle breakdown for one loop-body execution.
struct ComputeBreakdown {
  /// Dispatch cycles accumulated on each port.
  std::array<double, NumPorts> PortCycles{};
  /// Largest per-port pressure.
  double MaxPortCycles = 0.0;
  /// Total uops / issue width.
  double IssueCycles = 0.0;
  /// Loop-carried chain latency / chain parallelism.
  double DepCycles = 0.0;
  /// Divider + transcendental serial occupancy.
  double DividerCycles = 0.0;
  /// Total decoded uops.
  double Uops = 0.0;
  /// Combined compute bound (cycles per body execution, L1-resident).
  double ComputeCycles = 0.0;

  /// Instructions per cycle implied by the combined bound.
  double ipc(double Instructions) const {
    return ComputeCycles > 0.0 ? Instructions / ComputeCycles : 0.0;
  }
};

/// Latency in cycles of \p I on \p M (scalar-op latency; vector cracking
/// is accounted in throughput, not latency).
double latencyOf(const Inst &I, const Machine &M);

/// Decoded-uop cost of \p I on \p M (vector FP ops crack into several
/// uops on Atom-class cores).
double uopCost(const Inst &I, const Machine &M);

/// Computes the compute-bound breakdown of \p Loop on \p M.
ComputeBreakdown computeBound(const BinaryLoop &Loop, const Machine &M);

} // namespace fgbs

#endif // FGBS_SIM_PIPELINE_H
