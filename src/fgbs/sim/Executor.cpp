//===- fgbs/sim/Executor.cpp - Codelet execution model --------------------===//

#include "fgbs/sim/Executor.h"

#include "fgbs/obs/Metrics.h"
#include "fgbs/support/Rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <mutex>
#include <unordered_map>

using namespace fgbs;

namespace {

/// Caps keeping the sampled trace affordable: the steady-state window
/// only needs enough accesses to wrap the largest in-cache footprint.
constexpr std::uint64_t MaxWarmupAccesses = 3u * 1000 * 1000;
constexpr std::uint64_t MaxMeasureAccesses = 600 * 1000;

/// Strides at or below this many bytes are handled by the hardware
/// stream prefetchers of every modeled core.
constexpr std::int64_t PrefetchableStrideBytes = 128;

/// Walks one memory stream's address sequence.
class StreamWalker {
public:
  StreamWalker(const MemoryStreamDesc &Desc, std::uint64_t Base)
      : Desc(Desc), Base(Base) {
    // Distinct touch points of a multi-point stream spread evenly over
    // the footprint (stencil planes).
    for (unsigned P = 0; P < Desc.PointsPerIter; ++P)
      PointOffsets.push_back(P * (Desc.FootprintBytes / Desc.PointsPerIter));
  }

  /// Address of touch point \p Point at iteration \p Iter.
  std::uint64_t addressAt(std::uint64_t Iter, unsigned Point) const {
    std::int64_t Offset =
        static_cast<std::int64_t>(Iter) * Desc.StrideBytes;
    std::int64_t Span = static_cast<std::int64_t>(Desc.FootprintBytes);
    std::int64_t Wrapped = ((Offset % Span) + Span) % Span;
    return Base + PointOffsets[Point] +
           static_cast<std::uint64_t>(Wrapped) % Desc.FootprintBytes;
  }

  const MemoryStreamDesc &desc() const { return Desc; }

private:
  MemoryStreamDesc Desc;
  std::uint64_t Base;
  std::vector<std::uint64_t> PointOffsets;
};

} // namespace

std::vector<StreamBehavior>
fgbs::sampleMemoryBehavior(const std::vector<MemoryStreamDesc> &Streams,
                           const Machine &M,
                           std::uint64_t TotalIterations) {
  std::vector<StreamBehavior> Out(Streams.size());
  if (Streams.empty())
    return Out;

  CacheHierarchy Hierarchy(M);
  unsigned Levels = Hierarchy.numLevels();

  // Lay streams out at page-aligned, slightly staggered bases.
  std::vector<StreamWalker> Walkers;
  std::uint64_t NextBase = 1 << 20;
  unsigned TouchesPerIter = 0;
  for (std::size_t J = 0; J < Streams.size(); ++J) {
    Walkers.emplace_back(Streams[J], NextBase + J * 192);
    NextBase += (Streams[J].FootprintBytes + 4095) / 4096 * 4096 + (1 << 16);
    TouchesPerIter += Streams[J].PointsPerIter;
  }
  assert(TouchesPerIter > 0 && "streams with no touches");

  // Warm until the largest wrapping stream has wrapped once (bounded),
  // then measure a steady-state window.  Working sets far beyond the
  // last-level cache can never produce reuse hits at the wrap, so a
  // short warmup already reaches the streaming steady state.
  std::uint64_t WrapIters = 1;
  std::uint64_t TotalFootprint = 0;
  for (const MemoryStreamDesc &S : Streams) {
    TotalFootprint += S.FootprintBytes;
    if (S.StrideBytes == 0)
      continue;
    std::uint64_t AbsStride =
        static_cast<std::uint64_t>(std::llabs(S.StrideBytes));
    WrapIters = std::max(WrapIters, S.FootprintBytes / AbsStride + 1);
  }
  if (TotalFootprint > 4 * M.lastLevelCacheBytes())
    WrapIters = std::min<std::uint64_t>(WrapIters, 30000);
  std::uint64_t WarmIters =
      std::min(WrapIters + 1024, MaxWarmupAccesses / TouchesPerIter);
  std::uint64_t MeasureIters =
      std::max<std::uint64_t>(1, MaxMeasureAccesses / TouchesPerIter);
  // Short-running codelets never reach the asymptote; shrink the windows
  // so per-invocation behaviour stays representative.
  if (TotalIterations < WarmIters + MeasureIters) {
    WarmIters = TotalIterations / 2;
    MeasureIters = std::max<std::uint64_t>(1, TotalIterations - WarmIters);
  }

  for (std::uint64_t T = 0; T < WarmIters; ++T)
    for (StreamWalker &W : Walkers)
      for (unsigned P = 0; P < W.desc().PointsPerIter; ++P)
        Hierarchy.access(W.addressAt(T, P));

  // Measure window: count the level that serves each stream's accesses.
  std::vector<std::vector<std::uint64_t>> Served(
      Streams.size(), std::vector<std::uint64_t>(Levels + 1, 0));
  for (std::uint64_t T = 0; T < MeasureIters; ++T) {
    std::uint64_t Iter = WarmIters + T;
    for (std::size_t J = 0; J < Walkers.size(); ++J)
      for (unsigned P = 0; P < Walkers[J].desc().PointsPerIter; ++P)
        ++Served[J][Hierarchy.access(Walkers[J].addressAt(Iter, P))];
  }

  for (std::size_t J = 0; J < Streams.size(); ++J) {
    StreamBehavior &B = Out[J];
    B.ServedFraction.assign(Levels + 1, 0.0);
    double Total = 0.0;
    for (std::uint64_t Count : Served[J])
      Total += static_cast<double>(Count);
    if (Total > 0.0)
      for (unsigned L = 0; L <= Levels; ++L)
        B.ServedFraction[L] = static_cast<double>(Served[J][L]) / Total;
    B.AccessesPerIter = Streams[J].PointsPerIter;
    B.Prefetchable =
        std::llabs(Streams[J].StrideBytes) <= PrefetchableStrideBytes;
    B.IsStore = Streams[J].IsStore;
    B.ElemBytes = Streams[J].ElemBytes;
  }
  return Out;
}

std::vector<StreamBehavior>
fgbs::sampleMemoryBehaviorCached(const std::vector<MemoryStreamDesc> &Streams,
                                 const Machine &M,
                                 std::uint64_t TotalIterations) {
  // The trace simulation is the expensive part of execute(); identical
  // (streams, machine, iteration-count) triples recur constantly across
  // contexts and pipeline runs, so memoize on a structural hash.  The
  // memo is shared across the parallel measurement fan-out: lookups and
  // insertions lock, the sampling itself runs outside the lock (racing
  // misses sample twice, deterministically identically; first insert
  // wins).
  static std::mutex MemoMutex;
  static std::unordered_map<std::uint64_t, std::vector<StreamBehavior>> Memo;

  std::uint64_t Key = hashString(M.Name.c_str());
  Key = hashCombine(Key, TotalIterations);
  for (const MemoryStreamDesc &S : Streams) {
    Key = hashCombine(Key, static_cast<std::uint64_t>(S.StrideBytes));
    Key = hashCombine(Key, S.FootprintBytes);
    Key = hashCombine(Key, S.PointsPerIter);
    Key = hashCombine(Key, (static_cast<std::uint64_t>(S.IsStore) << 8) |
                               S.ElemBytes);
  }
  {
    std::lock_guard<std::mutex> Lock(MemoMutex);
    auto It = Memo.find(Key);
    if (It != Memo.end())
      return It->second;
  }
  std::vector<StreamBehavior> Result =
      sampleMemoryBehavior(Streams, M, TotalIterations);
  std::lock_guard<std::mutex> Lock(MemoMutex);
  Memo.try_emplace(Key, Result);
  return Result;
}

/// Latency-hiding factor (memory-level parallelism) for a stream.
static double mlpFor(bool Prefetchable, bool OutOfOrder) {
  if (Prefetchable)
    return OutOfOrder ? 0.0 /* fully hidden */ : 4.0;
  return OutOfOrder ? 6.0 : 1.3;
}

/// The warm-cache replay advantage of a CF memory dump grows with how far
/// the working set overflows the last-level cache; on the modeled
/// machines only Atom's tiny L2 crosses the threshold (the paper observed
/// the effect only on Atom).
static double warmReplayMissReduction(const Machine &M,
                                      std::uint64_t FootprintBytes) {
  double Ratio = static_cast<double>(FootprintBytes) /
                 static_cast<double>(M.lastLevelCacheBytes());
  double T = std::clamp((Ratio - 50.0) / 150.0, 0.0, 1.0);
  return 1.0 + 0.6 * T;
}

Measurement fgbs::execute(const Codelet &C, const Machine &M,
                          const ExecutionRequest &R) {
  assert(R.DatasetScale > 0.0 && "dataset scale must be positive");
  FGBS_COUNTER_ADD("sim.execute", 1);
  Measurement Result;

  BinaryLoop Fresh;
  if (!R.Compile)
    Fresh = compile(C, M, R.Context, R.Options);
  const BinaryLoop &Loop =
      R.Compile ? R.Compile->get(C, M, R.Context, R.Options) : Fresh;
  Result.Compute = computeBound(Loop, M);

  double Scale = R.DatasetScale;
  auto TotalIters = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(C.Nest.totalIterations()) * Scale));
  TotalIters = std::max<std::uint64_t>(TotalIters, 1);

  std::vector<MemoryStreamDesc> Streams = collectStreams(C, Scale);
  std::vector<StreamBehavior> Behavior =
      sampleMemoryBehaviorCached(Streams, M, TotalIters);

  unsigned Levels = static_cast<unsigned>(M.CacheLevels.size());

  // Optional warm-replay adjustment: move part of the DRAM traffic to
  // the last-level cache.
  if (R.WarmCacheReplay && C.Traits.CacheStateSensitive) {
    double Reduction = warmReplayMissReduction(M, C.footprintBytes());
    for (StreamBehavior &B : Behavior) {
      double Mem = B.ServedFraction[Levels];
      double Kept = Mem / Reduction;
      B.ServedFraction[Levels] = Kept;
      B.ServedFraction[Levels - 1] += Mem - Kept;
    }
  }

  // --- Memory time per innermost iteration -----------------------------
  // Bandwidth: each level is charged the bytes it supplied; DRAM uses the
  // machine's sustained bandwidth.  Latency: exposed according to the
  // stream's prefetchability and the core's memory-level parallelism.
  double BwCycles = 0.0;
  double LatCycles = 0.0;
  double L1Bytes = 0.0;
  PerfCounters &Ctr = Result.Counters;
  for (const StreamBehavior &B : Behavior) {
    double Accesses = B.AccessesPerIter;
    L1Bytes += Accesses * B.ElemBytes;
    Ctr.L1Accesses += Accesses;
    double LineBytes = M.CacheLevels.front().LineBytes;
    for (unsigned L = 1; L <= Levels; ++L) {
      double ServedHere = Accesses * B.ServedFraction[L];
      if (ServedHere <= 0.0)
        continue;
      double Bytes = ServedHere * LineBytes;
      double Bandwidth = L < Levels ? M.CacheLevels[L].BandwidthBytesPerCycle
                                    : M.memBandwidthBytesPerCycle();
      double Latency = L < Levels ? M.CacheLevels[L].LatencyCycles
                                  : M.MemLatencyCycles;
      BwCycles += Bytes / Bandwidth;
      double Mlp = mlpFor(B.Prefetchable, M.OutOfOrder);
      if (Mlp > 0.0)
        LatCycles += ServedHere * Latency / Mlp;

      // Counters: lines entering L1 come from anywhere past it, etc.
      Ctr.L2LinesIn += ServedHere;
      if (L >= 2 && Levels >= 3)
        Ctr.L3LinesIn += ServedHere;
      if (L == Levels)
        Ctr.MemLinesIn += ServedHere;
    }
    if (B.IsStore)
      Ctr.StoreBytes += Accesses * B.ElemBytes;
    else
      Ctr.LoadBytes += Accesses * B.ElemBytes;
  }
  BwCycles += L1Bytes / M.CacheLevels.front().BandwidthBytesPerCycle;
  double MemCyclesPerIter = BwCycles + LatCycles;
  Result.MemCyclesPerIter = MemCyclesPerIter;

  // --- Combine compute and memory --------------------------------------
  double ComputePerElem =
      Result.Compute.ComputeCycles / static_cast<double>(Loop.ElementsPerIter);
  double PerElem;
  if (M.OutOfOrder)
    PerElem = std::max(ComputePerElem, MemCyclesPerIter) +
              0.15 * std::min(ComputePerElem, MemCyclesPerIter);
  else
    PerElem = ComputePerElem + 0.85 * MemCyclesPerIter;

  // Invocation overhead: call, spill/restore, loop setup.
  constexpr double InvocationOverheadCycles = 400.0;
  double Cycles =
      PerElem * static_cast<double>(TotalIters) + InvocationOverheadCycles;
  double Seconds = Cycles / M.hz();

  // --- Counters over the whole invocation ------------------------------
  double Bodies =
      static_cast<double>(TotalIters) / static_cast<double>(Loop.ElementsPerIter);
  double FpSP = 0.0;
  double FpDP = 0.0;
  for (const Inst &I : Loop.Body) {
    if (!isFpArith(I.Kind))
      continue;
    if (I.Prec == Precision::SP)
      FpSP += I.flops();
    else if (I.Prec == Precision::DP)
      FpDP += I.flops();
  }
  Ctr.FpOpsSP = FpSP * Bodies;
  Ctr.FpOpsDP = FpDP * Bodies;
  Ctr.Uops = Result.Compute.Uops * Bodies;
  Ctr.Cycles = Cycles;
  Ctr.Seconds = Seconds;
  // Per-iteration memory counters scale by the iteration count.
  Ctr.L1Accesses *= static_cast<double>(TotalIters);
  Ctr.L2LinesIn *= static_cast<double>(TotalIters);
  Ctr.L3LinesIn *= static_cast<double>(TotalIters);
  Ctr.MemLinesIn *= static_cast<double>(TotalIters);
  Ctr.LoadBytes *= static_cast<double>(TotalIters);
  Ctr.StoreBytes *= static_cast<double>(TotalIters);

  // --- Measurement noise and probe overhead ----------------------------
  // Short codelets suffer relatively more from instrumentation and timer
  // granularity (the paper attributes its residual error to codelets
  // under 10 ms per invocation).
  double ProbeOverhead =
      R.Context == CompilationContext::InApplication ? 3e-6 : 0.5e-6;
  double Millis = Seconds * 1e3;
  double Sigma = 0.012 + 0.035 * std::exp(-Millis / 8.0);
  std::uint64_t Seed = hashString(C.Name.c_str());
  Seed = hashCombine(Seed, hashString(M.Name.c_str()));
  Seed = hashCombine(Seed, static_cast<std::uint64_t>(R.Context));
  Seed = hashCombine(Seed, static_cast<std::uint64_t>(R.WarmCacheReplay));
  Seed = hashCombine(Seed,
                     static_cast<std::uint64_t>(std::llround(Scale * 4096)));
  Seed = hashCombine(Seed, hashString(R.Options.name().c_str()));
  Rng NoiseRng(Seed);
  double Factor = std::exp(NoiseRng.normal(0.0, Sigma));

  Result.TrueSeconds = Seconds;
  Result.MeasuredSeconds = Seconds * Factor + ProbeOverhead;
  return Result;
}
