//===- fgbs/sim/Cache.cpp - Trace-driven cache hierarchy ------------------===//

#include "fgbs/sim/Cache.h"

#include <algorithm>
#include <cassert>

using namespace fgbs;

static unsigned log2Floor(std::uint64_t Value) {
  assert(Value > 0 && "log2 of zero");
  unsigned Result = 0;
  while (Value >>= 1)
    ++Result;
  return Result;
}

CacheLevel::CacheLevel(const CacheLevelConfig &Config) : Config(Config) {
  assert(Config.LineBytes > 0 && (Config.LineBytes & (Config.LineBytes - 1)) == 0 &&
         "line size must be a power of two");
  assert(Config.Associativity > 0 && "associativity must be positive");
  std::uint64_t Lines = Config.SizeBytes / Config.LineBytes;
  NumSets = static_cast<unsigned>(
      std::max<std::uint64_t>(1, Lines / Config.Associativity));
  LineShift = log2Floor(Config.LineBytes);
  Sets.resize(NumSets);
}

bool CacheLevel::lookupAndFill(std::uint64_t Addr, bool CountReference) {
  std::uint64_t Line = Addr >> LineShift;
  std::vector<std::uint64_t> &Set = Sets[Line % NumSets];

  auto It = std::find(Set.begin(), Set.end(), Line);
  if (It != Set.end()) {
    // Move to MRU position.
    Set.erase(It);
    Set.insert(Set.begin(), Line);
    if (CountReference)
      ++Hits;
    return true;
  }

  if (CountReference)
    ++Misses;
  Set.insert(Set.begin(), Line);
  if (Set.size() > Config.Associativity)
    Set.pop_back();
  return false;
}

bool CacheLevel::access(std::uint64_t Addr) {
  return lookupAndFill(Addr, /*CountReference=*/true);
}

void CacheLevel::touch(std::uint64_t Addr) {
  lookupAndFill(Addr, /*CountReference=*/false);
}

void CacheLevel::flush() {
  for (std::vector<std::uint64_t> &Set : Sets)
    Set.clear();
}

CacheHierarchy::CacheHierarchy(const Machine &M) {
  assert(!M.CacheLevels.empty() && "machine without caches");
  Levels.reserve(M.CacheLevels.size());
  for (const CacheLevelConfig &Config : M.CacheLevels)
    Levels.emplace_back(Config);
}

ServiceLevel CacheHierarchy::access(std::uint64_t Addr) {
  // Inclusive hierarchy: probe top-down, fill every missing level.
  ServiceLevel Served = numLevels();
  for (unsigned L = 0; L < numLevels(); ++L) {
    if (Levels[L].access(Addr)) {
      Served = L;
      break;
    }
  }
  return Served;
}

void CacheHierarchy::resetCounters() {
  for (CacheLevel &L : Levels)
    L.resetCounters();
}

void CacheHierarchy::flush() {
  for (CacheLevel &L : Levels)
    L.flush();
}
