//===- fgbs/sim/Executor.h - Codelet execution model -----------*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The executor: "runs" a codelet on a machine model and produces a timed
/// measurement with Likwid-style hardware counters.
///
/// The executor compiles the codelet for the machine (honoring the
/// compilation context), samples its memory streams through the
/// trace-driven cache hierarchy, combines the compute and memory bounds
/// according to the core's issue discipline, and applies a deterministic
/// measurement-noise model (stronger for short codelets, as the paper
/// observes) plus instrumentation overhead.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_SIM_EXECUTOR_H
#define FGBS_SIM_EXECUTOR_H

#include "fgbs/arch/Machine.h"
#include "fgbs/compiler/CompileCache.h"
#include "fgbs/compiler/Compiler.h"
#include "fgbs/dsl/Codelet.h"
#include "fgbs/sim/Cache.h"
#include "fgbs/sim/Pipeline.h"

#include <cstdint>

namespace fgbs {

/// Likwid-style raw performance events for one codelet invocation.
struct PerfCounters {
  double Cycles = 0.0;
  double Uops = 0.0;
  double FpOpsSP = 0.0;
  double FpOpsDP = 0.0;
  double L1Accesses = 0.0;
  /// Lines transferred into L1 from L2 (i.e. L1 misses).
  double L2LinesIn = 0.0;
  /// Lines transferred into L2 from L3 (0 on machines without an L3).
  double L3LinesIn = 0.0;
  /// Lines fetched from DRAM.
  double MemLinesIn = 0.0;
  double LoadBytes = 0.0;
  double StoreBytes = 0.0;
  double Seconds = 0.0;

  double totalFlops() const { return FpOpsSP + FpOpsDP; }
};

/// How one invocation of a codelet is being executed.
struct ExecutionRequest {
  double DatasetScale = 1.0;
  CompilationContext Context = CompilationContext::InApplication;
  /// True when the run replays a CF memory dump (standalone
  /// microbenchmark): codelets flagged CacheStateSensitive then see a
  /// warmer memory hierarchy than they did inside the application.
  bool WarmCacheReplay = false;
  /// Optimizer settings (defaults model -O3).
  CompilerOptions Options;
  /// Optional compile memoization shared across executions (database
  /// construction passes one); null compiles afresh per call.  Does not
  /// affect results: the lowering is deterministic.
  CompileCache *Compile = nullptr;
};

/// The result of executing one invocation.
struct Measurement {
  /// Noise-free model time per invocation, seconds.
  double TrueSeconds = 0.0;
  /// Measured time per invocation (noise + probe overhead), seconds.
  double MeasuredSeconds = 0.0;
  /// Raw events for one invocation (noise-free).
  PerfCounters Counters;
  /// Compute-bound breakdown (for static-analysis consumers and tests).
  ComputeBreakdown Compute;
  /// Memory cycles per innermost iteration (for tests).
  double MemCyclesPerIter = 0.0;
};

/// Per-stream steady-state cache behaviour, sampled by the trace
/// simulator.  Exposed for unit testing.
struct StreamBehavior {
  /// Fraction of this stream's accesses served by each level; index
  /// numLevels() is DRAM.
  std::vector<double> ServedFraction;
  /// Accesses per innermost iteration.
  double AccessesPerIter = 0.0;
  /// True for hardware-prefetch-friendly strides (small constant).
  bool Prefetchable = true;
  bool IsStore = false;
  unsigned ElemBytes = 8;
};

/// Samples the steady-state behaviour of \p Streams on \p M's hierarchy,
/// assuming \p TotalIterations innermost iterations per invocation.
std::vector<StreamBehavior>
sampleMemoryBehavior(const std::vector<MemoryStreamDesc> &Streams,
                     const Machine &M, std::uint64_t TotalIterations);

/// Memoizing wrapper around sampleMemoryBehavior (the executor's hot
/// path; identical stream/machine/iteration triples recur across
/// compilation contexts and pipeline runs).
std::vector<StreamBehavior>
sampleMemoryBehaviorCached(const std::vector<MemoryStreamDesc> &Streams,
                           const Machine &M, std::uint64_t TotalIterations);

/// Executes codelet \p C on machine \p M per request \p R.
/// Deterministic: identical inputs produce identical measurements.
Measurement execute(const Codelet &C, const Machine &M,
                    const ExecutionRequest &R);

} // namespace fgbs

#endif // FGBS_SIM_EXECUTOR_H
