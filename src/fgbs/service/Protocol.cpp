//===- fgbs/service/Protocol.cpp - LDJSON request/response protocol -------===//

#include "fgbs/service/Protocol.h"

#include "fgbs/obs/Trace.h"

#include <cmath>

using namespace fgbs;
using namespace fgbs::service;

namespace {

obs::JsonValue errorResponse(const char *Category, std::string Message) {
  FGBS_COUNTER_ADD("service.protocol.errors", 1);
  obs::JsonValue R = obs::JsonValue::object();
  R.set("ok", obs::JsonValue(false));
  R.set("error", obs::JsonValue(Category));
  R.set("message", obs::JsonValue(std::move(Message)));
  return R;
}

obs::JsonValue okResponse() {
  obs::JsonValue R = obs::JsonValue::object();
  R.set("ok", obs::JsonValue(true));
  return R;
}

/// Extracts a full-catalog feature vector from \p Request["features"].
/// Returns false with \p Error filled on any shape/value problem.
bool parseFeatures(const obs::JsonValue &Request, std::size_t Expected,
                   std::vector<double> &Out, std::string &Error) {
  const obs::JsonValue *Features = Request.find("features");
  if (!Features || Features->kind() != obs::JsonValue::Kind::Array) {
    Error = "request needs a \"features\" array";
    return false;
  }
  if (Features->elements().size() != Expected) {
    Error = "\"features\" must carry " + std::to_string(Expected) +
            " entries, got " + std::to_string(Features->elements().size());
    return false;
  }
  Out.clear();
  Out.reserve(Expected);
  for (const obs::JsonValue &V : Features->elements()) {
    if (!V.isNumber() || !std::isfinite(V.number())) {
      Error = "\"features\" entries must be finite numbers";
      return false;
    }
    Out.push_back(V.number());
  }
  return true;
}

/// Extracts a positive "ref_seconds" member.
bool parseRefSeconds(const obs::JsonValue &Request, double &Out,
                     std::string &Error) {
  const obs::JsonValue *Ref = Request.find("ref_seconds");
  if (!Ref || !Ref->isNumber() || !std::isfinite(Ref->number()) ||
      Ref->number() <= 0.0) {
    Error = "request needs a positive \"ref_seconds\" number";
    return false;
  }
  Out = Ref->number();
  return true;
}

obs::JsonValue classifyToJson(const ClassifyResult &C) {
  obs::JsonValue R = okResponse();
  R.set("cluster", obs::JsonValue(static_cast<double>(C.Cluster)));
  R.set("distance", obs::JsonValue(C.Distance));
  R.set("representative",
        obs::JsonValue(static_cast<double>(C.Representative)));
  R.set("representative_name", obs::JsonValue(C.RepresentativeName));
  return R;
}

} // namespace

obs::JsonValue QueryEngine::handle(const obs::JsonValue &Request) const {
  FGBS_SCOPED_TIMER("service.request");
  FGBS_COUNTER_ADD("service.requests", 1);

  if (!Request.isObject())
    return errorResponse("bad_request", "request must be a JSON object");
  const obs::JsonValue *Op = Request.find("op");
  if (!Op || Op->kind() != obs::JsonValue::Kind::String)
    return errorResponse("bad_request", "request needs an \"op\" string");

  const ModelSnapshot &S = Svc.model();
  std::string Error;

  if (Op->string() == "info") {
    obs::JsonValue R = okResponse();
    R.set("schema", obs::JsonValue("fgbs.model.v1"));
    R.set("suite", obs::JsonValue(S.SuiteName));
    R.set("reference", obs::JsonValue(S.ReferenceName));
    R.set("features", obs::JsonValue(static_cast<double>(S.numFeatures())));
    R.set("selected_features",
          obs::JsonValue(static_cast<double>(S.numSelectedFeatures())));
    R.set("clusters", obs::JsonValue(static_cast<double>(S.numClusters())));
    R.set("codelets", obs::JsonValue(static_cast<double>(S.numCodelets())));
    obs::JsonValue Targets = obs::JsonValue::array();
    for (const SnapshotTarget &T : S.Targets)
      Targets.push(obs::JsonValue(T.MachineName));
    R.set("targets", std::move(Targets));
    return R;
  }

  if (Op->string() == "classify") {
    std::vector<double> Features;
    if (!parseFeatures(Request, S.numFeatures(), Features, Error))
      return errorResponse("bad_request", Error);
    return classifyToJson(Svc.classify(Features));
  }

  if (Op->string() == "predict") {
    QueryRequest Q;
    if (!parseFeatures(Request, S.numFeatures(), Q.Features, Error) ||
        !parseRefSeconds(Request, Q.ReferenceSeconds, Error))
      return errorResponse("bad_request", Error);
    PredictResult P = Svc.predictTimes(Q);
    obs::JsonValue R = classifyToJson(P.Classified);
    obs::JsonValue Predicted = obs::JsonValue::object();
    obs::JsonValue Speedups = obs::JsonValue::object();
    for (std::size_t T = 0; T < S.Targets.size(); ++T) {
      Predicted.set(S.Targets[T].MachineName,
                    obs::JsonValue(P.PredictedSeconds[T]));
      Speedups.set(S.Targets[T].MachineName, obs::JsonValue(P.Speedups[T]));
    }
    R.set("predicted_seconds", std::move(Predicted));
    R.set("speedups", std::move(Speedups));
    return R;
  }

  if (Op->string() == "rank") {
    const obs::JsonValue *Queries = Request.find("queries");
    if (!Queries || Queries->kind() != obs::JsonValue::Kind::Array ||
        Queries->elements().empty())
      return errorResponse("bad_request",
                           "request needs a non-empty \"queries\" array");
    std::vector<QueryRequest> Batch;
    Batch.reserve(Queries->elements().size());
    for (const obs::JsonValue &Entry : Queries->elements()) {
      QueryRequest Q;
      if (!Entry.isObject() ||
          !parseFeatures(Entry, S.numFeatures(), Q.Features, Error) ||
          !parseRefSeconds(Entry, Q.ReferenceSeconds, Error))
        return errorResponse("bad_request",
                             Error.empty() ? "queries entries must be objects"
                                           : Error);
      Batch.push_back(std::move(Q));
    }
    std::vector<MachineRank> Ranking = Svc.rankMachines(Batch, Pool);
    obs::JsonValue R = okResponse();
    obs::JsonValue Rows = obs::JsonValue::array();
    for (const MachineRank &Rank : Ranking) {
      obs::JsonValue Row = obs::JsonValue::object();
      Row.set("machine", obs::JsonValue(Rank.MachineName));
      Row.set("geomean_speedup", obs::JsonValue(Rank.GeomeanSpeedup));
      Rows.push(std::move(Row));
    }
    R.set("ranking", std::move(Rows));
    R.set("best", obs::JsonValue(Ranking.front().MachineName));
    return R;
  }

  return errorResponse("unknown_op", "unsupported op \"" + Op->string() +
                                         "\"");
}

std::string QueryEngine::handleLine(const std::string &Line) const {
  std::optional<obs::JsonValue> Request = obs::parseJson(Line);
  obs::JsonValue Response =
      Request ? handle(*Request)
              : errorResponse("bad_json", "request line is not valid JSON");
  return obs::writeJson(Response);
}
