//===- fgbs/service/SelectionService.cpp - Online query engine ------------===//

#include "fgbs/service/SelectionService.h"

#include "fgbs/model/Prediction.h"
#include "fgbs/obs/Trace.h"
#include "fgbs/support/Matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace fgbs;
using namespace fgbs::service;

SelectionService::SelectionService(ModelSnapshot Model) : S(std::move(Model)) {
#ifndef NDEBUG
  std::string Message;
  assert(validateSnapshot(S, Message) == SnapshotError::None &&
         "SelectionService requires a validated snapshot");
#endif
  for (std::size_t F = 0; F < S.Mask.size(); ++F)
    if (S.Mask[F])
      Selected.push_back(F);
}

std::vector<double>
SelectionService::normalize(const std::vector<double> &Features) const {
  assert(Features.size() == S.numFeatures() &&
         "query must carry the full catalog vector");
  std::vector<double> Out(Selected.size());
  for (std::size_t D = 0; D < Selected.size(); ++D) {
    double V = Features[Selected[D]];
    // Same arithmetic as normalizeFeatures(): zero-variance columns
    // carry no information and map to 0.
    Out[D] = S.Norm.Std[D] > 0.0 ? (V - S.Norm.Mean[D]) / S.Norm.Std[D] : 0.0;
  }
  return Out;
}

ClassifyResult
SelectionService::classify(const std::vector<double> &Features) const {
  FGBS_SCOPED_TIMER("service.classify");
  FGBS_COUNTER_ADD("service.classify.requests", 1);
  std::vector<double> Point = normalize(Features);

  std::size_t Best = 0;
  double BestDist = squaredDistance(Point, S.Centroids[0]);
  for (std::size_t K = 1; K < S.Centroids.size(); ++K) {
    double Dist = squaredDistance(Point, S.Centroids[K]);
    if (Dist < BestDist) {
      BestDist = Dist;
      Best = K;
    }
  }

  ClassifyResult R;
  R.Cluster = static_cast<unsigned>(Best);
  R.Distance = std::sqrt(BestDist);
  R.Representative = S.Representatives[Best];
  R.RepresentativeName = S.CodeletNames[R.Representative];
  return R;
}

PredictResult SelectionService::predictTimes(const QueryRequest &Q) const {
  FGBS_SCOPED_TIMER("service.predict");
  FGBS_COUNTER_ADD("service.predict.requests", 1);
  assert(Q.ReferenceSeconds > 0.0 &&
         "time prediction needs a positive reference measurement");

  PredictResult R;
  R.Classified = classify(Q.Features);
  std::size_t Cluster = R.Classified.Cluster;
  double RepRef = S.ReferenceSeconds[S.Representatives[Cluster]];

  R.PredictedSeconds.reserve(S.Targets.size());
  R.Speedups.reserve(S.Targets.size());
  for (const SnapshotTarget &T : S.Targets) {
    // Mirrors PredictionModel exactly: M(i,k) = ref_i / ref_rep, then
    // M(i,k) * rep_target — same operation order, same rounding.
    double Predicted =
        (Q.ReferenceSeconds / RepRef) * T.RepresentativeSeconds[Cluster];
    R.PredictedSeconds.push_back(Predicted);
    R.Speedups.push_back(Predicted > 0.0 ? Q.ReferenceSeconds / Predicted
                                         : 0.0);
  }
  return R;
}

std::vector<PredictResult>
SelectionService::predictBatch(const std::vector<QueryRequest> &Queries,
                               ThreadPool *Pool) const {
  FGBS_SCOPED_TIMER("service.batch");
  FGBS_COUNTER_ADD("service.batch.requests", 1);
  FGBS_COUNTER_ADD("service.batch.queries", Queries.size());
  FGBS_HISTOGRAM_RECORD_NS("service.batch.size", Queries.size());

  std::vector<PredictResult> Results(Queries.size());
  auto Evaluate = [&](std::size_t I) { Results[I] = predictTimes(Queries[I]); };
  if (Pool && Pool->threadCount() > 1 && Queries.size() > 1)
    Pool->parallelFor(0, Queries.size(), Evaluate);
  else
    for (std::size_t I = 0; I < Queries.size(); ++I)
      Evaluate(I);
  return Results;
}

std::vector<MachineRank>
SelectionService::rankMachines(const std::vector<QueryRequest> &Queries,
                               ThreadPool *Pool) const {
  FGBS_SCOPED_TIMER("service.rank");
  FGBS_COUNTER_ADD("service.rank.requests", 1);
  std::vector<PredictResult> Results = predictBatch(Queries, Pool);

  std::vector<MachineRank> Ranking;
  Ranking.reserve(S.Targets.size());
  for (std::size_t T = 0; T < S.Targets.size(); ++T) {
    std::vector<double> Ref;
    std::vector<double> Predicted;
    Ref.reserve(Queries.size());
    Predicted.reserve(Queries.size());
    for (std::size_t Q = 0; Q < Queries.size(); ++Q) {
      Ref.push_back(Queries[Q].ReferenceSeconds);
      Predicted.push_back(Results[Q].PredictedSeconds[T]);
    }
    MachineRank Rank;
    Rank.MachineName = S.Targets[T].MachineName;
    Rank.GeomeanSpeedup = geometricMeanSpeedup(Ref, Predicted);
    Ranking.push_back(std::move(Rank));
  }
  // Best machine first; stable so equal speedups keep snapshot order.
  std::stable_sort(Ranking.begin(), Ranking.end(),
                   [](const MachineRank &A, const MachineRank &B) {
                     return A.GeomeanSpeedup > B.GeomeanSpeedup;
                   });
  return Ranking;
}
