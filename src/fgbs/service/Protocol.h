//===- fgbs/service/Protocol.h - LDJSON request/response protocol *- C++ -*===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol of the query service: line-delimited JSON requests
/// in, line-delimited JSON responses out (tools/fgbs_query is a thin
/// stdin/stdout loop around this; tests drive it directly).
///
/// Requests (one JSON object per line, selected by "op"):
///
///   {"op": "info"}
///   {"op": "classify", "features": [f0, ..., f75]}
///   {"op": "predict",  "features": [...], "ref_seconds": s}
///   {"op": "rank", "queries": [{"features": [...], "ref_seconds": s}, ...]}
///
/// Every response is one JSON object with "ok": true plus op-specific
/// members, or {"ok": false, "error": "<category>", "message": "..."}.
/// Responses are written with sorted keys and shortest-round-trip
/// numbers, so a response stream is byte-deterministic for a given
/// snapshot — the CI golden-replay test relies on this.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_SERVICE_PROTOCOL_H
#define FGBS_SERVICE_PROTOCOL_H

#include "fgbs/obs/Json.h"
#include "fgbs/service/SelectionService.h"

#include <string>

namespace fgbs {
namespace service {

/// Stateless JSON dispatcher over one SelectionService.  Thread-safe for
/// concurrent callers (the service is immutable; a per-batch ThreadPool
/// is the only mutable state, guarded by it being caller-owned).
class QueryEngine {
public:
  /// \p Svc must outlive the engine.  \p Pool (optional, caller-owned)
  /// accelerates "rank" and batched requests; it must not be shared
  /// with concurrent handle() callers.
  explicit QueryEngine(const SelectionService &Svc, ThreadPool *Pool = nullptr)
      : Svc(Svc), Pool(Pool) {}

  /// Dispatches one parsed request object.
  obs::JsonValue handle(const obs::JsonValue &Request) const;

  /// Parses one request line and dispatches it; malformed JSON yields
  /// an error response, never a throw.  Returns one line WITHOUT the
  /// trailing newline.
  std::string handleLine(const std::string &Line) const;

private:
  const SelectionService &Svc;
  ThreadPool *Pool;
};

} // namespace service
} // namespace fgbs

#endif // FGBS_SERVICE_PROTOCOL_H
