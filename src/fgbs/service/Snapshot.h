//===- fgbs/service/Snapshot.h - fgbs.model.v1 model snapshots -*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Versioned, self-describing binary model snapshots (fgbs.model.v1).
///
/// The paper's workflow runs subsetting ONCE — profile, cluster, extract
/// representatives on the reference machine — and reuses the result across
/// many targets and users (section 3.4: "the benchmarks are portable, so
/// they can be extracted once for a benchmark suite and reused").  A
/// snapshot is that reusable artifact: everything the online
/// SelectionService needs to classify new codelets and predict their
/// target times without re-running the pipeline.
///
/// File layout (all integers little-endian):
///
///   [0..8)   magic "FGBSMDL1"
///   [8..12)  u32 version major (this writer: 1)
///   [12..16) u32 version minor (this writer: 0)
///   [16..24) u64 payload size in bytes
///   [24..28) u32 CRC-32 (IEEE) of the payload
///   [28.. )  payload (see Snapshot.cpp for the field-by-field order)
///
/// Compatibility policy: a reader rejects any major version it does not
/// know (UnsupportedVersion).  Minor versions are additive — a v1.N
/// reader accepts v1.M files for M > N by ignoring the trailing payload
/// bytes it does not understand, and rejects trailing garbage on files
/// of its own minor version (Malformed).
///
/// Loading performs strict validation: truncation, version skew, checksum
/// mismatches, NaN values and dimension mismatches all produce typed
/// errors — never undefined behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_SERVICE_SNAPSHOT_H
#define FGBS_SERVICE_SNAPSHOT_H

#include "fgbs/core/Pipeline.h"

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace fgbs {
namespace service {

/// Leading bytes of every snapshot file.
inline constexpr char kSnapshotMagic[8] = {'F', 'G', 'B', 'S',
                                           'M', 'D', 'L', '1'};
/// Format version this build writes.
inline constexpr std::uint32_t kSnapshotVersionMajor = 1;
inline constexpr std::uint32_t kSnapshotVersionMinor = 0;
/// Fixed header size preceding the payload.
inline constexpr std::size_t kSnapshotHeaderBytes = 28;

/// Per-target slice of the model: the representatives' standalone
/// measurements on one target machine (the only thing a user must run on
/// a candidate system).
struct SnapshotTarget {
  std::string MachineName;
  /// Median standalone seconds per invocation of each cluster's
  /// representative on this target (one entry per cluster).
  std::vector<double> RepresentativeSeconds;
};

/// Everything the query service needs, as plain data.
///
/// Dimensions: F features in the catalog (76), D GA/Table-2-selected
/// features (maskCount(Mask)), K clusters, N kept codelets, T targets.
struct ModelSnapshot {
  /// Provenance: which suite was reduced, on which reference machine.
  std::string SuiteName;
  std::string ReferenceName;

  /// The full feature catalog the mask indexes into (F names, fixed
  /// order) — lets a reader detect catalog skew before classifying.
  std::vector<std::string> FeatureNames;
  /// Which catalog features drive the clustering (F bools, D set).
  FeatureMask Mask;
  /// Per-selected-column normalization of the training table (D means /
  /// D standard deviations; std 0 marks a zero-variance column whose
  /// normalized value is defined as 0, matching normalizeFeatures()).
  NormalizationStats Norm;

  /// Cluster centroids in the normalized selected-feature space (K rows
  /// of D).
  std::vector<std::vector<double>> Centroids;
  /// Final cluster id per kept codelet (N values in [0, K)).
  std::vector<int> Assignment;
  /// Per cluster, the kept-codelet index of its representative (K).
  std::vector<std::uint32_t> Representatives;

  /// Kept codelet names (N), for reports and debugging.
  std::vector<std::string> CodeletNames;
  /// In-application reference seconds per invocation of every kept
  /// codelet (N); the representatives' entries anchor the speedup model.
  std::vector<double> ReferenceSeconds;

  /// Representative measurements per target (T).
  std::vector<SnapshotTarget> Targets;

  std::size_t numFeatures() const { return Mask.size(); }
  std::size_t numSelectedFeatures() const { return Norm.Mean.size(); }
  std::size_t numClusters() const { return Centroids.size(); }
  std::size_t numCodelets() const { return Assignment.size(); }
  std::size_t numTargets() const { return Targets.size(); }
};

/// Builds a snapshot from a finished pipeline run over \p Db.  \p R must
/// have at least one final cluster (Selection.FinalK > 0) — a suite whose
/// codelets are all ill-behaved has no representatives to serve.
ModelSnapshot buildSnapshot(const MeasurementDatabase &Db,
                            const PipelineResult &R);

/// Why a snapshot failed to load.
enum class SnapshotError {
  None,             ///< Loaded fine.
  Io,               ///< Could not open/read the file.
  Truncated,        ///< Fewer bytes than the header/payload announce.
  BadMagic,         ///< Not a snapshot file.
  UnsupportedVersion, ///< Major version this reader does not speak.
  ChecksumMismatch, ///< Payload bytes do not match the stored CRC-32.
  Malformed,        ///< Structural damage: dimension or range mismatch.
  InvalidValue,     ///< Non-finite number where a finite one is required.
};

/// Stable identifier for an error (error responses and tests key on it).
const char *snapshotErrorName(SnapshotError E);

/// Outcome of a load: either a validated snapshot or a typed error with
/// a human-readable message.
struct SnapshotLoadResult {
  std::optional<ModelSnapshot> Snapshot;
  SnapshotError Error = SnapshotError::None;
  std::string Message;

  explicit operator bool() const { return Snapshot.has_value(); }
};

/// Checks the internal consistency of \p S (the same checks loading
/// performs).  Returns SnapshotError::None and leaves \p Message alone
/// when valid.
SnapshotError validateSnapshot(const ModelSnapshot &S, std::string &Message);

/// Serializes \p S into the byte format described above.
std::string serializeSnapshot(const ModelSnapshot &S);

/// Parses and validates snapshot bytes.
SnapshotLoadResult parseSnapshot(std::string_view Bytes);

/// Stream/file wrappers around serialize/parse.
void saveSnapshot(std::ostream &OS, const ModelSnapshot &S);
bool saveSnapshotFile(const std::string &Path, const ModelSnapshot &S);
SnapshotLoadResult loadSnapshot(std::istream &IS);
SnapshotLoadResult loadSnapshotFile(const std::string &Path);

/// The content address of a serialized snapshot: SHA-256 over the whole
/// file image (header + payload), as 64 lowercase hex digits.  This is
/// the `<hex>` in a registry `model/<name>/sha/<hex>` key, and what a
/// consumer re-verifies after every pull — the header's CRC-32 catches
/// accidental damage, the digest pins identity.
std::string snapshotSha256Hex(std::string_view SnapshotBytes);

} // namespace service
} // namespace fgbs

#endif // FGBS_SERVICE_SNAPSHOT_H
