//===- fgbs/service/SelectionService.h - Online query engine ---*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The online system-selection query engine: answers classification and
/// prediction requests against a loaded model snapshot WITHOUT re-running
/// the pipeline — the serving half of the paper's "extract once, reuse
/// everywhere" workflow (section 3.4).
///
/// A query carries the full 76-entry feature vector of a new codelet
/// (and, for time prediction, its measured per-invocation seconds on the
/// reference machine).  The engine normalizes with the snapshot's stored
/// stats, projects onto the GA-selected feature subset, assigns the
/// nearest centroid, and extrapolates per-target times through the
/// cluster representative's speedup — exactly the arithmetic of
/// model/Prediction, so training codelets round-trip bit-compatibly.
///
/// Thread safety: a SelectionService is immutable after construction;
/// every method is const and safe to call from any number of reader
/// threads concurrently.  Batched entry points optionally spread work
/// over a caller-provided support/ThreadPool (results land in per-index
/// slots, so output is independent of the thread count).
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_SERVICE_SELECTIONSERVICE_H
#define FGBS_SERVICE_SELECTIONSERVICE_H

#include "fgbs/service/Snapshot.h"
#include "fgbs/support/ThreadPool.h"

#include <string>
#include <vector>

namespace fgbs {
namespace service {

/// One codelet to classify/predict: its full feature vector in catalog
/// order, plus (for time prediction) reference-machine seconds per
/// invocation.
struct QueryRequest {
  std::vector<double> Features;
  double ReferenceSeconds = 0.0;
};

/// Nearest-centroid cluster assignment of a query.
struct ClassifyResult {
  unsigned Cluster = 0;
  /// Euclidean distance to the winning centroid in normalized selected-
  /// feature space.
  double Distance = 0.0;
  /// Kept-codelet index and name of the cluster's representative.
  std::uint32_t Representative = 0;
  std::string RepresentativeName;
};

/// Per-target time prediction of a query.
struct PredictResult {
  ClassifyResult Classified;
  /// Predicted per-invocation seconds on each snapshot target (snapshot
  /// target order).
  std::vector<double> PredictedSeconds;
  /// Reference-vs-target speedup per target (ref seconds / predicted).
  std::vector<double> Speedups;
};

/// One row of a machine ranking.
struct MachineRank {
  std::string MachineName;
  /// Geometric-mean speedup vs. the reference over the ranked queries.
  double GeomeanSpeedup = 0.0;
};

/// The online query engine over one loaded model snapshot.
class SelectionService {
public:
  /// Takes ownership of \p Model.  The snapshot must be valid
  /// (validateSnapshot == None), which loadSnapshot guarantees.
  explicit SelectionService(ModelSnapshot Model);

  const ModelSnapshot &model() const { return S; }

  /// Normalizes a full catalog-order feature vector with the stored
  /// stats and projects it onto the selected subset (size D).  Matches
  /// normalizeFeatures(): zero-variance columns map to 0.
  std::vector<double> normalize(const std::vector<double> &Features) const;

  /// Assigns \p Features (size numFeatures()) to the nearest centroid.
  /// Ties break to the lowest cluster id.
  ClassifyResult classify(const std::vector<double> &Features) const;

  /// Classifies and extrapolates per-target times through the assigned
  /// cluster representative's speedup (Q.ReferenceSeconds must be a
  /// positive reference-machine measurement).
  PredictResult predictTimes(const QueryRequest &Q) const;

  /// Batched predictTimes.  With a pool, queries are evaluated in
  /// parallel; results are positionally stable either way.
  std::vector<PredictResult>
  predictBatch(const std::vector<QueryRequest> &Queries,
               ThreadPool *Pool = nullptr) const;

  /// Ranks the snapshot's targets by geometric-mean predicted speedup
  /// over \p Queries (best machine first; ties keep snapshot target
  /// order).  The paper's system-selection use case, served online.
  std::vector<MachineRank>
  rankMachines(const std::vector<QueryRequest> &Queries,
               ThreadPool *Pool = nullptr) const;

private:
  ModelSnapshot S;
  /// Catalog indices of the selected features (size D), precomputed
  /// from the mask so normalize() is a gather, not a scan.
  std::vector<std::size_t> Selected;
};

} // namespace service
} // namespace fgbs

#endif // FGBS_SERVICE_SELECTIONSERVICE_H
