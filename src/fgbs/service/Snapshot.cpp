//===- fgbs/service/Snapshot.cpp - fgbs.model.v1 model snapshots ----------===//
//
// Payload field order (after the 28-byte header; all integers
// little-endian, doubles as little-endian IEEE-754 bit patterns):
//
//   str   SuiteName
//   str   ReferenceName
//   u32 F, F x str      feature catalog names
//   F x u8              feature mask (0/1)
//   u32 D, D x f64      normalization means
//   D x f64             normalization standard deviations
//   u32 K, K x D x f64  cluster centroids (row-major)
//   u32 N, N x u32      cluster assignment per kept codelet
//   K x u32             representative kept-codelet index per cluster
//   N x str             kept codelet names
//   N x f64             reference seconds per kept codelet
//   u32 T, T x (str + K x f64)  per-target representative seconds
//
// where str = u32 byte length + bytes.  A v1.(M>0) writer appends new
// fields after these; this v1.0 reader skips such trailing payload
// bytes, but rejects them on files claiming minor version 0.
//
//===----------------------------------------------------------------------===//

#include "fgbs/service/Snapshot.h"

#include "fgbs/support/BinaryIo.h"
#include "fgbs/support/Crc32.h"
#include "fgbs/support/Sha256.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

using namespace fgbs;
using namespace fgbs::service;
using namespace fgbs::binio;

namespace {

using Reader = binio::ByteReader;

SnapshotLoadResult failed(SnapshotError E, std::string Message) {
  SnapshotLoadResult R;
  R.Error = E;
  R.Message = std::move(Message);
  return R;
}

bool allFinite(const std::vector<double> &V) {
  for (double X : V)
    if (!std::isfinite(X))
      return false;
  return true;
}

bool allPositive(const std::vector<double> &V) {
  for (double X : V)
    if (!(X > 0.0))
      return false;
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Building from a pipeline run
//===----------------------------------------------------------------------===//

ModelSnapshot service::buildSnapshot(const MeasurementDatabase &Db,
                                     const PipelineResult &R) {
  assert(R.Selection.FinalK > 0 &&
         "cannot snapshot a pipeline with no representatives");
  assert(R.Mask.size() == NumFeatures && "result predates the mask field");

  ModelSnapshot S;
  S.SuiteName = Db.suite().Name;
  S.ReferenceName = Db.reference().Name;

  const FeatureCatalog &Cat = FeatureCatalog::get();
  S.FeatureNames.reserve(Cat.size());
  for (std::size_t F = 0; F < Cat.size(); ++F)
    S.FeatureNames.push_back(Cat.info(F).Name);
  S.Mask = R.Mask;
  S.Norm = R.Norm;

  unsigned K = R.Selection.FinalK;
  std::vector<std::vector<std::size_t>> Members(K);
  for (std::size_t I = 0; I < R.Selection.Assignment.size(); ++I)
    Members[static_cast<std::size_t>(R.Selection.Assignment[I])].push_back(I);
  S.Centroids.reserve(K);
  for (const std::vector<std::size_t> &M : Members)
    S.Centroids.push_back(centroidOf(R.Points, M));

  S.Assignment = R.Selection.Assignment;
  S.Representatives.reserve(K);
  for (std::size_t Rep : R.Selection.Representatives)
    S.Representatives.push_back(static_cast<std::uint32_t>(Rep));

  S.CodeletNames.reserve(R.Kept.size());
  S.ReferenceSeconds.reserve(R.Kept.size());
  for (std::size_t Index : R.Kept) {
    S.CodeletNames.push_back(Db.codelet(Index).Name);
    S.ReferenceSeconds.push_back(Db.profile(Index).InApp.MeasuredSeconds);
  }

  for (std::size_t T = 0; T < Db.targets().size(); ++T) {
    SnapshotTarget Target;
    Target.MachineName = Db.targets()[T].Name;
    Target.RepresentativeSeconds.reserve(K);
    for (std::size_t Rep : R.Selection.Representatives)
      Target.RepresentativeSeconds.push_back(
          Db.standaloneTarget(R.Kept[Rep], T).MedianSeconds);
    S.Targets.push_back(std::move(Target));
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Validation
//===----------------------------------------------------------------------===//

const char *service::snapshotErrorName(SnapshotError E) {
  switch (E) {
  case SnapshotError::None:
    return "none";
  case SnapshotError::Io:
    return "io";
  case SnapshotError::Truncated:
    return "truncated";
  case SnapshotError::BadMagic:
    return "bad_magic";
  case SnapshotError::UnsupportedVersion:
    return "unsupported_version";
  case SnapshotError::ChecksumMismatch:
    return "checksum_mismatch";
  case SnapshotError::Malformed:
    return "malformed";
  case SnapshotError::InvalidValue:
    return "invalid_value";
  }
  return "unknown";
}

SnapshotError service::validateSnapshot(const ModelSnapshot &S,
                                        std::string &Message) {
  std::size_t F = S.FeatureNames.size();
  std::size_t K = S.Centroids.size();
  std::size_t N = S.Assignment.size();

  if (F == 0 || K == 0 || N == 0) {
    Message = "empty feature catalog, clustering, or codelet list";
    return SnapshotError::Malformed;
  }
  if (S.Mask.size() != F) {
    Message = "feature mask does not cover the catalog";
    return SnapshotError::Malformed;
  }
  std::size_t D = maskCount(S.Mask);
  if (D == 0) {
    Message = "feature mask selects nothing";
    return SnapshotError::Malformed;
  }
  if (S.Norm.Mean.size() != D || S.Norm.Std.size() != D) {
    Message = "normalization stats do not match the selected feature count";
    return SnapshotError::Malformed;
  }
  if (!allFinite(S.Norm.Mean) || !allFinite(S.Norm.Std)) {
    Message = "non-finite normalization statistic";
    return SnapshotError::InvalidValue;
  }
  for (double Std : S.Norm.Std)
    if (Std < 0.0) {
      Message = "negative normalization standard deviation";
      return SnapshotError::InvalidValue;
    }
  for (const std::vector<double> &C : S.Centroids) {
    if (C.size() != D) {
      Message = "centroid dimension does not match the selected features";
      return SnapshotError::Malformed;
    }
    if (!allFinite(C)) {
      Message = "non-finite centroid coordinate";
      return SnapshotError::InvalidValue;
    }
  }
  if (K > N) {
    Message = "more clusters than codelets";
    return SnapshotError::Malformed;
  }
  for (int A : S.Assignment)
    if (A < 0 || static_cast<std::size_t>(A) >= K) {
      Message = "cluster assignment out of range";
      return SnapshotError::Malformed;
    }
  if (S.Representatives.size() != K) {
    Message = "one representative per cluster required";
    return SnapshotError::Malformed;
  }
  for (std::size_t Cl = 0; Cl < K; ++Cl) {
    std::uint32_t Rep = S.Representatives[Cl];
    if (Rep >= N) {
      Message = "representative index out of range";
      return SnapshotError::Malformed;
    }
    if (S.Assignment[Rep] != static_cast<int>(Cl)) {
      Message = "representative is not a member of its cluster";
      return SnapshotError::Malformed;
    }
  }
  if (S.CodeletNames.size() != N || S.ReferenceSeconds.size() != N) {
    Message = "per-codelet vectors do not match the assignment length";
    return SnapshotError::Malformed;
  }
  if (!allFinite(S.ReferenceSeconds)) {
    Message = "non-finite reference time";
    return SnapshotError::InvalidValue;
  }
  if (!allPositive(S.ReferenceSeconds)) {
    Message = "non-positive reference time";
    return SnapshotError::InvalidValue;
  }
  for (const SnapshotTarget &T : S.Targets) {
    if (T.RepresentativeSeconds.size() != K) {
      Message = "target '" + T.MachineName +
                "' does not carry one measurement per cluster";
      return SnapshotError::Malformed;
    }
    if (!allFinite(T.RepresentativeSeconds) ||
        !allPositive(T.RepresentativeSeconds)) {
      Message = "invalid representative time on target '" + T.MachineName +
                "'";
      return SnapshotError::InvalidValue;
    }
  }
  return SnapshotError::None;
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

std::string service::serializeSnapshot(const ModelSnapshot &S) {
  std::string Payload;
  putStr(Payload, S.SuiteName);
  putStr(Payload, S.ReferenceName);

  putU32(Payload, static_cast<std::uint32_t>(S.FeatureNames.size()));
  for (const std::string &Name : S.FeatureNames)
    putStr(Payload, Name);
  for (bool Bit : S.Mask)
    Payload.push_back(Bit ? 1 : 0);

  putU32(Payload, static_cast<std::uint32_t>(S.Norm.Mean.size()));
  for (double V : S.Norm.Mean)
    putF64(Payload, V);
  for (double V : S.Norm.Std)
    putF64(Payload, V);

  putU32(Payload, static_cast<std::uint32_t>(S.Centroids.size()));
  for (const std::vector<double> &C : S.Centroids)
    for (double V : C)
      putF64(Payload, V);

  putU32(Payload, static_cast<std::uint32_t>(S.Assignment.size()));
  for (int A : S.Assignment)
    putU32(Payload, static_cast<std::uint32_t>(A));
  for (std::uint32_t Rep : S.Representatives)
    putU32(Payload, Rep);
  for (const std::string &Name : S.CodeletNames)
    putStr(Payload, Name);
  for (double V : S.ReferenceSeconds)
    putF64(Payload, V);

  putU32(Payload, static_cast<std::uint32_t>(S.Targets.size()));
  for (const SnapshotTarget &T : S.Targets) {
    putStr(Payload, T.MachineName);
    for (double V : T.RepresentativeSeconds)
      putF64(Payload, V);
  }

  std::string Out;
  Out.reserve(kSnapshotHeaderBytes + Payload.size());
  Out.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  putU32(Out, kSnapshotVersionMajor);
  putU32(Out, kSnapshotVersionMinor);
  putU64(Out, Payload.size());
  putU32(Out, crc32(Payload));
  Out.append(Payload);
  return Out;
}

SnapshotLoadResult service::parseSnapshot(std::string_view Bytes) {
  if (Bytes.size() >= sizeof(kSnapshotMagic) &&
      std::memcmp(Bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0)
    return failed(SnapshotError::BadMagic, "not an fgbs.model snapshot");
  if (Bytes.size() < kSnapshotHeaderBytes)
    return failed(SnapshotError::Truncated,
                  "file shorter than the snapshot header");

  Reader Header(Bytes.substr(sizeof(kSnapshotMagic),
                             kSnapshotHeaderBytes - sizeof(kSnapshotMagic)));
  std::uint32_t Major = Header.u32();
  std::uint32_t Minor = Header.u32();
  std::uint64_t PayloadSize = Header.u64();
  std::uint32_t Crc = Header.u32();

  if (Major != kSnapshotVersionMajor)
    return failed(SnapshotError::UnsupportedVersion,
                  "snapshot major version " + std::to_string(Major) +
                      " (this reader speaks " +
                      std::to_string(kSnapshotVersionMajor) + ")");

  std::string_view Payload = Bytes.substr(kSnapshotHeaderBytes);
  if (Payload.size() < PayloadSize)
    return failed(SnapshotError::Truncated,
                  "payload shorter than the header announces");
  if (Payload.size() > PayloadSize)
    return failed(SnapshotError::Malformed,
                  "trailing bytes after the announced payload");
  if (crc32(Payload) != Crc)
    return failed(SnapshotError::ChecksumMismatch,
                  "payload bytes do not match the stored CRC-32");

  Reader In(Payload);
  ModelSnapshot S;
  S.SuiteName = In.str();
  S.ReferenceName = In.str();

  std::uint32_t F = In.u32();
  if (In.overrun() || F > In.remaining())
    return failed(SnapshotError::Malformed, "damaged feature catalog");
  S.FeatureNames.reserve(F);
  for (std::uint32_t I = 0; I < F && !In.overrun(); ++I)
    S.FeatureNames.push_back(In.str());

  if (!In.overrun() && F <= In.remaining()) {
    S.Mask.reserve(F);
    for (std::uint32_t I = 0; I < F; ++I) {
      std::uint8_t Bit = In.u8();
      if (Bit > 1)
        return failed(SnapshotError::Malformed,
                      "feature mask byte is neither 0 nor 1");
      S.Mask.push_back(Bit != 0);
    }
  } else {
    return failed(SnapshotError::Malformed, "damaged feature mask");
  }

  std::uint32_t D = In.u32();
  S.Norm.Mean = In.f64Vector(D);
  S.Norm.Std = In.f64Vector(D);

  std::uint32_t K = In.u32();
  if (In.overrun() ||
      static_cast<std::uint64_t>(K) * D > In.remaining() / 8)
    return failed(SnapshotError::Malformed, "damaged centroid block");
  S.Centroids.reserve(K);
  for (std::uint32_t I = 0; I < K && !In.overrun(); ++I)
    S.Centroids.push_back(In.f64Vector(D));

  std::uint32_t N = In.u32();
  if (In.overrun() || N > In.remaining() / 4)
    return failed(SnapshotError::Malformed, "damaged assignment block");
  S.Assignment.reserve(N);
  for (std::uint32_t I = 0; I < N; ++I)
    S.Assignment.push_back(static_cast<int>(In.u32()));
  S.Representatives.reserve(K);
  for (std::uint32_t I = 0; I < K; ++I)
    S.Representatives.push_back(In.u32());
  if (In.overrun())
    return failed(SnapshotError::Malformed, "damaged representative block");
  S.CodeletNames.reserve(N);
  for (std::uint32_t I = 0; I < N && !In.overrun(); ++I)
    S.CodeletNames.push_back(In.str());
  S.ReferenceSeconds = In.f64Vector(N);

  std::uint32_t T = In.u32();
  if (In.overrun() || T > In.remaining())
    return failed(SnapshotError::Malformed, "damaged target block");
  S.Targets.reserve(T);
  for (std::uint32_t I = 0; I < T && !In.overrun(); ++I) {
    SnapshotTarget Target;
    Target.MachineName = In.str();
    Target.RepresentativeSeconds = In.f64Vector(K);
    S.Targets.push_back(std::move(Target));
  }
  if (In.overrun())
    return failed(SnapshotError::Malformed,
                  "payload ends inside a snapshot field");

  // Minor-version forward compatibility: a newer writer appends fields
  // we skip; a file of our own minor version must end exactly here.
  if (Minor <= kSnapshotVersionMinor && !In.atEnd())
    return failed(SnapshotError::Malformed,
                  "trailing garbage after the last snapshot field");

  std::string Message;
  SnapshotError E = validateSnapshot(S, Message);
  if (E != SnapshotError::None)
    return failed(E, Message);

  SnapshotLoadResult R;
  R.Snapshot = std::move(S);
  return R;
}

void service::saveSnapshot(std::ostream &OS, const ModelSnapshot &S) {
  std::string Bytes = serializeSnapshot(S);
  OS.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
}

bool service::saveSnapshotFile(const std::string &Path,
                               const ModelSnapshot &S) {
  std::ofstream OS(Path, std::ios::binary | std::ios::trunc);
  if (!OS)
    return false;
  saveSnapshot(OS, S);
  OS.flush();
  return static_cast<bool>(OS);
}

SnapshotLoadResult service::loadSnapshot(std::istream &IS) {
  std::ostringstream Buffer;
  Buffer << IS.rdbuf();
  if (IS.bad())
    return failed(SnapshotError::Io, "read failure");
  return parseSnapshot(Buffer.str());
}

SnapshotLoadResult service::loadSnapshotFile(const std::string &Path) {
  std::ifstream IS(Path, std::ios::binary);
  if (!IS)
    return failed(SnapshotError::Io, "cannot open '" + Path + "'");
  return loadSnapshot(IS);
}

std::string service::snapshotSha256Hex(std::string_view SnapshotBytes) {
  return sha256Hex(SnapshotBytes);
}
