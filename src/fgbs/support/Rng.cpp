//===- fgbs/support/Rng.cpp - Deterministic random numbers ---------------===//

#include "fgbs/support/Rng.h"

#include <cmath>

using namespace fgbs;

std::uint64_t fgbs::splitMix64(std::uint64_t &State) {
  State += 0x9E3779B97F4A7C15ULL;
  std::uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
  return Z ^ (Z >> 31);
}

std::uint64_t fgbs::hashU64(std::uint64_t Value) {
  std::uint64_t State = Value;
  return splitMix64(State);
}

std::uint64_t fgbs::hashCombine(std::uint64_t A, std::uint64_t B) {
  return hashU64(A ^ (B + 0x9E3779B97F4A7C15ULL + (A << 6) + (A >> 2)));
}

std::uint64_t fgbs::hashString(const char *Str) {
  assert(Str && "hashString requires a non-null string");
  std::uint64_t Hash = 0xCBF29CE484222325ULL;
  for (const char *P = Str; *P; ++P) {
    Hash ^= static_cast<std::uint64_t>(static_cast<unsigned char>(*P));
    Hash *= 0x100000001B3ULL;
  }
  return hashU64(Hash);
}

static std::uint64_t rotl(std::uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

Rng::Rng(std::uint64_t Seed) {
  std::uint64_t Sm = Seed;
  for (std::uint64_t &Word : State)
    Word = splitMix64(Sm);
}

std::uint64_t Rng::nextU64() {
  std::uint64_t Result = rotl(State[1] * 5, 7) * 9;
  std::uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

double Rng::uniform() {
  // 53 high bits give a uniform double in [0, 1).
  return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

double Rng::uniformIn(double Lo, double Hi) {
  assert(Lo <= Hi && "empty interval");
  return Lo + (Hi - Lo) * uniform();
}

std::uint64_t Rng::below(std::uint64_t Bound) {
  assert(Bound > 0 && "below() requires a positive bound");
  // Rejection sampling to avoid modulo bias.
  std::uint64_t Threshold = (0ULL - Bound) % Bound;
  for (;;) {
    std::uint64_t Value = nextU64();
    if (Value >= Threshold)
      return Value % Bound;
  }
}

bool Rng::bernoulli(double P) {
  if (P <= 0.0)
    return false;
  if (P >= 1.0)
    return true;
  return uniform() < P;
}

double Rng::normal() {
  if (HasCachedNormal) {
    HasCachedNormal = false;
    return CachedNormal;
  }
  // Box-Muller transform; U1 in (0, 1] to keep the log finite.
  double U1 = 1.0 - uniform();
  double U2 = uniform();
  double Radius = std::sqrt(-2.0 * std::log(U1));
  double Angle = 2.0 * M_PI * U2;
  CachedNormal = Radius * std::sin(Angle);
  HasCachedNormal = true;
  return Radius * std::cos(Angle);
}

double Rng::normal(double Mean, double Sigma) {
  assert(Sigma >= 0.0 && "negative standard deviation");
  return Mean + Sigma * normal();
}

std::vector<std::size_t> Rng::sampleWithoutReplacement(std::size_t Bound,
                                                       std::size_t Count) {
  assert(Count <= Bound && "cannot sample more values than exist");
  std::vector<std::size_t> All(Bound);
  for (std::size_t I = 0; I < Bound; ++I)
    All[I] = I;
  shuffle(All);
  All.resize(Count);
  return All;
}
