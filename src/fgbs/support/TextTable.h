//===- fgbs/support/TextTable.h - Console table printer --------*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small aligned-column table printer used by the bench binaries to emit
/// the paper's tables in a readable form, and a CSV writer for downstream
/// plotting.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_SUPPORT_TEXTTABLE_H
#define FGBS_SUPPORT_TEXTTABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace fgbs {

/// Accumulates rows of strings and prints them with aligned columns.
class TextTable {
public:
  /// Sets the header row.
  void setHeader(std::vector<std::string> Names);

  /// Appends a data row.  Rows may have differing widths; missing cells
  /// print as empty.
  void addRow(std::vector<std::string> Cells);

  /// Appends a horizontal separator line.
  void addSeparator();

  /// Prints the table to \p OS.
  void print(std::ostream &OS) const;

  /// Writes the table as CSV to \p OS (no separator rows, header first).
  void printCsv(std::ostream &OS) const;

  std::size_t numRows() const { return Body.size(); }

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Body;
  std::vector<bool> IsSeparator;
};

/// Formats \p Value with \p Digits digits after the decimal point.
std::string formatDouble(double Value, int Digits);

/// Formats \p Value as a percentage string, e.g. "3.9%".
std::string formatPercent(double Value, int Digits = 1);

/// Formats a speedup / factor, e.g. "x44.3".
std::string formatFactor(double Value, int Digits = 1);

} // namespace fgbs

#endif // FGBS_SUPPORT_TEXTTABLE_H
