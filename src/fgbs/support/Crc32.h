//===- fgbs/support/Crc32.h - CRC-32 checksums -----------------*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The standard CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) used
/// to checksum model-snapshot payloads.  Table-driven, incremental: feed
/// chunks through crc32Update() starting from crc32Init().
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_SUPPORT_CRC32_H
#define FGBS_SUPPORT_CRC32_H

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace fgbs {

/// Initial running value for an incremental CRC-32.
inline constexpr std::uint32_t crc32Init() { return 0xffffffffu; }

/// Folds \p Size bytes at \p Data into the running value \p Crc.
std::uint32_t crc32Update(std::uint32_t Crc, const void *Data,
                          std::size_t Size);

/// Finalizes a running value into the checksum.
inline constexpr std::uint32_t crc32Final(std::uint32_t Crc) {
  return Crc ^ 0xffffffffu;
}

/// One-shot checksum of a byte range.
inline std::uint32_t crc32(std::string_view Bytes) {
  return crc32Final(crc32Update(crc32Init(), Bytes.data(), Bytes.size()));
}

} // namespace fgbs

#endif // FGBS_SUPPORT_CRC32_H
