//===- fgbs/support/FileLock.cpp - Cross-process advisory lock ------------===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "fgbs/support/FileLock.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <signal.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace fgbs;

namespace {

std::uint64_t steadyMs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::int64_t wallMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// Reads the owner pid out of a sentinel lock file ("pid N\n").
/// Returns -1 when the content is missing or not of that shape.
long readOwnerPid(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "r");
  if (!F)
    return -1;
  long Pid = -1;
  if (std::fscanf(F, "pid %ld", &Pid) != 1)
    Pid = -1;
  std::fclose(F);
  return Pid > 0 ? Pid : -1;
}

} // namespace

FileLock::FileLock(std::string Path) : LockPath(std::move(Path)) {}

FileLock::~FileLock() { release(); }

void FileLock::writeOwner() {
  if (Fd < 0)
    return;
  char Buf[32];
  int Len = std::snprintf(Buf, sizeof(Buf), "pid %ld\n",
                          static_cast<long>(::getpid()));
  if (::ftruncate(Fd, 0) == 0 && ::lseek(Fd, 0, SEEK_SET) == 0) {
    ssize_t Ignored = ::write(Fd, Buf, static_cast<std::size_t>(Len));
    (void)Ignored; // The pid is diagnostic; the lock works without it.
  }
}

bool FileLock::isStale(const Options &O) const {
  struct stat St;
  if (::stat(LockPath.c_str(), &St) != 0)
    return false; // Vanished; the next create attempt settles it.
  long Pid = readOwnerPid(LockPath);
  if (Pid > 0) {
    if (Pid == static_cast<long>(::getpid()))
      return false; // Another thread of this process holds it.
    if (::kill(static_cast<pid_t>(Pid), 0) == 0 || errno == EPERM)
      return false; // Owner is alive.
    return true;    // ESRCH: the owner died without releasing.
  }
  // Owner unknown (empty or damaged content, e.g. a writer that died
  // between create and write): abandoned once the heartbeat lapses.
  std::int64_t MtimeMs = static_cast<std::int64_t>(St.st_mtim.tv_sec) * 1000 +
                         St.st_mtim.tv_nsec / 1000000;
  return wallMs() - MtimeMs > static_cast<std::int64_t>(O.StaleAfterMs);
}

bool FileLock::tryAcquireOnce(const Options &O, bool &BrokeStale,
                              std::string &Error) {
  if (Held)
    return true;
  if (LockPath.empty()) {
    Held = true; // No-op lock: the backend needs no coordination.
    return true;
  }

  if (O.LockMode != Mode::Exclusive) {
    int NewFd = ::open(LockPath.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (NewFd >= 0) {
      if (::flock(NewFd, LOCK_EX | LOCK_NB) == 0) {
        Fd = NewFd;
        Held = true;
        Sentinel = false;
        writeOwner();
        return true;
      }
      int E = errno;
      ::close(NewFd);
      if (E == EWOULDBLOCK || E == EAGAIN || E == EINTR)
        return false; // Held elsewhere; poll again later.
      if (O.LockMode == Mode::Flock) {
        Error = "flock('" + LockPath + "'): " + std::strerror(E);
        return false;
      }
      // flock unsupported here (ENOLCK/ENOTSUP/...): sentinel fallback.
    } else if (O.LockMode == Mode::Flock) {
      Error = "open('" + LockPath + "'): " + std::strerror(errno);
      return false;
    }
  }

  // O_EXCL sentinel protocol: existence is the lock.  At most one stale
  // break per attempt; racing breakers are fine (one re-create wins).
  for (int Attempt = 0; Attempt < 2; ++Attempt) {
    int NewFd =
        ::open(LockPath.c_str(), O_CREAT | O_EXCL | O_WRONLY | O_CLOEXEC, 0644);
    if (NewFd >= 0) {
      Fd = NewFd;
      Held = true;
      Sentinel = true;
      writeOwner();
      return true;
    }
    if (errno != EEXIST) {
      Error = "open('" + LockPath + "'): " + std::strerror(errno);
      return false;
    }
    if (Attempt == 0 && isStale(O)) {
      ::unlink(LockPath.c_str());
      BrokeStale = true;
      continue;
    }
    return false;
  }
  return false;
}

bool FileLock::tryAcquire(const Options &O) {
  bool BrokeStale = false;
  std::string Error;
  return tryAcquireOnce(O, BrokeStale, Error);
}

bool FileLock::tryAcquire() { return tryAcquire(Options()); }

FileLock::AcquireResult FileLock::acquire() { return acquire(Options()); }

FileLock::AcquireResult FileLock::acquire(const Options &O) {
  AcquireResult R;
  const std::uint64_t Start = steadyMs();
  std::uint64_t Backoff = O.InitialBackoffMs ? O.InitialBackoffMs : 1;
  for (;;) {
    bool BrokeStale = false;
    std::string Error;
    bool Ok = tryAcquireOnce(O, BrokeStale, Error);
    R.BrokeStaleLock = R.BrokeStaleLock || BrokeStale;
    R.WaitedMs = steadyMs() - Start;
    if (Ok) {
      R.St = Status::Acquired;
      return R;
    }
    if (!Error.empty()) {
      R.St = Status::Error;
      R.Message = std::move(Error);
      return R;
    }
    if (R.WaitedMs >= O.TimeoutMs) {
      R.St = Status::Timeout;
      R.Message = "lock '" + LockPath + "' still held after " +
                  std::to_string(R.WaitedMs) + " ms";
      return R;
    }
    std::uint64_t SleepMs = std::min(Backoff, O.TimeoutMs - R.WaitedMs);
    std::this_thread::sleep_for(std::chrono::milliseconds(SleepMs));
    Backoff = std::min(Backoff * 2, O.MaxBackoffMs ? O.MaxBackoffMs : 1);
  }
}

void FileLock::heartbeat() {
  if (Held && Fd >= 0)
    ::futimens(Fd, nullptr);
}

void FileLock::release() {
  if (!Held)
    return;
  // Sentinel: unlink IS the release.  flock: leave the file — unlinking
  // would let a fresh opener lock a new inode concurrently with a
  // waiter that still polls the old one.
  if (Sentinel)
    ::unlink(LockPath.c_str());
  if (Fd >= 0)
    ::close(Fd);
  Fd = -1;
  Held = false;
  Sentinel = false;
}
