//===- fgbs/support/ThreadPool.h - Worker-thread pool ----------*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small persistent worker-thread pool with a blocking parallel-for.
/// Used by the GA engine to evaluate a generation's fitness in parallel;
/// any other embarrassingly parallel hot path can reuse it.
///
/// Determinism contract: parallelFor() only schedules which thread runs
/// which index — callers that write results into per-index slots get
/// output independent of the thread count.  A pool of one thread runs
/// everything inline on the caller, byte-for-byte identical to a plain
/// loop.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_SUPPORT_THREADPOOL_H
#define FGBS_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fgbs {

/// Persistent pool of worker threads executing index-range jobs.
class ThreadPool {
public:
  /// Creates a pool that runs jobs on \p ThreadCount threads in total
  /// (the caller of parallelFor() participates, so ThreadCount - 1
  /// workers are spawned).  ThreadCount <= 1 spawns nothing and runs
  /// jobs inline.
  explicit ThreadPool(unsigned ThreadCount);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Total threads working on a job, including the caller.
  unsigned threadCount() const {
    return static_cast<unsigned>(Workers.size()) + 1;
  }

  /// Runs Fn(Index) for every Index in [Begin, End), distributing
  /// indices dynamically over the pool, and blocks until all are done.
  /// The first exception thrown by Fn (if any) is rethrown on the
  /// caller after the job drains.  Not reentrant.
  void parallelFor(std::size_t Begin, std::size_t End,
                   const std::function<void(std::size_t)> &Fn);

  /// The thread count used when a component's knob is 0 ("auto"): the
  /// FGBS_THREADS environment variable if set to a positive integer,
  /// otherwise std::thread::hardware_concurrency() (at least 1).
  static unsigned defaultThreadCount();

private:
  void workerLoop();
  void consume(const std::function<void(std::size_t)> &Fn);
  void recordError(std::exception_ptr Error);

  std::vector<std::thread> Workers;
  std::mutex Mutex;
  std::condition_variable WorkCv;
  std::condition_variable DoneCv;
  const std::function<void(std::size_t)> *JobFn = nullptr;
  std::atomic<std::size_t> NextIndex{0};
  std::size_t JobEnd = 0;
  std::size_t JobTicket = 0; ///< Bumped per job so workers never rerun one.
  unsigned Working = 0;      ///< Workers not yet checked in for this job.
  bool Stopping = false;
  std::exception_ptr FirstError;
};

} // namespace fgbs

#endif // FGBS_SUPPORT_THREADPOOL_H
