//===- fgbs/support/Rng.h - Deterministic random numbers -------*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic pseudo-random number generation used across the project.
///
/// All stochastic components (genetic algorithm, measurement-noise model,
/// random clusterings of Figure 7) draw from explicitly seeded generators so
/// every experiment is exactly reproducible run to run.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_SUPPORT_RNG_H
#define FGBS_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace fgbs {

/// Mixes a 64-bit value into a well-distributed 64-bit value (SplitMix64
/// finalizer).  Used both for seeding and for stateless hashing of
/// experiment identifiers into noise seeds.
std::uint64_t splitMix64(std::uint64_t &State);

/// Stateless variant: hash \p Value through one SplitMix64 step.
std::uint64_t hashU64(std::uint64_t Value);

/// Combines two 64-bit values into one hash (order sensitive).
std::uint64_t hashCombine(std::uint64_t A, std::uint64_t B);

/// Hashes a string into a 64-bit seed (FNV-1a followed by SplitMix64).
std::uint64_t hashString(const char *Str);

/// xoshiro256** generator: fast, high-quality, 256-bit state.
///
/// This is the single RNG implementation used throughout FGBS.  It is
/// seeded from a 64-bit value expanded through SplitMix64, per the
/// reference implementation guidance.
class Rng {
public:
  explicit Rng(std::uint64_t Seed);

  /// Returns the next raw 64-bit output.
  std::uint64_t nextU64();

  /// Returns a double uniformly distributed in [0, 1).
  double uniform();

  /// Returns a double uniformly distributed in [\p Lo, \p Hi).
  double uniformIn(double Lo, double Hi);

  /// Returns an integer uniformly distributed in [0, \p Bound).
  /// \p Bound must be positive.
  std::uint64_t below(std::uint64_t Bound);

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool bernoulli(double P);

  /// Returns a sample from the standard normal distribution
  /// (Box-Muller; one value cached).
  double normal();

  /// Returns a sample from N(\p Mean, \p Sigma^2).
  double normal(double Mean, double Sigma);

  /// Fisher-Yates shuffle of \p Values.
  template <typename T> void shuffle(std::vector<T> &Values) {
    if (Values.size() < 2)
      return;
    for (std::size_t I = Values.size() - 1; I > 0; --I) {
      std::size_t J = static_cast<std::size_t>(below(I + 1));
      std::swap(Values[I], Values[J]);
    }
  }

  /// Draws \p Count distinct indices in [0, \p Bound), in random order.
  std::vector<std::size_t> sampleWithoutReplacement(std::size_t Bound,
                                                    std::size_t Count);

private:
  std::uint64_t State[4];
  bool HasCachedNormal = false;
  double CachedNormal = 0.0;
};

} // namespace fgbs

#endif // FGBS_SUPPORT_RNG_H
