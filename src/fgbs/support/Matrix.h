//===- fgbs/support/Matrix.h - Dense row-major matrix ----------*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small dense row-major matrix of doubles.  Used for the prediction
/// model's N x K extrapolation matrix M (paper section 3.5) and for the
/// feature matrices handed to the clustering code.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_SUPPORT_MATRIX_H
#define FGBS_SUPPORT_MATRIX_H

#include <cassert>
#include <cstddef>
#include <vector>

namespace fgbs {

/// Dense row-major matrix of doubles.
class Matrix {
public:
  Matrix() = default;

  /// Creates a \p NumRows x \p NumCols matrix filled with \p Fill.
  Matrix(std::size_t NumRows, std::size_t NumCols, double Fill = 0.0)
      : Rows(NumRows), Cols(NumCols), Data(NumRows * NumCols, Fill) {}

  std::size_t rows() const { return Rows; }
  std::size_t cols() const { return Cols; }
  bool empty() const { return Data.empty(); }

  double &at(std::size_t Row, std::size_t Col) {
    assert(Row < Rows && Col < Cols && "matrix index out of range");
    return Data[Row * Cols + Col];
  }

  double at(std::size_t Row, std::size_t Col) const {
    assert(Row < Rows && Col < Cols && "matrix index out of range");
    return Data[Row * Cols + Col];
  }

  /// Copies row \p Row into a vector.
  std::vector<double> row(std::size_t Row) const;

  /// Copies column \p Col into a vector.
  std::vector<double> column(std::size_t Col) const;

  /// Overwrites row \p Row with \p Values (must have cols() entries).
  void setRow(std::size_t Row, const std::vector<double> &Values);

  /// Matrix-vector product; \p Vec must have cols() entries.
  std::vector<double> multiply(const std::vector<double> &Vec) const;

private:
  std::size_t Rows = 0;
  std::size_t Cols = 0;
  std::vector<double> Data;
};

/// Euclidean distance between two equal-length vectors.
double euclideanDistance(const std::vector<double> &A,
                         const std::vector<double> &B);

/// Squared Euclidean distance between two equal-length vectors.
double squaredDistance(const std::vector<double> &A,
                       const std::vector<double> &B);

} // namespace fgbs

#endif // FGBS_SUPPORT_MATRIX_H
