//===- fgbs/support/BinaryIo.h - Little-endian binary encoding -*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Little-endian primitive encoding shared by every versioned binary
/// format in the tree (fgbs.model.v1 snapshots, fgbs.meas.v1 measurement
/// caches): appenders onto a std::string payload and a bounds-checked
/// decoder over a byte view.
///
/// ByteReader follows the "check once per structural unit" discipline:
/// every read either succeeds or sets the overrun flag and returns a
/// zero value, so parsers validate with one overrun() call per block
/// instead of one per field.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_SUPPORT_BINARYIO_H
#define FGBS_SUPPORT_BINARYIO_H

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fgbs {
namespace binio {

inline void putU32(std::string &Out, std::uint32_t V) {
  for (int Shift = 0; Shift < 32; Shift += 8)
    Out.push_back(static_cast<char>((V >> Shift) & 0xffu));
}

inline void putU64(std::string &Out, std::uint64_t V) {
  for (int Shift = 0; Shift < 64; Shift += 8)
    Out.push_back(static_cast<char>((V >> Shift) & 0xffu));
}

inline void putF64(std::string &Out, double V) {
  putU64(Out, std::bit_cast<std::uint64_t>(V));
}

inline void putStr(std::string &Out, const std::string &S) {
  putU32(Out, static_cast<std::uint32_t>(S.size()));
  Out.append(S);
}

/// Bounds-checked little-endian decoder over a byte range.
class ByteReader {
public:
  explicit ByteReader(std::string_view Bytes) : Bytes(Bytes) {}

  bool overrun() const { return Overrun; }
  bool atEnd() const { return Cursor == Bytes.size(); }
  std::size_t remaining() const { return Bytes.size() - Cursor; }

  std::uint8_t u8() {
    if (!take(1))
      return 0;
    return static_cast<std::uint8_t>(Bytes[Cursor - 1]);
  }

  std::uint32_t u32() {
    if (!take(4))
      return 0;
    std::uint32_t V = 0;
    for (int B = 0; B < 4; ++B)
      V |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(Bytes[Cursor - 4 + B]))
           << (8 * B);
    return V;
  }

  std::uint64_t u64() {
    if (!take(8))
      return 0;
    std::uint64_t V = 0;
    for (int B = 0; B < 8; ++B)
      V |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(Bytes[Cursor - 8 + B]))
           << (8 * B);
    return V;
  }

  double f64() { return std::bit_cast<double>(u64()); }

  std::string str() {
    std::uint32_t Len = u32();
    if (!take(Len))
      return {};
    return std::string(Bytes.substr(Cursor - Len, Len));
  }

  /// Reads \p Count doubles.  The remaining-bytes guard rejects absurd
  /// counts before anything is allocated.
  std::vector<double> f64Vector(std::size_t Count) {
    if (Count > remaining() / 8) {
      Overrun = true;
      return {};
    }
    std::vector<double> V(Count);
    for (double &X : V)
      X = f64();
    return V;
  }

private:
  bool take(std::size_t N) {
    if (Overrun || N > remaining()) {
      Overrun = true;
      return false;
    }
    Cursor += N;
    return true;
  }

  std::string_view Bytes;
  std::size_t Cursor = 0;
  bool Overrun = false;
};

} // namespace binio
} // namespace fgbs

#endif // FGBS_SUPPORT_BINARYIO_H
