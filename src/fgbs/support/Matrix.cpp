//===- fgbs/support/Matrix.cpp - Dense row-major matrix ------------------===//

#include "fgbs/support/Matrix.h"

#include <cmath>

using namespace fgbs;

std::vector<double> Matrix::row(std::size_t Row) const {
  assert(Row < Rows && "row index out of range");
  return std::vector<double>(Data.begin() + Row * Cols,
                             Data.begin() + (Row + 1) * Cols);
}

std::vector<double> Matrix::column(std::size_t Col) const {
  assert(Col < Cols && "column index out of range");
  std::vector<double> Out(Rows);
  for (std::size_t R = 0; R < Rows; ++R)
    Out[R] = Data[R * Cols + Col];
  return Out;
}

void Matrix::setRow(std::size_t Row, const std::vector<double> &Values) {
  assert(Row < Rows && "row index out of range");
  assert(Values.size() == Cols && "row width mismatch");
  for (std::size_t C = 0; C < Cols; ++C)
    Data[Row * Cols + C] = Values[C];
}

std::vector<double> Matrix::multiply(const std::vector<double> &Vec) const {
  assert(Vec.size() == Cols && "vector length mismatch");
  std::vector<double> Out(Rows, 0.0);
  for (std::size_t R = 0; R < Rows; ++R) {
    double Acc = 0.0;
    for (std::size_t C = 0; C < Cols; ++C)
      Acc += Data[R * Cols + C] * Vec[C];
    Out[R] = Acc;
  }
  return Out;
}

double fgbs::squaredDistance(const std::vector<double> &A,
                             const std::vector<double> &B) {
  assert(A.size() == B.size() && "dimension mismatch");
  double Acc = 0.0;
  for (std::size_t I = 0; I < A.size(); ++I) {
    double D = A[I] - B[I];
    Acc += D * D;
  }
  return Acc;
}

double fgbs::euclideanDistance(const std::vector<double> &A,
                               const std::vector<double> &B) {
  return std::sqrt(squaredDistance(A, B));
}
