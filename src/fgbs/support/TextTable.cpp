//===- fgbs/support/TextTable.cpp - Console table printer ----------------===//

#include "fgbs/support/TextTable.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

using namespace fgbs;

void TextTable::setHeader(std::vector<std::string> Names) {
  Header = std::move(Names);
}

void TextTable::addRow(std::vector<std::string> Cells) {
  Body.push_back(std::move(Cells));
  IsSeparator.push_back(false);
}

void TextTable::addSeparator() {
  Body.emplace_back();
  IsSeparator.push_back(true);
}

void TextTable::print(std::ostream &OS) const {
  // Compute column widths over header and body.
  std::vector<std::size_t> Widths;
  auto Grow = [&Widths](const std::vector<std::string> &Row) {
    if (Row.size() > Widths.size())
      Widths.resize(Row.size(), 0);
    for (std::size_t I = 0; I < Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());
  };
  Grow(Header);
  for (const auto &Row : Body)
    Grow(Row);

  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (std::size_t I = 0; I < Widths.size(); ++I) {
      std::string Cell = I < Row.size() ? Row[I] : std::string();
      Cell.resize(Widths[I], ' ');
      OS << (I == 0 ? "" : "  ") << Cell;
    }
    OS << '\n';
  };

  auto PrintSeparator = [&] {
    std::size_t Total = 0;
    for (std::size_t W : Widths)
      Total += W;
    Total += Widths.empty() ? 0 : 2 * (Widths.size() - 1);
    OS << std::string(Total, '-') << '\n';
  };

  if (!Header.empty()) {
    PrintRow(Header);
    PrintSeparator();
  }
  for (std::size_t I = 0; I < Body.size(); ++I) {
    if (IsSeparator[I])
      PrintSeparator();
    else
      PrintRow(Body[I]);
  }
}

void TextTable::printCsv(std::ostream &OS) const {
  auto PrintRow = [&OS](const std::vector<std::string> &Row) {
    for (std::size_t I = 0; I < Row.size(); ++I) {
      if (I)
        OS << ',';
      // Quote cells containing commas.
      if (Row[I].find(',') != std::string::npos)
        OS << '"' << Row[I] << '"';
      else
        OS << Row[I];
    }
    OS << '\n';
  };
  if (!Header.empty())
    PrintRow(Header);
  for (std::size_t I = 0; I < Body.size(); ++I)
    if (!IsSeparator[I])
      PrintRow(Body[I]);
}

std::string fgbs::formatDouble(double Value, int Digits) {
  assert(Digits >= 0 && Digits <= 12 && "unreasonable digit count");
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Digits, Value);
  return Buffer;
}

std::string fgbs::formatPercent(double Value, int Digits) {
  return formatDouble(Value, Digits) + "%";
}

std::string fgbs::formatFactor(double Value, int Digits) {
  return "x" + formatDouble(Value, Digits);
}
