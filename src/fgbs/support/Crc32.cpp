//===- fgbs/support/Crc32.cpp - CRC-32 checksums --------------------------===//

#include "fgbs/support/Crc32.h"

#include <array>

using namespace fgbs;

namespace {

/// The 256-entry lookup table for the reflected IEEE polynomial, built
/// once at static-initialization time (cheap: 2048 shifts).
std::array<std::uint32_t, 256> buildTable() {
  std::array<std::uint32_t, 256> Table{};
  for (std::uint32_t I = 0; I < 256; ++I) {
    std::uint32_t C = I;
    for (int Bit = 0; Bit < 8; ++Bit)
      C = (C >> 1) ^ ((C & 1u) ? 0xedb88320u : 0u);
    Table[I] = C;
  }
  return Table;
}

const std::array<std::uint32_t, 256> &table() {
  static const std::array<std::uint32_t, 256> Table = buildTable();
  return Table;
}

} // namespace

std::uint32_t fgbs::crc32Update(std::uint32_t Crc, const void *Data,
                                std::size_t Size) {
  const auto *Bytes = static_cast<const unsigned char *>(Data);
  const std::array<std::uint32_t, 256> &T = table();
  for (std::size_t I = 0; I < Size; ++I)
    Crc = T[(Crc ^ Bytes[I]) & 0xffu] ^ (Crc >> 8);
  return Crc;
}
