//===- fgbs/support/Statistics.cpp - Summary statistics ------------------===//

#include "fgbs/support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace fgbs;

double fgbs::sum(const std::vector<double> &Values) {
  double Total = 0.0;
  for (double V : Values)
    Total += V;
  return Total;
}

double fgbs::mean(const std::vector<double> &Values) {
  assert(!Values.empty() && "mean of an empty vector");
  return sum(Values) / static_cast<double>(Values.size());
}

double fgbs::median(std::vector<double> Values) {
  assert(!Values.empty() && "median of an empty vector");
  std::size_t N = Values.size();
  std::size_t Mid = N / 2;
  std::nth_element(Values.begin(), Values.begin() + Mid, Values.end());
  double Upper = Values[Mid];
  if (N % 2 == 1)
    return Upper;
  double Lower = *std::max_element(Values.begin(), Values.begin() + Mid);
  return 0.5 * (Lower + Upper);
}

double fgbs::variance(const std::vector<double> &Values) {
  assert(!Values.empty() && "variance of an empty vector");
  double Mean = mean(Values);
  double Acc = 0.0;
  for (double V : Values) {
    double D = V - Mean;
    Acc += D * D;
  }
  return Acc / static_cast<double>(Values.size());
}

double fgbs::stddev(const std::vector<double> &Values) {
  return std::sqrt(variance(Values));
}

double fgbs::geometricMean(const std::vector<double> &Values) {
  assert(!Values.empty() && "geometric mean of an empty vector");
  double LogSum = 0.0;
  for (double V : Values) {
    assert(V > 0.0 && "geometric mean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

double fgbs::percentile(std::vector<double> Values, double P) {
  assert(!Values.empty() && "percentile of an empty vector");
  assert(P >= 0.0 && P <= 100.0 && "percentile out of range");
  std::sort(Values.begin(), Values.end());
  if (Values.size() == 1)
    return Values.front();
  double Rank = P / 100.0 * static_cast<double>(Values.size() - 1);
  std::size_t Lo = static_cast<std::size_t>(Rank);
  std::size_t Hi = std::min(Lo + 1, Values.size() - 1);
  double Frac = Rank - static_cast<double>(Lo);
  return Values[Lo] + Frac * (Values[Hi] - Values[Lo]);
}

std::size_t fgbs::argMin(const std::vector<double> &Values) {
  assert(!Values.empty() && "argMin of an empty vector");
  return static_cast<std::size_t>(
      std::min_element(Values.begin(), Values.end()) - Values.begin());
}

std::size_t fgbs::argMax(const std::vector<double> &Values) {
  assert(!Values.empty() && "argMax of an empty vector");
  return static_cast<std::size_t>(
      std::max_element(Values.begin(), Values.end()) - Values.begin());
}

double fgbs::percentError(double A, double B) {
  assert(B != 0.0 && "percent error against a zero baseline");
  return std::fabs(A - B) / std::fabs(B) * 100.0;
}
