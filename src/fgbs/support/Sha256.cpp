//===- fgbs/support/Sha256.cpp - SHA-256 content addressing ---------------===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "fgbs/support/Sha256.h"

#include <cstring>

using namespace fgbs;

namespace {

constexpr std::uint32_t kRoundConstants[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline std::uint32_t rotr(std::uint32_t V, unsigned N) {
  return (V >> N) | (V << (32 - N));
}

} // namespace

Sha256::Sha256()
    : State{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f,
            0x9b05688c, 0x1f83d9ab, 0x5be0cd19},
      Buffer{} {}

void Sha256::compress(const std::uint8_t *Block) {
  std::uint32_t W[64];
  for (unsigned I = 0; I < 16; ++I)
    W[I] = (static_cast<std::uint32_t>(Block[4 * I]) << 24) |
           (static_cast<std::uint32_t>(Block[4 * I + 1]) << 16) |
           (static_cast<std::uint32_t>(Block[4 * I + 2]) << 8) |
           static_cast<std::uint32_t>(Block[4 * I + 3]);
  for (unsigned I = 16; I < 64; ++I) {
    const std::uint32_t S0 =
        rotr(W[I - 15], 7) ^ rotr(W[I - 15], 18) ^ (W[I - 15] >> 3);
    const std::uint32_t S1 =
        rotr(W[I - 2], 17) ^ rotr(W[I - 2], 19) ^ (W[I - 2] >> 10);
    W[I] = W[I - 16] + S0 + W[I - 7] + S1;
  }

  std::uint32_t A = State[0], B = State[1], C = State[2], D = State[3];
  std::uint32_t E = State[4], F = State[5], G = State[6], H = State[7];
  for (unsigned I = 0; I < 64; ++I) {
    const std::uint32_t S1 = rotr(E, 6) ^ rotr(E, 11) ^ rotr(E, 25);
    const std::uint32_t Ch = (E & F) ^ (~E & G);
    const std::uint32_t T1 = H + S1 + Ch + kRoundConstants[I] + W[I];
    const std::uint32_t S0 = rotr(A, 2) ^ rotr(A, 13) ^ rotr(A, 22);
    const std::uint32_t Maj = (A & B) ^ (A & C) ^ (B & C);
    const std::uint32_t T2 = S0 + Maj;
    H = G;
    G = F;
    F = E;
    E = D + T1;
    D = C;
    C = B;
    B = A;
    A = T1 + T2;
  }
  State[0] += A;
  State[1] += B;
  State[2] += C;
  State[3] += D;
  State[4] += E;
  State[5] += F;
  State[6] += G;
  State[7] += H;
}

void Sha256::update(const void *Data, std::size_t Len) {
  const std::uint8_t *Bytes = static_cast<const std::uint8_t *>(Data);
  TotalBytes += Len;
  if (BufferLen) {
    const std::size_t Fill = std::min(Len, Buffer.size() - BufferLen);
    std::memcpy(Buffer.data() + BufferLen, Bytes, Fill);
    BufferLen += Fill;
    Bytes += Fill;
    Len -= Fill;
    if (BufferLen == Buffer.size()) {
      compress(Buffer.data());
      BufferLen = 0;
    }
  }
  while (Len >= 64) {
    compress(Bytes);
    Bytes += 64;
    Len -= 64;
  }
  if (Len) {
    std::memcpy(Buffer.data(), Bytes, Len);
    BufferLen = Len;
  }
}

std::array<std::uint8_t, 32> Sha256::digest() {
  const std::uint64_t BitLen = TotalBytes * 8;
  const std::uint8_t Pad = 0x80;
  update(&Pad, 1);
  const std::uint8_t Zero = 0;
  while (BufferLen != 56)
    update(&Zero, 1);
  std::uint8_t Length[8];
  for (unsigned I = 0; I < 8; ++I)
    Length[I] = static_cast<std::uint8_t>(BitLen >> (56 - 8 * I));
  update(Length, 8);

  std::array<std::uint8_t, 32> Out;
  for (unsigned I = 0; I < 8; ++I) {
    Out[4 * I] = static_cast<std::uint8_t>(State[I] >> 24);
    Out[4 * I + 1] = static_cast<std::uint8_t>(State[I] >> 16);
    Out[4 * I + 2] = static_cast<std::uint8_t>(State[I] >> 8);
    Out[4 * I + 3] = static_cast<std::uint8_t>(State[I]);
  }
  return Out;
}

std::array<std::uint8_t, 32> fgbs::sha256(std::string_view Bytes) {
  Sha256 H;
  H.update(Bytes);
  return H.digest();
}

std::string fgbs::sha256Hex(std::string_view Bytes) {
  static const char Hex[] = "0123456789abcdef";
  const std::array<std::uint8_t, 32> D = sha256(Bytes);
  std::string Out;
  Out.reserve(64);
  for (std::uint8_t B : D) {
    Out.push_back(Hex[B >> 4]);
    Out.push_back(Hex[B & 0xf]);
  }
  return Out;
}

bool fgbs::isSha256Hex(std::string_view Hex) {
  if (Hex.size() != 64)
    return false;
  for (char C : Hex)
    if (!((C >= '0' && C <= '9') || (C >= 'a' && C <= 'f')))
      return false;
  return true;
}
