//===- fgbs/support/Sha256.h - SHA-256 content addressing -----*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SHA-256 (FIPS 180-4), self-contained.  The model registry stores
/// snapshot blobs under `model/<name>/sha/<hex>` keys, and every
/// consumer re-verifies the pulled bytes against that hash before
/// loading — a collision-resistant digest is what makes "the whole
/// fleet evaluates the same bytes" checkable, where the CRC-32 the
/// frame/snapshot headers use only catches accidental damage.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_SUPPORT_SHA256_H
#define FGBS_SUPPORT_SHA256_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace fgbs {

/// Streaming SHA-256: update() any number of times, then digest() once.
class Sha256 {
public:
  Sha256();

  void update(const void *Data, std::size_t Len);
  void update(std::string_view Bytes) { update(Bytes.data(), Bytes.size()); }

  /// Finalizes and returns the 32-byte digest.  The object must not be
  /// updated afterwards.
  std::array<std::uint8_t, 32> digest();

private:
  void compress(const std::uint8_t *Block);

  std::array<std::uint32_t, 8> State;
  std::array<std::uint8_t, 64> Buffer;
  std::size_t BufferLen = 0;
  std::uint64_t TotalBytes = 0;
};

/// One-shot digest of \p Bytes.
std::array<std::uint8_t, 32> sha256(std::string_view Bytes);

/// One-shot digest as 64 lowercase hex digits — the registry's content
/// address for a blob.
std::string sha256Hex(std::string_view Bytes);

/// True when \p Hex is exactly 64 lowercase hex digits (the canonical
/// encoding; uppercase is rejected so one blob has one key).
bool isSha256Hex(std::string_view Hex);

} // namespace fgbs

#endif // FGBS_SUPPORT_SHA256_H
