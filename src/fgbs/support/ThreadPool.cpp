//===- fgbs/support/ThreadPool.cpp - Worker-thread pool -------------------===//

#include "fgbs/support/ThreadPool.h"

#include <cstdlib>
#include <string>

using namespace fgbs;

unsigned ThreadPool::defaultThreadCount() {
  if (const char *Env = std::getenv("FGBS_THREADS")) {
    char *End = nullptr;
    long Parsed = std::strtol(Env, &End, 10);
    if (End != Env && *End == '\0' && Parsed > 0)
      return static_cast<unsigned>(Parsed);
  }
  unsigned Hardware = std::thread::hardware_concurrency();
  return Hardware > 0 ? Hardware : 1;
}

ThreadPool::ThreadPool(unsigned ThreadCount) {
  if (ThreadCount < 2)
    return;
  Workers.reserve(ThreadCount - 1);
  for (unsigned I = 0; I + 1 < ThreadCount; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  WorkCv.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

void ThreadPool::recordError(std::exception_ptr Error) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (!FirstError)
    FirstError = Error;
}

void ThreadPool::consume(const std::function<void(std::size_t)> &Fn) {
  for (;;) {
    std::size_t Index = NextIndex.fetch_add(1, std::memory_order_relaxed);
    if (Index >= JobEnd)
      return;
    try {
      Fn(Index);
    } catch (...) {
      recordError(std::current_exception());
      // Drain the remaining indices so the job finishes promptly.
      NextIndex.store(JobEnd, std::memory_order_relaxed);
      return;
    }
  }
}

void ThreadPool::workerLoop() {
  std::size_t SeenTicket = 0;
  for (;;) {
    const std::function<void(std::size_t)> *Fn = nullptr;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkCv.wait(Lock, [this, SeenTicket] {
        return Stopping || (JobFn && JobTicket != SeenTicket);
      });
      if (Stopping)
        return;
      SeenTicket = JobTicket;
      Fn = JobFn;
    }
    consume(*Fn);
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (--Working == 0)
        DoneCv.notify_all();
    }
  }
}

void ThreadPool::parallelFor(std::size_t Begin, std::size_t End,
                             const std::function<void(std::size_t)> &Fn) {
  if (Begin >= End)
    return;
  if (Workers.empty()) {
    for (std::size_t Index = Begin; Index < End; ++Index)
      Fn(Index);
    return;
  }

  {
    std::lock_guard<std::mutex> Lock(Mutex);
    JobFn = &Fn;
    NextIndex.store(Begin, std::memory_order_relaxed);
    JobEnd = End;
    ++JobTicket;
    Working = static_cast<unsigned>(Workers.size());
    FirstError = nullptr;
  }
  WorkCv.notify_all();

  consume(Fn); // The caller participates.

  std::unique_lock<std::mutex> Lock(Mutex);
  DoneCv.wait(Lock, [this] { return Working == 0; });
  JobFn = nullptr;
  if (FirstError) {
    std::exception_ptr Error = FirstError;
    FirstError = nullptr;
    Lock.unlock();
    std::rethrow_exception(Error);
  }
}
