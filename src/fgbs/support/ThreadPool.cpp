//===- fgbs/support/ThreadPool.cpp - Worker-thread pool -------------------===//

#include "fgbs/support/ThreadPool.h"

#include "fgbs/obs/Trace.h"

#include <cstdlib>
#include <string>

using namespace fgbs;

namespace {

// Pool metric handles, resolved once per process (the registry keeps
// them alive and stable); recording still checks obs::enabled() first.
obs::Histogram &taskLatencyHist() {
  static obs::Histogram &H =
      obs::MetricsRegistry::global().histogram("pool.task_ns");
  return H;
}

obs::Histogram &jobLatencyHist() {
  static obs::Histogram &H =
      obs::MetricsRegistry::global().histogram("pool.job_ns");
  return H;
}

obs::Histogram &callerWaitHist() {
  static obs::Histogram &H =
      obs::MetricsRegistry::global().histogram("pool.caller_wait_ns");
  return H;
}

} // namespace

unsigned ThreadPool::defaultThreadCount() {
  if (const char *Env = std::getenv("FGBS_THREADS")) {
    char *End = nullptr;
    long Parsed = std::strtol(Env, &End, 10);
    if (End != Env && *End == '\0' && Parsed > 0)
      return static_cast<unsigned>(Parsed);
  }
  unsigned Hardware = std::thread::hardware_concurrency();
  return Hardware > 0 ? Hardware : 1;
}

ThreadPool::ThreadPool(unsigned ThreadCount) {
  if (ThreadCount < 2)
    return;
  Workers.reserve(ThreadCount - 1);
  for (unsigned I = 0; I + 1 < ThreadCount; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  WorkCv.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

void ThreadPool::recordError(std::exception_ptr Error) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (!FirstError)
    FirstError = Error;
}

void ThreadPool::consume(const std::function<void(std::size_t)> &Fn) {
  // Sampled once per drain: task timing stays consistent within a job
  // and costs nothing but this branch when telemetry is off.
  const bool Telemetry = obs::enabled();
  for (;;) {
    std::size_t Index = NextIndex.fetch_add(1, std::memory_order_relaxed);
    if (Index >= JobEnd)
      return;
    try {
      if (Telemetry) {
        std::uint64_t Start = obs::nowNs();
        Fn(Index);
        taskLatencyHist().record(obs::nowNs() - Start);
      } else {
        Fn(Index);
      }
    } catch (...) {
      recordError(std::current_exception());
      // Drain the remaining indices so the job finishes promptly.
      NextIndex.store(JobEnd, std::memory_order_relaxed);
      return;
    }
  }
}

void ThreadPool::workerLoop() {
  std::size_t SeenTicket = 0;
  for (;;) {
    const std::function<void(std::size_t)> *Fn = nullptr;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkCv.wait(Lock, [this, SeenTicket] {
        return Stopping || (JobFn && JobTicket != SeenTicket);
      });
      if (Stopping)
        return;
      SeenTicket = JobTicket;
      Fn = JobFn;
    }
    consume(*Fn);
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (--Working == 0)
        DoneCv.notify_all();
    }
  }
}

void ThreadPool::parallelFor(std::size_t Begin, std::size_t End,
                             const std::function<void(std::size_t)> &Fn) {
  if (Begin >= End)
    return;
  obs::ScopedTimer JobTimer(obs::enabled() ? &jobLatencyHist() : nullptr);
  FGBS_COUNTER_ADD("pool.jobs", 1);
  FGBS_COUNTER_ADD("pool.tasks", End - Begin);
  FGBS_GAUGE_SET("pool.queue_depth", End - Begin);
  FGBS_GAUGE_SET("pool.threads", threadCount());
  if (Workers.empty()) {
    const bool Telemetry = obs::enabled();
    for (std::size_t Index = Begin; Index < End; ++Index) {
      if (Telemetry) {
        std::uint64_t Start = obs::nowNs();
        Fn(Index);
        taskLatencyHist().record(obs::nowNs() - Start);
      } else {
        Fn(Index);
      }
    }
    FGBS_GAUGE_SET("pool.queue_depth", 0);
    return;
  }

  {
    std::lock_guard<std::mutex> Lock(Mutex);
    JobFn = &Fn;
    NextIndex.store(Begin, std::memory_order_relaxed);
    JobEnd = End;
    ++JobTicket;
    Working = static_cast<unsigned>(Workers.size());
    FirstError = nullptr;
  }
  WorkCv.notify_all();

  consume(Fn); // The caller participates.

  // How long the caller sits behind its workers after finishing its own
  // share: the pool's load-imbalance signal.
  obs::ScopedTimer WaitTimer(obs::enabled() ? &callerWaitHist() : nullptr);
  std::unique_lock<std::mutex> Lock(Mutex);
  DoneCv.wait(Lock, [this] { return Working == 0; });
  JobFn = nullptr;
  FGBS_GAUGE_SET("pool.queue_depth", 0);
  if (FirstError) {
    std::exception_ptr Error = FirstError;
    FirstError = nullptr;
    Lock.unlock();
    std::rethrow_exception(Error);
  }
}
