//===- fgbs/support/Statistics.h - Summary statistics ----------*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Summary statistics used by the clustering, prediction-error, and
/// reduction-factor computations: mean, median, variance, geometric mean,
/// percentiles.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_SUPPORT_STATISTICS_H
#define FGBS_SUPPORT_STATISTICS_H

#include <cstddef>
#include <vector>

namespace fgbs {

/// Arithmetic mean of \p Values.  Requires a non-empty input.
double mean(const std::vector<double> &Values);

/// Median of \p Values (average of the two middle elements for even sizes).
/// Requires a non-empty input; does not modify the argument.
double median(std::vector<double> Values);

/// Population variance (divides by N).  Requires a non-empty input.
double variance(const std::vector<double> &Values);

/// Population standard deviation.
double stddev(const std::vector<double> &Values);

/// Geometric mean.  All values must be strictly positive.
double geometricMean(const std::vector<double> &Values);

/// Linear-interpolated percentile, \p P in [0, 100].
double percentile(std::vector<double> Values, double P);

/// Sum of \p Values (0 for an empty vector).
double sum(const std::vector<double> &Values);

/// Index of the smallest element.  Requires a non-empty input; ties break
/// toward the lowest index, so the result is deterministic.
std::size_t argMin(const std::vector<double> &Values);

/// Index of the largest element.  Requires a non-empty input; ties break
/// toward the lowest index.
std::size_t argMax(const std::vector<double> &Values);

/// Relative difference |A - B| / |B| expressed as a percentage.
/// \p B must be non-zero.
double percentError(double A, double B);

} // namespace fgbs

#endif // FGBS_SUPPORT_STATISTICS_H
