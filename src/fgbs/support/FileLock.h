//===- fgbs/support/FileLock.h - Cross-process advisory lock ---*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cross-process (and cross-thread) advisory file lock with timeout,
/// exponential backoff, and stale-lock recovery — the writer-coordination
/// primitive under the measurement cache (core/MeasurementCache) and any
/// future on-disk store that fleet-style concurrent runs share.
///
/// Two protocols, selected per acquisition:
///
///  - **flock** (the default): the lock is `flock(LOCK_EX)` on the lock
///    file's inode.  The kernel releases it when the holder exits for any
///    reason, so a crashed writer can never wedge waiters.  The file is
///    deliberately *not* unlinked on release: unlink-then-reopen would
///    let a new opener create a second inode and hand two processes "the"
///    lock (the classic flock race).  A leftover `.lock` file is ~16
///    bytes of inert metadata.
///  - **O_EXCL sentinel** (fallback for filesystems where flock is a
///    no-op or unsupported, e.g. some network mounts): existence of the
///    file IS the lock.  Because a crashed holder leaves the file behind,
///    waiters run stale detection: the file records the holder's pid
///    (`pid N`), a dead pid means stale immediately, and a file whose
///    owner cannot be determined goes stale once its mtime heartbeat is
///    older than Options::StaleAfterMs (holders refresh it with
///    heartbeat()).  Stale locks are broken by unlink + O_EXCL re-create;
///    racing breakers are safe because exactly one re-create wins.
///
/// Mode::Auto tries flock first and falls back to the sentinel protocol
/// only when flock itself is unsupported, so every process on one
/// filesystem resolves to the same protocol.  A FileLock constructed
/// with an empty path is a no-op lock that always acquires — backends
/// that need no cross-process coordination hand one out.
///
/// Waiting is polling with exponential backoff (InitialBackoffMs
/// doubling up to MaxBackoffMs) under a hard TimeoutMs deadline; the
/// result reports how long the caller actually waited so the cache
/// layer can export `db.cache.lock.waited_ms`.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_SUPPORT_FILELOCK_H
#define FGBS_SUPPORT_FILELOCK_H

#include <cstdint>
#include <string>

namespace fgbs {

/// An advisory cross-process lock bound to one filesystem path.
/// Movable-from-nowhere by design: one object, one (potential) holder.
class FileLock {
public:
  /// Which locking protocol acquire() uses (see file comment).
  enum class Mode {
    Auto,      ///< flock, falling back to the sentinel when unsupported.
    Flock,     ///< flock only; fail if the filesystem cannot.
    Exclusive, ///< O_EXCL sentinel only (what the fallback resolves to).
  };

  struct Options {
    /// Hard deadline for acquire(); 0 polls exactly once.
    std::uint64_t TimeoutMs = 600000;
    /// First backoff sleep; doubles per failed poll.
    std::uint64_t InitialBackoffMs = 5;
    /// Backoff ceiling.
    std::uint64_t MaxBackoffMs = 250;
    /// Sentinel protocol only: a lock file whose owner pid cannot be
    /// determined is considered abandoned once its mtime is older than
    /// this (a dead owner pid is stale immediately; a live one never).
    std::uint64_t StaleAfterMs = 900000;
    Mode LockMode = Mode::Auto;
  };

  enum class Status {
    Acquired, ///< The lock is held by this object.
    Timeout,  ///< TimeoutMs elapsed with the lock still held elsewhere.
    Error,    ///< The lock file itself is unusable (permissions, I/O).
  };

  struct AcquireResult {
    Status St = Status::Error;
    /// Wall time spent inside acquire().
    std::uint64_t WaitedMs = 0;
    /// A stale sentinel from a crashed holder was detected and broken.
    bool BrokeStaleLock = false;
    std::string Message;

    explicit operator bool() const { return St == Status::Acquired; }
  };

  explicit FileLock(std::string Path);
  ~FileLock();

  FileLock(const FileLock &) = delete;
  FileLock &operator=(const FileLock &) = delete;

  /// Blocks (poll + backoff) until the lock is held, the deadline
  /// passes, or the lock file errors.
  AcquireResult acquire(const Options &O);
  AcquireResult acquire();

  /// One non-blocking attempt.
  bool tryAcquire(const Options &O);
  bool tryAcquire();

  /// Refreshes the lock file's mtime so sentinel-protocol waiters keep
  /// treating this holder as live.  No-op unless held.
  void heartbeat();

  /// Releases if held (also run by the destructor).
  void release();

  bool held() const { return Held; }
  const std::string &path() const { return LockPath; }

private:
  bool tryAcquireOnce(const Options &O, bool &BrokeStale,
                      std::string &Error);
  bool isStale(const Options &O) const;
  void writeOwner();

  std::string LockPath;
  int Fd = -1;
  bool Held = false;
  /// True when the sentinel protocol took the lock (release unlinks).
  bool Sentinel = false;
};

} // namespace fgbs

#endif // FGBS_SUPPORT_FILELOCK_H
