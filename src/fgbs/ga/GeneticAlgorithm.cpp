//===- fgbs/ga/GeneticAlgorithm.cpp - Binary genetic algorithm ------------===//

#include "fgbs/ga/GeneticAlgorithm.h"

#include "fgbs/support/Rng.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <unordered_map>

using namespace fgbs;

namespace {

/// FNV-style hash over chromosome bits, for fitness memoization.
struct ChromosomeHash {
  std::size_t operator()(const Chromosome &C) const {
    std::uint64_t Hash = 0xCBF29CE484222325ULL;
    for (std::size_t I = 0; I < C.size(); ++I) {
      Hash ^= static_cast<std::uint64_t>(C[I]) + (I << 1);
      Hash *= 0x100000001B3ULL;
    }
    return static_cast<std::size_t>(Hash);
  }
};

} // namespace

GaResult fgbs::runGa(const GaConfig &Config, const FitnessFn &Fitness) {
  assert(Config.ChromosomeLength > 0 && "empty chromosomes");
  assert(Config.PopulationSize >= 2 && "population too small");
  assert(Config.TournamentSize >= 1 && "tournament too small");

  Rng Generator(Config.Seed);
  GaResult Result;

  std::unordered_map<Chromosome, double, ChromosomeHash> Cache;
  auto Evaluate = [&](const Chromosome &C) {
    if (Config.CacheFitness) {
      auto It = Cache.find(C);
      if (It != Cache.end())
        return It->second;
    }
    double Value = Fitness(C);
    ++Result.Evaluations;
    if (Config.CacheFitness)
      Cache.emplace(C, Value);
    return Value;
  };

  // Random initial population.
  std::vector<Chromosome> Population(Config.PopulationSize);
  for (Chromosome &C : Population) {
    C.resize(Config.ChromosomeLength);
    for (std::size_t B = 0; B < C.size(); ++B)
      C[B] = Generator.bernoulli(0.5);
  }

  std::vector<double> Scores(Config.PopulationSize);
  std::size_t Elite = std::max<std::size_t>(
      1, static_cast<std::size_t>(Config.EliteFraction *
                                  static_cast<double>(Config.PopulationSize)));

  double BestEver = 0.0;
  bool HaveBest = false;

  for (unsigned Gen = 0; Gen < Config.Generations; ++Gen) {
    for (std::size_t I = 0; I < Population.size(); ++I)
      Scores[I] = Evaluate(Population[I]);

    // Rank by ascending fitness (minimization).
    std::vector<std::size_t> Order(Population.size());
    std::iota(Order.begin(), Order.end(), 0);
    std::stable_sort(Order.begin(), Order.end(),
                     [&Scores](std::size_t A, std::size_t B) {
                       return Scores[A] < Scores[B];
                     });

    double GenBest = Scores[Order.front()];
    if (!HaveBest || GenBest < BestEver) {
      BestEver = GenBest;
      Result.Best = Population[Order.front()];
      Result.ConvergedAtGeneration = Gen;
      HaveBest = true;
    }
    Result.BestHistory.push_back(BestEver);

    if (Gen + 1 == Config.Generations)
      break;

    // Next generation: elites survive, the rest are bred.
    std::vector<Chromosome> Next;
    Next.reserve(Population.size());
    for (std::size_t E = 0; E < Elite; ++E)
      Next.push_back(Population[Order[E]]);

    auto SelectParent = [&]() -> const Chromosome & {
      std::size_t Best = Generator.below(Population.size());
      for (unsigned T = 1; T < Config.TournamentSize; ++T) {
        std::size_t Candidate = Generator.below(Population.size());
        if (Scores[Candidate] < Scores[Best])
          Best = Candidate;
      }
      return Population[Best];
    };

    while (Next.size() < Population.size()) {
      const Chromosome &A = SelectParent();
      const Chromosome &B = SelectParent();
      Chromosome Child(Config.ChromosomeLength);
      for (std::size_t Bit = 0; Bit < Child.size(); ++Bit) {
        // Uniform crossover, then per-bit mutation.
        bool Gene = Generator.bernoulli(0.5) ? A[Bit] : B[Bit];
        if (Generator.bernoulli(Config.MutationProbability))
          Gene = !Gene;
        Child[Bit] = Gene;
      }
      Next.push_back(std::move(Child));
    }
    Population = std::move(Next);
  }

  Result.BestFitness = BestEver;
  return Result;
}
