//===- fgbs/ga/GeneticAlgorithm.cpp - Binary genetic algorithm ------------===//

#include "fgbs/ga/GeneticAlgorithm.h"

#include "fgbs/obs/Trace.h"
#include "fgbs/support/Rng.h"
#include "fgbs/support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <numeric>
#include <unordered_map>

using namespace fgbs;

std::uint64_t fgbs::hashChromosome(const Chromosome &C) {
  std::uint64_t Hash = hashU64(C.size());
  std::uint64_t Word = 0;
  unsigned Bits = 0;
  for (std::size_t I = 0; I < C.size(); ++I) {
    Word |= static_cast<std::uint64_t>(C[I]) << Bits;
    if (++Bits == 64) {
      Hash = hashCombine(Hash, Word);
      Word = 0;
      Bits = 0;
    }
  }
  if (Bits > 0)
    Hash = hashCombine(Hash, Word);
  return Hash;
}

namespace {

/// Hash adaptor over chromosome bits, for fitness memoization.
struct ChromosomeHash {
  std::size_t operator()(const Chromosome &C) const {
    return static_cast<std::size_t>(hashChromosome(C));
  }
};

} // namespace

GaResult fgbs::runGa(const GaConfig &Config, const FitnessFn &Fitness) {
  FGBS_TRACE_SPAN("ga.run");
  assert(Config.ChromosomeLength > 0 && "empty chromosomes");
  assert(Config.PopulationSize >= 2 && "population too small");
  assert(Config.TournamentSize >= 1 && "tournament too small");

  Rng Generator(Config.Seed);
  GaResult Result;

  unsigned Threads =
      Config.Threads > 0 ? Config.Threads : ThreadPool::defaultThreadCount();
  std::unique_ptr<ThreadPool> Pool;
  if (Threads > 1)
    Pool = std::make_unique<ThreadPool>(Threads);

  std::unordered_map<Chromosome, double, ChromosomeHash> Cache;

  // Random initial population.
  std::vector<Chromosome> Population(Config.PopulationSize);
  for (Chromosome &C : Population) {
    C.resize(Config.ChromosomeLength);
    for (std::size_t B = 0; B < C.size(); ++B)
      C[B] = Generator.bernoulli(0.5);
  }

  std::vector<double> Scores(Config.PopulationSize);

  // Scores the whole generation.  Evaluations within a generation are
  // independent, so they fan out over the pool; everything that affects
  // determinism — which chromosomes get evaluated, the evaluation count,
  // and the cache merge — happens on this thread, so any thread count
  // produces identical results.
  auto EvaluateGeneration = [&] {
    FGBS_SCOPED_TIMER("ga.generation_eval");
    if (!Config.CacheFitness) {
      auto EvalOne = [&](std::size_t I) { Scores[I] = Fitness(Population[I]); };
      if (Pool)
        Pool->parallelFor(0, Population.size(), EvalOne);
      else
        for (std::size_t I = 0; I < Population.size(); ++I)
          EvalOne(I);
      Result.Evaluations += Population.size();
      FGBS_COUNTER_ADD("ga.fitness_evals", Population.size());
      return;
    }

    // Serial pass: satisfy cache hits, dedupe the misses in first-
    // occurrence order (matching the historical serial call order).
    std::vector<const Chromosome *> Pending;
    std::vector<std::size_t> SlotOf(Population.size(), SIZE_MAX);
    std::unordered_map<Chromosome, std::size_t, ChromosomeHash> PendingSlots;
    std::size_t CacheHits = 0;
    for (std::size_t I = 0; I < Population.size(); ++I) {
      auto Hit = Cache.find(Population[I]);
      if (Hit != Cache.end()) {
        Scores[I] = Hit->second;
        ++CacheHits;
        continue;
      }
      auto [Slot, IsNew] = PendingSlots.try_emplace(Population[I],
                                                    Pending.size());
      if (IsNew)
        Pending.push_back(&Population[I]);
      SlotOf[I] = Slot->second;
    }
    // Memo hit rate = cache_hits / (cache_hits + cache_misses); the
    // deduped re-occurrences within one generation count as hits too.
    FGBS_COUNTER_ADD("ga.cache_hits",
                     CacheHits + (Population.size() - CacheHits -
                                  Pending.size()));
    FGBS_COUNTER_ADD("ga.cache_misses", Pending.size());
    FGBS_COUNTER_ADD("ga.fitness_evals", Pending.size());

    std::vector<double> PendingScore(Pending.size());
    auto EvalPending = [&](std::size_t P) {
      PendingScore[P] = Fitness(*Pending[P]);
    };
    if (Pool)
      Pool->parallelFor(0, Pending.size(), EvalPending);
    else
      for (std::size_t P = 0; P < Pending.size(); ++P)
        EvalPending(P);
    Result.Evaluations += Pending.size();

    // Merge into the memo cache after the parallel region.
    for (std::size_t P = 0; P < Pending.size(); ++P)
      Cache.emplace(*Pending[P], PendingScore[P]);
    for (std::size_t I = 0; I < Population.size(); ++I)
      if (SlotOf[I] != SIZE_MAX)
        Scores[I] = PendingScore[SlotOf[I]];
  };

  std::size_t Elite = std::max<std::size_t>(
      1, static_cast<std::size_t>(Config.EliteFraction *
                                  static_cast<double>(Config.PopulationSize)));

  double BestEver = 0.0;
  bool HaveBest = false;

  for (unsigned Gen = 0; Gen < Config.Generations; ++Gen) {
    FGBS_COUNTER_ADD("ga.generations", 1);
    EvaluateGeneration();

    // Rank by ascending fitness (minimization).
    std::vector<std::size_t> Order(Population.size());
    std::iota(Order.begin(), Order.end(), 0);
    std::stable_sort(Order.begin(), Order.end(),
                     [&Scores](std::size_t A, std::size_t B) {
                       return Scores[A] < Scores[B];
                     });

    double GenBest = Scores[Order.front()];
    if (!HaveBest || GenBest < BestEver) {
      BestEver = GenBest;
      Result.Best = Population[Order.front()];
      Result.ConvergedAtGeneration = Gen;
      HaveBest = true;
    }
    Result.BestHistory.push_back(BestEver);

    if (Gen + 1 == Config.Generations)
      break;

    // Next generation: elites survive, the rest are bred.
    std::vector<Chromosome> Next;
    Next.reserve(Population.size());
    for (std::size_t E = 0; E < Elite; ++E)
      Next.push_back(Population[Order[E]]);

    auto SelectParent = [&]() -> const Chromosome & {
      std::size_t Best = Generator.below(Population.size());
      for (unsigned T = 1; T < Config.TournamentSize; ++T) {
        std::size_t Candidate = Generator.below(Population.size());
        if (Scores[Candidate] < Scores[Best])
          Best = Candidate;
      }
      return Population[Best];
    };

    while (Next.size() < Population.size()) {
      const Chromosome &A = SelectParent();
      const Chromosome &B = SelectParent();
      Chromosome Child(Config.ChromosomeLength);
      for (std::size_t Bit = 0; Bit < Child.size(); ++Bit) {
        // Uniform crossover, then per-bit mutation.
        bool Gene = Generator.bernoulli(0.5) ? A[Bit] : B[Bit];
        if (Generator.bernoulli(Config.MutationProbability))
          Gene = !Gene;
        Child[Bit] = Gene;
      }
      Next.push_back(std::move(Child));
    }
    Population = std::move(Next);
  }

  Result.BestFitness = BestEver;
  return Result;
}
