//===- fgbs/ga/GeneticAlgorithm.h - Binary genetic algorithm ---*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A binary-chromosome genetic algorithm, standing in for the GNU R
/// `genalg` package the paper uses for feature selection (section 4.2):
/// individuals are 76-bit vectors (bit i set <=> feature i selected),
/// evolved with elitism, tournament selection, uniform crossover, and
/// per-bit mutation.  Fitness is MINIMIZED, matching genalg's convention
/// and the paper's fitness max(err_atom, err_sandybridge) * K.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_GA_GENETICALGORITHM_H
#define FGBS_GA_GENETICALGORITHM_H

#include <cstdint>
#include <functional>
#include <vector>

namespace fgbs {

/// A binary chromosome.
using Chromosome = std::vector<bool>;

/// Fitness evaluator; lower is better.  Must be deterministic, and
/// thread-safe when the GA runs with more than one evaluation thread
/// (evaluations within a generation are issued concurrently).
using FitnessFn = std::function<double(const Chromosome &)>;

/// Well-mixed 64-bit hash of a chromosome (bits packed into 64-bit words,
/// each word mixed through SplitMix64).  Adjacent-bit swaps, which the
/// old additive mixing collided on, land in different buckets.  Exposed
/// for the fitness memo cache and its collision tests.
std::uint64_t hashChromosome(const Chromosome &C);

/// GA configuration.  Defaults follow the paper: population 1000, 100
/// generations, mutation probability 0.01.
struct GaConfig {
  std::size_t ChromosomeLength = 76;
  std::size_t PopulationSize = 1000;
  unsigned Generations = 100;
  double MutationProbability = 0.01;
  /// Fraction of the population surviving unchanged (genalg elitism).
  double EliteFraction = 0.20;
  /// Tournament size for parent selection.
  unsigned TournamentSize = 3;
  std::uint64_t Seed = 0x5eedf00d;
  /// Fitness values are memoized per chromosome (the fitness must be a
  /// pure function); disable only to measure raw evaluation counts.
  bool CacheFitness = true;
  /// Threads evaluating fitness within a generation.  0 = auto (the
  /// FGBS_THREADS environment variable, else hardware_concurrency());
  /// 1 = strictly serial, reproducing the historical single-threaded
  /// evaluation order exactly.  Any thread count yields identical
  /// results (Best, BestHistory, Evaluations) because selection,
  /// breeding, and the memo-cache merge stay on the caller thread.
  unsigned Threads = 0;
};

/// GA outcome.
struct GaResult {
  Chromosome Best;
  double BestFitness = 0.0;
  /// Best fitness after each generation (Generations entries).
  std::vector<double> BestHistory;
  /// Generation index at which the final best first appeared.
  unsigned ConvergedAtGeneration = 0;
  /// Number of (non-memoized) fitness evaluations performed.
  std::uint64_t Evaluations = 0;
};

/// Runs the GA.  Deterministic given the config seed.
GaResult runGa(const GaConfig &Config, const FitnessFn &Fitness);

} // namespace fgbs

#endif // FGBS_GA_GENETICALGORITHM_H
