//===- fgbs/ga/GeneticAlgorithm.h - Binary genetic algorithm ---*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A binary-chromosome genetic algorithm, standing in for the GNU R
/// `genalg` package the paper uses for feature selection (section 4.2):
/// individuals are 76-bit vectors (bit i set <=> feature i selected),
/// evolved with elitism, tournament selection, uniform crossover, and
/// per-bit mutation.  Fitness is MINIMIZED, matching genalg's convention
/// and the paper's fitness max(err_atom, err_sandybridge) * K.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_GA_GENETICALGORITHM_H
#define FGBS_GA_GENETICALGORITHM_H

#include <cstdint>
#include <functional>
#include <vector>

namespace fgbs {

/// A binary chromosome.
using Chromosome = std::vector<bool>;

/// Fitness evaluator; lower is better.  Must be deterministic.
using FitnessFn = std::function<double(const Chromosome &)>;

/// GA configuration.  Defaults follow the paper: population 1000, 100
/// generations, mutation probability 0.01.
struct GaConfig {
  std::size_t ChromosomeLength = 76;
  std::size_t PopulationSize = 1000;
  unsigned Generations = 100;
  double MutationProbability = 0.01;
  /// Fraction of the population surviving unchanged (genalg elitism).
  double EliteFraction = 0.20;
  /// Tournament size for parent selection.
  unsigned TournamentSize = 3;
  std::uint64_t Seed = 0x5eedf00d;
  /// Fitness values are memoized per chromosome (the fitness must be a
  /// pure function); disable only to measure raw evaluation counts.
  bool CacheFitness = true;
};

/// GA outcome.
struct GaResult {
  Chromosome Best;
  double BestFitness = 0.0;
  /// Best fitness after each generation (Generations entries).
  std::vector<double> BestHistory;
  /// Generation index at which the final best first appeared.
  unsigned ConvergedAtGeneration = 0;
  /// Number of (non-memoized) fitness evaluations performed.
  std::uint64_t Evaluations = 0;
};

/// Runs the GA.  Deterministic given the config seed.
GaResult runGa(const GaConfig &Config, const FitnessFn &Fitness);

} // namespace fgbs

#endif // FGBS_GA_GENETICALGORITHM_H
