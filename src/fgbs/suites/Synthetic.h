//===- fgbs/suites/Synthetic.h - Random suite generation --------*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded random benchmark-suite generator.  Draws codelets from the
/// kernel-shape families the NR/NAS corpora exhibit (streaming updates,
/// reductions, recurrences, divide/exp kernels, strided walks, stencils,
/// integer scatter), with log-uniform footprints and varied invocation
/// schedules and behaviour traits.
///
/// Used by the fuzz-style round-trip tests (every generated suite must
/// survive print -> parse -> print), by scalability checks of the
/// clustering/pipeline stack, and as a quick way to synthesize workloads
/// when experimenting with the method.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_SUITES_SYNTHETIC_H
#define FGBS_SUITES_SYNTHETIC_H

#include "fgbs/dsl/Codelet.h"

#include <cstdint>

namespace fgbs {

/// Generator parameters.
struct SyntheticConfig {
  std::size_t NumApplications = 4;
  std::size_t CodeletsPerApp = 8;
  /// Footprints drawn log-uniformly from [MinFootprintBytes, Max...].
  std::uint64_t MinFootprintBytes = 1 << 20;
  std::uint64_t MaxFootprintBytes = 64ull << 20;
  /// Probability that a codelet carries an extraction-hostile trait
  /// (multi-scale invocations or context-sensitive compilation).
  double IllBehavedProbability = 0.15;
  std::uint64_t Seed = 0x5EED;
};

/// Generates a suite deterministically from \p Config.
Suite makeSyntheticSuite(const SyntheticConfig &Config = {});

} // namespace fgbs

#endif // FGBS_SUITES_SYNTHETIC_H
