//===- fgbs/suites/Synthetic.cpp - Random suite generation ----------------===//

#include "fgbs/suites/Synthetic.h"

#include "fgbs/dsl/Builder.h"
#include "fgbs/support/Rng.h"

#include <cassert>
#include <cmath>

using namespace fgbs;

namespace {

/// The kernel-shape families codelets are drawn from.
enum class Family {
  StreamUpdate,
  Reduction,
  Recurrence,
  DivideKernel,
  ExpKernel,
  LdaWalk,
  StencilSweep,
  IntScatter,
  Last = IntScatter,
};

const char *familyName(Family F) {
  switch (F) {
  case Family::StreamUpdate:
    return "stream update";
  case Family::Reduction:
    return "reduction";
  case Family::Recurrence:
    return "first-order recurrence";
  case Family::DivideKernel:
    return "element-wise divide";
  case Family::ExpKernel:
    return "exponential kernel";
  case Family::LdaWalk:
    return "LDA row walk";
  case Family::StencilSweep:
    return "stencil sweep";
  case Family::IntScatter:
    return "integer scatter";
  }
  return "?";
}

std::uint64_t logUniform(Rng &R, std::uint64_t Lo, std::uint64_t Hi) {
  assert(Lo > 0 && Lo <= Hi && "bad log-uniform range");
  double V = R.uniformIn(std::log(static_cast<double>(Lo)),
                         std::log(static_cast<double>(Hi)));
  return static_cast<std::uint64_t>(std::exp(V));
}

Codelet generate(Rng &R, const SyntheticConfig &Config,
                 const std::string &App, std::size_t Index) {
  auto F = static_cast<Family>(
      R.below(static_cast<std::uint64_t>(Family::Last) + 1));
  Precision Prec = R.bernoulli(0.3) ? Precision::SP : Precision::DP;
  std::uint64_t Footprint =
      logUniform(R, Config.MinFootprintBytes, Config.MaxFootprintBytes);
  std::uint64_t Elems =
      std::max<std::uint64_t>(1 << 16, Footprint / bytesPerElement(Prec));

  CodeletBuilder B(App + "/synthetic_" + std::to_string(Index), App);
  B.pattern(std::string(precisionName(Prec)) + ": synthetic " +
            familyName(F));

  switch (F) {
  case Family::StreamUpdate: {
    unsigned A = B.array("a", Prec, Elems);
    unsigned X = B.array("x", Prec, Elems);
    B.loops(Elems);
    ExprPtr E = add(B.ld(X, StrideClass::Unit),
                    mul(constant(Prec), B.ld(A, StrideClass::Unit)));
    for (std::uint64_t Depth = R.below(4); Depth > 0; --Depth)
      E = add(mul(std::move(E), constant(Prec)), constant(Prec));
    B.stmt(storeTo(B.at(A, StrideClass::Unit), std::move(E)));
    break;
  }
  case Family::Reduction: {
    unsigned X = B.array("x", Prec, Elems);
    B.loops(Elems);
    B.stmt(reduce(BinOp::Add, mul(B.ld(X, StrideClass::Unit),
                                  B.ld(X, StrideClass::Unit))));
    if (R.bernoulli(0.5))
      B.stmt(reduce(BinOp::Add, B.ld(X, StrideClass::Unit)));
    break;
  }
  case Family::Recurrence: {
    unsigned X = B.array("x", Prec, Elems);
    unsigned Y = B.array("y", Prec, Elems);
    B.loops(Elems);
    B.stmt(recurrence(B.at(X, StrideClass::Unit),
                      sub(B.ld(Y, StrideClass::Unit),
                          mul(B.ld(X, StrideClass::Unit),
                              constant(Prec)))));
    break;
  }
  case Family::DivideKernel: {
    unsigned X = B.array("x", Prec, Elems);
    B.loops(Elems);
    B.stmt(storeTo(B.at(X, StrideClass::Unit),
                   div(constant(Prec), B.ld(X, StrideClass::Unit))));
    break;
  }
  case Family::ExpKernel: {
    unsigned X = B.array("x", Prec, Elems);
    B.loops(Elems);
    B.stmt(storeTo(B.at(X, StrideClass::Unit),
                   unary(UnOp::Exp, mul(B.ld(X, StrideClass::Unit),
                                        constant(Prec)))));
    break;
  }
  case Family::LdaWalk: {
    std::int64_t Lda = 256 + static_cast<std::int64_t>(R.below(1024));
    unsigned A = B.array("a", Prec, Elems);
    B.loops(Elems / static_cast<std::uint64_t>(Lda) + 1, 32);
    B.stmt(storeTo(B.at(A, StrideClass::Lda, Lda),
                   mul(B.ld(A, StrideClass::Lda, Lda), constant(Prec))));
    break;
  }
  case Family::StencilSweep: {
    unsigned U = B.array("u", Prec, Elems);
    unsigned Out = B.array("out", Prec, Elems);
    B.loops(Elems);
    unsigned Planes = 2 + static_cast<unsigned>(R.below(3));
    ExprPtr E = mul(constant(Prec),
                    B.ld(U, StrideClass::Stencil, 1, Planes));
    for (std::uint64_t Adds = 2 + R.below(5); Adds > 0; --Adds)
      E = add(std::move(E), constant(Prec));
    B.stmt(storeTo(B.at(Out, StrideClass::Unit), std::move(E)));
    break;
  }
  case Family::IntScatter: {
    unsigned K = B.array("keys", Precision::I32, Elems);
    unsigned H = B.array("hist", Precision::I32,
                         std::max<std::uint64_t>(1 << 14, Elems / 8));
    B.loops(Elems);
    std::int64_t Jump = 257 + static_cast<std::int64_t>(R.below(991));
    B.stmt(storeTo(B.at(H, StrideClass::Lda, Jump),
                   add(B.ld(H, StrideClass::Lda, Jump),
                       mul(B.ld(K, StrideClass::Unit),
                           constant(Precision::I32)))));
    break;
  }
  }

  // Invocation schedule: 10..500 invocations; ill-behaved codelets get a
  // second dataset context or context-sensitive compilation.
  std::uint64_t Invocations = 10 + R.below(490);
  if (R.bernoulli(Config.IllBehavedProbability)) {
    if (R.bernoulli(0.5)) {
      B.invocations(Invocations, 1.0);
      B.invocations(Invocations, R.uniformIn(0.1, 0.5));
    } else {
      B.invocations(Invocations);
      B.contextSensitiveCompilation();
    }
  } else {
    B.invocations(Invocations);
  }
  return B.take();
}

} // namespace

Suite fgbs::makeSyntheticSuite(const SyntheticConfig &Config) {
  assert(Config.NumApplications > 0 && Config.CodeletsPerApp > 0 &&
         "empty synthetic suite requested");
  Rng R(Config.Seed);
  Suite S;
  S.Name = "synthetic-" + std::to_string(Config.Seed);
  for (std::size_t A = 0; A < Config.NumApplications; ++A) {
    Application App;
    App.Name = "syn" + std::to_string(A);
    App.Coverage = R.uniformIn(0.85, 1.0);
    for (std::size_t C = 0; C < Config.CodeletsPerApp; ++C)
      App.Codelets.push_back(generate(R, Config, App.Name, C));
    S.Applications.push_back(std::move(App));
  }
  return S;
}
