//===- fgbs/suites/NR.cpp - The Numerical Recipes corpus ------------------===//
//
// 28 Numerical Recipes codelets following paper Table 3: computation
// pattern, dominant strides, and precision per row.  Every NR application
// maps one-to-one onto a codelet and all codelets are well-behaved under
// extraction (section 4.1), so none carry behaviour traits.
//
// Where our vectorizer's rules cannot reproduce a partial vectorization
// ratio exactly (Table 3 reports MAQAO percentages like 78% or 33%), the
// codelet is written so that its vector/scalar mix lands on the same side:
// descending-stride and non-unit-stride statements stay scalar, unit-
// stride statements vectorize.
//
//===----------------------------------------------------------------------===//

#include "fgbs/suites/Suites.h"

#include "fgbs/dsl/Builder.h"

using namespace fgbs;

namespace {

/// Wraps a single codelet into its own single-kernel application
/// (NR benchmarks are exactly one kernel each).
Application app(Codelet C) {
  Application App;
  App.Name = C.App;
  App.Coverage = 1.0;
  App.Codelets.push_back(std::move(C));
  return App;
}

/// A stencil-neighborhood expression: one multi-point stencil load plus
/// the add/mul chain a \p Planes-plane \p Adds-add kernel performs.
/// Constants (coefficients) live in registers and cost no instructions.
ExprPtr stencilSum(const CodeletBuilder &B, unsigned Array, unsigned Planes,
                   unsigned Adds) {
  ExprPtr Acc = mul(constant(Precision::DP),
                    B.ld(Array, StrideClass::Stencil, 1, Planes));
  for (unsigned I = 0; I < Adds; ++I)
    Acc = add(std::move(Acc), constant(Precision::DP));
  return Acc;
}

Codelet toeplz1() {
  CodeletBuilder B("toeplz_1", "toeplz_1");
  B.pattern("DP: 2 simultaneous reductions");
  unsigned X = B.array("x", Precision::DP, 1 << 20);
  unsigned R = B.array("r", Precision::DP, 1 << 20);
  unsigned G = B.array("g", Precision::DP, 1 << 20);
  unsigned H = B.array("h", Precision::DP, 1 << 20);
  B.loops(1 << 20);
  // Ascending x against descending r: stays scalar; the second reduction
  // is fully contiguous and vectorizes -> "V + S" like Table 3.
  B.stmt(reduce(BinOp::Add, mul(B.ld(X, StrideClass::Unit),
                                B.ld(R, StrideClass::NegUnit))));
  B.stmt(reduce(BinOp::Add,
                mul(B.ld(G, StrideClass::Unit), B.ld(H, StrideClass::Unit))));
  B.invocations(300);
  return B.take();
}

Codelet rstrct29() {
  CodeletBuilder B("rstrct_29", "rstrct_29");
  B.pattern("DP: MG Laplacian fine to coarse mesh transition");
  unsigned Fine = B.array("uf", Precision::DP, 2 << 20);
  unsigned Coarse = B.array("uc", Precision::DP, 256 << 10);
  B.loops(/*InnerTripCount=*/256 << 10, /*OuterIterations=*/4);
  // Half-weighting: a vectorizable plane smooth plus a scalar stride-2
  // fine-grid gather.
  B.stmt(storeTo(B.at(Coarse, StrideClass::Unit),
                 stencilSum(B, Fine, /*Planes=*/3, /*Adds=*/4)));
  B.stmt(storeTo(B.at(Coarse, StrideClass::Unit),
                 mul(constant(Precision::DP),
                     B.ld(Fine, StrideClass::Small, 2))));
  B.invocations(120);
  return B.take();
}

Codelet mprove8() {
  CodeletBuilder B("mprove_8", "mprove_8");
  B.pattern("MP: Dense Matrix x vector product");
  unsigned A = B.array("a", Precision::SP, 1000 * 1000);
  unsigned X = B.array("x", Precision::DP, 1000);
  B.loops(/*InnerTripCount=*/1000, /*OuterIterations=*/1000);
  // SP matrix against DP vector: mixed precision costs conversions,
  // yielding the partially vectorized profile of Table 3.
  B.stmt(reduce(BinOp::Add,
                mul(B.ld(A, StrideClass::Unit), B.ld(X, StrideClass::Unit))));
  B.invocations(200);
  return B.take();
}

Codelet toeplz4() {
  CodeletBuilder B("toeplz_4", "toeplz_4");
  B.pattern("DP: Vector multiply in asc./desc. order");
  unsigned X = B.array("x", Precision::DP, 1 << 20);
  unsigned Y = B.array("y", Precision::DP, 1 << 20);
  B.loops(1 << 20);
  // Levinson-style update: the store feeds the next iteration, which
  // defeats vectorization (Table 3 reports a mostly scalar loop).
  B.stmt(recurrence(B.at(X, StrideClass::Unit),
                    add(mul(B.ld(Y, StrideClass::Unit),
                            constant(Precision::DP)),
                        constant(Precision::DP))));
  B.invocations(150);
  return B.take();
}

Codelet realft4() {
  CodeletBuilder B("realft_4", "realft_4");
  B.pattern("DP: FFT butterfly computation");
  unsigned D1 = B.array("data_even", Precision::DP, 1 << 20);
  unsigned D2 = B.array("data_odd", Precision::DP, 1 << 20);
  B.loops(1 << 19);
  B.stmt(storeTo(B.at(D1, StrideClass::Small, 2),
                 sub(mul(B.ld(D1, StrideClass::Small, 2),
                         constant(Precision::DP)),
                     mul(B.ld(D2, StrideClass::Small, -2),
                         constant(Precision::DP)))));
  B.stmt(storeTo(B.at(D2, StrideClass::Small, -2),
                 add(mul(B.ld(D1, StrideClass::Small, 2),
                         constant(Precision::DP)),
                     mul(B.ld(D2, StrideClass::Small, -2),
                         constant(Precision::DP)))));
  B.invocations(200);
  return B.take();
}

Codelet toeplz3() {
  CodeletBuilder B("toeplz_3", "toeplz_3");
  B.pattern("DP: 3 simultaneous reductions");
  unsigned X = B.array("x", Precision::DP, 700 << 10);
  unsigned Y = B.array("y", Precision::DP, 700 << 10);
  unsigned Z = B.array("z", Precision::DP, 700 << 10);
  B.loops(700 << 10);
  B.stmt(reduce(BinOp::Add,
                mul(B.ld(X, StrideClass::Unit), B.ld(Y, StrideClass::Unit))));
  B.stmt(reduce(BinOp::Add,
                mul(B.ld(Y, StrideClass::Unit), B.ld(Z, StrideClass::Unit))));
  B.stmt(reduce(BinOp::Add,
                mul(B.ld(X, StrideClass::Unit), B.ld(Z, StrideClass::Unit))));
  B.invocations(250);
  return B.take();
}

Codelet svbksb3() {
  CodeletBuilder B("svbksb_3", "svbksb_3");
  B.pattern("SP: Dense Matrix x vector product");
  unsigned A = B.array("u", Precision::SP, 1200 * 1200);
  unsigned X = B.array("tmp", Precision::SP, 1200);
  B.loops(/*InnerTripCount=*/1200, /*OuterIterations=*/1200);
  B.stmt(reduce(BinOp::Add,
                mul(B.ld(A, StrideClass::Unit), B.ld(X, StrideClass::Unit))));
  B.invocations(150);
  return B.take();
}

Codelet lop13() {
  CodeletBuilder B("lop_13", "lop_13");
  B.pattern("DP: Laplacian finite difference constant coefficients");
  unsigned U = B.array("u", Precision::DP, 1 << 20);
  unsigned Out = B.array("out", Precision::DP, 1 << 20);
  B.loops(1 << 20);
  B.stmt(storeTo(B.at(Out, StrideClass::Unit),
                 stencilSum(B, U, /*Planes=*/3, /*Adds=*/4)));
  B.invocations(180);
  return B.take();
}

Codelet toeplz2() {
  CodeletBuilder B("toeplz_2", "toeplz_2");
  B.pattern("DP: Vector multiply element wise in asc./desc. order");
  unsigned A = B.array("a", Precision::DP, 1 << 20);
  unsigned Bv = B.array("b", Precision::DP, 1 << 20);
  unsigned C = B.array("c", Precision::DP, 1 << 20);
  B.loops(1 << 20);
  B.stmt(storeTo(B.at(C, StrideClass::Unit),
                 mul(B.ld(A, StrideClass::Unit),
                     B.ld(Bv, StrideClass::NegUnit))));
  B.invocations(200);
  return B.take();
}

Codelet four12() {
  CodeletBuilder B("four1_2", "four1_2");
  B.pattern("MP: First step FFT");
  unsigned Data = B.array("data", Precision::SP, 1 << 21);
  B.loops(1 << 19);
  // Interleaved complex data at stride 4 with DP twiddle factors.
  B.stmt(storeTo(B.at(Data, StrideClass::Small, 4),
                 sub(mul(B.ld(Data, StrideClass::Small, 4),
                         constant(Precision::DP)),
                     mul(B.ld(Data, StrideClass::Small, 4),
                         constant(Precision::DP)))));
  B.invocations(150);
  return B.take();
}

Codelet tridag(const char *Name, StrideClass Direction) {
  CodeletBuilder B(Name, Name);
  B.pattern("DP: First order recurrence");
  unsigned U = B.array("u", Precision::DP, 800 << 10);
  unsigned R = B.array("r", Precision::DP, 800 << 10);
  unsigned Gam = B.array("gam", Precision::DP, 800 << 10);
  B.loops(800 << 10);
  B.stmt(recurrence(B.at(U, Direction),
                    sub(B.ld(R, Direction),
                        mul(B.ld(Gam, Direction), constant(Precision::DP)))));
  B.invocations(180);
  return B.take();
}

Codelet ludcmp4() {
  CodeletBuilder B("ludcmp_4", "ludcmp_4");
  B.pattern("SP: Dot product over lower half square matrix");
  unsigned A = B.array("a", Precision::SP, 1200 * 1200);
  unsigned Bv = B.array("b", Precision::SP, 1200 * 1200);
  B.loops(/*InnerTripCount=*/600, /*OuterIterations=*/1200);
  // Row walk vectorizes; the column (LDA) walk stays scalar.
  B.stmt(reduce(BinOp::Add,
                mul(B.ld(A, StrideClass::Unit), B.ld(Bv, StrideClass::Unit))));
  B.stmt(reduce(BinOp::Add, mul(B.ld(A, StrideClass::Unit),
                                B.ld(Bv, StrideClass::Lda, 1200))));
  B.invocations(150);
  return B.take();
}

Codelet hqr15() {
  CodeletBuilder B("hqr_15", "hqr_15");
  B.pattern("SP: Addition on the diagonal elements of a matrix");
  unsigned A = B.array("a", Precision::SP, 1200 * 1200);
  B.loops(/*InnerTripCount=*/1200, /*OuterIterations=*/800);
  B.stmt(storeTo(B.at(A, StrideClass::Lda, 1201),
                 add(B.ld(A, StrideClass::Lda, 1201),
                     constant(Precision::SP))));
  B.invocations(100);
  return B.take();
}

Codelet relax226() {
  CodeletBuilder B("relax2_26", "relax2_26");
  B.pattern("DP: Red Black Sweeps Laplacian operator");
  unsigned U = B.array("u", Precision::DP, 1536 << 10);
  unsigned Rhs = B.array("rhs", Precision::DP, 1536 << 10);
  B.loops(/*InnerTripCount=*/768 << 10);
  // Red-black: every other point, so the loop cannot vectorize.
  B.stmt(storeTo(B.at(U, StrideClass::Small, 2),
                 mul(constant(Precision::DP),
                     add(stencilSum(B, U, /*Planes=*/3, /*Adds=*/2),
                         B.ld(Rhs, StrideClass::Small, 2)))));
  B.invocations(120);
  return B.take();
}

Codelet svdcmp14() {
  CodeletBuilder B("svdcmp_14", "svdcmp_14");
  B.pattern("DP: Vector divide element wise");
  unsigned X = B.array("x", Precision::DP, 600 << 10);
  B.loops(600 << 10);
  B.stmt(storeTo(B.at(X, StrideClass::Unit),
                 div(B.ld(X, StrideClass::Unit), constant(Precision::DP))));
  B.invocations(200);
  return B.take();
}

Codelet svdcmp13() {
  CodeletBuilder B("svdcmp_13", "svdcmp_13");
  B.pattern("DP: Norm + Vector divide");
  unsigned X = B.array("x", Precision::DP, 600 << 10);
  unsigned Y = B.array("y", Precision::DP, 600 << 10);
  B.loops(600 << 10);
  B.stmt(reduce(BinOp::Add,
                mul(B.ld(X, StrideClass::Unit), B.ld(X, StrideClass::Unit))));
  B.stmt(storeTo(B.at(Y, StrideClass::Unit),
                 div(B.ld(X, StrideClass::Unit), constant(Precision::DP))));
  B.invocations(200);
  return B.take();
}

Codelet hqr13() {
  CodeletBuilder B("hqr_13", "hqr_13");
  B.pattern("DP: Sum of the absolute values of a matrix column");
  unsigned A = B.array("a", Precision::DP, 900 << 10);
  B.loops(900 << 10);
  B.stmt(reduce(BinOp::Add, unary(UnOp::Abs, B.ld(A, StrideClass::Unit))));
  B.invocations(150);
  return B.take();
}

Codelet spSum(const char *Name, const char *Pattern, std::uint64_t Elems,
              std::uint64_t Invocations) {
  CodeletBuilder B(Name, Name);
  B.pattern(Pattern);
  unsigned A = B.array("a", Precision::SP, Elems);
  B.loops(Elems);
  B.stmt(reduce(BinOp::Add, add(B.ld(A, StrideClass::Unit),
                                constant(Precision::SP))));
  B.invocations(Invocations);
  return B.take();
}

Codelet svdcmp11() {
  CodeletBuilder B("svdcmp_11", "svdcmp_11");
  B.pattern("DP: Multiplying a matrix row by a scalar");
  unsigned A = B.array("a", Precision::DP, 1400 * 1400);
  B.loops(/*InnerTripCount=*/1400, /*OuterIterations=*/700);
  B.stmt(storeTo(B.at(A, StrideClass::Lda, 1400),
                 mul(B.ld(A, StrideClass::Lda, 1400),
                     constant(Precision::DP))));
  B.invocations(80);
  return B.take();
}

Codelet elmhes11() {
  CodeletBuilder B("elmhes_11", "elmhes_11");
  B.pattern("DP: Linear combination of matrix rows");
  unsigned A = B.array("a", Precision::DP, 1400 * 1400);
  unsigned C = B.array("c", Precision::DP, 1400 * 1400);
  B.loops(/*InnerTripCount=*/1400, /*OuterIterations=*/700);
  B.stmt(storeTo(B.at(A, StrideClass::Lda, 1400),
                 add(B.ld(A, StrideClass::Lda, 1400),
                     mul(constant(Precision::DP),
                         B.ld(C, StrideClass::Lda, 1400)))));
  B.invocations(80);
  return B.take();
}

Codelet mprove9() {
  CodeletBuilder B("mprove_9", "mprove_9");
  B.pattern("DP: Substracting a vector with a vector");
  unsigned R = B.array("r", Precision::DP, 1536 << 10);
  unsigned S = B.array("sdp", Precision::DP, 1536 << 10);
  B.loops(1536 << 10);
  B.stmt(storeTo(B.at(R, StrideClass::Unit),
                 sub(B.ld(R, StrideClass::Unit), B.ld(S, StrideClass::Unit))));
  B.invocations(150);
  return B.take();
}

Codelet matadd16() {
  CodeletBuilder B("matadd_16", "matadd_16");
  B.pattern("DP: Sum of two square matrices element wise");
  unsigned A = B.array("a", Precision::DP, 1200 * 1200);
  unsigned Bv = B.array("b", Precision::DP, 1200 * 1200);
  unsigned C = B.array("c", Precision::DP, 1200 * 1200);
  B.loops(/*InnerTripCount=*/1200 * 1200);
  B.stmt(storeTo(B.at(C, StrideClass::Unit),
                 add(B.ld(A, StrideClass::Unit), B.ld(Bv, StrideClass::Unit))));
  B.invocations(150);
  return B.take();
}

Codelet svdcmp6() {
  CodeletBuilder B("svdcmp_6", "svdcmp_6");
  B.pattern("DP: Sum of the absolute values of a matrix row");
  unsigned A = B.array("a", Precision::DP, 1400 * 1400);
  B.loops(/*InnerTripCount=*/1400, /*OuterIterations=*/700);
  B.stmt(reduce(BinOp::Add,
                unary(UnOp::Abs, B.ld(A, StrideClass::Lda, 1400))));
  B.invocations(100);
  return B.take();
}

Codelet elmhes10() {
  CodeletBuilder B("elmhes_10", "elmhes_10");
  B.pattern("DP: Linear combination of matrix columns");
  unsigned A = B.array("a", Precision::DP, 1 << 20);
  unsigned C = B.array("c", Precision::DP, 1 << 20);
  B.loops(1 << 20);
  B.stmt(storeTo(B.at(A, StrideClass::Unit),
                 add(B.ld(A, StrideClass::Unit),
                     mul(constant(Precision::DP),
                         B.ld(C, StrideClass::Unit)))));
  B.invocations(180);
  return B.take();
}

Codelet balanc3() {
  CodeletBuilder B("balanc_3", "balanc_3");
  B.pattern("DP: Vector multiply element wise");
  unsigned X = B.array("x", Precision::DP, 1200 << 10);
  B.loops(1200 << 10);
  B.stmt(storeTo(B.at(X, StrideClass::Unit),
                 mul(B.ld(X, StrideClass::Unit), constant(Precision::DP))));
  B.invocations(220);
  return B.take();
}

} // namespace

Suite fgbs::makeNumericalRecipes() {
  Suite S;
  S.Name = "Numerical Recipes";
  S.Applications.push_back(app(toeplz1()));
  S.Applications.push_back(app(rstrct29()));
  S.Applications.push_back(app(mprove8()));
  S.Applications.push_back(app(toeplz4()));
  S.Applications.push_back(app(realft4()));
  S.Applications.push_back(app(toeplz3()));
  S.Applications.push_back(app(svbksb3()));
  S.Applications.push_back(app(lop13()));
  S.Applications.push_back(app(toeplz2()));
  S.Applications.push_back(app(four12()));
  S.Applications.push_back(app(tridag("tridag_2", StrideClass::NegUnit)));
  S.Applications.push_back(app(tridag("tridag_1", StrideClass::Unit)));
  S.Applications.push_back(app(ludcmp4()));
  S.Applications.push_back(app(hqr15()));
  S.Applications.push_back(app(relax226()));
  S.Applications.push_back(app(svdcmp14()));
  S.Applications.push_back(app(svdcmp13()));
  S.Applications.push_back(app(hqr13()));
  S.Applications.push_back(
      app(spSum("hqr_12_sq", "SP: Sum of a square matrix", 1200 << 10, 200)));
  S.Applications.push_back(app(spSum(
      "jacobi_5", "SP: Sum of the upper half of a square matrix", 1300 << 10,
      200)));
  S.Applications.push_back(app(spSum(
      "hqr_12", "SP: Sum of the lower half of a square matrix", 1400 << 10,
      210)));
  S.Applications.push_back(app(svdcmp11()));
  S.Applications.push_back(app(elmhes11()));
  S.Applications.push_back(app(mprove9()));
  S.Applications.push_back(app(matadd16()));
  S.Applications.push_back(app(svdcmp6()));
  S.Applications.push_back(app(elmhes10()));
  S.Applications.push_back(app(balanc3()));
  return S;
}
