//===- fgbs/suites/NAS.cpp - The NAS SER corpus ---------------------------===//
//
// The 7 NAS SER benchmarks (CLASS B) outlined into 67 codelets.  Kernel
// shapes, grid sizes and invocation schedules follow the benchmarks'
// structure: BT/SP/LU are 102^3-grid CFD solvers dominated by five-plane
// stencil RHS computations (memory bound) and per-line triangular solves
// (recurrences), FT is a 3D FFT, CG a sparse conjugate-gradient solver
// dominated by one gather-heavy matvec, MG a multigrid V-cycle whose
// kernels run at several grid levels per invocation, and IS an integer
// bucket sort.
//
// Behaviour traits deliberately reproduce the paper's extraction story:
//  - cg's matvec is cache-state sensitive (the Figure 5 CG-on-Atom
//    outlier: the extracted microbenchmark misses 1.6x less);
//  - MG codelets are invoked across V-cycle levels with different
//    datasets, so the first-invocation memory dump misrepresents them
//    (ill-behaved category 1; the paper excludes MG from per-application
//    subsetting for this reason);
//  - a few setup kernels (exact_rhs, setiv, zran3, compute_indexmap)
//    compile differently once outlined (ill-behaved category 2).
// Akel et al. report ~19% of NAS codelets ill-behaved; these traits land
// in the same range.
//
//===----------------------------------------------------------------------===//

#include "fgbs/suites/Suites.h"

#include "fgbs/dsl/Builder.h"

using namespace fgbs;

namespace {

/// 102^3 CLASS-B grid points for BT/SP/LU.
constexpr std::uint64_t GridPoints = 102ULL * 102 * 102;

/// A five-plane, three-point stencil RHS kernel: the memory-bound shape
/// of BT/rhs.f:266-311 and SP/rhs.f:275-320 ("cluster B" in section 4.4).
Codelet rhsStencil(const char *Name, const char *App, std::uint64_t Points,
                   std::uint64_t Invocations, unsigned ExtraMuls) {
  CodeletBuilder B(Name, App);
  B.pattern("DP: three-point stencil on five planes");
  unsigned U = B.array("u", Precision::DP, Points * 5);
  unsigned Us = B.array("us", Precision::DP, Points);
  unsigned Rhs = B.array("rhs", Precision::DP, Points * 5);
  B.loops(/*InnerTripCount=*/Points, /*OuterIterations=*/5);
  ExprPtr Acc = mul(constant(Precision::DP),
                    B.ld(U, StrideClass::Stencil, 1, /*PointsPerIter=*/3));
  Acc = add(std::move(Acc), mul(constant(Precision::DP),
                                B.ld(Us, StrideClass::Unit)));
  for (unsigned I = 0; I < ExtraMuls; ++I)
    Acc = add(mul(std::move(Acc), constant(Precision::DP)),
              constant(Precision::DP));
  B.stmt(storeTo(B.at(Rhs, StrideClass::Unit), std::move(Acc)));
  B.invocations(Invocations);
  return B.take();
}

/// A forward/backward line solve: first-order recurrence along the grid
/// lines (BT/SP x_solve-style, LU blts/buts).
Codelet lineSolve(const char *Name, const char *App, std::uint64_t Points,
                  std::uint64_t Invocations, StrideClass Direction,
                  unsigned Depth) {
  CodeletBuilder B(Name, App);
  B.pattern(Direction == StrideClass::Unit
                ? "DP: forward substitution along grid lines"
                : "DP: backward substitution along grid lines");
  unsigned Lhs = B.array("lhs", Precision::DP, Points * 3);
  unsigned R = B.array("rhs", Precision::DP, Points);
  B.loops(/*InnerTripCount=*/Points, /*OuterIterations=*/Depth);
  ExprPtr Rhs = sub(B.ld(R, Direction),
                    mul(B.ld(Lhs, Direction), constant(Precision::DP)));
  Rhs = mul(std::move(Rhs), constant(Precision::DP));
  B.stmt(recurrence(B.at(R, Direction), std::move(Rhs)));
  B.invocations(Invocations);
  return B.take();
}

/// A dense flux-Jacobian block assembly: compute-bound multiply/add
/// chains with an occasional divide (BT lhs*, LU jacld/jacu).
Codelet jacobian(const char *Name, const char *App, std::uint64_t Points,
                 std::uint64_t Invocations, unsigned MulDepth, bool WithDiv) {
  CodeletBuilder B(Name, App);
  B.pattern("DP: dense flux-Jacobian block assembly");
  unsigned U = B.array("u", Precision::DP, Points);
  unsigned Fjac = B.array("fjac", Precision::DP, Points * 2);
  B.loops(/*InnerTripCount=*/Points, /*OuterIterations=*/4);
  ExprPtr Tmp = WithDiv
                    ? div(constant(Precision::DP), B.ld(U, StrideClass::Unit))
                    : mul(constant(Precision::DP), B.ld(U, StrideClass::Unit));
  for (unsigned I = 0; I < MulDepth; ++I)
    Tmp = add(mul(std::move(Tmp), B.ld(U, StrideClass::Unit)),
              constant(Precision::DP));
  B.stmt(storeTo(B.at(Fjac, StrideClass::Unit), std::move(Tmp)));
  B.invocations(Invocations);
  return B.take();
}

/// Streaming vector update u += rhs (BT/SP add.f, LU ssor update).
Codelet vectorAdd(const char *Name, const char *App, std::uint64_t Elems,
                  std::uint64_t Invocations) {
  CodeletBuilder B(Name, App);
  B.pattern("DP: element-wise vector add");
  unsigned U = B.array("u", Precision::DP, Elems);
  unsigned R = B.array("rhs", Precision::DP, Elems);
  B.loops(Elems);
  B.stmt(storeTo(B.at(U, StrideClass::Unit),
                 add(B.ld(U, StrideClass::Unit), B.ld(R, StrideClass::Unit))));
  B.invocations(Invocations);
  return B.take();
}

/// Sum-of-squares norm reduction (LU l2norm, SP rhs_norm, MG norm2u3).
Codelet normReduction(const char *Name, const char *App, std::uint64_t Elems,
                      std::uint64_t Invocations) {
  CodeletBuilder B(Name, App);
  B.pattern("DP: sum-of-squares norm reduction");
  unsigned V = B.array("v", Precision::DP, Elems);
  B.loops(Elems);
  B.stmt(reduce(BinOp::Add, mul(B.ld(V, StrideClass::Unit),
                                B.ld(V, StrideClass::Unit))));
  B.invocations(Invocations);
  return B.take();
}

/// Triple-nested kernel with divisions and exponentials: the
/// compute-bound shape of LU/erhs.f:49-57 and FT/appft.f:45-47
/// ("cluster A" in section 4.4).
Codelet divExpKernel(const char *Name, const char *App, std::uint64_t Points,
                     std::uint64_t Invocations, bool ContextSensitive) {
  CodeletBuilder B(Name, App);
  B.pattern("DP: triple-nested loop with divisions and exponentials");
  unsigned U = B.array("u", Precision::DP, Points);
  unsigned Frct = B.array("frct", Precision::DP, Points);
  B.loops(/*InnerTripCount=*/Points, /*OuterIterations=*/3);
  ExprPtr E = unary(UnOp::Exp, mul(B.ld(U, StrideClass::Unit),
                                   constant(Precision::DP)));
  E = div(std::move(E), add(B.ld(U, StrideClass::Unit),
                            constant(Precision::DP)));
  B.stmt(storeTo(B.at(Frct, StrideClass::Unit), std::move(E)));
  B.invocations(Invocations);
  if (ContextSensitive)
    B.contextSensitiveCompilation();
  return B.take();
}

/// FFT butterfly sweep with small-stride interleaved accesses (FT
/// cffts1/2/3).
Codelet fftButterfly(const char *Name, const char *App, std::uint64_t Elems,
                     std::uint64_t Invocations, std::int64_t Stride) {
  CodeletBuilder B(Name, App);
  B.pattern("DP: FFT butterfly sweep over interleaved complex data");
  unsigned X = B.array("x_re", Precision::DP, Elems);
  unsigned Y = B.array("x_im", Precision::DP, Elems);
  B.loops(Elems / 2);
  B.stmt(storeTo(B.at(X, StrideClass::Small, Stride),
                 sub(mul(B.ld(X, StrideClass::Small, Stride),
                         constant(Precision::DP)),
                     mul(B.ld(Y, StrideClass::Small, Stride),
                         constant(Precision::DP)))));
  B.stmt(storeTo(B.at(Y, StrideClass::Small, Stride),
                 add(mul(B.ld(X, StrideClass::Small, Stride),
                         constant(Precision::DP)),
                     mul(B.ld(Y, StrideClass::Small, Stride),
                         constant(Precision::DP)))));
  B.invocations(Invocations);
  return B.take();
}

/// Grid-initialization store kernel (set fields to analytic values).
Codelet initKernel(const char *Name, const char *App, std::uint64_t Elems,
                   std::uint64_t Invocations, bool ContextSensitive) {
  CodeletBuilder B(Name, App);
  B.pattern("DP: grid initialization stores");
  unsigned U = B.array("u", Precision::DP, Elems);
  B.loops(Elems);
  B.stmt(storeTo(B.at(U, StrideClass::Unit),
                 add(mul(constant(Precision::DP), constant(Precision::DP)),
                     constant(Precision::DP))));
  B.invocations(Invocations);
  if (ContextSensitive)
    B.contextSensitiveCompilation();
  return B.take();
}

/// A multigrid stencil kernel invoked once per V-cycle level: the
/// dataset shrinks by 8x per level, so the extracted dump (first, finest
/// level) misrepresents the average invocation — ill-behaved category 1.
Codelet mgLevelKernel(const char *Name, const char *App, const char *Pattern,
                      std::uint64_t FinePoints, std::uint64_t CyclesCount,
                      unsigned Planes, unsigned Adds) {
  CodeletBuilder B(Name, App);
  B.pattern(Pattern);
  unsigned U = B.array("u", Precision::DP, FinePoints);
  unsigned R = B.array("r", Precision::DP, FinePoints);
  B.loops(FinePoints);
  ExprPtr Acc = mul(constant(Precision::DP),
                    B.ld(U, StrideClass::Stencil, 1, Planes));
  for (unsigned I = 0; I < Adds; ++I)
    Acc = add(std::move(Acc), constant(Precision::DP));
  B.stmt(storeTo(B.at(R, StrideClass::Unit), std::move(Acc)));
  // One invocation per level per V-cycle; levels shrink the dataset 8x.
  B.invocations(CyclesCount, 1.0);
  B.invocations(CyclesCount, 0.125);
  B.invocations(2 * CyclesCount, 0.015625);
  return B.take();
}

Application makeBt() {
  Application App;
  App.Name = "bt";
  App.Coverage = 0.92;
  auto &C = App.Codelets;
  C.push_back(rhsStencil("bt/rhs.f:266-311", "bt", GridPoints, 201, 4));
  C.push_back(rhsStencil("bt/rhs.f:312-357", "bt", GridPoints, 201, 5));
  C.push_back(rhsStencil("bt/rhs.f:358-403", "bt", GridPoints, 201, 6));
  C.push_back(jacobian("bt/rhs.f:24-56", "bt", GridPoints, 201,
                       /*MulDepth=*/3, /*WithDiv=*/true));
  C.push_back(lineSolve("bt/x_solve.f:52-120", "bt", GridPoints, 200,
                        StrideClass::Unit, /*Depth=*/3));
  C.push_back(lineSolve("bt/x_solve.f:121-180", "bt", GridPoints, 200,
                        StrideClass::NegUnit, /*Depth=*/3));
  C.push_back(lineSolve("bt/y_solve.f:52-120", "bt", GridPoints, 200,
                        StrideClass::Unit, /*Depth=*/3));
  C.push_back(lineSolve("bt/z_solve.f:52-120", "bt", GridPoints, 200,
                        StrideClass::Unit, /*Depth=*/4));
  C.push_back(jacobian("bt/lhsx.f:21-70", "bt", GridPoints, 200,
                       /*MulDepth=*/6, /*WithDiv=*/false));
  C.push_back(jacobian("bt/lhsy.f:21-70", "bt", GridPoints, 200,
                       /*MulDepth=*/7, /*WithDiv=*/false));
  C.push_back(jacobian("bt/lhsz.f:21-70", "bt", GridPoints, 200,
                       /*MulDepth=*/8, /*WithDiv=*/false));
  C.push_back(vectorAdd("bt/add.f:20-36", "bt", GridPoints * 5, 200));
  C.push_back(divExpKernel("bt/exact_rhs.f:21-60", "bt", GridPoints, 2,
                           /*ContextSensitive=*/true));
  C.push_back(initKernel("bt/initialize.f:28-60", "bt", GridPoints * 5, 2,
                         /*ContextSensitive=*/false));
  C.push_back(normReduction("bt/error_norm.f:24-40", "bt", GridPoints * 5, 3));
  return App;
}

Application makeSp() {
  Application App;
  App.Name = "sp";
  App.Coverage = 0.92;
  auto &C = App.Codelets;
  C.push_back(rhsStencil("sp/rhs.f:275-320", "sp", GridPoints, 401, 4));
  C.push_back(rhsStencil("sp/rhs.f:321-366", "sp", GridPoints, 401, 5));
  C.push_back(rhsStencil("sp/rhs.f:367-412", "sp", GridPoints, 401, 6));
  C.push_back(jacobian("sp/txinvr.f:29-60", "sp", GridPoints, 400,
                       /*MulDepth=*/4, /*WithDiv=*/true));
  C.push_back(jacobian("sp/ninvr.f:29-55", "sp", GridPoints, 400,
                       /*MulDepth=*/2, /*WithDiv=*/false));
  C.push_back(jacobian("sp/pinvr.f:29-55", "sp", GridPoints, 400,
                       /*MulDepth=*/3, /*WithDiv=*/false));
  C.push_back(jacobian("sp/tzetar.f:29-60", "sp", GridPoints, 400,
                       /*MulDepth=*/5, /*WithDiv=*/false));
  C.push_back(lineSolve("sp/x_solve.f:27-90", "sp", GridPoints, 400,
                        StrideClass::Unit, /*Depth=*/2));
  C.push_back(lineSolve("sp/y_solve.f:27-90", "sp", GridPoints, 400,
                        StrideClass::Unit, /*Depth=*/3));
  C.push_back(lineSolve("sp/z_solve.f:27-90", "sp", GridPoints, 400,
                        StrideClass::NegUnit, /*Depth=*/2));
  C.push_back(vectorAdd("sp/add.f:17-30", "sp", GridPoints * 5, 400));
  C.push_back(divExpKernel("sp/exact_rhs.f:21-60", "sp", GridPoints, 2,
                           /*ContextSensitive=*/true));
  C.push_back(initKernel("sp/initialize.f:28-60", "sp", GridPoints * 5, 2,
                         /*ContextSensitive=*/false));
  C.push_back(normReduction("sp/rhs_norm.f:15-30", "sp", GridPoints * 5, 3));
  C.push_back(jacobian("sp/lhs.f:30-80", "sp", GridPoints, 400,
                       /*MulDepth=*/1, /*WithDiv=*/true));
  return App;
}

Application makeLu() {
  Application App;
  App.Name = "lu";
  App.Coverage = 0.92;
  auto &C = App.Codelets;
  C.push_back(divExpKernel("lu/erhs.f:49-57", "lu", GridPoints, 2,
                           /*ContextSensitive=*/false));
  C.push_back(rhsStencil("lu/rhs.f:41-86", "lu", GridPoints, 251, 4));
  C.push_back(rhsStencil("lu/rhs.f:87-132", "lu", GridPoints, 251, 5));
  C.push_back(rhsStencil("lu/rhs.f:133-178", "lu", GridPoints, 251, 7));
  C.push_back(jacobian("lu/jacld.f:38-90", "lu", GridPoints, 250,
                       /*MulDepth=*/8, /*WithDiv=*/true));
  C.push_back(jacobian("lu/jacu.f:38-90", "lu", GridPoints, 250,
                       /*MulDepth=*/9, /*WithDiv=*/true));
  C.push_back(lineSolve("lu/blts.f:75-130", "lu", GridPoints, 250,
                        StrideClass::Unit, /*Depth=*/3));
  C.push_back(lineSolve("lu/buts.f:75-130", "lu", GridPoints, 250,
                        StrideClass::NegUnit, /*Depth=*/3));
  C.push_back(normReduction("lu/l2norm.f:18-32", "lu", GridPoints * 5, 63));
  C.push_back(vectorAdd("lu/ssor.f:98-110", "lu", GridPoints * 5, 500));
  C.push_back(initKernel("lu/setbv.f:20-48", "lu", GridPoints, 2,
                         /*ContextSensitive=*/false));
  C.push_back(initKernel("lu/setiv.f:22-46", "lu", GridPoints, 2,
                         /*ContextSensitive=*/true));
  return App;
}

Application makeFt() {
  Application App;
  App.Name = "ft";
  App.Coverage = 0.92;
  auto &C = App.Codelets;
  // CLASS B FT grid: 512 x 256 x 256 complex points.
  constexpr std::uint64_t FtPoints = 512ULL * 256 * 256;
  C.push_back(divExpKernel("ft/appft.f:45-47", "ft", FtPoints / 4, 2,
                           /*ContextSensitive=*/false));
  {
    CodeletBuilder B("ft/evolve.f:18-35", "ft");
    B.pattern("DP: complex field multiply by exponential factors");
    unsigned U0 = B.array("u0", Precision::DP, FtPoints);
    unsigned U1 = B.array("u1", Precision::DP, FtPoints);
    unsigned Twiddle = B.array("twiddle", Precision::DP, FtPoints);
    B.loops(FtPoints);
    B.stmt(storeTo(B.at(U1, StrideClass::Unit),
                   mul(B.ld(U0, StrideClass::Unit),
                       B.ld(Twiddle, StrideClass::Unit))));
    B.invocations(20);
    C.push_back(B.take());
  }
  C.push_back(fftButterfly("ft/cffts1.f:50-80", "ft", FtPoints / 4, 42, 2));
  C.push_back(fftButterfly("ft/cffts2.f:50-80", "ft", FtPoints / 4, 42, 4));
  C.push_back(fftButterfly("ft/cffts3.f:50-80", "ft", FtPoints / 4, 42, 8));
  {
    CodeletBuilder B("ft/checksum.f:12-24", "ft");
    B.pattern("DP: strided checksum reduction");
    unsigned U = B.array("u1", Precision::DP, FtPoints);
    B.loops(1 << 21);
    B.stmt(reduce(BinOp::Add, B.ld(U, StrideClass::Lda, 16)));
    B.invocations(20);
    C.push_back(B.take());
  }
  {
    CodeletBuilder B("ft/indexmap.f:18-40", "ft");
    B.pattern("MP: exponential index-map initialization");
    unsigned Tw = B.array("twiddle", Precision::DP, FtPoints);
    B.loops(FtPoints);
    B.stmt(storeTo(B.at(Tw, StrideClass::Unit),
                   unary(UnOp::Exp, mul(constant(Precision::DP),
                                        constant(Precision::DP)))));
    B.invocations(2);
    B.contextSensitiveCompilation();
    C.push_back(B.take());
  }
  return App;
}

Application makeCg() {
  Application App;
  App.Name = "cg";
  App.Coverage = 0.92;
  auto &C = App.Codelets;
  // CLASS B: n = 75000 rows, ~13M nonzeros; 75 outer iterations each
  // running 25 inner CG iterations.
  constexpr std::uint64_t Rows = 75000;
  constexpr std::uint64_t Nnz = Rows * 180;
  {
    CodeletBuilder B("cg/cg.f:556-564", "cg");
    B.pattern("DP: sparse matrix-vector product (gather)");
    unsigned A = B.array("a", Precision::DP, Nnz);
    unsigned Col = B.array("colidx", Precision::I32, Nnz);
    unsigned P = B.array("p", Precision::DP, Rows);
    B.loops(/*InnerTripCount=*/Nnz);
    // a[k] * p[colidx[k]]: streaming values/indices plus an irregular
    // gather over the dense vector.
    ExprPtr Gather = mul(B.ld(A, StrideClass::Unit),
                         B.ld(P, StrideClass::Lda, 677));
    B.stmt(reduce(BinOp::Add, std::move(Gather)));
    B.stmt(reduce(BinOp::Add,
                  mul(B.ld(Col, StrideClass::Unit), constant(Precision::I32))));
    // One invocation per CG iteration: 75 outer x 25 inner plus spares.
    B.invocations(1900);
    B.cacheStateSensitive();
    C.push_back(B.take());
  }
  {
    CodeletBuilder B("cg/cg.f:598-604", "cg");
    B.pattern("DP: axpy vector update p = r + beta*p");
    unsigned Pv = B.array("p", Precision::DP, Rows);
    unsigned R = B.array("r", Precision::DP, Rows);
    B.loops(/*InnerTripCount=*/Rows, /*OuterIterations=*/25);
    B.stmt(storeTo(B.at(Pv, StrideClass::Unit),
                   add(B.ld(R, StrideClass::Unit),
                       mul(constant(Precision::DP),
                           B.ld(Pv, StrideClass::Unit)))));
    B.invocations(76);
    C.push_back(B.take());
  }
  {
    CodeletBuilder B("cg/cg.f:575-580", "cg");
    B.pattern("DP: dot product r.r");
    unsigned R = B.array("r", Precision::DP, Rows);
    B.loops(/*InnerTripCount=*/Rows, /*OuterIterations=*/25);
    B.stmt(reduce(BinOp::Add, mul(B.ld(R, StrideClass::Unit),
                                  B.ld(R, StrideClass::Unit))));
    B.invocations(76);
    C.push_back(B.take());
  }
  {
    CodeletBuilder B("cg/cg.f:617-624", "cg");
    B.pattern("DP: axpy vector updates z and r");
    unsigned Z = B.array("z", Precision::DP, Rows);
    unsigned Q = B.array("q", Precision::DP, Rows);
    B.loops(/*InnerTripCount=*/Rows, /*OuterIterations=*/25);
    B.stmt(storeTo(B.at(Z, StrideClass::Unit),
                   add(B.ld(Z, StrideClass::Unit),
                       mul(constant(Precision::DP),
                           B.ld(Q, StrideClass::Unit)))));
    B.invocations(76);
    C.push_back(B.take());
  }
  {
    CodeletBuilder B("cg/makea.f:570-600", "cg");
    B.pattern("MP: sparse matrix construction (scatter)");
    unsigned A = B.array("a", Precision::DP, Nnz);
    B.loops(Nnz);
    B.stmt(storeTo(B.at(A, StrideClass::Lda, 677),
                   mul(constant(Precision::DP), constant(Precision::DP))));
    B.invocations(2);
    C.push_back(B.take());
  }
  return App;
}

Application makeMg() {
  Application App;
  App.Name = "mg";
  App.Coverage = 0.92;
  auto &C = App.Codelets;
  // CLASS B MG: 256^3 fine grid, 20 V-cycles.
  constexpr std::uint64_t MgPoints = 256ULL * 256 * 256;
  C.push_back(mgLevelKernel("mg/resid.f:46-75", "mg",
                            "DP: residual 27-point stencil", MgPoints, 21,
                            /*Planes=*/3, /*Adds=*/6));
  C.push_back(mgLevelKernel("mg/psinv.f:45-74", "mg",
                            "DP: inverse-smoother 27-point stencil",
                            MgPoints, 20, /*Planes=*/3, /*Adds=*/5));
  C.push_back(mgLevelKernel("mg/rprj3.f:41-72", "mg",
                            "DP: fine-to-coarse restriction", MgPoints / 8,
                            20, /*Planes=*/3, /*Adds=*/7));
  C.push_back(mgLevelKernel("mg/interp.f:48-80", "mg",
                            "DP: coarse-to-fine interpolation", MgPoints / 8,
                            20, /*Planes=*/2, /*Adds=*/4));
  C.push_back(mgLevelKernel("mg/mg.f:190-220", "mg",
                            "DP: V-cycle smoothing sweep", MgPoints, 20,
                            /*Planes=*/3, /*Adds=*/3));
  C.push_back(mgLevelKernel("mg/zero3.f:15-28", "mg",
                            "DP: grid zeroing", MgPoints, 20,
                            /*Planes=*/1, /*Adds=*/0));
  C.push_back(mgLevelKernel("mg/comm3.f:20-45", "mg",
                            "DP: periodic boundary exchange", MgPoints / 16,
                            60, /*Planes=*/1, /*Adds=*/1));
  {
    // norm2u3 runs on the fine grid and at coarse levels alike.
    CodeletBuilder B("mg/norm2u3.f:22-40", "mg");
    B.pattern("DP: grid norm reduction");
    unsigned R = B.array("r", Precision::DP, MgPoints);
    B.loops(MgPoints);
    B.stmt(reduce(BinOp::Add, mul(B.ld(R, StrideClass::Unit),
                                  B.ld(R, StrideClass::Unit))));
    B.invocations(21, 1.0);
    B.invocations(21, 0.125);
    C.push_back(B.take());
  }
  {
    CodeletBuilder B("mg/zran3.f:28-60", "mg");
    B.pattern("DP: pseudo-random grid initialization");
    unsigned Z = B.array("z", Precision::DP, MgPoints);
    B.loops(MgPoints);
    B.stmt(recurrence(B.at(Z, StrideClass::Unit),
                      add(mul(B.ld(Z, StrideClass::Unit),
                              constant(Precision::DP)),
                          constant(Precision::DP))));
    // Noise grids are generated at the fine and a coarse level.
    B.invocations(2, 1.0);
    B.invocations(2, 0.25);
    B.contextSensitiveCompilation();
    C.push_back(B.take());
  }
  return App;
}

Application makeIs() {
  Application App;
  App.Name = "is";
  App.Coverage = 0.92;
  auto &C = App.Codelets;
  // CLASS B IS: 2^23-key working set into 2^21 buckets, 10 ranking
  // iterations (plus a warmup ranking).
  constexpr std::uint64_t Keys = 1ULL << 23;
  constexpr std::uint64_t Buckets = 1ULL << 21;
  {
    CodeletBuilder B("is/is.c:380-410", "is");
    B.pattern("INT: key histogram (scatter increment)");
    unsigned Key = B.array("key_array", Precision::I32, Keys);
    unsigned Hist = B.array("key_buff", Precision::I32, Buckets);
    B.loops(Keys);
    B.stmt(storeTo(B.at(Hist, StrideClass::Lda, 709),
                   add(B.ld(Hist, StrideClass::Lda, 709),
                       mul(B.ld(Key, StrideClass::Unit),
                           constant(Precision::I32)))));
    B.invocations(11);
    C.push_back(B.take());
  }
  {
    CodeletBuilder B("is/is.c:420-440", "is");
    B.pattern("INT: bucket prefix sum");
    unsigned Hist = B.array("key_buff", Precision::I32, Buckets);
    B.loops(Buckets, /*OuterIterations=*/4);
    B.stmt(recurrence(B.at(Hist, StrideClass::Unit),
                      add(B.ld(Hist, StrideClass::Unit),
                          constant(Precision::I32))));
    B.invocations(11);
    C.push_back(B.take());
  }
  {
    CodeletBuilder B("is/is.c:450-480", "is");
    B.pattern("INT: rank permutation gather");
    unsigned Key = B.array("key_array", Precision::I32, Keys);
    unsigned Rank = B.array("rank", Precision::I32, Keys);
    B.loops(Keys);
    B.stmt(storeTo(B.at(Rank, StrideClass::Lda, 733),
                   add(B.ld(Key, StrideClass::Unit),
                       constant(Precision::I32))));
    B.invocations(11);
    C.push_back(B.take());
  }
  {
    CodeletBuilder B("is/is.c:300-330", "is");
    B.pattern("MP: pseudo-random key generation");
    unsigned Key = B.array("key_array", Precision::I32, Keys);
    B.loops(Keys);
    B.stmt(recurrence(B.at(Key, StrideClass::Unit),
                      add(mul(B.ld(Key, StrideClass::Unit),
                              constant(Precision::I32)),
                          constant(Precision::I32))));
    B.invocations(2);
    C.push_back(B.take());
  }
  return App;
}

} // namespace

Suite fgbs::makeNasSer() {
  Suite S;
  S.Name = "NAS SER (CLASS B)";
  S.Applications.push_back(makeBt());
  S.Applications.push_back(makeCg());
  S.Applications.push_back(makeFt());
  S.Applications.push_back(makeIs());
  S.Applications.push_back(makeLu());
  S.Applications.push_back(makeMg());
  S.Applications.push_back(makeSp());
  return S;
}
