//===- fgbs/suites/Suites.h - NR and NAS SER corpora ------------*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two benchmark corpora of the paper's evaluation, rebuilt in the
/// codelet DSL:
///
///  - 28 Numerical Recipes codelets (one per NR benchmark; paper
///    Table 3 documents their computation patterns, strides, precision
///    and vectorization, which these definitions follow);
///
///  - the 7 NAS SER benchmarks (BT, CG, FT, IS, LU, MG, SP) at CLASS-B
///    scale, outlined into 67 codelets with plausible kernel mixtures,
///    footprints and invocation schedules.  CG is dominated by a single
///    sparse-matvec codelet (95% of its runtime) flagged
///    cache-state-sensitive, reproducing the Figure 5 Atom outlier; MG's
///    codelets run at several grid levels per V-cycle, making them
///    ill-behaved under extraction (the paper excludes MG from the
///    per-application subsetting of Figure 8 for exactly this reason).
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_SUITES_SUITES_H
#define FGBS_SUITES_SUITES_H

#include "fgbs/dsl/Codelet.h"

namespace fgbs {

/// The 28 Numerical Recipes codelets (section 4.3, Table 3).  Every NR
/// application contains exactly one codelet and is well-behaved.
Suite makeNumericalRecipes();

/// The 7 NAS SER benchmarks with 67 codelets (section 4.4), CLASS B.
Suite makeNasSer();

} // namespace fgbs

#endif // FGBS_SUITES_SUITES_H
