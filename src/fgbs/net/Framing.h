//===- fgbs/net/Framing.h - fgbs.cachewire.v1 frame protocol ---*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fgbs.cachewire.v1 binary frame protocol spoken between
/// core/RemoteCacheBackend and the fgbs_cached daemon.  One frame per
/// request and one per response, each carried as:
///
///   [0..8)   magic "FGBSCWV1"
///   [8..12)  u32 protocol version (this build: 1)
///   [12..16) u32 opcode
///   [16..24) u64 payload size in bytes
///   [24..28) u32 CRC-32 (IEEE) of the payload
///   [28.. )  payload (little-endian fields via support/BinaryIo)
///
/// — the same header discipline as fgbs.model.v1 snapshots and
/// fgbs.meas.v1 cache entries (magic, version, size, checksum), so a
/// frame damaged in flight is detected before its payload is parsed and
/// a non-FGBS client talking to the port is rejected on the first 8
/// bytes.
///
/// Request payloads (str = u32 length + bytes):
///   Ping        (empty)
///   Exists      str name
///   Get         str name
///   Put         str name, blob = remaining payload bytes
///   Remove      str name
///   Scan        str prefix, str suffix
///   Prune       u64 max-bytes, u64 max-age-seconds
///               [, u64 model-max-bytes, u64 model-max-age-seconds]
///               (the optional pair scopes a second budget to the
///               model/ namespace; absent means "measurement budget
///               only", which is what pre-namespace clients send)
///   LockAcquire str name, u64 owner token, u64 ttl-ms
///   LockRelease str name, u64 owner token
///   ScanPrefix  str prefix
///               -> Ok u32 count, count x { str name, u64 size-bytes,
///                  u64 atime-unix-seconds } — names only, never
///                  payloads, so a registry can enumerate
///                  `model/<name>/...` cheaply.  Namespace routing:
///                  `model/...` walks the model shards, `meas/...` (and
///                  any flat prefix) walks the measurement shards, the
///                  empty prefix walks both.
///
/// Work-distribution requests (the simulation-farm queue; claims are
/// token+TTL leases with the same crash-release semantics as writer
/// leases — an expired claim requeues on the next ClaimWork):
///   EnqueueWork  str name, str spec
///                -> Ok u8 status (0 queued, 1 already queued/claimed,
///                   2 result entry already published)
///   ClaimWork    u64 worker token, u64 ttl-ms, u32 max-items
///                -> Ok u32 count, count x { str name, str spec }
///   Heartbeat    u64 worker token, u64 ttl-ms, u32 count,
///                count x str name
///                -> Ok u32 renewed
///   CompleteWork str name, u64 worker token
///                -> Ok u8 (1 removed from queue, 0 not owner/absent)
///   AbandonWork  str name, u64 worker token
///                -> Ok u8 (1 requeued, 0 not owner/absent/dropped)
///   Stats        (empty)
///                -> Ok u32 shards, shards x { u64 entries, u64 bytes },
///                   u64 hits, u64 misses, u64 leases-granted,
///                   u64 leases-denied, u64 queue-pending,
///                   u64 queue-claimed, u64 farm-enqueued,
///                   u64 farm-claimed, u64 farm-completed,
///                   u64 farm-requeued, u64 farm-heartbeats,
///                   u64 farm-dropped
///                   [, u32 model-shards, model-shards x { u64 entries,
///                   u64 bytes }, u64 model-gets, u64 model-puts,
///                   u64 model-ref-puts, u64 scan-prefixes]
///                   (appended by namespace-aware servers; clients
///                   parse it only when bytes remain, so either side
///                   may predate the other)
///
/// Response opcodes: Ok (payload per request), NotFound (Get of an
/// absent name), Error (str human-readable message).  The connection
/// survives Error responses; it is closed on frame-level damage (bad
/// magic, CRC mismatch), since after those byte-stream sync is lost.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_NET_FRAMING_H
#define FGBS_NET_FRAMING_H

#include "fgbs/net/Socket.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace fgbs {
namespace net {

/// Leading bytes of every cache-wire frame.
inline constexpr char kWireMagic[8] = {'F', 'G', 'B', 'S', 'C', 'W', 'V', '1'};
/// Protocol version this build speaks.
inline constexpr std::uint32_t kWireVersion = 1;
/// Fixed frame header size preceding the payload.
inline constexpr std::size_t kWireHeaderBytes = 28;
/// Hard payload ceiling: a frame announcing more is rejected before
/// anything is allocated (a measurement-cache entry is a few hundred
/// KB; 1 GiB leaves generous headroom without letting a corrupt length
/// field OOM the server).
inline constexpr std::uint64_t kWireMaxPayloadBytes = 1ull << 30;

/// Frame opcodes.  Requests are < 100, responses >= 100.
enum class Opcode : std::uint32_t {
  Ping = 0,
  Exists = 1,
  Get = 2,
  Put = 3,
  Remove = 4,
  Scan = 5,
  Prune = 6,
  LockAcquire = 7,
  LockRelease = 8,
  EnqueueWork = 9,
  ClaimWork = 10,
  Heartbeat = 11,
  CompleteWork = 12,
  AbandonWork = 13,
  Stats = 14,
  ScanPrefix = 15,
  Ok = 100,
  NotFound = 101,
  Error = 102,
};

/// Stable identifier for logs and tests.
const char *opcodeName(Opcode Op);

/// Why a frame could not be read.
enum class WireError {
  None,               ///< A frame arrived intact.
  Closed,             ///< Clean EOF at a frame boundary.
  Io,                 ///< Socket error, or EOF inside a frame.
  Timeout,            ///< The deadline passed first.
  BadMagic,           ///< The peer is not speaking fgbs.cachewire.
  UnsupportedVersion, ///< Protocol version this build does not speak.
  Oversize,           ///< Announced payload exceeds kWireMaxPayloadBytes.
  ChecksumMismatch,   ///< Payload bytes do not match the stored CRC-32.
};

/// Stable identifier for an error (warnings and tests key on it).
const char *wireErrorName(WireError E);

/// One decoded frame.
struct Frame {
  Opcode Op = Opcode::Error;
  std::string Payload;
};

/// Renders a complete frame (header + payload) into bytes.  Exposed so
/// tests can corrupt specific offsets.
std::string encodeFrame(Opcode Op, std::string_view Payload);

/// Sends one frame within \p TimeoutMs.
bool writeFrame(Socket &S, Opcode Op, std::string_view Payload,
                std::uint64_t TimeoutMs);

/// Receives one frame within \p TimeoutMs, validating magic, version,
/// size, and checksum before returning it.
WireError readFrame(Socket &S, Frame &Out, std::uint64_t TimeoutMs);

} // namespace net
} // namespace fgbs

#endif // FGBS_NET_FRAMING_H
