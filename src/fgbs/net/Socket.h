//===- fgbs/net/Socket.h - RAII TCP sockets with deadlines -----*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin RAII wrappers over POSIX stream sockets — the transport under
/// the fgbs.cachewire.v1 frame protocol (net/Framing) and therefore
/// under the remote measurement-cache tier.
///
/// Design rules:
///  - Every blocking operation takes an explicit millisecond deadline
///    and is implemented as poll(2) + a non-blocking syscall, so a dead
///    peer or a stalled network can never wedge a training run; the
///    caller always gets a typed Timeout back within its budget.
///  - Sends use MSG_NOSIGNAL: a peer that vanished mid-write surfaces
///    as an error return, never as SIGPIPE killing the process.
///  - Sockets are move-only fd owners; copying a live fd is a bug the
///    type system rules out.
///
/// Only the client and server of the cache wire protocol use this
/// layer; it depends on nothing above support/.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_NET_SOCKET_H
#define FGBS_NET_SOCKET_H

#include <cstdint>
#include <string>

namespace fgbs {
namespace net {

/// How a bounded receive ended.
enum class RecvStatus {
  Ok,      ///< Every requested byte arrived.
  Eof,     ///< Orderly shutdown before the FIRST requested byte.
  Timeout, ///< The deadline passed mid-transfer.
  Error,   ///< Socket error, or EOF after a partial transfer.
};

/// A connected stream socket (one end of a TCP connection).
class Socket {
public:
  Socket() = default;
  /// Adopts \p Fd (already connected; ownership transfers).
  explicit Socket(int Fd);
  ~Socket();

  Socket(Socket &&Other) noexcept;
  Socket &operator=(Socket &&Other) noexcept;
  Socket(const Socket &) = delete;
  Socket &operator=(const Socket &) = delete;

  bool valid() const { return Fd >= 0; }
  int fd() const { return Fd; }
  void close();

  /// Connects to \p Host:\p Port (numeric address or name, resolved via
  /// getaddrinfo) within \p TimeoutMs.  Returns an invalid socket and
  /// fills \p Error on failure.  The returned socket has TCP_NODELAY
  /// set: cache frames are request/response, so latency beats batching.
  static Socket connectTo(const std::string &Host, std::uint16_t Port,
                          std::uint64_t TimeoutMs, std::string *Error);

  /// Writes all \p Size bytes within \p TimeoutMs.
  bool sendAll(const void *Data, std::size_t Size, std::uint64_t TimeoutMs);

  /// Reads exactly \p Size bytes within \p TimeoutMs.  Eof is reported
  /// only at a clean boundary (zero bytes read so far); a connection
  /// that dies mid-buffer is Error.
  RecvStatus recvAll(void *Data, std::size_t Size, std::uint64_t TimeoutMs);

private:
  int Fd = -1;
};

/// A listening TCP socket handing out accepted connections.
class Listener {
public:
  Listener() = default;
  ~Listener();

  Listener(Listener &&Other) noexcept;
  Listener &operator=(Listener &&Other) noexcept;
  Listener(const Listener &) = delete;
  Listener &operator=(const Listener &) = delete;

  /// Binds \p BindAddr:\p Port (IPv4 dotted quad; empty = all
  /// interfaces; \p Port 0 = kernel-chosen ephemeral port, read it back
  /// via port()) and listens.  SO_REUSEADDR is set so a restarted
  /// daemon rebinds without waiting out TIME_WAIT.
  bool listenOn(const std::string &BindAddr, std::uint16_t Port, int Backlog,
                std::string *Error);

  bool valid() const { return Fd >= 0; }
  /// The locally bound port (resolves 0 to the kernel's choice).
  std::uint16_t port() const { return BoundPort; }
  void close();

  /// Waits up to \p TimeoutMs for one connection; an invalid Socket
  /// means the deadline passed (the server's stop-flag poll interval).
  /// Safe to call from several threads on one listener — the kernel
  /// hands each connection to exactly one accept.
  Socket acceptOnce(std::uint64_t TimeoutMs);

private:
  int Fd = -1;
  std::uint16_t BoundPort = 0;
};

/// Splits "host:port" (the --cache-remote / FGBS_MEAS_CACHE_REMOTE
/// syntax).  False when the port is missing, non-numeric, or out of
/// range; the host may be a name or a numeric address.
bool parseHostPort(const std::string &Spec, std::string &HostOut,
                   std::uint16_t &PortOut);

} // namespace net
} // namespace fgbs

#endif // FGBS_NET_SOCKET_H
