//===- fgbs/net/WorkQueue.h - coordinator work-distribution queue -*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The in-memory work queue behind the EnqueueWork/ClaimWork/Heartbeat/
/// CompleteWork/AbandonWork opcodes.  Each item is keyed by the cache
/// entry name its result will be published under, carries an opaque
/// spec blob the worker needs to reproduce the work, and is claimed
/// under the same token+TTL lease discipline as writer leases: a claim
/// that is not completed or heartbeat-renewed before its TTL expires is
/// silently requeued on the next ClaimWork, so a SIGKILLed worker's
/// items flow back to the survivors without any explicit failure
/// detection.
///
/// The queue is intentionally not persisted: a restarted coordinator
/// comes up empty and is re-taught by the enqueuers, which re-enqueue
/// still-missing items on every poll round (enqueue is idempotent and
/// the result-entry existence check lives in the server, so an item
/// whose result was already published is never queued again).
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_NET_WORKQUEUE_H
#define FGBS_NET_WORKQUEUE_H

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace fgbs {
namespace net {

/// Outcome of an enqueue, reported back over the wire so enqueuers can
/// tell "new work" from "someone is already on it".
enum class EnqueueStatus : std::uint8_t {
  Queued = 0,           ///< Newly added to the pending queue.
  Duplicate = 1,        ///< Already pending or claimed; left untouched.
  AlreadyPublished = 2, ///< Result entry already exists (set by the
                        ///  server, which owns the storage check).
};

/// One claimed work item handed to a worker.
struct ClaimedWork {
  std::string Name; ///< Result cache-entry name (queue key).
  std::string Spec; ///< Opaque spec blob from the enqueuer.
};

/// Monotonic queue counters, served verbatim by the Stats opcode.
struct WorkQueueStats {
  std::uint64_t Pending = 0;    ///< Items awaiting a claim (point-in-time).
  std::uint64_t Claimed = 0;    ///< Items currently claimed (point-in-time).
  std::uint64_t Enqueued = 0;   ///< Total accepted enqueues.
  std::uint64_t ClaimsOut = 0;  ///< Total items handed to workers.
  std::uint64_t Completed = 0;  ///< Total items completed.
  std::uint64_t Requeued = 0;   ///< Total expired/abandoned claims requeued.
  std::uint64_t Heartbeats = 0; ///< Total claim renewals.
  std::uint64_t Dropped = 0;    ///< Items dropped after MaxAttempts claims.
};

/// Thread-safe FIFO work queue with TTL-leased claims.
class WorkQueue {
public:
  /// A claim's TTL is clamped to this ceiling, mirroring writer leases.
  static constexpr std::uint64_t kMaxClaimTtlMs = 2ull * 60 * 60 * 1000;

  /// An item requeued this many times is dropped instead (a poison item
  /// that kills every claimant must not wedge the queue forever); the
  /// enqueuer's next poll round may re-enqueue it fresh.
  explicit WorkQueue(unsigned MaxAttempts = 5) : MaxAttempts(MaxAttempts) {}

  /// Adds \p Name to the pending queue unless it is already tracked.
  EnqueueStatus enqueue(const std::string &Name, const std::string &Spec);

  /// Hands up to \p MaxItems pending items to the worker identified by
  /// \p Token, each leased until \p NowMs + \p TtlMs.  Expired claims
  /// are requeued (or dropped at the attempts cap) first, so crashed
  /// workers' items become claimable here without a reaper thread.
  std::vector<ClaimedWork> claim(std::uint64_t Token, std::uint64_t TtlMs,
                                 std::uint32_t MaxItems, std::uint64_t NowMs);

  /// Renews the lease on every named item still claimed by \p Token.
  /// Returns how many leases were actually renewed.
  std::uint32_t heartbeat(std::uint64_t Token,
                          const std::vector<std::string> &Names,
                          std::uint64_t TtlMs, std::uint64_t NowMs);

  /// Removes \p Name from the queue if \p Token holds its claim.
  bool complete(const std::string &Name, std::uint64_t Token);

  /// Returns \p Name to the pending queue if \p Token holds its claim
  /// (a worker declining an item it cannot execute).  Counts as a
  /// requeue attempt; returns false if the item was dropped instead.
  bool abandon(const std::string &Name, std::uint64_t Token,
               std::uint64_t NowMs);

  /// Point-in-time counters (requeues expired claims first so Pending /
  /// Claimed reflect reality even when no worker is polling).
  WorkQueueStats stats(std::uint64_t NowMs);

private:
  struct Item {
    std::string Spec;
    std::uint64_t Token = 0; ///< 0 = pending, else the claim holder.
    std::uint64_t ExpiresAtMs = 0;
    unsigned Attempts = 0; ///< Times this item has been claimed.
  };

  /// Moves expired claims back to Pending (or drops them at the cap).
  /// Caller holds Mutex.
  void requeueExpiredLocked(std::uint64_t NowMs);

  const unsigned MaxAttempts;
  std::mutex Mutex;
  std::map<std::string, Item> Items;
  std::deque<std::string> Pending;
  WorkQueueStats Counters;
};

} // namespace net
} // namespace fgbs

#endif // FGBS_NET_WORKQUEUE_H
