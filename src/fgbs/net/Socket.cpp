//===- fgbs/net/Socket.cpp - RAII TCP sockets with deadlines --------------===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "fgbs/net/Socket.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace fgbs::net;

namespace {

std::uint64_t nowMs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Milliseconds left before \p Deadline (at least 0).
int remainingMs(std::uint64_t Deadline) {
  std::uint64_t Now = nowMs();
  if (Now >= Deadline)
    return 0;
  std::uint64_t Left = Deadline - Now;
  return Left > 1u << 30 ? 1 << 30 : static_cast<int>(Left);
}

bool setNonBlocking(int Fd, bool NonBlocking) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags < 0)
    return false;
  Flags = NonBlocking ? (Flags | O_NONBLOCK) : (Flags & ~O_NONBLOCK);
  return ::fcntl(Fd, F_SETFL, Flags) == 0;
}

void setNoDelay(int Fd) {
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
}

/// Waits for \p Events on \p Fd until \p Deadline.  1 ready, 0 timeout,
/// -1 error.
int pollUntil(int Fd, short Events, std::uint64_t Deadline) {
  for (;;) {
    struct pollfd P = {Fd, Events, 0};
    int R = ::poll(&P, 1, remainingMs(Deadline));
    if (R > 0)
      return 1;
    if (R == 0)
      return 0;
    if (errno != EINTR)
      return -1;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Socket
//===----------------------------------------------------------------------===//

Socket::Socket(int Fd) : Fd(Fd) {}

Socket::~Socket() { close(); }

Socket::Socket(Socket &&Other) noexcept : Fd(Other.Fd) { Other.Fd = -1; }

Socket &Socket::operator=(Socket &&Other) noexcept {
  if (this != &Other) {
    close();
    Fd = Other.Fd;
    Other.Fd = -1;
  }
  return *this;
}

void Socket::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

Socket Socket::connectTo(const std::string &Host, std::uint16_t Port,
                         std::uint64_t TimeoutMs, std::string *Error) {
  const std::uint64_t Deadline = nowMs() + TimeoutMs;
  struct addrinfo Hints;
  std::memset(&Hints, 0, sizeof(Hints));
  Hints.ai_family = AF_UNSPEC;
  Hints.ai_socktype = SOCK_STREAM;
  struct addrinfo *Addrs = nullptr;
  const std::string PortText = std::to_string(Port);
  int Rc = ::getaddrinfo(Host.c_str(), PortText.c_str(), &Hints, &Addrs);
  if (Rc != 0) {
    if (Error)
      *Error = "cannot resolve '" + Host + "': " + ::gai_strerror(Rc);
    return Socket();
  }

  std::string LastError = "no usable address for '" + Host + "'";
  for (struct addrinfo *A = Addrs; A; A = A->ai_next) {
    int Fd = ::socket(A->ai_family, A->ai_socktype, A->ai_protocol);
    if (Fd < 0) {
      LastError = std::string("socket: ") + std::strerror(errno);
      continue;
    }
    // Non-blocking connect so the deadline holds even against a
    // blackholed address (a blocking connect can take minutes).
    if (!setNonBlocking(Fd, true)) {
      LastError = std::string("fcntl: ") + std::strerror(errno);
      ::close(Fd);
      continue;
    }
    if (::connect(Fd, A->ai_addr, A->ai_addrlen) != 0) {
      if (errno != EINPROGRESS) {
        LastError = std::string("connect: ") + std::strerror(errno);
        ::close(Fd);
        continue;
      }
      int Ready = pollUntil(Fd, POLLOUT, Deadline);
      int SoError = 0;
      socklen_t Len = sizeof(SoError);
      if (Ready <= 0 ||
          ::getsockopt(Fd, SOL_SOCKET, SO_ERROR, &SoError, &Len) != 0 ||
          SoError != 0) {
        LastError = Ready == 0 ? "connect timed out"
                               : std::string("connect: ") +
                                     std::strerror(SoError ? SoError : errno);
        ::close(Fd);
        continue;
      }
    }
    setNonBlocking(Fd, false);
    setNoDelay(Fd);
    ::freeaddrinfo(Addrs);
    return Socket(Fd);
  }
  ::freeaddrinfo(Addrs);
  if (Error)
    *Error = LastError;
  return Socket();
}

bool Socket::sendAll(const void *Data, std::size_t Size,
                     std::uint64_t TimeoutMs) {
  if (Fd < 0)
    return false;
  const std::uint64_t Deadline = nowMs() + TimeoutMs;
  const char *P = static_cast<const char *>(Data);
  while (Size > 0) {
    if (pollUntil(Fd, POLLOUT, Deadline) != 1)
      return false;
    ssize_t N = ::send(Fd, P, Size, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue;
      return false;
    }
    P += N;
    Size -= static_cast<std::size_t>(N);
  }
  return true;
}

RecvStatus Socket::recvAll(void *Data, std::size_t Size,
                           std::uint64_t TimeoutMs) {
  if (Fd < 0)
    return RecvStatus::Error;
  const std::uint64_t Deadline = nowMs() + TimeoutMs;
  char *P = static_cast<char *>(Data);
  std::size_t Got = 0;
  while (Got < Size) {
    if (pollUntil(Fd, POLLIN, Deadline) != 1)
      return RecvStatus::Timeout;
    ssize_t N = ::recv(Fd, P + Got, Size - Got, 0);
    if (N == 0)
      return Got == 0 ? RecvStatus::Eof : RecvStatus::Error;
    if (N < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue;
      return RecvStatus::Error;
    }
    Got += static_cast<std::size_t>(N);
  }
  return RecvStatus::Ok;
}

//===----------------------------------------------------------------------===//
// Listener
//===----------------------------------------------------------------------===//

Listener::~Listener() { close(); }

Listener::Listener(Listener &&Other) noexcept
    : Fd(Other.Fd), BoundPort(Other.BoundPort) {
  Other.Fd = -1;
  Other.BoundPort = 0;
}

Listener &Listener::operator=(Listener &&Other) noexcept {
  if (this != &Other) {
    close();
    Fd = Other.Fd;
    BoundPort = Other.BoundPort;
    Other.Fd = -1;
    Other.BoundPort = 0;
  }
  return *this;
}

void Listener::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool Listener::listenOn(const std::string &BindAddr, std::uint16_t Port,
                        int Backlog, std::string *Error) {
  close();
  int NewFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (NewFd < 0) {
    if (Error)
      *Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int One = 1;
  ::setsockopt(NewFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  struct sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (BindAddr.empty()) {
    Addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, BindAddr.c_str(), &Addr.sin_addr) != 1) {
    if (Error)
      *Error = "invalid bind address '" + BindAddr + "'";
    ::close(NewFd);
    return false;
  }
  if (::bind(NewFd, reinterpret_cast<struct sockaddr *>(&Addr),
             sizeof(Addr)) != 0 ||
      ::listen(NewFd, Backlog) != 0) {
    if (Error)
      *Error = std::string("bind/listen: ") + std::strerror(errno);
    ::close(NewFd);
    return false;
  }

  socklen_t Len = sizeof(Addr);
  if (::getsockname(NewFd, reinterpret_cast<struct sockaddr *>(&Addr),
                    &Len) != 0) {
    if (Error)
      *Error = std::string("getsockname: ") + std::strerror(errno);
    ::close(NewFd);
    return false;
  }
  Fd = NewFd;
  BoundPort = ntohs(Addr.sin_port);
  return true;
}

Socket Listener::acceptOnce(std::uint64_t TimeoutMs) {
  if (Fd < 0)
    return Socket();
  if (pollUntil(Fd, POLLIN, nowMs() + TimeoutMs) != 1)
    return Socket();
  int Conn = ::accept(Fd, nullptr, nullptr);
  if (Conn < 0)
    return Socket();
  setNoDelay(Conn);
  int One = 1;
  ::setsockopt(Conn, SOL_SOCKET, SO_KEEPALIVE, &One, sizeof(One));
  return Socket(Conn);
}

//===----------------------------------------------------------------------===//
// Address parsing
//===----------------------------------------------------------------------===//

bool fgbs::net::parseHostPort(const std::string &Spec, std::string &HostOut,
                              std::uint16_t &PortOut) {
  std::size_t Colon = Spec.rfind(':');
  if (Colon == std::string::npos || Colon == 0 || Colon + 1 == Spec.size())
    return false;
  unsigned long Port = 0;
  for (std::size_t I = Colon + 1; I < Spec.size(); ++I) {
    char C = Spec[I];
    if (C < '0' || C > '9')
      return false;
    Port = Port * 10 + static_cast<unsigned long>(C - '0');
    if (Port > 65535)
      return false;
  }
  if (Port == 0)
    return false;
  HostOut = Spec.substr(0, Colon);
  PortOut = static_cast<std::uint16_t>(Port);
  return true;
}
