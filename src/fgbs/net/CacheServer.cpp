//===- fgbs/net/CacheServer.cpp - Sharded measurement-cache daemon --------===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "fgbs/net/CacheServer.h"

#include "fgbs/core/MeasurementCache.h"
#include "fgbs/obs/Metrics.h"
#include "fgbs/support/BinaryIo.h"
#include "fgbs/support/Crc32.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <filesystem>

using namespace fgbs;
using namespace fgbs::net;
using namespace fgbs::binio;

namespace {

std::uint64_t steadyMs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Stop-flag poll interval for accept and idle-connection waits.
constexpr std::uint64_t kPollSliceMs = 250;

/// Ceiling on client-requested lease TTLs: a buggy client asking for a
/// day still cannot wedge the fleet for more than this.
constexpr std::uint64_t kMaxLeaseTtlMs = 2ull * 60 * 60 * 1000;

bool isHexDigit(char C) {
  return (C >= '0' && C <= '9') || (C >= 'a' && C <= 'f') ||
         (C >= 'A' && C <= 'F');
}

unsigned hexValue(char C) {
  if (C >= '0' && C <= '9')
    return static_cast<unsigned>(C - '0');
  if (C >= 'a' && C <= 'f')
    return static_cast<unsigned>(C - 'a') + 10;
  return static_cast<unsigned>(C - 'A') + 10;
}

} // namespace

namespace {

/// Per-shard slice of a whole-server byte budget.  Ceiling division so
/// a tiny non-zero budget stays non-zero (0 means unbounded, and a
/// 1-byte budget rounding down to "unbounded" would invert its intent).
std::uint64_t perShardBudget(std::uint64_t MaxBytes, unsigned Shards) {
  if (MaxBytes == 0 || Shards == 0)
    return 0;
  return (MaxBytes + Shards - 1) / Shards;
}

} // namespace

bool fgbs::net::isValidEntryName(std::string_view Name) {
  if (Name.empty() || Name.size() > 255)
    return false;
  if (Name == "." || Name == "..")
    return false;
  for (char C : Name)
    if (C == '/' || C == '\\' || C == '\0')
      return false;
  return true;
}

namespace {

/// Namespaced path segments are restricted to one canonical charset so
/// no segment needs escaping and no two wire spellings name one entry.
bool isValidPathSegment(std::string_view Seg) {
  if (Seg.empty() || Seg == "." || Seg == "..")
    return false;
  for (char C : Seg)
    if (!((C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
          (C >= '0' && C <= '9') || C == '.' || C == '_' || C == '-'))
      return false;
  return true;
}

} // namespace

bool fgbs::net::resolveEntryName(std::string_view WireName,
                                 WireNamespace &NsOut,
                                 std::string &StorageOut) {
  if (WireName.empty() || WireName.size() > 255)
    return false;
  // '~' is LocalDirBackend's on-disk '/'-escape; a wire name carrying
  // it could collide with a different entry's encoded file name.
  if (WireName.find('~') != std::string_view::npos)
    return false;
  const std::size_t Slash = WireName.find('/');
  if (Slash == std::string_view::npos) {
    // Historical flat measurement name, validated as ever.
    if (!isValidEntryName(WireName))
      return false;
    NsOut = WireNamespace::Meas;
    StorageOut.assign(WireName);
    return true;
  }
  const std::string_view Ns = WireName.substr(0, Slash);
  const std::string_view Rest = WireName.substr(Slash + 1);
  if (Ns == "meas") {
    // Alias of the flat space: `meas/<entry>` and `<entry>` are one
    // entry, so the flat rules (not the segment charset) apply and the
    // stored name is the flat one.
    if (!isValidEntryName(Rest))
      return false;
    NsOut = WireNamespace::Meas;
    StorageOut.assign(Rest);
    return true;
  }
  if (Ns != "model")
    return false;
  // model/<seg>/<seg>/... — every segment canonical, no empty segment
  // (catches "//" and a trailing '/').
  if (Rest.empty())
    return false;
  std::string_view Tail = Rest;
  while (true) {
    const std::size_t Next = Tail.find('/');
    const std::string_view Seg =
        Next == std::string_view::npos ? Tail : Tail.substr(0, Next);
    if (!isValidPathSegment(Seg))
      return false;
    if (Next == std::string_view::npos)
      break;
    Tail = Tail.substr(Next + 1);
    if (Tail.empty()) // trailing '/'
      return false;
  }
  NsOut = WireNamespace::Model;
  StorageOut.assign(WireName);
  return true;
}

unsigned CacheServer::shardForName(std::string_view Name, unsigned Shards) {
  if (Shards <= 1)
    return 0;
  // Canonical entries ("fgbs-meas-<16 hex>.v1") route on their leading
  // content-hash digits so the key itself names the shard.
  constexpr std::string_view Prefix = "fgbs-meas-";
  constexpr std::string_view Suffix = ".v1";
  if (Name.size() == Prefix.size() + 16 + Suffix.size() &&
      Name.substr(0, Prefix.size()) == Prefix &&
      Name.substr(Name.size() - Suffix.size()) == Suffix) {
    bool AllHex = true;
    std::uint32_t Lead = 0;
    for (std::size_t I = 0; I < 8 && AllHex; ++I) {
      char C = Name[Prefix.size() + I];
      AllHex = isHexDigit(C);
      Lead = (Lead << 4) | hexValue(C);
    }
    if (AllHex)
      return Lead % Shards;
  }
  return crc32(Name) % Shards;
}

unsigned CacheServer::modelShardForName(std::string_view Name,
                                        unsigned Shards) {
  if (Shards <= 1)
    return 0;
  // Content-addressed `.../sha/<hex>` blobs route on their own hash
  // digits, like canonical measurement entries do.
  constexpr std::string_view Marker = "/sha/";
  const std::size_t Pos = Name.rfind(Marker);
  if (Pos != std::string_view::npos) {
    const std::string_view Hex = Name.substr(Pos + Marker.size());
    if (Hex.size() >= 8) {
      bool AllHex = true;
      std::uint32_t Lead = 0;
      for (std::size_t I = 0; I < 8 && AllHex; ++I) {
        AllHex = isHexDigit(Hex[I]);
        Lead = (Lead << 4) | hexValue(Hex[I]);
      }
      if (AllHex)
        return Lead % Shards;
    }
  }
  return crc32(Name) % Shards;
}

CacheServer::CacheServer(CacheServerConfig Config)
    : Config(std::move(Config)) {
  if (this->Config.Shards == 0)
    this->Config.Shards = 1;
  if (this->Config.Threads == 0)
    this->Config.Threads = 4;
}

CacheServer::~CacheServer() { stop(); }

bool CacheServer::start(std::string *Error) {
  if (Running.load(std::memory_order_acquire))
    return true;
  if (Config.Root.empty()) {
    if (Error)
      *Error = "cache server needs a root directory";
    return false;
  }
  if (!Listen.listenOn(Config.BindAddr, Config.Port, /*Backlog=*/64, Error))
    return false;

  ShardBackends.clear();
  ModelShardBackends.clear();
  for (unsigned I = 0; I < Config.Shards; ++I) {
    char Leaf[32];
    std::snprintf(Leaf, sizeof(Leaf), "shard-%02u", I);
    ShardBackends.push_back(std::make_unique<LocalDirBackend>(
        (std::filesystem::path(Config.Root) / Leaf).string()));
    // Model artifacts live in their own directories so namespace
    // budgets and prune policy never interleave with measurements.
    std::snprintf(Leaf, sizeof(Leaf), "model-shard-%02u", I);
    ModelShardBackends.push_back(std::make_unique<LocalDirBackend>(
        (std::filesystem::path(Config.Root) / Leaf).string()));
  }

  StopFlag.store(false, std::memory_order_release);
  Running.store(true, std::memory_order_release);
  ServeThread = std::thread([this] { serveLoop(); });
  return true;
}

void CacheServer::stop() {
  StopFlag.store(true, std::memory_order_release);
  if (ServeThread.joinable())
    ServeThread.join();
  Listen.close();
  Running.store(false, std::memory_order_release);
}

void CacheServer::serveLoop() {
  // The pool's parallelFor distributes worker indices; every index runs
  // an accept loop until the stop flag drains them all.  The serving
  // thread participates, so Threads is the true concurrency.
  ThreadPool Pool(Config.Threads);
  Pool.parallelFor(0, Config.Threads, [this](std::size_t) { acceptLoop(); });
}

void CacheServer::acceptLoop() {
  while (!StopFlag.load(std::memory_order_acquire)) {
    Socket Conn = Listen.acceptOnce(kPollSliceMs);
    if (Conn.valid())
      serveConnection(std::move(Conn));
  }
}

void CacheServer::serveConnection(Socket Conn) {
  FGBS_COUNTER_ADD("cachesrv.connections", 1);
  std::uint64_t IdleDeadline = steadyMs() + Config.IdleTimeoutMs;
  while (!StopFlag.load(std::memory_order_acquire)) {
    Frame Request;
    WireError E = readFrame(Conn, Request, kPollSliceMs);
    if (E == WireError::Timeout) {
      if (steadyMs() >= IdleDeadline)
        return; // Idle too long; the client can reconnect.
      continue;
    }
    if (E == WireError::Closed)
      return;
    if (E != WireError::None) {
      // Frame-level damage loses byte-stream sync: answer what we can
      // and drop the connection.
      FGBS_COUNTER_ADD("cachesrv.errors", 1);
      std::string Msg;
      putStr(Msg, std::string("bad frame: ") + wireErrorName(E));
      respond(Conn, Opcode::Error, Msg);
      return;
    }
    FGBS_COUNTER_ADD("cachesrv.requests", 1);
    FGBS_COUNTER_ADD("cachesrv.bytes_in",
                     kWireHeaderBytes + Request.Payload.size());
    if (!handleFrame(Conn, Request))
      return;
    IdleDeadline = steadyMs() + Config.IdleTimeoutMs;
  }
}

bool CacheServer::respond(Socket &Conn, Opcode Op, std::string_view Payload) {
  FGBS_COUNTER_ADD("cachesrv.bytes_out", kWireHeaderBytes + Payload.size());
  return writeFrame(Conn, Op, Payload, Config.IoTimeoutMs);
}

bool CacheServer::respondError(Socket &Conn, const std::string &Message) {
  FGBS_COUNTER_ADD("cachesrv.errors", 1);
  std::string Payload;
  putStr(Payload, Message);
  return respond(Conn, Opcode::Error, Payload);
}

CacheBackend &CacheServer::backendFor(bool Model, const std::string &Storage) {
  if (Model)
    return *ModelShardBackends[modelShardForName(Storage, shards())];
  return *ShardBackends[shardForName(Storage, shards())];
}

void CacheServer::pruneShard(unsigned Shard) {
  // Reuse the whole PR 5 lifecycle (manifest, LRU, age) per shard; the
  // byte budget is split evenly because the content hash spreads
  // entries uniformly.
  MeasurementCache Shardwise(
      std::make_unique<LocalDirBackend>(ShardBackends[Shard]->dir()));
  Shardwise.prune(perShardBudget(Config.MaxBytes, shards()),
                  Config.MaxAgeSeconds);
}

CachePruneCounters CacheServer::pruneModelShard(unsigned Shard,
                                                std::uint64_t MaxBytes,
                                                std::uint64_t MaxAgeSeconds) {
  // The measurement manifest machinery only adopts fgbs-meas-* names,
  // so the model namespace gets its own (simpler) lifecycle: LRU by
  // storage mtime plus an age cutoff, over `sha/` blobs only.  Refs are
  // tiny and namable — pruning one would silently unpin a tag, whereas
  // pruning a snapshot produces the explicit dangling-ref condition the
  // registry client knows how to report.
  CachePruneCounters Out;
  LocalDirBackend &Backend = *ModelShardBackends[Shard];
  std::vector<CacheEntry> Blobs;
  for (CacheEntry &E : Backend.scan("model/", "")) {
    if (E.Name.find("/sha/") == std::string::npos)
      continue;
    Out.Entries += 1;
    Out.BytesBefore += E.SizeBytes;
    Blobs.push_back(std::move(E));
  }
  Out.BytesAfter = Out.BytesBefore;
  std::sort(Blobs.begin(), Blobs.end(),
            [](const CacheEntry &A, const CacheEntry &B) {
              return A.AccessUnixSeconds < B.AccessUnixSeconds;
            });
  const std::int64_t Now = static_cast<std::int64_t>(std::time(nullptr));
  const std::uint64_t Budget = perShardBudget(MaxBytes, shards());
  for (const CacheEntry &E : Blobs) {
    const bool OverAge =
        MaxAgeSeconds && Now - E.AccessUnixSeconds >
                             static_cast<std::int64_t>(MaxAgeSeconds);
    const bool OverBytes = Budget && Out.BytesAfter > Budget;
    if (!OverAge && !OverBytes)
      continue;
    if (!Backend.remove(E.Name))
      continue;
    Out.Removed += 1;
    Out.BytesAfter -= E.SizeBytes;
  }
  return Out;
}

void CacheServer::pruneAllShards() {
  if (Config.MaxBytes || Config.MaxAgeSeconds)
    for (unsigned I = 0; I < shards(); ++I)
      pruneShard(I);
  if (Config.ModelMaxBytes || Config.ModelMaxAgeSeconds)
    for (unsigned I = 0; I < shards(); ++I)
      pruneModelShard(I, Config.ModelMaxBytes, Config.ModelMaxAgeSeconds);
}

bool CacheServer::leaseAcquire(const std::string &Name, std::uint64_t Token,
                               std::uint64_t TtlMs) {
  TtlMs = std::min(TtlMs, kMaxLeaseTtlMs);
  const std::uint64_t Now = steadyMs();
  std::lock_guard<std::mutex> Guard(LeaseMutex);
  auto It = Leases.find(Name);
  if (It != Leases.end() && It->second.ExpiresAtMs > Now &&
      It->second.Token != Token)
    return false;
  Leases[Name] = {Token, Now + TtlMs};
  return true;
}

bool CacheServer::leaseRelease(const std::string &Name, std::uint64_t Token) {
  std::lock_guard<std::mutex> Guard(LeaseMutex);
  auto It = Leases.find(Name);
  if (It == Leases.end() || It->second.Token != Token)
    return false;
  Leases.erase(It);
  return true;
}

bool CacheServer::handleFrame(Socket &Conn, const Frame &Request) {
  ByteReader In(Request.Payload);
  switch (Request.Op) {
  case Opcode::Ping: {
    std::string Out;
    putStr(Out, "fgbs.cachewire.v1");
    putU32(Out, shards());
    return respond(Conn, Opcode::Ok, Out);
  }

  case Opcode::Exists: {
    std::string Name = In.str();
    WireNamespace Ns;
    std::string Storage;
    if (In.overrun() || !resolveEntryName(Name, Ns, Storage))
      return respondError(Conn, "exists: bad name");
    const bool Model = Ns == WireNamespace::Model;
    std::string Out;
    Out.push_back(backendFor(Model, Storage).exists(Storage) ? 1 : 0);
    return respond(Conn, Opcode::Ok, Out);
  }

  case Opcode::Get: {
    std::string Name = In.str();
    WireNamespace Ns;
    std::string Storage;
    if (In.overrun() || !resolveEntryName(Name, Ns, Storage))
      return respondError(Conn, "get: bad name");
    const bool Model = Ns == WireNamespace::Model;
    std::string Bytes;
    if (!backendFor(Model, Storage).get(Storage, Bytes)) {
      FGBS_COUNTER_ADD("cachesrv.get.misses", 1);
      StatMisses.fetch_add(1, std::memory_order_relaxed);
      return respond(Conn, Opcode::NotFound, {});
    }
    FGBS_COUNTER_ADD("cachesrv.get.hits", 1);
    StatHits.fetch_add(1, std::memory_order_relaxed);
    if (Model)
      StatModelGets.fetch_add(1, std::memory_order_relaxed);
    return respond(Conn, Opcode::Ok, Bytes);
  }

  case Opcode::Put: {
    std::string Name = In.str();
    WireNamespace Ns;
    std::string Storage;
    if (In.overrun() || !resolveEntryName(Name, Ns, Storage))
      return respondError(Conn, "put: bad name");
    const bool Model = Ns == WireNamespace::Model;
    // The blob is the rest of the payload, unframed — no second length
    // field to disagree with the frame's.
    std::string_view Blob =
        std::string_view(Request.Payload).substr(4 + Name.size());
    if (!backendFor(Model, Storage).put(Storage, Blob))
      return respondError(Conn, "put: cannot publish '" + Name + "'");
    FGBS_COUNTER_ADD("cachesrv.puts", 1);
    if (Model) {
      StatModelPuts.fetch_add(1, std::memory_order_relaxed);
      if (Storage.find("/ref/") != std::string::npos)
        StatModelRefPuts.fetch_add(1, std::memory_order_relaxed);
      if (Config.ModelMaxBytes || Config.ModelMaxAgeSeconds)
        pruneModelShard(modelShardForName(Storage, shards()),
                        Config.ModelMaxBytes, Config.ModelMaxAgeSeconds);
    } else if (Config.MaxBytes || Config.MaxAgeSeconds) {
      pruneShard(shardForName(Storage, shards()));
    }
    return respond(Conn, Opcode::Ok, {});
  }

  case Opcode::Remove: {
    std::string Name = In.str();
    WireNamespace Ns;
    std::string Storage;
    if (In.overrun() || !resolveEntryName(Name, Ns, Storage))
      return respondError(Conn, "remove: bad name");
    const bool Model = Ns == WireNamespace::Model;
    std::string Out;
    Out.push_back(backendFor(Model, Storage).remove(Storage) ? 1 : 0);
    return respond(Conn, Opcode::Ok, Out);
  }

  case Opcode::Scan: {
    std::string Prefix = In.str();
    std::string Suffix = In.str();
    if (In.overrun())
      return respondError(Conn, "scan: damaged filters");
    std::vector<CacheEntry> All;
    for (const auto &Shard : ShardBackends) {
      std::vector<CacheEntry> Part = Shard->scan(Prefix, Suffix);
      All.insert(All.end(), std::make_move_iterator(Part.begin()),
                 std::make_move_iterator(Part.end()));
    }
    std::string Out;
    putU32(Out, static_cast<std::uint32_t>(All.size()));
    for (const CacheEntry &E : All) {
      putStr(Out, E.Name);
      putU64(Out, E.SizeBytes);
      putU64(Out, static_cast<std::uint64_t>(E.AccessUnixSeconds));
    }
    return respond(Conn, Opcode::Ok, Out);
  }

  case Opcode::Prune: {
    std::uint64_t MaxBytes = In.u64();
    std::uint64_t MaxAgeSeconds = In.u64();
    if (In.overrun())
      return respondError(Conn, "prune: damaged budgets");
    // Namespace-aware clients append a second budget pair for model/;
    // its absence means "measurements only", which is exactly what a
    // pre-namespace client asks for.
    std::uint64_t ModelMaxBytes = 0, ModelMaxAgeSeconds = 0;
    bool PruneModels = false;
    if (In.remaining() >= 16) {
      ModelMaxBytes = In.u64();
      ModelMaxAgeSeconds = In.u64();
      if (In.overrun() || !In.atEnd())
        return respondError(Conn, "prune: damaged budgets");
      PruneModels = true;
    }
    CachePruneStats Total;
    for (unsigned I = 0; I < shards(); ++I) {
      MeasurementCache Shardwise(
          std::make_unique<LocalDirBackend>(ShardBackends[I]->dir()));
      CachePruneStats S =
          Shardwise.prune(perShardBudget(MaxBytes, shards()), MaxAgeSeconds);
      Total.Entries += S.Entries;
      Total.Removed += S.Removed;
      Total.BytesBefore += S.BytesBefore;
      Total.BytesAfter += S.BytesAfter;
    }
    if (PruneModels && (ModelMaxBytes || ModelMaxAgeSeconds))
      for (unsigned I = 0; I < shards(); ++I) {
        CachePruneCounters S =
            pruneModelShard(I, ModelMaxBytes, ModelMaxAgeSeconds);
        Total.Entries += S.Entries;
        Total.Removed += S.Removed;
        Total.BytesBefore += S.BytesBefore;
        Total.BytesAfter += S.BytesAfter;
      }
    std::string Out;
    putU64(Out, Total.Entries);
    putU64(Out, Total.Removed);
    putU64(Out, Total.BytesBefore);
    putU64(Out, Total.BytesAfter);
    return respond(Conn, Opcode::Ok, Out);
  }

  case Opcode::ScanPrefix: {
    std::string Prefix = In.str();
    if (In.overrun() || !In.atEnd())
      return respondError(Conn, "scan_prefix: damaged prefix");
    StatScanPrefixes.fetch_add(1, std::memory_order_relaxed);
    // Route the walk by the prefix's namespace so a model enumeration
    // never pays for a measurement-shard directory walk (and vice
    // versa); the empty prefix means "everything", both spaces.
    const bool WantModel =
        Prefix.empty() || std::string_view(Prefix).substr(0, 6) == "model/";
    const bool WantMeas = !WantModel || Prefix.empty();
    std::vector<CacheEntry> All;
    if (WantMeas) {
      // `meas/<p>` filters the flat space by `<p>` but reports the
      // spelling the client asked in, so returned names feed straight
      // back into Get.
      std::string Flat = Prefix;
      std::string Respell;
      if (std::string_view(Prefix).substr(0, 5) == "meas/") {
        Flat = Prefix.substr(5);
        Respell = "meas/";
      }
      for (const auto &Shard : ShardBackends)
        for (CacheEntry &E : Shard->scan(Flat, "")) {
          E.Name = Respell + E.Name;
          All.push_back(std::move(E));
        }
    }
    if (WantModel)
      for (const auto &Shard : ModelShardBackends)
        for (CacheEntry &E : Shard->scan(Prefix.empty() ? "model/" : Prefix,
                                         ""))
          All.push_back(std::move(E));
    std::string Out;
    putU32(Out, static_cast<std::uint32_t>(All.size()));
    for (const CacheEntry &E : All) {
      putStr(Out, E.Name);
      putU64(Out, E.SizeBytes);
      putU64(Out, static_cast<std::uint64_t>(E.AccessUnixSeconds));
    }
    return respond(Conn, Opcode::Ok, Out);
  }

  case Opcode::LockAcquire: {
    std::string Name = In.str();
    std::uint64_t Token = In.u64();
    std::uint64_t TtlMs = In.u64();
    WireNamespace Ns;
    std::string Storage;
    if (In.overrun() || !resolveEntryName(Name, Ns, Storage) || Token == 0 ||
        TtlMs == 0)
      return respondError(Conn, "lock_acquire: bad lease request");
    // Leases key on the storage name so an entry's alias spellings
    // (`x` and `meas/x`) elect one writer, not two.
    bool Granted = leaseAcquire(Storage, Token, TtlMs);
    if (Granted) {
      FGBS_COUNTER_ADD("cachesrv.lock.granted", 1);
      StatLeasesGranted.fetch_add(1, std::memory_order_relaxed);
    } else {
      FGBS_COUNTER_ADD("cachesrv.lock.denied", 1);
      StatLeasesDenied.fetch_add(1, std::memory_order_relaxed);
    }
    std::string Out;
    Out.push_back(Granted ? 1 : 0);
    return respond(Conn, Opcode::Ok, Out);
  }

  case Opcode::LockRelease: {
    std::string Name = In.str();
    std::uint64_t Token = In.u64();
    WireNamespace Ns;
    std::string Storage;
    if (In.overrun() || !resolveEntryName(Name, Ns, Storage) || Token == 0)
      return respondError(Conn, "lock_release: bad lease request");
    std::string Out;
    Out.push_back(leaseRelease(Storage, Token) ? 1 : 0);
    return respond(Conn, Opcode::Ok, Out);
  }

  case Opcode::EnqueueWork: {
    std::string Name = In.str();
    std::string Spec = In.str();
    if (In.overrun() || !isValidEntryName(Name))
      return respondError(Conn, "enqueue_work: bad item");
    EnqueueStatus Status;
    // Work whose result was already published must never queue again:
    // the storage check lives here, next to the shards, so the queue
    // itself stays a pure data structure.
    if (backendFor(/*Model=*/false, Name).exists(Name)) {
      Status = EnqueueStatus::AlreadyPublished;
    } else {
      Status = Farm.enqueue(Name, Spec);
      if (Status == EnqueueStatus::Queued)
        FGBS_COUNTER_ADD("farm.enqueued", 1);
    }
    std::string Out;
    Out.push_back(static_cast<char>(Status));
    return respond(Conn, Opcode::Ok, Out);
  }

  case Opcode::ClaimWork: {
    std::uint64_t Token = In.u64();
    std::uint64_t TtlMs = In.u64();
    std::uint32_t MaxItems = In.u32();
    if (In.overrun() || Token == 0 || TtlMs == 0)
      return respondError(Conn, "claim_work: bad claim request");
    std::vector<ClaimedWork> Granted =
        Farm.claim(Token, TtlMs, std::min<std::uint32_t>(MaxItems, 256),
                   steadyMs());
    FGBS_COUNTER_ADD("farm.claimed", Granted.size());
    std::string Out;
    putU32(Out, static_cast<std::uint32_t>(Granted.size()));
    for (const ClaimedWork &W : Granted) {
      putStr(Out, W.Name);
      putStr(Out, W.Spec);
    }
    return respond(Conn, Opcode::Ok, Out);
  }

  case Opcode::Heartbeat: {
    std::uint64_t Token = In.u64();
    std::uint64_t TtlMs = In.u64();
    std::uint32_t Count = In.u32();
    std::vector<std::string> Names;
    for (std::uint32_t I = 0; I < Count && !In.overrun(); ++I)
      Names.push_back(In.str());
    if (In.overrun() || Token == 0 || TtlMs == 0 ||
        Names.size() != Count)
      return respondError(Conn, "heartbeat: bad renewal request");
    std::uint32_t Renewed = Farm.heartbeat(Token, Names, TtlMs, steadyMs());
    FGBS_COUNTER_ADD("farm.heartbeats", Renewed);
    std::string Out;
    putU32(Out, Renewed);
    return respond(Conn, Opcode::Ok, Out);
  }

  case Opcode::CompleteWork: {
    std::string Name = In.str();
    std::uint64_t Token = In.u64();
    if (In.overrun() || !isValidEntryName(Name) || Token == 0)
      return respondError(Conn, "complete_work: bad completion");
    bool Removed = Farm.complete(Name, Token);
    if (Removed)
      FGBS_COUNTER_ADD("farm.completed", 1);
    std::string Out;
    Out.push_back(Removed ? 1 : 0);
    return respond(Conn, Opcode::Ok, Out);
  }

  case Opcode::AbandonWork: {
    std::string Name = In.str();
    std::uint64_t Token = In.u64();
    if (In.overrun() || !isValidEntryName(Name) || Token == 0)
      return respondError(Conn, "abandon_work: bad abandon");
    bool Requeued = Farm.abandon(Name, Token, steadyMs());
    if (Requeued)
      FGBS_COUNTER_ADD("farm.requeued", 1);
    std::string Out;
    Out.push_back(Requeued ? 1 : 0);
    return respond(Conn, Opcode::Ok, Out);
  }

  case Opcode::Stats: {
    if (!Request.Payload.empty())
      return respondError(Conn, "stats: unexpected payload");
    std::string Out;
    putU32(Out, shards());
    for (const auto &Shard : ShardBackends) {
      std::uint64_t Entries = 0, Bytes = 0;
      for (const CacheEntry &E : Shard->scan("", "")) {
        ++Entries;
        Bytes += E.SizeBytes;
      }
      putU64(Out, Entries);
      putU64(Out, Bytes);
    }
    putU64(Out, StatHits.load(std::memory_order_relaxed));
    putU64(Out, StatMisses.load(std::memory_order_relaxed));
    putU64(Out, StatLeasesGranted.load(std::memory_order_relaxed));
    putU64(Out, StatLeasesDenied.load(std::memory_order_relaxed));
    WorkQueueStats Q = Farm.stats(steadyMs());
    putU64(Out, Q.Pending);
    putU64(Out, Q.Claimed);
    putU64(Out, Q.Enqueued);
    putU64(Out, Q.ClaimsOut);
    putU64(Out, Q.Completed);
    putU64(Out, Q.Requeued);
    putU64(Out, Q.Heartbeats);
    putU64(Out, Q.Dropped);
    // Namespace extension: appended after the pre-namespace layout so
    // old clients (which stop reading here) still parse the response.
    putU32(Out, shards());
    for (const auto &Shard : ModelShardBackends) {
      std::uint64_t Entries = 0, Bytes = 0;
      for (const CacheEntry &E : Shard->scan("", "")) {
        ++Entries;
        Bytes += E.SizeBytes;
      }
      putU64(Out, Entries);
      putU64(Out, Bytes);
    }
    putU64(Out, StatModelGets.load(std::memory_order_relaxed));
    putU64(Out, StatModelPuts.load(std::memory_order_relaxed));
    putU64(Out, StatModelRefPuts.load(std::memory_order_relaxed));
    putU64(Out, StatScanPrefixes.load(std::memory_order_relaxed));
    return respond(Conn, Opcode::Ok, Out);
  }

  case Opcode::Ok:
  case Opcode::NotFound:
  case Opcode::Error:
    break;
  }
  return respondError(Conn, std::string("unsupported opcode ") +
                                opcodeName(Request.Op));
}
