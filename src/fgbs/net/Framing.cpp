//===- fgbs/net/Framing.cpp - fgbs.cachewire.v1 frame protocol ------------===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "fgbs/net/Framing.h"

#include "fgbs/support/BinaryIo.h"
#include "fgbs/support/Crc32.h"

#include <cstring>

using namespace fgbs;
using namespace fgbs::net;

const char *fgbs::net::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Ping:
    return "ping";
  case Opcode::Exists:
    return "exists";
  case Opcode::Get:
    return "get";
  case Opcode::Put:
    return "put";
  case Opcode::Remove:
    return "remove";
  case Opcode::Scan:
    return "scan";
  case Opcode::Prune:
    return "prune";
  case Opcode::LockAcquire:
    return "lock_acquire";
  case Opcode::LockRelease:
    return "lock_release";
  case Opcode::EnqueueWork:
    return "enqueue_work";
  case Opcode::ClaimWork:
    return "claim_work";
  case Opcode::Heartbeat:
    return "heartbeat";
  case Opcode::CompleteWork:
    return "complete_work";
  case Opcode::AbandonWork:
    return "abandon_work";
  case Opcode::Stats:
    return "stats";
  case Opcode::ScanPrefix:
    return "scan_prefix";
  case Opcode::Ok:
    return "ok";
  case Opcode::NotFound:
    return "not_found";
  case Opcode::Error:
    return "error";
  }
  return "unknown";
}

const char *fgbs::net::wireErrorName(WireError E) {
  switch (E) {
  case WireError::None:
    return "none";
  case WireError::Closed:
    return "closed";
  case WireError::Io:
    return "io";
  case WireError::Timeout:
    return "timeout";
  case WireError::BadMagic:
    return "bad_magic";
  case WireError::UnsupportedVersion:
    return "unsupported_version";
  case WireError::Oversize:
    return "oversize";
  case WireError::ChecksumMismatch:
    return "checksum_mismatch";
  }
  return "unknown";
}

std::string fgbs::net::encodeFrame(Opcode Op, std::string_view Payload) {
  std::string Out;
  Out.reserve(kWireHeaderBytes + Payload.size());
  Out.append(kWireMagic, sizeof(kWireMagic));
  binio::putU32(Out, kWireVersion);
  binio::putU32(Out, static_cast<std::uint32_t>(Op));
  binio::putU64(Out, Payload.size());
  binio::putU32(Out, crc32(Payload));
  Out.append(Payload);
  return Out;
}

bool fgbs::net::writeFrame(Socket &S, Opcode Op, std::string_view Payload,
                           std::uint64_t TimeoutMs) {
  std::string Bytes = encodeFrame(Op, Payload);
  return S.sendAll(Bytes.data(), Bytes.size(), TimeoutMs);
}

WireError fgbs::net::readFrame(Socket &S, Frame &Out,
                               std::uint64_t TimeoutMs) {
  char Header[kWireHeaderBytes];
  switch (S.recvAll(Header, sizeof(Header), TimeoutMs)) {
  case RecvStatus::Ok:
    break;
  case RecvStatus::Eof:
    return WireError::Closed;
  case RecvStatus::Timeout:
    return WireError::Timeout;
  case RecvStatus::Error:
    return WireError::Io;
  }
  if (std::memcmp(Header, kWireMagic, sizeof(kWireMagic)) != 0)
    return WireError::BadMagic;

  binio::ByteReader In(std::string_view(Header + sizeof(kWireMagic),
                                        sizeof(Header) -
                                            sizeof(kWireMagic)));
  std::uint32_t Version = In.u32();
  std::uint32_t OpRaw = In.u32();
  std::uint64_t PayloadSize = In.u64();
  std::uint32_t Crc = In.u32();
  if (Version != kWireVersion)
    return WireError::UnsupportedVersion;
  if (PayloadSize > kWireMaxPayloadBytes)
    return WireError::Oversize;

  std::string Payload(PayloadSize, '\0');
  if (PayloadSize > 0) {
    switch (S.recvAll(Payload.data(), Payload.size(), TimeoutMs)) {
    case RecvStatus::Ok:
      break;
    case RecvStatus::Timeout:
      return WireError::Timeout;
    case RecvStatus::Eof:
    case RecvStatus::Error:
      return WireError::Io;
    }
  }
  if (crc32(Payload) != Crc)
    return WireError::ChecksumMismatch;

  Out.Op = static_cast<Opcode>(OpRaw);
  Out.Payload = std::move(Payload);
  return WireError::None;
}
