//===- fgbs/net/CacheServer.h - Sharded measurement-cache daemon *- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The server half of the remote measurement-cache tier: a
/// ThreadPool-backed TCP daemon speaking fgbs.cachewire.v1 (net/Framing)
/// over N shard directories, each shard a plain core/LocalDirBackend so
/// PR 5's atomic-publish, manifest, and eviction machinery is reused
/// verbatim.  Shipped as tools/fgbs_cached.
///
/// Shard addressing is by content-hash prefix: an entry name of the
/// canonical "fgbs-meas-<16 hex>.v1" shape routes on its leading hash
/// digits, anything else on a CRC-32 of the whole name — so one key
/// always lands on one shard and shard counts only need to agree
/// per-server, never per-client (clients address the server, not the
/// shards).
///
/// Namespaces: wire names without '/' are the historical flat
/// measurement space; `meas/<entry>` is an alias for that same space
/// (one entry, two spellings), and `model/<name>/...` is a separate set
/// of model shard directories with its own byte/age budgets — model
/// snapshots are large and long-lived, and must not be evicted by
/// measurement churn (nor crowd measurements out).  Within the model
/// namespace only `.../sha/<hex>` blobs are budget-pruned; tiny
/// `.../ref/<tag>` blobs are never touched by the pruner, so a dangling
/// ref means "the snapshot aged out", a condition the registry client
/// reports distinctly.
///
/// Writer coordination across the fleet uses token leases, not file
/// locks: LockAcquire(name, token, ttl) grants when the name is free or
/// already owned by that token (renewal), and a lease silently expires
/// TTL milliseconds after its last grant — a crashed client can delay
/// the fleet by at most one TTL, and no connection needs to stay open
/// while a lease holder simulates.  This is the flock story of
/// support/FileLock translated to a stateless wire: the token plays the
/// pid, the TTL plays StaleAfterMs, renewal plays heartbeat().
///
/// Concurrency model: Threads workers (support/ThreadPool) each loop
/// accept -> serve-connection-to-idle -> accept.  Connections are
/// cheap, short-lived, and never pinned by leases, so a small pool
/// serves a large fleet; the kernel backlog absorbs bursts.
///
/// Work distribution: the server doubles as the simulation-farm
/// coordinator.  EnqueueWork/ClaimWork/Heartbeat/CompleteWork/
/// AbandonWork drive an in-memory net/WorkQueue whose claims are
/// token+TTL leases with the same crash-release story as writer leases;
/// an enqueue of work whose result entry already exists in a shard is
/// answered AlreadyPublished and never queued, so re-enqueuing every
/// still-missing item each poll round is both idempotent and the
/// recovery protocol for a restarted (empty-queue) coordinator.
///
/// Telemetry: cachesrv.{requests,bytes_in,bytes_out,errors,connections}
/// plus cachesrv.get.{hits,misses}, cachesrv.lock.{granted,denied}, and
/// farm.{enqueued,claimed,completed,requeued,heartbeats}.  The Stats
/// opcode reports from server-local atomics (always on, independent of
/// FGBS_TELEMETRY) plus live shard scans and queue depths.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_NET_CACHESERVER_H
#define FGBS_NET_CACHESERVER_H

#include "fgbs/core/CacheBackend.h"
#include "fgbs/net/Framing.h"
#include "fgbs/net/Socket.h"
#include "fgbs/net/WorkQueue.h"
#include "fgbs/support/ThreadPool.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace fgbs {
namespace net {

/// How a CacheServer runs.
struct CacheServerConfig {
  /// Directory the shard subdirectories (shard-00, shard-01, ...) live
  /// under; created on start().
  std::string Root;
  /// Shard directory count (>= 1).
  unsigned Shards = 4;
  /// Worker threads serving connections (0 = 4).
  unsigned Threads = 0;
  /// IPv4 bind address; empty = all interfaces.
  std::string BindAddr;
  /// TCP port; 0 = kernel-chosen ephemeral (read back via port()).
  std::uint16_t Port = 0;
  /// Per-shard lifecycle budgets, enforced by pruning a shard after
  /// each store into it and by the Prune opcode (0 = unbounded).  The
  /// byte budget is the whole server's; each shard gets an equal split.
  std::uint64_t MaxBytes = 0;
  std::uint64_t MaxAgeSeconds = 0;
  /// Same, scoped to the model/ namespace (its shard set is pruned
  /// independently; only sha blobs count, refs are never pruned).
  std::uint64_t ModelMaxBytes = 0;
  std::uint64_t ModelMaxAgeSeconds = 0;
  /// A connection with no complete frame for this long is closed (it
  /// can simply reconnect; leases survive, they are TTL-based).
  std::uint64_t IdleTimeoutMs = 30000;
  /// Deadline for each single frame send/receive once started.
  std::uint64_t IoTimeoutMs = 10000;
};

/// pruneModelShard's tally (mirrors core CachePruneStats without
/// pulling MeasurementCache.h into this header).
struct CachePruneCounters {
  std::uint64_t Entries = 0;
  std::uint64_t Removed = 0;
  std::uint64_t BytesBefore = 0;
  std::uint64_t BytesAfter = 0;
};

/// The daemon: start() binds and serves in background threads until
/// stop() (or destruction).
class CacheServer {
public:
  explicit CacheServer(CacheServerConfig Config);
  ~CacheServer();

  CacheServer(const CacheServer &) = delete;
  CacheServer &operator=(const CacheServer &) = delete;

  /// Binds, creates the shard directories, and spawns the worker pool.
  bool start(std::string *Error);

  /// Stops accepting, drains in-flight connections, joins the workers.
  /// Idempotent.
  void stop();

  bool running() const { return Running.load(std::memory_order_acquire); }

  /// The bound port (valid after start(); resolves Port = 0).
  std::uint16_t port() const { return Listen.port(); }

  unsigned shards() const {
    return static_cast<unsigned>(ShardBackends.size());
  }

  const std::string &root() const { return Config.Root; }

  /// Which shard \p Name routes to: the leading 8 hex digits of a
  /// canonical "fgbs-meas-<16 hex>.v1" entry name, else CRC-32 of the
  /// whole name, reduced modulo \p Shards.
  static unsigned shardForName(std::string_view Name, unsigned Shards);

  /// Which model shard a `model/...` storage name routes to: the
  /// leading 8 hex digits of its `sha/<hex>` leaf when it has one, else
  /// CRC-32 of the whole name, reduced modulo \p Shards.
  static unsigned modelShardForName(std::string_view Name, unsigned Shards);

  /// Runs the PR 5 lifecycle (manifest, LRU, age) over every shard with
  /// the configured budgets — the periodic self-prune hook fgbs_cached
  /// calls so a long-lived daemon honours its budget without a cron.
  /// Model shards prune under their own budgets.
  void pruneAllShards();

private:
  void serveLoop();
  void acceptLoop();
  void serveConnection(Socket Conn);
  /// Handles one request frame; false means the connection must close
  /// (frame-level damage lost byte-stream sync).
  bool handleFrame(Socket &Conn, const Frame &Request);
  bool respond(Socket &Conn, Opcode Op, std::string_view Payload);
  bool respondError(Socket &Conn, const std::string &Message);

  /// The backend a resolved wire name stores into: a measurement shard
  /// keyed on the flat storage name, or a model shard keyed on the
  /// namespaced one.
  CacheBackend &backendFor(bool Model, const std::string &Storage);
  void pruneShard(unsigned Shard);
  /// LRU + age pruning over one model shard's `sha/` blobs (refs are
  /// exempt); budgets are the per-shard slice of \p MaxBytes /
  /// \p MaxAgeSeconds.  Returns {entries, removed, bytes-before,
  /// bytes-after} aggregated over sha blobs only.
  CachePruneCounters pruneModelShard(unsigned Shard, std::uint64_t MaxBytes,
                                     std::uint64_t MaxAgeSeconds);

  CacheServerConfig Config;
  Listener Listen;
  std::vector<std::unique_ptr<LocalDirBackend>> ShardBackends;
  std::vector<std::unique_ptr<LocalDirBackend>> ModelShardBackends;
  std::unique_ptr<ThreadPool> Pool;
  std::thread ServeThread;
  std::atomic<bool> StopFlag{false};
  std::atomic<bool> Running{false};

  /// The fleet-wide writer leases (name -> owner token + expiry).
  struct Lease {
    std::uint64_t Token = 0;
    std::uint64_t ExpiresAtMs = 0; ///< steady-clock milliseconds.
  };
  std::mutex LeaseMutex;
  std::map<std::string, Lease> Leases;

  bool leaseAcquire(const std::string &Name, std::uint64_t Token,
                    std::uint64_t TtlMs);
  bool leaseRelease(const std::string &Name, std::uint64_t Token);

  /// The simulation-farm coordinator queue (in-memory; see WorkQueue.h
  /// for why a restart is recoverable without persistence).
  WorkQueue Farm;

  /// Always-on request counters served by the Stats opcode (the obs
  /// counters mirror these but vanish when FGBS_TELEMETRY is off).
  std::atomic<std::uint64_t> StatHits{0};
  std::atomic<std::uint64_t> StatMisses{0};
  std::atomic<std::uint64_t> StatLeasesGranted{0};
  std::atomic<std::uint64_t> StatLeasesDenied{0};
  std::atomic<std::uint64_t> StatModelGets{0};
  std::atomic<std::uint64_t> StatModelPuts{0};
  std::atomic<std::uint64_t> StatModelRefPuts{0};
  std::atomic<std::uint64_t> StatScanPrefixes{0};
};

/// True when \p Name is safe to map into a shard directory: non-empty,
/// at most 255 bytes, no path separators, and not "." or ".." — the
/// server rejects anything else before it touches the filesystem.
bool isValidEntryName(std::string_view Name);

/// Which namespace a resolved wire name lives in.
enum class WireNamespace {
  Meas,  ///< The historical flat measurement space.
  Model, ///< `model/...` artifact space (own shards, own budgets).
};

/// Resolves a wire entry name to its namespace and storage name.
///
///   <flat>            -> Meas, storage "<flat>"      (back-compat)
///   meas/<flat>       -> Meas, storage "<flat>"      (alias)
///   model/<segments>  -> Model, storage "model/<segments>"
///
/// Rejects (returns false): any other namespace, empty / "." / ".." /
/// over-long segments, characters outside [A-Za-z0-9._-] in a
/// namespaced segment, a trailing '/', "//", '~' anywhere (reserved as
/// the storage '/'-escape), and names over 255 bytes — there is exactly
/// one accepted spelling per entry, so validation cannot be dodged by
/// an alternate encoding.
bool resolveEntryName(std::string_view WireName, WireNamespace &NsOut,
                      std::string &StorageOut);

} // namespace net
} // namespace fgbs

#endif // FGBS_NET_CACHESERVER_H
