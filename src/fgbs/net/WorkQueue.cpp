//===- fgbs/net/WorkQueue.cpp - coordinator work-distribution queue -------===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "fgbs/net/WorkQueue.h"

#include <algorithm>

using namespace fgbs;
using namespace fgbs::net;

EnqueueStatus WorkQueue::enqueue(const std::string &Name,
                                 const std::string &Spec) {
  std::lock_guard<std::mutex> Guard(Mutex);
  auto It = Items.find(Name);
  if (It != Items.end())
    return EnqueueStatus::Duplicate;
  Items.emplace(Name, Item{Spec, 0, 0, 0});
  Pending.push_back(Name);
  ++Counters.Enqueued;
  return EnqueueStatus::Queued;
}

void WorkQueue::requeueExpiredLocked(std::uint64_t NowMs) {
  for (auto It = Items.begin(); It != Items.end();) {
    Item &I = It->second;
    if (I.Token == 0 || I.ExpiresAtMs > NowMs) {
      ++It;
      continue;
    }
    if (I.Attempts >= MaxAttempts) {
      ++Counters.Dropped;
      It = Items.erase(It);
      continue;
    }
    I.Token = 0;
    I.ExpiresAtMs = 0;
    Pending.push_back(It->first);
    ++Counters.Requeued;
    ++It;
  }
}

std::vector<ClaimedWork> WorkQueue::claim(std::uint64_t Token,
                                          std::uint64_t TtlMs,
                                          std::uint32_t MaxItems,
                                          std::uint64_t NowMs) {
  std::vector<ClaimedWork> Out;
  if (Token == 0 || MaxItems == 0)
    return Out;
  TtlMs = std::min(TtlMs, kMaxClaimTtlMs);
  std::lock_guard<std::mutex> Guard(Mutex);
  requeueExpiredLocked(NowMs);
  while (Out.size() < MaxItems && !Pending.empty()) {
    std::string Name = std::move(Pending.front());
    Pending.pop_front();
    auto It = Items.find(Name);
    // A completed or dropped item can leave a stale queue entry behind;
    // skip anything no longer pending.
    if (It == Items.end() || It->second.Token != 0)
      continue;
    It->second.Token = Token;
    It->second.ExpiresAtMs = NowMs + TtlMs;
    ++It->second.Attempts;
    ++Counters.ClaimsOut;
    Out.push_back(ClaimedWork{Name, It->second.Spec});
  }
  return Out;
}

std::uint32_t WorkQueue::heartbeat(std::uint64_t Token,
                                   const std::vector<std::string> &Names,
                                   std::uint64_t TtlMs, std::uint64_t NowMs) {
  if (Token == 0)
    return 0;
  TtlMs = std::min(TtlMs, kMaxClaimTtlMs);
  std::uint32_t Renewed = 0;
  std::lock_guard<std::mutex> Guard(Mutex);
  for (const std::string &Name : Names) {
    auto It = Items.find(Name);
    if (It == Items.end() || It->second.Token != Token)
      continue;
    It->second.ExpiresAtMs = NowMs + TtlMs;
    ++Renewed;
    ++Counters.Heartbeats;
  }
  return Renewed;
}

bool WorkQueue::complete(const std::string &Name, std::uint64_t Token) {
  std::lock_guard<std::mutex> Guard(Mutex);
  auto It = Items.find(Name);
  if (It == Items.end() || It->second.Token != Token || Token == 0)
    return false;
  Items.erase(It);
  ++Counters.Completed;
  return true;
}

bool WorkQueue::abandon(const std::string &Name, std::uint64_t Token,
                        std::uint64_t NowMs) {
  (void)NowMs;
  std::lock_guard<std::mutex> Guard(Mutex);
  auto It = Items.find(Name);
  if (It == Items.end() || It->second.Token != Token || Token == 0)
    return false;
  if (It->second.Attempts >= MaxAttempts) {
    ++Counters.Dropped;
    Items.erase(It);
    return false;
  }
  It->second.Token = 0;
  It->second.ExpiresAtMs = 0;
  Pending.push_back(Name);
  ++Counters.Requeued;
  return true;
}

WorkQueueStats WorkQueue::stats(std::uint64_t NowMs) {
  std::lock_guard<std::mutex> Guard(Mutex);
  requeueExpiredLocked(NowMs);
  WorkQueueStats Out = Counters;
  Out.Pending = 0;
  Out.Claimed = 0;
  for (const auto &[Name, I] : Items) {
    (void)Name;
    if (I.Token == 0)
      ++Out.Pending;
    else
      ++Out.Claimed;
  }
  return Out;
}
