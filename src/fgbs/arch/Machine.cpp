//===- fgbs/arch/Machine.cpp - Machine descriptions ----------------------===//
//
// Parameter values are drawn from paper Table 1 (frequency, core count,
// cache capacities, RAM) and from public microarchitecture references for
// latencies and bandwidths.  Only the relative behaviour across machines is
// load-bearing for the reproduction.
//
//===----------------------------------------------------------------------===//

#include "fgbs/arch/Machine.h"

using namespace fgbs;

Machine fgbs::makeNehalem() {
  Machine M;
  M.Name = "Nehalem";
  M.Cpu = "L5609";
  M.FrequencyGHz = 1.86;
  M.Cores = 4;
  M.RamGB = 8;
  M.OutOfOrder = true;
  M.IssueWidth = 4;
  M.VectorBits = 128; // SSE4.2 (-xsse4.2).
  M.NumFpRegisters = 16;
  M.Timings = {/*FpAddLatency=*/3.0,
               /*FpMulLatency=*/5.0,
               /*FpDivLatencySP=*/14.0,
               /*FpDivLatencyDP=*/22.0,
               /*FpSqrtLatency=*/21.0,
               /*FpExpCost=*/55.0,
               /*IntAddLatency=*/1.0,
               /*IntMulLatency=*/3.0,
               /*VectorFpThroughputFactor=*/1.0,
               /*VectorDpThroughputFactor=*/1.0};
  M.CacheLevels = {
      {"L1", 32 * 1024, 8, 64, 4.0, 16.0},
      {"L2", 256 * 1024, 8, 64, 10.0, 12.0},
      {"L3", 12ULL * 1024 * 1024, 16, 64, 40.0, 8.0},
  };
  M.MemLatencyCycles = 200.0;
  M.MemBandwidthGBs = 8.0;
  return M;
}

Machine fgbs::makeAtom() {
  Machine M;
  M.Name = "Atom";
  M.Cpu = "D510";
  M.FrequencyGHz = 1.66;
  M.Cores = 2;
  M.RamGB = 4;
  M.OutOfOrder = false; // In-order dual issue.
  M.IssueWidth = 2;
  M.VectorBits = 128; // SSSE3, but FP SIMD is cracked (factors below).
  M.NumFpRegisters = 16;
  M.Timings = {/*FpAddLatency=*/5.0,
               /*FpMulLatency=*/5.0,
               /*FpDivLatencySP=*/31.0,
               /*FpDivLatencyDP=*/60.0,
               /*FpSqrtLatency=*/63.0,
               /*FpExpCost=*/220.0,
               /*IntAddLatency=*/1.0,
               /*IntMulLatency=*/5.0,
               /*VectorFpThroughputFactor=*/2.0,
               /*VectorDpThroughputFactor=*/4.0};
  M.CacheLevels = {
      {"L1", 24 * 1024, 6, 64, 3.0, 8.0},
      {"L2", 512 * 1024, 8, 64, 16.0, 6.0},
  };
  M.MemLatencyCycles = 180.0;
  M.MemBandwidthGBs = 3.0;
  return M;
}

Machine fgbs::makeCore2() {
  Machine M;
  M.Name = "Core 2";
  M.Cpu = "E7500";
  M.FrequencyGHz = 2.93;
  M.Cores = 2;
  M.RamGB = 4;
  M.OutOfOrder = true;
  M.IssueWidth = 4;
  M.VectorBits = 128; // SSE3 (-O3 without -xsse4.2 still vectorizes).
  M.NumFpRegisters = 16;
  M.Timings = {/*FpAddLatency=*/3.0,
               /*FpMulLatency=*/5.0,
               /*FpDivLatencySP=*/18.0,
               /*FpDivLatencyDP=*/32.0,
               /*FpSqrtLatency=*/29.0,
               /*FpExpCost=*/75.0,
               /*IntAddLatency=*/1.0,
               /*IntMulLatency=*/3.0,
               /*VectorFpThroughputFactor=*/1.0,
               /*VectorDpThroughputFactor=*/1.0};
  // The E7500's 3 MB L2 is the last level: one serial thread sees all of
  // it, but it is four times smaller than the reference's L3 (the paper's
  // "cluster B" codelets are 1.34x slower on Core 2 because of this).
  M.CacheLevels = {
      {"L1", 32 * 1024, 8, 64, 3.0, 16.0},
      {"L2", 3ULL * 1024 * 1024, 12, 64, 15.0, 10.0},
  };
  // Front-side-bus memory interface: high latency, modest bandwidth.
  M.MemLatencyCycles = 280.0;
  M.MemBandwidthGBs = 5.5;
  return M;
}

Machine fgbs::makeSandyBridge() {
  Machine M;
  M.Name = "Sandy Bridge";
  M.Cpu = "E31240";
  M.FrequencyGHz = 3.30;
  M.Cores = 4;
  M.RamGB = 6;
  M.OutOfOrder = true;
  // Sandy Bridge's uop cache and wider back-end sustain more issue
  // bandwidth than the P6-era cores.
  M.IssueWidth = 5;
  M.VectorBits = 128; // Compiled with -xsse4.2, so SSE, not AVX.
  M.NumFpRegisters = 16;
  M.Timings = {/*FpAddLatency=*/3.0,
               /*FpMulLatency=*/5.0,
               /*FpDivLatencySP=*/11.0,
               /*FpDivLatencyDP=*/22.0,
               /*FpSqrtLatency=*/21.0,
               /*FpExpCost=*/50.0,
               /*IntAddLatency=*/1.0,
               /*IntMulLatency=*/3.0,
               /*VectorFpThroughputFactor=*/1.0,
               /*VectorDpThroughputFactor=*/1.0};
  M.CacheLevels = {
      {"L1", 32 * 1024, 8, 64, 4.0, 32.0},
      {"L2", 256 * 1024, 8, 64, 12.0, 16.0},
      {"L3", 8ULL * 1024 * 1024, 16, 64, 36.0, 10.0},
  };
  M.MemLatencyCycles = 190.0;
  M.MemBandwidthGBs = 12.5;
  return M;
}

std::vector<Machine> fgbs::paperMachines() {
  return {makeNehalem(), makeAtom(), makeCore2(), makeSandyBridge()};
}

std::vector<Machine> fgbs::paperTargets() {
  return {makeAtom(), makeCore2(), makeSandyBridge()};
}
