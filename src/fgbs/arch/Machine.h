//===- fgbs/arch/Machine.h - Machine descriptions --------------*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized machine descriptions standing in for the paper's four
/// test architectures (Table 1): Nehalem L5609 (the reference), Atom D510,
/// Core 2 E7500, and Sandy Bridge E31240.
///
/// A Machine bundles a core model (frequency, issue width, in/out-of-order,
/// SIMD width, operation latencies) with a cache hierarchy and a memory
/// interface.  The performance simulator (fgbs/sim) interprets compiled
/// loops against these descriptions; only *relative* fidelity across the
/// four machines matters for reproducing the paper (see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_ARCH_MACHINE_H
#define FGBS_ARCH_MACHINE_H

#include "fgbs/isa/Isa.h"

#include <cstdint>
#include <string>
#include <vector>

namespace fgbs {

/// One level of the data-cache hierarchy.
struct CacheLevelConfig {
  std::string Name;           ///< "L1", "L2", "L3".
  std::uint64_t SizeBytes;    ///< Capacity visible to one serial thread.
  unsigned Associativity;     ///< Ways per set.
  unsigned LineBytes;         ///< Cache-line size.
  double LatencyCycles;       ///< Load-to-use latency.
  double BandwidthBytesPerCycle; ///< Sustained bandwidth from this level.
};

/// Latency/throughput parameters of the execution core.
struct CoreTimings {
  double FpAddLatency;   ///< Cycles, scalar FP add/sub.
  double FpMulLatency;   ///< Cycles, scalar FP multiply.
  double FpDivLatencySP; ///< Cycles, SP divide (unpipelined).
  double FpDivLatencyDP; ///< Cycles, DP divide (unpipelined).
  double FpSqrtLatency;  ///< Cycles, sqrt (shares the divider).
  double FpExpCost;      ///< Cycles, libm-style transcendental block.
  double IntAddLatency;  ///< Cycles, integer ALU op.
  double IntMulLatency;  ///< Cycles, integer multiply.
  /// Extra throughput factor applied to *vector* FP operations.  1.0 on
  /// cores with full-width SIMD execution; > 1 on Atom, whose 128-bit FP
  /// ops are cracked into narrower uops.
  double VectorFpThroughputFactor;
  /// Same, for DP specifically (Atom's DP SIMD is weaker still).
  double VectorDpThroughputFactor;
};

/// A complete machine description.
struct Machine {
  std::string Name;  ///< e.g. "Nehalem".
  std::string Cpu;   ///< e.g. "L5609".
  double FrequencyGHz;
  unsigned Cores;
  unsigned RamGB;

  bool OutOfOrder;      ///< False for Atom (in-order issue).
  unsigned IssueWidth;  ///< Decoded uops dispatched per cycle.
  unsigned VectorBits;  ///< SIMD register width (128 for SSE-class ISAs).
  unsigned NumFpRegisters; ///< Architected FP/SIMD register count.

  CoreTimings Timings;
  std::vector<CacheLevelConfig> CacheLevels; ///< Ordered L1 -> LLC.
  double MemLatencyCycles;      ///< LLC-miss-to-DRAM latency.
  double MemBandwidthGBs;       ///< Sustained single-thread DRAM bandwidth.

  /// Cycles per second.
  double hz() const { return FrequencyGHz * 1e9; }

  /// SIMD lanes for \p Prec (1 when the machine cannot vectorize it).
  unsigned vectorElems(Precision Prec) const {
    return VectorBits / (8 * bytesPerElement(Prec));
  }

  /// DRAM bandwidth expressed in bytes per core cycle.
  double memBandwidthBytesPerCycle() const {
    return MemBandwidthGBs * 1e9 / hz();
  }

  /// Capacity of the last cache level (0 if the machine has no cache,
  /// which no modeled machine does).
  std::uint64_t lastLevelCacheBytes() const {
    return CacheLevels.empty() ? 0 : CacheLevels.back().SizeBytes;
  }
};

/// The paper's reference architecture (Table 1, column 1).
Machine makeNehalem();
/// Target architectures (Table 1, columns 2-4).
Machine makeAtom();
Machine makeCore2();
Machine makeSandyBridge();

/// All four machines, reference first.
std::vector<Machine> paperMachines();

/// The three target machines (everything but the reference).
std::vector<Machine> paperTargets();

} // namespace fgbs

#endif // FGBS_ARCH_MACHINE_H
