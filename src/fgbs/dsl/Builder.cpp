//===- fgbs/dsl/Builder.cpp - Fluent codelet construction ----------------===//

#include "fgbs/dsl/Builder.h"

#include <cassert>
#include <utility>

using namespace fgbs;

CodeletBuilder::CodeletBuilder(std::string Name, std::string App) {
  Result.Name = std::move(Name);
  Result.App = std::move(App);
}

CodeletBuilder &CodeletBuilder::pattern(std::string Text) {
  Result.Pattern = std::move(Text);
  return *this;
}

unsigned CodeletBuilder::array(std::string Name, Precision Elem,
                               std::uint64_t NumElements) {
  assert(NumElements > 0 && "array must have elements");
  Result.Arrays.push_back({std::move(Name), Elem, NumElements});
  return static_cast<unsigned>(Result.Arrays.size() - 1);
}

CodeletBuilder &CodeletBuilder::loops(std::uint64_t InnerTripCount,
                                      std::uint64_t OuterIterations) {
  assert(InnerTripCount > 0 && OuterIterations > 0 && "empty loop nest");
  Result.Nest.InnerTripCount = InnerTripCount;
  Result.Nest.OuterIterations = OuterIterations;
  return *this;
}

CodeletBuilder &CodeletBuilder::invocations(std::uint64_t Count,
                                            double DatasetScale) {
  assert(Count > 0 && "invocation group must be non-empty");
  assert(DatasetScale > 0.0 && "dataset scale must be positive");
  if (!InvocationsSet) {
    Result.Invocations.clear();
    InvocationsSet = true;
  }
  Result.Invocations.push_back({Count, DatasetScale});
  return *this;
}

CodeletBuilder &CodeletBuilder::contextSensitiveCompilation() {
  Result.Traits.CompilationContextSensitive = true;
  return *this;
}

CodeletBuilder &CodeletBuilder::cacheStateSensitive() {
  Result.Traits.CacheStateSensitive = true;
  return *this;
}

CodeletBuilder &CodeletBuilder::stmt(Stmt S) {
  Result.Body.push_back(std::move(S));
  return *this;
}

Access CodeletBuilder::at(unsigned ArrayIndex, StrideClass Stride,
                          std::int64_t StrideElems,
                          unsigned PointsPerIter) const {
  assert(ArrayIndex < Result.Arrays.size() && "unknown array");
  Access Ref;
  Ref.ArrayIndex = ArrayIndex;
  Ref.Stride = Stride;
  if (StrideElems == kDefaultStride) {
    switch (Stride) {
    case StrideClass::Zero:
      StrideElems = 0;
      break;
    case StrideClass::Unit:
    case StrideClass::Stencil:
      StrideElems = 1;
      break;
    case StrideClass::NegUnit:
      StrideElems = -1;
      break;
    case StrideClass::Small:
      StrideElems = 4;
      break;
    case StrideClass::Lda:
      StrideElems = 512;
      break;
    }
  }
  Ref.StrideElems = StrideElems;
  // Stencils are normally written as several explicit neighbor loads, so
  // the default is one touch per node; PointsPerIter > 1 lets a single
  // node stand for a group of neighbor touches in the memory stream.
  Ref.PointsPerIter = PointsPerIter ? PointsPerIter : 1;
  return Ref;
}

ExprPtr CodeletBuilder::ld(unsigned ArrayIndex, StrideClass Stride,
                           std::int64_t StrideElems,
                           unsigned PointsPerIter) const {
  Access Ref = at(ArrayIndex, Stride, StrideElems, PointsPerIter);
  return load(Ref, Result.Arrays[ArrayIndex].Elem);
}

Codelet CodeletBuilder::take() {
  assert(!Taken && "CodeletBuilder::take() called twice");
  assert(!Result.Body.empty() && "codelet with an empty body");
  Taken = true;
  return std::move(Result);
}
