//===- fgbs/dsl/Builder.h - Fluent codelet construction --------*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fluent builder for assembling codelets.  The NR and NAS suite
/// definitions (fgbs/suites) construct ~95 codelets; this builder keeps
/// those definitions close to the paper's Table 3 vocabulary (pattern,
/// stride classes, precision).
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_DSL_BUILDER_H
#define FGBS_DSL_BUILDER_H

#include "fgbs/dsl/Codelet.h"

namespace fgbs {

/// Fluent builder for one codelet.
class CodeletBuilder {
public:
  CodeletBuilder(std::string Name, std::string App);

  /// Sets the human-readable computation pattern (Table 3 column).
  CodeletBuilder &pattern(std::string Text);

  /// Declares an array and returns its index for use in accesses.
  unsigned array(std::string Name, Precision Elem, std::uint64_t NumElements);

  /// Sets the loop nest.
  CodeletBuilder &loops(std::uint64_t InnerTripCount,
                        std::uint64_t OuterIterations = 1);

  /// Appends one invocation group.  The first call replaces the default
  /// single-invocation schedule.
  CodeletBuilder &invocations(std::uint64_t Count, double DatasetScale = 1.0);

  /// Marks the codelet as compiled differently outside its application.
  CodeletBuilder &contextSensitiveCompilation();

  /// Marks the codelet's extracted memory dump as restoring a warmer
  /// cache than the in-app execution sees.
  CodeletBuilder &cacheStateSensitive();

  /// Appends a statement.
  CodeletBuilder &stmt(Stmt S);

  /// Builds an Access to array \p ArrayIndex with stride class \p Stride.
  /// \p StrideElems defaults per class: 0, 1, -1, 4, 512 (LDA row length),
  /// 1 (stencil, with \p PointsPerIter touches).
  Access at(unsigned ArrayIndex, StrideClass Stride,
            std::int64_t StrideElems = kDefaultStride,
            unsigned PointsPerIter = 0) const;

  /// Shorthand: a load expression from array \p ArrayIndex.
  ExprPtr ld(unsigned ArrayIndex, StrideClass Stride,
             std::int64_t StrideElems = kDefaultStride,
             unsigned PointsPerIter = 0) const;

  /// Finalizes and returns the codelet.  The builder must not be reused.
  Codelet take();

  /// Sentinel for "use the class's default stride".
  static constexpr std::int64_t kDefaultStride = INT64_MIN;

private:
  Codelet Result;
  bool InvocationsSet = false;
  bool Taken = false;
};

} // namespace fgbs

#endif // FGBS_DSL_BUILDER_H
