//===- fgbs/dsl/Codelet.cpp - Codelets, applications, suites --------------===//

#include "fgbs/dsl/Codelet.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace fgbs;

std::uint64_t Codelet::totalInvocations() const {
  std::uint64_t Total = 0;
  for (const InvocationGroup &G : Invocations)
    Total += G.Count;
  return Total;
}

double Codelet::averageDatasetScale() const {
  assert(!Invocations.empty() && "codelet without invocations");
  double Weighted = 0.0;
  std::uint64_t Total = 0;
  for (const InvocationGroup &G : Invocations) {
    Weighted += static_cast<double>(G.Count) * G.DatasetScale;
    Total += G.Count;
  }
  assert(Total > 0 && "codelet with zero invocations");
  return Weighted / static_cast<double>(Total);
}

double Codelet::capturedDatasetScale() const {
  assert(!Invocations.empty() && "codelet without invocations");
  return Invocations.front().DatasetScale;
}

std::uint64_t Codelet::footprintBytes() const {
  std::uint64_t Total = 0;
  for (const ArrayDecl &A : Arrays)
    Total += A.bytes();
  return Total;
}

std::string Codelet::strideSummary() const {
  // Gather distinct stride classes over all accesses, in a stable
  // presentation order matching Table 3 (0 first, then 1, -1, ...).
  bool Seen[6] = {false, false, false, false, false, false};
  auto Mark = [&Seen](const Access &Ref) {
    Seen[static_cast<unsigned>(Ref.Stride)] = true;
  };
  for (const Stmt &S : Body) {
    if (S.Kind != StmtKind::Reduction)
      Mark(S.Target);
    visitExpr(*S.Rhs, [&Mark](const Expr &E) {
      if (E.Kind == ExprKind::Load)
        Mark(E.Ref);
    });
  }
  std::string Out;
  static const StrideClass Order[] = {StrideClass::Zero,   StrideClass::Unit,
                                      StrideClass::NegUnit, StrideClass::Small,
                                      StrideClass::Lda,     StrideClass::Stencil};
  for (StrideClass Class : Order) {
    if (!Seen[static_cast<unsigned>(Class)])
      continue;
    if (!Out.empty())
      Out += " & ";
    Out += strideClassName(Class);
  }
  return Out;
}

Codelet Codelet::clone() const {
  Codelet Copy;
  Copy.Name = Name;
  Copy.App = App;
  Copy.Pattern = Pattern;
  Copy.Arrays = Arrays;
  Copy.Nest = Nest;
  Copy.Body.reserve(Body.size());
  for (const Stmt &S : Body)
    Copy.Body.push_back(S.clone());
  Copy.Invocations = Invocations;
  Copy.Traits = Traits;
  return Copy;
}

std::size_t Suite::numCodelets() const {
  std::size_t Count = 0;
  for (const Application &App : Applications)
    Count += App.Codelets.size();
  return Count;
}

std::vector<const Codelet *> Suite::allCodelets() const {
  std::vector<const Codelet *> Out;
  Out.reserve(numCodelets());
  for (const Application &App : Applications)
    for (const Codelet &C : App.Codelets)
      Out.push_back(&C);
  return Out;
}

std::vector<MemoryStreamDesc> fgbs::collectStreams(const Codelet &C,
                                                   double Scale) {
  assert(Scale > 0.0 && "dataset scale must be positive");
  std::vector<MemoryStreamDesc> Streams;
  auto AddAccess = [&](const Access &Ref, bool IsStore) {
    assert(Ref.ArrayIndex < C.Arrays.size() && "dangling array reference");
    const ArrayDecl &Arr = C.Arrays[Ref.ArrayIndex];
    unsigned ElemBytes = bytesPerElement(Arr.Elem);
    MemoryStreamDesc Desc;
    Desc.StrideBytes = Ref.StrideElems * static_cast<std::int64_t>(ElemBytes);
    Desc.FootprintBytes = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(Arr.bytes()) * Scale));
    Desc.FootprintBytes = std::max<std::uint64_t>(Desc.FootprintBytes,
                                                  ElemBytes);
    Desc.PointsPerIter = Ref.PointsPerIter;
    Desc.IsStore = IsStore;
    Desc.ElemBytes = ElemBytes;
    Streams.push_back(Desc);
  };
  for (const Stmt &S : C.Body) {
    if (S.Kind != StmtKind::Reduction)
      AddAccess(S.Target, /*IsStore=*/true);
    visitExpr(*S.Rhs, [&AddAccess](const Expr &E) {
      if (E.Kind == ExprKind::Load)
        AddAccess(E.Ref, /*IsStore=*/false);
    });
  }
  return Streams;
}
