//===- fgbs/dsl/Codelet.h - Codelets, applications, suites -----*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The codelet object model: a codelet is an extractable outermost loop
/// with its arrays, loop nest, body statements, invocation schedule and
/// behaviour traits; applications group codelets; suites group
/// applications.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_DSL_CODELET_H
#define FGBS_DSL_CODELET_H

#include "fgbs/dsl/Expr.h"

#include <cstdint>
#include <string>
#include <vector>

namespace fgbs {

/// The loop nest enclosing the codelet body.
struct LoopNest {
  /// Innermost trip count per execution of the surrounding loops.
  std::uint64_t InnerTripCount = 1;
  /// Product of all outer-loop trip counts per invocation (1 for a simple
  /// single loop).
  std::uint64_t OuterIterations = 1;

  /// Total innermost iterations executed per invocation.
  std::uint64_t totalIterations() const {
    return InnerTripCount * OuterIterations;
  }
};

/// A group of invocations sharing a dataset context.  Codelets invoked
/// with varying contexts over the application lifetime (the paper's first
/// ill-behaved category) carry several groups with different scales; the
/// extractor only captures the FIRST group's dataset.
struct InvocationGroup {
  std::uint64_t Count = 1;   ///< Invocations in this group.
  double DatasetScale = 1.0; ///< Trip-count/footprint multiplier vs the
                             ///< codelet's declared nest and arrays.
};

/// Behaviour traits that drive the extraction-fidelity model
/// (paper section 3.4 and the Akel et al. ill-behaved taxonomy).
struct BehaviorTraits {
  /// The compiler optimizes this loop differently when the surrounding
  /// code is absent (second ill-behaved category): standalone compilation
  /// loses vectorization.
  bool CompilationContextSensitive = false;
  /// The standalone memory dump restores a warmer cache than the codelet
  /// sees in the application (the CG-on-Atom effect of Figure 5): the
  /// microbenchmark runs faster on machines with a small last-level cache.
  bool CacheStateSensitive = false;
};

/// A codelet: a short, side-effect-free source-code fragment that can be
/// outlined and extracted as a standalone microbenchmark.
struct Codelet {
  std::string Name;    ///< e.g. "toeplz_1" or "bt/rhs.f:266-311".
  std::string App;     ///< Owning application, e.g. "bt".
  std::string Pattern; ///< Human description (Table 3 column).

  std::vector<ArrayDecl> Arrays;
  LoopNest Nest;
  std::vector<Stmt> Body;
  std::vector<InvocationGroup> Invocations = {{1, 1.0}};
  BehaviorTraits Traits;

  /// Total invocations over the application lifetime.
  std::uint64_t totalInvocations() const;

  /// Average dataset scale over all invocations (what the in-app profile
  /// observes).
  double averageDatasetScale() const;

  /// Dataset scale of the first invocation (what the extractor captures).
  double capturedDatasetScale() const;

  /// Sum of all array footprints, in bytes, at scale 1.
  std::uint64_t footprintBytes() const;

  /// A terse stride summary like "0 & 1 & -1" (Table 3 column), derived
  /// from the body's distinct access stride classes.
  std::string strideSummary() const;

  Codelet clone() const;
};

/// An application: a set of codelets covering most of its runtime.
struct Application {
  std::string Name;
  std::vector<Codelet> Codelets;
  /// Fraction of the application's execution time covered by codelets
  /// (0.92 for the NAS suite per Akel et al.).
  double Coverage = 0.92;
};

/// A benchmark suite.
struct Suite {
  std::string Name;
  std::vector<Application> Applications;

  /// Total number of codelets.
  std::size_t numCodelets() const;

  /// Pointers to every codelet, application order preserved.
  std::vector<const Codelet *> allCodelets() const;
};

/// A memory stream the innermost loop generates: input to the cache
/// simulator.  Derived from the body's accesses by collectStreams().
struct MemoryStreamDesc {
  std::int64_t StrideBytes;     ///< Signed stride per innermost iteration.
  std::uint64_t FootprintBytes; ///< Extent walked before wrapping.
  unsigned PointsPerIter;       ///< Touches per iteration (stencils > 1).
  bool IsStore;
  unsigned ElemBytes;
};

/// Derives the memory streams of \p C at dataset scale \p Scale.
std::vector<MemoryStreamDesc> collectStreams(const Codelet &C,
                                             double Scale = 1.0);

} // namespace fgbs

#endif // FGBS_DSL_CODELET_H
