//===- fgbs/dsl/Expr.cpp - Codelet expression trees -----------------------===//

#include "fgbs/dsl/Expr.h"

#include <cassert>

using namespace fgbs;

std::string fgbs::strideClassName(StrideClass Class) {
  switch (Class) {
  case StrideClass::Zero:
    return "0";
  case StrideClass::Unit:
    return "1";
  case StrideClass::NegUnit:
    return "-1";
  case StrideClass::Small:
    return "small";
  case StrideClass::Lda:
    return "LDA";
  case StrideClass::Stencil:
    return "stencil";
  }
  assert(false && "unknown stride class");
  return "?";
}

ExprPtr Expr::clone() const {
  auto Copy = std::make_unique<Expr>();
  Copy->Kind = Kind;
  Copy->Prec = Prec;
  Copy->Ref = Ref;
  Copy->Bin = Bin;
  Copy->Un = Un;
  if (Lhs)
    Copy->Lhs = Lhs->clone();
  if (Rhs)
    Copy->Rhs = Rhs->clone();
  return Copy;
}

ExprPtr fgbs::load(Access Ref, Precision Prec) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Load;
  E->Prec = Prec;
  E->Ref = Ref;
  return E;
}

ExprPtr fgbs::constant(Precision Prec) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Constant;
  E->Prec = Prec;
  return E;
}

ExprPtr fgbs::binary(BinOp Op, ExprPtr Lhs, ExprPtr Rhs) {
  assert(Lhs && Rhs && "binary expression requires two operands");
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Binary;
  // The result precision follows the wider operand so mixed-precision
  // ("MP") codelets promote as C/Fortran would.
  E->Prec = bytesPerElement(Lhs->Prec) >= bytesPerElement(Rhs->Prec)
                ? Lhs->Prec
                : Rhs->Prec;
  E->Bin = Op;
  E->Lhs = std::move(Lhs);
  E->Rhs = std::move(Rhs);
  return E;
}

ExprPtr fgbs::unary(UnOp Op, ExprPtr Operand) {
  assert(Operand && "unary expression requires an operand");
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Unary;
  E->Prec = Operand->Prec;
  E->Un = Op;
  E->Lhs = std::move(Operand);
  return E;
}

Stmt Stmt::clone() const {
  Stmt Copy;
  Copy.Kind = Kind;
  Copy.Target = Target;
  Copy.ReduceOp = ReduceOp;
  if (Rhs)
    Copy.Rhs = Rhs->clone();
  return Copy;
}

Stmt fgbs::storeTo(Access Target, ExprPtr Rhs) {
  assert(Rhs && "store requires a value");
  Stmt S;
  S.Kind = StmtKind::Store;
  S.Target = Target;
  S.Rhs = std::move(Rhs);
  return S;
}

Stmt fgbs::reduce(BinOp Op, ExprPtr Rhs) {
  assert(Rhs && "reduction requires a value");
  Stmt S;
  S.Kind = StmtKind::Reduction;
  S.ReduceOp = Op;
  S.Rhs = std::move(Rhs);
  return S;
}

Stmt fgbs::recurrence(Access Target, ExprPtr Rhs) {
  assert(Rhs && "recurrence requires a value");
  Stmt S;
  S.Kind = StmtKind::Recurrence;
  S.Target = Target;
  S.Rhs = std::move(Rhs);
  return S;
}

void fgbs::visitExpr(const Expr &Root,
                     const std::function<void(const Expr &)> &Visit) {
  Visit(Root);
  if (Root.Lhs)
    visitExpr(*Root.Lhs, Visit);
  if (Root.Rhs)
    visitExpr(*Root.Rhs, Visit);
}

unsigned fgbs::countLoads(const Expr &Root) {
  unsigned Count = 0;
  visitExpr(Root, [&Count](const Expr &E) {
    if (E.Kind == ExprKind::Load)
      ++Count;
  });
  return Count;
}
