//===- fgbs/dsl/Text.cpp - Textual codelet format --------------------------===//

#include "fgbs/dsl/Text.h"

#include "fgbs/dsl/Builder.h"

#include <cassert>
#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>
#include <sstream>

using namespace fgbs;

std::string ParseError::render() const {
  std::ostringstream OS;
  OS << Line << ":" << Column << ": " << Message;
  return OS.str();
}

namespace {

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

enum class TokKind {
  Ident,
  String,
  Number,
  Punct,
  Eof,
};

struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;
  double NumberValue = 0.0;
  bool IsInteger = false;
  unsigned Line = 1;
  unsigned Column = 1;
};

class Lexer {
public:
  explicit Lexer(std::string_view Text) : Text(Text) {}

  /// Lexes the next token; on bad input returns a token with kind Eof
  /// and sets the error.
  Token next() {
    skipTrivia();
    Token T;
    T.Line = Line;
    T.Column = Column;
    if (Pos >= Text.size()) {
      T.Kind = TokKind::Eof;
      return T;
    }

    char C = Text[Pos];
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      while (Pos < Text.size() &&
             (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
              Text[Pos] == '_' || Text[Pos] == '-')) {
        // Identifiers may contain '-' (trait names) but must not eat a
        // following "-1": only take '-' if followed by a letter.
        if (Text[Pos] == '-' &&
            (Pos + 1 >= Text.size() ||
             !std::isalpha(static_cast<unsigned char>(Text[Pos + 1]))))
          break;
        T.Text += Text[Pos];
        advance();
      }
      T.Kind = TokKind::Ident;
      return T;
    }

    if (std::isdigit(static_cast<unsigned char>(C))) {
      bool SawDot = false;
      bool SawExp = false;
      while (Pos < Text.size()) {
        char D = Text[Pos];
        if (std::isdigit(static_cast<unsigned char>(D))) {
          T.Text += D;
          advance();
        } else if (D == '.' && !SawDot && !SawExp) {
          SawDot = true;
          T.Text += D;
          advance();
        } else if ((D == 'e' || D == 'E') && !SawExp && !T.Text.empty() &&
                   std::isdigit(static_cast<unsigned char>(T.Text.back()))) {
          SawExp = true;
          T.Text += D;
          advance();
          if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-')) {
            T.Text += Text[Pos];
            advance();
          }
        } else {
          break;
        }
      }
      T.Kind = TokKind::Number;
      T.IsInteger = !SawDot && !SawExp;
      T.NumberValue = std::strtod(T.Text.c_str(), nullptr);
      return T;
    }

    if (C == '"') {
      advance();
      while (Pos < Text.size() && Text[Pos] != '"') {
        T.Text += Text[Pos];
        advance();
      }
      if (Pos >= Text.size()) {
        Bad = true;
        BadMessage = "unterminated string literal";
        BadLine = T.Line;
        BadColumn = T.Column;
        T.Kind = TokKind::Eof;
        return T;
      }
      advance(); // Closing quote.
      T.Kind = TokKind::String;
      return T;
    }

    static const std::string Punct = "{}[]();=+-*/,";
    if (Punct.find(C) != std::string::npos) {
      T.Kind = TokKind::Punct;
      T.Text = std::string(1, C);
      advance();
      return T;
    }

    Bad = true;
    BadMessage = std::string("unexpected character '") + C + "'";
    BadLine = T.Line;
    BadColumn = T.Column;
    T.Kind = TokKind::Eof;
    return T;
  }

  bool bad() const { return Bad; }
  ParseError error() const { return {BadLine, BadColumn, BadMessage}; }

private:
  void advance() {
    if (Text[Pos] == '\n') {
      ++Line;
      Column = 1;
    } else {
      ++Column;
    }
    ++Pos;
  }

  void skipTrivia() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (std::isspace(static_cast<unsigned char>(C))) {
        advance();
      } else if (C == '#') {
        while (Pos < Text.size() && Text[Pos] != '\n')
          advance();
      } else {
        break;
      }
    }
  }

  std::string_view Text;
  std::size_t Pos = 0;
  unsigned Line = 1;
  unsigned Column = 1;
  bool Bad = false;
  std::string BadMessage;
  unsigned BadLine = 0;
  unsigned BadColumn = 0;
};

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

class Parser {
public:
  explicit Parser(std::string_view Text) : Lex(Text) { consume(); }

  ParseResult<Codelet> codelet() {
    Codelet C;
    if (!parseCodeletInto(C))
      return Err;
    if (!expectEof())
      return Err;
    return C;
  }

  ParseResult<Suite> suite() {
    Suite S;
    if (!expectIdent("suite"))
      return Err;
    if (!expectString(S.Name))
      return Err;
    if (!expectPunct("{"))
      return Err;
    while (!isPunct("}")) {
      Application App;
      if (!parseApplication(App))
        return Err;
      S.Applications.push_back(std::move(App));
    }
    consume(); // '}'
    if (!expectEof())
      return Err;
    return S;
  }

private:
  // --- Token plumbing ---------------------------------------------------
  void consume() {
    Current = Lex.next();
    if (Lex.bad() && !Failed)
      fail(Lex.error());
  }

  bool fail(ParseError E) {
    if (!Failed) {
      Err = std::move(E);
      Failed = true;
    }
    return false;
  }

  bool fail(const std::string &Message) {
    return fail({Current.Line, Current.Column, Message});
  }

  bool isIdent(const char *Text) const {
    return Current.Kind == TokKind::Ident && Current.Text == Text;
  }
  bool isPunct(const char *Text) const {
    return Current.Kind == TokKind::Punct && Current.Text == Text;
  }

  bool expectIdent(const char *Text) {
    if (!isIdent(Text))
      return fail(std::string("expected '") + Text + "'");
    consume();
    return true;
  }

  bool expectPunct(const char *Text) {
    if (!isPunct(Text))
      return fail(std::string("expected '") + Text + "'");
    consume();
    return true;
  }

  bool expectString(std::string &Out) {
    if (Current.Kind != TokKind::String)
      return fail("expected a string literal");
    Out = Current.Text;
    consume();
    return true;
  }

  bool expectAnyIdent(std::string &Out) {
    if (Current.Kind != TokKind::Ident)
      return fail("expected an identifier");
    Out = Current.Text;
    consume();
    return true;
  }

  bool expectInteger(std::uint64_t &Out) {
    if (Current.Kind != TokKind::Number || !Current.IsInteger)
      return fail("expected an integer");
    Out = static_cast<std::uint64_t>(Current.NumberValue);
    consume();
    return true;
  }

  bool expectSignedInteger(std::int64_t &Out) {
    bool Negative = false;
    if (isPunct("-")) {
      Negative = true;
      consume();
    }
    std::uint64_t Magnitude = 0;
    if (!expectInteger(Magnitude))
      return false;
    Out = static_cast<std::int64_t>(Magnitude);
    if (Negative)
      Out = -Out;
    return true;
  }

  bool expectNumber(double &Out) {
    if (Current.Kind != TokKind::Number)
      return fail("expected a number");
    Out = Current.NumberValue;
    consume();
    return true;
  }

  bool expectEof() {
    if (Current.Kind != TokKind::Eof)
      return fail("trailing input after definition");
    return !Failed;
  }

  // --- Grammar ----------------------------------------------------------
  bool parsePrecision(Precision &Out) {
    static const std::map<std::string, Precision> Names = {
        {"dp", Precision::DP},
        {"sp", Precision::SP},
        {"i32", Precision::I32},
        {"i64", Precision::I64}};
    if (Current.Kind != TokKind::Ident)
      return fail("expected a precision (dp, sp, i32, i64)");
    auto It = Names.find(Current.Text);
    if (It == Names.end())
      return fail("unknown precision '" + Current.Text + "'");
    Out = It->second;
    consume();
    return true;
  }

  bool parseApplication(Application &App) {
    if (!expectIdent("application"))
      return false;
    if (!expectString(App.Name))
      return false;
    if (isIdent("coverage")) {
      consume();
      if (!expectNumber(App.Coverage))
        return false;
      if (App.Coverage <= 0.0 || App.Coverage > 1.0)
        return fail("coverage must be in (0, 1]");
    }
    if (!expectPunct("{"))
      return false;
    while (!isPunct("}")) {
      Codelet C;
      if (!parseCodeletInto(C, App.Name.c_str()))
        return false;
      C.App = App.Name;
      App.Codelets.push_back(std::move(C));
    }
    consume(); // '}'
    return true;
  }

  bool parseCodeletInto(Codelet &Out, const char *DefaultApp = "") {
    if (!expectIdent("codelet"))
      return false;
    std::string Name;
    if (!expectString(Name))
      return false;
    std::string App = DefaultApp;
    if (isIdent("app")) {
      consume();
      if (!expectString(App))
        return false;
    }
    Builder.emplace(Name, App.empty() ? Name : App);
    Arrays.clear();
    ArrayPrecByIndex.clear();
    HasBody = false;

    if (!expectPunct("{"))
      return false;
    while (!isPunct("}"))
      if (!parseItem())
        return false;
    consume(); // '}'

    if (!HasBody)
      return fail("codelet '" + Name + "' has no statements");
    Out = Builder->take();
    return true;
  }

  bool parseItem() {
    if (Current.Kind != TokKind::Ident)
      return fail("expected a codelet item");
    std::string Keyword = Current.Text;
    consume();

    if (Keyword == "pattern") {
      std::string Text;
      if (!expectString(Text))
        return false;
      Builder->pattern(Text);
    } else if (Keyword == "array") {
      std::string Name;
      Precision Prec;
      std::uint64_t Elements = 0;
      if (!expectAnyIdent(Name) || !parsePrecision(Prec) ||
          !expectInteger(Elements))
        return false;
      if (Elements == 0)
        return fail("array '" + Name + "' must have elements");
      if (Arrays.count(Name))
        return fail("array '" + Name + "' redeclared");
      Arrays[Name] = Builder->array(Name, Prec, Elements);
      ArrayPrecByIndex.push_back(Prec);
    } else if (Keyword == "loops") {
      std::uint64_t Inner = 0;
      std::uint64_t Outer = 1;
      if (!expectInteger(Inner))
        return false;
      if (isIdent("outer")) {
        consume();
        if (!expectInteger(Outer))
          return false;
      }
      if (Inner == 0 || Outer == 0)
        return fail("loop trip counts must be positive");
      Builder->loops(Inner, Outer);
    } else if (Keyword == "invocations") {
      std::uint64_t Count = 0;
      double Scale = 1.0;
      if (!expectInteger(Count))
        return false;
      if (isIdent("scale")) {
        consume();
        if (!expectNumber(Scale))
          return false;
      }
      if (Count == 0 || Scale <= 0.0)
        return fail("invocations need a positive count and scale");
      Builder->invocations(Count, Scale);
    } else if (Keyword == "trait") {
      if (isIdent("context-sensitive")) {
        Builder->contextSensitiveCompilation();
      } else if (isIdent("cache-state-sensitive")) {
        Builder->cacheStateSensitive();
      } else {
        return fail("unknown trait '" + Current.Text + "'");
      }
      consume();
    } else if (Keyword == "store" || Keyword == "recur") {
      Access Target;
      if (!parseAccess(Target))
        return false;
      if (!expectPunct("="))
        return false;
      ExprPtr Rhs = parseExpr();
      if (!Rhs)
        return false;
      Builder->stmt(Keyword == "store" ? storeTo(Target, std::move(Rhs))
                                       : recurrence(Target, std::move(Rhs)));
      HasBody = true;
    } else if (Keyword == "reduce") {
      BinOp Op;
      if (isIdent("add")) {
        Op = BinOp::Add;
      } else if (isIdent("mul")) {
        Op = BinOp::Mul;
      } else {
        return fail("expected 'add' or 'mul' after 'reduce'");
      }
      consume();
      ExprPtr Rhs = parseExpr();
      if (!Rhs)
        return false;
      Builder->stmt(reduce(Op, std::move(Rhs)));
      HasBody = true;
    } else {
      return fail("unknown codelet item '" + Keyword + "'");
    }
    return expectPunct(";");
  }

  bool parseAccess(Access &Out) {
    std::string Name;
    if (!expectAnyIdent(Name))
      return false;
    auto It = Arrays.find(Name);
    if (It == Arrays.end())
      return fail("unknown array '" + Name + "'");
    if (!expectPunct("["))
      return false;

    StrideClass Class;
    std::int64_t StrideElems = CodeletBuilder::kDefaultStride;
    unsigned Points = 0;
    if (isPunct("-")) {
      consume();
      std::uint64_t One = 0;
      if (!expectInteger(One) || One != 1)
        return fail("expected '-1' stride");
      Class = StrideClass::NegUnit;
    } else if (Current.Kind == TokKind::Number && Current.IsInteger) {
      std::uint64_t V = static_cast<std::uint64_t>(Current.NumberValue);
      consume();
      if (V == 0)
        Class = StrideClass::Zero;
      else if (V == 1)
        Class = StrideClass::Unit;
      else
        return fail("bare strides must be 0, 1 or -1; use small(n)/lda(n)");
    } else if (isIdent("small") || isIdent("lda")) {
      Class = isIdent("small") ? StrideClass::Small : StrideClass::Lda;
      consume();
      std::int64_t N = 0;
      if (!expectPunct("(") || !expectSignedInteger(N) || !expectPunct(")"))
        return false;
      if (N == 0)
        return fail("small/lda strides must be non-zero");
      StrideElems = N;
    } else if (isIdent("stencil")) {
      Class = StrideClass::Stencil;
      consume();
      Points = 1;
      if (isPunct("(")) {
        consume();
        std::uint64_t P = 0;
        if (!expectInteger(P))
          return false;
        Points = static_cast<unsigned>(P);
        if (isPunct(",")) {
          consume();
          std::uint64_t N = 0;
          if (!expectInteger(N))
            return false;
          StrideElems = static_cast<std::int64_t>(N);
        }
        if (!expectPunct(")"))
          return false;
      }
    } else {
      return fail("expected a stride");
    }
    if (!expectPunct("]"))
      return false;
    Out = Builder->at(It->second, Class, StrideElems, Points);
    return true;
  }

  /// expr := term (("+"|"-") term)*
  ExprPtr parseExpr() {
    ExprPtr Lhs = parseTerm();
    if (!Lhs)
      return nullptr;
    while (isPunct("+") || isPunct("-")) {
      BinOp Op = isPunct("+") ? BinOp::Add : BinOp::Sub;
      consume();
      ExprPtr Rhs = parseTerm();
      if (!Rhs)
        return nullptr;
      Lhs = binary(Op, std::move(Lhs), std::move(Rhs));
    }
    return Lhs;
  }

  /// term := factor (("*"|"/") factor)*
  ExprPtr parseTerm() {
    ExprPtr Lhs = parseFactor();
    if (!Lhs)
      return nullptr;
    while (isPunct("*") || isPunct("/")) {
      BinOp Op = isPunct("*") ? BinOp::Mul : BinOp::Div;
      consume();
      ExprPtr Rhs = parseFactor();
      if (!Rhs)
        return nullptr;
      Lhs = binary(Op, std::move(Lhs), std::move(Rhs));
    }
    return Lhs;
  }

  ExprPtr parseFactor() {
    if (isPunct("(")) {
      consume();
      ExprPtr Inner = parseExpr();
      if (!Inner)
        return nullptr;
      if (!expectPunct(")"))
        return nullptr;
      return Inner;
    }
    if (isIdent("sqrt") || isIdent("exp") || isIdent("abs")) {
      UnOp Op = isIdent("sqrt") ? UnOp::Sqrt
                                : (isIdent("exp") ? UnOp::Exp : UnOp::Abs);
      consume();
      if (!expectPunct("("))
        return nullptr;
      ExprPtr Inner = parseExpr();
      if (!Inner)
        return nullptr;
      if (!expectPunct(")"))
        return nullptr;
      return unary(Op, std::move(Inner));
    }
    if (Current.Kind == TokKind::Number) {
      consume();
      Precision Prec;
      if (!parsePrecision(Prec))
        return nullptr;
      return constant(Prec);
    }
    if (Current.Kind == TokKind::Ident) {
      Access Ref;
      if (!parseAccess(Ref))
        return nullptr;
      return load(Ref, ArrayPrecByIndex[Ref.ArrayIndex]);
    }
    fail("expected an expression");
    return nullptr;
  }

  Lexer Lex;
  Token Current;
  bool Failed = false;
  ParseError Err;

  std::optional<CodeletBuilder> Builder;
  std::map<std::string, unsigned> Arrays;
  std::vector<Precision> ArrayPrecByIndex;
  bool HasBody = false;
};

} // namespace

ParseResult<Codelet> fgbs::parseCodelet(std::string_view Text) {
  return Parser(Text).codelet();
}

ParseResult<Suite> fgbs::parseSuite(std::string_view Text) {
  return Parser(Text).suite();
}

//===----------------------------------------------------------------------===//
// Printer
//===----------------------------------------------------------------------===//

namespace {

void printStride(std::ostream &OS, const Access &Ref) {
  switch (Ref.Stride) {
  case StrideClass::Zero:
    OS << "0";
    return;
  case StrideClass::Unit:
    OS << "1";
    return;
  case StrideClass::NegUnit:
    OS << "-1";
    return;
  case StrideClass::Small:
    OS << "small(" << Ref.StrideElems << ")";
    return;
  case StrideClass::Lda:
    OS << "lda(" << Ref.StrideElems << ")";
    return;
  case StrideClass::Stencil:
    if (Ref.PointsPerIter == 1 && Ref.StrideElems == 1)
      OS << "stencil";
    else if (Ref.StrideElems == 1)
      OS << "stencil(" << Ref.PointsPerIter << ")";
    else
      OS << "stencil(" << Ref.PointsPerIter << ", " << Ref.StrideElems << ")";
    return;
  }
  assert(false && "unknown stride class");
}

void printAccess(std::ostream &OS, const Codelet &C, const Access &Ref) {
  OS << C.Arrays[Ref.ArrayIndex].Name << "[";
  printStride(OS, Ref);
  OS << "]";
}

void printExpr(std::ostream &OS, const Codelet &C, const Expr &E) {
  switch (E.Kind) {
  case ExprKind::Load:
    printAccess(OS, C, E.Ref);
    return;
  case ExprKind::Constant:
    OS << "1 " << precisionName(E.Prec);
    return;
  case ExprKind::Binary: {
    static const char *Ops[] = {"+", "-", "*", "/"};
    OS << "(";
    printExpr(OS, C, *E.Lhs);
    OS << " " << Ops[static_cast<unsigned>(E.Bin)] << " ";
    printExpr(OS, C, *E.Rhs);
    OS << ")";
    return;
  }
  case ExprKind::Unary: {
    static const char *Fns[] = {"sqrt", "exp", "abs"};
    OS << Fns[static_cast<unsigned>(E.Un)] << "(";
    printExpr(OS, C, *E.Lhs);
    OS << ")";
    return;
  }
  }
  assert(false && "unknown expression kind");
}

void printCodeletBody(std::ostream &OS, const Codelet &C,
                      const std::string &Indent) {
  if (!C.Pattern.empty())
    OS << Indent << "pattern \"" << C.Pattern << "\";\n";
  for (const ArrayDecl &A : C.Arrays)
    OS << Indent << "array " << A.Name << " " << precisionName(A.Elem) << " "
       << A.NumElements << ";\n";
  OS << Indent << "loops " << C.Nest.InnerTripCount;
  if (C.Nest.OuterIterations != 1)
    OS << " outer " << C.Nest.OuterIterations;
  OS << ";\n";
  for (const InvocationGroup &G : C.Invocations) {
    OS << Indent << "invocations " << G.Count;
    if (G.DatasetScale != 1.0)
      OS << " scale " << G.DatasetScale;
    OS << ";\n";
  }
  if (C.Traits.CompilationContextSensitive)
    OS << Indent << "trait context-sensitive;\n";
  if (C.Traits.CacheStateSensitive)
    OS << Indent << "trait cache-state-sensitive;\n";
  for (const Stmt &S : C.Body) {
    OS << Indent;
    switch (S.Kind) {
    case StmtKind::Store:
      OS << "store ";
      printAccess(OS, C, S.Target);
      OS << " = ";
      break;
    case StmtKind::Recurrence:
      OS << "recur ";
      printAccess(OS, C, S.Target);
      OS << " = ";
      break;
    case StmtKind::Reduction:
      OS << "reduce " << (S.ReduceOp == BinOp::Mul ? "mul" : "add") << " ";
      break;
    }
    printExpr(OS, C, *S.Rhs);
    OS << ";\n";
  }
}

} // namespace

std::string fgbs::printCodelet(const Codelet &C) {
  std::ostringstream OS;
  OS << "codelet \"" << C.Name << "\" app \"" << C.App << "\" {\n";
  printCodeletBody(OS, C, "  ");
  OS << "}\n";
  return OS.str();
}

std::string fgbs::printSuite(const Suite &S) {
  std::ostringstream OS;
  OS << "suite \"" << S.Name << "\" {\n";
  for (const Application &App : S.Applications) {
    OS << "  application \"" << App.Name << "\" coverage " << App.Coverage
       << " {\n";
    for (const Codelet &C : App.Codelets) {
      OS << "    codelet \"" << C.Name << "\" {\n";
      printCodeletBody(OS, C, "      ");
      OS << "    }\n";
    }
    OS << "  }\n";
  }
  OS << "}\n";
  return OS.str();
}
