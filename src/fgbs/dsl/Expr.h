//===- fgbs/dsl/Expr.h - Codelet expression trees --------------*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Expression and statement trees forming the body of a codelet.
///
/// A codelet (paper section 3.1) is an outermost source loop without side
/// effects.  We represent its innermost-loop body as a small tree IR:
/// array loads with affine stride patterns, arithmetic, and three statement
/// forms (store, reduction, first-order recurrence).  The mini-compiler
/// (fgbs/compiler) lowers these trees to abstract instruction streams; the
/// simulator derives memory streams from the access patterns.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_DSL_EXPR_H
#define FGBS_DSL_EXPR_H

#include "fgbs/isa/Isa.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace fgbs {

/// Classification of an access's innermost-loop stride, matching the
/// "Stride" column of paper Table 3.
enum class StrideClass {
  Zero,    ///< Constant location (accumulator spilled to memory, scalar).
  Unit,    ///< Contiguous ascending (stride 1).
  NegUnit, ///< Contiguous descending (stride -1).
  Small,   ///< Small constant stride > 1 (e.g. 4 for interleaved FFT data).
  Lda,     ///< Leading-dimension stride: row-wise walk of a column-major
           ///< array (one new cache line per iteration).
  Stencil, ///< Multi-point stencil neighborhood.
};

/// Printable stride-class name as used in Table 3 ("0", "1", "-1", "LDA",
/// "stencil", ...).
std::string strideClassName(StrideClass Class);

/// An array referenced by a codelet.
struct ArrayDecl {
  std::string Name;
  Precision Elem;
  std::uint64_t NumElements; ///< Elements touched per invocation.

  std::uint64_t bytes() const { return NumElements * bytesPerElement(Elem); }
};

/// One affine access to an array inside the innermost loop.
struct Access {
  unsigned ArrayIndex;  ///< Index into the codelet's array table.
  StrideClass Stride;
  std::int64_t StrideElems; ///< Signed element stride per iteration
                            ///< (LDA accesses use the row length).
  unsigned PointsPerIter = 1; ///< Distinct touches per iteration
                              ///< (stencils touch several).
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Expression node kinds.
enum class ExprKind {
  Load,     ///< Array read.
  Constant, ///< Literal (kept in a register; no memory traffic).
  Binary,   ///< Add/Sub/Mul/Div.
  Unary,    ///< Sqrt/Exp/Abs.
};

/// Binary operators.
enum class BinOp { Add, Sub, Mul, Div };

/// Unary operators.
enum class UnOp { Sqrt, Exp, Abs };

/// An expression-tree node.  Precision is per node; mixed-precision trees
/// ("MP" rows of Table 3) are expressed naturally.
struct Expr {
  ExprKind Kind;
  Precision Prec;

  // Load payload.
  Access Ref{};

  // Binary/unary payload.
  BinOp Bin = BinOp::Add;
  UnOp Un = UnOp::Sqrt;
  ExprPtr Lhs;
  ExprPtr Rhs;

  /// Deep copy.
  ExprPtr clone() const;
};

/// Builders.
ExprPtr load(Access Ref, Precision Prec);
ExprPtr constant(Precision Prec);
ExprPtr binary(BinOp Op, ExprPtr Lhs, ExprPtr Rhs);
ExprPtr unary(UnOp Op, ExprPtr Operand);

inline ExprPtr add(ExprPtr L, ExprPtr R) {
  return binary(BinOp::Add, std::move(L), std::move(R));
}
inline ExprPtr sub(ExprPtr L, ExprPtr R) {
  return binary(BinOp::Sub, std::move(L), std::move(R));
}
inline ExprPtr mul(ExprPtr L, ExprPtr R) {
  return binary(BinOp::Mul, std::move(L), std::move(R));
}
inline ExprPtr div(ExprPtr L, ExprPtr R) {
  return binary(BinOp::Div, std::move(L), std::move(R));
}

/// Statement kinds: how the innermost loop consumes each expression.
enum class StmtKind {
  Store,      ///< A[i] = expr   (vectorizable if strides allow).
  Reduction,  ///< acc op= expr  (vectorizable with partial accumulators,
              ///<                but carries a loop dependency).
  Recurrence, ///< A[i] = f(A[i-1], ...) first-order recurrence: a serial
              ///< loop-carried chain that defeats vectorization.
};

/// One statement of the innermost loop body.
struct Stmt {
  StmtKind Kind;
  /// Store target (valid for Store and Recurrence).
  Access Target{};
  /// Reduction combiner (valid for Reduction).
  BinOp ReduceOp = BinOp::Add;
  /// Right-hand side.
  ExprPtr Rhs;

  Stmt clone() const;
};

/// Builders.
Stmt storeTo(Access Target, ExprPtr Rhs);
Stmt reduce(BinOp Op, ExprPtr Rhs);
Stmt recurrence(Access Target, ExprPtr Rhs);

/// Counts the expression nodes of kind Load in \p Root.
unsigned countLoads(const Expr &Root);

/// Walks all nodes of \p Root, invoking \p Visit on each.
void visitExpr(const Expr &Root, const std::function<void(const Expr &)> &Visit);

} // namespace fgbs

#endif // FGBS_DSL_EXPR_H
