//===- fgbs/dsl/Text.h - Textual codelet format -----------------*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A textual format for codelets and suites, with a printer and a
/// recursive-descent parser.  Suites can be authored, diffed and shipped
/// as plain text — the paper's extracted codelets are "portable
/// source-code snippets", and this format plays that role here.
///
/// Grammar (EBNF; '#' starts a line comment):
///
///   suite       := "suite" string "{" application* "}"
///   application := "application" string [ "coverage" number ]
///                  "{" codelet* "}"
///   codelet     := "codelet" string [ "app" string ] "{" item* "}"
///   item        := "pattern" string ";"
///                | "array" ident prec integer ";"
///                | "loops" integer [ "outer" integer ] ";"
///                | "invocations" integer [ "scale" number ] ";"
///                | "trait" ("context-sensitive"|"cache-state-sensitive") ";"
///                | "store"  access "=" expr ";"
///                | "reduce" ("add"|"mul") expr ";"
///                | "recur"  access "=" expr ";"
///   prec        := "dp" | "sp" | "i32" | "i64"
///   access      := ident "[" stride "]"
///   stride      := "0" | "1" | "-1"
///                | "small" "(" integer ")"
///                | "lda" "(" integer ")"
///                | "stencil" [ "(" integer [ "," integer ] ")" ]
///   expr        := term  (("+"|"-") term)*
///   term        := factor (("*"|"/") factor)*
///   factor      := access | number prec
///                | ("sqrt"|"exp"|"abs") "(" expr ")"
///                | "(" expr ")"
///
/// Arrays must be declared before use; loads take the array's element
/// precision.  Constant literals carry an explicit precision suffix
/// ("1.0 dp"); their numeric value is irrelevant to the performance
/// model and is not preserved.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_DSL_TEXT_H
#define FGBS_DSL_TEXT_H

#include "fgbs/dsl/Codelet.h"

#include <string>
#include <string_view>
#include <variant>

namespace fgbs {

/// A parse diagnostic: 1-based position plus a message in compiler
/// style ("expected ';' after statement").
struct ParseError {
  unsigned Line = 0;
  unsigned Column = 0;
  std::string Message;

  /// "line:col: message".
  std::string render() const;
};

/// Either a value or a diagnostic.
template <typename T> using ParseResult = std::variant<T, ParseError>;

/// Parses a single codelet definition.
ParseResult<Codelet> parseCodelet(std::string_view Text);

/// Parses a whole suite.
ParseResult<Suite> parseSuite(std::string_view Text);

/// Prints \p C in the textual format (parse(print(C)) reproduces C up to
/// constant values).
std::string printCodelet(const Codelet &C);

/// Prints a whole suite.
std::string printSuite(const Suite &S);

} // namespace fgbs

#endif // FGBS_DSL_TEXT_H
