//===- fgbs/model/Prediction.h - Step E: prediction model ------*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Step E: extrapolate full-suite results from representative
/// measurements (paper section 3.5).
///
/// Codelets of a cluster are assumed to share their representative's
/// speedup between the reference and a target:
///     t_tar(i) ~= t_ref(i) / s(rep(k)),  s(r) = t_ref(r) / t_tar(r)
/// In matrix form t_all = M . t_repr with M(i,k) = t_ref(i)/t_ref(rep_k)
/// for i in cluster k, 0 elsewhere.
///
/// Also here: the evaluation metrics of section 4.1 — per-codelet
/// prediction error, application-level aggregation (weighted by
/// invocation counts, scaled by codelet coverage), geometric-mean
/// speedups, and the benchmarking-reduction-factor breakdown of Table 5.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_MODEL_PREDICTION_H
#define FGBS_MODEL_PREDICTION_H

#include "fgbs/support/Matrix.h"

#include <cstddef>
#include <vector>

namespace fgbs {

/// The N x K extrapolation model.
class PredictionModel {
public:
  /// Builds the model from reference per-invocation times, a cluster
  /// assignment (values in [0, K)), and one representative index per
  /// cluster.  Representative reference times must be positive.
  static PredictionModel build(const std::vector<double> &RefTimes,
                               const std::vector<int> &Assignment,
                               const std::vector<std::size_t> &Representatives);

  /// Predicts per-codelet target times from the representatives'
  /// measured target times (one entry per cluster).
  std::vector<double> predict(const std::vector<double> &RepTargetTimes) const;

  /// The model matrix M (N rows, K columns).
  const Matrix &matrix() const { return M; }

  std::size_t numCodelets() const { return M.rows(); }
  std::size_t numClusters() const { return M.cols(); }

  const std::vector<std::size_t> &representatives() const { return Reps; }
  const std::vector<int> &assignment() const { return Assign; }

private:
  Matrix M;
  std::vector<std::size_t> Reps;
  std::vector<int> Assign;
};

/// Per-codelet prediction error, percent: |pred - real| / real * 100.
std::vector<double> predictionErrorsPercent(const std::vector<double> &Predicted,
                                            const std::vector<double> &Actual);

/// Application-level aggregation: given per-codelet times and invocation
/// counts, returns the application time scaled by codelet coverage
/// (section 4.4: the uncovered part is assumed to share the covered
/// part's speedup, so T_app = sum(t_i * n_i) / coverage).
double applicationTime(const std::vector<double> &CodeletTimes,
                       const std::vector<double> &InvocationCounts,
                       double Coverage);

/// Per-application speedup t_ref / t_tar, then the geometric mean over
/// applications (Figure 6).
double geometricMeanSpeedup(const std::vector<double> &RefAppTimes,
                            const std::vector<double> &TargetAppTimes);

/// The benchmarking-reduction breakdown of Table 5.
struct ReductionBreakdown {
  /// Full-suite benchmarking time on the target (every codelet, at its
  /// original invocation count).
  double FullSuiteSeconds = 0.0;
  /// All codelets at reduced invocation counts.
  double ReducedInvocationSeconds = 0.0;
  /// Representatives only, at reduced invocation counts.
  double RepresentativeSeconds = 0.0;

  /// Factor from reducing invocation counts alone.
  double invocationFactor() const {
    return ReducedInvocationSeconds > 0.0
               ? FullSuiteSeconds / ReducedInvocationSeconds
               : 0.0;
  }
  /// Factor from measuring only representatives.
  double clusteringFactor() const {
    return RepresentativeSeconds > 0.0
               ? ReducedInvocationSeconds / RepresentativeSeconds
               : 0.0;
  }
  /// Overall reduction factor.
  double totalFactor() const {
    return RepresentativeSeconds > 0.0
               ? FullSuiteSeconds / RepresentativeSeconds
               : 0.0;
  }
};

} // namespace fgbs

#endif // FGBS_MODEL_PREDICTION_H
