//===- fgbs/model/Prediction.cpp - Step E: prediction model ---------------===//

#include "fgbs/model/Prediction.h"

#include "fgbs/obs/Metrics.h"
#include "fgbs/support/Statistics.h"

#include <cassert>
#include <cmath>

using namespace fgbs;

PredictionModel
PredictionModel::build(const std::vector<double> &RefTimes,
                       const std::vector<int> &Assignment,
                       const std::vector<std::size_t> &Representatives) {
  assert(RefTimes.size() == Assignment.size() && "size mismatch");
  FGBS_COUNTER_ADD("model.builds", 1);
  PredictionModel Model;
  std::size_t N = RefTimes.size();
  std::size_t K = Representatives.size();
  Model.M = Matrix(N, K, 0.0);
  Model.Reps = Representatives;
  Model.Assign = Assignment;

  for (std::size_t I = 0; I < N; ++I) {
    int Cluster = Assignment[I];
    assert(Cluster >= 0 && static_cast<std::size_t>(Cluster) < K &&
           "assignment out of range");
    std::size_t Rep = Representatives[static_cast<std::size_t>(Cluster)];
    assert(Rep < N && "representative index out of range");
    assert(Assignment[Rep] == Cluster &&
           "representative must belong to its cluster");
    double RepRef = RefTimes[Rep];
    assert(RepRef > 0.0 && "representative reference time must be positive");
    Model.M.at(I, static_cast<std::size_t>(Cluster)) = RefTimes[I] / RepRef;
  }
  return Model;
}

std::vector<double>
PredictionModel::predict(const std::vector<double> &RepTargetTimes) const {
  assert(RepTargetTimes.size() == numClusters() && "one time per cluster");
  FGBS_COUNTER_ADD("model.predictions", 1);
  FGBS_COUNTER_ADD("model.predicted_codelets", M.rows());
  return M.multiply(RepTargetTimes);
}

std::vector<double>
fgbs::predictionErrorsPercent(const std::vector<double> &Predicted,
                              const std::vector<double> &Actual) {
  assert(Predicted.size() == Actual.size() && "size mismatch");
  std::vector<double> Errors(Predicted.size());
  for (std::size_t I = 0; I < Predicted.size(); ++I)
    Errors[I] = percentError(Predicted[I], Actual[I]);
  return Errors;
}

double fgbs::applicationTime(const std::vector<double> &CodeletTimes,
                             const std::vector<double> &InvocationCounts,
                             double Coverage) {
  assert(CodeletTimes.size() == InvocationCounts.size() && "size mismatch");
  assert(Coverage > 0.0 && Coverage <= 1.0 && "coverage out of range");
  double Covered = 0.0;
  for (std::size_t I = 0; I < CodeletTimes.size(); ++I)
    Covered += CodeletTimes[I] * InvocationCounts[I];
  return Covered / Coverage;
}

double fgbs::geometricMeanSpeedup(const std::vector<double> &RefAppTimes,
                                  const std::vector<double> &TargetAppTimes) {
  assert(RefAppTimes.size() == TargetAppTimes.size() && "size mismatch");
  std::vector<double> Speedups(RefAppTimes.size());
  for (std::size_t I = 0; I < RefAppTimes.size(); ++I) {
    assert(TargetAppTimes[I] > 0.0 && "target time must be positive");
    Speedups[I] = RefAppTimes[I] / TargetAppTimes[I];
  }
  return geometricMean(Speedups);
}
