//===- fgbs/core/Database.h - Measurement database --------------*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measurement database: every simulated measurement a study needs,
/// computed once and cached.
///
/// For each codelet it holds the reference profile (step B), the "real"
/// in-application times on every target (the ground truth the paper
/// compares predictions against), and the standalone microbenchmark
/// measurements on every machine (what step D/E actually run).
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_CORE_DATABASE_H
#define FGBS_CORE_DATABASE_H

#include "fgbs/analysis/Profiler.h"
#include "fgbs/extract/Extraction.h"

#include <vector>

namespace fgbs {

/// How a MeasurementDatabase runs its simulator sweep.
struct DatabaseOptions {
  /// Threads measuring work items.  0 = auto (the FGBS_THREADS
  /// environment variable, else hardware_concurrency()); 1 = strictly
  /// serial.  Any thread count yields bit-identical databases: every
  /// work item writes its own result slot and the measurements are
  /// deterministic (the ThreadPool contract).
  unsigned Threads = 0;
};

/// Eagerly computed measurement store for one suite.
class MeasurementDatabase {
public:
  /// Profiles \p S on \p Reference and measures it on every machine in
  /// \p Targets.  \p S must outlive the database.  The simulator sweep
  /// fans out one work item per (codelet, machine, measurement kind)
  /// over \p Options.Threads threads, sharing one compile memo.
  MeasurementDatabase(const Suite &S, Machine Reference,
                      std::vector<Machine> Targets,
                      const TimingPolicy &Policy = {},
                      const DatabaseOptions &Options = {});

  /// Reassembles a database from previously computed measurements (the
  /// fgbs.meas.v1 cache loader).  The vectors must be mutually
  /// consistent: one profile/standalone per codelet of \p S, one
  /// [target][codelet] grid per machine in \p Targets, and every
  /// CodeletProfile::C pointing into \p S.
  MeasurementDatabase(const Suite &S, Machine Reference,
                      std::vector<Machine> Targets,
                      std::vector<CodeletProfile> Profiles,
                      std::vector<std::vector<Measurement>> RealTarget,
                      std::vector<StandaloneMeasurement> StandaloneOnRef,
                      std::vector<std::vector<StandaloneMeasurement>>
                          StandaloneOnTarget);

  const Suite &suite() const { return *TheSuite; }
  const Machine &reference() const { return Reference; }
  const std::vector<Machine> &targets() const { return Targets; }

  std::size_t numCodelets() const { return Profiles.size(); }

  /// The step-B profile (reference, in application, features).
  const CodeletProfile &profile(std::size_t Codelet) const {
    return Profiles[Codelet];
  }

  /// The codelet object behind index \p Codelet.
  const Codelet &codelet(std::size_t Codelet) const {
    return *Profiles[Codelet].C;
  }

  /// Ground truth: measured in-application per-invocation seconds of
  /// codelet \p Codelet on target \p Target.
  double realTargetSeconds(std::size_t Codelet, std::size_t Target) const {
    return RealTarget[Target][Codelet].MeasuredSeconds;
  }

  /// Full in-application measurement on a target.
  const Measurement &realTargetMeasurement(std::size_t Codelet,
                                           std::size_t Target) const {
    return RealTarget[Target][Codelet];
  }

  /// Standalone microbenchmark measurement on the reference machine
  /// (used by the 10% well-behaved test).
  const StandaloneMeasurement &standaloneRef(std::size_t Codelet) const {
    return StandaloneOnRef[Codelet];
  }

  /// Standalone microbenchmark measurement on target \p Target.
  const StandaloneMeasurement &standaloneTarget(std::size_t Codelet,
                                                std::size_t Target) const {
    return StandaloneOnTarget[Target][Codelet];
  }

  /// Indices of codelets surviving the 1M-cycle profiling filter.
  std::vector<std::size_t> keptCodelets() const;

  /// True when \p Codelet passes the section 3.4 agreement test on the
  /// reference machine.
  bool isWellBehavedOnRef(std::size_t Codelet) const;

private:
  const Suite *TheSuite;
  Machine Reference;
  std::vector<Machine> Targets;
  std::vector<CodeletProfile> Profiles;
  /// [target][codelet]
  std::vector<std::vector<Measurement>> RealTarget;
  std::vector<StandaloneMeasurement> StandaloneOnRef;
  /// [target][codelet]
  std::vector<std::vector<StandaloneMeasurement>> StandaloneOnTarget;
};

} // namespace fgbs

#endif // FGBS_CORE_DATABASE_H
