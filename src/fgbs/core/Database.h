//===- fgbs/core/Database.h - Measurement database --------------*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measurement database: every simulated measurement a study needs,
/// computed once and cached.
///
/// For each codelet it holds the reference profile (step B), the "real"
/// in-application times on every target (the ground truth the paper
/// compares predictions against), and the standalone microbenchmark
/// measurements on every machine (what step D/E actually run).
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_CORE_DATABASE_H
#define FGBS_CORE_DATABASE_H

#include "fgbs/analysis/Profiler.h"
#include "fgbs/extract/Extraction.h"

#include <vector>

namespace fgbs {

class CompileCache;

/// One (codelet, machine, kind) work item of the simulator sweep,
/// decoded from the flat item index space the MeasurementDatabase ctor
/// fans out over — and the unit of distribution for the simulation
/// farm: a remote worker executes exactly one of these per claim.
enum class MeasurementItemKind : std::uint32_t {
  ProfileRef = 0,       ///< Step-B profile on the reference machine.
  StandaloneRef = 1,    ///< Standalone microbenchmark on the reference.
  InAppTarget = 2,      ///< Ground-truth in-app time on one target.
  StandaloneTarget = 3, ///< Standalone microbenchmark on one target.
};

struct MeasurementItem {
  MeasurementItemKind Kind = MeasurementItemKind::ProfileRef;
  std::size_t Codelet = 0;
  std::size_t Target = 0; ///< Valid for the *Target kinds only.
};

/// Total work items for a sweep of \p NumCodelets codelets over
/// \p NumTargets targets: N * (2 + 2T).
std::size_t measurementItemCount(std::size_t NumCodelets,
                                 std::size_t NumTargets);

/// Decodes flat index \p Item (kind-major layout, see Database.cpp) into
/// its (kind, codelet, target) triple.  \p Item must be below
/// measurementItemCount(\p NumCodelets, \p NumTargets).
MeasurementItem decodeMeasurementItem(std::size_t Item,
                                      std::size_t NumCodelets,
                                      std::size_t NumTargets);

/// The result of one work item; only the field matching Kind is set.
struct MeasurementItemResult {
  MeasurementItemKind Kind = MeasurementItemKind::ProfileRef;
  CodeletProfile Profile;           ///< ProfileRef.
  Measurement InApp;                ///< InAppTarget.
  StandaloneMeasurement Standalone; ///< StandaloneRef/StandaloneTarget.
};

/// Executes one work item — the same calls, in the same form, the
/// MeasurementDatabase ctor makes, so a farm worker's result is
/// bit-identical to a local sweep's.  \p Item.Codelet indexes
/// \p S.allCodelets(); \p Compile may be null.
MeasurementItemResult executeMeasurementItem(const Codelet &C,
                                             const Machine &Reference,
                                             const std::vector<Machine> &Targets,
                                             const TimingPolicy &Policy,
                                             const MeasurementItem &Item,
                                             CompileCache *Compile);

/// How a MeasurementDatabase runs its simulator sweep.
struct DatabaseOptions {
  /// Threads measuring work items.  0 = auto (the FGBS_THREADS
  /// environment variable, else hardware_concurrency()); 1 = strictly
  /// serial.  Any thread count yields bit-identical databases: every
  /// work item writes its own result slot and the measurements are
  /// deterministic (the ThreadPool contract).
  unsigned Threads = 0;
};

/// Eagerly computed measurement store for one suite.
class MeasurementDatabase {
public:
  /// Profiles \p S on \p Reference and measures it on every machine in
  /// \p Targets.  \p S must outlive the database.  The simulator sweep
  /// fans out one work item per (codelet, machine, measurement kind)
  /// over \p Options.Threads threads, sharing one compile memo.
  MeasurementDatabase(const Suite &S, Machine Reference,
                      std::vector<Machine> Targets,
                      const TimingPolicy &Policy = {},
                      const DatabaseOptions &Options = {});

  /// Reassembles a database from previously computed measurements (the
  /// fgbs.meas.v1 cache loader).  The vectors must be mutually
  /// consistent: one profile/standalone per codelet of \p S, one
  /// [target][codelet] grid per machine in \p Targets, and every
  /// CodeletProfile::C pointing into \p S.
  MeasurementDatabase(const Suite &S, Machine Reference,
                      std::vector<Machine> Targets,
                      std::vector<CodeletProfile> Profiles,
                      std::vector<std::vector<Measurement>> RealTarget,
                      std::vector<StandaloneMeasurement> StandaloneOnRef,
                      std::vector<std::vector<StandaloneMeasurement>>
                          StandaloneOnTarget);

  const Suite &suite() const { return *TheSuite; }
  const Machine &reference() const { return Reference; }
  const std::vector<Machine> &targets() const { return Targets; }

  std::size_t numCodelets() const { return Profiles.size(); }

  /// The step-B profile (reference, in application, features).
  const CodeletProfile &profile(std::size_t Codelet) const {
    return Profiles[Codelet];
  }

  /// The codelet object behind index \p Codelet.
  const Codelet &codelet(std::size_t Codelet) const {
    return *Profiles[Codelet].C;
  }

  /// Ground truth: measured in-application per-invocation seconds of
  /// codelet \p Codelet on target \p Target.
  double realTargetSeconds(std::size_t Codelet, std::size_t Target) const {
    return RealTarget[Target][Codelet].MeasuredSeconds;
  }

  /// Full in-application measurement on a target.
  const Measurement &realTargetMeasurement(std::size_t Codelet,
                                           std::size_t Target) const {
    return RealTarget[Target][Codelet];
  }

  /// Standalone microbenchmark measurement on the reference machine
  /// (used by the 10% well-behaved test).
  const StandaloneMeasurement &standaloneRef(std::size_t Codelet) const {
    return StandaloneOnRef[Codelet];
  }

  /// Standalone microbenchmark measurement on target \p Target.
  const StandaloneMeasurement &standaloneTarget(std::size_t Codelet,
                                                std::size_t Target) const {
    return StandaloneOnTarget[Target][Codelet];
  }

  /// Indices of codelets surviving the 1M-cycle profiling filter.
  std::vector<std::size_t> keptCodelets() const;

  /// True when \p Codelet passes the section 3.4 agreement test on the
  /// reference machine.
  bool isWellBehavedOnRef(std::size_t Codelet) const;

private:
  const Suite *TheSuite;
  Machine Reference;
  std::vector<Machine> Targets;
  std::vector<CodeletProfile> Profiles;
  /// [target][codelet]
  std::vector<std::vector<Measurement>> RealTarget;
  std::vector<StandaloneMeasurement> StandaloneOnRef;
  /// [target][codelet]
  std::vector<std::vector<StandaloneMeasurement>> StandaloneOnTarget;
};

} // namespace fgbs

#endif // FGBS_CORE_DATABASE_H
