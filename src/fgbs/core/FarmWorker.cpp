//===- fgbs/core/FarmWorker.cpp - Simulation-farm worker loop -------------===//

#include "fgbs/core/FarmWorker.h"

#include "fgbs/compiler/CompileCache.h"
#include "fgbs/core/FarmSpec.h"
#include "fgbs/obs/Metrics.h"

#include <chrono>
#include <map>
#include <memory>
#include <thread>

using namespace fgbs;

namespace {

std::uint64_t steadyMs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void sleepMs(std::uint64_t Ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
}

/// A fetched-and-validated job, memoized per key: the suite the result
/// profiles point into, the codelet pointer table, and the compile memo
/// shared by every item of the sweep.
struct JobContext {
  FarmJob Job;
  std::vector<const Codelet *> Codelets;
  CompileCache Compile;
};

/// How a claimed item was retired.
enum class ItemOutcome {
  Executed,       ///< Simulated, part published, completed.
  AlreadyPresent, ///< Part existed; completed without simulating.
  BadSpec,        ///< Undecodable/out-of-range; completed to retire it
                  ///< (the enqueuer re-enqueues a fresh spec if the
                  ///< part is still missing).
  Abandoned,      ///< Returned to the queue for another worker.
};

ItemOutcome
runOneItem(RemoteCacheBackend &Backend,
           std::map<std::uint64_t, std::unique_ptr<JobContext>> &Jobs,
           const net::ClaimedWork &Work, std::uint64_t Token) {
  auto retire = [&](ItemOutcome Outcome) {
    if (Outcome == ItemOutcome::Abandoned)
      Backend.abandonWork(Work.Name, Token);
    else
      Backend.completeWork(Work.Name, Token);
    return Outcome;
  };

  FarmWorkSpec Spec;
  if (!decodeFarmWorkSpec(Work.Spec, Spec))
    return retire(ItemOutcome::BadSpec);

  // Idempotence fast path: a requeue of an item some earlier worker
  // already published costs one exists() round trip, not a simulation.
  const std::string PartName = farmPartEntryName(Spec.Key, Spec.Item);
  if (Backend.exists(PartName))
    return retire(ItemOutcome::AlreadyPresent);

  JobContext *Ctx = nullptr;
  if (auto It = Jobs.find(Spec.Key); It != Jobs.end()) {
    Ctx = It->second.get();
  } else {
    // First item of this sweep: fetch and validate the job blob.  A
    // missing or damaged blob is not this worker's fault — abandon so
    // the item requeues and retries once the enqueuer has published
    // (or republished) it.
    std::string Bytes;
    if (!Backend.get(Spec.JobEntry, Bytes))
      return retire(ItemOutcome::Abandoned);
    auto Fresh = std::make_unique<JobContext>();
    if (parseFarmJob(Bytes, Fresh->Job) != FarmSpecError::None ||
        Fresh->Job.Key != Spec.Key)
      return retire(ItemOutcome::Abandoned);
    Fresh->Codelets = Fresh->Job.S.allCodelets();
    Ctx = Jobs.emplace(Spec.Key, std::move(Fresh)).first->second.get();
  }

  if (Spec.Item >= Ctx->Job.itemCount())
    return retire(ItemOutcome::BadSpec);

  const MeasurementItem Item = decodeMeasurementItem(
      Spec.Item, Ctx->Codelets.size(), Ctx->Job.Targets.size());
  const MeasurementItemResult R = executeMeasurementItem(
      *Ctx->Codelets[Item.Codelet], Ctx->Job.Reference, Ctx->Job.Targets,
      Ctx->Job.Policy, Item, &Ctx->Compile);

  // Publish before completing: if the put fails (server briefly gone)
  // the lease lapses and the item requeues — never a completed item
  // without a durable part.
  if (!Backend.put(PartName, serializeFarmPart(Spec.Key, Spec.Item, R)))
    return retire(ItemOutcome::Abandoned);
  return retire(ItemOutcome::Executed);
}

} // namespace

WorkerStats fgbs::runWorkerLoop(const WorkerConfig &Config) {
  RemoteCacheBackend Backend(Config.Remote);
  const std::uint64_t Token =
      Config.Token ? Config.Token : makeOwnerToken();
  const std::uint64_t LeaseTtlMs =
      Config.LeaseTtlMs ? Config.LeaseTtlMs : 30000;
  const std::uint64_t PollMs = Config.PollMs ? Config.PollMs : 200;

  WorkerStats Stats;
  std::map<std::uint64_t, std::unique_ptr<JobContext>> Jobs;
  std::vector<net::ClaimedWork> Batch;
  unsigned IdleRounds = 0;
  std::uint64_t IdleSinceMs = steadyMs();

  auto stopping = [&] { return Config.Stop && Config.Stop->load(); };
  auto budgetDone = [&] {
    return Config.MaxItems && Stats.Executed >= Config.MaxItems;
  };

  while (!stopping() && !budgetDone()) {
    Batch.clear();
    const std::uint32_t Want = Config.ClaimBatch ? Config.ClaimBatch : 1;
    Backend.claimWork(Token, LeaseTtlMs, Want, Batch);

    if (Batch.empty()) {
      // Empty queue and network failure look the same on purpose: poll
      // again on a jittered, backed-off schedule.
      const std::uint64_t Now = steadyMs();
      if (Config.IdleExitMs && Now - IdleSinceMs >= Config.IdleExitMs)
        break;
      sleepMs(retryBackoffMs(IdleRounds < 3 ? IdleRounds : 3, PollMs,
                             PollMs * 8, Token));
      ++IdleRounds;
      continue;
    }
    IdleRounds = 0;
    IdleSinceMs = steadyMs();
    Stats.Claimed += Batch.size();
    FGBS_COUNTER_ADD("farm.worker.claimed", Batch.size());

    if (Config.PostClaimDelayMs)
      sleepMs(Config.PostClaimDelayMs);

    for (std::size_t I = 0; I < Batch.size(); ++I) {
      if (stopping() || budgetDone()) {
        // Hand unworked items straight back instead of letting their
        // leases run out.
        for (std::size_t J = I; J < Batch.size(); ++J) {
          Backend.abandonWork(Batch[J].Name, Token);
          ++Stats.Abandoned;
        }
        break;
      }
      // Renew the leases of everything still unworked in this batch so
      // a slow simulation at the front cannot let the tail expire.
      if (I > 0) {
        std::vector<std::string> Remaining;
        for (std::size_t J = I; J < Batch.size(); ++J)
          Remaining.push_back(Batch[J].Name);
        Backend.heartbeatWork(Token, LeaseTtlMs, Remaining);
      }
      switch (runOneItem(Backend, Jobs, Batch[I], Token)) {
      case ItemOutcome::Executed:
        ++Stats.Executed;
        ++Stats.Completed;
        FGBS_COUNTER_ADD("farm.worker.executed", 1);
        break;
      case ItemOutcome::AlreadyPresent:
        ++Stats.AlreadyPresent;
        ++Stats.Completed;
        FGBS_COUNTER_ADD("farm.worker.already_present", 1);
        break;
      case ItemOutcome::BadSpec:
        ++Stats.BadSpecs;
        FGBS_COUNTER_ADD("farm.worker.bad_specs", 1);
        break;
      case ItemOutcome::Abandoned:
        ++Stats.Abandoned;
        FGBS_COUNTER_ADD("farm.worker.abandoned", 1);
        break;
      }
      IdleSinceMs = steadyMs();
    }
  }
  return Stats;
}
