//===- fgbs/core/RemoteCacheBackend.cpp - Wire-protocol client ------------===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "fgbs/core/RemoteCacheBackend.h"

#include "fgbs/obs/Json.h"
#include "fgbs/obs/Metrics.h"
#include "fgbs/support/BinaryIo.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <random>
#include <thread>

#include <unistd.h>

using namespace fgbs;
using namespace fgbs::binio;
using namespace fgbs::net;

namespace {

std::uint64_t steadyMs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// A fleet-unique lease owner token: pid in the high bits (debuggable in
/// a server dump), randomness below so two processes recycling one pid
/// across hosts still cannot collide.  Never zero — zero is the wire
/// protocol's "no owner".
std::uint64_t makeLeaseToken() {
  static thread_local std::mt19937_64 Rng(
      std::random_device{}() ^
      (static_cast<std::uint64_t>(::getpid()) << 32) ^ steadyMs());
  std::uint64_t Token = (static_cast<std::uint64_t>(::getpid()) << 32) ^
                        (Rng() & 0xffffffffu);
  return Token ? Token : 1;
}

/// The server lease as a WriterLock: acquire polls LockAcquire with the
/// FileLock backoff schedule, heartbeat re-acquires (renewal: same
/// token always re-grants and pushes the expiry out one TTL), release
/// sends LockRelease.  When the server is unreachable the lock acquires
/// anyway — the remote tier degrades, it never blocks a run — and
/// release then has nothing to undo.
class RemoteWriterLock final : public WriterLock {
public:
  RemoteWriterLock(RemoteCacheBackend &Backend, std::string Name)
      : Backend(Backend), Name(std::move(Name)), Token(makeLeaseToken()) {}

  ~RemoteWriterLock() override { release(); }

  Result acquire(const FileLock::Options &O) override {
    const std::uint64_t Start = steadyMs();
    const std::uint64_t Deadline = Start + O.TimeoutMs;
    unsigned Attempt = 0;
    Result Out;
    while (true) {
      bool Granted = false;
      if (!Backend.lockAcquire(Name, Token, Granted)) {
        // Server unreachable: the writer election degrades to whatever
        // the local tier provides.  Granting here (rather than failing)
        // keeps a dead server from stalling every training run; the
        // cost is a possible duplicate simulation, which the cache
        // absorbs (puts are idempotent for content-addressed entries).
        Out.Acquired = true;
        Out.Message = "remote lease unavailable; proceeding unleased";
        Out.WaitedMs = steadyMs() - Start;
        Held = false;
        return Out;
      }
      if (Granted) {
        Out.Acquired = true;
        Out.WaitedMs = steadyMs() - Start;
        Held = true;
        return Out;
      }
      const std::uint64_t Now = steadyMs();
      if (Now >= Deadline) {
        Out.TimedOut = true;
        Out.WaitedMs = Now - Start;
        Out.Message = "timed out waiting for remote writer lease '" + Name +
                      "' from " + Backend.address();
        return Out;
      }
      // Jittered (keyed on the lease token) so contending writers do
      // not re-poll the server in phase.
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::min(retryBackoffMs(Attempt++, O.InitialBackoffMs,
                                  O.MaxBackoffMs ? O.MaxBackoffMs
                                                 : O.InitialBackoffMs,
                                  Token),
                   Deadline - Now)));
    }
  }

  void heartbeat() override {
    if (!Held)
      return;
    bool Granted = false;
    Backend.lockAcquire(Name, Token, Granted);
  }

  void release() override {
    if (!Held)
      return;
    Held = false;
    Backend.lockRelease(Name, Token);
  }

private:
  RemoteCacheBackend &Backend;
  std::string Name;
  std::uint64_t Token;
  bool Held = false;
};

} // namespace

std::uint64_t fgbs::retryBackoffMs(unsigned Attempt, std::uint64_t InitialMs,
                                   std::uint64_t MaxMs, std::uint64_t Seed) {
  if (InitialMs == 0)
    InitialMs = 1;
  if (MaxMs < InitialMs)
    MaxMs = InitialMs;
  // Saturating base = min(InitialMs << Attempt, MaxMs).
  std::uint64_t Base = MaxMs;
  if (Attempt < 63 && (MaxMs >> Attempt) >= InitialMs)
    Base = InitialMs << Attempt;
  // splitmix64 over (Seed, Attempt): deterministic per client, distinct
  // across clients, no shared-state RNG to lock.
  std::uint64_t Z = Seed + 0x9e3779b97f4a7c15ull * (Attempt + 1);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  Z ^= Z >> 31;
  const std::uint64_t Low = Base - Base / 2; // ceil(Base / 2), never 0.
  return Low + Z % (Base - Low + 1);
}

std::uint64_t fgbs::makeOwnerToken() { return makeLeaseToken(); }

bool fgbs::parseRemoteCacheAddress(const std::string &Spec,
                                   RemoteCacheConfig &Out) {
  return parseHostPort(Spec, Out.Host, Out.Port);
}

RemoteCacheBackend::RemoteCacheBackend(RemoteCacheConfig Config)
    : Config(std::move(Config)), BackoffSeed(makeLeaseToken()) {
  if (this->Config.MaxAttempts == 0)
    this->Config.MaxAttempts = 1;
}

bool RemoteCacheBackend::request(Opcode Op, std::string_view Payload,
                                 Frame &Response) const {
  std::lock_guard<std::mutex> Guard(Mutex);
  bool SawTimeout = false;
  std::string LastError;
  for (unsigned Attempt = 0; Attempt < Config.MaxAttempts; ++Attempt) {
    if (Attempt > 0) {
      Conn.close();
      // Jittered so a fleet that lost the same server does not retry in
      // lockstep and re-stampede it the instant it returns.
      std::this_thread::sleep_for(std::chrono::milliseconds(retryBackoffMs(
          Attempt - 1, Config.InitialBackoffMs, Config.MaxBackoffMs,
          BackoffSeed)));
    }
    if (!Conn.valid()) {
      std::string ConnectError;
      Conn = Socket::connectTo(Config.Host, Config.Port,
                               Config.ConnectTimeoutMs, &ConnectError);
      if (!Conn.valid()) {
        LastError = ConnectError;
        continue;
      }
    }
    if (!writeFrame(Conn, Op, Payload, Config.RequestTimeoutMs)) {
      // A pooled connection the server idled out surfaces here; the
      // retry's fresh connection is the real attempt.
      LastError = "send failed";
      Conn.close();
      continue;
    }
    WireError E = readFrame(Conn, Response, Config.RequestTimeoutMs);
    if (E == WireError::None)
      return true;
    SawTimeout = SawTimeout || E == WireError::Timeout;
    LastError = std::string("response: ") + wireErrorName(E);
    Conn.close();
  }
  FGBS_COUNTER_ADD("db.cache.remote.errors", 1);
  if (SawTimeout)
    FGBS_COUNTER_ADD("db.cache.remote.timeouts", 1);
  if (!WarnedUnreachable) {
    WarnedUnreachable = true;
    std::fprintf(stderr,
                 "fgbs: warning: remote measurement cache %s unavailable "
                 "(%s; op %s); continuing without it\n",
                 address().c_str(), LastError.c_str(), opcodeName(Op));
  }
  return false;
}

bool RemoteCacheBackend::ping() const {
  Frame Response;
  return request(Opcode::Ping, {}, Response) && Response.Op == Opcode::Ok;
}

bool RemoteCacheBackend::exists(const std::string &Name) const {
  std::string Payload;
  putStr(Payload, Name);
  Frame Response;
  if (!request(Opcode::Exists, Payload, Response) ||
      Response.Op != Opcode::Ok)
    return false;
  ByteReader In(Response.Payload);
  bool Present = In.u8() != 0;
  return !In.overrun() && Present;
}

bool RemoteCacheBackend::get(const std::string &Name,
                             std::string &BytesOut) const {
  std::string Payload;
  putStr(Payload, Name);
  Frame Response;
  if (!request(Opcode::Get, Payload, Response) || Response.Op != Opcode::Ok)
    return false;
  BytesOut = std::move(Response.Payload);
  return true;
}

bool RemoteCacheBackend::put(const std::string &Name, std::string_view Bytes) {
  std::string Payload;
  putStr(Payload, Name);
  Payload.append(Bytes.data(), Bytes.size());
  Frame Response;
  return request(Opcode::Put, Payload, Response) && Response.Op == Opcode::Ok;
}

bool RemoteCacheBackend::remove(const std::string &Name) {
  std::string Payload;
  putStr(Payload, Name);
  Frame Response;
  if (!request(Opcode::Remove, Payload, Response) ||
      Response.Op != Opcode::Ok)
    return false;
  ByteReader In(Response.Payload);
  bool Removed = In.u8() != 0;
  return !In.overrun() && Removed;
}

std::vector<CacheEntry>
RemoteCacheBackend::scan(const std::string &Prefix,
                         const std::string &Suffix) const {
  std::string Payload;
  putStr(Payload, Prefix);
  putStr(Payload, Suffix);
  Frame Response;
  if (!request(Opcode::Scan, Payload, Response) || Response.Op != Opcode::Ok)
    return {};
  ByteReader In(Response.Payload);
  std::uint32_t Count = In.u32();
  std::vector<CacheEntry> Out;
  Out.reserve(std::min<std::uint32_t>(Count, 4096));
  for (std::uint32_t I = 0; I < Count && !In.overrun(); ++I) {
    CacheEntry E;
    E.Name = In.str();
    E.SizeBytes = In.u64();
    E.AccessUnixSeconds = static_cast<std::int64_t>(In.u64());
    Out.push_back(std::move(E));
  }
  if (In.overrun())
    return {};
  return Out;
}

ScanPrefixResult
RemoteCacheBackend::scanPrefix(const std::string &Prefix) const {
  ScanPrefixResult R;
  std::string Payload;
  putStr(Payload, Prefix);
  Frame Response;
  if (!request(Opcode::ScanPrefix, Payload, Response)) {
    R.Outcome = ScanPrefixOutcome::Failed;
    R.Message = "scan_prefix: " + address() + " unreachable";
    return R;
  }
  if (Response.Op == Opcode::Error) {
    ByteReader ErrIn(Response.Payload);
    std::string Message = ErrIn.str();
    // A pre-namespace server answers every unknown opcode with this
    // message; that is "the server cannot enumerate", not "nothing
    // matched", and the two must stay distinguishable.
    if (Message.find("unsupported opcode") != std::string::npos) {
      R.Outcome = ScanPrefixOutcome::Unsupported;
      R.Message = address() + " predates scan_prefix";
      return R;
    }
    R.Outcome = ScanPrefixOutcome::Failed;
    R.Message = "scan_prefix: " + Message;
    return R;
  }
  if (Response.Op != Opcode::Ok) {
    R.Outcome = ScanPrefixOutcome::Failed;
    R.Message = "scan_prefix: unexpected response";
    return R;
  }
  ByteReader In(Response.Payload);
  std::uint32_t Count = In.u32();
  R.Entries.reserve(std::min<std::uint32_t>(Count, 4096));
  for (std::uint32_t I = 0; I < Count && !In.overrun(); ++I) {
    CacheEntry E;
    E.Name = In.str();
    E.SizeBytes = In.u64();
    E.AccessUnixSeconds = static_cast<std::int64_t>(In.u64());
    R.Entries.push_back(std::move(E));
  }
  if (In.overrun() || R.Entries.size() != Count) {
    R.Entries.clear();
    R.Outcome = ScanPrefixOutcome::Failed;
    R.Message = "scan_prefix: damaged listing";
  }
  return R;
}

std::string RemoteCacheBackend::lockPath(const std::string &) const {
  // The server owns atomicity and lifecycle; there is no local lock
  // file to point at.  Writer election goes through writerLock().
  return {};
}

std::unique_ptr<WriterLock>
RemoteCacheBackend::writerLock(const std::string &Name) {
  return std::make_unique<RemoteWriterLock>(*this, Name);
}

bool RemoteCacheBackend::pruneRemote(std::uint64_t MaxBytes,
                                     std::uint64_t MaxAgeSeconds,
                                     std::uint64_t ModelMaxBytes,
                                     std::uint64_t ModelMaxAgeSeconds,
                                     std::uint64_t *EntriesOut,
                                     std::uint64_t *RemovedOut) {
  std::string Payload;
  putU64(Payload, MaxBytes);
  putU64(Payload, MaxAgeSeconds);
  putU64(Payload, ModelMaxBytes);
  putU64(Payload, ModelMaxAgeSeconds);
  Frame Response;
  if (!request(Opcode::Prune, Payload, Response) || Response.Op != Opcode::Ok)
    return false;
  ByteReader In(Response.Payload);
  std::uint64_t Entries = In.u64();
  std::uint64_t Removed = In.u64();
  if (In.overrun())
    return false;
  if (EntriesOut)
    *EntriesOut = Entries;
  if (RemovedOut)
    *RemovedOut = Removed;
  return true;
}

bool RemoteCacheBackend::pruneRemote(std::uint64_t MaxBytes,
                                     std::uint64_t MaxAgeSeconds,
                                     std::uint64_t *EntriesOut,
                                     std::uint64_t *RemovedOut) {
  std::string Payload;
  putU64(Payload, MaxBytes);
  putU64(Payload, MaxAgeSeconds);
  Frame Response;
  if (!request(Opcode::Prune, Payload, Response) || Response.Op != Opcode::Ok)
    return false;
  ByteReader In(Response.Payload);
  std::uint64_t Entries = In.u64();
  std::uint64_t Removed = In.u64();
  if (In.overrun())
    return false;
  if (EntriesOut)
    *EntriesOut = Entries;
  if (RemovedOut)
    *RemovedOut = Removed;
  return true;
}

bool RemoteCacheBackend::lockAcquire(const std::string &Name,
                                     std::uint64_t Token, bool &GrantedOut) {
  std::string Payload;
  putStr(Payload, Name);
  putU64(Payload, Token);
  putU64(Payload, Config.LeaseTtlMs ? Config.LeaseTtlMs : 1);
  Frame Response;
  if (!request(Opcode::LockAcquire, Payload, Response) ||
      Response.Op != Opcode::Ok)
    return false;
  ByteReader In(Response.Payload);
  GrantedOut = In.u8() != 0;
  return !In.overrun();
}

bool RemoteCacheBackend::lockRelease(const std::string &Name,
                                     std::uint64_t Token) {
  std::string Payload;
  putStr(Payload, Name);
  putU64(Payload, Token);
  Frame Response;
  return request(Opcode::LockRelease, Payload, Response) &&
         Response.Op == Opcode::Ok;
}

bool RemoteCacheBackend::enqueueWork(const std::string &Name,
                                     std::string_view Spec,
                                     EnqueueStatus *StatusOut) {
  std::string Payload;
  putStr(Payload, Name);
  putStr(Payload, std::string(Spec));
  Frame Response;
  if (!request(Opcode::EnqueueWork, Payload, Response) ||
      Response.Op != Opcode::Ok)
    return false;
  ByteReader In(Response.Payload);
  std::uint8_t Raw = In.u8();
  if (In.overrun() || Raw > 2)
    return false;
  if (StatusOut)
    *StatusOut = static_cast<EnqueueStatus>(Raw);
  return true;
}

bool RemoteCacheBackend::claimWork(std::uint64_t Token, std::uint64_t TtlMs,
                                   std::uint32_t MaxItems,
                                   std::vector<net::ClaimedWork> &Out) {
  Out.clear();
  std::string Payload;
  putU64(Payload, Token);
  putU64(Payload, TtlMs);
  putU32(Payload, MaxItems);
  Frame Response;
  if (!request(Opcode::ClaimWork, Payload, Response) ||
      Response.Op != Opcode::Ok)
    return false;
  ByteReader In(Response.Payload);
  std::uint32_t Count = In.u32();
  Out.reserve(std::min<std::uint32_t>(Count, 256));
  for (std::uint32_t I = 0; I < Count && !In.overrun(); ++I) {
    net::ClaimedWork W;
    W.Name = In.str();
    W.Spec = In.str();
    Out.push_back(std::move(W));
  }
  if (In.overrun() || Out.size() != Count) {
    Out.clear();
    return false;
  }
  return true;
}

bool RemoteCacheBackend::heartbeatWork(std::uint64_t Token,
                                       std::uint64_t TtlMs,
                                       const std::vector<std::string> &Names,
                                       std::uint32_t *RenewedOut) {
  std::string Payload;
  putU64(Payload, Token);
  putU64(Payload, TtlMs);
  putU32(Payload, static_cast<std::uint32_t>(Names.size()));
  for (const std::string &Name : Names)
    putStr(Payload, Name);
  Frame Response;
  if (!request(Opcode::Heartbeat, Payload, Response) ||
      Response.Op != Opcode::Ok)
    return false;
  ByteReader In(Response.Payload);
  std::uint32_t Renewed = In.u32();
  if (In.overrun())
    return false;
  if (RenewedOut)
    *RenewedOut = Renewed;
  return true;
}

bool RemoteCacheBackend::completeWork(const std::string &Name,
                                      std::uint64_t Token) {
  std::string Payload;
  putStr(Payload, Name);
  putU64(Payload, Token);
  Frame Response;
  if (!request(Opcode::CompleteWork, Payload, Response) ||
      Response.Op != Opcode::Ok)
    return false;
  ByteReader In(Response.Payload);
  bool Removed = In.u8() != 0;
  return !In.overrun() && Removed;
}

bool RemoteCacheBackend::abandonWork(const std::string &Name,
                                     std::uint64_t Token) {
  std::string Payload;
  putStr(Payload, Name);
  putU64(Payload, Token);
  Frame Response;
  if (!request(Opcode::AbandonWork, Payload, Response) ||
      Response.Op != Opcode::Ok)
    return false;
  ByteReader In(Response.Payload);
  bool Requeued = In.u8() != 0;
  return !In.overrun() && Requeued;
}

bool RemoteCacheBackend::statsRemote(RemoteCacheStats &Out) {
  Frame Response;
  if (!request(Opcode::Stats, {}, Response) || Response.Op != Opcode::Ok)
    return false;
  ByteReader In(Response.Payload);
  std::uint32_t Shards = In.u32();
  RemoteCacheStats S;
  S.Shards.reserve(std::min<std::uint32_t>(Shards, 4096));
  for (std::uint32_t I = 0; I < Shards && !In.overrun(); ++I) {
    RemoteShardStats Sh;
    Sh.Entries = In.u64();
    Sh.Bytes = In.u64();
    S.Shards.push_back(Sh);
  }
  S.Hits = In.u64();
  S.Misses = In.u64();
  S.LeasesGranted = In.u64();
  S.LeasesDenied = In.u64();
  S.QueuePending = In.u64();
  S.QueueClaimed = In.u64();
  S.FarmEnqueued = In.u64();
  S.FarmClaimed = In.u64();
  S.FarmCompleted = In.u64();
  S.FarmRequeued = In.u64();
  S.FarmHeartbeats = In.u64();
  S.FarmDropped = In.u64();
  if (In.overrun() || S.Shards.size() != Shards)
    return false;
  // Namespace extension: present iff bytes remain (a pre-namespace
  // server's response ends exactly here).
  if (!In.atEnd()) {
    std::uint32_t ModelShards = In.u32();
    S.ModelShards.reserve(std::min<std::uint32_t>(ModelShards, 4096));
    for (std::uint32_t I = 0; I < ModelShards && !In.overrun(); ++I) {
      RemoteShardStats Sh;
      Sh.Entries = In.u64();
      Sh.Bytes = In.u64();
      S.ModelShards.push_back(Sh);
    }
    S.ModelGets = In.u64();
    S.ModelPuts = In.u64();
    S.ModelRefPuts = In.u64();
    S.ScanPrefixes = In.u64();
    if (In.overrun() || S.ModelShards.size() != ModelShards || !In.atEnd())
      return false;
    S.HasModelStats = true;
  }
  Out = std::move(S);
  return true;
}

std::string fgbs::renderStatsJson(const RemoteCacheStats &S) {
  using obs::JsonValue;
  auto ShardArray = [](const std::vector<RemoteShardStats> &Shards) {
    JsonValue Arr = JsonValue::array();
    for (const RemoteShardStats &Sh : Shards) {
      JsonValue One = JsonValue::object();
      One.set("entries", JsonValue(static_cast<double>(Sh.Entries)));
      One.set("bytes", JsonValue(static_cast<double>(Sh.Bytes)));
      Arr.push(std::move(One));
    }
    return Arr;
  };

  JsonValue Doc = JsonValue::object();
  Doc.set("schema", JsonValue("fgbs.cachestats.v1"));

  JsonValue Meas = JsonValue::object();
  Meas.set("shards", ShardArray(S.Shards));
  std::uint64_t Entries = 0, Bytes = 0;
  for (const RemoteShardStats &Sh : S.Shards) {
    Entries += Sh.Entries;
    Bytes += Sh.Bytes;
  }
  Meas.set("entries", JsonValue(static_cast<double>(Entries)));
  Meas.set("bytes", JsonValue(static_cast<double>(Bytes)));
  Meas.set("hits", JsonValue(static_cast<double>(S.Hits)));
  Meas.set("misses", JsonValue(static_cast<double>(S.Misses)));
  Doc.set("meas", std::move(Meas));

  JsonValue Leases = JsonValue::object();
  Leases.set("granted", JsonValue(static_cast<double>(S.LeasesGranted)));
  Leases.set("denied", JsonValue(static_cast<double>(S.LeasesDenied)));
  Doc.set("leases", std::move(Leases));

  JsonValue Farm = JsonValue::object();
  Farm.set("pending", JsonValue(static_cast<double>(S.QueuePending)));
  Farm.set("claimed", JsonValue(static_cast<double>(S.QueueClaimed)));
  Farm.set("enqueued", JsonValue(static_cast<double>(S.FarmEnqueued)));
  Farm.set("claims", JsonValue(static_cast<double>(S.FarmClaimed)));
  Farm.set("completed", JsonValue(static_cast<double>(S.FarmCompleted)));
  Farm.set("requeued", JsonValue(static_cast<double>(S.FarmRequeued)));
  Farm.set("heartbeats", JsonValue(static_cast<double>(S.FarmHeartbeats)));
  Farm.set("dropped", JsonValue(static_cast<double>(S.FarmDropped)));
  Doc.set("farm", std::move(Farm));

  // "model": null from a pre-namespace server — dashboards can tell
  // "server cannot say" from "zero models".
  if (S.HasModelStats) {
    JsonValue Model = JsonValue::object();
    Model.set("shards", ShardArray(S.ModelShards));
    std::uint64_t MEntries = 0, MBytes = 0;
    for (const RemoteShardStats &Sh : S.ModelShards) {
      MEntries += Sh.Entries;
      MBytes += Sh.Bytes;
    }
    Model.set("entries", JsonValue(static_cast<double>(MEntries)));
    Model.set("bytes", JsonValue(static_cast<double>(MBytes)));
    Model.set("gets", JsonValue(static_cast<double>(S.ModelGets)));
    Model.set("puts", JsonValue(static_cast<double>(S.ModelPuts)));
    Model.set("ref_puts", JsonValue(static_cast<double>(S.ModelRefPuts)));
    Model.set("scan_prefixes",
              JsonValue(static_cast<double>(S.ScanPrefixes)));
    Doc.set("model", std::move(Model));
  } else {
    Doc.set("model", JsonValue());
  }
  return obs::writeJson(Doc, 2) + "\n";
}
