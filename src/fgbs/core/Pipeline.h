//===- fgbs/core/Pipeline.h - Steps C-E orchestration ----------*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark-reduction pipeline: clustering (step C), representative
/// selection/extraction (step D), prediction and evaluation (step E),
/// over a pre-computed MeasurementDatabase.
///
/// The pipeline is cheap to re-run with different configurations (K,
/// feature mask, linkage, ablation toggles) because all simulation lives
/// in the database; the cluster-count sweeps of Figure 3 and the 1000
/// random clusterings of Figure 7 rely on this.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_CORE_PIPELINE_H
#define FGBS_CORE_PIPELINE_H

#include "fgbs/analysis/Features.h"
#include "fgbs/cluster/Hierarchical.h"
#include "fgbs/core/Database.h"
#include "fgbs/model/Prediction.h"

#include <string>

namespace fgbs {

/// Pipeline configuration.  Defaults follow the paper: Table 2 features,
/// Ward clustering, Elbow-selected K, medoid representatives with
/// ill-behaved re-selection.
struct PipelineConfig {
  /// Which of the 76 features drive the clustering.
  FeatureMask Features;
  /// Number of clusters; 0 selects K by the Elbow method.
  unsigned K = 0;
  /// Elbow search bound.
  unsigned MaxK = 24;
  double ElbowThreshold = 0.005;
  Linkage LinkageMethod = Linkage::Ward;
  /// Normalize features to zero mean / unit variance (ablation toggle).
  bool Normalize = true;
  /// Re-select representatives that fail the 10% standalone agreement
  /// test (ablation toggle).
  bool ReSelectIllBehaved = true;
  /// Choose the codelet closest to the centroid (ablation toggle; false
  /// picks the first member).
  bool MedoidRepresentative = true;

  PipelineConfig() : Features(maskForNames(kTable2FeatureNames)) {}
};

/// Evaluation of the reduced suite against one target architecture.
struct TargetEvaluation {
  std::string MachineName;
  /// Per kept codelet, seconds per invocation.
  std::vector<double> Predicted;
  std::vector<double> Real;
  std::vector<double> ErrorsPercent;
  double MedianErrorPercent = 0.0;
  double AverageErrorPercent = 0.0;
  ReductionBreakdown Reduction;

  /// Application-level aggregation (whole-app seconds).
  std::vector<std::string> AppNames;
  std::vector<double> AppReference;
  std::vector<double> AppReal;
  std::vector<double> AppPredicted;
  double RealGeomeanSpeedup = 0.0;
  double PredictedGeomeanSpeedup = 0.0;
};

/// Everything a pipeline run produces.
struct PipelineResult {
  /// Database indices of codelets surviving the 1M-cycle filter, in
  /// order; all per-codelet vectors below use this order.
  std::vector<std::size_t> Kept;
  /// Clustering inputs after masking (and normalization if enabled).
  FeatureTable Points;
  /// The feature mask that produced Points (copied from the config so a
  /// result is self-describing — model snapshots persist it).
  FeatureMask Mask;
  /// Normalization applied to the masked columns.  When the config
  /// disables normalization this is the identity (mean 0, std 1), so
  /// consumers can always classify a new vector as (x - Mean) / Std.
  NormalizationStats Norm;
  /// K selected by the Elbow method (even when config.K overrides it).
  unsigned ElbowK = 0;
  /// K actually used for the initial cut.
  unsigned InitialK = 0;
  Clustering Initial;
  /// Final selection (ill-behaved handling may reduce K).
  SelectionResult Selection;
  PredictionModel Model;
  std::vector<TargetEvaluation> Targets;
};

/// The benchmark-reduction pipeline over a measurement database.
class Pipeline {
public:
  Pipeline(const MeasurementDatabase &Db, PipelineConfig Config);

  /// Runs steps C, D and E.
  PipelineResult run() const;

  /// Runs steps D and E on an externally supplied clustering over the
  /// kept codelets (Figure 7's random-clustering baseline).
  PipelineResult runWithClustering(const Clustering &Initial) const;

  /// The masked (and normalized) feature table over kept codelets.
  FeatureTable buildPoints() const;

  const MeasurementDatabase &database() const { return Db; }
  const PipelineConfig &config() const { return Config; }

private:
  PipelineResult evaluate(std::vector<std::size_t> Kept, FeatureTable Points,
                          NormalizationStats Norm, Clustering Initial,
                          unsigned ElbowChoice) const;

  /// The masked but unnormalized feature table over kept codelets.
  FeatureTable buildRawPoints() const;

  /// The normalization a result should carry: the raw table's per-column
  /// stats, or the identity when normalization is disabled.
  NormalizationStats normalizationFor(const FeatureTable &Raw) const;

  const MeasurementDatabase &Db;
  PipelineConfig Config;
};

} // namespace fgbs

#endif // FGBS_CORE_PIPELINE_H
