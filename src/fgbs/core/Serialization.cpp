//===- fgbs/core/Serialization.cpp - CSV import/export --------------------===//

#include "fgbs/core/Serialization.h"

#include "fgbs/support/TextTable.h"

#include <cassert>
#include <istream>
#include <ostream>
#include <sstream>

using namespace fgbs;

/// CSV-quotes a cell when needed.
static std::string csvCell(const std::string &Value) {
  if (Value.find(',') == std::string::npos &&
      Value.find('"') == std::string::npos)
    return Value;
  std::string Quoted = "\"";
  for (char C : Value) {
    if (C == '"')
      Quoted += '"';
    Quoted += C;
  }
  Quoted += '"';
  return Quoted;
}

/// Full-precision float formatting so matrices round-trip.
static std::string csvNumber(double Value) {
  std::ostringstream OS;
  OS.precision(17);
  OS << Value;
  return OS.str();
}

void fgbs::writeProfilesCsv(std::ostream &OS, const MeasurementDatabase &Db) {
  const FeatureCatalog &Cat = FeatureCatalog::get();
  OS << "codelet,application,discarded,ref_seconds_per_invocation";
  for (std::size_t F = 0; F < Cat.size(); ++F)
    OS << ',' << Cat.info(F).Name;
  OS << '\n';
  for (std::size_t I = 0; I < Db.numCodelets(); ++I) {
    const CodeletProfile &P = Db.profile(I);
    OS << csvCell(P.C->Name) << ',' << csvCell(P.C->App) << ','
       << (P.Discarded ? 1 : 0) << ',' << csvNumber(P.InApp.MeasuredSeconds);
    for (double V : P.Features)
      OS << ',' << csvNumber(V);
    OS << '\n';
  }
}

void fgbs::writeEvaluationCsv(std::ostream &OS, const MeasurementDatabase &Db,
                              const PipelineResult &R) {
  OS << "codelet,application,cluster,is_representative";
  for (const TargetEvaluation &T : R.Targets)
    OS << ',' << csvCell(T.MachineName + " real_s") << ','
       << csvCell(T.MachineName + " predicted_s") << ','
       << csvCell(T.MachineName + " error_pct");
  OS << '\n';

  std::vector<bool> IsRep(R.Kept.size(), false);
  for (std::size_t Rep : R.Selection.Representatives)
    IsRep[Rep] = true;

  for (std::size_t I = 0; I < R.Kept.size(); ++I) {
    const Codelet &C = Db.codelet(R.Kept[I]);
    OS << csvCell(C.Name) << ',' << csvCell(C.App) << ','
       << R.Selection.Assignment[I] << ',' << (IsRep[I] ? 1 : 0);
    for (const TargetEvaluation &T : R.Targets)
      OS << ',' << csvNumber(T.Real[I]) << ',' << csvNumber(T.Predicted[I])
         << ',' << csvNumber(T.ErrorsPercent[I]);
    OS << '\n';
  }
}

void fgbs::writeFeatureMatrixCsv(std::ostream &OS, const FeatureTable &Points,
                                 const std::vector<std::string> &ColumnNames,
                                 const std::vector<std::string> &RowNames) {
  assert(Points.size() == RowNames.size() && "one row name per point");
  OS << "name";
  for (const std::string &Col : ColumnNames)
    OS << ',' << csvCell(Col);
  OS << '\n';
  for (std::size_t I = 0; I < Points.size(); ++I) {
    assert(Points[I].size() == ColumnNames.size() && "ragged feature table");
    OS << csvCell(RowNames[I]);
    for (double V : Points[I])
      OS << ',' << csvNumber(V);
    OS << '\n';
  }
}

/// Splits one CSV line, honoring double-quoted cells.
static std::vector<std::string> splitCsvLine(const std::string &Line) {
  std::vector<std::string> Cells;
  std::string Cell;
  bool Quoted = false;
  for (std::size_t I = 0; I < Line.size(); ++I) {
    char C = Line[I];
    if (Quoted) {
      if (C == '"' && I + 1 < Line.size() && Line[I + 1] == '"') {
        Cell += '"';
        ++I;
      } else if (C == '"') {
        Quoted = false;
      } else {
        Cell += C;
      }
      continue;
    }
    if (C == '"') {
      Quoted = true;
    } else if (C == ',') {
      Cells.push_back(std::move(Cell));
      Cell.clear();
    } else {
      Cell += C;
    }
  }
  Cells.push_back(std::move(Cell));
  return Cells;
}

/// Drops the carriage return a CRLF-terminated line leaves behind when
/// the stream is read on a platform with LF line endings.
static void stripCarriageReturn(std::string &Line) {
  if (!Line.empty() && Line.back() == '\r')
    Line.pop_back();
}

std::optional<FeatureMatrixCsv> fgbs::readFeatureMatrixCsv(std::istream &IS) {
  FeatureMatrixCsv Out;
  std::string Line;
  if (!std::getline(IS, Line))
    return std::nullopt;
  stripCarriageReturn(Line);
  std::vector<std::string> Header = splitCsvLine(Line);
  if (Header.size() < 2 || Header.front() != "name")
    return std::nullopt;
  Out.ColumnNames.assign(Header.begin() + 1, Header.end());

  // getline also delivers a final row with no trailing newline, so files
  // from editors that omit it parse the same as POSIX-terminated ones.
  while (std::getline(IS, Line)) {
    stripCarriageReturn(Line);
    if (Line.empty())
      continue;
    std::vector<std::string> Cells = splitCsvLine(Line);
    if (Cells.size() != Header.size())
      return std::nullopt;
    Out.RowNames.push_back(Cells.front());
    std::vector<double> Row;
    Row.reserve(Cells.size() - 1);
    for (std::size_t I = 1; I < Cells.size(); ++I) {
      char *End = nullptr;
      double V = std::strtod(Cells[I].c_str(), &End);
      if (End == Cells[I].c_str() || *End != '\0')
        return std::nullopt;
      Row.push_back(V);
    }
    Out.Points.push_back(std::move(Row));
  }
  return Out;
}
