//===- fgbs/core/Pipeline.cpp - Steps C-E orchestration -------------------===//

#include "fgbs/core/Pipeline.h"

#include "fgbs/obs/Trace.h"
#include "fgbs/support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <utility>

using namespace fgbs;

Pipeline::Pipeline(const MeasurementDatabase &Db, PipelineConfig Config)
    : Db(Db), Config(std::move(Config)) {
  assert(this->Config.Features.size() == NumFeatures &&
         "feature mask must cover the catalog");
  assert(maskCount(this->Config.Features) > 0 &&
         "at least one feature must be selected");
}

FeatureTable Pipeline::buildRawPoints() const {
  std::vector<std::size_t> Kept = Db.keptCodelets();
  FeatureTable Full;
  Full.reserve(Kept.size());
  for (std::size_t Index : Kept)
    Full.push_back(applyMask(Db.profile(Index).Features, Config.Features));
  return Full;
}

NormalizationStats Pipeline::normalizationFor(const FeatureTable &Raw) const {
  if (Config.Normalize)
    return computeNormalization(Raw);
  // Identity stats: (x - 0) / 1 leaves raw features untouched, so result
  // consumers never need to branch on the Normalize knob.
  std::size_t Dim = Raw.empty() ? maskCount(Config.Features) : Raw[0].size();
  NormalizationStats Identity;
  Identity.Mean.assign(Dim, 0.0);
  Identity.Std.assign(Dim, 1.0);
  return Identity;
}

FeatureTable Pipeline::buildPoints() const {
  FGBS_TRACE_SPAN("pipeline.cluster.features");
  FeatureTable Full = buildRawPoints();
  return Config.Normalize ? normalizeFeatures(Full) : Full;
}

PipelineResult Pipeline::run() const {
  FGBS_TRACE_SPAN("pipeline.run");
  FGBS_COUNTER_ADD("pipeline.runs", 1);
  std::vector<std::size_t> Kept = Db.keptCodelets();
  FeatureTable Raw = [&] {
    FGBS_TRACE_SPAN("pipeline.cluster.features");
    return buildRawPoints();
  }();
  NormalizationStats Norm = normalizationFor(Raw);
  FeatureTable Points = Config.Normalize ? normalizeFeatures(Raw) : Raw;

  // Step C: hierarchical clustering and the elbow cut.
  Dendrogram Tree = [&] {
    FGBS_TRACE_SPAN("pipeline.cluster");
    return hierarchicalCluster(Points, Config.LinkageMethod);
  }();
  unsigned Elbow =
      elbowK(Points, Tree, Config.MaxK, Config.ElbowThreshold);
  unsigned K = Config.K > 0 ? Config.K : Elbow;
  K = std::min<unsigned>(K, static_cast<unsigned>(Points.size()));

  return evaluate(std::move(Kept), std::move(Points), std::move(Norm),
                  Tree.cut(K), Elbow);
}

PipelineResult Pipeline::runWithClustering(const Clustering &Initial) const {
  std::vector<std::size_t> Kept = Db.keptCodelets();
  FeatureTable Raw = buildRawPoints();
  NormalizationStats Norm = normalizationFor(Raw);
  FeatureTable Points = Config.Normalize ? normalizeFeatures(Raw) : Raw;
  assert(Initial.Assignment.size() == Kept.size() &&
         "clustering must cover the kept codelets");
  return evaluate(std::move(Kept), std::move(Points), std::move(Norm), Initial,
                  /*ElbowChoice=*/0);
}

PipelineResult Pipeline::evaluate(std::vector<std::size_t> Kept,
                                  FeatureTable Points, NormalizationStats Norm,
                                  Clustering Initial,
                                  unsigned ElbowChoice) const {
  PipelineResult R;
  R.Kept = std::move(Kept);
  R.Points = std::move(Points);
  R.Mask = Config.Features;
  R.Norm = std::move(Norm);
  R.ElbowK = ElbowChoice;
  R.InitialK = Initial.K;
  R.Initial = Initial;

  // --- Step D: representative selection --------------------------------
  {
    FGBS_TRACE_SPAN("pipeline.select");
    auto WellBehaved = [this, &R](std::size_t Local) {
      return Db.isWellBehavedOnRef(R.Kept[Local]);
    };
    if (Config.ReSelectIllBehaved) {
      R.Selection = selectRepresentatives(R.Points, Initial, WellBehaved,
                                          Config.MedoidRepresentative);
    } else {
      // Plain medoid (or first-member) choice with no agreement test.
      R.Selection.Assignment = Initial.Assignment;
      R.Selection.FinalK = Initial.K;
      for (const std::vector<std::size_t> &Members : Initial.members()) {
        assert(!Members.empty() && "empty cluster in initial clustering");
        std::size_t Pick =
            Config.MedoidRepresentative ? medoidOf(R.Points, Members) : 0;
        R.Selection.Representatives.push_back(Members[Pick]);
      }
    }
  }

  // A suite whose codelets are all ill-behaved yields no representatives
  // and cannot be predicted (paper: MG under per-application subsetting).
  if (R.Selection.FinalK == 0)
    return R;

  // --- Step E: prediction model -----------------------------------------
  FGBS_TRACE_SPAN("pipeline.predict");
  std::vector<double> RefTimes(R.Kept.size());
  for (std::size_t I = 0; I < R.Kept.size(); ++I)
    RefTimes[I] = Db.profile(R.Kept[I]).InApp.MeasuredSeconds;
  R.Model = PredictionModel::build(RefTimes, R.Selection.Assignment,
                                   R.Selection.Representatives);

  // --- Evaluation against every target ----------------------------------
  const Suite &S = Db.suite();
  for (std::size_t T = 0; T < Db.targets().size(); ++T) {
    TargetEvaluation Eval;
    Eval.MachineName = Db.targets()[T].Name;

    // Representatives measured standalone on the target.
    std::vector<double> RepTimes;
    RepTimes.reserve(R.Selection.Representatives.size());
    for (std::size_t Local : R.Selection.Representatives)
      RepTimes.push_back(Db.standaloneTarget(R.Kept[Local], T).MedianSeconds);

    Eval.Predicted = R.Model.predict(RepTimes);
    Eval.Real.resize(R.Kept.size());
    for (std::size_t I = 0; I < R.Kept.size(); ++I)
      Eval.Real[I] = Db.realTargetSeconds(R.Kept[I], T);
    Eval.ErrorsPercent = predictionErrorsPercent(Eval.Predicted, Eval.Real);
    Eval.MedianErrorPercent = median(Eval.ErrorsPercent);
    Eval.AverageErrorPercent = mean(Eval.ErrorsPercent);

    // Benchmarking-reduction breakdown (Table 5).
    for (std::size_t I = 0; I < R.Kept.size(); ++I) {
      double Invocations =
          static_cast<double>(Db.codelet(R.Kept[I]).totalInvocations());
      Eval.Reduction.FullSuiteSeconds += Eval.Real[I] * Invocations;
      Eval.Reduction.ReducedInvocationSeconds +=
          Db.standaloneTarget(R.Kept[I], T).TotalBenchmarkSeconds;
    }
    for (std::size_t Local : R.Selection.Representatives)
      Eval.Reduction.RepresentativeSeconds +=
          Db.standaloneTarget(R.Kept[Local], T).TotalBenchmarkSeconds;

    // Application-level aggregation.
    std::map<std::string, std::vector<std::size_t>> ByApp;
    for (std::size_t I = 0; I < R.Kept.size(); ++I)
      ByApp[Db.codelet(R.Kept[I]).App].push_back(I);
    // Preserve suite application order.
    for (const Application &App : S.Applications) {
      auto It = ByApp.find(App.Name);
      if (It == ByApp.end())
        continue;
      std::vector<double> RefT;
      std::vector<double> RealT;
      std::vector<double> PredT;
      std::vector<double> Inv;
      for (std::size_t Local : It->second) {
        RefT.push_back(Db.profile(R.Kept[Local]).InApp.MeasuredSeconds);
        RealT.push_back(Eval.Real[Local]);
        PredT.push_back(Eval.Predicted[Local]);
        Inv.push_back(
            static_cast<double>(Db.codelet(R.Kept[Local]).totalInvocations()));
      }
      Eval.AppNames.push_back(App.Name);
      Eval.AppReference.push_back(applicationTime(RefT, Inv, App.Coverage));
      Eval.AppReal.push_back(applicationTime(RealT, Inv, App.Coverage));
      Eval.AppPredicted.push_back(applicationTime(PredT, Inv, App.Coverage));
    }
    Eval.RealGeomeanSpeedup =
        geometricMeanSpeedup(Eval.AppReference, Eval.AppReal);
    Eval.PredictedGeomeanSpeedup =
        geometricMeanSpeedup(Eval.AppReference, Eval.AppPredicted);

    R.Targets.push_back(std::move(Eval));
  }
  return R;
}
