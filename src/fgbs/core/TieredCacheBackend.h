//===- fgbs/core/TieredCacheBackend.h - Local + remote tiers ----*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Read-through composition of a local measurement-cache directory and
/// a RemoteCacheBackend: gets consult the local tier first, fall through
/// to the remote, and a remote hit is written back into the local tier
/// so the next run on this host never crosses the network for it.
/// Puts land locally (the run's own durability) and are replicated to
/// the remote asynchronously on a single write-back thread, so
/// publishing a measurement never blocks a training run on a slow or
/// dead network.
///
/// Scope rules keeping the tiers honest:
///  - The manifest (fgbs.meas.index.v1) is never replicated: access
///    times and eviction are per-tier concerns, and the server runs its
///    own lifecycle per shard.  Each tier prunes itself.
///  - scan() is local-only.  Enumeration feeds local lifecycle and
///    status displays; fleet-wide enumeration goes through the remote
///    backend directly.
///  - lockPath() delegates to the local tier, so same-host writer
///    coordination keeps its kernel-backed FileLock guarantees.
///
/// Writer election spans both tiers: writerLock() acquires the local
/// FileLock first (cheap, same-host) and then the remote lease
/// (fleet-wide).  Release flushes the write-back queue BEFORE letting
/// the remote lease go, so the next fleet-wide grantee's double-checked
/// load observes the published entry instead of re-simulating.
///
/// Counters: db.cache.tier.{local_hits,remote_hits,writebacks,
/// writeback_failures}.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_CORE_TIEREDCACHEBACKEND_H
#define FGBS_CORE_TIEREDCACHEBACKEND_H

#include "fgbs/core/CacheBackend.h"
#include "fgbs/core/RemoteCacheBackend.h"

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace fgbs {

/// Local-then-remote read-through cache backend with asynchronous
/// remote write-back.
class TieredCacheBackend final : public CacheBackend {
public:
  TieredCacheBackend(std::unique_ptr<CacheBackend> Local,
                     std::unique_ptr<RemoteCacheBackend> Remote);
  ~TieredCacheBackend() override;

  CacheBackend &local() { return *Local; }
  RemoteCacheBackend &remote() { return *Remote; }

  bool exists(const std::string &Name) const override;
  bool get(const std::string &Name, std::string &BytesOut) const override;
  bool put(const std::string &Name, std::string_view Bytes) override;
  bool remove(const std::string &Name) override;
  std::vector<CacheEntry> scan(const std::string &Prefix,
                               const std::string &Suffix) const override;
  /// Local-only, like scan() (fleet-wide enumeration goes through the
  /// remote backend directly), so it is always Ok.
  ScanPrefixResult scanPrefix(const std::string &Prefix) const override {
    ScanPrefixResult R;
    R.Entries = Local->scan(Prefix, "");
    return R;
  }
  /// The local tier always answers, so the composite is healthy even
  /// when the remote is down (reads degrade, they do not fail).
  bool healthy() const override { return Local->healthy(); }
  std::string lockPath(const std::string &Name) const override;
  std::unique_ptr<WriterLock> writerLock(const std::string &Name) override;

  /// Blocks until every queued remote write-back has been attempted
  /// (success or typed degradation).  Run before releasing a fleet
  /// writer lease and by the destructor.
  void flushWriteBacks();

  /// Whether \p Name crosses the network at all.  The manifest stays
  /// per-tier (each tier runs its own lifecycle).
  static bool replicated(const std::string &Name);

private:
  void writeBackLoop();
  void enqueueWriteBack(const std::string &Name, std::string Bytes);

  std::unique_ptr<CacheBackend> Local;
  std::unique_ptr<RemoteCacheBackend> Remote;

  struct WriteBack {
    std::string Name;
    std::string Bytes;
  };
  mutable std::mutex QueueMutex;
  std::condition_variable QueueCv;
  std::condition_variable DrainCv;
  std::deque<WriteBack> Queue;
  std::size_t InFlight = 0;
  bool Stopping = false;
  std::thread Writer;
};

} // namespace fgbs

#endif // FGBS_CORE_TIEREDCACHEBACKEND_H
