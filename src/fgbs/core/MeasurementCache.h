//===- fgbs/core/MeasurementCache.h - fgbs.meas.v1 cache -------*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Content-addressed, versioned on-disk persistence of a finished
/// MeasurementDatabase (fgbs.meas.v1).
///
/// The paper's economics rest on paying the measurement cost once:
/// steps A-B simulate every codelet on the reference and every target,
/// and nothing downstream (clustering sweeps, GA feature selection,
/// model training, the fig/table benches) changes those numbers.  The
/// cache persists the finished database keyed by a content hash of its
/// inputs — suite name + full codelet set + every machine configuration
/// + the timing policy — so a warm run skips simulation entirely.
///
/// File layout (all integers little-endian; the header discipline of
/// fgbs.model.v1 snapshots — see service/Snapshot.h):
///
///   [0..8)   magic "FGBSMEA1"
///   [8..12)  u32 version major (this writer: 1)
///   [12..16) u32 version minor (this writer: 0)
///   [16..24) u64 payload size in bytes
///   [24..28) u32 CRC-32 (IEEE) of the payload
///   [28.. )  payload (see MeasurementCache.cpp for the field order)
///
/// Loading is strict and typed like snapshot loading — truncation,
/// version skew, CRC mismatch, dimension damage and non-finite numbers
/// all produce MeasurementCacheError values, never undefined behaviour.
/// A stored key that does not match the key derived from the live
/// inputs (e.g. a machine configuration changed since the file was
/// written) is KeyMismatch; buildMeasurementDatabase() treats every
/// load failure as a miss and falls back to re-simulation with a
/// warning, so a stale or damaged cache can never corrupt results.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_CORE_MEASUREMENTCACHE_H
#define FGBS_CORE_MEASUREMENTCACHE_H

#include "fgbs/core/Database.h"

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace fgbs {

/// Leading bytes of every measurement-cache file.
inline constexpr char kMeasurementMagic[8] = {'F', 'G', 'B', 'S',
                                              'M', 'E', 'A', '1'};
/// Format version this build writes.
inline constexpr std::uint32_t kMeasurementVersionMajor = 1;
inline constexpr std::uint32_t kMeasurementVersionMinor = 0;
/// Fixed header size preceding the payload.
inline constexpr std::size_t kMeasurementHeaderBytes = 28;

/// Content hash of everything the simulator sweep depends on: suite
/// name, every codelet (arrays, loop nest, body statement trees,
/// invocation schedule, behaviour traits), every field of the reference
/// and target machine descriptions, and the timing policy.  Any change
/// to any of them yields a different key and therefore a clean
/// re-simulation.
std::uint64_t measurementKey(const Suite &S, const Machine &Reference,
                             const std::vector<Machine> &Targets,
                             const TimingPolicy &Policy = {});

/// The cache file name a key maps to ("fgbs-meas-<16 hex digits>.v1").
std::string measurementCacheFileName(std::uint64_t Key);

/// Why a measurement cache failed to load.
enum class MeasurementCacheError {
  None,               ///< Loaded fine.
  Io,                 ///< Could not open/read the file.
  Truncated,          ///< Fewer bytes than the header/payload announce.
  BadMagic,           ///< Not a measurement-cache file.
  UnsupportedVersion, ///< Major version this reader does not speak.
  ChecksumMismatch,   ///< Payload bytes do not match the stored CRC-32.
  KeyMismatch,        ///< Stored content key differs from the live inputs.
  Malformed,          ///< Structural damage: dimension or range mismatch.
  InvalidValue,       ///< Non-finite number where a finite one is required.
};

/// Stable identifier for an error (warnings and tests key on it).
const char *measurementCacheErrorName(MeasurementCacheError E);

/// Outcome of a load: either a reassembled database (bound to the live
/// suite) or a typed error with a human-readable message.
struct MeasurementLoadResult {
  std::unique_ptr<MeasurementDatabase> Db;
  MeasurementCacheError Error = MeasurementCacheError::None;
  std::string Message;

  explicit operator bool() const { return Db != nullptr; }
};

/// Serializes \p Db into the byte format described above, stamped with
/// \p Key (the caller computes it via measurementKey over the same
/// inputs that built \p Db).
std::string serializeMeasurements(const MeasurementDatabase &Db,
                                  std::uint64_t Key);

/// Parses and validates measurement bytes, rebinding the codelet
/// profiles onto \p S.  \p ExpectedKey must match the stored key and
/// the stored codelet/machine names must match the live objects.
/// \p Reference and \p Targets are the live machine descriptions the
/// rebuilt database carries.
MeasurementLoadResult parseMeasurements(std::string_view Bytes,
                                        const Suite &S, Machine Reference,
                                        std::vector<Machine> Targets,
                                        std::uint64_t ExpectedKey);

/// File wrappers around serialize/parse.
bool saveMeasurementsFile(const std::string &Path,
                          const MeasurementDatabase &Db, std::uint64_t Key);
MeasurementLoadResult loadMeasurementsFile(const std::string &Path,
                                           const Suite &S, Machine Reference,
                                           std::vector<Machine> Targets,
                                           std::uint64_t ExpectedKey);

/// How buildMeasurementDatabase() runs: thread fan-out plus the on-disk
/// cache location.
struct DatabaseBuildOptions {
  /// Measurement threads (DatabaseOptions semantics: 0 = auto).
  unsigned Threads = 0;
  /// Cache directory; empty disables the on-disk cache.  Created on
  /// first store if missing.
  std::string CacheDir;
  /// Master cache switch (--no-cache): false never reads or writes the
  /// cache even when CacheDir is set.
  bool UseCache = true;
  /// Timing policy forwarded to the standalone measurements (part of
  /// the content key).
  TimingPolicy Policy;
};

/// Builds the measurement database for (\p S, \p Reference, \p Targets),
/// serving it from \p Options.CacheDir when a file with the matching
/// content key exists there, and re-simulating (then storing) otherwise.
/// Load failures warn on stderr and fall back to simulation; store
/// failures warn and are otherwise ignored.  Counters (when telemetry
/// is on): db.cache.hits / db.cache.misses / db.cache.stores /
/// db.cache.errors.
std::unique_ptr<MeasurementDatabase>
buildMeasurementDatabase(const Suite &S, Machine Reference,
                         std::vector<Machine> Targets,
                         const DatabaseBuildOptions &Options = {});

} // namespace fgbs

#endif // FGBS_CORE_MEASUREMENTCACHE_H
