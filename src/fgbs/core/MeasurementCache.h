//===- fgbs/core/MeasurementCache.h - fgbs.meas.v1 cache -------*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Content-addressed, versioned on-disk persistence of a finished
/// MeasurementDatabase (fgbs.meas.v1).
///
/// The paper's economics rest on paying the measurement cost once:
/// steps A-B simulate every codelet on the reference and every target,
/// and nothing downstream (clustering sweeps, GA feature selection,
/// model training, the fig/table benches) changes those numbers.  The
/// cache persists the finished database keyed by a content hash of its
/// inputs — suite name + full codelet set + every machine configuration
/// + the timing policy — so a warm run skips simulation entirely.
///
/// File layout (all integers little-endian; the header discipline of
/// fgbs.model.v1 snapshots — see service/Snapshot.h):
///
///   [0..8)   magic "FGBSMEA1"
///   [8..12)  u32 version major (this writer: 1)
///   [12..16) u32 version minor (this writer: 0)
///   [16..24) u64 payload size in bytes
///   [24..28) u32 CRC-32 (IEEE) of the payload
///   [28.. )  payload (see MeasurementCache.cpp for the field order)
///
/// Loading is strict and typed like snapshot loading — truncation,
/// version skew, CRC mismatch, dimension damage and non-finite numbers
/// all produce MeasurementCacheError values, never undefined behaviour.
/// A stored key that does not match the key derived from the live
/// inputs (e.g. a machine configuration changed since the file was
/// written) is KeyMismatch; buildMeasurementDatabase() treats every
/// load failure as a miss and falls back to re-simulation with a
/// warning, so a stale or damaged cache can never corrupt results.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_CORE_MEASUREMENTCACHE_H
#define FGBS_CORE_MEASUREMENTCACHE_H

#include "fgbs/core/CacheBackend.h"
#include "fgbs/core/Database.h"
#include "fgbs/support/BinaryIo.h"
#include "fgbs/support/FileLock.h"

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace fgbs {

/// Leading bytes of every measurement-cache file.
inline constexpr char kMeasurementMagic[8] = {'F', 'G', 'B', 'S',
                                              'M', 'E', 'A', '1'};
/// Format version this build writes.
inline constexpr std::uint32_t kMeasurementVersionMajor = 1;
inline constexpr std::uint32_t kMeasurementVersionMinor = 0;
/// Fixed header size preceding the payload.
inline constexpr std::size_t kMeasurementHeaderBytes = 28;

/// Content hash of everything the simulator sweep depends on: suite
/// name, every codelet (arrays, loop nest, body statement trees,
/// invocation schedule, behaviour traits), every field of the reference
/// and target machine descriptions, and the timing policy.  Any change
/// to any of them yields a different key and therefore a clean
/// re-simulation.
std::uint64_t measurementKey(const Suite &S, const Machine &Reference,
                             const std::vector<Machine> &Targets,
                             const TimingPolicy &Policy = {});

/// The cache file name a key maps to ("fgbs-meas-<16 hex digits>.v1").
std::string measurementCacheFileName(std::uint64_t Key);

/// Why a measurement cache failed to load.
enum class MeasurementCacheError {
  None,               ///< Loaded fine.
  Io,                 ///< Could not open/read the file.
  Truncated,          ///< Fewer bytes than the header/payload announce.
  BadMagic,           ///< Not a measurement-cache file.
  UnsupportedVersion, ///< Major version this reader does not speak.
  ChecksumMismatch,   ///< Payload bytes do not match the stored CRC-32.
  KeyMismatch,        ///< Stored content key differs from the live inputs.
  Malformed,          ///< Structural damage: dimension or range mismatch.
  InvalidValue,       ///< Non-finite number where a finite one is required.
  LockTimeout,        ///< Writer coordination lock could not be acquired.
};

/// Stable identifier for an error (warnings and tests key on it).
const char *measurementCacheErrorName(MeasurementCacheError E);

/// Outcome of a load: either a reassembled database (bound to the live
/// suite) or a typed error with a human-readable message.
struct MeasurementLoadResult {
  std::unique_ptr<MeasurementDatabase> Db;
  MeasurementCacheError Error = MeasurementCacheError::None;
  std::string Message;

  explicit operator bool() const { return Db != nullptr; }
};

/// Single-measurement encoders/decoders shared by the whole-database
/// format above and the simulation farm's fgbs.part.v1 item results
/// (core/FarmSpec) — one field order, defined once.  The readers return
/// false on a non-finite or non-positive value; truncation is reported
/// through the reader's overrun flag.
namespace measwire {
void putMeasurement(std::string &Out, const Measurement &M);
void putStandalone(std::string &Out, const StandaloneMeasurement &S);
bool readMeasurement(binio::ByteReader &In, Measurement &M);
bool readStandalone(binio::ByteReader &In, StandaloneMeasurement &S);
} // namespace measwire

/// Serializes \p Db into the byte format described above, stamped with
/// \p Key (the caller computes it via measurementKey over the same
/// inputs that built \p Db).
std::string serializeMeasurements(const MeasurementDatabase &Db,
                                  std::uint64_t Key);

/// Parses and validates measurement bytes, rebinding the codelet
/// profiles onto \p S.  \p ExpectedKey must match the stored key and
/// the stored codelet/machine names must match the live objects.
/// \p Reference and \p Targets are the live machine descriptions the
/// rebuilt database carries.
MeasurementLoadResult parseMeasurements(std::string_view Bytes,
                                        const Suite &S, Machine Reference,
                                        std::vector<Machine> Targets,
                                        std::uint64_t ExpectedKey);

/// File wrappers around serialize/parse.  Saving publishes atomically:
/// the bytes land in a temp file next to \p Path (same filesystem, so
/// the final rename is atomic) and readers never observe a partial
/// file.
bool saveMeasurementsFile(const std::string &Path,
                          const MeasurementDatabase &Db, std::uint64_t Key);
MeasurementLoadResult loadMeasurementsFile(const std::string &Path,
                                           const Suite &S, Machine Reference,
                                           std::vector<Machine> Targets,
                                           std::uint64_t ExpectedKey);

/// The per-directory manifest tracking size and last-use time of every
/// cache entry (newest first).  Line-oriented text: a magic first line,
/// then one "<atime-unix> <size-bytes> <name>" line per entry.  The
/// manifest is advisory — a missing or damaged one falls back to a
/// directory rescan (entry mtimes stand in for access times).
inline constexpr char kMeasurementIndexName[] = "fgbs.meas.index.v1";

/// Hits younger than this skip the manifest rewrite (relatime): a warm
/// run's steady state costs one small read, never a write.
inline constexpr std::int64_t kManifestRelatimeSeconds = 60;

/// What prune() did.
struct CachePruneStats {
  std::size_t Entries = 0;        ///< Entries visible before pruning.
  std::size_t Removed = 0;        ///< Entries deleted.
  std::uint64_t BytesBefore = 0;  ///< Entry bytes before pruning.
  std::uint64_t BytesAfter = 0;   ///< Entry bytes after pruning.
  bool RebuiltFromScan = false;   ///< Manifest absent/corrupt; rescanned.
  bool LockTimedOut = false;      ///< Manifest lock unavailable; no-op.
};

/// The measurement cache proper: a CacheBackend (a local directory, a
/// RemoteCacheBackend over an fgbs_cached server, or the tiered
/// composition of both) plus the lifecycle logic — manifest
/// bookkeeping, LRU/age eviction, and typed lock-coordinated stores.
/// Loads never lock: entries are published atomically, so a reader sees
/// either nothing or a complete file.  Manifest bookkeeping and prune()
/// are skipped for backends whose manifest lock path is empty — those
/// manage their own lifecycle where the blobs live (the server prunes
/// its shards).  Writer coordination goes through the backend's
/// writerLock(), so a remote backend elects one writer fleet-wide.
class MeasurementCache {
public:
  /// A cache over \p Dir via LocalDirBackend (created when missing).
  explicit MeasurementCache(const std::string &Dir);
  /// A cache over any backend (the remote-tier seam).
  explicit MeasurementCache(std::unique_ptr<CacheBackend> Backend);

  CacheBackend &backend() { return *BackendPtr; }

  /// True when an entry for \p Key has been published.
  bool exists(std::uint64_t Key) const;

  /// Loads and validates the entry for \p Key; a successful load
  /// refreshes the entry's manifest access time (relatime-throttled).
  MeasurementLoadResult load(const Suite &S, Machine Reference,
                             std::vector<Machine> Targets, std::uint64_t Key);

  /// Serializes and atomically publishes \p Db under \p Key, updating
  /// the manifest.  Unless \p EntryLockHeld says the caller already
  /// holds the entry's writer lock, one is acquired here — and a lock
  /// that cannot be had within LockOptions.TimeoutMs is the typed
  /// LockTimeout error (nothing is written), never a silent fallback.
  MeasurementCacheError store(const MeasurementDatabase &Db, std::uint64_t Key,
                              bool EntryLockHeld = false,
                              std::string *Message = nullptr);

  /// Evicts least-recently-used entries until the cache holds at most
  /// \p MaxBytes of entries (0 = unbounded) and none older than
  /// \p MaxAgeSeconds (0 = unbounded).  Runs under the manifest lock;
  /// heals a corrupt manifest from a directory rescan as a side effect.
  CachePruneStats prune(std::uint64_t MaxBytes, std::uint64_t MaxAgeSeconds);

  /// Where the writer lock for \p Key's entry lives (empty = backend
  /// needs no locking).
  std::string entryLockPath(std::uint64_t Key) const;

  /// Writer-coordination knobs.  Manifest updates use a short slice of
  /// this budget; entry stores use all of it.
  FileLock::Options LockOptions;

private:
  void touchEntry(const std::string &Name, std::uint64_t SizeBytes);

  std::unique_ptr<CacheBackend> BackendPtr;
};

/// The FGBS_MEAS_CACHE_MAX_BYTES default byte budget (0 when unset or
/// unparseable).
std::uint64_t measurementCacheEnvMaxBytes();

/// How buildMeasurementDatabase() runs: thread fan-out plus the on-disk
/// cache location and lifecycle.
struct DatabaseBuildOptions {
  /// Measurement threads (DatabaseOptions semantics: 0 = auto).
  unsigned Threads = 0;
  /// Cache directory; empty disables the on-disk cache.  Created on
  /// first store if missing.
  std::string CacheDir;
  /// "host:port" of an fgbs_cached server (--cache-remote); empty falls
  /// back to the FGBS_MEAS_CACHE_REMOTE environment variable, and an
  /// empty result means no remote tier.  With a CacheDir too, the cache
  /// is tiered (local read-through over the remote, async write-back);
  /// with no CacheDir it is remote-only.  An unreachable or dying
  /// server degrades to simulate-without-store with a warning and
  /// db.cache.remote.{errors,timeouts} counters — it never fails a run.
  std::string CacheRemote;
  /// Master cache switch (--no-cache): false never reads or writes the
  /// cache even when CacheDir is set.
  bool UseCache = true;
  /// How long a cold run waits on the per-entry writer lock before
  /// giving up and simulating without storing (0 = auto: the
  /// FGBS_MEAS_CACHE_LOCK_MS environment variable, else 10 minutes).
  std::uint64_t LockTimeoutMs = 0;
  /// Entry-byte budget auto-pruned after a store (0 = auto: the
  /// FGBS_MEAS_CACHE_MAX_BYTES environment variable, else unbounded).
  std::uint64_t CacheMaxBytes = 0;
  /// Maximum entry age in seconds, enforced alongside the byte budget
  /// (0 = unbounded).
  std::uint64_t CacheMaxAgeSeconds = 0;
  /// Timing policy forwarded to the standalone measurements (part of
  /// the content key).
  TimingPolicy Policy;
  /// Distributed simulation farm (--distribute): on a cache miss,
  /// instead of simulating locally, publish the job blob on the remote
  /// coordinator, enqueue one work item per missing (codelet, machine,
  /// kind) measurement, and assemble the parts fgbs_worker processes
  /// publish.  Requires a remote tier; silently falls back to local
  /// simulation without one.  Items still missing when DistributeWaitMs
  /// runs out are simulated locally, so a worker-less farm degrades to
  /// a slow build, never a hang.
  bool Distribute = false;
  /// Farm assembly deadline (0 = auto: the FGBS_FARM_WAIT_MS
  /// environment variable, else 10 minutes).
  std::uint64_t DistributeWaitMs = 0;
  /// Farm assembly poll interval (0 = auto: 200 ms), jittered.
  std::uint64_t DistributePollMs = 0;
};

/// Builds the measurement database for (\p S, \p Reference, \p Targets),
/// serving it from \p Options.CacheDir when a file with the matching
/// content key exists there, and re-simulating (then storing) otherwise.
/// Load failures warn on stderr and fall back to simulation; store
/// failures warn and are otherwise ignored.
///
/// Concurrent cold runs against one directory coordinate through a
/// per-entry FileLock: exactly one simulates and publishes while the
/// others block (backoff + Options.LockTimeoutMs deadline) and then
/// load the freshly published entry instead of re-simulating.  A run
/// whose lock wait times out warns with the typed lock_timeout error,
/// simulates, and skips the store (the live holder will publish the
/// identical bytes).  When a byte/age budget is configured the cache is
/// LRU-pruned after a store.
///
/// Counters (when telemetry is on): db.cache.{hits,misses,stores,
/// errors,evictions} and db.cache.lock.{acquired,waited_ms,timeouts}.
std::unique_ptr<MeasurementDatabase>
buildMeasurementDatabase(const Suite &S, Machine Reference,
                         std::vector<Machine> Targets,
                         const DatabaseBuildOptions &Options = {});

} // namespace fgbs

#endif // FGBS_CORE_MEASUREMENTCACHE_H
