//===- fgbs/core/ModelRegistry.h - Model artifact distribution -*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Content-addressed distribution of fgbs.model.v1 snapshots through the
/// cache tier's model/ namespace, so a fleet of fgbs_query hosts pulls
/// one canonical artifact instead of copying files around (the paper's
/// subset is only useful if every consumer ranks machines with the
/// *same* bytes).
///
/// Key layout inside the registry backend:
///
///   model/<name>/sha/<hex>   the snapshot image, keyed by its SHA-256
///                            (immutable; two publishes of identical
///                            bytes are one blob)
///   model/<name>/ref/<tag>   a small fgbs.ref.v1 blob naming the hash
///                            a tag (e.g. "latest") points at, replaced
///                            atomically under a writer lease
///
/// Ref blob layout (fgbs.ref.v1, all integers little-endian):
///
///   [0..8)   magic "FGBSREF1"
///   [8..12)  u32 version major (this writer: 1)
///   [12..16) u32 version minor (this writer: 0)
///   [16..24) u64 payload size in bytes
///   [24..28) u32 CRC-32 (IEEE) of the payload
///   [28.. )  payload: str sha256-hex, u64 snapshot size in bytes,
///            u64 publish time (unix seconds)
///
/// Publish ordering is snapshot-then-ref: the blob is fully published
/// (and verified present) before any tag names it, so a publisher that
/// crashes mid-way leaves at worst an unreferenced blob — never a tag
/// pointing at bytes that do not exist.  Ref replacement happens under
/// the backend's writer lease for the ref key; concurrent publishers
/// serialize and the last writer wins whole-ref (readers see the old
/// ref or the new one, never a splice).
///
/// Pulls are read-through: a resolved snapshot is stored in a local
/// cache directory and re-verified against its hash on EVERY load, so
/// one host fetches a given snapshot's payload once, and a tampered or
/// rotted local file is detected, discarded, and re-fetched rather than
/// served.  When the registry is unreachable, pull() degrades to the
/// memoized local ref + blob if this host has them (counted, flagged);
/// missing entries on a *healthy* registry are authoritative errors
/// (dangling ref, unknown tag), never degraded around.
///
/// Counters: registry.{publishes,pulls,ref_hits,snapshot_fetches,
/// verify_failures,degraded}.  "Warm pull by tag" is one ref round trip
/// and zero payload bytes over the network: pulls and ref_hits tick,
/// snapshot_fetches does not.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_CORE_MODELREGISTRY_H
#define FGBS_CORE_MODELREGISTRY_H

#include "fgbs/core/CacheBackend.h"

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace fgbs {

/// Leading bytes of every fgbs.ref.v1 blob.
inline constexpr char kModelRefMagic[8] = {'F', 'G', 'B', 'S',
                                           'R', 'E', 'F', '1'};
inline constexpr std::uint32_t kModelRefVersionMajor = 1;
inline constexpr std::uint32_t kModelRefVersionMinor = 0;
inline constexpr std::size_t kModelRefHeaderBytes = 28;

/// What a tag points at.
struct ModelRef {
  /// Content address of the snapshot (64 lowercase hex digits).
  std::string Sha256Hex;
  /// Size of the snapshot image, for display and sanity checks.
  std::uint64_t SnapshotBytes = 0;
  /// When the ref was written (unix seconds).
  std::uint64_t PublishedUnixSeconds = 0;
};

/// Renders \p R as an fgbs.ref.v1 blob.
std::string serializeModelRef(const ModelRef &R);

/// Parses and validates an fgbs.ref.v1 blob; false (with \p Error
/// filled) on damage, version skew, or a malformed hash.
bool parseModelRef(std::string_view Bytes, ModelRef &Out, std::string *Error);

/// A parsed `fgbs://host:port/<name>[@tag|@sha256:<hex>]` reference.
/// Exactly one of Tag / Sha256Hex is non-empty; an unadorned URI means
/// Tag = "latest".
struct ModelUri {
  std::string Host;
  std::uint16_t Port = 0;
  std::string Name;
  std::string Tag;
  std::string Sha256Hex;
};

/// Parses an fgbs:// model URI.  False (with \p Error filled) when the
/// scheme, address, name, or selector is malformed.
bool parseModelUri(const std::string &Uri, ModelUri &Out, std::string *Error);

/// The registry keys for a model's blobs (valid inputs assumed; see
/// isValidModelName / isValidModelTag).
std::string modelShaKey(const std::string &Name, const std::string &Hex);
std::string modelRefKey(const std::string &Name, const std::string &Tag);

/// Model names and tags are single namespaced path segments:
/// `[A-Za-z0-9._-]+`, not "." or "..", at most 100 bytes (the composed
/// wire key must stay under the server's 255-byte entry limit).
bool isValidModelName(std::string_view Name);
bool isValidModelTag(std::string_view Tag);

/// Why a registry operation failed.
enum class RegistryError {
  None,             ///< Success.
  InvalidName,      ///< Model name fails isValidModelName.
  InvalidTag,       ///< Tag fails isValidModelTag.
  InvalidHash,      ///< Explicit hash is not 64 lowercase hex digits.
  Unreachable,      ///< Registry down and no usable local copy.
  RefNotFound,      ///< Healthy registry has no such tag.
  RefMalformed,     ///< The ref blob failed fgbs.ref.v1 validation.
  DanglingRef,      ///< Tag resolves to a hash whose snapshot is gone
                    ///< (pruned or never fully published).
  HashMismatch,     ///< Pulled payload does not hash to its key; it is
                    ///< never returned to the caller.
  PublishFailed,    ///< Snapshot blob could not be stored remotely.
  RefPublishFailed, ///< Ref blob could not be stored remotely.
  LeaseTimeout,     ///< Another publisher held the ref lease past the
                    ///< acquire deadline.
  LocalWriteFailed, ///< Local read-through cache dir is unwritable.
};

/// Stable identifier for an error (messages and tests key on it).
const char *registryErrorName(RegistryError E);

/// Outcome of publish().
struct PublishResult {
  RegistryError Error = RegistryError::None;
  std::string Message;
  /// Content address of the published snapshot.
  std::string Sha256Hex;
  /// True when the blob already existed remotely (same bytes published
  /// before); only the ref moved.
  bool SnapshotAlreadyPresent = false;

  explicit operator bool() const { return Error == RegistryError::None; }
};

/// Outcome of pull()/pullByHash().
struct PullResult {
  RegistryError Error = RegistryError::None;
  std::string Message;
  /// The verified snapshot image (empty on error).
  std::string Bytes;
  /// Its content address.
  std::string Sha256Hex;
  /// True when the registry was unreachable and the memoized local
  /// copy served instead.
  bool Degraded = false;
  /// True when the payload crossed the network this call (a cold pull);
  /// false for warm pulls satisfied from the local cache dir.
  bool FetchedFromRemote = false;

  explicit operator bool() const { return Error == RegistryError::None; }
};

/// The client: publish/pull model snapshots against any CacheBackend
/// that accepts model/ namespaced keys (RemoteCacheBackend against a
/// live fgbs_cached in production; local/in-memory backends in tests).
class ModelRegistry {
public:
  /// \p Remote is the registry backend; \p LocalCacheDir is this host's
  /// read-through snapshot cache (created on first use; may be empty to
  /// disable local caching — every pull then fetches).
  ModelRegistry(std::unique_ptr<CacheBackend> Remote,
                std::string LocalCacheDir);

  CacheBackend &remote() { return *Remote; }
  const std::string &localCacheDir() const { return LocalCacheDir; }

  /// Publishes \p SnapshotBytes as \p Name and points \p Tag at it,
  /// snapshot-then-ref.  Idempotent for identical bytes.
  PublishResult publish(const std::string &Name, const std::string &Tag,
                        std::string_view SnapshotBytes);

  /// Resolves \p Tag, then fetches + verifies the snapshot it names
  /// (local cache first).  Registry down: serves the memoized local
  /// copy if present (Degraded), else Unreachable.
  PullResult pull(const std::string &Name, const std::string &Tag);

  /// Fetches + verifies a snapshot by explicit content address; no ref
  /// resolution, so a warm pull touches no network at all.
  PullResult pullByHash(const std::string &Name, const std::string &Hex);

  /// Enumerates `model/<name>/` keys (names only) via the backend's
  /// scanPrefix; empty \p Name lists every model.  Outcome semantics
  /// follow ScanPrefixResult (an old server yields Unsupported).
  ScanPrefixResult list(const std::string &Name) const;

  /// File names inside the local cache dir (exposed for tests and the
  /// tampering sweep).
  static std::string localSnapshotFileName(const std::string &Hex);
  static std::string localRefFileName(const std::string &Name,
                                      const std::string &Tag);
  std::string localSnapshotPath(const std::string &Hex) const;
  std::string localRefPath(const std::string &Name,
                           const std::string &Tag) const;

private:
  /// Loads the locally cached snapshot for \p Hex, verifying its hash;
  /// a mismatching file is counted, deleted, and reported absent.
  bool loadVerifiedLocal(const std::string &Hex, std::string &BytesOut);
  /// Stores a verified snapshot / ref memo into the local cache dir.
  void storeLocalSnapshot(const std::string &Hex, std::string_view Bytes);
  void storeLocalRef(const std::string &Name, const std::string &Tag,
                     const ModelRef &Ref);
  /// The shared fetch+verify tail of both pull paths.
  PullResult fetchByHash(const std::string &Name, const std::string &Hex,
                         bool RegistryHealthy);

  std::unique_ptr<CacheBackend> Remote;
  std::string LocalCacheDir;
};

} // namespace fgbs

#endif // FGBS_CORE_MODELREGISTRY_H
