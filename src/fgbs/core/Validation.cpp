//===- fgbs/core/Validation.cpp - Cross-validating a reduction ------------===//

#include "fgbs/core/Validation.h"

#include "fgbs/support/Statistics.h"

#include <cassert>
#include <limits>

using namespace fgbs;

LooResult fgbs::leaveOneOutErrors(const MeasurementDatabase &Db,
                                  const PipelineResult &R,
                                  std::size_t TargetIndex) {
  assert(TargetIndex < Db.targets().size() && "target index out of range");
  LooResult Out;
  std::size_t N = R.Kept.size();
  Out.ErrorsPercent.assign(N, 0.0);
  Out.Validated.assign(N, false);

  // Cluster membership over the FINAL assignment.
  std::vector<std::vector<std::size_t>> Members(R.Selection.FinalK);
  for (std::size_t I = 0; I < N; ++I)
    Members[static_cast<std::size_t>(R.Selection.Assignment[I])].push_back(I);

  std::vector<double> ValidatedErrors;
  for (std::size_t I = 0; I < N; ++I) {
    auto Cluster = static_cast<std::size_t>(R.Selection.Assignment[I]);
    const std::vector<std::size_t> &M = Members[Cluster];
    if (M.size() < 2) {
      ++Out.Skipped;
      continue;
    }

    // Re-select the representative among the remaining well-behaved
    // members: the one closest to the centroid of the remainder.
    std::vector<std::size_t> Rest;
    for (std::size_t J : M)
      if (J != I)
        Rest.push_back(J);
    std::vector<double> Centroid = centroidOf(R.Points, Rest);
    std::size_t StandIn = N; // Invalid.
    double Best = std::numeric_limits<double>::infinity();
    for (std::size_t J : Rest) {
      if (!Db.isWellBehavedOnRef(R.Kept[J]))
        continue;
      double Dist = squaredDistance(R.Points[J], Centroid);
      if (Dist < Best) {
        Best = Dist;
        StandIn = J;
      }
    }
    if (StandIn == N) {
      ++Out.Skipped;
      continue;
    }

    double RefI = Db.profile(R.Kept[I]).InApp.MeasuredSeconds;
    double RefRep = Db.profile(R.Kept[StandIn]).InApp.MeasuredSeconds;
    double TarRep =
        Db.standaloneTarget(R.Kept[StandIn], TargetIndex).MedianSeconds;
    double Predicted = RefI * TarRep / RefRep;
    double Real = Db.realTargetSeconds(R.Kept[I], TargetIndex);
    Out.ErrorsPercent[I] = percentError(Predicted, Real);
    Out.Validated[I] = true;
    ValidatedErrors.push_back(Out.ErrorsPercent[I]);
  }

  if (!ValidatedErrors.empty())
    Out.MedianErrorPercent = median(ValidatedErrors);
  return Out;
}
