//===- fgbs/core/Validation.h - Cross-validating a reduction ----*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Leave-one-out validation of a reduced suite: how well would each
/// codelet have been predicted if it had NOT been its cluster's
/// representative?  For every codelet in a multi-member cluster, the
/// representative is re-chosen among the remaining members and the
/// codelet is predicted from that stand-in.  Singleton clusters cannot
/// be validated this way and are skipped.
///
/// This answers the robustness question the paper's Figure 2 raises
/// (representatives are predicted "for free" at 0% error, flattering the
/// aggregate): the LOO error is an estimate of the method's accuracy
/// with the representative advantage removed.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_CORE_VALIDATION_H
#define FGBS_CORE_VALIDATION_H

#include "fgbs/core/Pipeline.h"

namespace fgbs {

/// Outcome of a leave-one-out pass against one target machine.
struct LooResult {
  /// Per kept codelet: LOO prediction error percent (0 for skipped).
  std::vector<double> ErrorsPercent;
  /// Per kept codelet: false when the codelet sits in a singleton
  /// cluster (or its cluster has no other well-behaved member).
  std::vector<bool> Validated;
  /// Median over validated codelets.
  double MedianErrorPercent = 0.0;
  /// Number of codelets that could not be validated.
  unsigned Skipped = 0;
};

/// Runs leave-one-out validation of \p R against target \p TargetIndex.
/// \p R must come from a Pipeline over \p Db.
LooResult leaveOneOutErrors(const MeasurementDatabase &Db,
                            const PipelineResult &R, std::size_t TargetIndex);

} // namespace fgbs

#endif // FGBS_CORE_VALIDATION_H
