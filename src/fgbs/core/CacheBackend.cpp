//===- fgbs/core/CacheBackend.cpp - Measurement-cache storage -------------===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "fgbs/core/CacheBackend.h"

#include <atomic>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <system_error>

#include <sys/stat.h>
#include <unistd.h>

using namespace fgbs;

namespace fs = std::filesystem;

WriterLock::Result FileWriterLock::acquire(const FileLock::Options &O) {
  FileLock::AcquireResult R = Lock.acquire(O);
  Result Out;
  Out.Acquired = static_cast<bool>(R);
  Out.TimedOut = R.St == FileLock::Status::Timeout;
  Out.WaitedMs = R.WaitedMs;
  Out.Message = std::move(R.Message);
  return Out;
}

std::unique_ptr<WriterLock>
CacheBackend::writerLock(const std::string &Name) {
  return std::make_unique<FileWriterLock>(lockPath(Name));
}

ScanPrefixResult CacheBackend::scanPrefix(const std::string &Prefix) const {
  ScanPrefixResult R;
  R.Entries = scan(Prefix, "");
  return R;
}

bool fgbs::atomicWriteFile(const std::string &Path, std::string_view Bytes) {
  // Unique per process AND per call so two stores of one name never
  // share a temp file; the temp sits next to its target, keeping the
  // final rename within one filesystem and therefore atomic.
  static std::atomic<std::uint64_t> Serial{0};
  std::string Temp = Path + ".tmp." +
                     std::to_string(static_cast<long>(::getpid())) + "." +
                     std::to_string(Serial.fetch_add(1));
  {
    std::ofstream OS(Temp, std::ios::binary | std::ios::trunc);
    if (!OS)
      return false;
    OS.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    OS.flush();
    if (!OS) {
      OS.close();
      std::error_code Ec;
      fs::remove(Temp, Ec);
      return false;
    }
  }
  std::error_code Ec;
  fs::rename(Temp, Path, Ec);
  if (Ec) {
    fs::remove(Temp, Ec);
    return false;
  }
  return true;
}

LocalDirBackend::LocalDirBackend(std::string Dir) : Dir(std::move(Dir)) {
  // Eager so lock files can be created before the first put(); the
  // error-code overload tolerates concurrent creators.
  std::error_code Ec;
  fs::create_directories(this->Dir, Ec);
}

std::string LocalDirBackend::encodeFileName(const std::string &Name) {
  std::string Out = Name;
  for (char &C : Out)
    if (C == '/')
      C = '~';
  return Out;
}

std::string LocalDirBackend::decodeFileName(const std::string &FileName) {
  std::string Out = FileName;
  for (char &C : Out)
    if (C == '~')
      C = '/';
  return Out;
}

std::string LocalDirBackend::fullPath(const std::string &Name) const {
  return (fs::path(Dir) / encodeFileName(Name)).string();
}

bool LocalDirBackend::exists(const std::string &Name) const {
  std::error_code Ec;
  return fs::exists(fullPath(Name), Ec);
}

bool LocalDirBackend::get(const std::string &Name,
                          std::string &BytesOut) const {
  std::ifstream IS(fullPath(Name), std::ios::binary);
  if (!IS)
    return false;
  std::string Bytes((std::istreambuf_iterator<char>(IS)),
                    std::istreambuf_iterator<char>());
  if (IS.bad())
    return false;
  BytesOut = std::move(Bytes);
  return true;
}

bool LocalDirBackend::put(const std::string &Name, std::string_view Bytes) {
  // '~' is the '/' escape in on-disk names; a raw '~' would collide
  // with an encoded entry and decode to a different name on scan.
  if (Name.find('~') != std::string::npos)
    return false;
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
  return atomicWriteFile(fullPath(Name), Bytes);
}

bool LocalDirBackend::remove(const std::string &Name) {
  std::error_code Ec;
  return fs::remove(fullPath(Name), Ec) && !Ec;
}

std::vector<CacheEntry> LocalDirBackend::scan(const std::string &Prefix,
                                              const std::string &Suffix) const {
  std::vector<CacheEntry> Out;
  std::error_code Ec;
  fs::directory_iterator It(Dir, Ec), End;
  if (Ec)
    return Out;
  const std::time_t Now = std::time(nullptr);
  for (; It != End; It.increment(Ec)) {
    if (Ec)
      break;
    if (!It->is_regular_file(Ec))
      continue;
    std::string FileName = It->path().filename().string();
    // atomicWriteFile() temp files are never entries, whatever the
    // filters say: a crashed writer's leftovers must not be loaded,
    // counted against byte budgets, or adopted by a manifest rescan.
    // Old ones are debris (no live writer renames after an hour) and
    // are swept here, the one place that already walks the directory.
    if (FileName.find(".tmp.") != std::string::npos) {
      struct stat TempSt;
      if (::stat(It->path().c_str(), &TempSt) == 0 &&
          Now - TempSt.st_mtime > kStaleTempFileSeconds)
        fs::remove(It->path(), Ec);
      continue;
    }
    // Filters apply to the decoded (namespaced) name, so callers can
    // ask for `model/foo/` without knowing about the flat encoding.
    std::string Name = decodeFileName(FileName);
    if (Name.size() < Prefix.size() + Suffix.size() ||
        Name.compare(0, Prefix.size(), Prefix) != 0 ||
        Name.compare(Name.size() - Suffix.size(), Suffix.size(), Suffix) != 0)
      continue;
    struct stat St;
    if (::stat(It->path().c_str(), &St) != 0)
      continue;
    CacheEntry E;
    E.Name = std::move(Name);
    E.SizeBytes = static_cast<std::uint64_t>(St.st_size);
    E.AccessUnixSeconds = static_cast<std::int64_t>(St.st_mtime);
    Out.push_back(std::move(E));
  }
  return Out;
}

std::string LocalDirBackend::lockPath(const std::string &Name) const {
  return fullPath(Name) + ".lock";
}
