//===- fgbs/core/CacheBackend.h - Measurement-cache storage ----*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The storage seam under core/MeasurementCache: named blobs with
/// atomic publish, enumeration, and (optionally) a lock-file location
/// for cross-process writer coordination.
///
/// LocalDirBackend is the one shipping implementation — a flat
/// directory of content-addressed `fgbs-meas-*.v1` files where put() is
/// write-to-temp-in-the-same-directory + rename, so readers only ever
/// observe absent or complete entries (the temp file lives next to its
/// target, never in /tmp, because rename(2) is only atomic within one
/// filesystem).  The interface is deliberately dumb-blob-shaped so the
/// ROADMAP's sharded remote tier (HTTP/object store; content-addressed
/// keys make it natural) can slot in without touching the cache logic:
/// a remote backend returns an empty lockPath() and brings its own
/// atomicity.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_CORE_CACHEBACKEND_H
#define FGBS_CORE_CACHEBACKEND_H

#include "fgbs/support/FileLock.h"

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace fgbs {

/// One stored blob as enumeration reports it.
struct CacheEntry {
  std::string Name;
  std::uint64_t SizeBytes = 0;
  /// Last-use time (unix seconds).  scan() reports the storage-level
  /// modification time; the manifest layer overlays true access times.
  std::int64_t AccessUnixSeconds = 0;
};

/// How a scanPrefix() call resolved.  Distinct from "empty result":
/// a registry that asks an old server for `model/foo/sha/` must be able
/// to tell "there are no snapshots" (Ok, zero entries) apart from "this
/// server cannot answer that question" (Unsupported) and "the network
/// ate the answer" (Failed) — the first is authoritative, the others
/// must not be treated as it.
enum class ScanPrefixOutcome {
  Ok,          ///< Entries is the complete, authoritative listing.
  Unsupported, ///< The backend (or the server behind it) predates
               ///< scan-by-prefix; Entries is empty and means nothing.
  Failed,      ///< Transport or storage error; Entries may be partial.
};

struct ScanPrefixResult {
  ScanPrefixOutcome Outcome = ScanPrefixOutcome::Ok;
  std::vector<CacheEntry> Entries;
  /// Human-readable detail for Unsupported/Failed.
  std::string Message;

  explicit operator bool() const { return Outcome == ScanPrefixOutcome::Ok; }
};

/// Writer election for one named entry — the abstraction over "who gets
/// to simulate and publish".  LocalDirBackend hands out FileLock-backed
/// locks (per-host, crash-released by the kernel); RemoteCacheBackend
/// hands out server leases (fleet-wide, TTL-expired); the tiered
/// backend composes both.  A backend with no coordination needs hands
/// out a no-op lock that always acquires.
class WriterLock {
public:
  struct Result {
    bool Acquired = false;
    /// True when the deadline passed with the lock held elsewhere (as
    /// opposed to the lock machinery itself failing).
    bool TimedOut = false;
    /// Wall time spent waiting.
    std::uint64_t WaitedMs = 0;
    std::string Message;

    explicit operator bool() const { return Acquired; }
  };

  virtual ~WriterLock() = default;

  /// Blocks (poll + backoff) until held, the deadline passes, or the
  /// lock errors.  FileLock::Options carries the shared knobs (timeout,
  /// backoff, staleness); implementations ignore fields that do not
  /// apply to their protocol.
  virtual Result acquire(const FileLock::Options &O) = 0;

  /// Tells waiters this holder is still alive (file mtime refresh or
  /// lease renewal).  No-op unless held.
  virtual void heartbeat() {}

  /// Releases if held (implementations also release on destruction).
  virtual void release() = 0;
};

/// The default WriterLock: a FileLock on a filesystem path.  An empty
/// path is the no-op lock that always acquires instantly.
class FileWriterLock final : public WriterLock {
public:
  explicit FileWriterLock(std::string Path) : Lock(std::move(Path)) {}

  Result acquire(const FileLock::Options &O) override;
  void heartbeat() override { Lock.heartbeat(); }
  void release() override { Lock.release(); }

private:
  FileLock Lock;
};

/// Named-blob storage under the measurement cache.
class CacheBackend {
public:
  virtual ~CacheBackend() = default;

  virtual bool exists(const std::string &Name) const = 0;

  /// Reads the whole blob; false when absent or unreadable.
  virtual bool get(const std::string &Name, std::string &BytesOut) const = 0;

  /// Atomically publishes the blob: concurrent readers see either the
  /// previous version or this one, never a partial write.
  virtual bool put(const std::string &Name, std::string_view Bytes) = 0;

  virtual bool remove(const std::string &Name) = 0;

  /// Enumerates blobs whose name starts with \p Prefix and ends with
  /// \p Suffix (both may be empty).
  virtual std::vector<CacheEntry> scan(const std::string &Prefix,
                                       const std::string &Suffix) const = 0;

  /// Enumerates blobs whose name starts with \p Prefix, with a typed
  /// outcome (see ScanPrefixOutcome).  Default: scan(Prefix, "") marked
  /// Ok, which is correct for every backend whose scan() is
  /// authoritative; RemoteCacheBackend overrides this to surface
  /// old-server (Unsupported) and transport (Failed) conditions.
  virtual ScanPrefixResult scanPrefix(const std::string &Prefix) const;

  /// True when the backend can currently serve requests.  Local
  /// backends are always healthy; RemoteCacheBackend pings.  The model
  /// registry uses this to decide between "the registry said the ref is
  /// gone" (authoritative) and "the registry is down, degrade to the
  /// local copy".
  virtual bool healthy() const { return true; }

  /// Where a FileLock coordinating writers of \p Name should live;
  /// empty when this backend needs no cross-process locking (it brings
  /// its own atomicity, and its lifecycle is managed where the blobs
  /// live — e.g. by the remote server's own prune).
  virtual std::string lockPath(const std::string &Name) const = 0;

  /// The writer election for \p Name.  Default: a FileWriterLock on
  /// lockPath(Name) — which is the always-acquires no-op lock when that
  /// path is empty.  Remote backends override this with a server lease
  /// so a whole fleet elects one writer.
  virtual std::unique_ptr<WriterLock> writerLock(const std::string &Name);
};

/// Writes \p Bytes to \p Path via a temp file in Path's own directory
/// plus an atomic rename.  Shared by LocalDirBackend and the bare
/// saveMeasurementsFile() wrapper.
bool atomicWriteFile(const std::string &Path, std::string_view Bytes);

/// atomicWriteFile() temp files older than this are debris from a
/// crashed writer; LocalDirBackend::scan unlinks them as it goes (and
/// never reports any temp file as an entry, whatever the scan filters).
inline constexpr std::int64_t kStaleTempFileSeconds = 3600;

/// A flat directory of blobs (created on first use).
///
/// Namespaced entry names (`model/<name>/sha/<hex>`) are stored flat:
/// '/' is encoded as '~' in the on-disk file name and decoded on
/// enumeration, so a shard directory never grows subdirectories and
/// every existing flat (measurement) name maps to itself.  '~' is
/// reserved — put() rejects names containing it, because such a name
/// would collide with an encoded one and decode to something else.
class LocalDirBackend final : public CacheBackend {
public:
  explicit LocalDirBackend(std::string Dir);

  const std::string &dir() const { return Dir; }

  bool exists(const std::string &Name) const override;
  bool get(const std::string &Name, std::string &BytesOut) const override;
  bool put(const std::string &Name, std::string_view Bytes) override;
  bool remove(const std::string &Name) override;
  std::vector<CacheEntry> scan(const std::string &Prefix,
                               const std::string &Suffix) const override;
  std::string lockPath(const std::string &Name) const override;

  /// The '/'<->'~' mapping between entry names and flat on-disk file
  /// names.  Exposed for tests and for tools that look at shard
  /// directories directly.
  static std::string encodeFileName(const std::string &Name);
  static std::string decodeFileName(const std::string &FileName);

private:
  std::string fullPath(const std::string &Name) const;

  std::string Dir;
};

} // namespace fgbs

#endif // FGBS_CORE_CACHEBACKEND_H
