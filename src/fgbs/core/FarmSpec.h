//===- fgbs/core/FarmSpec.h - fgbs.job.v1 / fgbs.part.v1 formats -*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The data plane of the distributed simulation farm.  Three artifacts,
/// all ordinary cache entries on the fgbs_cached server:
///
/// 1. The *job blob* ("fgbs-job-<16 hex key>.v1", format fgbs.job.v1):
///    everything a worker needs to reproduce any work item of one
///    measurement sweep — the full suite (codelets with their expression
///    trees), the reference and target machine descriptions, and the
///    timing policy.  Published once per key by the enqueuing trainer;
///    workers fetch and memoize it.  A parsed job recomputes
///    measurementKey over the reconstructed inputs and rejects the blob
///    on mismatch, so a worker can never publish results under a key its
///    inputs do not hash to.
///
/// 2. The *work spec* (opaque string carried through the EnqueueWork /
///    ClaimWork queue): { job entry name, key, item index } — a few
///    dozen bytes, so the queue stays cheap no matter how large the
///    suite is.
///
/// 3. The *part blob* ("fgbs-part-<16 hex key>-<8 hex item>.v1", format
///    fgbs.part.v1): one executed MeasurementItemResult, published by a
///    worker via an ordinary Put.  The enqueuing trainer polls a prefix
///    scan for these and assembles the full database once every index is
///    present.  Parts are idempotent: re-simulating an item yields
///    byte-identical bytes (the simulator is deterministic), so a
///    requeued item completed twice is harmless.
///
/// Both blob formats carry the repo-wide 28-byte header discipline
/// (magic, version major/minor, payload size, CRC-32) and parse with
/// typed errors; a damaged blob is reported, never trusted.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_CORE_FARMSPEC_H
#define FGBS_CORE_FARMSPEC_H

#include "fgbs/core/Database.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace fgbs {

/// Leading bytes of a job blob.
inline constexpr char kFarmJobMagic[8] = {'F', 'G', 'B', 'S', 'J', 'O', 'B',
                                          '1'};
/// Leading bytes of a part blob.
inline constexpr char kFarmPartMagic[8] = {'F', 'G', 'B', 'S', 'P', 'R', 'T',
                                           '1'};
inline constexpr std::uint32_t kFarmVersionMajor = 1;
inline constexpr std::uint32_t kFarmVersionMinor = 0;
inline constexpr std::size_t kFarmHeaderBytes = 28;

/// Cache entry names.  The 16 hex key digits route job and part entries
/// of one sweep by content hash (non-canonical names fall to the CRC
/// shard route, which is fine — they just spread differently).
std::string farmJobEntryName(std::uint64_t Key);
std::string farmPartEntryName(std::uint64_t Key, std::size_t Item);
/// The scan prefix matching every part of \p Key's sweep.
std::string farmPartEntryPrefix(std::uint64_t Key);
/// Recovers the item index from a part entry name of \p Key's sweep;
/// false when \p Name is not such a part name.
bool parseFarmPartEntryName(std::string_view Name, std::uint64_t Key,
                            std::size_t &ItemOut);

/// Why a farm blob or spec failed to parse.  Deliberately the same
/// taxonomy as MeasurementCacheError, minus the cache-only values.
enum class FarmSpecError {
  None,
  Truncated,
  BadMagic,
  UnsupportedVersion,
  ChecksumMismatch,
  KeyMismatch, ///< Reconstructed inputs do not hash to the stored key.
  Malformed,
  InvalidValue,
};
const char *farmSpecErrorName(FarmSpecError E);

/// A reconstructed job: self-owning copies of everything a worker needs
/// to execute items (the suite the codelet profiles point into lives
/// here, so keep the FarmJob alive as long as any result built from it).
struct FarmJob {
  std::uint64_t Key = 0;
  Suite S;
  Machine Reference;
  std::vector<Machine> Targets;
  TimingPolicy Policy;

  std::size_t itemCount() const {
    return measurementItemCount(S.numCodelets(), Targets.size());
  }
};

/// Serializes a job blob for \p Key (the caller computed it via
/// measurementKey over the same inputs).
std::string serializeFarmJob(const Suite &S, const Machine &Reference,
                             const std::vector<Machine> &Targets,
                             const TimingPolicy &Policy, std::uint64_t Key);

/// Parses and validates a job blob: header discipline, structural
/// bounds, and the recomputed-key check.  On success \p Out holds deep
/// copies of every input.
FarmSpecError parseFarmJob(std::string_view Bytes, FarmJob &Out,
                           std::string *Message = nullptr);

/// The queue-carried work spec: which job, which item.
struct FarmWorkSpec {
  std::string JobEntry; ///< Cache entry name of the job blob.
  std::uint64_t Key = 0;
  std::uint64_t Item = 0;
};

std::string encodeFarmWorkSpec(const FarmWorkSpec &Spec);
bool decodeFarmWorkSpec(std::string_view Bytes, FarmWorkSpec &Out);

/// Serializes one executed item as a part blob.
std::string serializeFarmPart(std::uint64_t Key, std::size_t Item,
                              const MeasurementItemResult &R);

/// Parses a part blob.  \p ExpectedKey/\p ExpectedItem pin the part to
/// the slot the assembler is filling; the result's codelet pointer is
/// left null for ProfileRef parts — the assembler rebinds it onto the
/// live suite (exactly as parseMeasurements does).
FarmSpecError parseFarmPart(std::string_view Bytes, std::uint64_t ExpectedKey,
                            std::size_t ExpectedItem,
                            MeasurementItemResult &Out,
                            std::string *Message = nullptr);

} // namespace fgbs

#endif // FGBS_CORE_FARMSPEC_H
