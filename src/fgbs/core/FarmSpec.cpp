//===- fgbs/core/FarmSpec.cpp - fgbs.job.v1 / fgbs.part.v1 formats --------===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
// fgbs.job.v1 payload (after the 28-byte header; str = u32 len + bytes,
// access = u32 array-index, u32 stride-class, u64 stride-elems (two's
// complement), u32 points-per-iter; expr and machine as laid out by the
// put*/read* pairs below):
//
//   u64  content key (must equal measurementKey over the fields below)
//   f64  policy min-run-seconds, u64 policy min-invocations
//   machine      reference
//   u32 T, T x machine
//   str  suite name
//   u32 A applications, A x { str name, f64 coverage,
//                             u32 C codelets, C x codelet }
//
// fgbs.part.v1 payload:
//
//   u64  content key, u64 item index, u32 kind
//   kind ProfileRef:       u8 discarded, meas, u32 F, F x f64
//   kind StandaloneRef:    sa
//   kind InAppTarget:      meas
//   kind StandaloneTarget: sa
//
// with meas/sa exactly the fgbs.meas.v1 encodings (core/measwire).
//
//===----------------------------------------------------------------------===//

#include "fgbs/core/FarmSpec.h"

#include "fgbs/core/MeasurementCache.h"
#include "fgbs/support/BinaryIo.h"
#include "fgbs/support/Crc32.h"

#include <cmath>
#include <cstdio>
#include <cstring>

using namespace fgbs;
using namespace fgbs::binio;

namespace {

/// Expression trees deeper than this are rejected on parse: real
/// codelet bodies are a handful of nodes, and a crafted blob must not
/// recurse the stack away.
constexpr unsigned kMaxExprDepth = 512;

std::string hex16(std::uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

FarmSpecError fail(FarmSpecError E, std::string *Message, const char *Why) {
  if (Message)
    *Message = Why;
  return E;
}

//===--------------------------------------------------------------------===//
// Encoders
//===--------------------------------------------------------------------===//

void putAccess(std::string &Out, const Access &A) {
  putU32(Out, A.ArrayIndex);
  putU32(Out, static_cast<std::uint32_t>(A.Stride));
  putU64(Out, static_cast<std::uint64_t>(A.StrideElems));
  putU32(Out, A.PointsPerIter);
}

void putExpr(std::string &Out, const Expr &E) {
  putU32(Out, static_cast<std::uint32_t>(E.Kind));
  putU32(Out, static_cast<std::uint32_t>(E.Prec));
  switch (E.Kind) {
  case ExprKind::Load:
    putAccess(Out, E.Ref);
    break;
  case ExprKind::Constant:
    break;
  case ExprKind::Binary:
    putU32(Out, static_cast<std::uint32_t>(E.Bin));
    putExpr(Out, *E.Lhs);
    putExpr(Out, *E.Rhs);
    break;
  case ExprKind::Unary:
    putU32(Out, static_cast<std::uint32_t>(E.Un));
    putExpr(Out, *E.Lhs);
    break;
  }
}

void putCodelet(std::string &Out, const Codelet &C) {
  putStr(Out, C.Name);
  putStr(Out, C.App);
  putStr(Out, C.Pattern);
  putU32(Out, static_cast<std::uint32_t>(C.Arrays.size()));
  for (const ArrayDecl &A : C.Arrays) {
    putStr(Out, A.Name);
    putU32(Out, static_cast<std::uint32_t>(A.Elem));
    putU64(Out, A.NumElements);
  }
  putU64(Out, C.Nest.InnerTripCount);
  putU64(Out, C.Nest.OuterIterations);
  putU32(Out, static_cast<std::uint32_t>(C.Body.size()));
  for (const Stmt &S : C.Body) {
    putU32(Out, static_cast<std::uint32_t>(S.Kind));
    putAccess(Out, S.Target);
    putU32(Out, static_cast<std::uint32_t>(S.ReduceOp));
    Out.push_back(S.Rhs ? 1 : 0);
    if (S.Rhs)
      putExpr(Out, *S.Rhs);
  }
  putU32(Out, static_cast<std::uint32_t>(C.Invocations.size()));
  for (const InvocationGroup &G : C.Invocations) {
    putU64(Out, G.Count);
    putF64(Out, G.DatasetScale);
  }
  Out.push_back(static_cast<char>(
      (C.Traits.CompilationContextSensitive ? 2 : 0) |
      (C.Traits.CacheStateSensitive ? 1 : 0)));
}

void putMachine(std::string &Out, const Machine &M) {
  putStr(Out, M.Name);
  putStr(Out, M.Cpu);
  putF64(Out, M.FrequencyGHz);
  putU32(Out, M.Cores);
  putU32(Out, M.RamGB);
  Out.push_back(M.OutOfOrder ? 1 : 0);
  putU32(Out, M.IssueWidth);
  putU32(Out, M.VectorBits);
  putU32(Out, M.NumFpRegisters);
  const CoreTimings &T = M.Timings;
  for (double V : {T.FpAddLatency, T.FpMulLatency, T.FpDivLatencySP,
                   T.FpDivLatencyDP, T.FpSqrtLatency, T.FpExpCost,
                   T.IntAddLatency, T.IntMulLatency,
                   T.VectorFpThroughputFactor, T.VectorDpThroughputFactor})
    putF64(Out, V);
  putU32(Out, static_cast<std::uint32_t>(M.CacheLevels.size()));
  for (const CacheLevelConfig &L : M.CacheLevels) {
    putStr(Out, L.Name);
    putU64(Out, L.SizeBytes);
    putU32(Out, L.Associativity);
    putU32(Out, L.LineBytes);
    putF64(Out, L.LatencyCycles);
    putF64(Out, L.BandwidthBytesPerCycle);
  }
  putF64(Out, M.MemLatencyCycles);
  putF64(Out, M.MemBandwidthGBs);
}

std::string withHeader(const char (&Magic)[8], const std::string &Payload) {
  std::string Out;
  Out.reserve(kFarmHeaderBytes + Payload.size());
  Out.append(Magic, sizeof(Magic));
  putU32(Out, kFarmVersionMajor);
  putU32(Out, kFarmVersionMinor);
  putU64(Out, Payload.size());
  putU32(Out, crc32(Payload));
  Out.append(Payload);
  return Out;
}

//===--------------------------------------------------------------------===//
// Decoders
//===--------------------------------------------------------------------===//

bool readAccess(ByteReader &In, Access &A) {
  A.ArrayIndex = In.u32();
  std::uint32_t Stride = In.u32();
  A.StrideElems = static_cast<std::int64_t>(In.u64());
  A.PointsPerIter = In.u32();
  if (In.overrun() || Stride > static_cast<std::uint32_t>(StrideClass::Stencil))
    return false;
  A.Stride = static_cast<StrideClass>(Stride);
  return true;
}

ExprPtr readExpr(ByteReader &In, unsigned Depth) {
  if (Depth > kMaxExprDepth)
    return nullptr;
  std::uint32_t Kind = In.u32();
  std::uint32_t Prec = In.u32();
  if (In.overrun() || Kind > static_cast<std::uint32_t>(ExprKind::Unary) ||
      Prec > static_cast<std::uint32_t>(Precision::I64))
    return nullptr;
  auto E = std::make_unique<Expr>();
  E->Kind = static_cast<ExprKind>(Kind);
  E->Prec = static_cast<Precision>(Prec);
  switch (E->Kind) {
  case ExprKind::Load:
    if (!readAccess(In, E->Ref))
      return nullptr;
    break;
  case ExprKind::Constant:
    break;
  case ExprKind::Binary: {
    std::uint32_t Bin = In.u32();
    if (In.overrun() || Bin > static_cast<std::uint32_t>(BinOp::Div))
      return nullptr;
    E->Bin = static_cast<BinOp>(Bin);
    E->Lhs = readExpr(In, Depth + 1);
    E->Rhs = readExpr(In, Depth + 1);
    if (!E->Lhs || !E->Rhs)
      return nullptr;
    break;
  }
  case ExprKind::Unary: {
    std::uint32_t Un = In.u32();
    if (In.overrun() || Un > static_cast<std::uint32_t>(UnOp::Abs))
      return nullptr;
    E->Un = static_cast<UnOp>(Un);
    E->Lhs = readExpr(In, Depth + 1);
    if (!E->Lhs)
      return nullptr;
    break;
  }
  }
  return E;
}

bool readCodelet(ByteReader &In, Codelet &C) {
  C.Name = In.str();
  C.App = In.str();
  C.Pattern = In.str();
  std::uint32_t Arrays = In.u32();
  if (In.overrun() || Arrays > In.remaining() / 4)
    return false;
  C.Arrays.clear();
  C.Arrays.reserve(Arrays);
  for (std::uint32_t I = 0; I < Arrays; ++I) {
    ArrayDecl A;
    A.Name = In.str();
    std::uint32_t Prec = In.u32();
    A.NumElements = In.u64();
    if (In.overrun() || Prec > static_cast<std::uint32_t>(Precision::I64))
      return false;
    A.Elem = static_cast<Precision>(Prec);
    C.Arrays.push_back(std::move(A));
  }
  C.Nest.InnerTripCount = In.u64();
  C.Nest.OuterIterations = In.u64();
  std::uint32_t Body = In.u32();
  if (In.overrun() || Body > In.remaining() / 4)
    return false;
  C.Body.clear();
  C.Body.reserve(Body);
  for (std::uint32_t I = 0; I < Body; ++I) {
    Stmt S;
    std::uint32_t Kind = In.u32();
    if (In.overrun() || Kind > static_cast<std::uint32_t>(StmtKind::Recurrence))
      return false;
    S.Kind = static_cast<StmtKind>(Kind);
    if (!readAccess(In, S.Target))
      return false;
    std::uint32_t Reduce = In.u32();
    if (In.overrun() || Reduce > static_cast<std::uint32_t>(BinOp::Div))
      return false;
    S.ReduceOp = static_cast<BinOp>(Reduce);
    std::uint8_t HasRhs = In.u8();
    if (In.overrun() || HasRhs > 1)
      return false;
    if (HasRhs) {
      S.Rhs = readExpr(In, 0);
      if (!S.Rhs)
        return false;
    }
    C.Body.push_back(std::move(S));
  }
  std::uint32_t Groups = In.u32();
  if (In.overrun() || Groups > In.remaining() / 16)
    return false;
  C.Invocations.clear();
  C.Invocations.reserve(Groups);
  for (std::uint32_t I = 0; I < Groups; ++I) {
    InvocationGroup G;
    G.Count = In.u64();
    G.DatasetScale = In.f64();
    if (!std::isfinite(G.DatasetScale))
      return false;
    C.Invocations.push_back(G);
  }
  std::uint8_t Traits = In.u8();
  if (In.overrun() || Traits > 3)
    return false;
  C.Traits.CompilationContextSensitive = (Traits & 2) != 0;
  C.Traits.CacheStateSensitive = (Traits & 1) != 0;
  return true;
}

bool readMachine(ByteReader &In, Machine &M) {
  M.Name = In.str();
  M.Cpu = In.str();
  M.FrequencyGHz = In.f64();
  M.Cores = In.u32();
  M.RamGB = In.u32();
  std::uint8_t Ooo = In.u8();
  M.IssueWidth = In.u32();
  M.VectorBits = In.u32();
  M.NumFpRegisters = In.u32();
  if (In.overrun() || Ooo > 1 || !std::isfinite(M.FrequencyGHz))
    return false;
  M.OutOfOrder = Ooo != 0;
  CoreTimings &T = M.Timings;
  for (double *V : {&T.FpAddLatency, &T.FpMulLatency, &T.FpDivLatencySP,
                    &T.FpDivLatencyDP, &T.FpSqrtLatency, &T.FpExpCost,
                    &T.IntAddLatency, &T.IntMulLatency,
                    &T.VectorFpThroughputFactor, &T.VectorDpThroughputFactor}) {
    *V = In.f64();
    if (!In.overrun() && !std::isfinite(*V))
      return false;
  }
  std::uint32_t Levels = In.u32();
  if (In.overrun() || Levels > In.remaining() / 24)
    return false;
  M.CacheLevels.clear();
  M.CacheLevels.reserve(Levels);
  for (std::uint32_t I = 0; I < Levels; ++I) {
    CacheLevelConfig L;
    L.Name = In.str();
    L.SizeBytes = In.u64();
    L.Associativity = In.u32();
    L.LineBytes = In.u32();
    L.LatencyCycles = In.f64();
    L.BandwidthBytesPerCycle = In.f64();
    if (In.overrun() || !std::isfinite(L.LatencyCycles) ||
        !std::isfinite(L.BandwidthBytesPerCycle))
      return false;
    M.CacheLevels.push_back(std::move(L));
  }
  M.MemLatencyCycles = In.f64();
  M.MemBandwidthGBs = In.f64();
  return !In.overrun() && std::isfinite(M.MemLatencyCycles) &&
         std::isfinite(M.MemBandwidthGBs);
}

/// Validates the shared header discipline; on success \p PayloadOut
/// views the checksummed payload.
FarmSpecError checkHeader(std::string_view Bytes, const char (&Magic)[8],
                          std::string_view &PayloadOut,
                          std::string *Message) {
  if (Bytes.size() >= sizeof(Magic) &&
      std::memcmp(Bytes.data(), Magic, sizeof(Magic)) != 0)
    return fail(FarmSpecError::BadMagic, Message, "wrong leading magic");
  if (Bytes.size() < kFarmHeaderBytes)
    return fail(FarmSpecError::Truncated, Message,
                "shorter than the farm blob header");
  ByteReader Header(Bytes.substr(sizeof(Magic),
                                 kFarmHeaderBytes - sizeof(Magic)));
  std::uint32_t Major = Header.u32();
  Header.u32(); // minor: forward-compatible, trailing bytes checked below
  std::uint64_t PayloadSize = Header.u64();
  std::uint32_t Crc = Header.u32();
  if (Major != kFarmVersionMajor)
    return fail(FarmSpecError::UnsupportedVersion, Message,
                "farm blob major version this reader does not speak");
  std::string_view Payload = Bytes.substr(kFarmHeaderBytes);
  if (Payload.size() < PayloadSize)
    return fail(FarmSpecError::Truncated, Message,
                "payload shorter than the header announces");
  if (Payload.size() > PayloadSize)
    return fail(FarmSpecError::Malformed, Message,
                "trailing bytes after the announced payload");
  if (crc32(Payload) != Crc)
    return fail(FarmSpecError::ChecksumMismatch, Message,
                "payload bytes do not match the stored CRC-32");
  PayloadOut = Payload;
  return FarmSpecError::None;
}

} // namespace

std::string fgbs::farmJobEntryName(std::uint64_t Key) {
  return "fgbs-job-" + hex16(Key) + ".v1";
}

std::string fgbs::farmPartEntryName(std::uint64_t Key, std::size_t Item) {
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "%08llx",
                static_cast<unsigned long long>(Item));
  return farmPartEntryPrefix(Key) + Buf + ".v1";
}

std::string fgbs::farmPartEntryPrefix(std::uint64_t Key) {
  return "fgbs-part-" + hex16(Key) + "-";
}

bool fgbs::parseFarmPartEntryName(std::string_view Name, std::uint64_t Key,
                                  std::size_t &ItemOut) {
  const std::string Prefix = farmPartEntryPrefix(Key);
  constexpr std::string_view Suffix = ".v1";
  if (Name.size() != Prefix.size() + 8 + Suffix.size() ||
      Name.substr(0, Prefix.size()) != Prefix ||
      Name.substr(Name.size() - Suffix.size()) != Suffix)
    return false;
  std::size_t Item = 0;
  for (std::size_t I = 0; I < 8; ++I) {
    char C = Name[Prefix.size() + I];
    unsigned V;
    if (C >= '0' && C <= '9')
      V = static_cast<unsigned>(C - '0');
    else if (C >= 'a' && C <= 'f')
      V = static_cast<unsigned>(C - 'a') + 10;
    else
      return false;
    Item = (Item << 4) | V;
  }
  ItemOut = Item;
  return true;
}

const char *fgbs::farmSpecErrorName(FarmSpecError E) {
  switch (E) {
  case FarmSpecError::None:
    return "none";
  case FarmSpecError::Truncated:
    return "truncated";
  case FarmSpecError::BadMagic:
    return "bad_magic";
  case FarmSpecError::UnsupportedVersion:
    return "unsupported_version";
  case FarmSpecError::ChecksumMismatch:
    return "checksum_mismatch";
  case FarmSpecError::KeyMismatch:
    return "key_mismatch";
  case FarmSpecError::Malformed:
    return "malformed";
  case FarmSpecError::InvalidValue:
    return "invalid_value";
  }
  return "unknown";
}

std::string fgbs::serializeFarmJob(const Suite &S, const Machine &Reference,
                                   const std::vector<Machine> &Targets,
                                   const TimingPolicy &Policy,
                                   std::uint64_t Key) {
  std::string Payload;
  putU64(Payload, Key);
  putF64(Payload, Policy.MinRunSeconds);
  putU64(Payload, Policy.MinInvocations);
  putMachine(Payload, Reference);
  putU32(Payload, static_cast<std::uint32_t>(Targets.size()));
  for (const Machine &M : Targets)
    putMachine(Payload, M);
  putStr(Payload, S.Name);
  putU32(Payload, static_cast<std::uint32_t>(S.Applications.size()));
  for (const Application &A : S.Applications) {
    putStr(Payload, A.Name);
    putF64(Payload, A.Coverage);
    putU32(Payload, static_cast<std::uint32_t>(A.Codelets.size()));
    for (const Codelet &C : A.Codelets)
      putCodelet(Payload, C);
  }
  return withHeader(kFarmJobMagic, Payload);
}

FarmSpecError fgbs::parseFarmJob(std::string_view Bytes, FarmJob &Out,
                                 std::string *Message) {
  std::string_view Payload;
  if (FarmSpecError E = checkHeader(Bytes, kFarmJobMagic, Payload, Message);
      E != FarmSpecError::None)
    return E;

  ByteReader In(Payload);
  FarmJob Job;
  Job.Key = In.u64();
  Job.Policy.MinRunSeconds = In.f64();
  Job.Policy.MinInvocations = In.u64();
  if (In.overrun() || !std::isfinite(Job.Policy.MinRunSeconds))
    return fail(FarmSpecError::Malformed, Message, "damaged policy block");
  if (!readMachine(In, Job.Reference))
    return fail(FarmSpecError::Malformed, Message,
                "damaged reference machine");
  std::uint32_t T = In.u32();
  if (In.overrun() || T > In.remaining())
    return fail(FarmSpecError::Malformed, Message, "damaged target count");
  Job.Targets.resize(T);
  for (std::uint32_t I = 0; I < T; ++I)
    if (!readMachine(In, Job.Targets[I]))
      return fail(FarmSpecError::Malformed, Message,
                  "damaged target machine");
  Job.S.Name = In.str();
  std::uint32_t Apps = In.u32();
  if (In.overrun() || Apps > In.remaining())
    return fail(FarmSpecError::Malformed, Message,
                "damaged application count");
  Job.S.Applications.resize(Apps);
  for (std::uint32_t A = 0; A < Apps; ++A) {
    Application &App = Job.S.Applications[A];
    App.Name = In.str();
    App.Coverage = In.f64();
    std::uint32_t Codelets = In.u32();
    if (In.overrun() || !std::isfinite(App.Coverage) ||
        Codelets > In.remaining())
      return fail(FarmSpecError::Malformed, Message,
                  "damaged application block");
    App.Codelets.resize(Codelets);
    for (std::uint32_t C = 0; C < Codelets; ++C)
      if (!readCodelet(In, App.Codelets[C]))
        return fail(FarmSpecError::Malformed, Message, "damaged codelet");
  }
  if (In.overrun())
    return fail(FarmSpecError::Truncated, Message,
                "payload ends inside the suite");
  if (!In.atEnd())
    return fail(FarmSpecError::Malformed, Message,
                "trailing garbage after the suite");

  // The integrity check that makes the farm safe: the key the blob
  // claims must be the key its reconstructed inputs hash to, so a
  // worker can never compute results for inputs that do not match the
  // entry names it publishes under.
  const std::uint64_t Derived =
      measurementKey(Job.S, Job.Reference, Job.Targets, Job.Policy);
  if (Derived != Job.Key)
    return fail(FarmSpecError::KeyMismatch, Message,
                "reconstructed inputs do not hash to the stored key");
  Out = std::move(Job);
  return FarmSpecError::None;
}

std::string fgbs::encodeFarmWorkSpec(const FarmWorkSpec &Spec) {
  std::string Out;
  putStr(Out, Spec.JobEntry);
  putU64(Out, Spec.Key);
  putU64(Out, Spec.Item);
  return Out;
}

bool fgbs::decodeFarmWorkSpec(std::string_view Bytes, FarmWorkSpec &Out) {
  ByteReader In(Bytes);
  FarmWorkSpec Spec;
  Spec.JobEntry = In.str();
  Spec.Key = In.u64();
  Spec.Item = In.u64();
  if (In.overrun() || !In.atEnd() || Spec.JobEntry.empty())
    return false;
  Out = std::move(Spec);
  return true;
}

std::string fgbs::serializeFarmPart(std::uint64_t Key, std::size_t Item,
                                    const MeasurementItemResult &R) {
  std::string Payload;
  putU64(Payload, Key);
  putU64(Payload, Item);
  putU32(Payload, static_cast<std::uint32_t>(R.Kind));
  switch (R.Kind) {
  case MeasurementItemKind::ProfileRef:
    Payload.push_back(R.Profile.Discarded ? 1 : 0);
    measwire::putMeasurement(Payload, R.Profile.InApp);
    putU32(Payload, static_cast<std::uint32_t>(R.Profile.Features.size()));
    for (double V : R.Profile.Features)
      putF64(Payload, V);
    break;
  case MeasurementItemKind::InAppTarget:
    measwire::putMeasurement(Payload, R.InApp);
    break;
  case MeasurementItemKind::StandaloneRef:
  case MeasurementItemKind::StandaloneTarget:
    measwire::putStandalone(Payload, R.Standalone);
    break;
  }
  return withHeader(kFarmPartMagic, Payload);
}

FarmSpecError fgbs::parseFarmPart(std::string_view Bytes,
                                  std::uint64_t ExpectedKey,
                                  std::size_t ExpectedItem,
                                  MeasurementItemResult &Out,
                                  std::string *Message) {
  std::string_view Payload;
  if (FarmSpecError E = checkHeader(Bytes, kFarmPartMagic, Payload, Message);
      E != FarmSpecError::None)
    return E;

  ByteReader In(Payload);
  std::uint64_t Key = In.u64();
  std::uint64_t Item = In.u64();
  std::uint32_t Kind = In.u32();
  if (In.overrun() ||
      Kind > static_cast<std::uint32_t>(MeasurementItemKind::StandaloneTarget))
    return fail(FarmSpecError::Malformed, Message, "damaged part identity");
  if (Key != ExpectedKey || Item != ExpectedItem)
    return fail(FarmSpecError::KeyMismatch, Message,
                "part key/item do not match the slot being filled");

  MeasurementItemResult R;
  R.Kind = static_cast<MeasurementItemKind>(Kind);
  switch (R.Kind) {
  case MeasurementItemKind::ProfileRef: {
    std::uint8_t Discarded = In.u8();
    if (In.overrun() || Discarded > 1)
      return fail(FarmSpecError::Malformed, Message, "damaged profile flag");
    R.Profile.Discarded = Discarded != 0;
    if (!measwire::readMeasurement(In, R.Profile.InApp))
      return fail(FarmSpecError::InvalidValue, Message,
                  "invalid profile measurement");
    std::uint32_t F = In.u32();
    if (In.overrun() || F > In.remaining() / 8)
      return fail(FarmSpecError::Malformed, Message,
                  "damaged feature vector");
    R.Profile.Features = In.f64Vector(F);
    for (double V : R.Profile.Features)
      if (!std::isfinite(V))
        return fail(FarmSpecError::InvalidValue, Message,
                    "non-finite feature value");
    break;
  }
  case MeasurementItemKind::InAppTarget:
    if (!measwire::readMeasurement(In, R.InApp))
      return fail(FarmSpecError::InvalidValue, Message,
                  "invalid in-app measurement");
    break;
  case MeasurementItemKind::StandaloneRef:
  case MeasurementItemKind::StandaloneTarget:
    if (!measwire::readStandalone(In, R.Standalone))
      return fail(FarmSpecError::InvalidValue, Message,
                  "invalid standalone measurement");
    break;
  }
  if (In.overrun())
    return fail(FarmSpecError::Truncated, Message,
                "payload ends inside the measurement");
  if (!In.atEnd())
    return fail(FarmSpecError::Malformed, Message,
                "trailing garbage after the measurement");
  Out = std::move(R);
  return FarmSpecError::None;
}
