//===- fgbs/core/ModelRegistry.cpp - Model artifact distribution ----------===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "fgbs/core/ModelRegistry.h"

#include "fgbs/obs/Metrics.h"
#include "fgbs/support/BinaryIo.h"
#include "fgbs/support/Crc32.h"
#include "fgbs/support/Sha256.h"

#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>

using namespace fgbs;
using namespace fgbs::binio;

namespace fs = std::filesystem;

std::string fgbs::serializeModelRef(const ModelRef &R) {
  std::string Payload;
  putStr(Payload, R.Sha256Hex);
  putU64(Payload, R.SnapshotBytes);
  putU64(Payload, R.PublishedUnixSeconds);

  std::string Out;
  Out.append(kModelRefMagic, sizeof(kModelRefMagic));
  putU32(Out, kModelRefVersionMajor);
  putU32(Out, kModelRefVersionMinor);
  putU64(Out, Payload.size());
  putU32(Out, crc32(Payload));
  Out.append(Payload);
  return Out;
}

bool fgbs::parseModelRef(std::string_view Bytes, ModelRef &Out,
                         std::string *Error) {
  auto Fail = [&](const char *Why) {
    if (Error)
      *Error = Why;
    return false;
  };
  if (Bytes.size() < kModelRefHeaderBytes)
    return Fail("truncated ref header");
  if (std::memcmp(Bytes.data(), kModelRefMagic, sizeof(kModelRefMagic)) != 0)
    return Fail("not an fgbs.ref.v1 blob");
  ByteReader Header(Bytes.substr(sizeof(kModelRefMagic)));
  const std::uint32_t Major = Header.u32();
  Header.u32(); // minor: additive, ignored.
  const std::uint64_t PayloadSize = Header.u64();
  const std::uint32_t Checksum = Header.u32();
  if (Major != kModelRefVersionMajor)
    return Fail("unsupported ref version");
  if (Bytes.size() - kModelRefHeaderBytes != PayloadSize)
    return Fail("ref payload size mismatch");
  std::string_view Payload = Bytes.substr(kModelRefHeaderBytes);
  if (crc32(Payload) != Checksum)
    return Fail("ref checksum mismatch");
  ByteReader In(Payload);
  ModelRef R;
  R.Sha256Hex = In.str();
  R.SnapshotBytes = In.u64();
  R.PublishedUnixSeconds = In.u64();
  if (In.overrun() || !In.atEnd())
    return Fail("malformed ref payload");
  if (!isSha256Hex(R.Sha256Hex))
    return Fail("ref names a malformed hash");
  Out = std::move(R);
  return true;
}

namespace {

bool isValidSegment(std::string_view Seg, std::size_t MaxLen) {
  if (Seg.empty() || Seg.size() > MaxLen || Seg == "." || Seg == "..")
    return false;
  for (char C : Seg)
    if (!((C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
          (C >= '0' && C <= '9') || C == '.' || C == '_' || C == '-'))
      return false;
  return true;
}

} // namespace

bool fgbs::isValidModelName(std::string_view Name) {
  return isValidSegment(Name, 100);
}

bool fgbs::isValidModelTag(std::string_view Tag) {
  return isValidSegment(Tag, 100);
}

std::string fgbs::modelShaKey(const std::string &Name,
                              const std::string &Hex) {
  return "model/" + Name + "/sha/" + Hex;
}

std::string fgbs::modelRefKey(const std::string &Name,
                              const std::string &Tag) {
  return "model/" + Name + "/ref/" + Tag;
}

bool fgbs::parseModelUri(const std::string &Uri, ModelUri &Out,
                         std::string *Error) {
  auto Fail = [&](const std::string &Why) {
    if (Error)
      *Error = Why;
    return false;
  };
  constexpr std::string_view Scheme = "fgbs://";
  if (Uri.size() <= Scheme.size() ||
      std::string_view(Uri).substr(0, Scheme.size()) != Scheme)
    return Fail("model URI must start with fgbs://");
  const std::string Rest = Uri.substr(Scheme.size());
  const std::size_t Slash = Rest.find('/');
  if (Slash == std::string::npos || Slash == 0)
    return Fail("model URI needs host:port/<name>");
  const std::string Address = Rest.substr(0, Slash);
  std::string Path = Rest.substr(Slash + 1);
  const std::size_t Colon = Address.rfind(':');
  if (Colon == std::string::npos || Colon == 0 ||
      Colon + 1 == Address.size())
    return Fail("model URI address must be host:port");
  ModelUri U;
  U.Host = Address.substr(0, Colon);
  unsigned long Port = 0;
  for (std::size_t I = Colon + 1; I < Address.size(); ++I) {
    const char C = Address[I];
    if (C < '0' || C > '9')
      return Fail("model URI port is not a number");
    Port = Port * 10 + static_cast<unsigned long>(C - '0');
    if (Port > 65535)
      return Fail("model URI port out of range");
  }
  if (Port == 0)
    return Fail("model URI port out of range");
  U.Port = static_cast<std::uint16_t>(Port);
  // The selector is everything after the last '@' (names cannot carry
  // '@', so the first is also the last).
  const std::size_t At = Path.rfind('@');
  std::string Selector;
  if (At != std::string::npos) {
    Selector = Path.substr(At + 1);
    Path = Path.substr(0, At);
    if (Selector.empty())
      return Fail("model URI has '@' but no tag or hash after it");
  }
  if (!isValidModelName(Path))
    return Fail("model URI name '" + Path + "' is invalid");
  U.Name = Path;
  if (Selector.empty()) {
    U.Tag = "latest";
  } else if (std::string_view(Selector).substr(0, 7) == "sha256:") {
    U.Sha256Hex = Selector.substr(7);
    if (!isSha256Hex(U.Sha256Hex))
      return Fail("model URI hash must be 64 lowercase hex digits");
  } else {
    if (!isValidModelTag(Selector))
      return Fail("model URI tag '" + Selector + "' is invalid");
    U.Tag = Selector;
  }
  Out = std::move(U);
  return true;
}

const char *fgbs::registryErrorName(RegistryError E) {
  switch (E) {
  case RegistryError::None:
    return "none";
  case RegistryError::InvalidName:
    return "invalid_name";
  case RegistryError::InvalidTag:
    return "invalid_tag";
  case RegistryError::InvalidHash:
    return "invalid_hash";
  case RegistryError::Unreachable:
    return "unreachable";
  case RegistryError::RefNotFound:
    return "ref_not_found";
  case RegistryError::RefMalformed:
    return "ref_malformed";
  case RegistryError::DanglingRef:
    return "dangling_ref";
  case RegistryError::HashMismatch:
    return "hash_mismatch";
  case RegistryError::PublishFailed:
    return "publish_failed";
  case RegistryError::RefPublishFailed:
    return "ref_publish_failed";
  case RegistryError::LeaseTimeout:
    return "lease_timeout";
  case RegistryError::LocalWriteFailed:
    return "local_write_failed";
  }
  return "unknown";
}

ModelRegistry::ModelRegistry(std::unique_ptr<CacheBackend> Remote,
                             std::string LocalCacheDir)
    : Remote(std::move(Remote)), LocalCacheDir(std::move(LocalCacheDir)) {}

std::string ModelRegistry::localSnapshotFileName(const std::string &Hex) {
  return "model-" + Hex + ".fgbs";
}

std::string ModelRegistry::localRefFileName(const std::string &Name,
                                            const std::string &Tag) {
  return "ref-" + Name + "@" + Tag + ".fgbsref";
}

std::string ModelRegistry::localSnapshotPath(const std::string &Hex) const {
  return (fs::path(LocalCacheDir) / localSnapshotFileName(Hex)).string();
}

std::string ModelRegistry::localRefPath(const std::string &Name,
                                        const std::string &Tag) const {
  return (fs::path(LocalCacheDir) / localRefFileName(Name, Tag)).string();
}

namespace {

bool readWholeFile(const std::string &Path, std::string &BytesOut) {
  std::ifstream IS(Path, std::ios::binary);
  if (!IS)
    return false;
  std::string Bytes((std::istreambuf_iterator<char>(IS)),
                    std::istreambuf_iterator<char>());
  if (IS.bad())
    return false;
  BytesOut = std::move(Bytes);
  return true;
}

} // namespace

bool ModelRegistry::loadVerifiedLocal(const std::string &Hex,
                                      std::string &BytesOut) {
  if (LocalCacheDir.empty())
    return false;
  const std::string Path = localSnapshotPath(Hex);
  std::string Bytes;
  if (!readWholeFile(Path, Bytes))
    return false;
  // EVERY load re-verifies: the local cache is convenience, not trust.
  if (sha256Hex(Bytes) != Hex) {
    FGBS_COUNTER_ADD("registry.verify_failures", 1);
    std::error_code Ec;
    fs::remove(Path, Ec);
    return false;
  }
  BytesOut = std::move(Bytes);
  return true;
}

void ModelRegistry::storeLocalSnapshot(const std::string &Hex,
                                       std::string_view Bytes) {
  if (LocalCacheDir.empty())
    return;
  std::error_code Ec;
  fs::create_directories(LocalCacheDir, Ec);
  atomicWriteFile(localSnapshotPath(Hex), Bytes);
}

void ModelRegistry::storeLocalRef(const std::string &Name,
                                  const std::string &Tag,
                                  const ModelRef &Ref) {
  if (LocalCacheDir.empty())
    return;
  std::error_code Ec;
  fs::create_directories(LocalCacheDir, Ec);
  atomicWriteFile(localRefPath(Name, Tag), serializeModelRef(Ref));
}

PublishResult ModelRegistry::publish(const std::string &Name,
                                     const std::string &Tag,
                                     std::string_view SnapshotBytes) {
  PublishResult Out;
  if (!isValidModelName(Name)) {
    Out.Error = RegistryError::InvalidName;
    Out.Message = "invalid model name '" + Name + "'";
    return Out;
  }
  if (!isValidModelTag(Tag)) {
    Out.Error = RegistryError::InvalidTag;
    Out.Message = "invalid model tag '" + Tag + "'";
    return Out;
  }
  Out.Sha256Hex = sha256Hex(SnapshotBytes);
  const std::string ShaKey = modelShaKey(Name, Out.Sha256Hex);
  const std::string RefKey = modelRefKey(Name, Tag);

  // Snapshot first.  Content-addressed keys make re-publish idempotent:
  // identical bytes are one blob, and a crash after this step leaves an
  // unreferenced blob, never a dangling tag.
  Out.SnapshotAlreadyPresent = Remote->exists(ShaKey);
  if (!Out.SnapshotAlreadyPresent && !Remote->put(ShaKey, SnapshotBytes)) {
    Out.Error = RegistryError::PublishFailed;
    Out.Message = "cannot publish snapshot blob " + ShaKey;
    return Out;
  }

  // Then the ref, under the backend's writer election for the ref key,
  // so two racing publishers serialize into whole-ref last-writer-wins.
  std::unique_ptr<WriterLock> Lease = Remote->writerLock(RefKey);
  FileLock::Options LeaseOpts;
  LeaseOpts.TimeoutMs = 30000;
  WriterLock::Result Held = Lease->acquire(LeaseOpts);
  if (!Held) {
    Out.Error = RegistryError::LeaseTimeout;
    Out.Message = "writer lease for " + RefKey + " unavailable: " +
                  Held.Message;
    return Out;
  }
  ModelRef Ref;
  Ref.Sha256Hex = Out.Sha256Hex;
  Ref.SnapshotBytes = SnapshotBytes.size();
  Ref.PublishedUnixSeconds =
      static_cast<std::uint64_t>(std::time(nullptr));
  const bool RefStored = Remote->put(RefKey, serializeModelRef(Ref));
  Lease->release();
  if (!RefStored) {
    Out.Error = RegistryError::RefPublishFailed;
    Out.Message = "cannot publish ref " + RefKey;
    return Out;
  }
  // Memoize what we just published so this host's pulls are warm from
  // the start (and survive the registry dying later).
  storeLocalSnapshot(Out.Sha256Hex, SnapshotBytes);
  storeLocalRef(Name, Tag, Ref);
  FGBS_COUNTER_ADD("registry.publishes", 1);
  return Out;
}

PullResult ModelRegistry::fetchByHash(const std::string &Name,
                                      const std::string &Hex,
                                      bool RegistryHealthy) {
  PullResult Out;
  Out.Sha256Hex = Hex;
  // Warm path: the local read-through copy, verified.
  if (loadVerifiedLocal(Hex, Out.Bytes))
    return Out;
  const std::string ShaKey = modelShaKey(Name, Hex);
  std::string Bytes;
  if (!Remote->get(ShaKey, Bytes)) {
    if (!RegistryHealthy) {
      Out.Error = RegistryError::Unreachable;
      Out.Message = "registry unreachable and no local copy of " + ShaKey;
      return Out;
    }
    Out.Error = RegistryError::DanglingRef;
    Out.Message = "snapshot " + ShaKey +
                  " is gone (pruned or never fully published)";
    return Out;
  }
  if (sha256Hex(Bytes) != Hex) {
    // A tampered or damaged payload is never surfaced to the caller.
    FGBS_COUNTER_ADD("registry.verify_failures", 1);
    Out.Error = RegistryError::HashMismatch;
    Out.Message = "payload of " + ShaKey + " does not match its hash";
    return Out;
  }
  FGBS_COUNTER_ADD("registry.snapshot_fetches", 1);
  Out.FetchedFromRemote = true;
  storeLocalSnapshot(Hex, Bytes);
  Out.Bytes = std::move(Bytes);
  return Out;
}

PullResult ModelRegistry::pull(const std::string &Name,
                               const std::string &Tag) {
  PullResult Out;
  if (!isValidModelName(Name)) {
    Out.Error = RegistryError::InvalidName;
    Out.Message = "invalid model name '" + Name + "'";
    return Out;
  }
  if (!isValidModelTag(Tag)) {
    Out.Error = RegistryError::InvalidTag;
    Out.Message = "invalid model tag '" + Tag + "'";
    return Out;
  }
  FGBS_COUNTER_ADD("registry.pulls", 1);
  const std::string RefKey = modelRefKey(Name, Tag);
  std::string RefBytes;
  ModelRef Ref;
  std::string RefError;
  if (Remote->get(RefKey, RefBytes)) {
    if (!parseModelRef(RefBytes, Ref, &RefError)) {
      Out.Error = RegistryError::RefMalformed;
      Out.Message = RefKey + ": " + RefError;
      return Out;
    }
    storeLocalRef(Name, Tag, Ref);
    FGBS_COUNTER_ADD("registry.ref_hits", 1);
    PullResult Fetched = fetchByHash(Name, Ref.Sha256Hex,
                                     /*RegistryHealthy=*/true);
    return Fetched;
  }
  // The ref did not come back.  "The registry says there is no such
  // tag" and "the registry is down" demand opposite reactions, so probe
  // health before deciding.
  if (Remote->healthy()) {
    Out.Error = RegistryError::RefNotFound;
    Out.Message = "no ref " + RefKey + " in the registry";
    return Out;
  }
  if (!LocalCacheDir.empty() &&
      readWholeFile(localRefPath(Name, Tag), RefBytes) &&
      parseModelRef(RefBytes, Ref, &RefError)) {
    std::string Bytes;
    if (loadVerifiedLocal(Ref.Sha256Hex, Bytes)) {
      FGBS_COUNTER_ADD("registry.degraded", 1);
      Out.Degraded = true;
      Out.Sha256Hex = Ref.Sha256Hex;
      Out.Bytes = std::move(Bytes);
      return Out;
    }
  }
  Out.Error = RegistryError::Unreachable;
  Out.Message = "registry " + RefKey +
                " unreachable and no memoized local copy";
  return Out;
}

PullResult ModelRegistry::pullByHash(const std::string &Name,
                                     const std::string &Hex) {
  PullResult Out;
  if (!isValidModelName(Name)) {
    Out.Error = RegistryError::InvalidName;
    Out.Message = "invalid model name '" + Name + "'";
    return Out;
  }
  if (!isSha256Hex(Hex)) {
    Out.Error = RegistryError::InvalidHash;
    Out.Message = "'" + Hex + "' is not a SHA-256 hex digest";
    return Out;
  }
  FGBS_COUNTER_ADD("registry.pulls", 1);
  // An explicit hash needs no ref resolution; only if the blob is
  // neither local nor fetchable does health matter (for the error
  // type).  Probe lazily to keep the warm path network-free.
  PullResult Fetched = fetchByHash(Name, Hex, /*RegistryHealthy=*/true);
  if (Fetched.Error == RegistryError::DanglingRef && !Remote->healthy()) {
    Fetched.Error = RegistryError::Unreachable;
    Fetched.Message = "registry unreachable and no local copy of " +
                      modelShaKey(Name, Hex);
  }
  return Fetched;
}

ScanPrefixResult ModelRegistry::list(const std::string &Name) const {
  return Remote->scanPrefix(Name.empty() ? std::string("model/")
                                         : "model/" + Name + "/");
}
