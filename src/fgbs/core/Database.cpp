//===- fgbs/core/Database.cpp - Measurement database ----------------------===//

#include "fgbs/core/Database.h"

#include "fgbs/obs/Trace.h"

#include <cassert>
#include <utility>

using namespace fgbs;

MeasurementDatabase::MeasurementDatabase(const Suite &S, Machine Ref,
                                         std::vector<Machine> Tgts,
                                         const TimingPolicy &Policy)
    : TheSuite(&S), Reference(std::move(Ref)), Targets(std::move(Tgts)) {
  // Steps A-B: capture + profile on the reference machine, then the
  // ground-truth and standalone measurements on every target.
  FGBS_TRACE_SPAN("pipeline.measure");
  {
    FGBS_TRACE_SPAN("pipeline.measure.profile_reference");
    Profiles = profileSuite(S, Reference);
  }

  std::vector<const Codelet *> Codelets = S.allCodelets();
  assert(Codelets.size() == Profiles.size() && "profile count mismatch");
  FGBS_COUNTER_ADD("db.codelets_profiled", Codelets.size());

  {
    FGBS_TRACE_SPAN("pipeline.measure.standalone_reference");
    StandaloneOnRef.reserve(Codelets.size());
    for (const Codelet *C : Codelets)
      StandaloneOnRef.push_back(measureStandalone(*C, Reference, Policy));
  }

  FGBS_TRACE_SPAN("pipeline.measure.targets");
  RealTarget.resize(Targets.size());
  StandaloneOnTarget.resize(Targets.size());
  for (std::size_t T = 0; T < Targets.size(); ++T) {
    RealTarget[T].reserve(Codelets.size());
    StandaloneOnTarget[T].reserve(Codelets.size());
    for (const Codelet *C : Codelets) {
      RealTarget[T].push_back(measureInApp(*C, Targets[T]));
      StandaloneOnTarget[T].push_back(
          measureStandalone(*C, Targets[T], Policy));
    }
  }
}

std::vector<std::size_t> MeasurementDatabase::keptCodelets() const {
  std::vector<std::size_t> Kept;
  for (std::size_t I = 0; I < Profiles.size(); ++I)
    if (!Profiles[I].Discarded)
      Kept.push_back(I);
  return Kept;
}

bool MeasurementDatabase::isWellBehavedOnRef(std::size_t Codelet) const {
  return isWellBehaved(StandaloneOnRef[Codelet],
                       Profiles[Codelet].InApp.MeasuredSeconds);
}
