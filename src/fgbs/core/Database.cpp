//===- fgbs/core/Database.cpp - Measurement database ----------------------===//

#include "fgbs/core/Database.h"

#include <cassert>
#include <utility>

using namespace fgbs;

MeasurementDatabase::MeasurementDatabase(const Suite &S, Machine Ref,
                                         std::vector<Machine> Tgts,
                                         const TimingPolicy &Policy)
    : TheSuite(&S), Reference(std::move(Ref)), Targets(std::move(Tgts)) {
  Profiles = profileSuite(S, Reference);

  std::vector<const Codelet *> Codelets = S.allCodelets();
  assert(Codelets.size() == Profiles.size() && "profile count mismatch");

  StandaloneOnRef.reserve(Codelets.size());
  for (const Codelet *C : Codelets)
    StandaloneOnRef.push_back(measureStandalone(*C, Reference, Policy));

  RealTarget.resize(Targets.size());
  StandaloneOnTarget.resize(Targets.size());
  for (std::size_t T = 0; T < Targets.size(); ++T) {
    RealTarget[T].reserve(Codelets.size());
    StandaloneOnTarget[T].reserve(Codelets.size());
    for (const Codelet *C : Codelets) {
      RealTarget[T].push_back(measureInApp(*C, Targets[T]));
      StandaloneOnTarget[T].push_back(
          measureStandalone(*C, Targets[T], Policy));
    }
  }
}

std::vector<std::size_t> MeasurementDatabase::keptCodelets() const {
  std::vector<std::size_t> Kept;
  for (std::size_t I = 0; I < Profiles.size(); ++I)
    if (!Profiles[I].Discarded)
      Kept.push_back(I);
  return Kept;
}

bool MeasurementDatabase::isWellBehavedOnRef(std::size_t Codelet) const {
  return isWellBehaved(StandaloneOnRef[Codelet],
                       Profiles[Codelet].InApp.MeasuredSeconds);
}
