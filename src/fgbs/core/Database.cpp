//===- fgbs/core/Database.cpp - Measurement database ----------------------===//

#include "fgbs/core/Database.h"

#include "fgbs/compiler/CompileCache.h"
#include "fgbs/obs/Trace.h"
#include "fgbs/support/ThreadPool.h"

#include <cassert>
#include <utility>

using namespace fgbs;

std::size_t fgbs::measurementItemCount(std::size_t NumCodelets,
                                       std::size_t NumTargets) {
  return NumCodelets * (2 + 2 * NumTargets);
}

MeasurementItem fgbs::decodeMeasurementItem(std::size_t Item,
                                            std::size_t NumCodelets,
                                            std::size_t NumTargets) {
  assert(Item < measurementItemCount(NumCodelets, NumTargets) &&
         "item index out of range");
  (void)NumTargets;
  const std::size_t N = NumCodelets;
  MeasurementItem Out;
  Out.Codelet = Item % N;
  if (Item < N) {
    Out.Kind = MeasurementItemKind::ProfileRef;
  } else if (Item < 2 * N) {
    Out.Kind = MeasurementItemKind::StandaloneRef;
  } else {
    Out.Target = (Item - 2 * N) / (2 * N);
    Out.Kind = ((Item - 2 * N) / N) % 2 == 0
                   ? MeasurementItemKind::InAppTarget
                   : MeasurementItemKind::StandaloneTarget;
  }
  return Out;
}

MeasurementItemResult fgbs::executeMeasurementItem(
    const Codelet &C, const Machine &Reference,
    const std::vector<Machine> &Targets, const TimingPolicy &Policy,
    const MeasurementItem &Item, CompileCache *Compile) {
  MeasurementItemResult Out;
  Out.Kind = Item.Kind;
  switch (Item.Kind) {
  case MeasurementItemKind::ProfileRef:
    Out.Profile = profileCodelet(C, Reference, Compile);
    break;
  case MeasurementItemKind::StandaloneRef:
    Out.Standalone = measureStandalone(C, Reference, Policy, Compile);
    break;
  case MeasurementItemKind::InAppTarget:
    Out.InApp = measureInApp(C, Targets[Item.Target], Compile);
    break;
  case MeasurementItemKind::StandaloneTarget:
    Out.Standalone = measureStandalone(C, Targets[Item.Target], Policy,
                                       Compile);
    break;
  }
  return Out;
}

MeasurementDatabase::MeasurementDatabase(const Suite &S, Machine Ref,
                                         std::vector<Machine> Tgts,
                                         const TimingPolicy &Policy,
                                         const DatabaseOptions &Options)
    : TheSuite(&S), Reference(std::move(Ref)), Targets(std::move(Tgts)) {
  // Steps A-B: capture + profile on the reference machine, then the
  // ground-truth and standalone measurements on every target.  The work
  // is enumerated as independent (codelet, machine, kind) items, each
  // writing its own pre-sized slot, and fanned out over the pool: the
  // result is bit-identical for any thread count, and a pool of one
  // reproduces the historical serial sweep exactly.
  FGBS_TRACE_SPAN("pipeline.measure");

  std::vector<const Codelet *> Codelets = S.allCodelets();
  const std::size_t N = Codelets.size();
  const std::size_t T = Targets.size();

  Profiles.resize(N);
  StandaloneOnRef.resize(N);
  RealTarget.assign(T, std::vector<Measurement>(N));
  StandaloneOnTarget.assign(T, std::vector<StandaloneMeasurement>(N));

  // One compile memo for the whole sweep: each codelet is lowered once
  // per (machine, context) instead of once per execute() call — the
  // in-application profile, every invocation group, the ground-truth
  // target runs, and the static feature analysis all share it.
  CompileCache Compile;

  unsigned Threads =
      Options.Threads > 0 ? Options.Threads : ThreadPool::defaultThreadCount();
  FGBS_GAUGE_SET("db.threads", Threads);
  ThreadPool Pool(Threads);

  // Work-item index space, kind-major (decodeMeasurementItem owns it;
  // the simulation farm distributes the same indices):
  //   [0, N)        profile codelet I on the reference (step B),
  //   [N, 2N)       standalone codelet I on the reference,
  //   [2N + 2*t*N + 0..N)   in-app ground truth of codelet I on target t,
  //   [2N + (2t+1)*N ..)    standalone codelet I on target t.
  Pool.parallelFor(0, measurementItemCount(N, T), [&](std::size_t Item) {
    const MeasurementItem M = decodeMeasurementItem(Item, N, T);
    MeasurementItemResult R = executeMeasurementItem(
        *Codelets[M.Codelet], Reference, Targets, Policy, M, &Compile);
    switch (M.Kind) {
    case MeasurementItemKind::ProfileRef:
      Profiles[M.Codelet] = std::move(R.Profile);
      break;
    case MeasurementItemKind::StandaloneRef:
      StandaloneOnRef[M.Codelet] = R.Standalone;
      break;
    case MeasurementItemKind::InAppTarget:
      RealTarget[M.Target][M.Codelet] = R.InApp;
      break;
    case MeasurementItemKind::StandaloneTarget:
      StandaloneOnTarget[M.Target][M.Codelet] = R.Standalone;
      break;
    }
  });

  FGBS_COUNTER_ADD("db.codelets_profiled", N);
  assert(Codelets.size() == Profiles.size() && "profile count mismatch");
}

MeasurementDatabase::MeasurementDatabase(
    const Suite &S, Machine Ref, std::vector<Machine> Tgts,
    std::vector<CodeletProfile> Profs,
    std::vector<std::vector<Measurement>> Real,
    std::vector<StandaloneMeasurement> StandaloneRef,
    std::vector<std::vector<StandaloneMeasurement>> StandaloneTgt)
    : TheSuite(&S), Reference(std::move(Ref)), Targets(std::move(Tgts)),
      Profiles(std::move(Profs)), RealTarget(std::move(Real)),
      StandaloneOnRef(std::move(StandaloneRef)),
      StandaloneOnTarget(std::move(StandaloneTgt)) {
  assert(Profiles.size() == S.numCodelets() && "profile count mismatch");
  assert(StandaloneOnRef.size() == Profiles.size() &&
         "standalone count mismatch");
  assert(RealTarget.size() == Targets.size() && "target grid mismatch");
  assert(StandaloneOnTarget.size() == Targets.size() &&
         "target grid mismatch");
}

std::vector<std::size_t> MeasurementDatabase::keptCodelets() const {
  std::vector<std::size_t> Kept;
  for (std::size_t I = 0; I < Profiles.size(); ++I)
    if (!Profiles[I].Discarded)
      Kept.push_back(I);
  return Kept;
}

bool MeasurementDatabase::isWellBehavedOnRef(std::size_t Codelet) const {
  return isWellBehaved(StandaloneOnRef[Codelet],
                       Profiles[Codelet].InApp.MeasuredSeconds);
}
