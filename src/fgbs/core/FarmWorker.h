//===- fgbs/core/FarmWorker.h - Simulation-farm worker loop ----*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compute half of the distributed simulation farm: a loop that
/// claims work items from an fgbs_cached coordinator, executes them
/// through the same (codelet, machine, kind) item executor the
/// in-process sweep uses, and publishes each result as a part blob.
///
/// The loop is deliberately crash-oblivious.  It holds no state a
/// SIGKILL could corrupt: claims are leases that expire server-side,
/// part publishes are atomic cache puts, and CompleteWork is only sent
/// after the part is durably stored.  A worker that dies at any point
/// leaves items that simply requeue after their lease TTL.
///
/// One function serves three hosts: the fgbs_worker tool, the embedded
/// --workers threads of fgbs_cached, and forked children in the
/// fault-injection tests.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_CORE_FARMWORKER_H
#define FGBS_CORE_FARMWORKER_H

#include "fgbs/core/RemoteCacheBackend.h"

#include <atomic>
#include <cstdint>

namespace fgbs {

/// Tuning for one runWorkerLoop() invocation.
struct WorkerConfig {
  /// Coordinator address and transport tuning.
  RemoteCacheConfig Remote;
  /// Claim lease TTL: how long a crashed worker's items stay stuck
  /// before the coordinator requeues them.
  std::uint64_t LeaseTtlMs = 30000;
  /// Items requested per ClaimWork round trip.
  std::uint32_t ClaimBatch = 4;
  /// Base idle poll interval; jittered and backed off up to 8x while
  /// the queue stays empty.
  std::uint64_t PollMs = 200;
  /// Exit once the queue has been empty this long (0 = run until
  /// \p Stop or the item budget).
  std::uint64_t IdleExitMs = 0;
  /// Stop after executing this many items (0 = unlimited).
  std::uint64_t MaxItems = 0;
  /// Cooperative shutdown flag; may be null.
  std::atomic<bool> *Stop = nullptr;
  /// Test hook: sleep this long after a successful claim before doing
  /// any work, holding the lease without progress — the window the
  /// fault-injection tests SIGKILL a worker inside.
  std::uint64_t PostClaimDelayMs = 0;
  /// Fixed owner token (0 = mint a fresh one); tests pin it to assert
  /// lease ownership.
  std::uint64_t Token = 0;
};

/// What one worker loop did, for logs and test assertions.
struct WorkerStats {
  std::uint64_t Claimed = 0;        ///< Items received from ClaimWork.
  std::uint64_t Executed = 0;       ///< Items actually simulated.
  std::uint64_t Completed = 0;      ///< CompleteWork acknowledgements.
  std::uint64_t AlreadyPresent = 0; ///< Part existed; completed without work.
  std::uint64_t Abandoned = 0;      ///< Returned to the queue (job fetch
                                    ///< failed or shutdown mid-batch).
  std::uint64_t BadSpecs = 0;       ///< Undecodable/out-of-range specs
                                    ///< retired without execution.
};

/// Runs the claim/execute/publish/complete loop against
/// \p Config.Remote until stopped, idle-expired, or item-budget
/// exhausted.  Never throws; network failures look like an empty queue
/// and are retried on the jittered idle schedule.
WorkerStats runWorkerLoop(const WorkerConfig &Config);

} // namespace fgbs

#endif // FGBS_CORE_FARMWORKER_H
