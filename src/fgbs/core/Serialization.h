//===- fgbs/core/Serialization.h - CSV import/export ------------*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CSV serialization of profiling results and evaluations.
///
/// The paper's workflow profiles a suite ONCE on the reference machine
/// and reuses the extracted representatives across many target machines
/// and users ("the benchmarks are portable, so they can be extracted
/// once for a benchmark suite and reused").  These helpers persist the
/// step-B profiles and the step-E evaluations so downstream tooling
/// (spreadsheets, plotting) can consume them, and feature matrices can
/// round-trip through disk.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_CORE_SERIALIZATION_H
#define FGBS_CORE_SERIALIZATION_H

#include "fgbs/core/Pipeline.h"

#include <iosfwd>
#include <optional>
#include <string>

namespace fgbs {

/// Writes the step-B profile of every codelet in \p Db as CSV: name,
/// application, discarded flag, reference seconds per invocation, and
/// the full 76-entry feature vector (columns named per the catalog).
void writeProfilesCsv(std::ostream &OS, const MeasurementDatabase &Db);

/// Writes a pipeline evaluation as CSV: one row per kept codelet with
/// cluster id, representative flag, and per-target real/predicted
/// seconds and error percent.
void writeEvaluationCsv(std::ostream &OS, const MeasurementDatabase &Db,
                        const PipelineResult &R);

/// Writes a bare feature matrix (header row of column names, one row
/// per point).
void writeFeatureMatrixCsv(std::ostream &OS, const FeatureTable &Points,
                           const std::vector<std::string> &ColumnNames,
                           const std::vector<std::string> &RowNames);

/// Parsed feature matrix.
struct FeatureMatrixCsv {
  std::vector<std::string> ColumnNames;
  std::vector<std::string> RowNames;
  FeatureTable Points;
};

/// Reads a feature matrix previously written by writeFeatureMatrixCsv.
/// Returns std::nullopt on malformed input (ragged rows, non-numeric
/// cells, missing header).
std::optional<FeatureMatrixCsv> readFeatureMatrixCsv(std::istream &IS);

} // namespace fgbs

#endif // FGBS_CORE_SERIALIZATION_H
