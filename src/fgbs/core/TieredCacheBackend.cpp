//===- fgbs/core/TieredCacheBackend.cpp - Local + remote tiers ------------===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "fgbs/core/TieredCacheBackend.h"

#include "fgbs/core/MeasurementCache.h"
#include "fgbs/obs/Metrics.h"

using namespace fgbs;

namespace {

/// Both tiers' writer elections as one lock.  Acquire order is local
/// (cheap, same-host, kernel-released on crash) then remote (fleet
/// lease); release order is the reverse, with the write-back queue
/// flushed before the remote lease goes so the next grantee sees the
/// published entry.
class TieredWriterLock final : public WriterLock {
public:
  TieredWriterLock(TieredCacheBackend &Tiered,
                   std::unique_ptr<WriterLock> LocalLock,
                   std::unique_ptr<WriterLock> RemoteLock)
      : Tiered(Tiered), LocalLock(std::move(LocalLock)),
        RemoteLock(std::move(RemoteLock)) {}

  ~TieredWriterLock() override { release(); }

  Result acquire(const FileLock::Options &O) override {
    Result LocalResult = LocalLock->acquire(O);
    if (!LocalResult)
      return LocalResult;
    Result RemoteResult = RemoteLock->acquire(O);
    if (!RemoteResult) {
      LocalLock->release();
      return RemoteResult;
    }
    Held = true;
    Result Out;
    Out.Acquired = true;
    Out.WaitedMs = LocalResult.WaitedMs + RemoteResult.WaitedMs;
    return Out;
  }

  void heartbeat() override {
    LocalLock->heartbeat();
    RemoteLock->heartbeat();
  }

  void release() override {
    if (!Held)
      return;
    Held = false;
    // Publish-before-unlock: the fleet's next grantee double-checks the
    // remote cache before simulating, so the entry must be there first.
    Tiered.flushWriteBacks();
    RemoteLock->release();
    LocalLock->release();
  }

private:
  TieredCacheBackend &Tiered;
  std::unique_ptr<WriterLock> LocalLock;
  std::unique_ptr<WriterLock> RemoteLock;
  bool Held = false;
};

} // namespace

bool TieredCacheBackend::replicated(const std::string &Name) {
  return Name != kMeasurementIndexName;
}

TieredCacheBackend::TieredCacheBackend(
    std::unique_ptr<CacheBackend> Local,
    std::unique_ptr<RemoteCacheBackend> Remote)
    : Local(std::move(Local)), Remote(std::move(Remote)),
      Writer([this] { writeBackLoop(); }) {}

TieredCacheBackend::~TieredCacheBackend() {
  {
    std::lock_guard<std::mutex> Guard(QueueMutex);
    Stopping = true;
  }
  QueueCv.notify_all();
  if (Writer.joinable())
    Writer.join();
}

void TieredCacheBackend::writeBackLoop() {
  while (true) {
    WriteBack Job;
    {
      std::unique_lock<std::mutex> Guard(QueueMutex);
      QueueCv.wait(Guard, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping with a drained queue.
      Job = std::move(Queue.front());
      Queue.pop_front();
      ++InFlight;
    }
    if (Remote->put(Job.Name, Job.Bytes))
      FGBS_COUNTER_ADD("db.cache.tier.writebacks", 1);
    else
      FGBS_COUNTER_ADD("db.cache.tier.writeback_failures", 1);
    {
      std::lock_guard<std::mutex> Guard(QueueMutex);
      --InFlight;
    }
    DrainCv.notify_all();
  }
}

void TieredCacheBackend::enqueueWriteBack(const std::string &Name,
                                          std::string Bytes) {
  {
    std::lock_guard<std::mutex> Guard(QueueMutex);
    if (Stopping)
      return;
    Queue.push_back({Name, std::move(Bytes)});
  }
  QueueCv.notify_one();
}

void TieredCacheBackend::flushWriteBacks() {
  std::unique_lock<std::mutex> Guard(QueueMutex);
  DrainCv.wait(Guard, [this] { return Queue.empty() && InFlight == 0; });
}

bool TieredCacheBackend::exists(const std::string &Name) const {
  if (Local->exists(Name))
    return true;
  return replicated(Name) && Remote->exists(Name);
}

bool TieredCacheBackend::get(const std::string &Name,
                             std::string &BytesOut) const {
  if (Local->get(Name, BytesOut)) {
    FGBS_COUNTER_ADD("db.cache.tier.local_hits", 1);
    return true;
  }
  if (!replicated(Name) || !Remote->get(Name, BytesOut))
    return false;
  FGBS_COUNTER_ADD("db.cache.tier.remote_hits", 1);
  // Populate the local tier so the next run on this host stays off the
  // network.  Best-effort: a full disk must not turn a hit into a miss.
  const_cast<CacheBackend &>(*Local).put(Name, BytesOut);
  return true;
}

bool TieredCacheBackend::put(const std::string &Name, std::string_view Bytes) {
  if (!Local->put(Name, Bytes))
    return false;
  if (replicated(Name))
    enqueueWriteBack(Name, std::string(Bytes));
  return true;
}

bool TieredCacheBackend::remove(const std::string &Name) {
  // A queued write-back of this very name must not republish it to the
  // remote tier after the remove; drain the queue first.
  if (replicated(Name))
    flushWriteBacks();
  bool RemovedLocal = Local->remove(Name);
  bool RemovedRemote = replicated(Name) && Remote->remove(Name);
  return RemovedLocal || RemovedRemote;
}

std::vector<CacheEntry>
TieredCacheBackend::scan(const std::string &Prefix,
                         const std::string &Suffix) const {
  return Local->scan(Prefix, Suffix);
}

std::string TieredCacheBackend::lockPath(const std::string &Name) const {
  return Local->lockPath(Name);
}

std::unique_ptr<WriterLock>
TieredCacheBackend::writerLock(const std::string &Name) {
  if (!replicated(Name))
    return Local->writerLock(Name);
  return std::make_unique<TieredWriterLock>(*this, Local->writerLock(Name),
                                            Remote->writerLock(Name));
}
