//===- fgbs/core/RemoteCacheBackend.h - Wire-protocol client ---*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the remote measurement-cache tier: a CacheBackend
/// that speaks fgbs.cachewire.v1 (net/Framing) to an fgbs_cached
/// daemon, so a fleet of training runs shares one measurement corpus.
///
/// Failure discipline — the remote tier is an optimization, never a
/// dependency: every network failure (unreachable server, timeout,
/// damaged frame, server-side error) degrades to the miss path.
/// exists()/get() return false, put()/remove() return false, scan()
/// returns empty — the caller simulates and moves on, exactly as if
/// the entry were absent.  Each failed operation bumps
/// db.cache.remote.errors (db.cache.remote.timeouts when the deadline
/// passed) and the first failure per backend logs one warning naming
/// the address; later ones stay quiet so a dead server does not flood
/// stderr of a long run.
///
/// Transient failures are retried MaxAttempts times with bounded
/// exponential backoff and a fresh connection per attempt; a server
/// that answers with an Error frame is not retried (it will answer the
/// same way again).
///
/// lockPath() is empty — the server provides atomicity (each shard is a
/// LocalDirBackend with atomic rename publish) — and writerLock()
/// returns a server lease instead, so the whole fleet elects exactly
/// one simulating writer per entry (the CI fleet-contention gate pays
/// for exactly one sim.execute across N machines).
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_CORE_REMOTECACHEBACKEND_H
#define FGBS_CORE_REMOTECACHEBACKEND_H

#include "fgbs/core/CacheBackend.h"
#include "fgbs/net/Framing.h"
#include "fgbs/net/Socket.h"

#include <cstdint>
#include <mutex>
#include <string>

namespace fgbs {

/// How a RemoteCacheBackend reaches its server.
struct RemoteCacheConfig {
  std::string Host;
  std::uint16_t Port = 0;
  /// Deadline for establishing a connection.
  std::uint64_t ConnectTimeoutMs = 2000;
  /// Deadline for one request/response round trip.
  std::uint64_t RequestTimeoutMs = 10000;
  /// Connection attempts per operation (>= 1).
  unsigned MaxAttempts = 3;
  /// First retry backoff; doubles per failure up to MaxBackoffMs.
  std::uint64_t InitialBackoffMs = 50;
  std::uint64_t MaxBackoffMs = 1000;
  /// Writer-lease time-to-live granted by LockAcquire; heartbeat()
  /// renews it.  Matches FileLock's sentinel staleness default.
  std::uint64_t LeaseTtlMs = 900000;
};

/// Parses "host:port" into a config (timeouts keep their defaults).
/// False when \p Spec is not of that shape.
bool parseRemoteCacheAddress(const std::string &Spec, RemoteCacheConfig &Out);

/// CacheBackend over one fgbs_cached server.  Thread-safe: operations
/// share one pooled connection under a mutex (cache traffic is a few
/// large blobs, not a request storm; benchmarks wanting parallelism
/// construct one backend per thread).
class RemoteCacheBackend final : public CacheBackend {
public:
  explicit RemoteCacheBackend(RemoteCacheConfig Config);

  const RemoteCacheConfig &config() const { return Config; }
  std::string address() const {
    return Config.Host + ":" + std::to_string(Config.Port);
  }

  /// One Ping round trip; true when the server answers.
  bool ping();

  bool exists(const std::string &Name) const override;
  bool get(const std::string &Name, std::string &BytesOut) const override;
  bool put(const std::string &Name, std::string_view Bytes) override;
  bool remove(const std::string &Name) override;
  std::vector<CacheEntry> scan(const std::string &Prefix,
                               const std::string &Suffix) const override;
  std::string lockPath(const std::string &Name) const override;
  std::unique_ptr<WriterLock> writerLock(const std::string &Name) override;

  /// Asks the server to prune every shard to the given budgets.  True
  /// on a round trip; fills totals across shards.
  bool pruneRemote(std::uint64_t MaxBytes, std::uint64_t MaxAgeSeconds,
                   std::uint64_t *EntriesOut = nullptr,
                   std::uint64_t *RemovedOut = nullptr);

  /// Lease primitives behind writerLock() (exposed for tests).
  bool lockAcquire(const std::string &Name, std::uint64_t Token,
                   bool &GrantedOut);
  bool lockRelease(const std::string &Name, std::uint64_t Token);

private:
  /// Sends \p Op and decodes the response frame.  Handles connect,
  /// retry/backoff, counters, and the one-shot warning.  False when
  /// every attempt failed; \p Response holds Ok/NotFound/Error
  /// otherwise.
  bool request(net::Opcode Op, std::string_view Payload,
               net::Frame &Response) const;

  RemoteCacheConfig Config;
  mutable std::mutex Mutex;
  mutable net::Socket Conn;
  mutable bool WarnedUnreachable = false;
};

} // namespace fgbs

#endif // FGBS_CORE_REMOTECACHEBACKEND_H
