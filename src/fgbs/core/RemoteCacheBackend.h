//===- fgbs/core/RemoteCacheBackend.h - Wire-protocol client ---*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the remote measurement-cache tier: a CacheBackend
/// that speaks fgbs.cachewire.v1 (net/Framing) to an fgbs_cached
/// daemon, so a fleet of training runs shares one measurement corpus.
///
/// Failure discipline — the remote tier is an optimization, never a
/// dependency: every network failure (unreachable server, timeout,
/// damaged frame, server-side error) degrades to the miss path.
/// exists()/get() return false, put()/remove() return false, scan()
/// returns empty — the caller simulates and moves on, exactly as if
/// the entry were absent.  Each failed operation bumps
/// db.cache.remote.errors (db.cache.remote.timeouts when the deadline
/// passed) and the first failure per backend logs one warning naming
/// the address; later ones stay quiet so a dead server does not flood
/// stderr of a long run.
///
/// Transient failures are retried MaxAttempts times with bounded
/// exponential backoff and a fresh connection per attempt; a server
/// that answers with an Error frame is not retried (it will answer the
/// same way again).
///
/// lockPath() is empty — the server provides atomicity (each shard is a
/// LocalDirBackend with atomic rename publish) — and writerLock()
/// returns a server lease instead, so the whole fleet elects exactly
/// one simulating writer per entry (the CI fleet-contention gate pays
/// for exactly one sim.execute across N machines).
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_CORE_REMOTECACHEBACKEND_H
#define FGBS_CORE_REMOTECACHEBACKEND_H

#include "fgbs/core/CacheBackend.h"
#include "fgbs/net/Framing.h"
#include "fgbs/net/Socket.h"
#include "fgbs/net/WorkQueue.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace fgbs {

/// Deterministic "equal jitter" retry schedule: attempt \p Attempt's
/// delay is drawn from [ceil(base/2), base] with
/// base = min(InitialMs << Attempt, MaxMs), the draw keyed on
/// (\p Seed, \p Attempt).  The jitter half-window keeps N workers that
/// lost the same server from reconnecting in lockstep (their seeds
/// differ), while the deterministic draw keeps any one client's
/// schedule reproducible in tests.  Never returns 0.
std::uint64_t retryBackoffMs(unsigned Attempt, std::uint64_t InitialMs,
                             std::uint64_t MaxMs, std::uint64_t Seed);

/// A fleet-unique claim/lease owner token (pid in the high bits,
/// randomness below; never zero — zero is the wire "no owner").
std::uint64_t makeOwnerToken();

/// One shard's footprint in a Stats response.
struct RemoteShardStats {
  std::uint64_t Entries = 0;
  std::uint64_t Bytes = 0;
};

/// Decoded Stats opcode response: storage footprint, request counters,
/// and the simulation-farm queue counters.
struct RemoteCacheStats {
  std::vector<RemoteShardStats> Shards;
  std::uint64_t Hits = 0;
  std::uint64_t Misses = 0;
  std::uint64_t LeasesGranted = 0;
  std::uint64_t LeasesDenied = 0;
  std::uint64_t QueuePending = 0;
  std::uint64_t QueueClaimed = 0;
  std::uint64_t FarmEnqueued = 0;
  std::uint64_t FarmClaimed = 0;
  std::uint64_t FarmCompleted = 0;
  std::uint64_t FarmRequeued = 0;
  std::uint64_t FarmHeartbeats = 0;
  std::uint64_t FarmDropped = 0;
  /// Namespace extension (servers that speak the model/ namespace
  /// append it; HasModelStats distinguishes "old server" from "all
  /// zeros").
  bool HasModelStats = false;
  std::vector<RemoteShardStats> ModelShards;
  std::uint64_t ModelGets = 0;
  std::uint64_t ModelPuts = 0;
  std::uint64_t ModelRefPuts = 0;
  std::uint64_t ScanPrefixes = 0;
};

/// Renders \p S as the stable `fgbs.cachestats.v1` JSON document that
/// `fgbs_cached --stats --json` emits (sorted keys, schema field first)
/// so dashboards scrape a schema, not human text.
std::string renderStatsJson(const RemoteCacheStats &S);

/// How a RemoteCacheBackend reaches its server.
struct RemoteCacheConfig {
  std::string Host;
  std::uint16_t Port = 0;
  /// Deadline for establishing a connection.
  std::uint64_t ConnectTimeoutMs = 2000;
  /// Deadline for one request/response round trip.
  std::uint64_t RequestTimeoutMs = 10000;
  /// Connection attempts per operation (>= 1).
  unsigned MaxAttempts = 3;
  /// First retry backoff; doubles per failure up to MaxBackoffMs.
  std::uint64_t InitialBackoffMs = 50;
  std::uint64_t MaxBackoffMs = 1000;
  /// Writer-lease time-to-live granted by LockAcquire; heartbeat()
  /// renews it.  Matches FileLock's sentinel staleness default.
  std::uint64_t LeaseTtlMs = 900000;
};

/// Parses "host:port" into a config (timeouts keep their defaults).
/// False when \p Spec is not of that shape.
bool parseRemoteCacheAddress(const std::string &Spec, RemoteCacheConfig &Out);

/// CacheBackend over one fgbs_cached server.  Thread-safe: operations
/// share one pooled connection under a mutex (cache traffic is a few
/// large blobs, not a request storm; benchmarks wanting parallelism
/// construct one backend per thread).
class RemoteCacheBackend final : public CacheBackend {
public:
  explicit RemoteCacheBackend(RemoteCacheConfig Config);

  const RemoteCacheConfig &config() const { return Config; }
  std::string address() const {
    return Config.Host + ":" + std::to_string(Config.Port);
  }

  /// One Ping round trip; true when the server answers.
  bool ping() const;

  bool exists(const std::string &Name) const override;
  bool get(const std::string &Name, std::string &BytesOut) const override;
  bool put(const std::string &Name, std::string_view Bytes) override;
  bool remove(const std::string &Name) override;
  std::vector<CacheEntry> scan(const std::string &Prefix,
                               const std::string &Suffix) const override;
  /// ScanPrefix round trip with typed degradation: Unsupported when the
  /// server answers "unsupported opcode" (it predates ScanPrefix — an
  /// empty listing from it means nothing), Failed when the network ate
  /// the answer.  Never silently empty.
  ScanPrefixResult scanPrefix(const std::string &Prefix) const override;
  /// One Ping: the registry's "is an empty/missing answer
  /// authoritative, or is the server down" probe.
  bool healthy() const override { return ping(); }
  std::string lockPath(const std::string &Name) const override;
  std::unique_ptr<WriterLock> writerLock(const std::string &Name) override;

  /// Asks the server to prune every shard to the given budgets.  True
  /// on a round trip; fills totals across shards.
  bool pruneRemote(std::uint64_t MaxBytes, std::uint64_t MaxAgeSeconds,
                   std::uint64_t *EntriesOut = nullptr,
                   std::uint64_t *RemovedOut = nullptr);

  /// Prune with a second, model/-scoped budget pair (sent as the Prune
  /// opcode's extension payload; old servers reject it as damaged, so
  /// only call this against namespace-aware servers or on explicit
  /// operator request).
  bool pruneRemote(std::uint64_t MaxBytes, std::uint64_t MaxAgeSeconds,
                   std::uint64_t ModelMaxBytes,
                   std::uint64_t ModelMaxAgeSeconds,
                   std::uint64_t *EntriesOut, std::uint64_t *RemovedOut);

  /// Lease primitives behind writerLock() (exposed for tests).
  bool lockAcquire(const std::string &Name, std::uint64_t Token,
                   bool &GrantedOut);
  bool lockRelease(const std::string &Name, std::uint64_t Token);

  /// Simulation-farm client calls (EnqueueWork/ClaimWork/Heartbeat/
  /// CompleteWork/AbandonWork/Stats).  Each returns false on any
  /// network failure — callers treat that like an empty queue and
  /// retry on their own schedule.
  bool enqueueWork(const std::string &Name, std::string_view Spec,
                   net::EnqueueStatus *StatusOut = nullptr);
  bool claimWork(std::uint64_t Token, std::uint64_t TtlMs,
                 std::uint32_t MaxItems, std::vector<net::ClaimedWork> &Out);
  bool heartbeatWork(std::uint64_t Token, std::uint64_t TtlMs,
                     const std::vector<std::string> &Names,
                     std::uint32_t *RenewedOut = nullptr);
  bool completeWork(const std::string &Name, std::uint64_t Token);
  bool abandonWork(const std::string &Name, std::uint64_t Token);
  bool statsRemote(RemoteCacheStats &Out);

private:
  /// Sends \p Op and decodes the response frame.  Handles connect,
  /// retry/backoff, counters, and the one-shot warning.  False when
  /// every attempt failed; \p Response holds Ok/NotFound/Error
  /// otherwise.
  bool request(net::Opcode Op, std::string_view Payload,
               net::Frame &Response) const;

  RemoteCacheConfig Config;
  /// Per-backend jitter seed so a fleet's retry schedules decorrelate.
  std::uint64_t BackoffSeed;
  mutable std::mutex Mutex;
  mutable net::Socket Conn;
  mutable bool WarnedUnreachable = false;
};

} // namespace fgbs

#endif // FGBS_CORE_REMOTECACHEBACKEND_H
