//===- fgbs/core/MeasurementCache.cpp - fgbs.meas.v1 cache ----------------===//
//
// Payload field order (after the 28-byte header; all integers
// little-endian, doubles as little-endian IEEE-754 bit patterns):
//
//   u64   content key (must equal the key derived from the live inputs)
//   str   suite name
//   str   reference machine name
//   u32 T, T x str      target machine names
//   u32 P               dispatch-port count (this build: NumPorts)
//   u32 N               codelet count
//   N x { str name, u8 discarded, meas InApp, u32 F, F x f64 features }
//   N x sa              standalone measurements on the reference
//   T x N x meas        ground-truth in-app measurements per target
//   T x N x sa          standalone measurements per target
//
// where str = u32 byte length + bytes,
//       meas = f64 TrueSeconds, f64 MeasuredSeconds, f64 MemCyclesPerIter,
//              11 x f64 performance counters (Cycles, Uops, FpOpsSP,
//              FpOpsDP, L1Accesses, L2LinesIn, L3LinesIn, MemLinesIn,
//              LoadBytes, StoreBytes, Seconds),
//              P x f64 port cycles + 6 x f64 compute-bound fields
//              (MaxPortCycles, IssueCycles, DepCycles, DividerCycles,
//              Uops, ComputeCycles),
//       sa   = f64 MedianSeconds, f64 TrueSeconds, u64 Invocations,
//              f64 TotalBenchmarkSeconds.
//
// A v1.(M>0) writer appends new fields after these; this v1.0 reader
// skips such trailing payload bytes, but rejects them on files claiming
// minor version 0 (the fgbs.model.v1 compatibility policy).
//
//===----------------------------------------------------------------------===//

#include "fgbs/core/MeasurementCache.h"

#include "fgbs/compiler/CompileCache.h"
#include "fgbs/core/FarmSpec.h"
#include "fgbs/core/RemoteCacheBackend.h"
#include "fgbs/core/TieredCacheBackend.h"
#include "fgbs/obs/Metrics.h"
#include "fgbs/support/BinaryIo.h"
#include "fgbs/support/Crc32.h"
#include "fgbs/support/Rng.h"
#include "fgbs/support/ThreadPool.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <thread>

using namespace fgbs;
using namespace fgbs::binio;
using namespace fgbs::measwire;

//===----------------------------------------------------------------------===//
// Content key derivation
//===----------------------------------------------------------------------===//

namespace {

std::uint64_t hashF64(std::uint64_t Key, double V) {
  return hashCombine(Key, std::bit_cast<std::uint64_t>(V));
}

std::uint64_t hashStr(std::uint64_t Key, const std::string &S) {
  return hashCombine(Key, hashString(S.c_str()));
}

std::uint64_t hashAccess(std::uint64_t Key, const Access &A) {
  Key = hashCombine(Key, A.ArrayIndex);
  Key = hashCombine(Key, static_cast<std::uint64_t>(A.Stride));
  Key = hashCombine(Key, static_cast<std::uint64_t>(A.StrideElems));
  return hashCombine(Key, A.PointsPerIter);
}

std::uint64_t hashExpr(std::uint64_t Key, const Expr &E) {
  Key = hashCombine(Key, static_cast<std::uint64_t>(E.Kind));
  Key = hashCombine(Key, static_cast<std::uint64_t>(E.Prec));
  switch (E.Kind) {
  case ExprKind::Load:
    return hashAccess(Key, E.Ref);
  case ExprKind::Constant:
    return Key;
  case ExprKind::Binary:
    Key = hashCombine(Key, static_cast<std::uint64_t>(E.Bin));
    Key = hashExpr(Key, *E.Lhs);
    return hashExpr(Key, *E.Rhs);
  case ExprKind::Unary:
    Key = hashCombine(Key, static_cast<std::uint64_t>(E.Un));
    return hashExpr(Key, *E.Lhs);
  }
  return Key;
}

std::uint64_t hashCodelet(std::uint64_t Key, const Codelet &C) {
  Key = hashStr(Key, C.Name);
  Key = hashStr(Key, C.App);
  Key = hashCombine(Key, C.Arrays.size());
  for (const ArrayDecl &A : C.Arrays) {
    Key = hashStr(Key, A.Name);
    Key = hashCombine(Key, static_cast<std::uint64_t>(A.Elem));
    Key = hashCombine(Key, A.NumElements);
  }
  Key = hashCombine(Key, C.Nest.InnerTripCount);
  Key = hashCombine(Key, C.Nest.OuterIterations);
  Key = hashCombine(Key, C.Body.size());
  for (const Stmt &S : C.Body) {
    Key = hashCombine(Key, static_cast<std::uint64_t>(S.Kind));
    Key = hashAccess(Key, S.Target);
    Key = hashCombine(Key, static_cast<std::uint64_t>(S.ReduceOp));
    if (S.Rhs)
      Key = hashExpr(Key, *S.Rhs);
  }
  Key = hashCombine(Key, C.Invocations.size());
  for (const InvocationGroup &G : C.Invocations) {
    Key = hashCombine(Key, G.Count);
    Key = hashF64(Key, G.DatasetScale);
  }
  std::uint64_t TraitBits =
      (static_cast<std::uint64_t>(C.Traits.CompilationContextSensitive) << 1) |
      static_cast<std::uint64_t>(C.Traits.CacheStateSensitive);
  return hashCombine(Key, TraitBits);
}

std::uint64_t hashMachine(std::uint64_t Key, const Machine &M) {
  Key = hashStr(Key, M.Name);
  Key = hashStr(Key, M.Cpu);
  Key = hashF64(Key, M.FrequencyGHz);
  Key = hashCombine(Key, M.Cores);
  Key = hashCombine(Key, M.RamGB);
  Key = hashCombine(Key, (static_cast<std::uint64_t>(M.OutOfOrder) << 32) |
                             (static_cast<std::uint64_t>(M.IssueWidth) << 16) |
                             M.VectorBits);
  Key = hashCombine(Key, M.NumFpRegisters);
  const CoreTimings &T = M.Timings;
  for (double V : {T.FpAddLatency, T.FpMulLatency, T.FpDivLatencySP,
                   T.FpDivLatencyDP, T.FpSqrtLatency, T.FpExpCost,
                   T.IntAddLatency, T.IntMulLatency,
                   T.VectorFpThroughputFactor, T.VectorDpThroughputFactor})
    Key = hashF64(Key, V);
  Key = hashCombine(Key, M.CacheLevels.size());
  for (const CacheLevelConfig &L : M.CacheLevels) {
    Key = hashStr(Key, L.Name);
    Key = hashCombine(Key, L.SizeBytes);
    Key = hashCombine(Key, (static_cast<std::uint64_t>(L.Associativity) << 32) |
                               L.LineBytes);
    Key = hashF64(Key, L.LatencyCycles);
    Key = hashF64(Key, L.BandwidthBytesPerCycle);
  }
  Key = hashF64(Key, M.MemLatencyCycles);
  Key = hashF64(Key, M.MemBandwidthGBs);
  return Key;
}

} // namespace

std::uint64_t fgbs::measurementKey(const Suite &S, const Machine &Reference,
                                   const std::vector<Machine> &Targets,
                                   const TimingPolicy &Policy) {
  // Seed with the format name so key spaces of future schemes differ.
  std::uint64_t Key = hashString("fgbs.meas.v1");
  Key = hashStr(Key, S.Name);
  std::vector<const Codelet *> Codelets = S.allCodelets();
  Key = hashCombine(Key, Codelets.size());
  for (const Codelet *C : Codelets)
    Key = hashCodelet(Key, *C);
  Key = hashMachine(Key, Reference);
  Key = hashCombine(Key, Targets.size());
  for (const Machine &M : Targets)
    Key = hashMachine(Key, M);
  Key = hashF64(Key, Policy.MinRunSeconds);
  Key = hashCombine(Key, Policy.MinInvocations);
  return Key;
}

std::string fgbs::measurementCacheFileName(std::uint64_t Key) {
  char Hex[17];
  std::snprintf(Hex, sizeof(Hex), "%016llx",
                static_cast<unsigned long long>(Key));
  return std::string("fgbs-meas-") + Hex + ".v1";
}

const char *fgbs::measurementCacheErrorName(MeasurementCacheError E) {
  switch (E) {
  case MeasurementCacheError::None:
    return "none";
  case MeasurementCacheError::Io:
    return "io";
  case MeasurementCacheError::Truncated:
    return "truncated";
  case MeasurementCacheError::BadMagic:
    return "bad_magic";
  case MeasurementCacheError::UnsupportedVersion:
    return "unsupported_version";
  case MeasurementCacheError::ChecksumMismatch:
    return "checksum_mismatch";
  case MeasurementCacheError::KeyMismatch:
    return "key_mismatch";
  case MeasurementCacheError::Malformed:
    return "malformed";
  case MeasurementCacheError::InvalidValue:
    return "invalid_value";
  case MeasurementCacheError::LockTimeout:
    return "lock_timeout";
  }
  return "unknown";
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

void fgbs::measwire::putMeasurement(std::string &Out, const Measurement &M) {
  putF64(Out, M.TrueSeconds);
  putF64(Out, M.MeasuredSeconds);
  putF64(Out, M.MemCyclesPerIter);
  const PerfCounters &C = M.Counters;
  for (double V : {C.Cycles, C.Uops, C.FpOpsSP, C.FpOpsDP, C.L1Accesses,
                   C.L2LinesIn, C.L3LinesIn, C.MemLinesIn, C.LoadBytes,
                   C.StoreBytes, C.Seconds})
    putF64(Out, V);
  for (double V : M.Compute.PortCycles)
    putF64(Out, V);
  for (double V : {M.Compute.MaxPortCycles, M.Compute.IssueCycles,
                   M.Compute.DepCycles, M.Compute.DividerCycles,
                   M.Compute.Uops, M.Compute.ComputeCycles})
    putF64(Out, V);
}

void fgbs::measwire::putStandalone(std::string &Out,
                                   const StandaloneMeasurement &S) {
  putF64(Out, S.MedianSeconds);
  putF64(Out, S.TrueSeconds);
  putU64(Out, S.Invocations);
  putF64(Out, S.TotalBenchmarkSeconds);
}

bool fgbs::measwire::readMeasurement(ByteReader &In, Measurement &M) {
  M.TrueSeconds = In.f64();
  M.MeasuredSeconds = In.f64();
  M.MemCyclesPerIter = In.f64();
  PerfCounters &C = M.Counters;
  for (double *V : {&C.Cycles, &C.Uops, &C.FpOpsSP, &C.FpOpsDP, &C.L1Accesses,
                    &C.L2LinesIn, &C.L3LinesIn, &C.MemLinesIn, &C.LoadBytes,
                    &C.StoreBytes, &C.Seconds})
    *V = In.f64();
  for (double &V : M.Compute.PortCycles)
    V = In.f64();
  for (double *V :
       {&M.Compute.MaxPortCycles, &M.Compute.IssueCycles, &M.Compute.DepCycles,
        &M.Compute.DividerCycles, &M.Compute.Uops, &M.Compute.ComputeCycles})
    *V = In.f64();
  if (In.overrun())
    return true; // Truncation is reported by the caller, not here.
  for (double V : {M.TrueSeconds, M.MeasuredSeconds, M.MemCyclesPerIter,
                   C.Cycles, C.Uops, C.FpOpsSP, C.FpOpsDP, C.L1Accesses,
                   C.L2LinesIn, C.L3LinesIn, C.MemLinesIn, C.LoadBytes,
                   C.StoreBytes, C.Seconds, M.Compute.ComputeCycles})
    if (!std::isfinite(V))
      return false;
  return M.TrueSeconds > 0.0 && M.MeasuredSeconds > 0.0;
}

bool fgbs::measwire::readStandalone(ByteReader &In,
                                    StandaloneMeasurement &S) {
  S.MedianSeconds = In.f64();
  S.TrueSeconds = In.f64();
  S.Invocations = In.u64();
  S.TotalBenchmarkSeconds = In.f64();
  if (In.overrun())
    return true;
  if (!std::isfinite(S.MedianSeconds) || !std::isfinite(S.TrueSeconds) ||
      !std::isfinite(S.TotalBenchmarkSeconds))
    return false;
  return S.MedianSeconds > 0.0 && S.TrueSeconds > 0.0 && S.Invocations >= 1;
}

namespace {

MeasurementLoadResult failed(MeasurementCacheError E, std::string Message) {
  MeasurementLoadResult R;
  R.Error = E;
  R.Message = std::move(Message);
  return R;
}

} // namespace

std::string fgbs::serializeMeasurements(const MeasurementDatabase &Db,
                                        std::uint64_t Key) {
  std::string Payload;
  putU64(Payload, Key);
  putStr(Payload, Db.suite().Name);
  putStr(Payload, Db.reference().Name);

  putU32(Payload, static_cast<std::uint32_t>(Db.targets().size()));
  for (const Machine &M : Db.targets())
    putStr(Payload, M.Name);

  putU32(Payload, NumPorts);
  const std::size_t N = Db.numCodelets();
  putU32(Payload, static_cast<std::uint32_t>(N));
  for (std::size_t I = 0; I < N; ++I) {
    const CodeletProfile &P = Db.profile(I);
    putStr(Payload, P.C->Name);
    Payload.push_back(P.Discarded ? 1 : 0);
    putMeasurement(Payload, P.InApp);
    putU32(Payload, static_cast<std::uint32_t>(P.Features.size()));
    for (double V : P.Features)
      putF64(Payload, V);
  }
  for (std::size_t I = 0; I < N; ++I)
    putStandalone(Payload, Db.standaloneRef(I));
  for (std::size_t T = 0; T < Db.targets().size(); ++T)
    for (std::size_t I = 0; I < N; ++I)
      putMeasurement(Payload, Db.realTargetMeasurement(I, T));
  for (std::size_t T = 0; T < Db.targets().size(); ++T)
    for (std::size_t I = 0; I < N; ++I)
      putStandalone(Payload, Db.standaloneTarget(I, T));

  std::string Out;
  Out.reserve(kMeasurementHeaderBytes + Payload.size());
  Out.append(kMeasurementMagic, sizeof(kMeasurementMagic));
  putU32(Out, kMeasurementVersionMajor);
  putU32(Out, kMeasurementVersionMinor);
  putU64(Out, Payload.size());
  putU32(Out, crc32(Payload));
  Out.append(Payload);
  return Out;
}

MeasurementLoadResult fgbs::parseMeasurements(std::string_view Bytes,
                                              const Suite &S, Machine Reference,
                                              std::vector<Machine> Targets,
                                              std::uint64_t ExpectedKey) {
  if (Bytes.size() >= sizeof(kMeasurementMagic) &&
      std::memcmp(Bytes.data(), kMeasurementMagic,
                  sizeof(kMeasurementMagic)) != 0)
    return failed(MeasurementCacheError::BadMagic,
                  "not an fgbs.meas measurement cache");
  if (Bytes.size() < kMeasurementHeaderBytes)
    return failed(MeasurementCacheError::Truncated,
                  "file shorter than the measurement-cache header");

  ByteReader Header(
      Bytes.substr(sizeof(kMeasurementMagic),
                   kMeasurementHeaderBytes - sizeof(kMeasurementMagic)));
  std::uint32_t Major = Header.u32();
  std::uint32_t Minor = Header.u32();
  std::uint64_t PayloadSize = Header.u64();
  std::uint32_t Crc = Header.u32();

  if (Major != kMeasurementVersionMajor)
    return failed(MeasurementCacheError::UnsupportedVersion,
                  "measurement-cache major version " + std::to_string(Major) +
                      " (this reader speaks " +
                      std::to_string(kMeasurementVersionMajor) + ")");

  std::string_view Payload = Bytes.substr(kMeasurementHeaderBytes);
  if (Payload.size() < PayloadSize)
    return failed(MeasurementCacheError::Truncated,
                  "payload shorter than the header announces");
  if (Payload.size() > PayloadSize)
    return failed(MeasurementCacheError::Malformed,
                  "trailing bytes after the announced payload");
  if (crc32(Payload) != Crc)
    return failed(MeasurementCacheError::ChecksumMismatch,
                  "payload bytes do not match the stored CRC-32");

  ByteReader In(Payload);
  std::uint64_t StoredKey = In.u64();
  if (In.overrun())
    return failed(MeasurementCacheError::Truncated, "payload ends in the key");
  if (StoredKey != ExpectedKey)
    return failed(MeasurementCacheError::KeyMismatch,
                  "stored content key does not match the live suite, "
                  "machines, and timing policy");

  std::string SuiteName = In.str();
  std::string ReferenceName = In.str();
  if (In.overrun())
    return failed(MeasurementCacheError::Malformed, "damaged identity block");
  if (SuiteName != S.Name || ReferenceName != Reference.Name)
    return failed(MeasurementCacheError::KeyMismatch,
                  "stored suite/reference names do not match the live "
                  "objects");

  std::uint32_t T = In.u32();
  if (In.overrun() || T != Targets.size())
    return failed(MeasurementCacheError::KeyMismatch,
                  "stored target count does not match");
  for (std::uint32_t I = 0; I < T; ++I)
    if (In.str() != Targets[I].Name)
      return failed(MeasurementCacheError::KeyMismatch,
                    "stored target names do not match");

  std::uint32_t Ports = In.u32();
  if (In.overrun() || Ports != NumPorts)
    return failed(MeasurementCacheError::Malformed,
                  "dispatch-port count does not match this build");

  std::vector<const Codelet *> Codelets = S.allCodelets();
  std::uint32_t N = In.u32();
  if (In.overrun() || N != Codelets.size())
    return failed(MeasurementCacheError::KeyMismatch,
                  "stored codelet count does not match the suite");

  std::vector<CodeletProfile> Profiles(N);
  for (std::uint32_t I = 0; I < N; ++I) {
    CodeletProfile &P = Profiles[I];
    std::string Name = In.str();
    if (In.overrun())
      return failed(MeasurementCacheError::Malformed,
                    "payload ends inside the profile block");
    if (Name != Codelets[I]->Name)
      return failed(MeasurementCacheError::KeyMismatch,
                    "stored codelet order does not match the suite");
    P.C = Codelets[I];
    std::uint8_t Discarded = In.u8();
    if (Discarded > 1)
      return failed(MeasurementCacheError::Malformed,
                    "discarded flag is neither 0 nor 1");
    P.Discarded = Discarded != 0;
    if (!readMeasurement(In, P.InApp))
      return failed(MeasurementCacheError::InvalidValue,
                    "invalid in-application profile measurement");
    std::uint32_t F = In.u32();
    if (In.overrun() || F > In.remaining() / 8)
      return failed(MeasurementCacheError::Malformed,
                    "damaged feature vector");
    P.Features = In.f64Vector(F);
    for (double V : P.Features)
      if (!std::isfinite(V))
        return failed(MeasurementCacheError::InvalidValue,
                      "non-finite feature value");
  }

  std::vector<StandaloneMeasurement> StandaloneRef(N);
  for (std::uint32_t I = 0; I < N; ++I)
    if (!readStandalone(In, StandaloneRef[I]))
      return failed(MeasurementCacheError::InvalidValue,
                    "invalid reference standalone measurement");

  std::vector<std::vector<Measurement>> Real(T, std::vector<Measurement>(N));
  for (std::uint32_t Tgt = 0; Tgt < T; ++Tgt)
    for (std::uint32_t I = 0; I < N; ++I)
      if (!readMeasurement(In, Real[Tgt][I]))
        return failed(MeasurementCacheError::InvalidValue,
                      "invalid target ground-truth measurement");

  std::vector<std::vector<StandaloneMeasurement>> StandaloneTgt(
      T, std::vector<StandaloneMeasurement>(N));
  for (std::uint32_t Tgt = 0; Tgt < T; ++Tgt)
    for (std::uint32_t I = 0; I < N; ++I)
      if (!readStandalone(In, StandaloneTgt[Tgt][I]))
        return failed(MeasurementCacheError::InvalidValue,
                      "invalid target standalone measurement");

  if (In.overrun())
    return failed(MeasurementCacheError::Truncated,
                  "payload ends inside a measurement field");

  // Minor-version forward compatibility: a newer writer appends fields
  // we skip; a file of our own minor version must end exactly here.
  if (Minor <= kMeasurementVersionMinor && !In.atEnd())
    return failed(MeasurementCacheError::Malformed,
                  "trailing garbage after the last measurement field");

  MeasurementLoadResult R;
  R.Db = std::make_unique<MeasurementDatabase>(
      S, std::move(Reference), std::move(Targets), std::move(Profiles),
      std::move(Real), std::move(StandaloneRef), std::move(StandaloneTgt));
  return R;
}

bool fgbs::saveMeasurementsFile(const std::string &Path,
                                const MeasurementDatabase &Db,
                                std::uint64_t Key) {
  return atomicWriteFile(Path, serializeMeasurements(Db, Key));
}

MeasurementLoadResult fgbs::loadMeasurementsFile(const std::string &Path,
                                                 const Suite &S,
                                                 Machine Reference,
                                                 std::vector<Machine> Targets,
                                                 std::uint64_t ExpectedKey) {
  std::ifstream IS(Path, std::ios::binary);
  if (!IS)
    return failed(MeasurementCacheError::Io, "cannot open '" + Path + "'");
  std::ostringstream Buffer;
  Buffer << IS.rdbuf();
  if (IS.bad())
    return failed(MeasurementCacheError::Io, "read failure on '" + Path + "'");
  return parseMeasurements(Buffer.str(), S, std::move(Reference),
                           std::move(Targets), ExpectedKey);
}

//===----------------------------------------------------------------------===//
// The manifest (fgbs.meas.index.v1) and lifecycle logic
//===----------------------------------------------------------------------===//

namespace {

std::int64_t nowUnixSeconds() {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::uint64_t envU64(const char *Name) {
  const char *Raw = std::getenv(Name);
  if (!Raw || !*Raw)
    return 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(Raw, &End, 10);
  return (End && *End == '\0') ? static_cast<std::uint64_t>(V) : 0;
}

/// Parses the manifest text; false means corrupt (callers rescan).
bool parseManifest(std::string_view Text, std::vector<CacheEntry> &Out) {
  std::istringstream In{std::string(Text)};
  std::string Line;
  if (!std::getline(In, Line) || Line != kMeasurementIndexName)
    return false;
  std::vector<CacheEntry> Entries;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    std::istringstream Fields(Line);
    CacheEntry E;
    if (!(Fields >> E.AccessUnixSeconds >> E.SizeBytes >> E.Name) ||
        E.Name.empty())
      return false;
    std::string Extra;
    if (Fields >> Extra)
      return false;
    Entries.push_back(std::move(E));
  }
  Out = std::move(Entries);
  return true;
}

std::string renderManifest(const std::vector<CacheEntry> &Entries) {
  std::string Out = kMeasurementIndexName;
  Out.push_back('\n');
  for (const CacheEntry &E : Entries) {
    Out += std::to_string(E.AccessUnixSeconds);
    Out.push_back(' ');
    Out += std::to_string(E.SizeBytes);
    Out.push_back(' ');
    Out += E.Name;
    Out.push_back('\n');
  }
  return Out;
}

/// Most recently used first; name-ordered among ties for determinism.
void sortLru(std::vector<CacheEntry> &Entries) {
  std::sort(Entries.begin(), Entries.end(),
            [](const CacheEntry &A, const CacheEntry &B) {
              if (A.AccessUnixSeconds != B.AccessUnixSeconds)
                return A.AccessUnixSeconds > B.AccessUnixSeconds;
              return A.Name < B.Name;
            });
}

/// Every lock acquisition in the cache layer funnels through here so
/// the db.cache.lock.* counters cover entry and manifest locks alike.
FileLock::AcquireResult acquireCounted(FileLock &Lock,
                                       const FileLock::Options &O) {
  FileLock::AcquireResult R = Lock.acquire(O);
  if (R.WaitedMs > 0)
    FGBS_COUNTER_ADD("db.cache.lock.waited_ms", R.WaitedMs);
  if (R)
    FGBS_COUNTER_ADD("db.cache.lock.acquired", 1);
  else if (R.St == FileLock::Status::Timeout)
    FGBS_COUNTER_ADD("db.cache.lock.timeouts", 1);
  return R;
}

/// The same counters for the backend-provided writer election (file
/// lock, remote lease, or the tiered pair).
WriterLock::Result acquireCounted(WriterLock &Lock,
                                  const FileLock::Options &O) {
  WriterLock::Result R = Lock.acquire(O);
  if (R.WaitedMs > 0)
    FGBS_COUNTER_ADD("db.cache.lock.waited_ms", R.WaitedMs);
  if (R)
    FGBS_COUNTER_ADD("db.cache.lock.acquired", 1);
  else if (R.TimedOut)
    FGBS_COUNTER_ADD("db.cache.lock.timeouts", 1);
  return R;
}

/// Manifest updates are quick bookkeeping: give them a short slice of
/// the writer budget so a wedged manifest lock cannot stall a build.
FileLock::Options manifestOptions(const FileLock::Options &Base) {
  FileLock::Options O = Base;
  O.TimeoutMs = std::min<std::uint64_t>(Base.TimeoutMs, 5000);
  return O;
}

constexpr char kEntryPrefix[] = "fgbs-meas-";
constexpr char kEntrySuffix[] = ".v1";

} // namespace

std::uint64_t fgbs::measurementCacheEnvMaxBytes() {
  return envU64("FGBS_MEAS_CACHE_MAX_BYTES");
}

MeasurementCache::MeasurementCache(const std::string &Dir)
    : BackendPtr(std::make_unique<LocalDirBackend>(Dir)) {}

MeasurementCache::MeasurementCache(std::unique_ptr<CacheBackend> Backend)
    : BackendPtr(std::move(Backend)) {}

std::string MeasurementCache::entryLockPath(std::uint64_t Key) const {
  return BackendPtr->lockPath(measurementCacheFileName(Key));
}

bool MeasurementCache::exists(std::uint64_t Key) const {
  return BackendPtr->exists(measurementCacheFileName(Key));
}

void MeasurementCache::touchEntry(const std::string &Name,
                                  std::uint64_t SizeBytes) {
  // Backends without a manifest lock location manage their own
  // lifecycle where the blobs live (the fgbs_cached server prunes its
  // shards); no client-side manifest exists to update.
  if (BackendPtr->lockPath(kMeasurementIndexName).empty())
    return;
  const std::int64_t Now = nowUnixSeconds();
  // Relatime fast path: manifest writes are skipped while the entry's
  // recorded access time is fresh.  The read is lock-free — manifests
  // are published atomically, so any version we see is consistent.
  {
    std::string Raw;
    std::vector<CacheEntry> Entries;
    if (BackendPtr->get(kMeasurementIndexName, Raw) &&
        parseManifest(Raw, Entries))
      for (const CacheEntry &E : Entries)
        if (E.Name == Name && E.SizeBytes == SizeBytes &&
            Now - E.AccessUnixSeconds < kManifestRelatimeSeconds)
          return;
  }

  FileLock Lock(BackendPtr->lockPath(kMeasurementIndexName));
  if (!acquireCounted(Lock, manifestOptions(LockOptions)))
    return; // Advisory bookkeeping; a rescan recovers a lost update.

  std::string Raw;
  std::vector<CacheEntry> Entries;
  if (!(BackendPtr->get(kMeasurementIndexName, Raw) &&
        parseManifest(Raw, Entries)))
    Entries = BackendPtr->scan(kEntryPrefix, kEntrySuffix);
  bool Found = false;
  for (CacheEntry &E : Entries)
    if (E.Name == Name) {
      E.AccessUnixSeconds = Now;
      E.SizeBytes = SizeBytes;
      Found = true;
    }
  if (!Found)
    Entries.push_back({Name, SizeBytes, Now});
  sortLru(Entries);
  BackendPtr->put(kMeasurementIndexName, renderManifest(Entries));
}

MeasurementLoadResult MeasurementCache::load(const Suite &S, Machine Reference,
                                             std::vector<Machine> Targets,
                                             std::uint64_t Key) {
  const std::string Name = measurementCacheFileName(Key);
  std::string Bytes;
  if (!BackendPtr->get(Name, Bytes))
    return failed(MeasurementCacheError::Io,
                  "cannot read '" + Name + "' from the cache backend");
  MeasurementLoadResult R = parseMeasurements(Bytes, S, std::move(Reference),
                                              std::move(Targets), Key);
  if (R)
    touchEntry(Name, Bytes.size());
  return R;
}

MeasurementCacheError MeasurementCache::store(const MeasurementDatabase &Db,
                                              std::uint64_t Key,
                                              bool EntryLockHeld,
                                              std::string *Message) {
  const std::string Name = measurementCacheFileName(Key);
  // The backend chooses the election protocol: FileLock for a local
  // directory, a fleet-wide server lease for a remote backend, both for
  // the tiered composition.
  std::unique_ptr<WriterLock> Lock = BackendPtr->writerLock(Name);
  if (!EntryLockHeld) {
    WriterLock::Result R = acquireCounted(*Lock, LockOptions);
    if (!R) {
      if (Message)
        *Message = R.Message;
      return MeasurementCacheError::LockTimeout;
    }
  }
  std::string Bytes = serializeMeasurements(Db, Key);
  if (!BackendPtr->put(Name, Bytes)) {
    if (Message)
      *Message = "cannot publish '" + Name + "' to the cache backend";
    return MeasurementCacheError::Io;
  }
  touchEntry(Name, Bytes.size());
  return MeasurementCacheError::None;
}

CachePruneStats MeasurementCache::prune(std::uint64_t MaxBytes,
                                        std::uint64_t MaxAgeSeconds) {
  CachePruneStats Stats;
  // No manifest lock location = the backend runs its own lifecycle
  // (RemoteCacheBackend::pruneRemote asks the server to prune its
  // shards); client-side eviction here would be blind to fleet-wide
  // access times.
  if (BackendPtr->lockPath(kMeasurementIndexName).empty())
    return Stats;
  FileLock Lock(BackendPtr->lockPath(kMeasurementIndexName));
  if (!acquireCounted(Lock, manifestOptions(LockOptions))) {
    Stats.LockTimedOut = true;
    return Stats;
  }

  // The backend scan is the ground truth for existence and size; the
  // manifest overlays true access times.  A missing or corrupt manifest
  // degrades to the scan's mtimes and is healed by the rewrite below.
  std::vector<CacheEntry> OnDisk =
      BackendPtr->scan(kEntryPrefix, kEntrySuffix);
  std::string Raw;
  std::vector<CacheEntry> Manifest;
  const bool ManifestOk = BackendPtr->get(kMeasurementIndexName, Raw) &&
                          parseManifest(Raw, Manifest);
  Stats.RebuiltFromScan = !ManifestOk;
  if (ManifestOk)
    for (CacheEntry &E : OnDisk)
      for (const CacheEntry &M : Manifest)
        if (M.Name == E.Name) {
          E.AccessUnixSeconds = M.AccessUnixSeconds;
          break;
        }

  Stats.Entries = OnDisk.size();
  for (const CacheEntry &E : OnDisk)
    Stats.BytesBefore += E.SizeBytes;

  sortLru(OnDisk);
  const std::int64_t Now = nowUnixSeconds();
  std::vector<CacheEntry> Kept;
  std::uint64_t KeptBytes = 0;
  for (CacheEntry &E : OnDisk) {
    const bool TooOld =
        MaxAgeSeconds != 0 &&
        Now - E.AccessUnixSeconds > static_cast<std::int64_t>(MaxAgeSeconds);
    const bool OverBudget = MaxBytes != 0 && KeptBytes + E.SizeBytes > MaxBytes;
    if (!TooOld && !OverBudget) {
      KeptBytes += E.SizeBytes;
      Kept.push_back(std::move(E));
      continue;
    }
    if (BackendPtr->remove(E.Name)) {
      ++Stats.Removed;
    } else {
      // Deletion failed: keep accounting honest and keep tracking it.
      KeptBytes += E.SizeBytes;
      Kept.push_back(std::move(E));
    }
  }
  Stats.BytesAfter = KeptBytes;
  if (Stats.Removed > 0)
    FGBS_COUNTER_ADD("db.cache.evictions", Stats.Removed);
  BackendPtr->put(kMeasurementIndexName, renderManifest(Kept));
  return Stats;
}

//===----------------------------------------------------------------------===//
// The distributed build (simulation farm enqueuer/assembler)
//===----------------------------------------------------------------------===//

namespace {

/// Builds the database by farming items out through the remote
/// coordinator: publish the job blob, enqueue every missing item,
/// assemble worker-published parts, and locally simulate whatever the
/// farm has not delivered by the deadline.  The caller holds the
/// whole-database writer lease, so exactly one trainer fleet-wide runs
/// this per key.
std::unique_ptr<MeasurementDatabase>
distributedBuild(RemoteCacheBackend &Remote, const Suite &S,
                 const Machine &Reference, const std::vector<Machine> &Targets,
                 const TimingPolicy &Policy, std::uint64_t Key,
                 const DatabaseBuildOptions &Options) {
  const std::vector<const Codelet *> Codelets = S.allCodelets();
  const std::size_t N = Codelets.size();
  const std::size_t T = Targets.size();
  const std::size_t Total = measurementItemCount(N, T);

  std::uint64_t WaitMs = Options.DistributeWaitMs
                             ? Options.DistributeWaitMs
                             : envU64("FGBS_FARM_WAIT_MS");
  if (WaitMs == 0)
    WaitMs = 600000;
  const std::uint64_t PollMs =
      Options.DistributePollMs ? Options.DistributePollMs : 200;

  // The job blob is idempotent — same key, same bytes — so publishing
  // only when absent keeps trainer restarts cheap.
  const std::string JobName = farmJobEntryName(Key);
  if (!Remote.exists(JobName))
    Remote.put(JobName, serializeFarmJob(S, Reference, Targets, Policy, Key));

  std::vector<std::optional<MeasurementItemResult>> Results(Total);
  std::size_t Fetched = 0;

  const auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(WaitMs);
  const std::uint64_t PollSeed = makeOwnerToken();
  unsigned Round = 0;
  while (Fetched < Total) {
    // What has the farm published so far?  One prefix scan per round,
    // then fetch-and-validate only the new parts.
    std::vector<bool> Published(Total, false);
    for (const CacheEntry &E :
         Remote.scan(farmPartEntryPrefix(Key), ".v1")) {
      std::size_t Item = 0;
      if (parseFarmPartEntryName(E.Name, Key, Item) && Item < Total)
        Published[Item] = true;
    }
    for (std::size_t Item = 0; Item < Total; ++Item) {
      if (Results[Item] || !Published[Item])
        continue;
      const std::string PartName = farmPartEntryName(Key, Item);
      std::string Bytes;
      MeasurementItemResult R;
      if (Remote.get(PartName, Bytes) &&
          parseFarmPart(Bytes, Key, Item, R) == FarmSpecError::None) {
        Results[Item] = std::move(R);
        ++Fetched;
        FGBS_COUNTER_ADD("farm.parts_assembled", 1);
      } else if (!Bytes.empty()) {
        // A damaged part would make every worker's exists() fast path
        // skip it forever: delete it so the re-enqueue below gets it
        // simulated again.
        Remote.remove(PartName);
        Published[Item] = false;
      }
    }
    if (Fetched == Total)
      break;

    // (Re-)enqueue everything still unpublished.  The queue dedups
    // live items (Duplicate) and the server refuses items whose part
    // already exists (AlreadyPublished), so repeating this every round
    // is cheap — and it is exactly what heals a coordinator restart
    // that lost the in-memory queue.
    for (std::size_t Item = 0; Item < Total; ++Item) {
      if (Results[Item] || Published[Item])
        continue;
      FarmWorkSpec Spec;
      Spec.JobEntry = JobName;
      Spec.Key = Key;
      Spec.Item = Item;
      Remote.enqueueWork(farmPartEntryName(Key, Item),
                         encodeFarmWorkSpec(Spec));
    }

    if (std::chrono::steady_clock::now() >= Deadline)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(
        retryBackoffMs(Round < 2 ? Round : 2, PollMs, PollMs * 4, PollSeed)));
    ++Round;
  }

  // Deadline fallback: simulate leftovers locally so a farm with no
  // live workers still completes (slowly), never hangs.
  const std::size_t Leftover = Total - Fetched;
  if (Leftover > 0) {
    std::vector<std::size_t> Missing;
    for (std::size_t Item = 0; Item < Total; ++Item)
      if (!Results[Item])
        Missing.push_back(Item);
    CompileCache Compile;
    unsigned Threads = Options.Threads > 0 ? Options.Threads
                                           : ThreadPool::defaultThreadCount();
    ThreadPool Pool(Threads);
    Pool.parallelFor(0, Missing.size(), [&](std::size_t I) {
      const std::size_t Item = Missing[I];
      const MeasurementItem M = decodeMeasurementItem(Item, N, T);
      Results[Item] = executeMeasurementItem(*Codelets[M.Codelet], Reference,
                                             Targets, Policy, M, &Compile);
    });
  }
  std::cerr << "fgbs: farm: " << Total << " items, " << Fetched
            << " from workers, " << Leftover << " simulated locally\n";

  // Assemble the kind-major item grid back into the database shape and
  // rebind profile pointers onto the live suite (exactly as
  // parseMeasurements does for whole-database loads).
  std::vector<CodeletProfile> Profiles(N);
  std::vector<StandaloneMeasurement> StandaloneRef(N);
  std::vector<std::vector<Measurement>> Real(T, std::vector<Measurement>(N));
  std::vector<std::vector<StandaloneMeasurement>> StandaloneTgt(
      T, std::vector<StandaloneMeasurement>(N));
  for (std::size_t Item = 0; Item < Total; ++Item) {
    const MeasurementItem M = decodeMeasurementItem(Item, N, T);
    MeasurementItemResult &R = *Results[Item];
    switch (M.Kind) {
    case MeasurementItemKind::ProfileRef:
      Profiles[M.Codelet] = std::move(R.Profile);
      Profiles[M.Codelet].C = Codelets[M.Codelet];
      break;
    case MeasurementItemKind::StandaloneRef:
      StandaloneRef[M.Codelet] = R.Standalone;
      break;
    case MeasurementItemKind::InAppTarget:
      Real[M.Target][M.Codelet] = R.InApp;
      break;
    case MeasurementItemKind::StandaloneTarget:
      StandaloneTgt[M.Target][M.Codelet] = R.Standalone;
      break;
    }
  }
  return std::make_unique<MeasurementDatabase>(
      S, Reference, Targets, std::move(Profiles), std::move(Real),
      std::move(StandaloneRef), std::move(StandaloneTgt));
}

} // namespace

//===----------------------------------------------------------------------===//
// The cached build front-end
//===----------------------------------------------------------------------===//

std::unique_ptr<MeasurementDatabase>
fgbs::buildMeasurementDatabase(const Suite &S, Machine Reference,
                               std::vector<Machine> Targets,
                               const DatabaseBuildOptions &Options) {
  DatabaseOptions DbOptions;
  DbOptions.Threads = Options.Threads;
  auto Simulate = [&] {
    return std::make_unique<MeasurementDatabase>(S, Reference, Targets,
                                                 Options.Policy, DbOptions);
  };
  // The remote tier is opt-in per run (--cache-remote) or per
  // environment (FGBS_MEAS_CACHE_REMOTE); --no-cache turns off both
  // tiers at once.
  std::string RemoteSpec = Options.CacheRemote;
  if (RemoteSpec.empty())
    if (const char *Env = std::getenv("FGBS_MEAS_CACHE_REMOTE"))
      RemoteSpec = Env;
  if (!Options.UseCache || (Options.CacheDir.empty() && RemoteSpec.empty()))
    return Simulate();

  std::unique_ptr<RemoteCacheBackend> Remote;
  if (!RemoteSpec.empty()) {
    RemoteCacheConfig RemoteConfig;
    if (parseRemoteCacheAddress(RemoteSpec, RemoteConfig)) {
      Remote = std::make_unique<RemoteCacheBackend>(std::move(RemoteConfig));
    } else {
      std::cerr << "fgbs: warning: ignoring malformed remote cache address '"
                << RemoteSpec << "' (want host:port)\n";
      if (Options.CacheDir.empty())
        return Simulate();
    }
  }

  // The distribute path talks to the coordinator directly (enqueue,
  // prefix scans, part fetches) while the tiered cache owns the same
  // backend for whole-database entries — keep a raw handle across the
  // move below.
  RemoteCacheBackend *RemoteRaw = Remote.get();

  // Local-only, remote-only, or tiered — one MeasurementCache either
  // way; the backend seam hides which.
  std::unique_ptr<CacheBackend> Backend;
  if (Remote && !Options.CacheDir.empty())
    Backend = std::make_unique<TieredCacheBackend>(
        std::make_unique<LocalDirBackend>(Options.CacheDir),
        std::move(Remote));
  else if (Remote)
    Backend = std::move(Remote);
  else
    Backend = std::make_unique<LocalDirBackend>(Options.CacheDir);
  MeasurementCache Cache(std::move(Backend));
  Cache.LockOptions.TimeoutMs = Options.LockTimeoutMs
                                    ? Options.LockTimeoutMs
                                    : envU64("FGBS_MEAS_CACHE_LOCK_MS");
  if (Cache.LockOptions.TimeoutMs == 0)
    Cache.LockOptions.TimeoutMs = 600000;
  const std::uint64_t Key = measurementKey(S, Reference, Targets,
                                           Options.Policy);

  // \p Quiet silences the unusable-file warning on the post-lock
  // double check (the first pass already warned and counted it).
  auto TryLoad = [&](bool Quiet) -> std::unique_ptr<MeasurementDatabase> {
    if (!Cache.exists(Key))
      return nullptr;
    MeasurementLoadResult Loaded = Cache.load(S, Reference, Targets, Key);
    if (Loaded) {
      FGBS_COUNTER_ADD("db.cache.hits", 1);
      return std::move(Loaded.Db);
    }
    // A present-but-unusable file (CRC damage, version skew, a key
    // collision) must never poison results: warn and re-simulate.
    if (!Quiet) {
      FGBS_COUNTER_ADD("db.cache.errors", 1);
      std::cerr << "fgbs: measurement cache entry '"
                << measurementCacheFileName(Key) << "' in '"
                << Options.CacheDir << "' unusable ("
                << measurementCacheErrorName(Loaded.Error) << ": "
                << Loaded.Message << "); re-simulating\n";
    }
    return nullptr;
  };

  // Fast path — no lock: a published entry is complete by construction
  // (atomic rename), so readers never coordinate with writers.
  if (auto Db = TryLoad(/*Quiet=*/false))
    return Db;
  FGBS_COUNTER_ADD("db.cache.misses", 1);

  // Cold path: exactly one concurrent run simulates while the rest
  // block on the entry's writer election and then load what it
  // published.  The backend chooses the protocol — a same-host FileLock
  // for a local directory, a fleet-wide server lease for the remote
  // tier, both for the tiered cache; a backend with no coordination
  // needs hands out a lock that acquires instantly.
  std::unique_ptr<WriterLock> Lock =
      Cache.backend().writerLock(measurementCacheFileName(Key));
  bool LockHeld = false;
  {
    WriterLock::Result R = acquireCounted(*Lock, Cache.LockOptions);
    if (R) {
      LockHeld = true;
      // The previous holder may have published our key while we waited.
      if (auto Db = TryLoad(/*Quiet=*/true))
        return Db;
    } else {
      // Typed, visible fallback: simulate but do NOT store — whichever
      // live writer holds the lock will publish the identical bytes.
      std::cerr << "fgbs: measurement cache '" << Options.CacheDir << "' ("
                << measurementCacheErrorName(MeasurementCacheError::LockTimeout)
                << ": " << R.Message << "); simulating without storing\n";
    }
  }

  // With --distribute and a live remote tier the simulation fans out to
  // the worker fleet; otherwise (or for the trainer that lost the
  // writer election above) the sweep runs in-process as always.
  auto Db = Options.Distribute && RemoteRaw
                ? distributedBuild(*RemoteRaw, S, Reference, Targets,
                                   Options.Policy, Key, Options)
                : Simulate();
  if (LockHeld) {
    Lock->heartbeat();
    std::string Message;
    MeasurementCacheError E = Cache.store(*Db, Key, /*EntryLockHeld=*/true,
                                          &Message);
    if (E == MeasurementCacheError::None) {
      FGBS_COUNTER_ADD("db.cache.stores", 1);
      const std::uint64_t MaxBytes = Options.CacheMaxBytes
                                         ? Options.CacheMaxBytes
                                         : measurementCacheEnvMaxBytes();
      if (MaxBytes || Options.CacheMaxAgeSeconds) {
        // Eviction is a per-tier concern: prune the local directory
        // only, through its own cache object, so a tiered backend's
        // remove() can never delete fleet-shared entries on the server
        // (the server prunes its shards under its own budgets).
        if (Options.CacheDir.empty()) {
          Cache.prune(MaxBytes, Options.CacheMaxAgeSeconds);
        } else {
          MeasurementCache LocalOnly(Options.CacheDir);
          LocalOnly.LockOptions = Cache.LockOptions;
          LocalOnly.prune(MaxBytes, Options.CacheMaxAgeSeconds);
        }
      }
    } else {
      FGBS_COUNTER_ADD("db.cache.errors", 1);
      std::cerr << "fgbs: cannot store measurement cache entry ("
                << measurementCacheErrorName(E) << ": " << Message << ")\n";
    }
  }
  // The lock releases here — for a tiered cache that flushes the remote
  // write-back first, so the next fleet grantee's double-checked load
  // sees the entry.
  Lock->release();
  return Db;
}
