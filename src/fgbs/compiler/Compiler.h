//===- fgbs/compiler/Compiler.h - Codelet lowering --------------*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mini-compiler: lowers a codelet's statement trees to a BinaryLoop
/// for a given machine, standing in for "Intel compiler 12.1 at -O3".
///
/// The lowering performs:
///  - dependence-based vectorization legality (recurrences stay scalar,
///    reductions vectorize with partial accumulators, stores vectorize
///    when every access is contiguous or invariant);
///  - ISA-driven vector-width selection (SSE-class 128-bit on all four
///    paper machines);
///  - unrolling with accumulator privatization;
///  - loop-overhead instruction insertion (induction, compare, branch);
///  - a compilation-context model: codelets flagged
///    CompilationContextSensitive lose vectorization when compiled
///    standalone (the paper's second ill-behaved category: "codelets
///    which are compiled differently inside and outside the
///    application").
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_COMPILER_COMPILER_H
#define FGBS_COMPILER_COMPILER_H

#include "fgbs/arch/Machine.h"
#include "fgbs/compiler/BinaryLoop.h"
#include "fgbs/dsl/Codelet.h"

namespace fgbs {

/// Where a codelet is being compiled.  CF-extracted microbenchmarks lose
/// the code surrounding the hotspot, which can change the optimizer's
/// decisions (paper section 3.4).
enum class CompilationContext {
  InApplication, ///< Hotspot compiled inside the original program.
  Standalone,    ///< Extracted microbenchmark wrapper.
};

/// Optimizer settings, the moral equivalent of the paper's compiler
/// flags ("-O3 -xsse4.2" on Nehalem/Sandy Bridge, "-O3" elsewhere).
/// The defaults model ICC at -O3.  The paper's conclusion proposes
/// reusing the reduced suite for compiler comparison and auto-tuning;
/// examples/compiler_tuning.cpp does exactly that over these knobs.
struct CompilerOptions {
  /// Master vectorization switch (-no-vec when false).
  bool Vectorize = true;
  /// Loop unroll factor, clamped to [1, 8] (-unroll=N).
  unsigned UnrollFactor = 4;
  /// Allow FP reassociation (fast-math): vectorized reductions and
  /// private partial accumulators.  When false, FP reductions stay
  /// scalar with a single serial accumulator (-fp-model strict).
  bool ReassociateFp = true;

  /// The default -O3 configuration.
  static CompilerOptions o3() { return CompilerOptions(); }
  /// Vectorization disabled.
  static CompilerOptions noVec() {
    CompilerOptions O;
    O.Vectorize = false;
    return O;
  }
  /// Strict FP semantics (no reassociation).
  static CompilerOptions strictFp() {
    CompilerOptions O;
    O.ReassociateFp = false;
    return O;
  }
  /// No unrolling.
  static CompilerOptions noUnroll() {
    CompilerOptions O;
    O.UnrollFactor = 1;
    return O;
  }

  /// A short flag-like name ("-O3", "-O3 -no-vec", ...).
  std::string name() const;
};

/// Vectorization decision for one statement.
struct VectorizationDecision {
  bool Vectorized = false;
  /// Elements per vector operation (1 when scalar).
  unsigned VectorFactor = 1;
  /// Why vectorization was rejected (empty if vectorized).
  const char *Reason = "";
};

/// Returns the vectorizer's verdict for \p S of codelet \p C on \p M
/// compiled in \p Context under \p Options.  Exposed for unit testing.
VectorizationDecision decideVectorization(const Codelet &C, const Stmt &S,
                                          const Machine &M,
                                          CompilationContext Context,
                                          const CompilerOptions &Options = {});

/// Compiles \p C for \p M in \p Context under \p Options.
BinaryLoop compile(const Codelet &C, const Machine &M,
                   CompilationContext Context,
                   const CompilerOptions &Options = {});

/// A short "V" / "S" / "V + S" tag summarizing the compiled loop, like
/// Table 3's "Vec." column.
std::string vectorizationTag(const BinaryLoop &Loop);

} // namespace fgbs

#endif // FGBS_COMPILER_COMPILER_H
