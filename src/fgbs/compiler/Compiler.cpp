//===- fgbs/compiler/Compiler.cpp - Codelet lowering ----------------------===//

#include "fgbs/compiler/Compiler.h"

#include <algorithm>
#include <cassert>

using namespace fgbs;

/// Widest element precision appearing in \p S (drives the vector factor).
static Precision widestPrecision(const Stmt &S) {
  Precision Widest = Precision::SP;
  unsigned Best = 0;
  auto Consider = [&](Precision P) {
    unsigned B = bytesPerElement(P);
    if (B > Best) {
      Best = B;
      Widest = P;
    }
  };
  visitExpr(*S.Rhs, [&Consider](const Expr &E) { Consider(E.Prec); });
  if (S.Kind != StmtKind::Reduction)
    Consider(S.Rhs->Prec);
  return Widest;
}

/// True when the statement mixes FP element widths (the "MP" codelets of
/// Table 3): the compiler must insert width-conversion operations.
static bool mixesPrecision(const Stmt &S) {
  bool SawSp = false;
  bool SawDp = false;
  visitExpr(*S.Rhs, [&](const Expr &E) {
    if (E.Prec == Precision::SP)
      SawSp = true;
    if (E.Prec == Precision::DP)
      SawDp = true;
  });
  return SawSp && SawDp;
}

/// True if the access pattern is one SSE-class vector units handle
/// without gathers: contiguous (either direction), loop-invariant, or a
/// contiguous stencil neighborhood.
static bool isVectorizableAccess(const Access &Ref) {
  switch (Ref.Stride) {
  case StrideClass::Zero:
  case StrideClass::Unit:
  case StrideClass::Stencil:
    return true;
  case StrideClass::NegUnit:
    // Descending walks need reversal shuffles; the modeled -O3 compiler
    // (like ICC 12 on SSE) keeps them scalar.
    return false;
  case StrideClass::Small:
  case StrideClass::Lda:
    return false;
  }
  assert(false && "unknown stride class");
  return false;
}

std::string CompilerOptions::name() const {
  std::string Name = "-O3";
  if (!Vectorize)
    Name += " -no-vec";
  if (!ReassociateFp)
    Name += " -fp-model=strict";
  if (UnrollFactor != CompilerOptions().UnrollFactor)
    Name += " -unroll=" + std::to_string(UnrollFactor);
  return Name;
}

VectorizationDecision fgbs::decideVectorization(const Codelet &C,
                                                const Stmt &S,
                                                const Machine &M,
                                                CompilationContext Context,
                                                const CompilerOptions &Options) {
  VectorizationDecision D;

  if (!Options.Vectorize) {
    D.Reason = "vectorization disabled";
    return D;
  }

  if (S.Kind == StmtKind::Recurrence) {
    D.Reason = "loop-carried recurrence";
    return D;
  }

  // Vectorizing an FP reduction reorders the additions; without the
  // fast-math reassociation license the loop must stay scalar.
  if (S.Kind == StmtKind::Reduction && isFloatingPoint(S.Rhs->Prec) &&
      !Options.ReassociateFp) {
    D.Reason = "strict FP semantics forbid reduction reassociation";
    return D;
  }

  // The second ill-behaved category: heuristics depending on surrounding
  // code fail once the codelet is outlined (section 3.4).
  if (Context == CompilationContext::Standalone &&
      C.Traits.CompilationContextSensitive) {
    D.Reason = "profitability heuristic fails without surrounding code";
    return D;
  }

  bool AllVectorizable = true;
  visitExpr(*S.Rhs, [&AllVectorizable](const Expr &E) {
    if (E.Kind == ExprKind::Load && !isVectorizableAccess(E.Ref))
      AllVectorizable = false;
  });
  if (S.Kind == StmtKind::Store && !isVectorizableAccess(S.Target))
    AllVectorizable = false;
  if (!AllVectorizable) {
    D.Reason = "non-contiguous access";
    return D;
  }

  unsigned VF = M.vectorElems(widestPrecision(S));
  if (VF <= 1) {
    D.Reason = "no SIMD lanes for this element width";
    return D;
  }

  D.Vectorized = true;
  D.VectorFactor = VF;
  return D;
}

namespace {

/// Accumulates instructions into a BinaryLoop during lowering.
class Emitter {
public:
  explicit Emitter(BinaryLoop &Loop) : Loop(Loop) {}

  void emit(OpKind Kind, Precision Prec, unsigned VecElems,
            bool LoopOverhead = false) {
    Inst I{Kind, Prec, VecElems, LoopOverhead};
    Loop.Body.push_back(I);
    OpClassStats &Stats = Loop.statsFor(classify(Kind, Prec));
    if (I.isVector())
      ++Stats.VectorOps;
    else
      ++Stats.ScalarOps;
  }

  /// Lowers an expression tree; returns nothing, side effect is emission.
  void lowerExpr(const Expr &E, unsigned VecElems) {
    switch (E.Kind) {
    case ExprKind::Constant:
      return; // Register resident: no instruction per iteration.
    case ExprKind::Load:
      for (unsigned P = 0; P < E.Ref.PointsPerIter; ++P)
        emit(OpKind::Load, E.Prec, VecElems);
      return;
    case ExprKind::Binary:
      lowerExpr(*E.Lhs, VecElems);
      lowerExpr(*E.Rhs, VecElems);
      emit(binOpKind(E), E.Prec, VecElems);
      return;
    case ExprKind::Unary:
      lowerExpr(*E.Lhs, VecElems);
      emit(unOpKind(E.Un), E.Prec, VecElems);
      return;
    }
    assert(false && "unknown expression kind");
  }

  static OpKind binOpKind(const Expr &E) {
    assert(E.Kind == ExprKind::Binary && "not a binary node");
    bool Fp = isFloatingPoint(E.Prec);
    switch (E.Bin) {
    case BinOp::Add:
    case BinOp::Sub:
      return Fp ? OpKind::FpAdd : OpKind::IntAdd;
    case BinOp::Mul:
      return Fp ? OpKind::FpMul : OpKind::IntMul;
    case BinOp::Div:
      // Integer division is rare in the modeled suites; it shares the
      // FP divider on these cores.
      return OpKind::FpDiv;
    }
    assert(false && "unknown binary operator");
    return OpKind::FpAdd;
  }

  static OpKind unOpKind(UnOp Op) {
    switch (Op) {
    case UnOp::Sqrt:
      return OpKind::FpSqrt;
    case UnOp::Exp:
      return OpKind::FpExp;
    case UnOp::Abs:
      return OpKind::FpAbs;
    }
    assert(false && "unknown unary operator");
    return OpKind::FpAbs;
  }

private:
  BinaryLoop &Loop;
};

} // namespace

/// Collects the arithmetic operations on the recurrence's critical path:
/// every arithmetic node plus the recurrent load's latency contribution.
static void collectRecurrenceChain(const Stmt &S, std::vector<Inst> &Chain) {
  // The chain re-enters through a load of the previous element.
  Chain.push_back({OpKind::Load, S.Rhs->Prec, 1});
  visitExpr(*S.Rhs, [&Chain](const Expr &E) {
    if (E.Kind == ExprKind::Binary)
      Chain.push_back({Emitter::binOpKind(E), E.Prec, 1});
    else if (E.Kind == ExprKind::Unary)
      Chain.push_back({Emitter::unOpKind(E.Un), E.Prec, 1});
  });
}

BinaryLoop fgbs::compile(const Codelet &C, const Machine &M,
                         CompilationContext Context,
                         const CompilerOptions &Options) {
  assert(!C.Body.empty() && "cannot compile an empty codelet");
  BinaryLoop Loop;
  Emitter E(Loop);

  // Per-statement vectorization verdicts.
  std::vector<VectorizationDecision> Decisions;
  Decisions.reserve(C.Body.size());
  unsigned LoopVF = 1;
  for (const Stmt &S : C.Body) {
    Decisions.push_back(decideVectorization(C, S, M, Context, Options));
    LoopVF = std::max(LoopVF, Decisions.back().VectorFactor);
  }

  // Unroll factor covering U * LoopVF elements per body execution
  // (-O3 defaults to 4).
  const unsigned Unroll = std::clamp(Options.UnrollFactor, 1u, 8u);
  Loop.UnrollFactor = Unroll;
  Loop.ElementsPerIter = Unroll * LoopVF;

  unsigned Accumulators = 0;
  for (std::size_t SI = 0; SI < C.Body.size(); ++SI) {
    const Stmt &S = C.Body[SI];
    const VectorizationDecision &D = Decisions[SI];
    unsigned VF = D.Vectorized ? D.VectorFactor : 1;
    // A statement running at VF elements per op needs LoopVF / VF copies
    // per unroll step to keep pace with the widest statement.
    unsigned CopiesPerUnroll = std::max(1u, LoopVF / VF);
    unsigned Copies = Unroll * CopiesPerUnroll;
    bool Mixed = mixesPrecision(S);

    for (unsigned Copy = 0; Copy < Copies; ++Copy) {
      E.lowerExpr(*S.Rhs, VF);
      // Width-conversion overhead for mixed-precision statements
      // (cvtps2pd-style unpacks); scalar moves, one per copy.
      if (Mixed)
        E.emit(OpKind::MoveReg, Precision::SP, 1);
      switch (S.Kind) {
      case StmtKind::Store:
        E.emit(OpKind::Store, S.Rhs->Prec, VF);
        break;
      case StmtKind::Reduction: {
        OpKind Combine = isFloatingPoint(S.Rhs->Prec)
                             ? (S.ReduceOp == BinOp::Mul ? OpKind::FpMul
                                                         : OpKind::FpAdd)
                             : OpKind::IntAdd;
        E.emit(Combine, S.Rhs->Prec, VF);
        // With reassociation each unrolled copy owns a private
        // accumulator, so the chain steps interleave across `Copies`
        // independent chains; strict FP keeps one serial accumulator.
        Loop.CritChainOps.push_back({Combine, S.Rhs->Prec, VF});
        break;
      }
      case StmtKind::Recurrence:
        E.emit(OpKind::Store, S.Rhs->Prec, VF);
        collectRecurrenceChain(S, Loop.CritChainOps);
        break;
      }
    }

    if (S.Kind == StmtKind::Reduction) {
      bool Private =
          Options.ReassociateFp || !isFloatingPoint(S.Rhs->Prec);
      Accumulators = std::max(Accumulators, Private ? Copies : 1u);
    }
    if (S.Kind == StmtKind::Recurrence)
      // A recurrence serializes everything: a single chain.
      Loop.ChainParallelism = 1;
  }

  bool HasRecurrence = false;
  for (const Stmt &S : C.Body)
    HasRecurrence |= S.Kind == StmtKind::Recurrence;
  if (!HasRecurrence && Accumulators > 0)
    Loop.ChainParallelism = Accumulators;

  // Loop overhead: induction increment, exit compare, back-edge branch.
  E.emit(OpKind::IntAdd, Precision::I64, 1, /*LoopOverhead=*/true);
  E.emit(OpKind::Compare, Precision::I64, 1, /*LoopOverhead=*/true);
  E.emit(OpKind::Branch, Precision::I64, 1, /*LoopOverhead=*/true);

  // Register estimate: base pointers, one temp per statement, private
  // accumulators, induction + scratch; clamped to the architected count.
  unsigned Registers = static_cast<unsigned>(C.Arrays.size()) +
                       2 * static_cast<unsigned>(C.Body.size()) +
                       Accumulators + 2;
  Loop.NumRegisters = std::min(Registers, M.NumFpRegisters);

  // x86-64 SSE instructions average out near 5 bytes.
  Loop.CodeBytes = static_cast<unsigned>(Loop.Body.size()) * 5;

  return Loop;
}

std::string fgbs::vectorizationTag(const BinaryLoop &Loop) {
  if (!Loop.anyVector())
    return "S";
  return Loop.vectorizedPercent() >= 99.5 ? "V" : "V + S";
}
