//===- fgbs/compiler/CompileCache.h - Compile memoization ------*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A memoizing front-end for compile(): each distinct (codelet, machine,
/// compilation context, optimizer options) combination is lowered once
/// and the BinaryLoop reused.
///
/// Database construction is the motivating consumer: one codelet is
/// executed many times per machine — once per invocation group of the
/// in-application profile, once per ground-truth target measurement,
/// once standalone — and every execute() used to re-run the full
/// lowering.  A shared cache compiles each codelet once per (machine,
/// context, options) instead.
///
/// Thread safety: get() may be called concurrently (the parallel
/// measurement fan-out does).  Lowering is deterministic, so a racing
/// miss may compile the same loop twice, but the first insertion wins
/// and every caller observes identical bytes.  Returned references stay
/// valid for the cache's lifetime.
///
/// Keying is by codelet name and application (unique within a suite),
/// not by body content: a cache is meant to live no longer than the
/// suite whose measurements it serves.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_COMPILER_COMPILECACHE_H
#define FGBS_COMPILER_COMPILECACHE_H

#include "fgbs/compiler/Compiler.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace fgbs {

/// Memoizes compile() results.  Observable via the sim.compile.hits /
/// sim.compile.misses counters when telemetry is enabled.
class CompileCache {
public:
  CompileCache() = default;
  CompileCache(const CompileCache &) = delete;
  CompileCache &operator=(const CompileCache &) = delete;

  /// Returns the compiled form of \p C on \p M in \p Context under
  /// \p Options, lowering at most once per distinct key.
  const BinaryLoop &get(const Codelet &C, const Machine &M,
                        CompilationContext Context,
                        const CompilerOptions &Options);

  /// Distinct loops compiled so far.
  std::size_t size() const;

private:
  mutable std::mutex Mutex;
  std::unordered_map<std::uint64_t, std::unique_ptr<BinaryLoop>> Loops;
};

} // namespace fgbs

#endif // FGBS_COMPILER_COMPILECACHE_H
