//===- fgbs/compiler/BinaryLoop.h - Compiled loop representation -*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiled ("binary") form of a codelet's innermost loop: the unit
/// the MAQAO-like static analyzer inspects and the pipeline model times.
///
/// A BinaryLoop describes one execution of the *unrolled, vectorized* loop
/// body: the instruction list, how many original elements that body
/// processes, the loop-carried dependency chain, and per-class
/// vectorization bookkeeping.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_COMPILER_BINARYLOOP_H
#define FGBS_COMPILER_BINARYLOOP_H

#include "fgbs/isa/Isa.h"

#include <array>
#include <cstdint>
#include <vector>

namespace fgbs {

/// Number of OpClass values (fgbs/isa/Isa.h).
inline constexpr unsigned NumOpClasses = 8;

/// Vectorization bookkeeping for one operation class.
struct OpClassStats {
  unsigned VectorOps = 0;
  unsigned ScalarOps = 0;

  unsigned total() const { return VectorOps + ScalarOps; }

  /// Vectorization ratio in percent (0 when the class is absent), the
  /// MAQAO "Vectorization ratio" features.
  double ratioPercent() const {
    unsigned T = total();
    return T == 0 ? 0.0 : 100.0 * VectorOps / T;
  }
};

/// The compiled innermost loop of a codelet on a specific machine.
struct BinaryLoop {
  /// Instructions of one unrolled body execution.
  std::vector<Inst> Body;

  /// Original (element) iterations consumed per body execution
  /// (= unroll factor x vector factor for a fully vectorized loop).
  unsigned ElementsPerIter = 1;

  /// Unroll factor chosen by the compiler.
  unsigned UnrollFactor = 1;

  /// Loop-carried dependency-chain steps executed per body execution,
  /// flattened across the unroll factor.  An empty vector means the body
  /// carries no loop dependency (pure streaming).
  std::vector<Inst> CritChainOps;

  /// Number of independent interleaved chains (partial accumulators).
  unsigned ChainParallelism = 1;

  /// Estimated architectural registers used.
  unsigned NumRegisters = 0;

  /// Estimated loop-body code size in bytes (a MAQAO static feature).
  unsigned CodeBytes = 0;

  /// Vectorization bookkeeping per operation class.
  std::array<OpClassStats, NumOpClasses> ClassStats{};

  OpClassStats &statsFor(OpClass Class) {
    return ClassStats[static_cast<unsigned>(Class)];
  }
  const OpClassStats &statsFor(OpClass Class) const {
    return ClassStats[static_cast<unsigned>(Class)];
  }

  /// Fraction (percent) of arithmetic (non-memory, non-control)
  /// instructions that are vector instructions: the "Vec. %" column of
  /// paper Table 3.
  double vectorizedPercent() const;

  /// True if any instruction is a vector instruction.
  bool anyVector() const;

  /// Total FP operations per body execution.
  std::uint64_t flopsPerIter() const;

  /// Count of instructions with kind \p Kind.
  unsigned countKind(OpKind Kind) const;
};

} // namespace fgbs

#endif // FGBS_COMPILER_BINARYLOOP_H
