//===- fgbs/compiler/BinaryLoop.cpp - Compiled loop representation --------===//

#include "fgbs/compiler/BinaryLoop.h"

using namespace fgbs;

double BinaryLoop::vectorizedPercent() const {
  unsigned Vector = 0;
  unsigned Total = 0;
  for (const Inst &I : Body) {
    if (I.LoopOverhead)
      continue;
    OpClass Class = classify(I.Kind, I.Prec);
    if (Class == OpClass::LoadClass || Class == OpClass::StoreClass ||
        Class == OpClass::ControlClass)
      continue;
    ++Total;
    if (I.isVector())
      ++Vector;
  }
  return Total == 0 ? 0.0 : 100.0 * Vector / Total;
}

bool BinaryLoop::anyVector() const {
  for (const Inst &I : Body)
    if (I.isVector())
      return true;
  return false;
}

std::uint64_t BinaryLoop::flopsPerIter() const {
  std::uint64_t Total = 0;
  for (const Inst &I : Body)
    Total += I.flops();
  return Total;
}

unsigned BinaryLoop::countKind(OpKind Kind) const {
  unsigned Count = 0;
  for (const Inst &I : Body)
    if (I.Kind == Kind)
      ++Count;
  return Count;
}
