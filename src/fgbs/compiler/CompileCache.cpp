//===- fgbs/compiler/CompileCache.cpp - Compile memoization ---------------===//

#include "fgbs/compiler/CompileCache.h"

#include "fgbs/obs/Metrics.h"
#include "fgbs/support/Rng.h"

using namespace fgbs;

namespace {

std::uint64_t keyFor(const Codelet &C, const Machine &M,
                     CompilationContext Context,
                     const CompilerOptions &Options) {
  std::uint64_t Key = hashString(C.Name.c_str());
  Key = hashCombine(Key, hashString(C.App.c_str()));
  Key = hashCombine(Key, hashString(M.Name.c_str()));
  Key = hashCombine(Key, static_cast<std::uint64_t>(Context));
  Key = hashCombine(Key, (static_cast<std::uint64_t>(Options.Vectorize) << 32) |
                             (static_cast<std::uint64_t>(Options.ReassociateFp)
                              << 16) |
                             Options.UnrollFactor);
  return Key;
}

} // namespace

const BinaryLoop &CompileCache::get(const Codelet &C, const Machine &M,
                                    CompilationContext Context,
                                    const CompilerOptions &Options) {
  std::uint64_t Key = keyFor(C, M, Context, Options);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Loops.find(Key);
    if (It != Loops.end()) {
      FGBS_COUNTER_ADD("sim.compile.hits", 1);
      return *It->second;
    }
  }
  // Lower outside the lock: concurrent misses on the same key compile
  // twice, but the lowering is deterministic and the first insert wins.
  auto Loop = std::make_unique<BinaryLoop>(compile(C, M, Context, Options));
  std::lock_guard<std::mutex> Lock(Mutex);
  auto [It, Inserted] = Loops.try_emplace(Key, std::move(Loop));
  if (Inserted)
    FGBS_COUNTER_ADD("sim.compile.misses", 1);
  else
    FGBS_COUNTER_ADD("sim.compile.hits", 1);
  return *It->second;
}

std::size_t CompileCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Loops.size();
}
