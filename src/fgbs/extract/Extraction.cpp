//===- fgbs/extract/Extraction.cpp - Step D: extraction -------------------===//

#include "fgbs/extract/Extraction.h"

#include "fgbs/obs/Trace.h"
#include "fgbs/support/Matrix.h"
#include "fgbs/support/Rng.h"
#include "fgbs/support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

using namespace fgbs;

StandaloneMeasurement fgbs::measureStandalone(const Codelet &C,
                                              const Machine &M,
                                              const TimingPolicy &Policy,
                                              CompileCache *Compile) {
  // The wrapper replays the FIRST invocation's captured memory dump, and
  // the loop is compiled without its surrounding application code.
  ExecutionRequest R;
  R.DatasetScale = C.capturedDatasetScale();
  R.Context = CompilationContext::Standalone;
  R.WarmCacheReplay = true;
  R.Compile = Compile;
  Measurement Base = execute(C, M, R);

  StandaloneMeasurement Out;
  Out.TrueSeconds = Base.TrueSeconds;

  // Invocation count: run at least MinRunSeconds in total, with at least
  // MinInvocations invocations.
  double PerInvocation = std::max(Base.TrueSeconds, 1e-12);
  auto Needed = static_cast<std::uint64_t>(
      std::ceil(Policy.MinRunSeconds / PerInvocation));
  Out.Invocations = std::max(Policy.MinInvocations, Needed);
  Out.TotalBenchmarkSeconds =
      static_cast<double>(Out.Invocations) * Base.TrueSeconds;

  // Median-of-invocations timing: re-sample the measurement noise per
  // invocation (deterministically) and take the median; this tightens
  // short-codelet measurements exactly like the paper's protocol.
  std::uint64_t Seed = hashString(C.Name.c_str());
  Seed = hashCombine(Seed, hashString(M.Name.c_str()));
  Seed = hashCombine(Seed, 0x57A4DA10ULL);
  Rng NoiseRng(Seed);
  double Millis = Base.TrueSeconds * 1e3;
  double Sigma = 0.012 + 0.035 * std::exp(-Millis / 8.0);
  // Sampling is capped: the median of a few hundred lognormal draws is
  // already indistinguishable from the distribution median.
  std::uint64_t Draws = std::min<std::uint64_t>(Out.Invocations, 199);
  std::vector<double> Samples;
  Samples.reserve(Draws);
  constexpr double StandaloneProbeOverhead = 0.5e-6;
  for (std::uint64_t I = 0; I < Draws; ++I)
    Samples.push_back(Base.TrueSeconds *
                          std::exp(NoiseRng.normal(0.0, Sigma)) +
                      StandaloneProbeOverhead);
  Out.MedianSeconds = median(Samples);
  return Out;
}

bool fgbs::isWellBehaved(const StandaloneMeasurement &Standalone,
                         double InAppSeconds, double Threshold) {
  assert(InAppSeconds > 0.0 && "in-app time must be positive");
  double Deviation =
      std::fabs(Standalone.MedianSeconds - InAppSeconds) / InAppSeconds;
  return Deviation <= Threshold;
}

SelectionResult fgbs::selectRepresentatives(
    const FeatureTable &Points, const Clustering &Initial,
    const std::function<bool(std::size_t)> &WellBehaved, bool PreferMedoid) {
  FGBS_TRACE_SPAN("extract.select");
  FGBS_COUNTER_ADD("extract.selections", 1);
  SelectionResult Result;
  Result.Assignment = Initial.Assignment;

  std::vector<std::vector<std::size_t>> Members = Initial.members();
  std::vector<bool> IllBehavedFlag(Points.size(), false);

  // Phase 1: per cluster, walk candidates by distance to centroid and
  // keep the first well-behaved one.
  std::vector<long> ClusterRep(Members.size(), -1); // -1 = destroyed.
  for (std::size_t Cl = 0; Cl < Members.size(); ++Cl) {
    const std::vector<std::size_t> &M = Members[Cl];
    if (M.empty())
      continue;
    std::vector<double> Centroid = centroidOf(Points, M);
    std::vector<std::size_t> Order(M.size());
    for (std::size_t I = 0; I < M.size(); ++I)
      Order[I] = I;
    if (PreferMedoid)
      std::stable_sort(Order.begin(), Order.end(),
                       [&](std::size_t A, std::size_t B) {
                         return squaredDistance(Points[M[A]], Centroid) <
                                squaredDistance(Points[M[B]], Centroid);
                       });
    for (std::size_t I : Order) {
      std::size_t Candidate = M[I];
      if (WellBehaved(Candidate)) {
        ClusterRep[Cl] = static_cast<long>(Candidate);
        break;
      }
      IllBehavedFlag[Candidate] = true;
    }
  }

  // Degenerate case: every cluster destroyed (a suite whose codelets are
  // all ill-behaved, like MG under per-application subsetting).  There is
  // nothing to extract; callers must treat the suite as unpredictable.
  bool AnySurvivor = false;
  for (long Rep : ClusterRep)
    AnySurvivor |= Rep >= 0;
  if (!AnySurvivor) {
    Result.Assignment.clear();
    Result.FinalK = 0;
    for (std::size_t P = 0; P < Points.size(); ++P)
      if (IllBehavedFlag[P])
        Result.IllBehaved.push_back(P);
    FGBS_COUNTER_ADD("extract.dissolved_clusters", Members.size());
    FGBS_COUNTER_ADD("extract.ill_behaved_replacements",
                     Result.IllBehaved.size());
    return Result;
  }

  // Phase 2: members of destroyed clusters move to the cluster of their
  // closest neighbor in any surviving cluster.
  for (std::size_t Cl = 0; Cl < Members.size(); ++Cl) {
    if (ClusterRep[Cl] >= 0 || Members[Cl].empty())
      continue;
    FGBS_COUNTER_ADD("extract.dissolved_clusters", 1);
    FGBS_COUNTER_ADD("extract.orphans_moved", Members[Cl].size());
    for (std::size_t Orphan : Members[Cl]) {
      double BestDist = std::numeric_limits<double>::infinity();
      long BestCluster = -1;
      for (std::size_t Other = 0; Other < Points.size(); ++Other) {
        auto OtherCl = static_cast<std::size_t>(Initial.Assignment[Other]);
        if (OtherCl == Cl || ClusterRep[OtherCl] < 0)
          continue;
        double Dist = squaredDistance(Points[Orphan], Points[Other]);
        if (Dist < BestDist) {
          BestDist = Dist;
          BestCluster = static_cast<long>(OtherCl);
        }
      }
      assert(BestCluster >= 0 && "no surviving cluster found");
      Result.Assignment[Orphan] = static_cast<int>(BestCluster);
    }
  }

  // Relabel surviving clusters to [0, FinalK) in first-appearance order.
  std::vector<int> Relabel(Members.size(), -1);
  for (std::size_t P = 0; P < Result.Assignment.size(); ++P) {
    auto Old = static_cast<std::size_t>(Result.Assignment[P]);
    if (Relabel[Old] < 0) {
      Relabel[Old] = static_cast<int>(Result.FinalK++);
      Result.Representatives.push_back(
          static_cast<std::size_t>(ClusterRep[Old]));
    }
    Result.Assignment[P] = Relabel[Old];
  }

  for (std::size_t P = 0; P < Points.size(); ++P)
    if (IllBehavedFlag[P])
      Result.IllBehaved.push_back(P);
  // Each ill-behaved candidate forced the walk to the next-nearest
  // medoid (or dissolved its cluster): the paper's replacement events.
  FGBS_COUNTER_ADD("extract.ill_behaved_replacements",
                   Result.IllBehaved.size());
  return Result;
}
