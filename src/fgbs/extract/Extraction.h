//===- fgbs/extract/Extraction.h - Step D: extraction ----------*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Step D of the method: extract cluster representatives as standalone
/// microbenchmarks.
///
/// Extraction mirrors the Codelet Finder workflow: the memory state of the
/// FIRST invocation is captured into a dump, a wrapper replays the dump
/// and times the codelet over a reduced invocation count (at least 1 ms
/// of run time and at least 10 invocations; the median invocation time is
/// reported).  Extracted codelets can be "ill-behaved": their standalone
/// time deviates more than 10% from the in-application time, because the
/// captured dataset only matches the first invocation, because the
/// compiler optimizes the outlined loop differently, or because the dump
/// restores an unrealistically warm cache.  The representative selector
/// re-selects or dissolves clusters accordingly (section 3.4).
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_EXTRACT_EXTRACTION_H
#define FGBS_EXTRACT_EXTRACTION_H

#include "fgbs/cluster/Cluster.h"
#include "fgbs/dsl/Codelet.h"
#include "fgbs/sim/Executor.h"

#include <cstdint>
#include <functional>

namespace fgbs {

/// Timing policy for standalone microbenchmarks (section 3.4).
struct TimingPolicy {
  double MinRunSeconds = 1e-3;     ///< Run at least this long...
  std::uint64_t MinInvocations = 10; ///< ...and at least this many times.
};

/// Result of benchmarking one extracted microbenchmark on one machine.
struct StandaloneMeasurement {
  /// Median measured per-invocation time over the chosen invocations.
  double MedianSeconds = 0.0;
  /// Noise-free model time per invocation.
  double TrueSeconds = 0.0;
  /// Invocation count chosen by the timing policy.
  std::uint64_t Invocations = 0;
  /// Total wall time spent benchmarking (invocations x true time):
  /// the numerator of the benchmarking-reduction factor.
  double TotalBenchmarkSeconds = 0.0;
};

/// Benchmarks the extracted form of \p C on \p M: replay the first
/// invocation's dump, standalone compilation, reduced invocations,
/// median-of-invocations timing.  \p Compile, when given, memoizes the
/// standalone lowering (results are unchanged).
StandaloneMeasurement measureStandalone(const Codelet &C, const Machine &M,
                                        const TimingPolicy &Policy = {},
                                        CompileCache *Compile = nullptr);

/// The 10% in-app-vs-standalone agreement test of section 3.4.
/// \p InAppSeconds is the per-invocation time profiled at step B.
bool isWellBehaved(const StandaloneMeasurement &Standalone,
                   double InAppSeconds, double Threshold = 0.10);

/// Outcome of the ill-behaved-aware representative selection.
struct SelectionResult {
  /// Final cluster assignment per point (relabeled to [0, FinalK)).
  std::vector<int> Assignment;
  /// One representative point index per final cluster.
  std::vector<std::size_t> Representatives;
  /// Points whose standalone behaviour failed the 10% test.
  std::vector<std::size_t> IllBehaved;
  unsigned FinalK = 0;
};

/// Implements the selection loop of section 3.4 over an initial
/// clustering:
///   1. try members closest-to-centroid first;
///   2. ill-behaved candidates become ineligible;
///   3. clusters with only ineligible members are destroyed and each
///      member moves to the cluster of its closest (surviving) neighbor.
/// \p WellBehaved is the per-point agreement oracle.
/// \p PreferMedoid selects candidates by distance to the centroid (the
/// paper's policy); passing false walks members in index order instead
/// (the representative-choice ablation).
SelectionResult
selectRepresentatives(const FeatureTable &Points, const Clustering &Initial,
                      const std::function<bool(std::size_t)> &WellBehaved,
                      bool PreferMedoid = true);

/// Modeled cost of extracting one codelet into a microbenchmark, for the
/// overhead discussion of section 5 (the paper reports 380 minutes for
/// 18 NAS codelets).
inline constexpr double ExtractionMinutesPerCodelet = 380.0 / 18.0;

} // namespace fgbs

#endif // FGBS_EXTRACT_EXTRACTION_H
