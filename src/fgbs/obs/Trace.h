//===- fgbs/obs/Trace.h - Scoped timers and trace spans --------*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RAII timing primitives over the metrics registry:
///
///  - ScopedTimer records its scope's wall time into a latency
///    Histogram when telemetry is enabled, and is a no-op otherwise.
///  - TraceSpan additionally logs a begin/duration event into the
///    process-wide TraceLog, nested via a per-thread depth counter;
///    the log exports to Chrome's trace_event JSON so flame charts of a
///    run open directly in chrome://tracing or Perfetto.
///
/// Span recording takes one mutex-protected vector append per span at
/// destruction; spans mark phases (pipeline steps, GA generations),
/// not inner loops, so this is far off every hot path.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_OBS_TRACE_H
#define FGBS_OBS_TRACE_H

#include "fgbs/obs/Metrics.h"

#include <cstdint>
#include <iosfwd>

namespace fgbs {
namespace obs {

/// Monotonic nanoseconds since the process trace epoch.
std::uint64_t nowNs();

/// One completed span.
struct TraceEvent {
  std::string Name;
  std::uint64_t StartNs = 0;
  std::uint64_t DurationNs = 0;
  unsigned ThreadId = 0; ///< detail::threadSlot() of the recording thread.
  unsigned Depth = 0;    ///< Nesting level within its thread, 0 = root.
};

/// Whether spans are being collected (off by default; implies nothing
/// about metrics, the two switch independently).
bool tracingEnabled();
void setTracingEnabled(bool On);

/// The process-wide span log.
class TraceLog {
public:
  static TraceLog &global();

  void record(TraceEvent Event);

  /// Copies the events collected so far, ordered by start time.
  std::vector<TraceEvent> events() const;
  void clear();

private:
  mutable std::mutex Mutex;
  std::vector<TraceEvent> Events;
};

/// Writes \p Events in Chrome trace_event JSON ("X" complete events;
/// open the file in chrome://tracing or ui.perfetto.dev).
void writeChromeTrace(std::ostream &OS, const std::vector<TraceEvent> &Events);

/// Records the lifetime of its scope into a histogram metric.  The
/// histogram handle is resolved by the caller (typically once, via
/// FGBS_SCOPED_TIMER or a cached member); a null histogram disables the
/// timer entirely.
class ScopedTimer {
public:
  explicit ScopedTimer(Histogram *H) : Hist(H), Start(H ? nowNs() : 0) {}
  ~ScopedTimer() {
    if (Hist)
      Hist->record(nowNs() - Start);
  }

  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

private:
  Histogram *Hist;
  std::uint64_t Start;
};

/// Records a named span into the TraceLog (when tracing is on) and into
/// the histogram metric of the same name (when metrics are on).
class TraceSpan {
public:
  explicit TraceSpan(const char *Name);
  ~TraceSpan();

  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

private:
  const char *Name; ///< Null when both trace and metrics were off.
  bool Traced = false;
  std::uint64_t Start = 0;
  unsigned Depth = 0;
};

/// Times a scope into the named histogram metric (no trace event).
#define FGBS_SCOPED_TIMER(NameLiteral)                                         \
  fgbs::obs::ScopedTimer FGBS_OBS_CONCAT(FgbsObsTimer, __LINE__)(              \
      fgbs::obs::enabled()                                                     \
          ? &fgbs::obs::MetricsRegistry::global().histogram(NameLiteral)       \
          : nullptr)

/// Times a scope into the named histogram metric AND the trace log.
#define FGBS_TRACE_SPAN(NameLiteral)                                           \
  fgbs::obs::TraceSpan FGBS_OBS_CONCAT(FgbsObsSpan, __LINE__)(NameLiteral)

} // namespace obs
} // namespace fgbs

#endif // FGBS_OBS_TRACE_H
