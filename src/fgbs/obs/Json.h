//===- fgbs/obs/Json.h - Minimal JSON value, parser, writer ----*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately small JSON layer for the telemetry subsystem: run
/// reports and bench baselines are written and re-read through it, and
/// the CI perf gate parses both sides of its comparison with it.  No
/// external dependency; numbers are doubles (every value the schema
/// carries fits); object keys are sorted (std::map), which the writers
/// rely on for stable, diffable output.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_OBS_JSON_H
#define FGBS_OBS_JSON_H

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace fgbs {
namespace obs {

/// A JSON document node.
class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() : TheKind(Kind::Null) {}
  JsonValue(bool B) : TheKind(Kind::Bool), BoolValue(B) {}
  JsonValue(double N) : TheKind(Kind::Number), NumberValue(N) {}
  JsonValue(std::string S) : TheKind(Kind::String), StringValue(std::move(S)) {}
  JsonValue(const char *S) : TheKind(Kind::String), StringValue(S) {}

  static JsonValue array() {
    JsonValue V;
    V.TheKind = Kind::Array;
    return V;
  }
  static JsonValue object() {
    JsonValue V;
    V.TheKind = Kind::Object;
    return V;
  }

  Kind kind() const { return TheKind; }
  bool isNull() const { return TheKind == Kind::Null; }
  bool isNumber() const { return TheKind == Kind::Number; }
  bool isObject() const { return TheKind == Kind::Object; }

  bool boolean() const { return BoolValue; }
  double number() const { return NumberValue; }
  const std::string &string() const { return StringValue; }

  std::vector<JsonValue> &elements() { return ArrayValue; }
  const std::vector<JsonValue> &elements() const { return ArrayValue; }

  std::map<std::string, JsonValue> &members() { return ObjectValue; }
  const std::map<std::string, JsonValue> &members() const {
    return ObjectValue;
  }

  /// Object member lookup; null for non-objects and missing keys.
  const JsonValue *find(const std::string &Key) const;

  /// Sets an object member (the value must be an object).
  JsonValue &set(const std::string &Key, JsonValue V);

  /// Appends an array element (the value must be an array).
  void push(JsonValue V);

private:
  Kind TheKind;
  bool BoolValue = false;
  double NumberValue = 0.0;
  std::string StringValue;
  std::vector<JsonValue> ArrayValue;
  std::map<std::string, JsonValue> ObjectValue;
};

/// Parses one JSON document (with optional trailing whitespace).
/// Returns std::nullopt on malformed input.
std::optional<JsonValue> parseJson(const std::string &Text);

/// Serializes \p V; \p Indent > 0 pretty-prints with that indent width.
std::string writeJson(const JsonValue &V, unsigned Indent = 0);

/// Escapes \p S for embedding in a JSON string literal (no quotes).
std::string escapeJsonString(const std::string &S);

} // namespace obs
} // namespace fgbs

#endif // FGBS_OBS_JSON_H
