//===- fgbs/obs/Gate.h - Perf-baseline regression gate ---------*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The comparison behind the CI perf gate: new benchmark timings (any
/// JSON with a "benchmarks" member — an fgbs.run.v1 report or the flat
/// checked-in baseline) against the recorded baseline, with a generous
/// two-level tolerance so noisy shared runners warn long before they
/// fail.  tools/perf_gate is the thin CLI over this.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_OBS_GATE_H
#define FGBS_OBS_GATE_H

#include "fgbs/obs/Json.h"

#include <iosfwd>

namespace fgbs {
namespace obs {

/// Outcome of one benchmark's baseline comparison.
enum class GateStatus {
  Ok,            ///< Ratio below the warn threshold.
  Warn,          ///< Slower than warn x baseline (noise territory).
  Fail,          ///< Slower than fail x baseline (a real regression).
  MissingResult, ///< In the baseline but not in the results (warn-level).
  NewBenchmark,  ///< In the results but not in the baseline (info only).
};

struct GateEntry {
  std::string Name;
  double BaselineNs = 0.0;
  double ResultNs = 0.0;
  double Ratio = 0.0; ///< ResultNs / BaselineNs; 0 when either is absent.
  GateStatus Status = GateStatus::Ok;
};

struct GateReport {
  std::vector<GateEntry> Entries; ///< Baseline order, new benches last.
  unsigned Compared = 0;
  unsigned Warnings = 0; ///< Warn + MissingResult entries.
  unsigned Failures = 0;

  /// The gate passes while nothing crossed the fail threshold and at
  /// least one benchmark was actually compared.
  bool passed() const { return Failures == 0 && Compared > 0; }
};

/// Compares the "benchmarks" members of \p Baseline and \p Results.
/// \p WarnRatio and \p FailRatio are result/baseline thresholds
/// (1.5 / 3.0 in CI).
GateReport compareBenchmarks(const JsonValue &Baseline,
                             const JsonValue &Results, double WarnRatio,
                             double FailRatio);

/// Prints \p Report as a table plus a PASS/FAIL verdict line.
void printGateReport(std::ostream &OS, const GateReport &Report);

} // namespace obs
} // namespace fgbs

#endif // FGBS_OBS_GATE_H
