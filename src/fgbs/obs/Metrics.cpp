//===- fgbs/obs/Metrics.cpp - Process-wide metrics registry ---------------===//

#include "fgbs/obs/Metrics.h"

using namespace fgbs;
using namespace fgbs::obs;

std::atomic<bool> detail::Enabled{false};

void obs::setEnabled(bool On) {
  detail::Enabled.store(On, std::memory_order_relaxed);
}

unsigned detail::threadSlot() {
  static std::atomic<unsigned> Next{0};
  thread_local unsigned Slot = Next.fetch_add(1, std::memory_order_relaxed);
  return Slot;
}

std::uint64_t Counter::total() const {
  std::uint64_t Sum = 0;
  for (const CounterShard &S : Shards)
    Sum += S.Value.load(std::memory_order_relaxed);
  return Sum;
}

void Counter::reset() {
  for (CounterShard &S : Shards)
    S.Value.store(0, std::memory_order_relaxed);
}

unsigned Histogram::bucketFor(std::uint64_t Ns) {
  for (unsigned I = 0; I + 1 < NumHistogramBuckets; ++I)
    if (Ns <= bucketUpperBoundNs(I))
      return I;
  return NumHistogramBuckets - 1;
}

void Histogram::record(std::uint64_t Ns) {
  HistogramShard &S = Shards[detail::threadSlot() & (NumShards - 1)];
  S.Count.fetch_add(1, std::memory_order_relaxed);
  S.Sum.fetch_add(Ns, std::memory_order_relaxed);
  S.Buckets[bucketFor(Ns)].fetch_add(1, std::memory_order_relaxed);

  // Min/max via CAS; contention is bounded by the sharding.
  std::uint64_t Seen = S.Min.load(std::memory_order_relaxed);
  while (Ns < Seen &&
         !S.Min.compare_exchange_weak(Seen, Ns, std::memory_order_relaxed))
    ;
  Seen = S.Max.load(std::memory_order_relaxed);
  while (Ns > Seen &&
         !S.Max.compare_exchange_weak(Seen, Ns, std::memory_order_relaxed))
    ;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot Out;
  std::uint64_t Min = ~0ull;
  for (const HistogramShard &S : Shards) {
    Out.Count += S.Count.load(std::memory_order_relaxed);
    Out.SumNs += S.Sum.load(std::memory_order_relaxed);
    Min = std::min(Min, S.Min.load(std::memory_order_relaxed));
    Out.MaxNs = std::max(Out.MaxNs, S.Max.load(std::memory_order_relaxed));
    for (unsigned B = 0; B < NumHistogramBuckets; ++B)
      Out.Buckets[B] += S.Buckets[B].load(std::memory_order_relaxed);
  }
  Out.MinNs = Out.Count ? Min : 0;
  return Out;
}

void Histogram::reset() {
  for (HistogramShard &S : Shards) {
    S.Count.store(0, std::memory_order_relaxed);
    S.Sum.store(0, std::memory_order_relaxed);
    S.Min.store(~0ull, std::memory_order_relaxed);
    S.Max.store(0, std::memory_order_relaxed);
    for (std::atomic<std::uint64_t> &B : S.Buckets)
      B.store(0, std::memory_order_relaxed);
  }
}

MetricsRegistry &MetricsRegistry::global() {
  // Leaked on purpose: handles cached by instrumented code must outlive
  // every static destructor that might still record.
  static MetricsRegistry *Registry = new MetricsRegistry();
  return *Registry;
}

Counter &MetricsRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::unique_ptr<Counter> &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &MetricsRegistry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::unique_ptr<Gauge> &Slot = Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

Histogram &MetricsRegistry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::unique_ptr<Histogram> &Slot = Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>();
  return *Slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  MetricsSnapshot Out;
  for (const auto &[Name, C] : Counters)
    Out.Counters[Name] = C->total();
  for (const auto &[Name, G] : Gauges)
    Out.Gauges[Name] = G->get();
  for (const auto &[Name, H] : Histograms)
    Out.Histograms[Name] = H->snapshot();
  return Out;
}

std::uint64_t obs::counterTotal(const std::string &Name) {
  // Deliberately read-only: going through counter(Name) would register
  // a zero-valued metric that then pollutes every exported report.
  MetricsSnapshot S = MetricsRegistry::global().snapshot();
  auto It = S.Counters.find(Name);
  return It == S.Counters.end() ? 0 : It->second;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (const auto &[Name, C] : Counters)
    C->reset();
  for (const auto &[Name, G] : Gauges)
    G->reset();
  for (const auto &[Name, H] : Histograms)
    H->reset();
}
