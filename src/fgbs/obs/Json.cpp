//===- fgbs/obs/Json.cpp - Minimal JSON value, parser, writer -------------===//

#include "fgbs/obs/Json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

using namespace fgbs;
using namespace fgbs::obs;

const JsonValue *JsonValue::find(const std::string &Key) const {
  if (TheKind != Kind::Object)
    return nullptr;
  auto It = ObjectValue.find(Key);
  return It == ObjectValue.end() ? nullptr : &It->second;
}

JsonValue &JsonValue::set(const std::string &Key, JsonValue V) {
  ObjectValue[Key] = std::move(V);
  return *this;
}

void JsonValue::push(JsonValue V) { ArrayValue.push_back(std::move(V)); }

namespace {

/// Recursive-descent parser over a character range.
class Parser {
public:
  Parser(const char *Begin, const char *End) : Cursor(Begin), End(End) {}

  std::optional<JsonValue> document() {
    std::optional<JsonValue> V = value();
    if (!V)
      return std::nullopt;
    skipSpace();
    if (Cursor != End)
      return std::nullopt; // Trailing garbage.
    return V;
  }

private:
  void skipSpace() {
    while (Cursor != End &&
           std::isspace(static_cast<unsigned char>(*Cursor)))
      ++Cursor;
  }

  bool consume(char C) {
    skipSpace();
    if (Cursor == End || *Cursor != C)
      return false;
    ++Cursor;
    return true;
  }

  bool literal(const char *Word) {
    for (; *Word; ++Word, ++Cursor)
      if (Cursor == End || *Cursor != *Word)
        return false;
    return true;
  }

  std::optional<JsonValue> value() {
    skipSpace();
    if (Cursor == End)
      return std::nullopt;
    switch (*Cursor) {
    case '{':
      return object();
    case '[':
      return array();
    case '"':
      return string();
    case 't':
      return literal("true") ? std::optional<JsonValue>(JsonValue(true))
                             : std::nullopt;
    case 'f':
      return literal("false") ? std::optional<JsonValue>(JsonValue(false))
                              : std::nullopt;
    case 'n':
      return literal("null") ? std::optional<JsonValue>(JsonValue())
                             : std::nullopt;
    default:
      return number();
    }
  }

  std::optional<JsonValue> object() {
    ++Cursor; // '{'
    JsonValue Out = JsonValue::object();
    skipSpace();
    if (consume('}'))
      return Out;
    for (;;) {
      skipSpace();
      if (Cursor == End || *Cursor != '"')
        return std::nullopt;
      std::optional<JsonValue> Key = string();
      if (!Key || !consume(':'))
        return std::nullopt;
      std::optional<JsonValue> Member = value();
      if (!Member)
        return std::nullopt;
      Out.set(Key->string(), std::move(*Member));
      if (consume(','))
        continue;
      if (consume('}'))
        return Out;
      return std::nullopt;
    }
  }

  std::optional<JsonValue> array() {
    ++Cursor; // '['
    JsonValue Out = JsonValue::array();
    skipSpace();
    if (consume(']'))
      return Out;
    for (;;) {
      std::optional<JsonValue> Element = value();
      if (!Element)
        return std::nullopt;
      Out.push(std::move(*Element));
      if (consume(','))
        continue;
      if (consume(']'))
        return Out;
      return std::nullopt;
    }
  }

  std::optional<JsonValue> string() {
    ++Cursor; // '"'
    std::string Out;
    while (Cursor != End && *Cursor != '"') {
      char C = *Cursor++;
      if (C != '\\') {
        Out.push_back(C);
        continue;
      }
      if (Cursor == End)
        return std::nullopt;
      char Escape = *Cursor++;
      switch (Escape) {
      case '"':
      case '\\':
      case '/':
        Out.push_back(Escape);
        break;
      case 'b':
        Out.push_back('\b');
        break;
      case 'f':
        Out.push_back('\f');
        break;
      case 'n':
        Out.push_back('\n');
        break;
      case 'r':
        Out.push_back('\r');
        break;
      case 't':
        Out.push_back('\t');
        break;
      case 'u': {
        // \uXXXX: decoded only for the ASCII range the telemetry schema
        // emits; anything else is preserved as a '?' placeholder.
        if (End - Cursor < 4)
          return std::nullopt;
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = *Cursor++;
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return std::nullopt;
        }
        Out.push_back(Code < 0x80 ? static_cast<char>(Code) : '?');
        break;
      }
      default:
        return std::nullopt;
      }
    }
    if (Cursor == End)
      return std::nullopt; // Unterminated.
    ++Cursor;              // Closing '"'.
    return JsonValue(std::move(Out));
  }

  std::optional<JsonValue> number() {
    const char *Start = Cursor;
    if (Cursor != End && (*Cursor == '-' || *Cursor == '+'))
      ++Cursor;
    bool SawDigit = false;
    while (Cursor != End &&
           (std::isdigit(static_cast<unsigned char>(*Cursor)) ||
            *Cursor == '.' || *Cursor == 'e' || *Cursor == 'E' ||
            *Cursor == '-' || *Cursor == '+')) {
      SawDigit |= std::isdigit(static_cast<unsigned char>(*Cursor));
      ++Cursor;
    }
    if (!SawDigit)
      return std::nullopt;
    double Parsed = 0.0;
    auto [Ptr, Ec] = std::from_chars(Start, Cursor, Parsed);
    if (Ec != std::errc() || Ptr != Cursor)
      return std::nullopt;
    return JsonValue(Parsed);
  }

  const char *Cursor;
  const char *End;
};

/// Shortest representation that round-trips; integers print as integers
/// (the schema's counters and nanosecond sums stay grep-able).
void writeNumber(std::string &Out, double N) {
  if (std::isfinite(N) && N == std::floor(N) && std::fabs(N) < 1e15) {
    char Buffer[32];
    std::snprintf(Buffer, sizeof(Buffer), "%.0f", N);
    Out += Buffer;
    return;
  }
  if (!std::isfinite(N)) { // JSON has no inf/nan.
    Out += "null";
    return;
  }
  char Buffer[40];
  std::snprintf(Buffer, sizeof(Buffer), "%.17g", N);
  // Trim to the shortest form that still parses back equal.
  for (int Precision = 1; Precision < 17; ++Precision) {
    char Short[40];
    std::snprintf(Short, sizeof(Short), "%.*g", Precision, N);
    double Back = 0.0;
    std::from_chars(Short, Short + std::char_traits<char>::length(Short),
                    Back);
    if (Back == N) {
      Out += Short;
      return;
    }
  }
  Out += Buffer;
}

void writeValue(std::string &Out, const JsonValue &V, unsigned Indent,
                unsigned Level) {
  auto Newline = [&](unsigned AtLevel) {
    if (Indent == 0)
      return;
    Out.push_back('\n');
    Out.append(static_cast<std::size_t>(Indent) * AtLevel, ' ');
  };

  switch (V.kind()) {
  case JsonValue::Kind::Null:
    Out += "null";
    return;
  case JsonValue::Kind::Bool:
    Out += V.boolean() ? "true" : "false";
    return;
  case JsonValue::Kind::Number:
    writeNumber(Out, V.number());
    return;
  case JsonValue::Kind::String:
    Out.push_back('"');
    Out += escapeJsonString(V.string());
    Out.push_back('"');
    return;
  case JsonValue::Kind::Array: {
    Out.push_back('[');
    bool First = true;
    for (const JsonValue &E : V.elements()) {
      if (!First)
        Out.push_back(',');
      First = false;
      Newline(Level + 1);
      writeValue(Out, E, Indent, Level + 1);
    }
    if (!First)
      Newline(Level);
    Out.push_back(']');
    return;
  }
  case JsonValue::Kind::Object: {
    Out.push_back('{');
    bool First = true;
    for (const auto &[Key, Member] : V.members()) {
      if (!First)
        Out.push_back(',');
      First = false;
      Newline(Level + 1);
      Out.push_back('"');
      Out += escapeJsonString(Key);
      Out += Indent ? "\": " : "\":";
      writeValue(Out, Member, Indent, Level + 1);
    }
    if (!First)
      Newline(Level);
    Out.push_back('}');
    return;
  }
  }
}

} // namespace

std::optional<JsonValue> obs::parseJson(const std::string &Text) {
  Parser P(Text.data(), Text.data() + Text.size());
  return P.document();
}

std::string obs::writeJson(const JsonValue &V, unsigned Indent) {
  std::string Out;
  writeValue(Out, V, Indent, 0);
  return Out;
}

std::string obs::escapeJsonString(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buffer[8];
        std::snprintf(Buffer, sizeof(Buffer), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buffer;
      } else {
        Out.push_back(C);
      }
      break;
    }
  }
  return Out;
}
