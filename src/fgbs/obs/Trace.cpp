//===- fgbs/obs/Trace.cpp - Scoped timers and trace spans -----------------===//

#include "fgbs/obs/Trace.h"

#include <algorithm>
#include <chrono>
#include <ostream>

using namespace fgbs;
using namespace fgbs::obs;

namespace {

std::atomic<bool> Tracing{false};

std::chrono::steady_clock::time_point traceEpoch() {
  static const std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();
  return Epoch;
}

/// Per-thread span nesting level.
thread_local unsigned SpanDepth = 0;

} // namespace

std::uint64_t obs::nowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - traceEpoch())
          .count());
}

bool obs::tracingEnabled() {
  return Tracing.load(std::memory_order_relaxed);
}

void obs::setTracingEnabled(bool On) {
  traceEpoch(); // Pin the epoch no later than the first enable.
  Tracing.store(On, std::memory_order_relaxed);
}

TraceLog &TraceLog::global() {
  static TraceLog *Log = new TraceLog(); // Leaked, like the registry.
  return *Log;
}

void TraceLog::record(TraceEvent Event) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Events.push_back(std::move(Event));
}

std::vector<TraceEvent> TraceLog::events() const {
  std::vector<TraceEvent> Out;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Out = Events;
  }
  std::stable_sort(Out.begin(), Out.end(),
                   [](const TraceEvent &A, const TraceEvent &B) {
                     return A.StartNs < B.StartNs;
                   });
  return Out;
}

void TraceLog::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Events.clear();
}

void obs::writeChromeTrace(std::ostream &OS,
                           const std::vector<TraceEvent> &Events) {
  OS << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool First = true;
  for (const TraceEvent &E : Events) {
    if (!First)
      OS << ",";
    First = false;
    // trace_event wants microsecond doubles; depth rides along as an
    // argument for tooling that groups by nesting level.
    OS << "{\"name\":\"" << E.Name << "\",\"cat\":\"fgbs\",\"ph\":\"X\""
       << ",\"ts\":" << static_cast<double>(E.StartNs) / 1e3
       << ",\"dur\":" << static_cast<double>(E.DurationNs) / 1e3
       << ",\"pid\":1,\"tid\":" << E.ThreadId << ",\"args\":{\"depth\":"
       << E.Depth << "}}";
  }
  OS << "]}\n";
}

TraceSpan::TraceSpan(const char *SpanName) : Name(nullptr) {
  Traced = tracingEnabled();
  if (!Traced && !enabled())
    return;
  Name = SpanName;
  Depth = SpanDepth++;
  Start = nowNs();
}

TraceSpan::~TraceSpan() {
  if (!Name)
    return;
  std::uint64_t Duration = nowNs() - Start;
  --SpanDepth;
  if (Traced) {
    TraceEvent E;
    E.Name = Name;
    E.StartNs = Start;
    E.DurationNs = Duration;
    E.ThreadId = detail::threadSlot();
    E.Depth = Depth;
    TraceLog::global().record(std::move(E));
  }
  if (enabled())
    MetricsRegistry::global().histogram(Name).record(Duration);
}
