//===- fgbs/obs/Metrics.h - Process-wide metrics registry ------*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The telemetry metrics layer: a process-wide registry of named
/// counters, gauges, and fixed-bucket latency histograms.
///
/// Design constraints (see DESIGN.md section 8):
///  - Disabled is the default and costs one relaxed atomic load plus a
///    branch per instrumented site; nothing else is touched, so tier-1
///    timings are unchanged.
///  - Enabled recording is lock-free: every metric is sharded into
///    cache-line-padded per-thread-slot cells updated with relaxed
///    atomics; shards are only merged when a snapshot is taken.
///  - Handles are stable for the process lifetime (the registry never
///    deletes a metric), so hot modules resolve a metric once and keep
///    the pointer.
///
/// Layering: obs sits below support — anything in the library may
/// include it, and it includes nothing from fgbs.
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_OBS_METRICS_H
#define FGBS_OBS_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace fgbs {
namespace obs {

namespace detail {
extern std::atomic<bool> Enabled;

/// Small dense id for the calling thread (assigned on first use, never
/// reused); metrics fold it onto their shard array.
unsigned threadSlot();
} // namespace detail

/// True when telemetry recording is on.  The inline fast path of every
/// instrumented site.
inline bool enabled() {
  return detail::Enabled.load(std::memory_order_relaxed);
}

/// Turns telemetry recording on or off (off is the process default).
void setEnabled(bool On);

/// Shards per metric; power of two, thread slots fold onto it.
constexpr unsigned NumShards = 16;

/// One cache line per shard so concurrent writers do not false-share.
struct alignas(64) CounterShard {
  std::atomic<std::uint64_t> Value{0};
};

/// A monotonically increasing sum.
class Counter {
public:
  void add(std::uint64_t N) {
    Shards[detail::threadSlot() & (NumShards - 1)].Value.fetch_add(
        N, std::memory_order_relaxed);
  }
  void increment() { add(1); }

  /// Merges the shards.  Approximate under concurrent writers (each
  /// shard is read atomically, the sum is not a consistent cut).
  std::uint64_t total() const;
  void reset();

private:
  std::array<CounterShard, NumShards> Shards;
};

/// A last-value-wins double (thread count, configured K, queue depth).
class Gauge {
public:
  void set(double V) { Value.store(V, std::memory_order_relaxed); }
  double get() const { return Value.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

private:
  std::atomic<double> Value{0.0};
};

/// Histogram bucket count: fixed power-of-two boundaries from 1us up,
/// plus a catch-all overflow bucket.  bucketUpperBoundNs(i) gives the
/// inclusive upper bound of bucket i; the last bucket has none.
constexpr unsigned NumHistogramBuckets = 20;

/// Inclusive upper bound (in nanoseconds) of bucket \p Index, i.e.
/// 1000 * 2^Index for the first NumHistogramBuckets - 1 buckets (1us,
/// 2us, ... ~4.4min); UINT64_MAX for the overflow bucket.
constexpr std::uint64_t bucketUpperBoundNs(unsigned Index) {
  return Index + 1 < NumHistogramBuckets
             ? 1000ull << Index
             : ~0ull;
}

struct alignas(64) HistogramShard {
  std::atomic<std::uint64_t> Count{0};
  std::atomic<std::uint64_t> Sum{0};
  std::atomic<std::uint64_t> Min{~0ull};
  std::atomic<std::uint64_t> Max{0};
  std::array<std::atomic<std::uint64_t>, NumHistogramBuckets> Buckets{};
};

/// Merged view of one histogram.
struct HistogramSnapshot {
  std::uint64_t Count = 0;
  std::uint64_t SumNs = 0;
  std::uint64_t MinNs = 0; ///< 0 when Count == 0.
  std::uint64_t MaxNs = 0;
  std::array<std::uint64_t, NumHistogramBuckets> Buckets{};

  double meanNs() const {
    return Count ? static_cast<double>(SumNs) / static_cast<double>(Count)
                 : 0.0;
  }
};

/// A fixed-bucket latency histogram over nanosecond samples.
class Histogram {
public:
  void record(std::uint64_t Ns);
  HistogramSnapshot snapshot() const;
  void reset();

  /// Index of the bucket a sample falls into (exposed for tests).
  static unsigned bucketFor(std::uint64_t Ns);

private:
  std::array<HistogramShard, NumShards> Shards;
};

/// Merged view of the whole registry at one point in time.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> Counters;
  std::map<std::string, double> Gauges;
  std::map<std::string, HistogramSnapshot> Histograms;

  bool empty() const {
    return Counters.empty() && Gauges.empty() && Histograms.empty();
  }
};

/// The process-wide metric registry.  Registration and snapshots take a
/// mutex; recording through the returned handles never does.
class MetricsRegistry {
public:
  static MetricsRegistry &global();

  /// Finds or creates the named metric.  The returned reference stays
  /// valid for the process lifetime.
  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  Histogram &histogram(const std::string &Name);

  /// Merges every metric's shards into one consistent-enough view.
  MetricsSnapshot snapshot() const;

  /// Zeroes every registered metric (registrations survive; handles
  /// stay valid).  For run-scoped reporting and tests.
  void reset();

private:
  mutable std::mutex Mutex;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

/// Current total of the named counter (0 when it was never recorded).
/// Snapshot-free single-metric read for tests and status printouts —
/// e.g. asserting exactly one of N racing processes bumped
/// "db.cache.stores".
std::uint64_t counterTotal(const std::string &Name);

// Convenience macros: one registry lookup on first enabled pass, then a
// cached handle; a branch-plus-nothing when telemetry is disabled.
#define FGBS_OBS_CONCAT_IMPL(A, B) A##B
#define FGBS_OBS_CONCAT(A, B) FGBS_OBS_CONCAT_IMPL(A, B)

#define FGBS_COUNTER_ADD(NameLiteral, Amount)                                  \
  do {                                                                         \
    if (fgbs::obs::enabled()) {                                                \
      static fgbs::obs::Counter &FgbsObsCtr =                                  \
          fgbs::obs::MetricsRegistry::global().counter(NameLiteral);           \
      FgbsObsCtr.add(static_cast<std::uint64_t>(Amount));                      \
    }                                                                          \
  } while (0)

#define FGBS_GAUGE_SET(NameLiteral, Value)                                     \
  do {                                                                         \
    if (fgbs::obs::enabled()) {                                                \
      static fgbs::obs::Gauge &FgbsObsGauge =                                  \
          fgbs::obs::MetricsRegistry::global().gauge(NameLiteral);             \
      FgbsObsGauge.set(static_cast<double>(Value));                            \
    }                                                                          \
  } while (0)

#define FGBS_HISTOGRAM_RECORD_NS(NameLiteral, Ns)                              \
  do {                                                                         \
    if (fgbs::obs::enabled()) {                                                \
      static fgbs::obs::Histogram &FgbsObsHist =                               \
          fgbs::obs::MetricsRegistry::global().histogram(NameLiteral);         \
      FgbsObsHist.record(static_cast<std::uint64_t>(Ns));                      \
    }                                                                          \
  } while (0)

} // namespace obs
} // namespace fgbs

#endif // FGBS_OBS_METRICS_H
