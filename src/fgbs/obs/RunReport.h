//===- fgbs/obs/RunReport.h - fgbs.run.v1 JSON run reports -----*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one JSON schema every FGBS surface speaks — benches, examples,
/// and the CI perf gate (fgbs.run.v1):
///
/// \code
/// {
///   "schema": "fgbs.run.v1",
///   "run": {"name": "...", "asserts": true|false, "threads": N},
///   "values": {"elbow_k": 18, ...},          // run-level result scalars
///   "benchmarks": {"BM_WardCluster/256": 1062017, ...},   // ns per item
///   "metrics": {
///     "counters": {"cluster.merges": 66, ...},
///     "gauges": {"pool.threads": 4, ...},
///     "histograms": {"pipeline.cluster": {"count": 1, "sum_ns": ...,
///         "min_ns": ..., "max_ns": ...,
///         "buckets": [{"le_ns": 1000, "count": 0}, ...,
///                     {"le_ns": null, "count": 0}]}}}
/// }
/// \endcode
///
/// The checked-in bench baseline (bench/BENCH_clustering.json) predates
/// the schema but shares the "benchmarks" member shape, so the gate
/// compares the two directly.
///
/// Session is the per-binary entry point: construct one in main(),
/// record result values into it, and its destructor honours the
/// environment —
///   FGBS_TELEMETRY=1    enable metrics, print a summary to stderr
///   FGBS_RUN_JSON=path  enable metrics, write the fgbs.run.v1 report
///   FGBS_TRACE_JSON=path  enable tracing, write the Chrome trace
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_OBS_RUNREPORT_H
#define FGBS_OBS_RUNREPORT_H

#include "fgbs/obs/Json.h"
#include "fgbs/obs/Metrics.h"

#include <iosfwd>

namespace fgbs {
namespace obs {

/// Identity block of a run report.
struct RunInfo {
  std::string Name;
  /// Worker threads the "auto" knob resolves to in this environment.
  unsigned Threads = 1;
};

/// The registry snapshot as the schema's "metrics" member.
JsonValue metricsToJson(const MetricsSnapshot &Snapshot);

/// A full fgbs.run.v1 document.
JsonValue buildRunReport(const RunInfo &Info, const MetricsSnapshot &Snapshot,
                         const std::map<std::string, double> &Values,
                         const std::map<std::string, double> &Benchmarks);

/// Round-trip reader: extracts the "benchmarks" member of a run report
/// OR of the flat baseline format (values may be plain numbers or
/// objects carrying "time_ns").  Empty map when absent.
std::map<std::string, double> benchmarksFromJson(const JsonValue &Document);

/// Human-readable digest of a snapshot (counters, gauges, histogram
/// mean/min/max) — the "run summary" surfaces print.
void printSummary(std::ostream &OS, const MetricsSnapshot &Snapshot);

/// RAII run scope driven by the environment (see file comment).
/// Construction resets the registry so the report covers exactly this
/// run; destruction exports.
class Session {
public:
  explicit Session(std::string RunName);
  ~Session();

  Session(const Session &) = delete;
  Session &operator=(const Session &) = delete;

  /// Records a run-level result scalar ("values" member).
  void recordValue(const std::string &Name, double Value);

  /// Records one benchmark timing in nanoseconds ("benchmarks" member).
  void recordBenchmark(const std::string &Name, double Ns);

  /// Whether any telemetry output was requested for this run.
  bool active() const { return Active; }

private:
  RunInfo Info;
  std::map<std::string, double> Values;
  std::map<std::string, double> Benchmarks;
  std::string RunJsonPath;
  std::string TraceJsonPath;
  bool PrintSummary = false;
  bool Active = false;
};

} // namespace obs
} // namespace fgbs

#endif // FGBS_OBS_RUNREPORT_H
