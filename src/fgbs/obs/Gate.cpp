//===- fgbs/obs/Gate.cpp - Perf-baseline regression gate ------------------===//

#include "fgbs/obs/Gate.h"

#include "fgbs/obs/RunReport.h"

#include <cassert>
#include <iomanip>
#include <ostream>

using namespace fgbs;
using namespace fgbs::obs;

GateReport obs::compareBenchmarks(const JsonValue &Baseline,
                                  const JsonValue &Results, double WarnRatio,
                                  double FailRatio) {
  assert(WarnRatio > 0.0 && FailRatio >= WarnRatio &&
         "fail threshold must not undercut warn");
  std::map<std::string, double> Base = benchmarksFromJson(Baseline);
  std::map<std::string, double> New = benchmarksFromJson(Results);

  GateReport Report;
  for (const auto &[Name, BaseNs] : Base) {
    GateEntry Entry;
    Entry.Name = Name;
    Entry.BaselineNs = BaseNs;
    auto It = New.find(Name);
    if (It == New.end()) {
      Entry.Status = GateStatus::MissingResult;
      ++Report.Warnings;
    } else {
      Entry.ResultNs = It->second;
      Entry.Ratio = BaseNs > 0.0 ? It->second / BaseNs : 0.0;
      ++Report.Compared;
      if (Entry.Ratio > FailRatio) {
        Entry.Status = GateStatus::Fail;
        ++Report.Failures;
      } else if (Entry.Ratio > WarnRatio) {
        Entry.Status = GateStatus::Warn;
        ++Report.Warnings;
      }
    }
    Report.Entries.push_back(std::move(Entry));
  }
  for (const auto &[Name, Ns] : New) {
    if (Base.count(Name))
      continue;
    GateEntry Entry;
    Entry.Name = Name;
    Entry.ResultNs = Ns;
    Entry.Status = GateStatus::NewBenchmark;
    Report.Entries.push_back(std::move(Entry));
  }
  return Report;
}

namespace {

const char *statusLabel(GateStatus Status) {
  switch (Status) {
  case GateStatus::Ok:
    return "ok";
  case GateStatus::Warn:
    return "WARN";
  case GateStatus::Fail:
    return "FAIL";
  case GateStatus::MissingResult:
    return "missing";
  case GateStatus::NewBenchmark:
    return "new";
  }
  return "?"; // Unreachable; silences -Wreturn-type.
}

} // namespace

void obs::printGateReport(std::ostream &OS, const GateReport &Report) {
  std::size_t NameWidth = 9;
  for (const GateEntry &E : Report.Entries)
    NameWidth = std::max(NameWidth, E.Name.size());

  OS << std::left << std::setw(static_cast<int>(NameWidth)) << "benchmark"
     << std::right << std::setw(14) << "baseline ns" << std::setw(14)
     << "result ns" << std::setw(9) << "ratio" << "  status\n";
  for (const GateEntry &E : Report.Entries) {
    OS << std::left << std::setw(static_cast<int>(NameWidth)) << E.Name
       << std::right << std::fixed << std::setprecision(0) << std::setw(14)
       << E.BaselineNs << std::setw(14) << E.ResultNs;
    if (E.Ratio > 0.0)
      OS << std::setprecision(2) << std::setw(9) << E.Ratio;
    else
      OS << std::setw(9) << "-";
    OS << "  " << statusLabel(E.Status) << "\n";
  }
  OS << "\nperf gate: " << (Report.passed() ? "PASS" : "FAIL") << " ("
     << Report.Compared << " compared, " << Report.Warnings << " warnings, "
     << Report.Failures << " failures)\n";
}
