//===- fgbs/obs/RunReport.cpp - fgbs.run.v1 JSON run reports --------------===//

#include "fgbs/obs/RunReport.h"

#include "fgbs/obs/Trace.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <thread>

using namespace fgbs;
using namespace fgbs::obs;

namespace {

/// Mirrors ThreadPool::defaultThreadCount (obs sits below support, so
/// it cannot include it): FGBS_THREADS if positive, else hardware
/// concurrency, at least 1.
unsigned defaultThreads() {
  if (const char *Env = std::getenv("FGBS_THREADS")) {
    char *End = nullptr;
    long Parsed = std::strtol(Env, &End, 10);
    if (End != Env && *End == '\0' && Parsed > 0)
      return static_cast<unsigned>(Parsed);
  }
  unsigned Hardware = std::thread::hardware_concurrency();
  return Hardware > 0 ? Hardware : 1;
}

JsonValue histogramToJson(const HistogramSnapshot &H) {
  JsonValue Out = JsonValue::object();
  Out.set("count", JsonValue(static_cast<double>(H.Count)));
  Out.set("sum_ns", JsonValue(static_cast<double>(H.SumNs)));
  Out.set("min_ns", JsonValue(static_cast<double>(H.MinNs)));
  Out.set("max_ns", JsonValue(static_cast<double>(H.MaxNs)));
  JsonValue Buckets = JsonValue::array();
  for (unsigned B = 0; B < NumHistogramBuckets; ++B) {
    JsonValue Bucket = JsonValue::object();
    Bucket.set("le_ns", B + 1 < NumHistogramBuckets
                            ? JsonValue(static_cast<double>(
                                  bucketUpperBoundNs(B)))
                            : JsonValue());
    Bucket.set("count", JsonValue(static_cast<double>(H.Buckets[B])));
    Buckets.push(std::move(Bucket));
  }
  Out.set("buckets", std::move(Buckets));
  return Out;
}

} // namespace

JsonValue obs::metricsToJson(const MetricsSnapshot &Snapshot) {
  JsonValue Out = JsonValue::object();
  JsonValue Counters = JsonValue::object();
  for (const auto &[Name, Value] : Snapshot.Counters)
    Counters.set(Name, JsonValue(static_cast<double>(Value)));
  Out.set("counters", std::move(Counters));

  JsonValue Gauges = JsonValue::object();
  for (const auto &[Name, Value] : Snapshot.Gauges)
    Gauges.set(Name, JsonValue(Value));
  Out.set("gauges", std::move(Gauges));

  JsonValue Histograms = JsonValue::object();
  for (const auto &[Name, H] : Snapshot.Histograms)
    Histograms.set(Name, histogramToJson(H));
  Out.set("histograms", std::move(Histograms));
  return Out;
}

JsonValue obs::buildRunReport(const RunInfo &Info,
                              const MetricsSnapshot &Snapshot,
                              const std::map<std::string, double> &Values,
                              const std::map<std::string, double> &Benchmarks) {
  JsonValue Out = JsonValue::object();
  Out.set("schema", JsonValue("fgbs.run.v1"));

  JsonValue Run = JsonValue::object();
  Run.set("name", JsonValue(Info.Name));
#ifdef NDEBUG
  Run.set("asserts", JsonValue(false));
#else
  Run.set("asserts", JsonValue(true));
#endif
  Run.set("threads", JsonValue(static_cast<double>(Info.Threads)));
  Out.set("run", std::move(Run));

  JsonValue ValuesJson = JsonValue::object();
  for (const auto &[Name, Value] : Values)
    ValuesJson.set(Name, JsonValue(Value));
  Out.set("values", std::move(ValuesJson));

  JsonValue BenchJson = JsonValue::object();
  for (const auto &[Name, Ns] : Benchmarks)
    BenchJson.set(Name, JsonValue(Ns));
  Out.set("benchmarks", std::move(BenchJson));

  Out.set("metrics", metricsToJson(Snapshot));
  return Out;
}

std::map<std::string, double>
obs::benchmarksFromJson(const JsonValue &Document) {
  std::map<std::string, double> Out;
  const JsonValue *Benchmarks = Document.find("benchmarks");
  if (!Benchmarks || !Benchmarks->isObject())
    return Out;
  for (const auto &[Name, Value] : Benchmarks->members()) {
    if (Value.isNumber()) {
      Out[Name] = Value.number();
      continue;
    }
    if (const JsonValue *TimeNs = Value.find("time_ns"))
      if (TimeNs->isNumber())
        Out[Name] = TimeNs->number();
  }
  return Out;
}

void obs::printSummary(std::ostream &OS, const MetricsSnapshot &Snapshot) {
  OS << "-- telemetry summary ------------------------------------------\n";
  if (Snapshot.empty()) {
    OS << "  (no metrics recorded)\n";
    return;
  }
  for (const auto &[Name, Value] : Snapshot.Counters)
    OS << "  counter " << Name << " = " << Value << "\n";
  for (const auto &[Name, Value] : Snapshot.Gauges)
    OS << "  gauge   " << Name << " = " << Value << "\n";
  for (const auto &[Name, H] : Snapshot.Histograms) {
    OS << "  timer   " << Name << ": count " << H.Count;
    if (H.Count > 0)
      OS << ", mean " << H.meanNs() / 1e6 << " ms, min " << H.MinNs / 1e6
         << " ms, max " << H.MaxNs / 1e6 << " ms";
    OS << "\n";
  }
}

Session::Session(std::string RunName) {
  Info.Name = std::move(RunName);
  Info.Threads = defaultThreads();

  if (const char *Env = std::getenv("FGBS_RUN_JSON"))
    RunJsonPath = Env;
  if (const char *Env = std::getenv("FGBS_TRACE_JSON"))
    TraceJsonPath = Env;
  if (const char *Env = std::getenv("FGBS_TELEMETRY"))
    PrintSummary = Env[0] != '\0' && Env[0] != '0';

  Active = PrintSummary || !RunJsonPath.empty() || !TraceJsonPath.empty();
  if (!Active)
    return;
  MetricsRegistry::global().reset();
  setEnabled(true);
  if (!TraceJsonPath.empty()) {
    TraceLog::global().clear();
    setTracingEnabled(true);
  }
}

Session::~Session() {
  if (!Active)
    return;
  MetricsSnapshot Snapshot = MetricsRegistry::global().snapshot();
  if (!RunJsonPath.empty()) {
    std::ofstream OS(RunJsonPath);
    if (OS)
      OS << writeJson(buildRunReport(Info, Snapshot, Values, Benchmarks),
                      /*Indent=*/2)
         << "\n";
    else
      std::cerr << "fgbs: cannot write FGBS_RUN_JSON to '" << RunJsonPath
                << "'\n";
  }
  if (!TraceJsonPath.empty()) {
    setTracingEnabled(false);
    std::ofstream OS(TraceJsonPath);
    if (OS)
      writeChromeTrace(OS, TraceLog::global().events());
    else
      std::cerr << "fgbs: cannot write FGBS_TRACE_JSON to '" << TraceJsonPath
                << "'\n";
  }
  if (PrintSummary)
    printSummary(std::cerr, Snapshot);
  setEnabled(false);
}

void Session::recordValue(const std::string &Name, double Value) {
  Values[Name] = Value;
}

void Session::recordBenchmark(const std::string &Name, double Ns) {
  Benchmarks[Name] = Ns;
}
