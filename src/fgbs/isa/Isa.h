//===- fgbs/isa/Isa.h - Abstract instruction vocabulary --------*- C++ -*-===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract instruction-set vocabulary shared by the mini-compiler
/// (fgbs/compiler), the MAQAO-like static analyzer (fgbs/analysis), and the
/// performance simulator (fgbs/sim).
///
/// Instructions are deliberately abstract: an operation kind, an element
/// precision, and a vector width in elements.  Concrete encodings are
/// irrelevant to the paper's method; what matters is the classification
/// that MAQAO-style metrics need (scalar-double counts, vectorization
/// ratios per operation class, divisions, dispatch-port pressure).
///
//===----------------------------------------------------------------------===//

#ifndef FGBS_ISA_ISA_H
#define FGBS_ISA_ISA_H

#include <cstdint>
#include <string>
#include <vector>

namespace fgbs {

/// Abstract operation kinds.
enum class OpKind {
  FpAdd,   ///< Floating-point add or subtract.
  FpMul,   ///< Floating-point multiply.
  FpDiv,   ///< Floating-point divide (unpipelined on all modeled cores).
  FpSqrt,  ///< Floating-point square root (shares the divider).
  FpExp,   ///< Transcendental (exp/log/sin); lowered to a libm-like block.
  FpAbs,   ///< Floating-point absolute value / sign manipulation.
  IntAdd,  ///< Integer add/sub/logic.
  IntMul,  ///< Integer multiply.
  Load,    ///< Memory read.
  Store,   ///< Memory write.
  Compare, ///< Comparison (drives a select or branch).
  Branch,  ///< Loop back-edge or internal control flow.
  MoveReg, ///< Register move / shuffle / pack-unpack overhead.
};

/// Element precisions.
enum class Precision {
  SP,  ///< 32-bit float ("single precision" in the paper's tables).
  DP,  ///< 64-bit float ("double precision").
  I32, ///< 32-bit integer.
  I64, ///< 64-bit integer.
};

/// Coarse operation classes used for the vectorization-ratio features of
/// paper Table 2 ("Vectorization ratio for Multiplications (FP)",
/// "... Other (FP+INT)", "... Other (INT)", etc).
enum class OpClass {
  FpAddSub,
  FpMulClass,
  FpDivClass,
  OtherFp,  ///< abs, exp, compares on FP, moves of FP data.
  IntClass, ///< integer arithmetic.
  LoadClass,
  StoreClass,
  ControlClass,
};

/// Returns the byte width of one element of \p Prec.
unsigned bytesPerElement(Precision Prec);

/// Returns true for SP/DP.
bool isFloatingPoint(Precision Prec);

/// Returns true for kinds that perform floating-point arithmetic
/// (contributes to FLOP counts).
bool isFpArith(OpKind Kind);

/// Returns true for Load/Store.
bool isMemoryOp(OpKind Kind);

/// Maps an (kind, precision) pair onto its vectorization-ratio class.
OpClass classify(OpKind Kind, Precision Prec);

/// Printable names.
const char *opKindName(OpKind Kind);
const char *precisionName(Precision Prec);
const char *opClassName(OpClass Class);

/// One abstract instruction in a compiled loop body.
struct Inst {
  OpKind Kind;
  Precision Prec;
  /// Number of elements processed (1 = scalar; ISA vector width / element
  /// size when vectorized).
  unsigned VecElems = 1;
  /// True for loop-control overhead (induction, exit compare, back-edge):
  /// excluded from MAQAO-style vectorization ratios.
  bool LoopOverhead = false;

  bool isVector() const { return VecElems > 1; }

  /// Number of FP operations this instruction contributes per execution.
  unsigned flops() const { return isFpArith(Kind) ? VecElems : 0; }

  /// True if this is a scalar double-precision instruction ("SD", the
  /// MAQAO feature "Number of SD instructions").
  bool isScalarDouble() const {
    return Prec == Precision::DP && VecElems == 1 &&
           (isFpArith(Kind) || Kind == OpKind::MoveReg ||
            Kind == OpKind::Compare);
  }
};

/// Identifiers for abstract dispatch ports, modeled on the Intel P6-family
/// port layout the paper's machines share:
///   P0 - FP multiply / divide, P1 - FP add, P2/P3 - loads,
///   P4 - store data, P5 - integer ALU and branches.
enum class PortId : unsigned {
  P0 = 0,
  P1 = 1,
  P2 = 2,
  P3 = 3,
  P4 = 4,
  P5 = 5,
};

/// Number of modeled ports.
inline constexpr unsigned NumPorts = 6;

/// A set of ports an instruction may dispatch to, as a bitmask.
struct PortSet {
  unsigned Mask = 0;

  static PortSet of(std::initializer_list<PortId> Ports) {
    PortSet Set;
    for (PortId P : Ports)
      Set.Mask |= 1u << static_cast<unsigned>(P);
    return Set;
  }

  bool contains(PortId P) const {
    return (Mask >> static_cast<unsigned>(P)) & 1u;
  }

  unsigned count() const { return __builtin_popcount(Mask); }
};

/// Returns the dispatch ports \p Kind may use (identical across the
/// modeled cores; per-core differences are expressed through issue width
/// and latencies in fgbs/arch).
PortSet portsFor(OpKind Kind);

} // namespace fgbs

#endif // FGBS_ISA_ISA_H
