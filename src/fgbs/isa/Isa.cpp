//===- fgbs/isa/Isa.cpp - Abstract instruction vocabulary ----------------===//

#include "fgbs/isa/Isa.h"

#include <cassert>

using namespace fgbs;

unsigned fgbs::bytesPerElement(Precision Prec) {
  switch (Prec) {
  case Precision::SP:
  case Precision::I32:
    return 4;
  case Precision::DP:
  case Precision::I64:
    return 8;
  }
  assert(false && "unknown precision");
  return 0;
}

bool fgbs::isFloatingPoint(Precision Prec) {
  return Prec == Precision::SP || Prec == Precision::DP;
}

bool fgbs::isFpArith(OpKind Kind) {
  switch (Kind) {
  case OpKind::FpAdd:
  case OpKind::FpMul:
  case OpKind::FpDiv:
  case OpKind::FpSqrt:
  case OpKind::FpExp:
  case OpKind::FpAbs:
    return true;
  default:
    return false;
  }
}

bool fgbs::isMemoryOp(OpKind Kind) {
  return Kind == OpKind::Load || Kind == OpKind::Store;
}

OpClass fgbs::classify(OpKind Kind, Precision Prec) {
  switch (Kind) {
  case OpKind::FpAdd:
    return OpClass::FpAddSub;
  case OpKind::FpMul:
    return OpClass::FpMulClass;
  case OpKind::FpDiv:
  case OpKind::FpSqrt:
    return OpClass::FpDivClass;
  case OpKind::FpExp:
  case OpKind::FpAbs:
    return OpClass::OtherFp;
  case OpKind::IntAdd:
  case OpKind::IntMul:
    return OpClass::IntClass;
  case OpKind::Load:
    return OpClass::LoadClass;
  case OpKind::Store:
    return OpClass::StoreClass;
  case OpKind::Compare:
  case OpKind::MoveReg:
    return isFloatingPoint(Prec) ? OpClass::OtherFp : OpClass::IntClass;
  case OpKind::Branch:
    return OpClass::ControlClass;
  }
  assert(false && "unknown op kind");
  return OpClass::ControlClass;
}

const char *fgbs::opKindName(OpKind Kind) {
  switch (Kind) {
  case OpKind::FpAdd:
    return "fp.add";
  case OpKind::FpMul:
    return "fp.mul";
  case OpKind::FpDiv:
    return "fp.div";
  case OpKind::FpSqrt:
    return "fp.sqrt";
  case OpKind::FpExp:
    return "fp.exp";
  case OpKind::FpAbs:
    return "fp.abs";
  case OpKind::IntAdd:
    return "int.add";
  case OpKind::IntMul:
    return "int.mul";
  case OpKind::Load:
    return "load";
  case OpKind::Store:
    return "store";
  case OpKind::Compare:
    return "cmp";
  case OpKind::Branch:
    return "branch";
  case OpKind::MoveReg:
    return "mov";
  }
  assert(false && "unknown op kind");
  return "?";
}

const char *fgbs::precisionName(Precision Prec) {
  switch (Prec) {
  case Precision::SP:
    return "sp";
  case Precision::DP:
    return "dp";
  case Precision::I32:
    return "i32";
  case Precision::I64:
    return "i64";
  }
  assert(false && "unknown precision");
  return "?";
}

const char *fgbs::opClassName(OpClass Class) {
  switch (Class) {
  case OpClass::FpAddSub:
    return "fp-add-sub";
  case OpClass::FpMulClass:
    return "fp-mul";
  case OpClass::FpDivClass:
    return "fp-div";
  case OpClass::OtherFp:
    return "other-fp";
  case OpClass::IntClass:
    return "int";
  case OpClass::LoadClass:
    return "load";
  case OpClass::StoreClass:
    return "store";
  case OpClass::ControlClass:
    return "control";
  }
  assert(false && "unknown op class");
  return "?";
}

PortSet fgbs::portsFor(OpKind Kind) {
  switch (Kind) {
  case OpKind::FpMul:
  case OpKind::FpDiv:
  case OpKind::FpSqrt:
    return PortSet::of({PortId::P0});
  case OpKind::FpAdd:
  case OpKind::FpAbs:
    return PortSet::of({PortId::P1});
  case OpKind::FpExp:
    // Libm-style sequences occupy both FP pipes.
    return PortSet::of({PortId::P0, PortId::P1});
  case OpKind::Load:
    return PortSet::of({PortId::P2, PortId::P3});
  case OpKind::Store:
    return PortSet::of({PortId::P4});
  case OpKind::IntAdd:
  case OpKind::IntMul:
  case OpKind::Compare:
    return PortSet::of({PortId::P1, PortId::P5});
  case OpKind::Branch:
    return PortSet::of({PortId::P5});
  case OpKind::MoveReg:
    return PortSet::of({PortId::P0, PortId::P1, PortId::P5});
  }
  assert(false && "unknown op kind");
  return PortSet();
}
