//===- tests/worker_farm_test.cpp - distributed simulation farm -----------===//
//
// The work-distribution layer end to end: WorkQueue lease semantics,
// the jittered retry schedule, the fgbs.job.v1 / fgbs.part.v1 farm
// formats, the farm opcodes over a live server, and the headline
// fault-injection scenarios — a SIGKILLed worker whose claims requeue
// and complete exactly once on a survivor, and a coordinator restart
// that loses its in-memory queue and is re-taught by the enqueuer.
//
//===----------------------------------------------------------------------===//

#include "fgbs/arch/Machine.h"
#include "fgbs/core/FarmSpec.h"
#include "fgbs/core/FarmWorker.h"
#include "fgbs/core/MeasurementCache.h"
#include "fgbs/core/RemoteCacheBackend.h"
#include "fgbs/net/CacheServer.h"
#include "fgbs/net/WorkQueue.h"
#include "fgbs/obs/Metrics.h"
#include "fgbs/suites/Synthetic.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace fgbs;
namespace fs = std::filesystem;

namespace {

struct TempDir {
  fs::path Path;
  explicit TempDir(const std::string &Tag) {
    static std::atomic<unsigned> Serial{0};
    Path = fs::temp_directory_path() /
           ("fgbs_worker_farm_" + Tag + "_" +
            std::to_string(static_cast<long>(::getpid())) + "_" +
            std::to_string(Serial.fetch_add(1)));
    fs::remove_all(Path);
    fs::create_directories(Path);
  }
  ~TempDir() { fs::remove_all(Path); }
};

net::CacheServerConfig loopbackConfig(const TempDir &Dir, unsigned Shards) {
  net::CacheServerConfig Config;
  Config.Root = (Dir.Path / "server").string();
  Config.Shards = Shards;
  Config.Threads = 2;
  Config.BindAddr = "127.0.0.1";
  return Config;
}

RemoteCacheConfig clientConfig(const net::CacheServer &Server) {
  RemoteCacheConfig Config;
  Config.Host = "127.0.0.1";
  Config.Port = Server.port();
  return Config;
}

SyntheticConfig tinyConfig() {
  SyntheticConfig Cfg;
  Cfg.NumApplications = 1;
  Cfg.CodeletsPerApp = 3;
  Cfg.MinFootprintBytes = 64 << 10;
  Cfg.MaxFootprintBytes = 1 << 20;
  return Cfg;
}

/// Publishes the job blob and enqueues every item of the sweep — the
/// manual equivalent of the trainer's distribute loop, for tests that
/// drive workers directly.
std::size_t enqueueWholeSweep(RemoteCacheBackend &Backend, const Suite &S,
                              const Machine &Reference,
                              const std::vector<Machine> &Targets,
                              std::uint64_t Key) {
  const std::string JobName = farmJobEntryName(Key);
  if (!Backend.exists(JobName)) {
    EXPECT_TRUE(Backend.put(
        JobName, serializeFarmJob(S, Reference, Targets, {}, Key)));
  }
  const std::size_t Total =
      measurementItemCount(S.numCodelets(), Targets.size());
  for (std::size_t Item = 0; Item < Total; ++Item) {
    FarmWorkSpec Spec;
    Spec.JobEntry = JobName;
    Spec.Key = Key;
    Spec.Item = Item;
    Backend.enqueueWork(farmPartEntryName(Key, Item),
                        encodeFarmWorkSpec(Spec));
  }
  return Total;
}

std::size_t countParts(RemoteCacheBackend &Backend, std::uint64_t Key) {
  std::size_t Count = 0;
  for (const CacheEntry &E : Backend.scan(farmPartEntryPrefix(Key), ".v1")) {
    std::size_t Item = 0;
    if (parseFarmPartEntryName(E.Name, Key, Item))
      ++Count;
  }
  return Count;
}

} // namespace

//===----------------------------------------------------------------------===//
// Jittered retry backoff
//===----------------------------------------------------------------------===//

TEST(RetryBackoff, StaysInsideTheEqualJitterWindow) {
  const std::uint64_t Initial = 50, Max = 1000;
  for (std::uint64_t Seed : {1ull, 0xDEADBEEFull, 0x5EED5EED5EED5EEDull}) {
    for (unsigned Attempt = 0; Attempt < 16; ++Attempt) {
      std::uint64_t Base = Max;
      if (Attempt < 63 && (Max >> Attempt) >= Initial)
        Base = Initial << Attempt;
      const std::uint64_t V = retryBackoffMs(Attempt, Initial, Max, Seed);
      EXPECT_GE(V, Base - Base / 2) << "attempt " << Attempt;
      EXPECT_LE(V, Base) << "attempt " << Attempt;
    }
  }
}

TEST(RetryBackoff, DeterministicPerSeedDecorrelatedAcrossSeeds) {
  for (unsigned Attempt = 0; Attempt < 8; ++Attempt)
    EXPECT_EQ(retryBackoffMs(Attempt, 50, 1000, 42),
              retryBackoffMs(Attempt, 50, 1000, 42));
  // Two workers with different seeds must not share a schedule (the
  // whole point of the jitter): some attempt must differ.
  bool Differs = false;
  for (unsigned Attempt = 0; Attempt < 8 && !Differs; ++Attempt)
    Differs = retryBackoffMs(Attempt, 50, 1000, 1) !=
              retryBackoffMs(Attempt, 50, 1000, 2);
  EXPECT_TRUE(Differs);
}

TEST(RetryBackoff, NeverZeroAndSaturatesSanely) {
  EXPECT_GE(retryBackoffMs(0, 0, 0, 7), 1u);
  EXPECT_GE(retryBackoffMs(200, 50, 1000, 7), 500u); // huge attempt: capped
  EXPECT_LE(retryBackoffMs(200, 50, 1000, 7), 1000u);
  // Max below Initial: the cap lifts to Initial instead of underflowing.
  EXPECT_LE(retryBackoffMs(3, 100, 10, 7), 100u);
  EXPECT_GE(retryBackoffMs(3, 100, 10, 7), 50u);
}

//===----------------------------------------------------------------------===//
// WorkQueue lease machinery
//===----------------------------------------------------------------------===//

TEST(WorkQueueTest, FifoClaimsAreExclusive) {
  net::WorkQueue Q;
  EXPECT_EQ(Q.enqueue("a", "sa"), net::EnqueueStatus::Queued);
  EXPECT_EQ(Q.enqueue("b", "sb"), net::EnqueueStatus::Queued);
  EXPECT_EQ(Q.enqueue("c", "sc"), net::EnqueueStatus::Queued);
  EXPECT_EQ(Q.enqueue("a", "other"), net::EnqueueStatus::Duplicate);

  auto First = Q.claim(1, 1000, 2, 100);
  ASSERT_EQ(First.size(), 2u);
  EXPECT_EQ(First[0].Name, "a");
  EXPECT_EQ(First[0].Spec, "sa");
  EXPECT_EQ(First[1].Name, "b");
  auto Second = Q.claim(2, 1000, 8, 100);
  ASSERT_EQ(Second.size(), 1u);
  EXPECT_EQ(Second[0].Name, "c");
  EXPECT_TRUE(Q.claim(3, 1000, 8, 100).empty());
}

TEST(WorkQueueTest, ExpiredClaimRequeuesForTheNextWorker) {
  net::WorkQueue Q;
  Q.enqueue("a", "s");
  ASSERT_EQ(Q.claim(1, 500, 1, 1000).size(), 1u);
  // Still leased: nothing for anyone else.
  EXPECT_TRUE(Q.claim(2, 500, 1, 1400).empty());
  // Past the TTL: the dead worker's item flows to the survivor.
  auto Recovered = Q.claim(2, 500, 1, 1501);
  ASSERT_EQ(Recovered.size(), 1u);
  EXPECT_EQ(Recovered[0].Name, "a");
  EXPECT_EQ(Q.stats(1502).Requeued, 1u);
}

TEST(WorkQueueTest, HeartbeatExtendsTheLease) {
  net::WorkQueue Q;
  Q.enqueue("a", "s");
  ASSERT_EQ(Q.claim(1, 500, 1, 1000).size(), 1u);
  EXPECT_EQ(Q.heartbeat(1, {"a"}, 500, 1400), 1u); // now expires at 1900
  EXPECT_EQ(Q.heartbeat(2, {"a"}, 500, 1400), 0u); // wrong owner: no-op
  EXPECT_TRUE(Q.claim(2, 500, 1, 1800).empty());
  EXPECT_EQ(Q.claim(2, 500, 1, 1901).size(), 1u);
}

TEST(WorkQueueTest, CompleteAndAbandonEnforceOwnership) {
  net::WorkQueue Q;
  Q.enqueue("a", "s");
  ASSERT_EQ(Q.claim(1, 1000, 1, 0).size(), 1u);
  EXPECT_FALSE(Q.complete("a", 2)); // not the owner
  EXPECT_FALSE(Q.abandon("a", 2, 0));
  EXPECT_TRUE(Q.abandon("a", 1, 0)); // owner hands it back
  ASSERT_EQ(Q.claim(2, 1000, 1, 0).size(), 1u);
  EXPECT_TRUE(Q.complete("a", 2));
  EXPECT_FALSE(Q.complete("a", 2)); // already gone
  auto Stats = Q.stats(0);
  EXPECT_EQ(Stats.Completed, 1u);
  EXPECT_EQ(Stats.Requeued, 1u);
  EXPECT_EQ(Stats.Pending, 0u);
  EXPECT_EQ(Stats.Claimed, 0u);
}

TEST(WorkQueueTest, PoisonItemsDropAtTheAttemptsCap) {
  net::WorkQueue Q(/*MaxAttempts=*/2);
  Q.enqueue("a", "s");
  ASSERT_EQ(Q.claim(1, 100, 1, 0).size(), 1u);     // attempt 1
  ASSERT_EQ(Q.claim(2, 100, 1, 1000).size(), 1u);  // expired -> attempt 2
  EXPECT_TRUE(Q.claim(3, 100, 1, 2000).empty());   // expired again -> dropped
  EXPECT_EQ(Q.stats(2001).Dropped, 1u);
  // Dropped means forgotten: the enqueuer may hand it back fresh.
  EXPECT_EQ(Q.enqueue("a", "s"), net::EnqueueStatus::Queued);
}

//===----------------------------------------------------------------------===//
// fgbs.job.v1 / fgbs.part.v1 formats
//===----------------------------------------------------------------------===//

TEST(FarmSpecTest, EntryNamesRoundTrip) {
  const std::uint64_t Key = 0x0123456789abcdefull;
  EXPECT_EQ(farmJobEntryName(Key), "fgbs-job-0123456789abcdef.v1");
  const std::string Part = farmPartEntryName(Key, 0x2a);
  EXPECT_EQ(Part, "fgbs-part-0123456789abcdef-0000002a.v1");
  std::size_t Item = 0;
  EXPECT_TRUE(parseFarmPartEntryName(Part, Key, Item));
  EXPECT_EQ(Item, 0x2au);
  EXPECT_FALSE(parseFarmPartEntryName(Part, Key + 1, Item)); // other sweep
  EXPECT_FALSE(parseFarmPartEntryName("fgbs-part-0123456789abcdef-zzzzzzzz.v1",
                                      Key, Item));
  EXPECT_FALSE(parseFarmPartEntryName(farmJobEntryName(Key), Key, Item));
}

TEST(FarmSpecTest, WorkSpecRoundTripsAndRejectsDamage) {
  FarmWorkSpec In;
  In.JobEntry = "fgbs-job-0123456789abcdef.v1";
  In.Key = 0x0123456789abcdefull;
  In.Item = 7;
  const std::string Bytes = encodeFarmWorkSpec(In);
  FarmWorkSpec Out;
  ASSERT_TRUE(decodeFarmWorkSpec(Bytes, Out));
  EXPECT_EQ(Out.JobEntry, In.JobEntry);
  EXPECT_EQ(Out.Key, In.Key);
  EXPECT_EQ(Out.Item, In.Item);
  EXPECT_FALSE(decodeFarmWorkSpec(Bytes + "x", Out));            // trailing
  EXPECT_FALSE(decodeFarmWorkSpec(Bytes.substr(0, 10), Out));    // truncated
  EXPECT_FALSE(decodeFarmWorkSpec("", Out));
}

TEST(FarmSpecTest, JobBlobRoundTripsBitExactly) {
  const Suite S = makeSyntheticSuite(tinyConfig());
  const Machine Ref = makeNehalem();
  const std::vector<Machine> Targets = paperTargets();
  const std::uint64_t Key = measurementKey(S, Ref, Targets, {});

  const std::string Bytes = serializeFarmJob(S, Ref, Targets, {}, Key);
  FarmJob Job;
  std::string Message;
  ASSERT_EQ(parseFarmJob(Bytes, Job, &Message), FarmSpecError::None)
      << Message;
  EXPECT_EQ(Job.Key, Key);
  EXPECT_EQ(Job.S.numCodelets(), S.numCodelets());
  EXPECT_EQ(Job.Targets.size(), Targets.size());
  EXPECT_EQ(Job.itemCount(),
            measurementItemCount(S.numCodelets(), Targets.size()));
  // The reconstructed inputs serialize back to the identical bytes —
  // nothing is lost or reordered through the round trip.
  EXPECT_EQ(serializeFarmJob(Job.S, Job.Reference, Job.Targets, Job.Policy,
                             Job.Key),
            Bytes);
}

TEST(FarmSpecTest, JobBlobDamageIsTyped) {
  const Suite S = makeSyntheticSuite(tinyConfig());
  const Machine Ref = makeNehalem();
  const std::vector<Machine> Targets = {makeAtom()};
  const std::uint64_t Key = measurementKey(S, Ref, Targets, {});
  const std::string Clean = serializeFarmJob(S, Ref, Targets, {}, Key);

  FarmJob Job;
  std::string Flip = Clean;
  Flip[kFarmHeaderBytes + 3] ^= 0x40;
  EXPECT_EQ(parseFarmJob(Flip, Job), FarmSpecError::ChecksumMismatch);

  std::string Magic = Clean;
  Magic[0] = 'X';
  EXPECT_EQ(parseFarmJob(Magic, Job), FarmSpecError::BadMagic);

  EXPECT_EQ(parseFarmJob(std::string_view(Clean).substr(0, 20), Job),
            FarmSpecError::Truncated);
  EXPECT_EQ(parseFarmJob(std::string_view(Clean).substr(0, Clean.size() - 1),
                         Job),
            FarmSpecError::Truncated);

  // A blob whose inputs do not hash to its stored key is rejected even
  // with perfect framing — the farm's core integrity property.
  const std::string WrongKey = serializeFarmJob(S, Ref, Targets, {}, Key + 1);
  EXPECT_EQ(parseFarmJob(WrongKey, Job), FarmSpecError::KeyMismatch);
}

TEST(FarmSpecTest, PartBlobRoundTripsEveryKind) {
  const Suite S = makeSyntheticSuite(tinyConfig());
  const Machine Ref = makeNehalem();
  const std::vector<Machine> Targets = {makeAtom()};
  const std::vector<const Codelet *> Codelets = S.allCodelets();
  const std::uint64_t Key = measurementKey(S, Ref, Targets, {});
  const std::size_t Total = measurementItemCount(Codelets.size(), 1);

  for (std::size_t Item = 0; Item < Total; ++Item) {
    const MeasurementItem M = decodeMeasurementItem(Item, Codelets.size(), 1);
    const MeasurementItemResult R = executeMeasurementItem(
        *Codelets[M.Codelet], Ref, Targets, {}, M, nullptr);
    const std::string Bytes = serializeFarmPart(Key, Item, R);

    MeasurementItemResult Out;
    std::string Message;
    ASSERT_EQ(parseFarmPart(Bytes, Key, Item, Out, &Message),
              FarmSpecError::None)
        << "item " << Item << ": " << Message;
    ASSERT_EQ(Out.Kind, M.Kind);
    // Re-serializing the parsed result must reproduce the bytes — the
    // idempotence the farm's duplicate-completion safety rests on.
    EXPECT_EQ(serializeFarmPart(Key, Item, Out), Bytes) << "item " << Item;

    MeasurementItemResult Reject;
    EXPECT_EQ(parseFarmPart(Bytes, Key, Item + 1, Reject),
              FarmSpecError::KeyMismatch);
    EXPECT_EQ(parseFarmPart(Bytes, Key + 1, Item, Reject),
              FarmSpecError::KeyMismatch);
    std::string Flip = Bytes;
    Flip[Flip.size() - 1] ^= 0x01;
    EXPECT_EQ(parseFarmPart(Flip, Key, Item, Reject),
              FarmSpecError::ChecksumMismatch);
  }
}

//===----------------------------------------------------------------------===//
// Farm opcodes over a live server
//===----------------------------------------------------------------------===//

TEST(FarmOpcodes, EnqueueClaimHeartbeatCompleteRoundTrip) {
  TempDir Dir("opcodes");
  net::CacheServer Server(loopbackConfig(Dir, 2));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;
  RemoteCacheBackend Backend(clientConfig(Server));

  const std::string Name = "fgbs-part-0123456789abcdef-00000001.v1";
  net::EnqueueStatus Status;
  ASSERT_TRUE(Backend.enqueueWork(Name, "the spec", &Status));
  EXPECT_EQ(Status, net::EnqueueStatus::Queued);
  ASSERT_TRUE(Backend.enqueueWork(Name, "the spec", &Status));
  EXPECT_EQ(Status, net::EnqueueStatus::Duplicate);

  std::vector<net::ClaimedWork> Batch;
  ASSERT_TRUE(Backend.claimWork(0xAB, 30000, 4, Batch));
  ASSERT_EQ(Batch.size(), 1u);
  EXPECT_EQ(Batch[0].Name, Name);
  EXPECT_EQ(Batch[0].Spec, "the spec");

  std::uint32_t Renewed = 0;
  ASSERT_TRUE(Backend.heartbeatWork(0xAB, 30000, {Name}, &Renewed));
  EXPECT_EQ(Renewed, 1u);
  EXPECT_FALSE(Backend.completeWork(Name, 0xCD)); // not the owner
  EXPECT_TRUE(Backend.completeWork(Name, 0xAB));

  RemoteCacheStats Stats;
  ASSERT_TRUE(Backend.statsRemote(Stats));
  EXPECT_EQ(Stats.FarmEnqueued, 1u);
  EXPECT_EQ(Stats.FarmClaimed, 1u);
  EXPECT_EQ(Stats.FarmCompleted, 1u);
  EXPECT_EQ(Stats.FarmHeartbeats, 1u);
  EXPECT_EQ(Stats.QueuePending, 0u);
  EXPECT_EQ(Stats.QueueClaimed, 0u);
  Server.stop();
}

TEST(FarmOpcodes, EnqueueOfPublishedResultShortCircuits) {
  TempDir Dir("published");
  net::CacheServer Server(loopbackConfig(Dir, 2));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;
  RemoteCacheBackend Backend(clientConfig(Server));

  const std::string Name = "fgbs-part-0123456789abcdef-00000002.v1";
  ASSERT_TRUE(Backend.put(Name, "already computed"));
  net::EnqueueStatus Status;
  ASSERT_TRUE(Backend.enqueueWork(Name, "spec", &Status));
  EXPECT_EQ(Status, net::EnqueueStatus::AlreadyPublished);
  std::vector<net::ClaimedWork> Batch;
  ASSERT_TRUE(Backend.claimWork(0xAB, 30000, 4, Batch));
  EXPECT_TRUE(Batch.empty());
  Server.stop();
}

TEST(FarmOpcodes, AbandonRequeuesOverTheWire) {
  TempDir Dir("abandon");
  net::CacheServer Server(loopbackConfig(Dir, 2));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;
  RemoteCacheBackend Backend(clientConfig(Server));

  const std::string Name = "fgbs-part-0123456789abcdef-00000003.v1";
  ASSERT_TRUE(Backend.enqueueWork(Name, "spec"));
  std::vector<net::ClaimedWork> Batch;
  ASSERT_TRUE(Backend.claimWork(0xAB, 30000, 1, Batch));
  ASSERT_EQ(Batch.size(), 1u);
  EXPECT_TRUE(Backend.abandonWork(Name, 0xAB));
  // Immediately claimable by someone else — no TTL wait for a polite
  // decline.
  Batch.clear();
  ASSERT_TRUE(Backend.claimWork(0xCD, 30000, 1, Batch));
  ASSERT_EQ(Batch.size(), 1u);
  RemoteCacheStats Stats;
  ASSERT_TRUE(Backend.statsRemote(Stats));
  EXPECT_EQ(Stats.FarmRequeued, 1u);
  Server.stop();
}

TEST(FarmOpcodes, StatsReportsShardFootprintAndCounters) {
  TempDir Dir("stats");
  net::CacheServer Server(loopbackConfig(Dir, 3));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;
  RemoteCacheBackend Backend(clientConfig(Server));

  ASSERT_TRUE(Backend.put("fgbs-meas-0000000000000001.v1", "0123456789"));
  ASSERT_TRUE(Backend.put("fgbs-meas-0000000100000000.v1", "01234"));
  // Hit/miss accounting is Get-only (Exists probes are free).
  std::string Bytes;
  EXPECT_TRUE(Backend.get("fgbs-meas-0000000000000001.v1", Bytes));  // hit
  EXPECT_FALSE(Backend.get("fgbs-meas-00000000000000ff.v1", Bytes)); // miss
  EXPECT_TRUE(Backend.exists("fgbs-meas-0000000000000001.v1"));
  EXPECT_FALSE(Backend.exists("fgbs-meas-00000000000000ff.v1"));

  RemoteCacheStats Stats;
  ASSERT_TRUE(Backend.statsRemote(Stats));
  ASSERT_EQ(Stats.Shards.size(), 3u);
  std::uint64_t Entries = 0, Footprint = 0;
  for (const RemoteShardStats &Shard : Stats.Shards) {
    Entries += Shard.Entries;
    Footprint += Shard.Bytes;
  }
  EXPECT_EQ(Entries, 2u);
  EXPECT_EQ(Footprint, 15u);
  EXPECT_EQ(Stats.Hits, 1u);
  EXPECT_EQ(Stats.Misses, 1u);
  Server.stop();
}

//===----------------------------------------------------------------------===//
// End to end: distribute-mode build over embedded workers
//===----------------------------------------------------------------------===//

TEST(DistributedFarm, BuildConvergesAndMatchesLocalSimulationByteForByte) {
  const Suite S = makeSyntheticSuite(tinyConfig());
  const Machine Ref = makeNehalem();
  const std::vector<Machine> Targets = {makeAtom()};
  const std::uint64_t Key = measurementKey(S, Ref, Targets, {});
  const std::size_t Total = measurementItemCount(S.numCodelets(), 1);

  TempDir Dir("e2e");
  net::CacheServer Server(loopbackConfig(Dir, 4));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;

  std::atomic<bool> StopWorkers{false};
  std::vector<std::thread> Workers;
  for (int I = 0; I < 2; ++I)
    Workers.emplace_back([&] {
      WorkerConfig Config;
      Config.Remote = clientConfig(Server);
      Config.PollMs = 25;
      Config.Stop = &StopWorkers;
      runWorkerLoop(Config);
    });

  obs::MetricsRegistry::global().reset();
  obs::setEnabled(true);
  DatabaseBuildOptions Build;
  Build.Threads = 2;
  Build.CacheRemote = "127.0.0.1:" + std::to_string(Server.port());
  Build.Distribute = true;
  Build.DistributeWaitMs = 60000;
  Build.DistributePollMs = 25;
  auto FarmDb = buildMeasurementDatabase(S, Ref, Targets, Build);
  ASSERT_NE(FarmDb, nullptr);
  EXPECT_EQ(obs::counterTotal("farm.parts_assembled"), Total);
  EXPECT_EQ(obs::counterTotal("farm.worker.executed"), Total);
  EXPECT_EQ(obs::counterTotal("db.cache.stores"), 1u);
  const std::uint64_t FarmSimExecute = obs::counterTotal("sim.execute");

  StopWorkers.store(true);
  for (std::thread &T : Workers)
    T.join();

  // The reference: the classic in-process sweep.  Exactly-once is the
  // equality of the two sim.execute totals — the farm run (trainer +
  // both workers live in this process) simulated precisely what one
  // local build simulates, nothing twice, nothing extra.
  obs::MetricsRegistry::global().reset();
  DatabaseOptions LocalOptions;
  LocalOptions.Threads = 2;
  MeasurementDatabase LocalDb(S, Ref, Targets, {}, LocalOptions);
  EXPECT_EQ(FarmSimExecute, obs::counterTotal("sim.execute"));

  EXPECT_EQ(serializeMeasurements(*FarmDb, Key),
            serializeMeasurements(LocalDb, Key));

  // And the farm build published the whole-database entry: a second
  // (non-distribute) run is a pure cache hit.
  obs::MetricsRegistry::global().reset();
  DatabaseBuildOptions Warm;
  Warm.Threads = 2;
  Warm.CacheRemote = Build.CacheRemote;
  auto WarmDb = buildMeasurementDatabase(S, Ref, Targets, Warm);
  ASSERT_NE(WarmDb, nullptr);
  EXPECT_EQ(obs::counterTotal("sim.execute"), 0u);
  EXPECT_EQ(obs::counterTotal("db.cache.hits"), 1u);
  obs::setEnabled(false);
  Server.stop();
}

TEST(DistributedFarm, WorkerlessFarmFallsBackToLocalSimulation) {
  const Suite S = makeSyntheticSuite(tinyConfig());
  const Machine Ref = makeNehalem();
  const std::vector<Machine> Targets = {makeAtom()};
  const std::uint64_t Key = measurementKey(S, Ref, Targets, {});

  TempDir Dir("fallback");
  net::CacheServer Server(loopbackConfig(Dir, 2));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;

  DatabaseBuildOptions Build;
  Build.Threads = 2;
  Build.CacheRemote = "127.0.0.1:" + std::to_string(Server.port());
  Build.Distribute = true;
  Build.DistributeWaitMs = 300; // nobody is coming
  Build.DistributePollMs = 25;
  auto Db = buildMeasurementDatabase(S, Ref, Targets, Build);
  ASSERT_NE(Db, nullptr);

  DatabaseOptions LocalOptions;
  LocalOptions.Threads = 2;
  MeasurementDatabase LocalDb(S, Ref, Targets, {}, LocalOptions);
  EXPECT_EQ(serializeMeasurements(*Db, Key),
            serializeMeasurements(LocalDb, Key));
  Server.stop();
}

//===----------------------------------------------------------------------===//
// Fault injection
//===----------------------------------------------------------------------===//

namespace {

/// Forks a child running one worker loop against \p Port; the child's
/// exit code is its executed-item count.
pid_t forkWorker(std::uint16_t Port, std::uint64_t LeaseTtlMs,
                 std::uint64_t PostClaimDelayMs, std::uint64_t IdleExitMs) {
  pid_t Pid = ::fork();
  if (Pid != 0)
    return Pid;
  WorkerConfig Config;
  Config.Remote.Host = "127.0.0.1";
  Config.Remote.Port = Port;
  Config.LeaseTtlMs = LeaseTtlMs;
  Config.ClaimBatch = 4;
  Config.PollMs = 25;
  Config.PostClaimDelayMs = PostClaimDelayMs;
  Config.IdleExitMs = IdleExitMs;
  WorkerStats Stats = runWorkerLoop(Config);
  ::_exit(static_cast<int>(
      Stats.Executed < 200 ? Stats.Executed : 200));
}

} // namespace

TEST(WorkerFarmFaultInjection, SigkilledWorkerItemsRequeueAndCompleteOnce) {
  const Suite S = makeSyntheticSuite(tinyConfig());
  const Machine Ref = makeNehalem();
  const std::vector<Machine> Targets = {makeAtom()};
  const std::uint64_t Key = measurementKey(S, Ref, Targets, {});

  TempDir Dir("sigkill");
  net::CacheServer Server(loopbackConfig(Dir, 2));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;
  RemoteCacheBackend Backend(clientConfig(Server));
  const std::size_t Total = enqueueWholeSweep(Backend, S, Ref, Targets, Key);
  ASSERT_EQ(Total, 12u);

  // The victim claims a batch, then stalls inside the post-claim test
  // hook holding live leases — the exact window a real worker dies in.
  const pid_t Victim = forkWorker(Server.port(), /*LeaseTtlMs=*/1000,
                                  /*PostClaimDelayMs=*/600000,
                                  /*IdleExitMs=*/0);
  ASSERT_GT(Victim, 0);
  RemoteCacheStats Stats;
  const auto ClaimDeadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  do {
    ASSERT_LT(std::chrono::steady_clock::now(), ClaimDeadline)
        << "victim never claimed";
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(Backend.statsRemote(Stats));
  } while (Stats.QueueClaimed == 0);

  ASSERT_EQ(::kill(Victim, SIGKILL), 0);
  int VictimStatus = 0;
  ASSERT_EQ(::waitpid(Victim, &VictimStatus, 0), Victim);
  ASSERT_TRUE(WIFSIGNALED(VictimStatus));
  EXPECT_EQ(WTERMSIG(VictimStatus), SIGKILL);

  // The survivor drains the queue, picking up the victim's items once
  // their 1 s leases lapse; it exits after 3 s of empty queue.
  const pid_t Survivor = forkWorker(Server.port(), /*LeaseTtlMs=*/1000,
                                    /*PostClaimDelayMs=*/0,
                                    /*IdleExitMs=*/3000);
  ASSERT_GT(Survivor, 0);
  int SurvivorStatus = 0;
  ASSERT_EQ(::waitpid(Survivor, &SurvivorStatus, 0), Survivor);
  ASSERT_TRUE(WIFEXITED(SurvivorStatus));
  // Exactly once fleet-wide: the victim executed nothing (killed inside
  // the pre-work window), so the survivor executed every item.
  EXPECT_EQ(WEXITSTATUS(SurvivorStatus), static_cast<int>(Total));

  EXPECT_EQ(countParts(Backend, Key), Total);
  ASSERT_TRUE(Backend.statsRemote(Stats));
  EXPECT_GE(Stats.FarmRequeued, 1u) << "the victim's leases never lapsed";
  EXPECT_EQ(Stats.FarmCompleted, Total);
  EXPECT_EQ(Stats.QueuePending, 0u);
  EXPECT_EQ(Stats.QueueClaimed, 0u);
  Server.stop();
}

TEST(WorkerFarmFaultInjection, CoordinatorRestartIsHealedByReEnqueue) {
  const Suite S = makeSyntheticSuite(tinyConfig());
  const Machine Ref = makeNehalem();
  const std::vector<Machine> Targets = {makeAtom()};
  const std::uint64_t Key = measurementKey(S, Ref, Targets, {});

  TempDir Dir("restart");
  std::size_t Total = 0;
  {
    net::CacheServer First(loopbackConfig(Dir, 2));
    std::string Error;
    ASSERT_TRUE(First.start(&Error)) << Error;
    RemoteCacheBackend Backend(clientConfig(First));
    Total = enqueueWholeSweep(Backend, S, Ref, Targets, Key);
    RemoteCacheStats Stats;
    ASSERT_TRUE(Backend.statsRemote(Stats));
    EXPECT_EQ(Stats.QueuePending, Total);
    First.stop(); // takes the in-memory queue with it
  }

  net::CacheServer Second(loopbackConfig(Dir, 2));
  std::string Error;
  ASSERT_TRUE(Second.start(&Error)) << Error;
  RemoteCacheBackend Backend(clientConfig(Second));

  // The queue is gone; the on-disk entries (job blob) survived.
  RemoteCacheStats Stats;
  ASSERT_TRUE(Backend.statsRemote(Stats));
  EXPECT_EQ(Stats.QueuePending, 0u);
  EXPECT_TRUE(Backend.exists(farmJobEntryName(Key)));

  // The enqueuer's poll loop re-teaches the restarted coordinator...
  EXPECT_EQ(enqueueWholeSweep(Backend, S, Ref, Targets, Key), Total);
  ASSERT_TRUE(Backend.statsRemote(Stats));
  EXPECT_EQ(Stats.QueuePending, Total);

  // ...and a worker converges the farm as if nothing happened.
  std::atomic<bool> StopWorker{false};
  std::thread Worker([&] {
    WorkerConfig Config;
    Config.Remote = clientConfig(Second);
    Config.PollMs = 25;
    Config.Stop = &StopWorker;
    runWorkerLoop(Config);
  });
  const auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (countParts(Backend, Key) < Total) {
    ASSERT_LT(std::chrono::steady_clock::now(), Deadline)
        << "farm never converged after the restart";
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  StopWorker.store(true);
  Worker.join();

  // Re-enqueueing a finished item short-circuits: the server sees the
  // published part and never queues it again.
  net::EnqueueStatus Status;
  FarmWorkSpec Spec;
  Spec.JobEntry = farmJobEntryName(Key);
  Spec.Key = Key;
  Spec.Item = 0;
  ASSERT_TRUE(Backend.enqueueWork(farmPartEntryName(Key, 0),
                                  encodeFarmWorkSpec(Spec), &Status));
  EXPECT_EQ(Status, net::EnqueueStatus::AlreadyPublished);
  Second.stop();
}
