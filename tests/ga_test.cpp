//===- tests/ga_test.cpp - Genetic algorithm --------------- --------------===//

#include "fgbs/ga/GeneticAlgorithm.h"

#include <gtest/gtest.h>

#include <set>

using namespace fgbs;

namespace {

/// OneMax (minimized): number of zero bits.  Optimum is the all-ones
/// chromosome with fitness 0.
double oneMax(const Chromosome &C) {
  double Zeros = 0.0;
  for (bool Bit : C)
    Zeros += !Bit;
  return Zeros;
}

GaConfig smallConfig() {
  GaConfig Cfg;
  Cfg.ChromosomeLength = 32;
  Cfg.PopulationSize = 60;
  Cfg.Generations = 60;
  Cfg.MutationProbability = 0.01;
  Cfg.Seed = 7;
  return Cfg;
}

} // namespace

TEST(Ga, SolvesOneMax) {
  GaResult R = runGa(smallConfig(), oneMax);
  EXPECT_LE(R.BestFitness, 1.0); // At most one bit short of optimal.
  EXPECT_EQ(R.Best.size(), 32u);
}

TEST(Ga, DeterministicBySeed) {
  GaResult A = runGa(smallConfig(), oneMax);
  GaResult B = runGa(smallConfig(), oneMax);
  EXPECT_EQ(A.Best, B.Best);
  EXPECT_DOUBLE_EQ(A.BestFitness, B.BestFitness);
  EXPECT_EQ(A.BestHistory, B.BestHistory);
}

TEST(Ga, DifferentSeedsExploreDifferently) {
  GaConfig Cfg = smallConfig();
  GaResult A = runGa(Cfg, oneMax);
  Cfg.Seed = 999;
  GaResult B = runGa(Cfg, oneMax);
  // Both near-optimal, but the paths differ.
  EXPECT_NE(A.BestHistory, B.BestHistory);
}

TEST(Ga, BestNeverWorsens) {
  GaResult R = runGa(smallConfig(), oneMax);
  for (std::size_t I = 1; I < R.BestHistory.size(); ++I)
    EXPECT_LE(R.BestHistory[I], R.BestHistory[I - 1]);
}

TEST(Ga, HistoryLengthMatchesGenerations) {
  GaConfig Cfg = smallConfig();
  Cfg.Generations = 25;
  GaResult R = runGa(Cfg, oneMax);
  EXPECT_EQ(R.BestHistory.size(), 25u);
  EXPECT_LT(R.ConvergedAtGeneration, 25u);
}

TEST(Ga, CachingReducesEvaluations) {
  GaConfig Cached = smallConfig();
  GaConfig Uncached = smallConfig();
  Uncached.CacheFitness = false;
  GaResult A = runGa(Cached, oneMax);
  GaResult B = runGa(Uncached, oneMax);
  EXPECT_LT(A.Evaluations, B.Evaluations);
  // Uncached evaluates every individual every generation.
  EXPECT_EQ(B.Evaluations, 60ull * 60ull);
  // Caching must not change the outcome.
  EXPECT_EQ(A.Best, B.Best);
}

TEST(Ga, RespectsChromosomeLength) {
  GaConfig Cfg = smallConfig();
  Cfg.ChromosomeLength = 5;
  GaResult R = runGa(Cfg, oneMax);
  EXPECT_EQ(R.Best.size(), 5u);
  EXPECT_DOUBLE_EQ(R.BestFitness, 0.0); // Trivial to solve.
}

TEST(Ga, MinimizesNotMaximizes) {
  // Fitness = number of ONE bits; the GA should drive toward all-zero.
  GaResult R = runGa(smallConfig(), [](const Chromosome &C) {
    double Ones = 0.0;
    for (bool Bit : C)
      Ones += Bit;
    return Ones;
  });
  EXPECT_LE(R.BestFitness, 1.0);
}

TEST(Ga, ThreadCountDoesNotChangeResults) {
  // The generation-parallel fitness fan-out must be invisible in the
  // output: Threads=4 equals the strictly serial Threads=1 run exactly.
  GaConfig Serial = smallConfig();
  Serial.Threads = 1;
  GaConfig Parallel = smallConfig();
  Parallel.Threads = 4;
  GaResult A = runGa(Serial, oneMax);
  GaResult B = runGa(Parallel, oneMax);
  EXPECT_EQ(A.Best, B.Best);
  EXPECT_DOUBLE_EQ(A.BestFitness, B.BestFitness);
  EXPECT_EQ(A.BestHistory, B.BestHistory);
  EXPECT_EQ(A.Evaluations, B.Evaluations);
  EXPECT_EQ(A.ConvergedAtGeneration, B.ConvergedAtGeneration);
}

TEST(Ga, ThreadCountDoesNotChangeResultsUncached) {
  GaConfig Serial = smallConfig();
  Serial.Threads = 1;
  Serial.CacheFitness = false;
  GaConfig Parallel = Serial;
  Parallel.Threads = 4;
  GaResult A = runGa(Serial, oneMax);
  GaResult B = runGa(Parallel, oneMax);
  EXPECT_EQ(A.Best, B.Best);
  EXPECT_EQ(A.BestHistory, B.BestHistory);
  EXPECT_EQ(A.Evaluations, B.Evaluations);
}

TEST(ChromosomeHash, AdjacentBitSwapsDiffer) {
  // The old additive mixing (bit + (index << 1)) collided whenever two
  // adjacent bits swapped values.  The packed-word hash must not.
  for (std::size_t Length : {8u, 64u, 65u, 76u, 128u}) {
    Chromosome Base(Length, false);
    for (std::size_t I = 0; I + 1 < Length; ++I) {
      Chromosome A = Base;
      Chromosome B = Base;
      A[I] = true;     // ...10...
      B[I + 1] = true; // ...01...
      EXPECT_NE(hashChromosome(A), hashChromosome(B))
          << "length " << Length << " position " << I;
    }
  }
}

TEST(ChromosomeHash, SmokeNoCollisionsOverSmallSpace) {
  // All 2^14 chromosomes of length 14 must hash distinctly (a 64-bit
  // hash colliding in a 16k set means the mixing is broken).
  std::set<std::uint64_t> Seen;
  for (unsigned Bits = 0; Bits < (1u << 14); ++Bits) {
    Chromosome C(14);
    for (std::size_t I = 0; I < 14; ++I)
      C[I] = (Bits >> I) & 1u;
    Seen.insert(hashChromosome(C));
  }
  EXPECT_EQ(Seen.size(), 1u << 14);
}

TEST(ChromosomeHash, LengthIsPartOfTheHash) {
  Chromosome Short(64, false);
  Chromosome Long(65, false);
  EXPECT_NE(hashChromosome(Short), hashChromosome(Long));
}

TEST(Ga, PenalizedEmptySelectionAvoided) {
  // Feature-selection-style fitness: empty chromosomes are infeasible.
  GaResult R = runGa(smallConfig(), [](const Chromosome &C) {
    double Count = 0.0;
    for (bool Bit : C)
      Count += Bit;
    if (Count == 0.0)
      return 1e9;
    return Count; // Prefer FEW features, but not zero.
  });
  double Count = 0.0;
  for (bool Bit : R.Best)
    Count += Bit;
  EXPECT_EQ(Count, 1.0);
}
