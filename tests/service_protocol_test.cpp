//===- tests/service_protocol_test.cpp - LDJSON query protocol ------------===//

#include "fgbs/service/Protocol.h"

#include "fgbs/suites/Suites.h"
#include "fgbs/suites/Synthetic.h"

#include <gtest/gtest.h>

#include <limits>

using namespace fgbs;
using namespace fgbs::service;

namespace {

//===----------------------------------------------------------------------===//
// A small deterministic model served once per suite
//===----------------------------------------------------------------------===//

class ProtocolTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    TheSuite = new Suite(makeSyntheticSuite({}));
    Db = new MeasurementDatabase(*TheSuite, makeNehalem(), paperTargets());
    Result = new PipelineResult(Pipeline(*Db, PipelineConfig()).run());
    Svc = new SelectionService(buildSnapshot(*Db, *Result));
    Engine = new QueryEngine(*Svc);
  }
  static void TearDownTestSuite() {
    delete Engine;
    delete Svc;
    delete Result;
    delete Db;
    delete TheSuite;
    Engine = nullptr;
    Svc = nullptr;
    Result = nullptr;
    Db = nullptr;
    TheSuite = nullptr;
  }

  /// A well-formed request for kept codelet \p I, with op and optional
  /// ref_seconds filled by the caller.
  static obs::JsonValue requestFor(std::size_t I, const char *Op,
                                   bool WithRef) {
    const CodeletProfile &P = Db->profile(Result->Kept[I]);
    obs::JsonValue R = obs::JsonValue::object();
    R.set("op", obs::JsonValue(Op));
    obs::JsonValue Features = obs::JsonValue::array();
    for (double V : P.Features)
      Features.push(obs::JsonValue(V));
    R.set("features", std::move(Features));
    if (WithRef)
      R.set("ref_seconds", obs::JsonValue(P.InApp.MeasuredSeconds));
    return R;
  }

  static Suite *TheSuite;
  static MeasurementDatabase *Db;
  static PipelineResult *Result;
  static SelectionService *Svc;
  static QueryEngine *Engine;
};

Suite *ProtocolTest::TheSuite = nullptr;
MeasurementDatabase *ProtocolTest::Db = nullptr;
PipelineResult *ProtocolTest::Result = nullptr;
SelectionService *ProtocolTest::Svc = nullptr;
QueryEngine *ProtocolTest::Engine = nullptr;

bool okOf(const obs::JsonValue &R) {
  const obs::JsonValue *Ok = R.find("ok");
  return Ok && Ok->kind() == obs::JsonValue::Kind::Bool && Ok->boolean();
}

std::string errorOf(const obs::JsonValue &R) {
  const obs::JsonValue *E = R.find("error");
  return E && E->kind() == obs::JsonValue::Kind::String ? E->string() : "";
}

} // namespace

//===----------------------------------------------------------------------===//
// Happy paths
//===----------------------------------------------------------------------===//

TEST_F(ProtocolTest, InfoDescribesTheModel) {
  obs::JsonValue Request = obs::JsonValue::object();
  Request.set("op", obs::JsonValue("info"));
  obs::JsonValue R = Engine->handle(Request);
  ASSERT_TRUE(okOf(R));
  EXPECT_EQ(R.find("schema")->string(), "fgbs.model.v1");
  EXPECT_EQ(R.find("suite")->string(), Svc->model().SuiteName);
  EXPECT_EQ(R.find("reference")->string(), Svc->model().ReferenceName);
  EXPECT_EQ(R.find("features")->number(),
            static_cast<double>(Svc->model().numFeatures()));
  EXPECT_EQ(R.find("clusters")->number(),
            static_cast<double>(Svc->model().numClusters()));
  ASSERT_EQ(R.find("targets")->elements().size(), Svc->model().numTargets());
}

TEST_F(ProtocolTest, ClassifyMatchesTheServiceApi) {
  for (std::size_t I = 0; I < Result->Kept.size(); ++I) {
    obs::JsonValue R = Engine->handle(requestFor(I, "classify", false));
    ASSERT_TRUE(okOf(R));
    ClassifyResult C = Svc->classify(Db->profile(Result->Kept[I]).Features);
    EXPECT_EQ(R.find("cluster")->number(), static_cast<double>(C.Cluster));
    EXPECT_EQ(R.find("representative_name")->string(), C.RepresentativeName);
    EXPECT_DOUBLE_EQ(R.find("distance")->number(), C.Distance);
  }
}

TEST_F(ProtocolTest, PredictCarriesPerTargetTimes) {
  obs::JsonValue R = Engine->handle(requestFor(0, "predict", true));
  ASSERT_TRUE(okOf(R));

  QueryRequest Q;
  Q.Features = Db->profile(Result->Kept[0]).Features;
  Q.ReferenceSeconds = Db->profile(Result->Kept[0]).InApp.MeasuredSeconds;
  PredictResult P = Svc->predictTimes(Q);

  const obs::JsonValue *Predicted = R.find("predicted_seconds");
  const obs::JsonValue *Speedups = R.find("speedups");
  ASSERT_NE(Predicted, nullptr);
  ASSERT_NE(Speedups, nullptr);
  for (std::size_t T = 0; T < Svc->model().numTargets(); ++T) {
    const std::string &Name = Svc->model().Targets[T].MachineName;
    ASSERT_NE(Predicted->find(Name), nullptr) << Name;
    EXPECT_DOUBLE_EQ(Predicted->find(Name)->number(), P.PredictedSeconds[T]);
    EXPECT_DOUBLE_EQ(Speedups->find(Name)->number(), P.Speedups[T]);
  }
}

TEST_F(ProtocolTest, RankReturnsBestFirst) {
  obs::JsonValue Request = obs::JsonValue::object();
  Request.set("op", obs::JsonValue("rank"));
  obs::JsonValue Queries = obs::JsonValue::array();
  for (std::size_t I = 0; I < Result->Kept.size(); ++I) {
    obs::JsonValue Q = requestFor(I, "rank", true);
    Q.set("op", obs::JsonValue()); // harmless extra member
    Queries.push(std::move(Q));
  }
  Request.set("queries", std::move(Queries));

  obs::JsonValue R = Engine->handle(Request);
  ASSERT_TRUE(okOf(R));
  const obs::JsonValue *Rows = R.find("ranking");
  ASSERT_NE(Rows, nullptr);
  ASSERT_EQ(Rows->elements().size(), Svc->model().numTargets());
  EXPECT_EQ(R.find("best")->string(),
            Rows->elements().front().find("machine")->string());
  for (std::size_t I = 1; I < Rows->elements().size(); ++I)
    EXPECT_GE(Rows->elements()[I - 1].find("geomean_speedup")->number(),
              Rows->elements()[I].find("geomean_speedup")->number());
}

TEST_F(ProtocolTest, HandleLineRoundTripsThroughText) {
  std::string Response = Engine->handleLine("{\"op\":\"info\"}");
  std::optional<obs::JsonValue> Parsed = obs::parseJson(Response);
  ASSERT_TRUE(Parsed.has_value());
  EXPECT_TRUE(okOf(*Parsed));

  // writeJson emits sorted keys and shortest-round-trip numbers, so the
  // same request always yields byte-identical responses — the property
  // the CI golden-file test leans on.
  EXPECT_EQ(Response, Engine->handleLine("{\"op\":\"info\"}"));
}

//===----------------------------------------------------------------------===//
// Error paths: every malformed request gets a typed, structured answer
//===----------------------------------------------------------------------===//

TEST_F(ProtocolTest, MalformedRequestsGetTypedErrors) {
  // Not JSON at all.
  obs::JsonValue R = *obs::parseJson(Engine->handleLine("not json"));
  EXPECT_FALSE(okOf(R));
  EXPECT_EQ(errorOf(R), "bad_json");

  // Not an object.
  R = *obs::parseJson(Engine->handleLine("[1,2,3]"));
  EXPECT_EQ(errorOf(R), "bad_request");

  // Missing op.
  R = *obs::parseJson(Engine->handleLine("{}"));
  EXPECT_EQ(errorOf(R), "bad_request");

  // Unknown op.
  R = *obs::parseJson(Engine->handleLine("{\"op\":\"selfdestruct\"}"));
  EXPECT_EQ(errorOf(R), "unknown_op");

  // classify without features.
  R = *obs::parseJson(Engine->handleLine("{\"op\":\"classify\"}"));
  EXPECT_EQ(errorOf(R), "bad_request");

  // classify with the wrong arity.
  R = *obs::parseJson(
      Engine->handleLine("{\"op\":\"classify\",\"features\":[1,2,3]}"));
  EXPECT_EQ(errorOf(R), "bad_request");
  EXPECT_NE(R.find("message")->string().find("76"), std::string::npos);

  // predict with features but a bad ref_seconds.
  obs::JsonValue Bad = requestFor(0, "predict", false);
  Bad.set("ref_seconds", obs::JsonValue(-1.0));
  R = Engine->handle(Bad);
  EXPECT_EQ(errorOf(R), "bad_request");

  // rank with an empty queries array.
  R = *obs::parseJson(Engine->handleLine("{\"op\":\"rank\",\"queries\":[]}"));
  EXPECT_EQ(errorOf(R), "bad_request");

  // rank with a non-object entry.
  R = *obs::parseJson(
      Engine->handleLine("{\"op\":\"rank\",\"queries\":[42]}"));
  EXPECT_EQ(errorOf(R), "bad_request");
}

TEST_F(ProtocolTest, NonFiniteFeaturesAreRejected) {
  obs::JsonValue Request = requestFor(0, "classify", false);
  // JSON itself cannot carry NaN, but a hand-built JsonValue can; the
  // engine must still reject it rather than poison the distance math.
  obs::JsonValue Features = obs::JsonValue::array();
  for (std::size_t I = 0; I < Svc->model().numFeatures(); ++I)
    Features.push(obs::JsonValue(std::numeric_limits<double>::quiet_NaN()));
  Request.set("features", std::move(Features));
  obs::JsonValue R = Engine->handle(Request);
  EXPECT_FALSE(okOf(R));
  EXPECT_EQ(errorOf(R), "bad_request");
}
