//===- tests/isa_arch_test.cpp - ISA vocabulary and machine models --------===//

#include "fgbs/arch/Machine.h"
#include "fgbs/isa/Isa.h"

#include <gtest/gtest.h>

using namespace fgbs;

TEST(Isa, BytesPerElement) {
  EXPECT_EQ(bytesPerElement(Precision::SP), 4u);
  EXPECT_EQ(bytesPerElement(Precision::DP), 8u);
  EXPECT_EQ(bytesPerElement(Precision::I32), 4u);
  EXPECT_EQ(bytesPerElement(Precision::I64), 8u);
}

TEST(Isa, FloatingPointPredicates) {
  EXPECT_TRUE(isFloatingPoint(Precision::SP));
  EXPECT_TRUE(isFloatingPoint(Precision::DP));
  EXPECT_FALSE(isFloatingPoint(Precision::I32));
  EXPECT_TRUE(isFpArith(OpKind::FpDiv));
  EXPECT_TRUE(isFpArith(OpKind::FpExp));
  EXPECT_FALSE(isFpArith(OpKind::Load));
  EXPECT_FALSE(isFpArith(OpKind::IntMul));
  EXPECT_TRUE(isMemoryOp(OpKind::Load));
  EXPECT_TRUE(isMemoryOp(OpKind::Store));
  EXPECT_FALSE(isMemoryOp(OpKind::FpAdd));
}

TEST(Isa, Classification) {
  EXPECT_EQ(classify(OpKind::FpAdd, Precision::DP), OpClass::FpAddSub);
  EXPECT_EQ(classify(OpKind::FpMul, Precision::SP), OpClass::FpMulClass);
  EXPECT_EQ(classify(OpKind::FpDiv, Precision::DP), OpClass::FpDivClass);
  EXPECT_EQ(classify(OpKind::FpSqrt, Precision::DP), OpClass::FpDivClass);
  EXPECT_EQ(classify(OpKind::IntAdd, Precision::I32), OpClass::IntClass);
  EXPECT_EQ(classify(OpKind::Load, Precision::DP), OpClass::LoadClass);
  EXPECT_EQ(classify(OpKind::Store, Precision::SP), OpClass::StoreClass);
  EXPECT_EQ(classify(OpKind::Branch, Precision::I64), OpClass::ControlClass);
  // FP compares/moves are "other FP"; integer ones are integer class.
  EXPECT_EQ(classify(OpKind::Compare, Precision::DP), OpClass::OtherFp);
  EXPECT_EQ(classify(OpKind::Compare, Precision::I64), OpClass::IntClass);
}

TEST(Isa, ScalarDoubleDetection) {
  Inst ScalarDpMul{OpKind::FpMul, Precision::DP, 1};
  Inst VectorDpMul{OpKind::FpMul, Precision::DP, 2};
  Inst ScalarSpMul{OpKind::FpMul, Precision::SP, 1};
  Inst ScalarDpLoad{OpKind::Load, Precision::DP, 1};
  EXPECT_TRUE(ScalarDpMul.isScalarDouble());
  EXPECT_FALSE(VectorDpMul.isScalarDouble());
  EXPECT_FALSE(ScalarSpMul.isScalarDouble());
  EXPECT_FALSE(ScalarDpLoad.isScalarDouble());
}

TEST(Isa, Flops) {
  Inst VecAdd{OpKind::FpAdd, Precision::SP, 4};
  Inst ScalarLoad{OpKind::Load, Precision::SP, 1};
  EXPECT_EQ(VecAdd.flops(), 4u);
  EXPECT_EQ(ScalarLoad.flops(), 0u);
}

TEST(Isa, PortSets) {
  EXPECT_TRUE(portsFor(OpKind::FpMul).contains(PortId::P0));
  EXPECT_FALSE(portsFor(OpKind::FpMul).contains(PortId::P1));
  EXPECT_TRUE(portsFor(OpKind::FpAdd).contains(PortId::P1));
  EXPECT_EQ(portsFor(OpKind::Load).count(), 2u);
  EXPECT_TRUE(portsFor(OpKind::Store).contains(PortId::P4));
  // Every op kind has at least one dispatch port.
  for (OpKind K : {OpKind::FpAdd, OpKind::FpMul, OpKind::FpDiv, OpKind::FpSqrt,
                   OpKind::FpExp, OpKind::FpAbs, OpKind::IntAdd, OpKind::IntMul,
                   OpKind::Load, OpKind::Store, OpKind::Compare, OpKind::Branch,
                   OpKind::MoveReg})
    EXPECT_GT(portsFor(K).count(), 0u) << opKindName(K);
}

TEST(Arch, Table1Values) {
  Machine NH = makeNehalem();
  Machine Atom = makeAtom();
  Machine C2 = makeCore2();
  Machine SB = makeSandyBridge();

  EXPECT_DOUBLE_EQ(NH.FrequencyGHz, 1.86);
  EXPECT_DOUBLE_EQ(Atom.FrequencyGHz, 1.66);
  EXPECT_DOUBLE_EQ(C2.FrequencyGHz, 2.93);
  EXPECT_DOUBLE_EQ(SB.FrequencyGHz, 3.30);

  EXPECT_EQ(NH.Cores, 4u);
  EXPECT_EQ(Atom.Cores, 2u);
  EXPECT_EQ(C2.Cores, 2u);
  EXPECT_EQ(SB.Cores, 4u);

  // Nehalem and Sandy Bridge have an L3; Atom and Core 2 do not.
  EXPECT_EQ(NH.CacheLevels.size(), 3u);
  EXPECT_EQ(SB.CacheLevels.size(), 3u);
  EXPECT_EQ(Atom.CacheLevels.size(), 2u);
  EXPECT_EQ(C2.CacheLevels.size(), 2u);

  EXPECT_EQ(NH.CacheLevels.back().SizeBytes, 12ull << 20);
  EXPECT_EQ(SB.CacheLevels.back().SizeBytes, 8ull << 20);

  // Only Atom issues in order.
  EXPECT_TRUE(NH.OutOfOrder);
  EXPECT_FALSE(Atom.OutOfOrder);
  EXPECT_TRUE(C2.OutOfOrder);
  EXPECT_TRUE(SB.OutOfOrder);
}

TEST(Arch, VectorElems) {
  Machine NH = makeNehalem();
  EXPECT_EQ(NH.vectorElems(Precision::DP), 2u);
  EXPECT_EQ(NH.vectorElems(Precision::SP), 4u);
  EXPECT_EQ(NH.vectorElems(Precision::I32), 4u);
}

TEST(Arch, BandwidthConversion) {
  Machine M = makeNehalem();
  // 8 GB/s at 1.86 GHz is ~4.3 bytes per cycle.
  EXPECT_NEAR(M.memBandwidthBytesPerCycle(), 8.0 / 1.86, 1e-9);
}

TEST(Arch, PaperMachineLists) {
  std::vector<Machine> All = paperMachines();
  ASSERT_EQ(All.size(), 4u);
  EXPECT_EQ(All.front().Name, "Nehalem");
  std::vector<Machine> Targets = paperTargets();
  ASSERT_EQ(Targets.size(), 3u);
  for (const Machine &T : Targets)
    EXPECT_NE(T.Name, "Nehalem");
}

TEST(Arch, AtomDividerSlowerThanNehalem) {
  EXPECT_GT(makeAtom().Timings.FpDivLatencyDP,
            makeNehalem().Timings.FpDivLatencyDP);
}
