//===- tests/cache_backend_conformance.h - CacheBackend contract -*-C++-*-===//
//
// The backend-agnostic conformance suite for core/CacheBackend: every
// implementation — the local directory, a plain in-memory map, the
// wire-protocol client over a loopback fgbs_cached server, and the
// tiered composition — must pass the identical battery, because
// MeasurementCache treats them interchangeably.
//
// Usage: define a Harness type providing
//
//   struct MyHarness {
//     MyHarness();                  // bring up whatever the backend needs
//     CacheBackend &backend();      // the backend under test
//   };
//
// then instantiate:
//
//   INSTANTIATE_TYPED_TEST_SUITE_P(My, CacheBackendConformance, MyHarness);
//
//===----------------------------------------------------------------------===//

#ifndef FGBS_TESTS_CACHE_BACKEND_CONFORMANCE_H
#define FGBS_TESTS_CACHE_BACKEND_CONFORMANCE_H

#include "fgbs/core/CacheBackend.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>
#include <string>

namespace fgbs {
namespace conformance {

/// The minimal correct backend: blobs in a map.  Doubles as the
/// reference implementation the suite is calibrated against and as the
/// "backend with no coordination needs" case (empty lock paths, no-op
/// writer locks from the base-class default).
class InMemoryBackend final : public CacheBackend {
public:
  bool exists(const std::string &Name) const override {
    std::lock_guard<std::mutex> Guard(Mutex);
    return Blobs.count(Name) != 0;
  }

  bool get(const std::string &Name, std::string &BytesOut) const override {
    std::lock_guard<std::mutex> Guard(Mutex);
    auto It = Blobs.find(Name);
    if (It == Blobs.end())
      return false;
    BytesOut = It->second;
    return true;
  }

  bool put(const std::string &Name, std::string_view Bytes) override {
    std::lock_guard<std::mutex> Guard(Mutex);
    Blobs[Name] = std::string(Bytes);
    return true;
  }

  bool remove(const std::string &Name) override {
    std::lock_guard<std::mutex> Guard(Mutex);
    return Blobs.erase(Name) != 0;
  }

  std::vector<CacheEntry> scan(const std::string &Prefix,
                               const std::string &Suffix) const override {
    std::lock_guard<std::mutex> Guard(Mutex);
    std::vector<CacheEntry> Out;
    for (const auto &[Name, Bytes] : Blobs) {
      if (Name.size() < Prefix.size() + Suffix.size() ||
          Name.compare(0, Prefix.size(), Prefix) != 0 ||
          Name.compare(Name.size() - Suffix.size(), Suffix.size(), Suffix) !=
              0)
        continue;
      CacheEntry E;
      E.Name = Name;
      E.SizeBytes = Bytes.size();
      Out.push_back(std::move(E));
    }
    return Out;
  }

  std::string lockPath(const std::string &) const override { return {}; }

private:
  mutable std::mutex Mutex;
  std::map<std::string, std::string> Blobs;
};

/// A blob exercising every byte value, including NULs — backends must
/// be 8-bit clean (measurement entries are raw binary).
inline std::string binaryBlob(std::size_t Size) {
  std::string Out;
  Out.reserve(Size);
  for (std::size_t I = 0; I < Size; ++I)
    Out.push_back(static_cast<char>(I * 131 % 256));
  return Out;
}

template <typename Harness>
class CacheBackendConformance : public ::testing::Test {
protected:
  Harness H;
};

TYPED_TEST_SUITE_P(CacheBackendConformance);

TYPED_TEST_P(CacheBackendConformance, AbsentEntryBehaves) {
  CacheBackend &B = this->H.backend();
  EXPECT_FALSE(B.exists("fgbs-meas-00000000000000aa.v1"));
  std::string Bytes = "sentinel";
  EXPECT_FALSE(B.get("fgbs-meas-00000000000000aa.v1", Bytes));
  EXPECT_EQ(Bytes, "sentinel") << "a failed get must not clobber the buffer";
  EXPECT_FALSE(B.remove("fgbs-meas-00000000000000aa.v1"));
}

TYPED_TEST_P(CacheBackendConformance, BinaryRoundTrip) {
  CacheBackend &B = this->H.backend();
  const std::string Name = "fgbs-meas-00000000000000ab.v1";
  const std::string Blob = binaryBlob(4096);
  ASSERT_NE(Blob.find('\0'), std::string::npos);
  ASSERT_TRUE(B.put(Name, Blob));
  EXPECT_TRUE(B.exists(Name));
  std::string Loaded;
  ASSERT_TRUE(B.get(Name, Loaded));
  EXPECT_EQ(Loaded, Blob);
}

TYPED_TEST_P(CacheBackendConformance, OverwriteReplacesBytes) {
  CacheBackend &B = this->H.backend();
  const std::string Name = "fgbs-meas-00000000000000ac.v1";
  ASSERT_TRUE(B.put(Name, "first version"));
  ASSERT_TRUE(B.put(Name, "second"));
  std::string Loaded;
  ASSERT_TRUE(B.get(Name, Loaded));
  EXPECT_EQ(Loaded, "second");
}

TYPED_TEST_P(CacheBackendConformance, EmptyBlobIsAnEntry) {
  CacheBackend &B = this->H.backend();
  const std::string Name = "fgbs-meas-00000000000000ad.v1";
  ASSERT_TRUE(B.put(Name, ""));
  EXPECT_TRUE(B.exists(Name));
  std::string Loaded = "sentinel";
  ASSERT_TRUE(B.get(Name, Loaded));
  EXPECT_TRUE(Loaded.empty());
}

TYPED_TEST_P(CacheBackendConformance, RemoveDeletes) {
  CacheBackend &B = this->H.backend();
  const std::string Name = "fgbs-meas-00000000000000ae.v1";
  ASSERT_TRUE(B.put(Name, "bytes"));
  EXPECT_TRUE(B.remove(Name));
  EXPECT_FALSE(B.exists(Name));
  std::string Loaded;
  EXPECT_FALSE(B.get(Name, Loaded));
}

TYPED_TEST_P(CacheBackendConformance, ScanFiltersAndSizes) {
  CacheBackend &B = this->H.backend();
  ASSERT_TRUE(B.put("fgbs-meas-00000000000000b0.v1", binaryBlob(100)));
  ASSERT_TRUE(B.put("fgbs-meas-00000000000000b1.v1", binaryBlob(200)));
  ASSERT_TRUE(B.put("other-entry.bin", "unrelated"));

  std::vector<CacheEntry> Hits = B.scan("fgbs-meas-", ".v1");
  std::sort(Hits.begin(), Hits.end(),
            [](const CacheEntry &A, const CacheEntry &C) {
              return A.Name < C.Name;
            });
  ASSERT_EQ(Hits.size(), 2u);
  EXPECT_EQ(Hits[0].Name, "fgbs-meas-00000000000000b0.v1");
  EXPECT_EQ(Hits[0].SizeBytes, 100u);
  EXPECT_EQ(Hits[1].Name, "fgbs-meas-00000000000000b1.v1");
  EXPECT_EQ(Hits[1].SizeBytes, 200u);

  EXPECT_TRUE(B.scan("no-such-prefix-", ".v1").empty());
}

TYPED_TEST_P(CacheBackendConformance, LargeBlobRoundTrip) {
  CacheBackend &B = this->H.backend();
  const std::string Name = "fgbs-meas-00000000000000b2.v1";
  const std::string Blob = binaryBlob(1u << 20);
  ASSERT_TRUE(B.put(Name, Blob));
  std::string Loaded;
  ASSERT_TRUE(B.get(Name, Loaded));
  EXPECT_EQ(Loaded.size(), Blob.size());
  EXPECT_EQ(Loaded, Blob);
}

TYPED_TEST_P(CacheBackendConformance, LockPathContract) {
  CacheBackend &B = this->H.backend();
  // Either the backend points writers at a usable lock location, or it
  // opts out with an empty path (it brings its own atomicity).  A
  // non-empty path must differ from the entry name's own storage and be
  // stable across calls.
  const std::string Name = "fgbs-meas-00000000000000b3.v1";
  const std::string Path = B.lockPath(Name);
  EXPECT_EQ(Path, B.lockPath(Name));
  if (!Path.empty()) {
    EXPECT_NE(Path.find(Name), std::string::npos)
        << "a per-entry lock path should be derived from the entry name";
  }
}

TYPED_TEST_P(CacheBackendConformance, WriterLockCycle) {
  CacheBackend &B = this->H.backend();
  const std::string Name = "fgbs-meas-00000000000000b4.v1";
  std::unique_ptr<WriterLock> Lock = B.writerLock(Name);
  ASSERT_NE(Lock, nullptr);
  FileLock::Options O;
  O.TimeoutMs = 5000;
  WriterLock::Result R = Lock->acquire(O);
  ASSERT_TRUE(static_cast<bool>(R)) << R.Message;
  Lock->heartbeat();
  // Publishing while holding the election must work (the cold path of
  // buildMeasurementDatabase does exactly this).
  EXPECT_TRUE(B.put(Name, "published under the writer lock"));
  Lock->release();
  // Re-election after release must succeed promptly.
  std::unique_ptr<WriterLock> Again = B.writerLock(Name);
  WriterLock::Result R2 = Again->acquire(O);
  EXPECT_TRUE(static_cast<bool>(R2)) << R2.Message;
  Again->release();
}

TYPED_TEST_P(CacheBackendConformance, NamespacedModelRoundTrip) {
  // model/ namespaced keys must behave exactly like flat entries:
  // binary-clean round trips, removable, invisible once removed.  The
  // wire backend routes these to the server's model shards; directory
  // backends flat-encode the separators — either way the contract is
  // identical.
  CacheBackend &B = this->H.backend();
  const std::string Name =
      "model/conf-suite/sha/" + std::string(64, 'a');
  const std::string Blob = binaryBlob(2048);
  EXPECT_FALSE(B.exists(Name));
  ASSERT_TRUE(B.put(Name, Blob));
  EXPECT_TRUE(B.exists(Name));
  std::string Loaded;
  ASSERT_TRUE(B.get(Name, Loaded));
  EXPECT_EQ(Loaded, Blob);
  EXPECT_TRUE(B.remove(Name));
  EXPECT_FALSE(B.exists(Name));
}

TYPED_TEST_P(CacheBackendConformance, ScanPrefixEnumeratesNamesAndSizes) {
  CacheBackend &B = this->H.backend();
  const std::string ShaA = "model/conf-alpha/sha/" + std::string(64, 'b');
  const std::string ShaB = "model/conf-alpha/sha/" + std::string(64, 'c');
  const std::string Ref = "model/conf-alpha/ref/latest";
  const std::string Other = "model/conf-beta/sha/" + std::string(64, 'd');
  ASSERT_TRUE(B.put(ShaA, binaryBlob(300)));
  ASSERT_TRUE(B.put(ShaB, binaryBlob(500)));
  ASSERT_TRUE(B.put(Ref, "ref-bytes"));
  ASSERT_TRUE(B.put(Other, binaryBlob(700)));

  ScanPrefixResult R = B.scanPrefix("model/conf-alpha/");
  ASSERT_TRUE(static_cast<bool>(R)) << R.Message;
  std::sort(R.Entries.begin(), R.Entries.end(),
            [](const CacheEntry &A, const CacheEntry &C) {
              return A.Name < C.Name;
            });
  ASSERT_EQ(R.Entries.size(), 3u);
  EXPECT_EQ(R.Entries[0].Name, Ref);
  EXPECT_EQ(R.Entries[1].Name, ShaA);
  EXPECT_EQ(R.Entries[1].SizeBytes, 300u);
  EXPECT_EQ(R.Entries[2].Name, ShaB);
  EXPECT_EQ(R.Entries[2].SizeBytes, 500u);

  // A narrower prefix keeps only the sub-tree.
  ScanPrefixResult Shas = B.scanPrefix("model/conf-alpha/sha/");
  ASSERT_TRUE(static_cast<bool>(Shas)) << Shas.Message;
  EXPECT_EQ(Shas.Entries.size(), 2u);
}

TYPED_TEST_P(CacheBackendConformance, ScanPrefixEmptyIsAuthoritative) {
  // "Nothing under that prefix" must come back as Ok-with-no-entries —
  // the caller distinguishes an authoritative empty listing from an old
  // server (Unsupported) or a dead one (Failed).
  CacheBackend &B = this->H.backend();
  ScanPrefixResult R = B.scanPrefix("model/conf-absent/");
  EXPECT_EQ(R.Outcome, ScanPrefixOutcome::Ok) << R.Message;
  EXPECT_TRUE(R.Entries.empty());
}

REGISTER_TYPED_TEST_SUITE_P(CacheBackendConformance, AbsentEntryBehaves,
                            BinaryRoundTrip, OverwriteReplacesBytes,
                            EmptyBlobIsAnEntry, RemoveDeletes,
                            ScanFiltersAndSizes, LargeBlobRoundTrip,
                            LockPathContract, WriterLockCycle,
                            NamespacedModelRoundTrip,
                            ScanPrefixEnumeratesNamesAndSizes,
                            ScanPrefixEmptyIsAuthoritative);

} // namespace conformance
} // namespace fgbs

#endif // FGBS_TESTS_CACHE_BACKEND_CONFORMANCE_H
