//===- tests/property_test.cpp - Cross-cutting model invariants -----------===//
//
// Parameterized sweeps asserting the invariants the reproduction leans
// on, across every machine model and kernel shape: times are positive
// and finite, scaling laws hold, compilation is deterministic, counters
// respect the cache pyramid, and architectural orderings (in-order
// slower, divider latency matters, memory-bound kernels track bandwidth)
// hold everywhere.
//
//===----------------------------------------------------------------------===//

#include "fgbs/analysis/Profiler.h"
#include "fgbs/dsl/Builder.h"
#include "fgbs/extract/Extraction.h"
#include "fgbs/sim/Executor.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace fgbs;

namespace {

enum class KernelShape {
  StreamTriad,
  Reduction,
  Recurrence,
  DivideBound,
  LdaWalk,
  StencilSweep,
  IntHistogram,
  MixedPrecision,
};

const KernelShape AllShapes[] = {
    KernelShape::StreamTriad,   KernelShape::Reduction,
    KernelShape::Recurrence,    KernelShape::DivideBound,
    KernelShape::LdaWalk,       KernelShape::StencilSweep,
    KernelShape::IntHistogram,  KernelShape::MixedPrecision,
};

const char *shapeName(KernelShape Shape) {
  switch (Shape) {
  case KernelShape::StreamTriad:
    return "stream_triad";
  case KernelShape::Reduction:
    return "reduction";
  case KernelShape::Recurrence:
    return "recurrence";
  case KernelShape::DivideBound:
    return "divide_bound";
  case KernelShape::LdaWalk:
    return "lda_walk";
  case KernelShape::StencilSweep:
    return "stencil_sweep";
  case KernelShape::IntHistogram:
    return "int_histogram";
  case KernelShape::MixedPrecision:
    return "mixed_precision";
  }
  return "?";
}

Codelet makeKernel(KernelShape Shape, std::uint64_t Elems = 1 << 20) {
  CodeletBuilder B(std::string("prop_") + shapeName(Shape) + "_" +
                       std::to_string(Elems),
                   "prop");
  switch (Shape) {
  case KernelShape::StreamTriad: {
    unsigned A = B.array("a", Precision::DP, Elems);
    unsigned X = B.array("x", Precision::DP, Elems);
    B.loops(Elems);
    B.stmt(storeTo(B.at(A, StrideClass::Unit),
                   add(B.ld(X, StrideClass::Unit),
                       mul(constant(Precision::DP),
                           B.ld(A, StrideClass::Unit)))));
    break;
  }
  case KernelShape::Reduction: {
    unsigned X = B.array("x", Precision::DP, Elems);
    B.loops(Elems);
    B.stmt(reduce(BinOp::Add, mul(B.ld(X, StrideClass::Unit),
                                  B.ld(X, StrideClass::Unit))));
    break;
  }
  case KernelShape::Recurrence: {
    unsigned X = B.array("x", Precision::DP, Elems);
    unsigned Y = B.array("y", Precision::DP, Elems);
    B.loops(Elems);
    B.stmt(recurrence(B.at(X, StrideClass::Unit),
                      add(mul(B.ld(Y, StrideClass::Unit),
                              constant(Precision::DP)),
                          constant(Precision::DP))));
    break;
  }
  case KernelShape::DivideBound: {
    unsigned X = B.array("x", Precision::DP, Elems);
    B.loops(Elems);
    B.stmt(storeTo(B.at(X, StrideClass::Unit),
                   div(constant(Precision::DP),
                       B.ld(X, StrideClass::Unit))));
    break;
  }
  case KernelShape::LdaWalk: {
    unsigned A = B.array("a", Precision::DP, Elems);
    B.loops(Elems / 512, 64);
    B.stmt(storeTo(B.at(A, StrideClass::Lda, 512),
                   mul(B.ld(A, StrideClass::Lda, 512),
                       constant(Precision::DP))));
    break;
  }
  case KernelShape::StencilSweep: {
    unsigned U = B.array("u", Precision::DP, Elems);
    unsigned R = B.array("r", Precision::DP, Elems);
    B.loops(Elems);
    B.stmt(storeTo(B.at(R, StrideClass::Unit),
                   add(mul(constant(Precision::DP),
                           B.ld(U, StrideClass::Stencil, 1, 3)),
                       constant(Precision::DP))));
    break;
  }
  case KernelShape::IntHistogram: {
    unsigned K = B.array("keys", Precision::I32, Elems);
    unsigned H = B.array("hist", Precision::I32, Elems / 4);
    B.loops(Elems);
    B.stmt(storeTo(B.at(H, StrideClass::Lda, 709),
                   add(B.ld(H, StrideClass::Lda, 709),
                       mul(B.ld(K, StrideClass::Unit),
                           constant(Precision::I32)))));
    break;
  }
  case KernelShape::MixedPrecision: {
    unsigned A = B.array("a", Precision::SP, Elems);
    unsigned X = B.array("x", Precision::DP, Elems / 64);
    B.loops(Elems);
    B.stmt(reduce(BinOp::Add, mul(B.ld(A, StrideClass::Unit),
                                  B.ld(X, StrideClass::Zero))));
    break;
  }
  }
  return B.take();
}

struct SweepCase {
  KernelShape Shape;
  const char *MachineName;
};

std::vector<SweepCase> allCases() {
  std::vector<SweepCase> Cases;
  for (KernelShape Shape : AllShapes)
    for (const char *M : {"Nehalem", "Atom", "Core 2", "Sandy Bridge"})
      Cases.push_back({Shape, M});
  return Cases;
}

Machine machineByName(const std::string &Name) {
  for (Machine &M : paperMachines())
    if (M.Name == Name)
      return M;
  ADD_FAILURE() << "unknown machine " << Name;
  return makeNehalem();
}

std::string caseName(const ::testing::TestParamInfo<SweepCase> &Info) {
  std::string Name = std::string(shapeName(Info.param.Shape)) + "_" +
                     Info.param.MachineName;
  for (char &C : Name)
    if (!std::isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return Name;
}

} // namespace

class ModelSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ModelSweep, TimesPositiveAndFinite) {
  Codelet C = makeKernel(GetParam().Shape);
  Machine M = machineByName(GetParam().MachineName);
  Measurement R = execute(C, M, {});
  EXPECT_GT(R.TrueSeconds, 0.0);
  EXPECT_TRUE(std::isfinite(R.TrueSeconds));
  EXPECT_GT(R.MeasuredSeconds, 0.0);
  EXPECT_TRUE(std::isfinite(R.MeasuredSeconds));
  EXPECT_GT(R.Counters.Cycles, 0.0);
}

TEST_P(ModelSweep, DatasetScalingMonotone) {
  Codelet C = makeKernel(GetParam().Shape);
  Machine M = machineByName(GetParam().MachineName);
  double Last = 0.0;
  for (double Scale : {0.5, 1.0, 2.0, 4.0}) {
    ExecutionRequest R;
    R.DatasetScale = Scale;
    double T = execute(C, M, R).TrueSeconds;
    EXPECT_GT(T, Last) << "scale " << Scale;
    Last = T;
  }
}

TEST_P(ModelSweep, CompilationDeterministic) {
  Codelet C = makeKernel(GetParam().Shape);
  Machine M = machineByName(GetParam().MachineName);
  BinaryLoop A = compile(C, M, CompilationContext::InApplication);
  BinaryLoop B = compile(C, M, CompilationContext::InApplication);
  ASSERT_EQ(A.Body.size(), B.Body.size());
  for (std::size_t I = 0; I < A.Body.size(); ++I) {
    EXPECT_EQ(A.Body[I].Kind, B.Body[I].Kind);
    EXPECT_EQ(A.Body[I].VecElems, B.Body[I].VecElems);
  }
  EXPECT_EQ(A.ElementsPerIter, B.ElementsPerIter);
}

TEST_P(ModelSweep, CountersRespectCachePyramid) {
  Codelet C = makeKernel(GetParam().Shape);
  Machine M = machineByName(GetParam().MachineName);
  PerfCounters Ctr = execute(C, M, {}).Counters;
  EXPECT_GE(Ctr.L1Accesses, Ctr.L2LinesIn - 1e-9);
  EXPECT_GE(Ctr.L2LinesIn, Ctr.L3LinesIn - 1e-9);
  EXPECT_GE(Ctr.L2LinesIn, Ctr.MemLinesIn - 1e-9);
  if (M.CacheLevels.size() < 3) {
    EXPECT_DOUBLE_EQ(Ctr.L3LinesIn, 0.0);
  }
}

TEST_P(ModelSweep, FeatureVectorWellFormed) {
  Codelet C = makeKernel(GetParam().Shape);
  Machine Ref = makeNehalem();
  Measurement R = measureInApp(C, Ref);
  std::vector<double> F = computeFeatures(C, Ref, R);
  ASSERT_EQ(F.size(), NumFeatures);
  for (std::size_t I = 0; I < F.size(); ++I) {
    EXPECT_TRUE(std::isfinite(F[I]))
        << FeatureCatalog::get().info(I).Name;
  }
}

TEST_P(ModelSweep, StandalonePolicyHonored) {
  Codelet C = makeKernel(GetParam().Shape);
  Machine M = machineByName(GetParam().MachineName);
  StandaloneMeasurement S = measureStandalone(C, M);
  EXPECT_GE(S.Invocations, 10u);
  EXPECT_GE(static_cast<double>(S.Invocations) * S.TrueSeconds,
            1e-3 - 1e-9);
  EXPECT_GT(S.MedianSeconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllKernelsAllMachines, ModelSweep,
                         ::testing::ValuesIn(allCases()), caseName);

// --- Cross-machine orderings (per kernel, not per machine) -------------

class KernelOrdering : public ::testing::TestWithParam<KernelShape> {};

TEST_P(KernelOrdering, AtomNeverFasterThanNehalem) {
  Codelet C = makeKernel(GetParam());
  double NH = execute(C, makeNehalem(), {}).TrueSeconds;
  double Atom = execute(C, makeAtom(), {}).TrueSeconds;
  EXPECT_GT(Atom, NH);
}

TEST_P(KernelOrdering, SandyBridgeNeverSlowerThanNehalem) {
  Codelet C = makeKernel(GetParam());
  double NH = execute(C, makeNehalem(), {}).TrueSeconds;
  double SB = execute(C, makeSandyBridge(), {}).TrueSeconds;
  EXPECT_LT(SB, NH * 1.02);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelOrdering,
                         ::testing::ValuesIn(AllShapes),
                         [](const ::testing::TestParamInfo<KernelShape> &I) {
                           return shapeName(I.param);
                         });

// --- Specific architectural contrasts ----------------------------------

TEST(ArchContrast, DividerDominatedKernelsTrackDividerLatency) {
  // Atom's divider is ~3x slower than Nehalem's (and unpipelined); a
  // divide-bound kernel must slow down far more than a latency-bound
  // scalar recurrence, whose FP latencies differ much less.  Both use
  // cache-resident footprints so the contrast isolates the core.
  Codelet Div = makeKernel(KernelShape::DivideBound, 1 << 13);
  Codelet Rec = makeKernel(KernelShape::Recurrence, 1 << 13);
  double DivRatio = execute(Div, makeAtom(), {}).TrueSeconds /
                    execute(Div, makeNehalem(), {}).TrueSeconds;
  double RecRatio = execute(Rec, makeAtom(), {}).TrueSeconds /
                    execute(Rec, makeNehalem(), {}).TrueSeconds;
  EXPECT_GT(DivRatio, RecRatio);
  // And far beyond the bare frequency ratio.
  EXPECT_GT(DivRatio, 2.0);
}

TEST(ArchContrast, MemoryBoundKernelLosesOnCore2ComputeWins) {
  // The paper's section 4.4 story: compute-bound kernels ride Core 2's
  // clock; memory-bound kernels pay for its small last-level cache and
  // FSB.
  Codelet Mem = makeKernel(KernelShape::StreamTriad, 4 << 20); // 64 MB.
  Codelet Cpu = makeKernel(KernelShape::DivideBound, 1 << 19);
  double MemSpeedup = execute(Mem, makeNehalem(), {}).TrueSeconds /
                      execute(Mem, makeCore2(), {}).TrueSeconds;
  double CpuSpeedup = execute(Cpu, makeNehalem(), {}).TrueSeconds /
                      execute(Cpu, makeCore2(), {}).TrueSeconds;
  EXPECT_LT(MemSpeedup, 1.0);
  EXPECT_GT(CpuSpeedup, 1.0);
}

TEST(ArchContrast, RecurrenceInsensitiveToSimdWidth) {
  // A serial recurrence cannot vectorize: its Nehalem/Sandy Bridge ratio
  // should track frequency more closely than a vectorized kernel's.
  Codelet Rec = makeKernel(KernelShape::Recurrence, 1 << 19);
  BinaryLoop Loop =
      compile(Rec, makeNehalem(), CompilationContext::InApplication);
  EXPECT_FALSE(Loop.anyVector());
}

TEST(ArchContrast, LdaWalksLatencyBoundEverywhere) {
  Codelet Lda = makeKernel(KernelShape::LdaWalk, 4 << 20);
  for (const Machine &M : paperMachines()) {
    Measurement R = execute(Lda, M, {});
    // Strided walks must be slower per element than streaming.
    Codelet Triad = makeKernel(KernelShape::StreamTriad, 4 << 20);
    Measurement S = execute(Triad, M, {});
    double LdaPerIter =
        R.TrueSeconds / static_cast<double>(Lda.Nest.totalIterations());
    double TriadPerIter =
        S.TrueSeconds / static_cast<double>(Triad.Nest.totalIterations());
    EXPECT_GT(LdaPerIter, TriadPerIter) << M.Name;
  }
}
