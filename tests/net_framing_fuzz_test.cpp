//===- tests/net_framing_fuzz_test.cpp - frame decoder corruption sweep ---===//
//
// The fgbs.cachewire.v1 decoder under hostile bytes: a deterministic
// sweep flips every byte of a valid frame of every opcode (and a seeded
// multi-byte scramble on top), and the decoder must come back with a
// typed wire error or a clean frame — never a crash, a hang, or an
// over-read.  A second layer aims the same corruption at a live
// CacheServer: frame-level damage drops the connection, payload-level
// garbage (valid framing, nonsense fields) gets a typed Error response,
// and the server stays healthy throughout.
//
//===----------------------------------------------------------------------===//

#include "fgbs/net/CacheServer.h"
#include "fgbs/net/Framing.h"
#include "fgbs/support/BinaryIo.h"

#include <gtest/gtest.h>

#include <chrono>
#include <random>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

using namespace fgbs;
using namespace fgbs::binio;

namespace {

/// One valid frame per request/response opcode, with representative
/// payloads — the corpus every corruption sweep starts from.
std::vector<std::pair<net::Opcode, std::string>> frameCorpus() {
  std::vector<std::pair<net::Opcode, std::string>> Corpus;
  auto add = [&](net::Opcode Op, std::string Payload) {
    Corpus.emplace_back(Op, std::move(Payload));
  };

  add(net::Opcode::Ping, "");
  std::string Name;
  putStr(Name, "fgbs-meas-0123456789abcdef.v1");
  add(net::Opcode::Exists, Name);
  add(net::Opcode::Get, Name);
  add(net::Opcode::Remove, Name);
  std::string Put = Name;
  Put += "some entry bytes, not structured";
  add(net::Opcode::Put, Put);
  std::string Scan;
  putStr(Scan, "fgbs-part-");
  putStr(Scan, ".v1");
  add(net::Opcode::Scan, Scan);
  std::string Prune;
  putU64(Prune, 1 << 20);
  putU64(Prune, 3600);
  add(net::Opcode::Prune, Prune);
  std::string Lock = Name;
  putU64(Lock, 0x1234u);
  putU64(Lock, 30000);
  add(net::Opcode::LockAcquire, Lock);
  std::string Unlock = Name;
  putU64(Unlock, 0x1234u);
  add(net::Opcode::LockRelease, Unlock);

  std::string Enqueue = Name;
  putStr(Enqueue, "opaque work spec");
  add(net::Opcode::EnqueueWork, Enqueue);
  std::string Claim;
  putU64(Claim, 0xBEEFu);
  putU64(Claim, 30000);
  putU32(Claim, 4);
  add(net::Opcode::ClaimWork, Claim);
  std::string Heartbeat;
  putU64(Heartbeat, 0xBEEFu);
  putU64(Heartbeat, 30000);
  putU32(Heartbeat, 1);
  putStr(Heartbeat, "fgbs-meas-0123456789abcdef.v1");
  add(net::Opcode::Heartbeat, Heartbeat);
  std::string Complete = Name;
  putU64(Complete, 0xBEEFu);
  add(net::Opcode::CompleteWork, Complete);
  add(net::Opcode::AbandonWork, Complete);
  add(net::Opcode::Stats, "");
  std::string ScanPrefix;
  putStr(ScanPrefix, "model/suite/");
  add(net::Opcode::ScanPrefix, ScanPrefix);

  add(net::Opcode::Ok, Name);
  add(net::Opcode::NotFound, "");
  std::string Error;
  putStr(Error, "synthetic failure message");
  add(net::Opcode::Error, Error);
  return Corpus;
}

/// Feeds \p Bytes to the decoder through a real socket (then EOF) and
/// returns what it made of them.  The 2 s deadline turns a decoder hang
/// into a typed Timeout instead of a wedged test run.
net::WireError decodeBytes(const std::string &Bytes, net::Frame &Out) {
  int Fds[2] = {-1, -1};
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  std::size_t Off = 0;
  while (Off < Bytes.size()) {
    ssize_t N = ::write(Fds[1], Bytes.data() + Off, Bytes.size() - Off);
    EXPECT_GT(N, 0) << "socketpair write failed";
    if (N <= 0)
      break;
    Off += static_cast<std::size_t>(N);
  }
  ::close(Fds[1]); // EOF after the corrupted bytes: truncation, not hang
  net::Socket Reader(Fds[0]);
  return net::readFrame(Reader, Out, 2000);
}

/// Does \p Offset land in the frame's opcode field?  That is the one
/// header region readFrame does not (and must not) validate — opcode
/// dispatch belongs to the server, which answers Error for junk values.
bool inOpcodeField(std::size_t Offset) { return Offset >= 12 && Offset < 16; }

} // namespace

//===----------------------------------------------------------------------===//
// Decoder-level sweeps
//===----------------------------------------------------------------------===//

TEST(FramingFuzz, EveryByteFlipIsDetectedOrHarmless) {
  for (const auto &[Op, Payload] : frameCorpus()) {
    const std::string Clean = net::encodeFrame(Op, Payload);
    for (std::size_t Offset = 0; Offset < Clean.size(); ++Offset) {
      std::string Bad = Clean;
      Bad[Offset] = static_cast<char>(Bad[Offset] ^ 0xFF);
      net::Frame Out;
      const auto Start = std::chrono::steady_clock::now();
      net::WireError E = decodeBytes(Bad, Out);
      const auto ElapsedMs =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - Start)
              .count();
      EXPECT_LT(ElapsedMs, 1900)
          << "decoder stalled on " << net::opcodeName(Op) << " offset "
          << Offset;
      // Every flip outside the opcode field lands in bytes the header
      // discipline covers (magic, version, size, CRC, or checksummed
      // payload) and must be rejected; an opcode flip yields a clean
      // frame with a junk opcode, which is the server's problem.
      if (E == net::WireError::None)
        EXPECT_TRUE(inOpcodeField(Offset))
            << "undetected corruption in " << net::opcodeName(Op)
            << " at offset " << Offset;
      else
        EXPECT_NE(E, net::WireError::Timeout)
            << net::opcodeName(Op) << " offset " << Offset;
    }
  }
}

TEST(FramingFuzz, TruncationAtEveryLengthIsTyped) {
  for (const auto &[Op, Payload] : frameCorpus()) {
    const std::string Clean = net::encodeFrame(Op, Payload);
    for (std::size_t Len = 0; Len < Clean.size(); ++Len) {
      net::Frame Out;
      net::WireError E = decodeBytes(Clean.substr(0, Len), Out);
      if (Len == 0)
        EXPECT_EQ(E, net::WireError::Closed);
      else
        EXPECT_NE(E, net::WireError::None)
            << net::opcodeName(Op) << " truncated to " << Len << " bytes";
      EXPECT_NE(E, net::WireError::Timeout);
    }
  }
}

TEST(FramingFuzz, SeededScrambleNeverHangsOrOverReads) {
  // Multi-byte corruption, including the size field taking arbitrary
  // values: the decoder must always come back within its deadline with
  // a frame or a typed error, whatever the bytes say.
  std::mt19937 Rng(0xF7A2u);
  const auto Corpus = frameCorpus();
  for (int Round = 0; Round < 400; ++Round) {
    const auto &[Op, Payload] = Corpus[Rng() % Corpus.size()];
    std::string Bad = net::encodeFrame(Op, Payload);
    const unsigned Edits = 1 + Rng() % 4;
    for (unsigned I = 0; I < Edits; ++I)
      Bad[Rng() % Bad.size()] = static_cast<char>(Rng());
    net::Frame Out;
    net::WireError E = decodeBytes(Bad, Out);
    EXPECT_NE(E, net::WireError::Timeout) << "round " << Round;
  }
}

TEST(FramingFuzz, CleanCorpusRoundTrips) {
  // The sweeps above are only meaningful if the uncorrupted corpus
  // actually decodes.
  for (const auto &[Op, Payload] : frameCorpus()) {
    net::Frame Out;
    EXPECT_EQ(decodeBytes(net::encodeFrame(Op, Payload), Out),
              net::WireError::None);
    EXPECT_EQ(Out.Op, Op);
    EXPECT_EQ(Out.Payload, Payload);
  }
}

//===----------------------------------------------------------------------===//
// Server-level: a live fgbs_cached must shrug all of it off
//===----------------------------------------------------------------------===//

namespace {

class FuzzServer : public ::testing::Test {
protected:
  void SetUp() override {
    Root = ::testing::TempDir() + "fgbs_fuzz_server_" +
           std::to_string(static_cast<long>(::getpid()));
    net::CacheServerConfig Config;
    Config.Root = Root;
    Config.Shards = 2;
    Config.Threads = 2;
    Config.BindAddr = "127.0.0.1";
    Server = std::make_unique<net::CacheServer>(std::move(Config));
    std::string Error;
    ASSERT_TRUE(Server->start(&Error)) << Error;
  }

  void TearDown() override { Server->stop(); }

  net::Socket connect() {
    std::string Error;
    net::Socket S =
        net::Socket::connectTo("127.0.0.1", Server->port(), 2000, &Error);
    EXPECT_TRUE(S.valid()) << Error;
    return S;
  }

  /// The health probe between corruption rounds: the server must still
  /// answer a clean Ping on a fresh connection.
  void expectAlive() {
    net::Socket S = connect();
    ASSERT_TRUE(net::writeFrame(S, net::Opcode::Ping, "", 2000));
    net::Frame Reply;
    ASSERT_EQ(net::readFrame(S, Reply, 2000), net::WireError::None);
    EXPECT_EQ(Reply.Op, net::Opcode::Ok);
  }

  std::string Root;
  std::unique_ptr<net::CacheServer> Server;
};

} // namespace

TEST_F(FuzzServer, SurvivesFrameLevelDamage) {
  // One corrupted offset per header region (magic, version, opcode,
  // size, CRC) plus mid-payload, for every opcode: the server may
  // answer or drop the connection, but it must keep serving others.
  for (const auto &[Op, Payload] : frameCorpus()) {
    const std::string Clean = net::encodeFrame(Op, Payload);
    std::vector<std::size_t> Offsets = {0, 9, 13, 17, 25};
    if (!Payload.empty())
      Offsets.push_back(net::kWireHeaderBytes + Payload.size() / 2);
    for (std::size_t Offset : Offsets) {
      std::string Bad = Clean;
      Bad[Offset] = static_cast<char>(Bad[Offset] ^ 0xFF);
      net::Socket S = connect();
      ASSERT_TRUE(S.valid());
      S.sendAll(Bad.data(), Bad.size(), 2000);
      net::Frame Reply;
      net::readFrame(S, Reply, 300); // any outcome; just bounded
      S.close();
    }
    expectAlive();
  }
}

TEST_F(FuzzServer, RejectsMalformedNamespacedNamesWithTypedErrors) {
  // The namespace separator opens a path-traversal-shaped attack
  // surface; every spelling below must come back as a typed Error on a
  // live connection — never a stored entry, a dropped connection, or a
  // crash.  One canonical encoding: dot segments, empty segments,
  // unknown namespaces, the reserved '~' escape byte, and over-long
  // names are all rejects.
  const std::vector<std::string> BadNames = {
      "",                      // empty name
      "model/",                // namespace with no segments
      "model//x",              // empty segment
      "model/x/",              // trailing separator (empty last segment)
      "model/./x",             // dot segment
      "model/../x",            // dot-dot segment
      "model/x/..",            // dot-dot leaf
      "model/x y/z",           // whitespace in a segment
      "model/x\x01y",          // control byte in a segment
      "meas/",                 // alias with no rest
      "meas/..",               // alias of an invalid flat name
      "meas/x/y",              // the flat space has no sub-paths
      "snapshots/x",           // unknown namespace
      "model/x~y/z",           // reserved flat-encoding escape byte
      "fgbs~meas",             // reserved escape in a flat name
      "/model/x",              // absolute-looking spelling
      "model/" + std::string(300, 'a'), // over the 255-byte entry limit
  };
  net::Socket S = connect();
  ASSERT_TRUE(S.valid());
  for (const std::string &Name : BadNames) {
    std::string Payload;
    putStr(Payload, Name);
    ASSERT_TRUE(net::writeFrame(S, net::Opcode::Exists, Payload, 2000));
    net::Frame Reply;
    ASSERT_EQ(net::readFrame(S, Reply, 2000), net::WireError::None)
        << "name '" << Name << "'";
    EXPECT_EQ(Reply.Op, net::Opcode::Error) << "name '" << Name << "'";

    // A Put must be refused too — rejection at the read side only would
    // still let hostile names onto the disk.
    std::string PutPayload;
    putStr(PutPayload, Name);
    PutPayload += "payload";
    ASSERT_TRUE(net::writeFrame(S, net::Opcode::Put, PutPayload, 2000));
    ASSERT_EQ(net::readFrame(S, Reply, 2000), net::WireError::None)
        << "name '" << Name << "'";
    EXPECT_EQ(Reply.Op, net::Opcode::Error) << "put of name '" << Name << "'";
  }
  // The canonical spellings still work on the same connection.
  for (const std::string &Good :
       {std::string("model/suite/sha/") + std::string(64, 'e'),
        std::string("meas/fgbs-meas-0123456789abcdef.v1"),
        std::string("fgbs-meas-0123456789abcdef.v1")}) {
    std::string Payload;
    putStr(Payload, Good);
    ASSERT_TRUE(net::writeFrame(S, net::Opcode::Exists, Payload, 2000));
    net::Frame Reply;
    ASSERT_EQ(net::readFrame(S, Reply, 2000), net::WireError::None);
    EXPECT_EQ(Reply.Op, net::Opcode::Ok) << "name '" << Good << "'";
  }
  expectAlive();
}

TEST_F(FuzzServer, AnswersGarbagePayloadsWithTypedErrors) {
  // Valid framing around meaningless payload bytes: the server must
  // parse defensively and answer every one (Ok/NotFound/Error), never
  // drop the connection mid-conversation or die.
  std::mt19937 Rng(0x5EED5u);
  net::Socket S = connect();
  ASSERT_TRUE(S.valid());
  for (const auto &[Op, Payload] : frameCorpus()) {
    if (Op >= net::Opcode::Ok)
      continue; // responses are not requests; the server drops them
    std::string Garbage(1 + Rng() % 64, '\0');
    for (char &C : Garbage)
      C = static_cast<char>(Rng());
    ASSERT_TRUE(net::writeFrame(S, Op, Garbage, 2000))
        << net::opcodeName(Op);
    net::Frame Reply;
    ASSERT_EQ(net::readFrame(S, Reply, 2000), net::WireError::None)
        << net::opcodeName(Op);
    EXPECT_TRUE(Reply.Op == net::Opcode::Ok ||
                Reply.Op == net::Opcode::NotFound ||
                Reply.Op == net::Opcode::Error)
        << net::opcodeName(Op);
  }
  expectAlive();
}
