//===- tests/serialization_test.cpp - CSV import/export -------------------===//

#include "fgbs/core/Serialization.h"

#include "fgbs/core/Validation.h"
#include "fgbs/dsl/Builder.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace fgbs;

namespace {

Codelet tinyKernel(const char *Name, const char *App, std::uint64_t Elems) {
  CodeletBuilder B(Name, App);
  unsigned A = B.array("a", Precision::DP, Elems);
  B.loops(Elems);
  B.stmt(storeTo(B.at(A, StrideClass::Unit),
                 mul(B.ld(A, StrideClass::Unit), constant(Precision::DP))));
  B.invocations(8);
  return B.take();
}

Suite tinySuite() {
  Suite S;
  S.Name = "tiny";
  Application App;
  App.Name = "app";
  App.Coverage = 1.0;
  App.Codelets.push_back(tinyKernel("app/k1", "app", 1 << 20));
  App.Codelets.push_back(tinyKernel("app/k2", "app", 2 << 20));
  App.Codelets.push_back(tinyKernel("app/k3", "app", 3 << 20));
  S.Applications.push_back(std::move(App));
  return S;
}

} // namespace

TEST(FeatureMatrixCsv, RoundTrip) {
  FeatureTable Points = {{1.5, -2.25, 1e-9}, {3.125, 0.0, 42.0}};
  std::vector<std::string> Cols = {"a", "b,with comma", "c"};
  std::vector<std::string> Rows = {"p0", "p1"};

  std::stringstream SS;
  writeFeatureMatrixCsv(SS, Points, Cols, Rows);
  std::optional<FeatureMatrixCsv> Back = readFeatureMatrixCsv(SS);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->ColumnNames, Cols);
  EXPECT_EQ(Back->RowNames, Rows);
  ASSERT_EQ(Back->Points.size(), 2u);
  for (std::size_t I = 0; I < Points.size(); ++I)
    for (std::size_t J = 0; J < Points[I].size(); ++J)
      EXPECT_DOUBLE_EQ(Back->Points[I][J], Points[I][J]);
}

TEST(FeatureMatrixCsv, RejectsWrongHeader) {
  std::stringstream SS("not_name,a\nx,1\n");
  EXPECT_FALSE(readFeatureMatrixCsv(SS).has_value());
}

TEST(FeatureMatrixCsv, RejectsHeaderWithoutColumns) {
  std::stringstream SS("name\nx\n");
  EXPECT_FALSE(readFeatureMatrixCsv(SS).has_value());
}

TEST(FeatureMatrixCsv, RejectsRaggedRow) {
  std::stringstream Short("name,a,b\nx,1\n");
  EXPECT_FALSE(readFeatureMatrixCsv(Short).has_value());
  std::stringstream Long("name,a\nx,1,2\n");
  EXPECT_FALSE(readFeatureMatrixCsv(Long).has_value());
}

TEST(FeatureMatrixCsv, RejectsNonNumericCell) {
  std::stringstream SS("name,a\nx,notanumber\n");
  EXPECT_FALSE(readFeatureMatrixCsv(SS).has_value());
  // Trailing junk after a valid prefix is also not a number.
  std::stringstream Junk("name,a\nx,1.5potato\n");
  EXPECT_FALSE(readFeatureMatrixCsv(Junk).has_value());
}

TEST(FeatureMatrixCsv, RejectsMissingHeader) {
  std::stringstream SS("");
  EXPECT_FALSE(readFeatureMatrixCsv(SS).has_value());
}

TEST(FeatureMatrixCsv, AcceptsCrlfLineEndings) {
  // A file that crossed a Windows toolchain: every line CRLF-terminated.
  std::stringstream SS("name,a,b\r\np0,1.5,2.5\r\np1,-3,4e2\r\n");
  std::optional<FeatureMatrixCsv> Back = readFeatureMatrixCsv(SS);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->ColumnNames, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(Back->RowNames, (std::vector<std::string>{"p0", "p1"}));
  ASSERT_EQ(Back->Points.size(), 2u);
  EXPECT_DOUBLE_EQ(Back->Points[0][1], 2.5);
  EXPECT_DOUBLE_EQ(Back->Points[1][1], 400.0);

  // A lone CR line is blank, not a ragged row.
  std::stringstream Blank("name,a\r\n\r\np0,1\r\n");
  EXPECT_TRUE(readFeatureMatrixCsv(Blank).has_value());
}

TEST(FeatureMatrixCsv, AcceptsFinalRowWithoutNewline) {
  std::stringstream SS("name,a\np0,1\np1,2"); // no trailing '\n'
  std::optional<FeatureMatrixCsv> Back = readFeatureMatrixCsv(SS);
  ASSERT_TRUE(Back.has_value());
  ASSERT_EQ(Back->Points.size(), 2u);
  EXPECT_DOUBLE_EQ(Back->Points[1][0], 2.0);

  // CRLF file whose final row also lacks the newline: the stray CR must
  // not glue itself onto the last numeric cell.
  std::stringstream Crlf("name,a\r\np0,1\r");
  std::optional<FeatureMatrixCsv> Tail = readFeatureMatrixCsv(Crlf);
  ASSERT_TRUE(Tail.has_value());
  ASSERT_EQ(Tail->Points.size(), 1u);
  EXPECT_DOUBLE_EQ(Tail->Points[0][0], 1.0);
}

TEST(FeatureMatrixCsv, QuotedCellsRoundTrip) {
  FeatureTable Points = {{1.0}};
  std::stringstream SS;
  writeFeatureMatrixCsv(SS, Points, {"col"}, {"row,with\"quote"});
  std::optional<FeatureMatrixCsv> Back = readFeatureMatrixCsv(SS);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->RowNames[0], "row,with\"quote");
}

class SerializationWithDb : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    TheSuite = new Suite(tinySuite());
    Db = new MeasurementDatabase(*TheSuite, makeNehalem(), paperTargets());
  }
  static void TearDownTestSuite() {
    delete Db;
    delete TheSuite;
    Db = nullptr;
    TheSuite = nullptr;
  }
  static Suite *TheSuite;
  static MeasurementDatabase *Db;
};

Suite *SerializationWithDb::TheSuite = nullptr;
MeasurementDatabase *SerializationWithDb::Db = nullptr;

TEST_F(SerializationWithDb, ProfilesCsvShape) {
  std::stringstream SS;
  writeProfilesCsv(SS, *Db);
  std::string Line;
  ASSERT_TRUE(std::getline(SS, Line));
  // Header: 4 fixed columns + 76 features.
  EXPECT_NE(Line.find("codelet,application,discarded"), std::string::npos);
  EXPECT_NE(Line.find("dynamic.mflops"), std::string::npos);
  std::size_t Rows = 0;
  while (std::getline(SS, Line))
    Rows += !Line.empty();
  EXPECT_EQ(Rows, Db->numCodelets());
}

TEST_F(SerializationWithDb, EvaluationCsvShape) {
  PipelineConfig Cfg;
  Cfg.K = 2;
  PipelineResult R = Pipeline(*Db, Cfg).run();
  std::stringstream SS;
  writeEvaluationCsv(SS, *Db, R);
  std::string Header;
  ASSERT_TRUE(std::getline(SS, Header));
  EXPECT_NE(Header.find("is_representative"), std::string::npos);
  EXPECT_NE(Header.find("Atom real_s"), std::string::npos);
  std::size_t Rows = 0;
  std::size_t Reps = 0;
  std::string Line;
  while (std::getline(SS, Line)) {
    Rows += !Line.empty();
    // Column 4 is the representative flag.
    Reps += Line.find(",1,") != std::string::npos &&
            Line.rfind("app/", 0) == 0 &&
            Line.find(",1,") > Line.find(',');
  }
  EXPECT_EQ(Rows, R.Kept.size());
}

TEST_F(SerializationWithDb, LeaveOneOutValidation) {
  PipelineConfig Cfg;
  Cfg.K = 1; // One cluster of three: every codelet validatable.
  PipelineResult R = Pipeline(*Db, Cfg).run();
  LooResult Loo = leaveOneOutErrors(*Db, R, /*TargetIndex=*/0);
  ASSERT_EQ(Loo.ErrorsPercent.size(), 3u);
  EXPECT_EQ(Loo.Skipped, 0u);
  for (bool V : Loo.Validated)
    EXPECT_TRUE(V);
  // Same kernels with different sizes: LOO errors stay moderate.
  EXPECT_LT(Loo.MedianErrorPercent, 30.0);
  EXPECT_GT(Loo.MedianErrorPercent, 0.0);
}

TEST_F(SerializationWithDb, LeaveOneOutSkipsSingletons) {
  PipelineConfig Cfg;
  Cfg.K = 3; // All singletons.
  PipelineResult R = Pipeline(*Db, Cfg).run();
  LooResult Loo = leaveOneOutErrors(*Db, R, 0);
  EXPECT_EQ(Loo.Skipped, 3u);
  for (bool V : Loo.Validated)
    EXPECT_FALSE(V);
  EXPECT_DOUBLE_EQ(Loo.MedianErrorPercent, 0.0);
}

TEST_F(SerializationWithDb, LooRepresentativeAdvantageRemoved) {
  // LOO error of the representative itself must generally exceed its
  // trivial in-model error (which is ~0 by construction).
  PipelineConfig Cfg;
  Cfg.K = 1;
  PipelineResult R = Pipeline(*Db, Cfg).run();
  LooResult Loo = leaveOneOutErrors(*Db, R, 0);
  std::size_t Rep = R.Selection.Representatives[0];
  EXPECT_TRUE(Loo.Validated[Rep]);
  EXPECT_GT(Loo.ErrorsPercent[Rep], 0.0);
}
