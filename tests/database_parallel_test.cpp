//===- tests/database_parallel_test.cpp - Parallel measurement fan-out ----===//

#include "fgbs/core/MeasurementCache.h"

#include "fgbs/analysis/Profiler.h"
#include "fgbs/extract/Extraction.h"
#include "fgbs/obs/Metrics.h"
#include "fgbs/suites/Synthetic.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace fgbs;

namespace {

Suite smallSuite() {
  SyntheticConfig Cfg;
  Cfg.NumApplications = 2;
  Cfg.CodeletsPerApp = 3;
  Cfg.MinFootprintBytes = 64 << 10;
  Cfg.MaxFootprintBytes = 1 << 20;
  return makeSyntheticSuite(Cfg);
}

/// Field-by-field equality of two databases over the same suite.  The
/// serialized form covers every field, so byte equality IS database
/// equality — exactly the property the parallel fan-out promises.
void expectBitIdentical(const MeasurementDatabase &A,
                        const MeasurementDatabase &B) {
  EXPECT_EQ(serializeMeasurements(A, 0), serializeMeasurements(B, 0));
}

} // namespace

TEST(DatabaseParallel, AnyThreadCountIsBitIdenticalToSerial) {
  Suite S = smallSuite();
  std::vector<Machine> Targets = {makeAtom(), makeSandyBridge()};

  DatabaseOptions Serial;
  Serial.Threads = 1;
  MeasurementDatabase DbSerial(S, makeNehalem(), Targets, {}, Serial);

  for (unsigned Threads : {2u, 8u}) {
    DatabaseOptions Parallel;
    Parallel.Threads = Threads;
    MeasurementDatabase DbParallel(S, makeNehalem(), Targets, {}, Parallel);
    expectBitIdentical(DbSerial, DbParallel);
  }
}

TEST(DatabaseParallel, SharedCompileMemoDoesNotChangeMeasurements) {
  // Regression for the duplicate-compile fix: database construction now
  // routes every execute() through one shared CompileCache.  The values
  // must equal what the memo-free entry points produce.
  Suite S = smallSuite();
  std::vector<Machine> Targets = {makeAtom()};
  MeasurementDatabase Db(S, makeNehalem(), Targets);

  std::vector<const Codelet *> Codelets = S.allCodelets();
  for (std::size_t I = 0; I < Codelets.size(); ++I) {
    const Codelet &C = *Codelets[I];

    CodeletProfile Plain = profileCodelet(C, makeNehalem());
    EXPECT_EQ(Db.profile(I).InApp.MeasuredSeconds, Plain.InApp.MeasuredSeconds);
    EXPECT_EQ(Db.profile(I).Features, Plain.Features);
    EXPECT_EQ(Db.profile(I).Discarded, Plain.Discarded);

    StandaloneMeasurement RefPlain = measureStandalone(C, makeNehalem());
    EXPECT_EQ(Db.standaloneRef(I).MedianSeconds, RefPlain.MedianSeconds);
    EXPECT_EQ(Db.standaloneRef(I).Invocations, RefPlain.Invocations);

    Measurement InAppPlain = measureInApp(C, Targets[0]);
    EXPECT_EQ(Db.realTargetSeconds(I, 0), InAppPlain.MeasuredSeconds);

    StandaloneMeasurement TgtPlain = measureStandalone(C, Targets[0]);
    EXPECT_EQ(Db.standaloneTarget(I, 0).MedianSeconds, TgtPlain.MedianSeconds);
  }
}

TEST(DatabaseParallel, CompileCacheIsSharedAcrossKinds) {
  CompileCache Cache;
  Suite S = smallSuite();
  const Codelet &C = *S.allCodelets().front();
  Machine Ref = makeNehalem();

  const BinaryLoop &A =
      Cache.get(C, Ref, CompilationContext::InApplication, CompilerOptions());
  const BinaryLoop &B =
      Cache.get(C, Ref, CompilationContext::InApplication, CompilerOptions());
  EXPECT_EQ(&A, &B);
  EXPECT_EQ(Cache.size(), 1u);

  // Different context, machine, or options are distinct entries.
  Cache.get(C, Ref, CompilationContext::Standalone, CompilerOptions());
  EXPECT_EQ(Cache.size(), 2u);
  Cache.get(C, makeAtom(), CompilationContext::InApplication,
            CompilerOptions());
  EXPECT_EQ(Cache.size(), 3u);
  Cache.get(C, Ref, CompilationContext::InApplication,
            CompilerOptions::noVec());
  EXPECT_EQ(Cache.size(), 4u);
}

TEST(DatabaseParallel, DatabaseBuildRecordsCompileHits) {
  // A database build compiles each (codelet, machine, context) once and
  // serves every further execute() from the memo: with telemetry on,
  // sim.compile.hits must be positive and misses bounded by the distinct
  // compile keys.
  obs::setEnabled(true);
  obs::MetricsRegistry::global().reset();

  Suite S = smallSuite();
  std::vector<Machine> Targets = {makeAtom()};
  MeasurementDatabase Db(S, makeNehalem(), Targets);
  EXPECT_GT(Db.numCodelets(), 0u);

  obs::MetricsSnapshot Snap = obs::MetricsRegistry::global().snapshot();
  obs::setEnabled(false);

  ASSERT_TRUE(Snap.Counters.count("sim.compile.hits"));
  ASSERT_TRUE(Snap.Counters.count("sim.compile.misses"));
  EXPECT_GT(Snap.Counters.at("sim.compile.hits"), 0u);
  // Distinct keys: codelets x (reference {InApp, Standalone} + target
  // {InApp, Standalone}) is the ceiling; racing misses may compile a key
  // twice but never more than once per work item.
  EXPECT_LE(Snap.Counters.at("sim.compile.misses"),
            Snap.Counters.at("sim.execute"));
  EXPECT_GT(Snap.Counters.at("sim.execute"), 0u);
}
