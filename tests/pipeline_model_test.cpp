//===- tests/pipeline_model_test.cpp - Analytic core model ----------------===//

#include "fgbs/sim/Pipeline.h"

#include <gtest/gtest.h>

using namespace fgbs;

namespace {

BinaryLoop loopWith(std::vector<Inst> Body) {
  BinaryLoop L;
  L.Body = std::move(Body);
  L.ElementsPerIter = 1;
  return L;
}

} // namespace

TEST(PipelineModel, LatencyTable) {
  Machine M = makeNehalem();
  EXPECT_DOUBLE_EQ(latencyOf({OpKind::FpAdd, Precision::DP, 1}, M), 3.0);
  EXPECT_DOUBLE_EQ(latencyOf({OpKind::FpMul, Precision::DP, 1}, M), 5.0);
  EXPECT_DOUBLE_EQ(latencyOf({OpKind::FpDiv, Precision::SP, 1}, M), 14.0);
  EXPECT_DOUBLE_EQ(latencyOf({OpKind::FpDiv, Precision::DP, 1}, M), 22.0);
  EXPECT_DOUBLE_EQ(latencyOf({OpKind::Load, Precision::DP, 1}, M), 4.0);
  EXPECT_DOUBLE_EQ(latencyOf({OpKind::IntAdd, Precision::I64, 1}, M), 1.0);
}

TEST(PipelineModel, UopCostCracksVectorFpOnAtom) {
  Machine Atom = makeAtom();
  Machine NH = makeNehalem();
  Inst VecDpMul{OpKind::FpMul, Precision::DP, 2};
  Inst VecSpMul{OpKind::FpMul, Precision::SP, 4};
  Inst VecLoad{OpKind::Load, Precision::DP, 2};
  EXPECT_DOUBLE_EQ(uopCost(VecDpMul, NH), 1.0);
  EXPECT_DOUBLE_EQ(uopCost(VecDpMul, Atom), 4.0);
  EXPECT_DOUBLE_EQ(uopCost(VecSpMul, Atom), 2.0);
  // Memory ops stay single-uop even on Atom.
  EXPECT_DOUBLE_EQ(uopCost(VecLoad, Atom), 1.0);
}

TEST(PipelineModel, PortPressureBalancesLoads) {
  // Four loads spread over the two load ports: 2 cycles each.
  BinaryLoop L = loopWith({{OpKind::Load, Precision::DP, 1},
                           {OpKind::Load, Precision::DP, 1},
                           {OpKind::Load, Precision::DP, 1},
                           {OpKind::Load, Precision::DP, 1}});
  ComputeBreakdown B = computeBound(L, makeNehalem());
  EXPECT_DOUBLE_EQ(B.PortCycles[2], 2.0);
  EXPECT_DOUBLE_EQ(B.PortCycles[3], 2.0);
  EXPECT_DOUBLE_EQ(B.MaxPortCycles, 2.0);
}

TEST(PipelineModel, IssueBound) {
  // 8 single-uop instructions on a 4-wide machine: >= 2 cycles.
  std::vector<Inst> Body(8, {OpKind::IntAdd, Precision::I64, 1});
  ComputeBreakdown B = computeBound(loopWith(Body), makeNehalem());
  EXPECT_DOUBLE_EQ(B.IssueCycles, 2.0);
  EXPECT_GE(B.ComputeCycles, 2.0);
}

TEST(PipelineModel, DependencyBound) {
  BinaryLoop L = loopWith({{OpKind::FpMul, Precision::DP, 1}});
  L.CritChainOps = {{OpKind::FpMul, Precision::DP, 1},
                    {OpKind::FpAdd, Precision::DP, 1}};
  L.ChainParallelism = 1;
  ComputeBreakdown B = computeBound(L, makeNehalem());
  EXPECT_DOUBLE_EQ(B.DepCycles, 8.0); // 5 + 3.
  EXPECT_GE(B.ComputeCycles, 8.0);
}

TEST(PipelineModel, ChainParallelismDividesLatency) {
  BinaryLoop L = loopWith({{OpKind::FpAdd, Precision::DP, 1}});
  L.CritChainOps = std::vector<Inst>(4, {OpKind::FpAdd, Precision::DP, 1});
  L.ChainParallelism = 4;
  ComputeBreakdown B = computeBound(L, makeNehalem());
  EXPECT_DOUBLE_EQ(B.DepCycles, 3.0); // 4 adds x 3 cycles / 4 chains.
}

TEST(PipelineModel, DividerOccupancyUnpipelined) {
  BinaryLoop L = loopWith({{OpKind::FpDiv, Precision::DP, 1},
                           {OpKind::FpDiv, Precision::DP, 1}});
  ComputeBreakdown B = computeBound(L, makeNehalem());
  EXPECT_DOUBLE_EQ(B.DividerCycles, 44.0);
  EXPECT_GE(B.ComputeCycles, 44.0);
}

TEST(PipelineModel, VectorDivOccupiesPerLane) {
  BinaryLoop Scalar = loopWith({{OpKind::FpDiv, Precision::DP, 1}});
  BinaryLoop Vector = loopWith({{OpKind::FpDiv, Precision::DP, 2}});
  Machine M = makeNehalem();
  double ScalarDiv = computeBound(Scalar, M).DividerCycles;
  double VectorDiv = computeBound(Vector, M).DividerCycles;
  // A packed divide costs more than a scalar one but less than two.
  EXPECT_GT(VectorDiv, ScalarDiv);
  EXPECT_LT(VectorDiv, 2.0 * ScalarDiv);
}

TEST(PipelineModel, InOrderSlowerThanOutOfOrder) {
  // Same loop with a dependency chain: the in-order core must add the
  // stall, the out-of-order core hides it under throughput.
  BinaryLoop L = loopWith({{OpKind::FpAdd, Precision::DP, 1},
                           {OpKind::Load, Precision::DP, 1},
                           {OpKind::Load, Precision::DP, 1},
                           {OpKind::FpMul, Precision::DP, 1}});
  L.CritChainOps = {{OpKind::FpAdd, Precision::DP, 1}};
  L.ChainParallelism = 1;

  Machine OoO = makeNehalem();
  Machine InOrder = makeNehalem();
  InOrder.OutOfOrder = false;
  double Fast = computeBound(L, OoO).ComputeCycles;
  double Slow = computeBound(L, InOrder).ComputeCycles;
  EXPECT_GT(Slow, Fast);
}

TEST(PipelineModel, UopsAccumulate) {
  std::vector<Inst> Body(5, {OpKind::FpAdd, Precision::DP, 1});
  ComputeBreakdown B = computeBound(loopWith(Body), makeNehalem());
  EXPECT_DOUBLE_EQ(B.Uops, 5.0);
}

TEST(PipelineModel, IpcHelper) {
  ComputeBreakdown B;
  B.ComputeCycles = 4.0;
  EXPECT_DOUBLE_EQ(B.ipc(8.0), 2.0);
}

TEST(PipelineModel, EmptyLoopIsFree) {
  ComputeBreakdown B = computeBound(loopWith({}), makeNehalem());
  EXPECT_DOUBLE_EQ(B.ComputeCycles, 0.0);
}
