//===- tests/support_test.cpp - Rng, statistics, matrix, tables -----------===//

#include "fgbs/support/Matrix.h"
#include "fgbs/support/Rng.h"
#include "fgbs/support/Statistics.h"
#include "fgbs/support/TextTable.h"
#include "fgbs/support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>

using namespace fgbs;

TEST(Rng, DeterministicBySeed) {
  Rng A(42);
  Rng B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.nextU64(), B.nextU64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng A(1);
  Rng B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += A.nextU64() == B.nextU64();
  EXPECT_LT(Same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng R(7);
  for (int I = 0; I < 10000; ++I) {
    double V = R.uniform();
    EXPECT_GE(V, 0.0);
    EXPECT_LT(V, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng R(11);
  double Sum = 0.0;
  constexpr int N = 50000;
  for (int I = 0; I < N; ++I)
    Sum += R.uniform();
  EXPECT_NEAR(Sum / N, 0.5, 0.01);
}

TEST(Rng, BelowStaysInRange) {
  Rng R(13);
  for (int I = 0; I < 10000; ++I)
    EXPECT_LT(R.below(17), 17u);
}

TEST(Rng, BelowCoversAllValues) {
  Rng R(17);
  std::set<std::uint64_t> Seen;
  for (int I = 0; I < 1000; ++I)
    Seen.insert(R.below(7));
  EXPECT_EQ(Seen.size(), 7u);
}

TEST(Rng, NormalMoments) {
  Rng R(19);
  constexpr int N = 100000;
  double Sum = 0.0;
  double Sq = 0.0;
  for (int I = 0; I < N; ++I) {
    double V = R.normal();
    Sum += V;
    Sq += V * V;
  }
  EXPECT_NEAR(Sum / N, 0.0, 0.02);
  EXPECT_NEAR(Sq / N, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  Rng R(23);
  constexpr int N = 50000;
  double Sum = 0.0;
  for (int I = 0; I < N; ++I)
    Sum += R.normal(10.0, 2.0);
  EXPECT_NEAR(Sum / N, 10.0, 0.05);
}

TEST(Rng, BernoulliEdges) {
  Rng R(29);
  EXPECT_FALSE(R.bernoulli(0.0));
  EXPECT_TRUE(R.bernoulli(1.0));
}

TEST(Rng, BernoulliRate) {
  Rng R(31);
  int Hits = 0;
  constexpr int N = 50000;
  for (int I = 0; I < N; ++I)
    Hits += R.bernoulli(0.25);
  EXPECT_NEAR(static_cast<double>(Hits) / N, 0.25, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng R(37);
  std::vector<int> V = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> Orig = V;
  R.shuffle(V);
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V, Orig);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng R(41);
  std::vector<std::size_t> S = R.sampleWithoutReplacement(100, 30);
  EXPECT_EQ(S.size(), 30u);
  std::set<std::size_t> Set(S.begin(), S.end());
  EXPECT_EQ(Set.size(), 30u);
  for (std::size_t V : S)
    EXPECT_LT(V, 100u);
}

TEST(Rng, HashStringStable) {
  EXPECT_EQ(hashString("abc"), hashString("abc"));
  EXPECT_NE(hashString("abc"), hashString("abd"));
}

TEST(Rng, HashCombineOrderSensitive) {
  EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
}

TEST(Statistics, MedianOdd) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
}

TEST(Statistics, MedianEven) {
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Statistics, MedianSingle) {
  EXPECT_DOUBLE_EQ(median({42.0}), 42.0);
}

TEST(Statistics, MeanAndSum) {
  std::vector<double> V = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(sum(V), 10.0);
  EXPECT_DOUBLE_EQ(mean(V), 2.5);
}

TEST(Statistics, VarianceOfConstant) {
  EXPECT_DOUBLE_EQ(variance({5.0, 5.0, 5.0}), 0.0);
}

TEST(Statistics, VarianceKnown) {
  // Population variance of {1,2,3,4} is 1.25.
  EXPECT_DOUBLE_EQ(variance({1.0, 2.0, 3.0, 4.0}), 1.25);
  EXPECT_DOUBLE_EQ(stddev({1.0, 2.0, 3.0, 4.0}), std::sqrt(1.25));
}

TEST(Statistics, GeometricMean) {
  EXPECT_NEAR(geometricMean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(geometricMean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(Statistics, PercentileEndpoints) {
  std::vector<double> V = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(V, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(V, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(V, 50), 3.0);
}

TEST(Statistics, PercentileInterpolates) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 25), 2.5);
}

TEST(Statistics, ArgMinMax) {
  std::vector<double> V = {3.0, 1.0, 4.0, 1.0, 5.0};
  EXPECT_EQ(argMin(V), 1u); // First of the tied minima.
  EXPECT_EQ(argMax(V), 4u);
}

TEST(Statistics, PercentError) {
  EXPECT_DOUBLE_EQ(percentError(110.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(percentError(90.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(percentError(100.0, 100.0), 0.0);
}

TEST(Matrix, RowColumnRoundTrip) {
  Matrix M(2, 3);
  M.setRow(0, {1.0, 2.0, 3.0});
  M.setRow(1, {4.0, 5.0, 6.0});
  EXPECT_EQ(M.row(1), (std::vector<double>{4.0, 5.0, 6.0}));
  EXPECT_EQ(M.column(2), (std::vector<double>{3.0, 6.0}));
}

TEST(Matrix, MultiplyIdentityLike) {
  Matrix M(2, 2);
  M.at(0, 0) = 1.0;
  M.at(1, 1) = 1.0;
  EXPECT_EQ(M.multiply({7.0, 9.0}), (std::vector<double>{7.0, 9.0}));
}

TEST(Matrix, MultiplyKnown) {
  Matrix M(2, 3);
  M.setRow(0, {1.0, 0.0, 2.0});
  M.setRow(1, {0.0, 3.0, 0.0});
  std::vector<double> Out = M.multiply({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(Out[0], 7.0);
  EXPECT_DOUBLE_EQ(Out[1], 6.0);
}

TEST(Matrix, Distances) {
  std::vector<double> A = {0.0, 0.0};
  std::vector<double> B = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(squaredDistance(A, B), 25.0);
  EXPECT_DOUBLE_EQ(euclideanDistance(A, B), 5.0);
}

TEST(TextTable, FormatHelpers) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatPercent(8.04), "8.0%");
  EXPECT_EQ(formatFactor(44.3), "x44.3");
}

TEST(TextTable, AlignsColumns) {
  TextTable T;
  T.setHeader({"a", "bbbb"});
  T.addRow({"xx", "y"});
  std::ostringstream OS;
  T.print(OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("a   bbbb"), std::string::npos);
  EXPECT_NE(Out.find("xx  y"), std::string::npos);
}

TEST(TextTable, CsvEscapesCommas) {
  TextTable T;
  T.setHeader({"name", "value"});
  T.addRow({"a,b", "1"});
  std::ostringstream OS;
  T.printCsv(OS);
  EXPECT_NE(OS.str().find("\"a,b\",1"), std::string::npos);
}

TEST(TextTable, SeparatorSkippedInCsv) {
  TextTable T;
  T.setHeader({"h"});
  T.addRow({"x"});
  T.addSeparator();
  T.addRow({"y"});
  std::ostringstream OS;
  T.printCsv(OS);
  EXPECT_EQ(OS.str(), "h\nx\ny\n");
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    ThreadPool Pool(Threads);
    std::vector<std::atomic<int>> Hits(1000);
    for (auto &H : Hits)
      H.store(0);
    Pool.parallelFor(0, Hits.size(),
                     [&Hits](std::size_t I) { Hits[I].fetch_add(1); });
    for (std::size_t I = 0; I < Hits.size(); ++I)
      EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
  }
}

TEST(ThreadPool, PerIndexSlotsAreDeterministic) {
  auto Square = [](std::size_t I) { return static_cast<double>(I * I); };
  std::vector<double> Serial(257);
  ThreadPool One(1);
  One.parallelFor(0, Serial.size(),
                  [&](std::size_t I) { Serial[I] = Square(I); });
  std::vector<double> Parallel(257);
  ThreadPool Four(4);
  Four.parallelFor(0, Parallel.size(),
                   [&](std::size_t I) { Parallel[I] = Square(I); });
  EXPECT_EQ(Serial, Parallel);
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  ThreadPool Pool(4);
  int Calls = 0;
  Pool.parallelFor(5, 5, [&Calls](std::size_t) { ++Calls; });
  EXPECT_EQ(Calls, 0);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool Pool(3);
  std::atomic<std::size_t> Total{0};
  for (int Job = 0; Job < 20; ++Job)
    Pool.parallelFor(0, 100, [&Total](std::size_t) { Total.fetch_add(1); });
  EXPECT_EQ(Total.load(), 2000u);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool Pool(4);
  EXPECT_THROW(Pool.parallelFor(0, 100,
                                [](std::size_t I) {
                                  if (I == 37)
                                    throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // Still usable afterwards.
  std::atomic<int> Count{0};
  Pool.parallelFor(0, 10, [&Count](std::size_t) { Count.fetch_add(1); });
  EXPECT_EQ(Count.load(), 10);
}

TEST(ThreadPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
}
