//===- tests/report_test.cpp - Per-codelet analysis report ----------------===//

#include "fgbs/analysis/Report.h"

#include "fgbs/dsl/Builder.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace fgbs;

namespace {

Codelet reportKernel() {
  CodeletBuilder B("rep/kernel", "rep");
  B.pattern("DP: report demo");
  unsigned A = B.array("a", Precision::DP, 1 << 21);
  unsigned X = B.array("x", Precision::DP, 1 << 21);
  B.loops(1 << 21);
  B.stmt(storeTo(B.at(A, StrideClass::Unit),
                 div(B.ld(X, StrideClass::Unit), constant(Precision::DP))));
  B.invocations(25);
  return B.take();
}

} // namespace

TEST(Report, ContainsAllSections) {
  std::ostringstream OS;
  printCodeletReport(OS, reportKernel(), makeNehalem());
  std::string Out = OS.str();
  for (const char *Needle :
       {"rep/kernel", "DP: report demo", "pipeline bounds", "memory streams",
        "dynamic profile", "estimated IPC", "MFLOPS", "divider",
        "compiled loop"})
    EXPECT_NE(Out.find(Needle), std::string::npos) << Needle;
}

TEST(Report, ShowsDivideInstructionMix) {
  std::ostringstream OS;
  printCodeletReport(OS, reportKernel(), makeNehalem());
  EXPECT_NE(OS.str().find("fp.div.dp (v)"), std::string::npos);
}

TEST(Report, WorksOnEveryMachine) {
  Codelet C = reportKernel();
  for (const Machine &M : paperMachines()) {
    std::ostringstream OS;
    printCodeletReport(OS, C, M);
    EXPECT_NE(OS.str().find(M.Name), std::string::npos);
    // Machines without an L3 must not print an L3 column header.
    if (M.CacheLevels.size() == 2) {
      EXPECT_EQ(OS.str().find("L3 %"), std::string::npos) << M.Name;
    }
  }
}

TEST(Report, MemoryBoundShareIsPercentage) {
  std::ostringstream OS;
  printCodeletReport(OS, reportKernel(), makeNehalem());
  std::string Out = OS.str();
  std::size_t Pos = Out.find("memory-bound share");
  ASSERT_NE(Pos, std::string::npos);
  EXPECT_NE(Out.find('%', Pos), std::string::npos);
}
